// Command schedule extracts the oblivious compare-exchange schedule of
// the sorting algorithm for a chosen product network and prints its
// statistics, optionally dumping the full phase list as JSON (usable by
// external tools or for replay) and optionally verifying the schedule
// exhaustively against the zero-one principle.
//
// Usage examples:
//
//	schedule -network hypercube -r 4
//	schedule -network grid -n 3 -r 2 -json > grid3x3.json
//	schedule -network grid -n 3 -r 2 -verify
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"productsort"
	"productsort/internal/cli"
)

func main() {
	nf := cli.RegisterNetworkFlags(nil)
	engine := flag.String("engine", "auto", "S2 engine: auto | shearsort | snake-oet | opt4")
	asJSON := flag.Bool("json", false, "dump the full phase list as JSON to stdout")
	verify := flag.Bool("verify", false, "exhaustively verify the 0-1 principle (inputs ≤ 22)")
	flag.Parse()

	nw, err := nf.Build()
	if err != nil {
		fail(err)
	}
	s, err := productsort.ExtractSchedule(nw, *engine)
	if err != nil {
		fail(err)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		if err := enc.Encode(s); err != nil {
			fail(err)
		}
		return
	}
	fmt.Printf("network      %s\n", nw.Name())
	fmt.Printf("inputs       %d\n", s.Inputs())
	fmt.Printf("phases       %d (parallel depth)\n", s.Depth())
	fmt.Printf("comparators  %d\n", s.Size())
	if pred, err := nw.PredictedRounds(*engine); err == nil && nw.HamiltonianFactor() {
		fmt.Printf("theorem 1    %d rounds (depth is lower when phases were empty)\n", pred)
	}
	if *verify {
		if s.Inputs() > 22 {
			fail(fmt.Errorf("verify: %d inputs too many for exhaustive 0-1 check", s.Inputs()))
		}
		keys := make([]productsort.Key, s.Inputs())
		for mask := 0; mask < 1<<s.Inputs(); mask++ {
			for i := range keys {
				keys[i] = productsort.Key(mask >> i & 1)
			}
			s.Apply(keys)
			for i := 1; i < len(keys); i++ {
				if keys[i] < keys[i-1] {
					fail(fmt.Errorf("verify: 0-1 input %b not sorted", mask))
				}
			}
		}
		fmt.Printf("verified     all %d zero-one inputs sort correctly\n", 1<<s.Inputs())
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "schedule:", err)
	os.Exit(1)
}
