// The -contend mode: GOMAXPROCS sweep of plan-store contention.
//
// One op is a warm serving step: resolve the compiled program for a
// plan (rotating across three small topologies) and replay one key set
// through it columnar — lookup plus sort, the steady-state serve path
// with batching factored out. The sweep runs the op loop on 1, 4 and
// all cores against both stores: the mutex LRU (PlanCache, the old
// serving cache) and the lock-free versioned-read store (PlanStore).
// BENCH_contend.json records ns/op and sorts/s per (store, cores)
// cell; the lock-plateau regression gate (-mingain, enforced by CI's
// contend job) fails the run when the new store's all-core throughput
// is below mingain × its own single-core figure — the signature of a
// serialising lock creeping back into the read path.

package main

import (
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"productsort/internal/graph"
	"productsort/internal/obs"
	"productsort/internal/product"
	"productsort/internal/schedule"
	"productsort/internal/serve"
	"productsort/internal/simnet"
)

// contendCell is one (store, cores) measurement.
type contendCell struct {
	Store       string  `json:"store"`
	Procs       int     `json:"procs"`
	Ops         int64   `json:"ops"`
	NsPerOp     float64 `json:"ns_per_op"`
	SortsPerSec float64 `json:"sorts_per_sec"`
	Elapsed     string  `json:"elapsed"`
}

// contendGate is the lock-plateau regression verdict.
type contendGate struct {
	// MinGain is the required all-core / single-core throughput ratio
	// for the lock-free store; 0 disables the gate.
	MinGain float64 `json:"min_gain"`
	// Enforced is false when the host cannot express the sweep (fewer
	// CPUs than the largest swept proc count) or MinGain is 0.
	Enforced   bool    `json:"enforced"`
	SkipReason string  `json:"skip_reason,omitempty"`
	Gain       float64 `json:"gain"`
	OldGain    float64 `json:"old_gain"`
	Pass       bool    `json:"pass"`
}

// contendReport is the BENCH_contend.json schema.
type contendReport struct {
	NumCPU      int           `json:"num_cpu"`
	Procs       []int         `json:"procs"`
	DurationPer string        `json:"duration_per_cell"`
	Plans       []string      `json:"plans"`
	Cells       []contendCell `json:"cells"`
	Gate        contendGate   `json:"gate"`
}

// planResolver abstracts the two stores under test: resolve the
// program for a plan, use it, release. The mutex LRU has no pins, so
// its release is a no-op.
type planResolver struct {
	name    string
	resolve func(p *serve.Plan) (*schedule.Program, func(), error)
}

// contendPlans builds the rotating working set: three small distinct
// topologies, so lookups exercise key dispatch (and, for the sharded
// store, multiple slots) while the per-op sort stays cheap enough for
// the lookup path to matter.
func contendPlans() (*serve.Planner, []*serve.Plan, error) {
	pl, err := serve.NewPlanner([]*product.Network{
		product.MustNew(graph.K2(), 2),    // 4 nodes
		product.MustNew(graph.Path(3), 2), // 9 nodes
		product.MustNew(graph.K2(), 3),    // 8 nodes
	}, nil)
	if err != nil {
		return nil, nil, err
	}
	return pl, pl.Plans(), nil
}

// splitmix64 advances x and returns the next pseudo-random value — the
// allocation-free key refill used by every worker.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4b5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// contendWorker loops the warm serving op until stop closes: resolve
// the next plan's program, refill the private key set, replay it, and
// release. Returns the op count.
func contendWorker(r *planResolver, plans []*serve.Plan, seed uint64, stop <-chan struct{}) (int64, error) {
	buf := schedule.NewColumnBuffer()
	// Per-plan private key sets, widest first so one slab serves all.
	sets := make([][][]simnet.Key, len(plans))
	for i, p := range plans {
		sets[i] = [][]simnet.Key{make([]simnet.Key, p.Nodes())}
	}
	var ops int64
	for {
		select {
		case <-stop:
			return ops, nil
		default:
		}
		p := plans[int(ops)%len(plans)]
		prog, release, err := r.resolve(p)
		if err != nil {
			return ops, err
		}
		keys := sets[int(ops)%len(plans)][0]
		for j := range keys {
			keys[j] = simnet.Key(splitmix64(&seed) >> 1)
		}
		err = schedule.RunBatchColumnar(prog, sets[int(ops)%len(plans)], 1, buf)
		release()
		if err != nil {
			return ops, err
		}
		ops++
	}
}

// contendCellRun measures one (store, procs) cell: procs workers on
// GOMAXPROCS(procs) for roughly dur.
func contendCellRun(r *planResolver, plans []*serve.Plan, procs int, dur time.Duration) (contendCell, error) {
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)

	stop := make(chan struct{})
	counts := make([]int64, procs)
	errs := make([]error, procs)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < procs; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			counts[w], errs[w] = contendWorker(r, plans, uint64(w)*0x9e3779b9+1, stop)
		}(w)
	}
	time.Sleep(dur)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)
	var ops int64
	for w := 0; w < procs; w++ {
		if errs[w] != nil {
			return contendCell{}, errs[w]
		}
		ops += counts[w]
	}
	cell := contendCell{
		Store:   r.name,
		Procs:   procs,
		Ops:     ops,
		Elapsed: elapsed.Round(time.Millisecond).String(),
	}
	if ops > 0 {
		cell.NsPerOp = float64(elapsed.Nanoseconds()) / float64(ops)
		cell.SortsPerSec = float64(ops) / elapsed.Seconds()
	}
	return cell, nil
}

// parseProcs splits a comma-separated proc list; 0 means NumCPU. The
// result is deduplicated and ascending.
func parseProcs(s string) ([]int, error) {
	seen := map[int]bool{}
	var procs []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("bench: bad proc count %q", part)
		}
		if v == 0 {
			v = runtime.NumCPU()
		}
		if !seen[v] {
			seen[v] = true
			procs = append(procs, v)
		}
	}
	if len(procs) == 0 {
		return nil, fmt.Errorf("bench: no proc counts")
	}
	sort.Ints(procs)
	return procs, nil
}

// throughputFor returns a store's sorts/s at the given proc count.
func throughputFor(cells []contendCell, store string, procs int) float64 {
	for _, c := range cells {
		if c.Store == store && c.Procs == procs {
			return c.SortsPerSec
		}
	}
	return 0
}

// runContendBench drives the contention sweep and writes the artifact.
// mingain > 0 turns on the lock-plateau gate: the run fails unless the
// lock-free store's throughput at the largest swept proc count is at
// least mingain × its single-proc figure. The gate needs procs=1 in
// the sweep and at least max-swept-procs CPUs on the host; otherwise
// it records why it was skipped and passes.
func runContendBench(outPath, procsCSV string, dur time.Duration, mingain float64) error {
	procs, err := parseProcs(procsCSV)
	if err != nil {
		return err
	}
	pl, plans, err := contendPlans()
	if err != nil {
		return err
	}
	names := make([]string, len(plans))
	for i, p := range plans {
		names[i] = p.Name()
	}

	// The two stores under test, rebuilt per cell so every cell starts
	// cold-then-warm identically. Capacity covers the working set:
	// this sweep measures lookup contention, not eviction churn.
	newResolver := func(store string) *planResolver {
		switch store {
		case "mutex-lru":
			c := serve.NewPlanCache(len(plans)+1, obs.NewMetrics())
			return &planResolver{name: store, resolve: func(p *serve.Plan) (*schedule.Program, func(), error) {
				prog, err := c.Get(p, pl.Engine())
				return prog, func() {}, err
			}}
		default: // lock-free
			s := serve.NewPlanStore(len(plans)+1, obs.NewMetrics())
			return &planResolver{name: store, resolve: func(p *serve.Plan) (*schedule.Program, func(), error) {
				prog, pin, err := s.Acquire(p, pl.Engine())
				return prog, pin.Release, err
			}}
		}
	}

	rep := contendReport{
		NumCPU:      runtime.NumCPU(),
		Procs:       procs,
		DurationPer: dur.String(),
		Plans:       names,
	}
	fmt.Printf("plan-store contention sweep: procs %v, %v per cell, %d CPUs\n\n", procs, dur, rep.NumCPU)
	fmt.Printf("%-12s %6s %12s %12s %14s\n", "store", "procs", "ops", "ns/op", "sorts/s")
	for _, store := range []string{"mutex-lru", "lock-free"} {
		for _, p := range procs {
			r := newResolver(store)
			cell, err := contendCellRun(r, plans, p, dur)
			if err != nil {
				return err
			}
			rep.Cells = append(rep.Cells, cell)
			fmt.Printf("%-12s %6d %12d %12.0f %14.0f\n", cell.Store, cell.Procs, cell.Ops, cell.NsPerOp, cell.SortsPerSec)
		}
	}

	maxProcs := procs[len(procs)-1]
	gate := contendGate{MinGain: mingain}
	base := throughputFor(rep.Cells, "lock-free", 1)
	peak := throughputFor(rep.Cells, "lock-free", maxProcs)
	oldBase := throughputFor(rep.Cells, "mutex-lru", 1)
	oldPeak := throughputFor(rep.Cells, "mutex-lru", maxProcs)
	if base > 0 {
		gate.Gain = peak / base
	}
	if oldBase > 0 {
		gate.OldGain = oldPeak / oldBase
	}
	switch {
	case mingain <= 0:
		gate.SkipReason = "gate disabled (-mingain 0)"
		gate.Pass = true
	case maxProcs <= 1:
		gate.SkipReason = "sweep has no multi-proc cell"
		gate.Pass = true
	case rep.NumCPU < maxProcs:
		gate.SkipReason = fmt.Sprintf("host has %d CPUs < %d swept procs", rep.NumCPU, maxProcs)
		gate.Pass = true
	default:
		gate.Enforced = true
		gate.Pass = gate.Gain >= mingain
	}
	rep.Gate = gate

	if err := writeJSONArtifact(outPath, rep); err != nil {
		return err
	}
	fmt.Printf("\nlock-free gain %.2fx (mutex %.2fx) at %d procs; artifact: %s\n", gate.Gain, gate.OldGain, maxProcs, outPath)
	if gate.Enforced && !gate.Pass {
		fmt.Fprintf(os.Stderr, "bench: contention gate FAILED: lock-free store gained %.2fx at %d procs, need >= %.2fx\n",
			gate.Gain, maxProcs, mingain)
		return fmt.Errorf("bench: lock-plateau regression (gain %.2f < %.2f)", gate.Gain, mingain)
	}
	if gate.SkipReason != "" {
		fmt.Printf("gate skipped: %s\n", gate.SkipReason)
	}
	return nil
}
