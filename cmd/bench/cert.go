package main

import (
	"fmt"
	"os"
	"time"

	"productsort"
	"productsort/internal/stats"
)

// certEntry is one (network, engine) certification run in
// BENCH_cert.json.
type certEntry struct {
	Network     string  `json:"network"`
	Engine      string  `json:"engine"`
	Family      string  `json:"family"`
	Nodes       int     `json:"nodes"`
	Mode        string  `json:"mode"` // "exhaustive" or "sampled"
	Certified   bool    `json:"certified"`
	Vectors     uint64  `json:"vectors"`
	Words       uint64  `json:"words"`
	WordOps     uint64  `json:"wordOps"`
	Ops         int     `json:"ops"`
	Comparators int     `json:"comparators"`
	Dead        int     `json:"deadComparators"`
	ElapsedMs   float64 `json:"elapsedMs"`
	Witness     string  `json:"witness,omitempty"`
}

// certReport is the BENCH_cert.json document.
type certReport struct {
	Generated         string      `json:"generated"`
	MaxExhaustiveKeys int         `json:"maxExhaustiveKeys"`
	SampleVectors     int         `json:"sampleVectors"`
	Entries           []certEntry `json:"entries"`
}

// certTarget is one network to certify with each applicable engine.
type certTarget struct {
	build func() (*productsort.Network, error)
}

// emittedCertTarget is one emitted-family network to certify.
type emittedCertTarget struct {
	family string
	size   int
}

// runCertBench certifies every built-in factor family / engine
// combination plus the emitted network families: exhaustively for
// networks of at most maxKeys keys, by seeded sampling for a set of
// larger representatives. Any non-certified exhaustive run (or sampled
// counterexample) fails the invocation — this is the `make cert` CI
// gate, so an uncertified emitted program can never ship.
func runCertBench(path string, maxKeys, sample, workers int) error {
	if maxKeys < 4 {
		return fmt.Errorf("cert bench: -certmax %d < 4", maxKeys)
	}
	exhaustiveTargets := []certTarget{
		{func() (*productsort.Network, error) { return productsort.Hypercube(2) }},
		{func() (*productsort.Network, error) { return productsort.Hypercube(3) }},
		{func() (*productsort.Network, error) { return productsort.Hypercube(4) }},
		{func() (*productsort.Network, error) { return productsort.Grid(3, 2) }},
		{func() (*productsort.Network, error) { return productsort.Grid(4, 2) }},
		{func() (*productsort.Network, error) { return productsort.Torus(3, 2) }},
		{func() (*productsort.Network, error) { return productsort.Torus(4, 2) }},
		{func() (*productsort.Network, error) { return productsort.MeshConnectedTrees(2, 2) }},
		{func() (*productsort.Network, error) { return productsort.DeBruijnProduct(2, 2, 2) }},
		{func() (*productsort.Network, error) { return productsort.ShuffleExchangeProduct(2, 2) }},
	}
	sampledTargets := []certTarget{
		{func() (*productsort.Network, error) { return productsort.Grid(3, 3) }},
		{func() (*productsort.Network, error) { return productsort.Hypercube(5) }},
		{func() (*productsort.Network, error) { return productsort.PetersenCube(2) }},
		{func() (*productsort.Network, error) { return productsort.MeshConnectedTrees(3, 2) }},
	}
	emittedExhaustive := []emittedCertTarget{
		{productsort.FamilyMultiway, 8},
		{productsort.FamilyMultiway, 16},
		{productsort.FamilyPeriodic, 8},
		{productsort.FamilyPeriodic, 16},
	}
	emittedSampled := []emittedCertTarget{
		{productsort.FamilyMultiway, 64},
		{productsort.FamilyPeriodic, 64},
	}

	report := certReport{
		Generated:         time.Now().UTC().Format(time.RFC3339),
		MaxExhaustiveKeys: maxKeys,
		SampleVectors:     sample,
	}
	table := stats.NewTable("Certification: bitsliced 0-1 proof per (network, engine)",
		"network", "family", "engine", "keys", "mode", "vectors", "comparators", "dead", "verdict", "wall")
	failures := 0

	record := func(c *productsort.CompiledNetwork, name, engine string, nodes int, forceSampled bool) error {
		crt, err := c.Certify(&productsort.CertifyOptions{
			Workers:           workers,
			MaxExhaustiveKeys: maxKeys,
			SampleVectors:     sample,
			Seed:              1,
			ForceSampled:      forceSampled,
		})
		if err != nil {
			return err
		}
		mode := "sampled"
		if crt.Exhaustive {
			mode = "exhaustive"
		}
		e := certEntry{
			Network: name, Engine: engine, Family: c.Family(), Nodes: nodes, Mode: mode,
			Certified: crt.Certified, Vectors: crt.Vectors, Words: crt.Words,
			WordOps: crt.WordOps, Ops: crt.Ops, Comparators: crt.Comparators,
			Dead:      len(crt.Dead),
			ElapsedMs: float64(crt.Elapsed) / float64(time.Millisecond),
		}
		verdict := "CERTIFIED"
		if !crt.Exhaustive {
			verdict = "pass (sampled)"
		}
		if !crt.Certified {
			failures++
			verdict = "FAILED"
			if crt.Witness != nil {
				e.Witness = fmt.Sprint(crt.Witness)
			}
		}
		report.Entries = append(report.Entries, e)
		table.Add(name, e.Family, engine, nodes, mode, e.Vectors, e.Comparators, e.Dead,
			verdict, fmt.Sprintf("%.1fms", e.ElapsedMs))
		return nil
	}

	run := func(nw *productsort.Network, engine string, forceSampled bool) error {
		s, err := productsort.NewSorter(productsort.WithEngine(engine))
		if err != nil {
			return err
		}
		c, err := s.Compile(nw)
		if err != nil {
			return err
		}
		return record(c, nw.Name(), engine, nw.Nodes(), forceSampled)
	}

	runEmitted := func(tgt emittedCertTarget, forceSampled bool) error {
		c, err := productsort.CompileFamily(tgt.family, tgt.size)
		if err != nil {
			return err
		}
		engine := "periodic"
		if tgt.family == productsort.FamilyMultiway {
			engine = fmt.Sprintf("multiway%d", productsort.MultiwaySorterWidth)
		}
		name := fmt.Sprintf("%s[%d]", engine, tgt.size)
		return record(c, name, engine, tgt.size, forceSampled)
	}

	for _, tgt := range exhaustiveTargets {
		nw, err := tgt.build()
		if err != nil {
			return err
		}
		if nw.Nodes() > maxKeys {
			continue
		}
		engines := []string{"auto", "shearsort", "snake-oet"}
		if nw.FactorSize() == 2 {
			engines = append(engines, "opt4")
		}
		for _, engine := range engines {
			if err := run(nw, engine, false); err != nil {
				return fmt.Errorf("cert bench: %s/%s: %w", nw.Name(), engine, err)
			}
		}
	}
	for _, tgt := range sampledTargets {
		nw, err := tgt.build()
		if err != nil {
			return err
		}
		if err := run(nw, "auto", true); err != nil {
			return fmt.Errorf("cert bench: %s/auto: %w", nw.Name(), err)
		}
	}
	for _, tgt := range emittedExhaustive {
		if tgt.size > maxKeys {
			continue
		}
		if err := runEmitted(tgt, false); err != nil {
			return fmt.Errorf("cert bench: %s[%d]: %w", tgt.family, tgt.size, err)
		}
	}
	for _, tgt := range emittedSampled {
		if err := runEmitted(tgt, true); err != nil {
			return fmt.Errorf("cert bench: %s[%d]: %w", tgt.family, tgt.size, err)
		}
	}

	table.Note("exhaustive: all 2^keys 0-1 vectors replayed bitsliced (64/word) — a sorting proof "+
		"by the 0-1 principle; sampled: %d seeded random vectors (refutation + dead-comparator lint only)", sample)
	table.Render(os.Stdout)

	if err := writeJSONArtifact(path, report); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d entries)\n", path, len(report.Entries))
	if failures > 0 {
		return fmt.Errorf("cert bench: %d certification failure(s)", failures)
	}
	return nil
}
