package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// writeJSONArtifact marshals v and writes it to path atomically: the
// bytes go to a temp file in the same directory, are fsynced, and the
// file is renamed into place. A failed run therefore never leaves a
// truncated BENCH_*.json behind for CI to mistake for a result, and
// every write/sync/close/rename error propagates to the caller (and
// from there to a nonzero exit).
func writeJSONArtifact(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: marshaling %s: %w", path, err)
	}
	data = append(data, '\n')
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("bench: creating temp for %s: %w", path, err)
	}
	tmpName := tmp.Name()
	cleanup := func() { os.Remove(tmpName) }
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		cleanup()
		return fmt.Errorf("bench: writing %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		cleanup()
		return fmt.Errorf("bench: syncing %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		cleanup()
		return fmt.Errorf("bench: closing %s: %w", path, err)
	}
	if err := os.Chmod(tmpName, 0o644); err != nil {
		cleanup()
		return fmt.Errorf("bench: chmod %s: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		cleanup()
		return fmt.Errorf("bench: renaming %s: %w", path, err)
	}
	return nil
}
