package main

import (
	"fmt"
	"os"
	"time"

	"productsort"
	"productsort/internal/stats"
	"productsort/internal/workload"
)

// chaosScenario is one fault mix applied across the chaos topologies.
type chaosScenario struct {
	name string
	cfg  productsort.FaultConfig
}

// chaosEntry is one (topology, scenario, seed) resilient run.
type chaosEntry struct {
	Network  string `json:"network"`
	Nodes    int    `json:"nodes"`
	Scenario string `json:"scenario"`
	Seed     int64  `json:"seed"`
	Sorted   bool   `json:"sorted"`
	// BaseRounds is the fault-free program cost; Rounds what the
	// faulted run charged (base + degradation + recovery).
	BaseRounds     int     `json:"baseRounds"`
	Rounds         int     `json:"rounds"`
	RecoveryRounds int     `json:"recoveryRounds"`
	Overhead       float64 `json:"overhead"` // Rounds / BaseRounds
	Injected       int     `json:"injected"`
	Dropped        int     `json:"dropped"`
	Stalled        int     `json:"stalled"`
	Corrupted      int     `json:"corrupted"`
	DeadLinks      int     `json:"deadLinks"`
	Detected       int     `json:"detected"`
	Retried        int     `json:"retried"`
	RepairPasses   int     `json:"repairPasses"`
	Rerouted       int     `json:"rerouted"`
	Unrecoverable  int     `json:"unrecoverable"`
}

// chaosReport is the BENCH_chaos.json document.
type chaosReport struct {
	Generated string       `json:"generated"`
	Seeds     int          `json:"seeds"`
	SeedBase  int64        `json:"seedBase,omitempty"`
	Entries   []chaosEntry `json:"entries"`
	// SweepRates and Sweep carry the fault-rate x engine comparison
	// (deterministic resilient replay vs randomized engine per q
	// variant); see chaos_sweep.go.
	SweepRates []float64    `json:"sweepRates"`
	Sweep      []sweepEntry `json:"sweep"`
}

// runChaosBench drives resilient sorts across topologies, fault
// scenarios and seeds plus the fault-rate x engine sweep, verifies
// every recovered output, and writes the report to path. seedBase
// offsets every fault seed so CI matrix legs explore distinct chaos.
func runChaosBench(path string, seeds int, seedBase int64) error {
	if seeds < 1 {
		return fmt.Errorf("chaos bench: -seeds %d < 1", seeds)
	}
	nets := []*productsort.Network{}
	for _, build := range []func() (*productsort.Network, error){
		func() (*productsort.Network, error) { return productsort.Grid(4, 3) },
		func() (*productsort.Network, error) { return productsort.Torus(5, 2) },
		func() (*productsort.Network, error) { return productsort.Hypercube(6) },
		func() (*productsort.Network, error) { return productsort.MeshConnectedTrees(2, 2) },
		func() (*productsort.Network, error) { return productsort.PetersenCube(2) },
	} {
		nw, err := build()
		if err != nil {
			return err
		}
		nets = append(nets, nw)
	}
	scenarios := []chaosScenario{
		{"drops-2pct", productsort.FaultConfig{DropRate: 0.02}},
		{"stalls-3pct", productsort.FaultConfig{StallRate: 0.03}},
		{"corrupt-5pct", productsort.FaultConfig{CorruptRate: 0.05}},
		{"mixed-5pct", productsort.FaultConfig{DropRate: 0.05, StallRate: 0.03, CorruptRate: 0.05}},
		{"link-loss", productsort.FaultConfig{LinkFailRate: 0.15, MaxDeadLinks: 1, DropRate: 0.02}},
	}
	gen, err := workload.ByName("uniform")
	if err != nil {
		return err
	}

	report := chaosReport{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		Seeds:      seeds,
		SeedBase:   seedBase,
		SweepRates: sweepRates,
	}
	table := stats.NewTable("Chaos: self-healing replay under injected faults",
		"network", "scenario", "injected", "detected", "retried", "rerouted",
		"unrecov", "recovery rounds", "overhead")
	for _, nw := range nets {
		c, err := productsort.Compile(nw)
		if err != nil {
			return err
		}
		for _, sc := range scenarios {
			agg := chaosEntry{}
			for seed := 0; seed < seeds; seed++ {
				cfg := sc.cfg
				cfg.Seed = seedBase + int64(seed) + 1
				keys := gen(nw.Nodes(), int64(seed)*31+7)
				res, err := c.SortResilient(keys, cfg)
				if err != nil {
					return fmt.Errorf("chaos bench: %s/%s seed %d: %w (report %+v)",
						nw.Name(), sc.name, seed+1, err, res.Faults)
				}
				if !productsort.IsSorted(res.Keys) {
					return fmt.Errorf("chaos bench: %s/%s seed %d: output not sorted",
						nw.Name(), sc.name, seed+1)
				}
				f := res.Faults
				e := chaosEntry{
					Network: nw.Name(), Nodes: nw.Nodes(), Scenario: sc.name,
					Seed: cfg.Seed, Sorted: true,
					BaseRounds: c.Rounds(), Rounds: res.Rounds,
					RecoveryRounds: f.RecoveryRounds,
					Injected:       f.Injected, Dropped: f.Dropped, Stalled: f.Stalled,
					Corrupted: f.Corrupted, DeadLinks: f.DeadLinks,
					Detected: f.Detected, Retried: f.Retried,
					RepairPasses: f.RepairPasses, Rerouted: f.Rerouted,
					Unrecoverable: f.Unrecoverable,
				}
				if e.BaseRounds > 0 {
					e.Overhead = float64(e.Rounds) / float64(e.BaseRounds)
				}
				report.Entries = append(report.Entries, e)
				agg.Injected += e.Injected
				agg.Detected += e.Detected
				agg.Retried += e.Retried
				agg.Rerouted += e.Rerouted
				agg.Unrecoverable += e.Unrecoverable
				agg.RecoveryRounds += e.RecoveryRounds
				agg.Overhead += e.Overhead
			}
			table.Add(nw.Name(), sc.name, agg.Injected, agg.Detected, agg.Retried,
				agg.Rerouted, agg.Unrecoverable, agg.RecoveryRounds,
				fmt.Sprintf("%.2fx", agg.Overhead/float64(seeds)))
		}
	}
	table.Note("%d seeds per cell; every run verified sorted; overhead = faulted/fault-free rounds, averaged", seeds)
	table.Render(os.Stdout)

	sweep, err := runChaosSweep(seeds, seedBase)
	if err != nil {
		return err
	}
	report.Sweep = sweep

	if err := writeJSONArtifact(path, report); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d entries, %d sweep runs)\n", path, len(report.Entries), len(report.Sweep))
	return nil
}
