// Fault-rate sweep: convergence-vs-fault-rate for the deterministic
// self-healing replay (ResilientBackend) against the randomized
// pairwise engine, per q variant. The sweep scales one chaos axis —
// DropRate = f, StallRate = f/2 — from fault-free to the regime where
// the oblivious schedule's retry budget collapses, and records how
// each engine's parallel time grows. The deterministic engine is
// allowed to abort (recorded, expected at the top rates); a randomized
// run that fails to converge verifier-accepted and scrub-sorted fails
// the benchmark.

package main

import (
	"errors"
	"fmt"
	"os"

	"productsort"
	"productsort/internal/stats"
	"productsort/internal/workload"
)

// sweepRates is the fault-rate axis (DropRate; StallRate rides at
// half). 0 anchors the baseline; 0.9 is past the deterministic
// engine's collapse point (per-pair loss ≈ 0.9^8 + stall-abandons ≈
// 49% per repair pass — no retry budget survives that).
var sweepRates = []float64{0, 0.05, 0.15, 0.35, 0.6, 0.9}

// sweepEngines names the engines swept: the resilient oblivious replay
// and the randomized engine per q variant.
var sweepEngines = []string{
	"resilient",
	"randsort-uniform",
	"randsort-dim-weighted",
	"randsort-snake-biased",
}

// sweepMaxRounds caps randomized runs far above the measured worst
// case (~2.8k rounds at rate 0.9 on 64 nodes) so a regression shows up
// as a hard failure, not a hang.
const sweepMaxRounds = 50_000

// sweepEntry is one (network, engine, rate, seed) run.
type sweepEntry struct {
	Network   string  `json:"network"`
	Nodes     int     `json:"nodes"`
	Engine    string  `json:"engine"`
	FaultRate float64 `json:"faultRate"` // DropRate; StallRate = rate/2
	Seed      int64   `json:"seed"`
	// Rounds is the run's parallel time; BaseRounds the same engine's
	// fault-free time (same network and seed); Overhead their ratio.
	Rounds     int     `json:"rounds"`
	BaseRounds int     `json:"baseRounds"`
	Overhead   float64 `json:"overhead"`
	// Sorted is the final output order; Aborted records a deterministic
	// run that exhausted recovery (expected at high rates, never fatal
	// here — that collapse is the comparison's point).
	Sorted  bool `json:"sorted"`
	Aborted bool `json:"aborted"`
	// Randomized-engine acceptance: Converged within the round cap,
	// VerifierAccepted by the sampled 0-1 certification of the realized
	// comparator sequence, ScrubSorted by the final deterministic
	// scrub. Always true in a published report (enforced); mirrored
	// true for successful resilient runs so "every row accepted" is one
	// predicate.
	Converged        bool `json:"converged"`
	VerifierAccepted bool `json:"verifierAccepted"`
	ScrubSorted      bool `json:"scrubSorted"`
	Injected         int  `json:"injected"`
	Dropped          int  `json:"dropped"`
	Stalled          int  `json:"stalled"`
}

// runChaosSweep executes the fault-rate x engine sweep and returns the
// entries. seeds and seedBase mirror the scenario suite: matrix legs
// shift seedBase to decorrelate.
func runChaosSweep(seeds int, seedBase int64) ([]sweepEntry, error) {
	nets := []*productsort.Network{}
	for _, build := range []func() (*productsort.Network, error){
		func() (*productsort.Network, error) { return productsort.Grid(4, 3) },
		func() (*productsort.Network, error) { return productsort.Hypercube(6) },
	} {
		nw, err := build()
		if err != nil {
			return nil, err
		}
		nets = append(nets, nw)
	}
	gen, err := workload.ByName("uniform")
	if err != nil {
		return nil, err
	}

	var entries []sweepEntry
	table := stats.NewTable("Chaos sweep: convergence vs fault rate, deterministic vs randomized",
		"network", "engine", "rate", "rounds (mean)", "overhead", "aborted")
	for _, nw := range nets {
		c, err := productsort.Compile(nw)
		if err != nil {
			return nil, err
		}
		// base[engine][seed] is the engine's fault-free round count,
		// filled by the rate-0 column (first in sweepRates).
		base := map[string]map[int64]int{}
		for _, engine := range sweepEngines {
			base[engine] = map[int64]int{}
			for _, rate := range sweepRates {
				sumRounds, sumOverhead, aborts := 0, 0.0, 0
				for seed := 0; seed < seeds; seed++ {
					faultSeed := seedBase + int64(seed) + 1
					cfg := productsort.FaultConfig{
						Seed:      faultSeed,
						DropRate:  rate,
						StallRate: rate / 2,
					}
					keys := gen(nw.Nodes(), seedBase*1009+int64(seed)*31+7)
					e := sweepEntry{
						Network: nw.Name(), Nodes: nw.Nodes(),
						Engine: engine, FaultRate: rate, Seed: faultSeed,
					}
					if engine == "resilient" {
						res, err := c.SortResilient(keys, cfg)
						if err != nil && !errors.Is(err, productsort.ErrUnrecoverable) {
							return nil, fmt.Errorf("chaos sweep: %s/%s rate %.2f seed %d: %w",
								nw.Name(), engine, rate, faultSeed, err)
						}
						e.Aborted = errors.Is(err, productsort.ErrUnrecoverable)
						e.Rounds = res.Rounds
						e.Sorted = productsort.IsSorted(res.Keys)
						e.Converged = !e.Aborted
						e.VerifierAccepted = !e.Aborted
						e.ScrubSorted = e.Sorted
						e.Injected = res.Faults.Injected
						e.Dropped = res.Faults.Dropped
						e.Stalled = res.Faults.Stalled
						if !e.Aborted && !e.Sorted {
							return nil, fmt.Errorf("chaos sweep: %s/%s rate %.2f seed %d: unsorted without abort",
								nw.Name(), engine, rate, faultSeed)
						}
					} else {
						res, err := c.SortRandomized(keys, productsort.RandomizedConfig{
							Q:         engine[len("randsort-"):],
							Seed:      faultSeed,
							MaxRounds: sweepMaxRounds,
							Faults:    cfg,
						})
						// The randomized engine must degrade, never
						// abort: any failure here fails the benchmark.
						if err != nil {
							return nil, fmt.Errorf("chaos sweep: %s/%s rate %.2f seed %d: %w",
								nw.Name(), engine, rate, faultSeed, err)
						}
						r := res.Random
						e.Rounds = res.Rounds
						e.Sorted = productsort.IsSorted(res.Keys)
						e.Converged = r.Converged
						e.VerifierAccepted = r.VerifierAccepted
						e.ScrubSorted = r.ScrubSorted
						if res.Faults != nil {
							e.Injected = res.Faults.Injected
							e.Dropped = res.Faults.Dropped
							e.Stalled = res.Faults.Stalled
						}
						if !e.Converged || !e.VerifierAccepted || !e.ScrubSorted || !e.Sorted {
							return nil, fmt.Errorf("chaos sweep: %s/%s rate %.2f seed %d: incomplete acceptance %+v",
								nw.Name(), engine, rate, faultSeed, r)
						}
					}
					if rate == 0 {
						base[engine][faultSeed] = e.Rounds
					}
					e.BaseRounds = base[engine][faultSeed]
					if e.BaseRounds > 0 {
						e.Overhead = float64(e.Rounds) / float64(e.BaseRounds)
					}
					entries = append(entries, e)
					sumRounds += e.Rounds
					sumOverhead += e.Overhead
					if e.Aborted {
						aborts++
					}
				}
				table.Add(nw.Name(), engine, fmt.Sprintf("%.2f", rate),
					sumRounds/seeds, fmt.Sprintf("%.2fx", sumOverhead/float64(seeds)),
					fmt.Sprintf("%d/%d", aborts, seeds))
			}
		}
	}

	// The sweep's thesis, enforced: at the top rate the deterministic
	// engine exhausts its retries somewhere, while every randomized run
	// above already converged (their failures returned early).
	top := sweepRates[len(sweepRates)-1]
	resilientAborted := false
	for _, e := range entries {
		if e.Engine == "resilient" && e.FaultRate == top && e.Aborted {
			resilientAborted = true
		}
	}
	if !resilientAborted {
		return nil, fmt.Errorf("chaos sweep: deterministic engine survived rate %.2f everywhere — the sweep no longer reaches its collapse point", top)
	}

	table.Note("DropRate = rate, StallRate = rate/2; overhead vs the engine's own fault-free run; deterministic aborts are recorded, randomized runs must always converge verifier-accepted")
	table.Render(os.Stdout)
	return entries, nil
}
