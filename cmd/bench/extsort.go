package main

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"time"

	"productsort"
)

// extsortEntry is one (input size, fan-in) cell: the streaming tier's
// wall clock and throughput next to a sort.Slice baseline over the
// same keys.
type extsortEntry struct {
	Keys    int `json:"keys"`
	FanIn   int `json:"fanIn"`
	RunSize int `json:"runSize"`
	// Runs, MergePasses and SpilledBytes come from the tier's own
	// accounting (extsort.Stats).
	Runs         int64 `json:"runs"`
	MergePasses  int   `json:"mergePasses"`
	SpilledBytes int64 `json:"spilledBytes"`
	// StreamNs is SortStream end to end; BaselineNs is sort.Slice on a
	// copy of the same input.
	StreamNs   int64 `json:"streamNs"`
	BaselineNs int64 `json:"baselineNs"`
	// StreamKeysPerSec and BaselineKeysPerSec are the derived
	// throughputs; Ratio is baseline/stream (>1 means sort.Slice wins).
	StreamKeysPerSec   float64 `json:"streamKeysPerSec"`
	BaselineKeysPerSec float64 `json:"baselineKeysPerSec"`
	Ratio              float64 `json:"ratio"`
}

// extsortReport is the BENCH_extsort.json document: a size sweep at
// the default fan-in followed by a fan-in sweep at a fixed size.
type extsortReport struct {
	Generated string         `json:"generated"`
	Network   string         `json:"network"`
	Nodes     int            `json:"nodes"`
	SizeSweep []extsortEntry `json:"sizeSweep"`
	FanSweep  []extsortEntry `json:"fanSweep"`
}

// runExtsortBench measures the streaming external sort tier (certified
// run formation + loser-tree merge) against sort.Slice and writes the
// report to path. Every streamed output is verified sorted with the
// right key count before its numbers are recorded.
func runExtsortBench(path, sizesCSV, faninsCSV string, seed int64) error {
	sizes, err := parseInts("extsortsizes", sizesCSV)
	if err != nil {
		return err
	}
	fanins, err := parseInts("fanins", faninsCSV)
	if err != nil {
		return err
	}
	nw, err := productsort.Hypercube(10)
	if err != nil {
		return err
	}
	c, err := productsort.Compile(nw)
	if err != nil {
		return err
	}
	rep := extsortReport{
		Generated: time.Now().UTC().Format(time.RFC3339),
		Network:   nw.Name(),
		Nodes:     nw.Nodes(),
	}
	fmt.Printf("extsort bench: %s (%d nodes)\n", rep.Network, rep.Nodes)

	for _, n := range sizes {
		e, err := extsortCell(c, n, 0, seed)
		if err != nil {
			return err
		}
		rep.SizeSweep = append(rep.SizeSweep, e)
		fmt.Printf("  size %9d: stream %8.0f keys/s, sort.Slice %8.0f keys/s (x%.2f), %d runs, %d merge passes\n",
			n, e.StreamKeysPerSec, e.BaselineKeysPerSec, e.Ratio, e.Runs, e.MergePasses)
	}
	// The fan-in sweep holds the input fixed at the second-largest size
	// (the largest is the slowest cell; the sweep multiplies it).
	fanN := sizes[0]
	if len(sizes) > 1 {
		fanN = sizes[len(sizes)-2]
	}
	for _, k := range fanins {
		e, err := extsortCell(c, fanN, k, seed)
		if err != nil {
			return err
		}
		rep.FanSweep = append(rep.FanSweep, e)
		fmt.Printf("  fan-in %4d (n=%d): stream %8.0f keys/s, %d merge passes\n",
			k, fanN, e.StreamKeysPerSec, e.MergePasses)
	}
	return writeJSONArtifact(path, &rep)
}

// extsortCell runs one measurement: n keys through SortStream with the
// given fan-in (0 = tier default), then sort.Slice over a copy.
func extsortCell(c *productsort.CompiledNetwork, n, fanIn int, seed int64) (extsortEntry, error) {
	if n < 1 {
		return extsortEntry{}, fmt.Errorf("extsort bench: size %d < 1", n)
	}
	rng := rand.New(rand.NewSource(seed + int64(n) + int64(fanIn)<<32))
	keys := make([]productsort.Key, n)
	for i := range keys {
		keys[i] = productsort.Key(rng.Int63() - 1<<62)
	}

	start := time.Now()
	got, stats, err := c.SortStreamKeys(context.Background(), keys, productsort.StreamConfig{FanIn: fanIn})
	streamNs := time.Since(start).Nanoseconds()
	if err != nil {
		return extsortEntry{}, fmt.Errorf("extsort bench: SortStream(n=%d, fanIn=%d): %w", n, fanIn, err)
	}
	if len(got) != n || !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		return extsortEntry{}, fmt.Errorf("extsort bench: SortStream(n=%d, fanIn=%d) output unsorted or truncated (%d keys)", n, fanIn, len(got))
	}

	base := append([]productsort.Key(nil), keys...)
	start = time.Now()
	sort.Slice(base, func(i, j int) bool { return base[i] < base[j] })
	baseNs := time.Since(start).Nanoseconds()

	return extsortEntry{
		Keys:               n,
		FanIn:              stats.MaxFanIn,
		RunSize:            stats.RunSize,
		Runs:               stats.Runs,
		MergePasses:        stats.MergePasses,
		SpilledBytes:       stats.SpilledBytes,
		StreamNs:           streamNs,
		BaselineNs:         baseNs,
		StreamKeysPerSec:   float64(n) / (float64(streamNs) / 1e9),
		BaselineKeysPerSec: float64(n) / (float64(baseNs) / 1e9),
		Ratio:              float64(baseNs) / float64(streamNs),
	}, nil
}

// parseInts parses a comma-separated list of positive integers.
func parseInts(flagName, s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("extsort bench: bad -%s entry %q", flagName, part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("extsort bench: -%s is empty", flagName)
	}
	return out, nil
}
