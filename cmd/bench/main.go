// Command bench regenerates the paper-reproduction tables and figures
// (experiments E1–E8 from DESIGN.md) and prints them to stdout.
//
// Usage:
//
//	bench                  # run all experiments
//	bench -exp e3          # run one experiment
//	bench -list            # list experiments
//	bench -trace t.json    # trace one sort, write a Chrome trace
//	bench -schedule        # cold-vs-warm schedule benchmark
//	bench -chaos           # resilient sorts under injected faults
//	bench -contend         # plan-store contention sweep across GOMAXPROCS
//	bench -cert            # bitsliced 0-1 certification of compiled programs
//	bench -extsort         # streaming external sort tier vs sort.Slice
//	bench -mode extsort    # same modes by name; unknown names fail the run
//
// Profiling flags (-cpuprofile, -memprofile) apply to every mode, so a
// single run produces a flamegraph-able profile alongside its output.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"productsort/internal/cli"
	"productsort/internal/exp"
)

func main() { os.Exit(run()) }

// run executes the selected mode and returns the process exit code.
// All failure paths return (never os.Exit) so profile flushing and
// other defers run.
func run() int {
	expID := flag.String("exp", "", "experiment id (e1..e14); empty runs all")
	list := flag.Bool("list", false, "list experiments and exit")
	outDir := flag.String("out", "", "also write each experiment's output to <dir>/<id>.txt")
	csvDir := flag.String("csv", "", "also write each table/figure as CSV into <dir>")
	schedMode := flag.Bool("schedule", false, "benchmark cold compile vs warm replay of the cached phase program and exit")
	schedOut := flag.String("scheduleout", "BENCH_schedule.json", "output path for -schedule")
	schedSets := flag.Int("sets", 64, "key sets per topology for -schedule")
	schedWorkers := flag.Int("workers", 0, "worker pool size for -schedule and -cert (0 = GOMAXPROCS)")
	chaosMode := flag.Bool("chaos", false, "run resilient sorts under injected faults across topologies and exit")
	chaosOut := flag.String("chaosout", "BENCH_chaos.json", "output path for -chaos")
	chaosSeeds := flag.Int("seeds", 5, "fault seeds per (topology, scenario) cell for -chaos")
	chaosBase := flag.Int64("chaosbase", 0, "fault seed base offset for -chaos (CI matrix legs use distinct bases)")
	serveMode := flag.Bool("serve", false, "drive the batching sort service with open-loop load and exit")
	serveOut := flag.String("serveout", "BENCH_serve.json", "output path for -serve")
	serveDur := flag.Duration("servedur", 2*time.Second, "measurement time per offered-load level for -serve")
	serveLoads := flag.String("loads", "2000,5000,10000,15000,20000,30000", "comma-separated offered loads (requests/sec) for -serve")
	serveSizes := flag.Int("servesizes", 64, "largest request size for -serve (Zipf sizes in 1..this)")
	serveSeed := flag.Int64("serveseed", 1, "arrival/size seed for -serve")
	contendMode := flag.Bool("contend", false, "sweep plan-store contention across GOMAXPROCS (old vs new store) and exit")
	contendOut := flag.String("contendout", "BENCH_contend.json", "output path for -contend")
	contendDur := flag.Duration("contenddur", 400*time.Millisecond, "measurement time per (store, procs) cell for -contend")
	contendProcs := flag.String("contendprocs", "1,4,0", "comma-separated GOMAXPROCS values for -contend (0 = all CPUs)")
	contendMinGain := flag.Float64("mingain", 0, "fail -contend unless the lock-free store's max-proc throughput is >= this multiple of its single-proc throughput (0 disables; auto-skips when the host has fewer CPUs than the sweep)")
	certMode := flag.Bool("cert", false, "certify built-in family/engine programs with the bitsliced 0-1 engine and exit")
	certOut := flag.String("certout", "BENCH_cert.json", "output path for -cert")
	certMax := flag.Int("certmax", 20, "largest key count certified exhaustively for -cert")
	certSample := flag.Int("certsample", 1<<16, "sampled-mode vector count for -cert")
	extsortMode := flag.Bool("extsort", false, "benchmark the streaming external sort tier against sort.Slice and exit")
	extsortOut := flag.String("extsortout", "BENCH_extsort.json", "output path for -extsort")
	extsortSizes := flag.String("extsortsizes", "10000,100000,1000000,10000000", "comma-separated input sizes for -extsort's size sweep")
	extsortFanins := flag.String("fanins", "2,4,8,16,32,64", "comma-separated merge fan-ins for -extsort's fan-in sweep")
	extsortSeed := flag.Int64("extsortseed", 1, "workload seed for -extsort")
	mode := flag.String("mode", "", "select a mode by name (exp, schedule, chaos, serve, contend, cert, extsort) instead of the boolean flags; unknown names fail the run")
	tracePath := flag.String("trace", "", "trace one sort on the selected network (-network/-n/-r), write Chrome trace_event JSON to this path, and exit")
	metricsPath := flag.String("metricsout", "", "with -trace: also write the metrics registry snapshot as JSON to this path")
	traceSeed := flag.Int64("traceseed", 1, "workload seed for -trace")
	faultSeed := flag.Int64("faultseed", 0, "with -trace: overlay deterministic faults with this seed (0 = fault-free)")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the whole run to this path")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile at exit to this path")
	netFlags := cli.RegisterNetworkFlags(nil)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	// -mode is the named-dispatch equivalent of the boolean mode flags.
	// An unknown name must fail loudly with the valid list — falling
	// through to "run all experiments" would silently run the wrong
	// thing for minutes and leave CI none the wiser.
	if *mode != "" {
		switch *mode {
		case "exp":
			// The default experiment path below.
		case "schedule":
			*schedMode = true
		case "chaos":
			*chaosMode = true
		case "serve":
			*serveMode = true
		case "contend":
			*contendMode = true
		case "cert":
			*certMode = true
		case "extsort":
			*extsortMode = true
		default:
			fmt.Fprintf(os.Stderr, "bench: unknown -mode %q (valid: exp, schedule, chaos, serve, contend, cert, extsort)\n", *mode)
			return 2
		}
	}

	switch {
	case *tracePath != "":
		if err := runTrace(netFlags, *tracePath, *metricsPath, *traceSeed, *faultSeed); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		return 0
	case *schedMode:
		if err := runScheduleBench(*schedOut, *schedSets, *schedWorkers); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		return 0
	case *chaosMode:
		if err := runChaosBench(*chaosOut, *chaosSeeds, *chaosBase); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		return 0
	case *serveMode:
		if err := runServeBench(*serveOut, *serveLoads, *serveDur, *serveSizes, *serveSeed); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		return 0
	case *contendMode:
		if err := runContendBench(*contendOut, *contendProcs, *contendDur, *contendMinGain); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		return 0
	case *certMode:
		if err := runCertBench(*certOut, *certMax, *certSample, *schedWorkers); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		return 0
	case *extsortMode:
		if err := runExtsortBench(*extsortOut, *extsortSizes, *extsortFanins, *extsortSeed); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		return 0
	}

	for _, d := range []string{*outDir, *csvDir} {
		if d != "" {
			if err := os.MkdirAll(d, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
		}
	}

	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return 0
	}
	var toRun []exp.Experiment
	if *expID == "" {
		toRun = exp.All()
	} else {
		e, err := exp.ByID(*expID)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		toRun = []exp.Experiment{e}
	}
	for _, e := range toRun {
		start := time.Now()
		res := e.Run()
		res.Render(os.Stdout)
		if *outDir != "" {
			if err := renderToFile(res, filepath.Join(*outDir, e.ID+".txt")); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
		}
		if *csvDir != "" {
			if _, err := res.WriteCSVs(*csvDir); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
		}
		fmt.Printf("(%s completed in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	return 0
}

// errWriter forwards writes to an underlying writer and remembers the
// first error, so renderers that do not propagate I/O errors (Render
// writes through fmt and drops them) still fail the run on a bad disk
// instead of leaving a silently truncated artifact.
type errWriter struct {
	w   io.Writer
	err error
}

// Write implements io.Writer.
func (ew *errWriter) Write(p []byte) (int, error) {
	if ew.err != nil {
		return 0, ew.err
	}
	n, err := ew.w.Write(p)
	if err != nil {
		ew.err = err
	}
	return n, err
}

// renderToFile writes res's rendering to path, propagating every write,
// sync and close error.
func renderToFile(res *exp.Result, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	ew := &errWriter{w: f}
	res.Render(ew)
	if ew.err != nil {
		f.Close()
		return fmt.Errorf("bench: writing %s: %w", path, ew.err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("bench: syncing %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("bench: closing %s: %w", path, err)
	}
	return nil
}
