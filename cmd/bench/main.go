// Command bench regenerates the paper-reproduction tables and figures
// (experiments E1–E8 from DESIGN.md) and prints them to stdout.
//
// Usage:
//
//	bench            # run all experiments
//	bench -exp e3    # run one experiment
//	bench -list      # list experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"productsort/internal/exp"
)

func main() {
	expID := flag.String("exp", "", "experiment id (e1..e14); empty runs all")
	list := flag.Bool("list", false, "list experiments and exit")
	outDir := flag.String("out", "", "also write each experiment's output to <dir>/<id>.txt")
	csvDir := flag.String("csv", "", "also write each table/figure as CSV into <dir>")
	schedMode := flag.Bool("schedule", false, "benchmark cold compile vs warm replay of the cached phase program and exit")
	schedOut := flag.String("scheduleout", "BENCH_schedule.json", "output path for -schedule")
	schedSets := flag.Int("sets", 64, "key sets per topology for -schedule")
	schedWorkers := flag.Int("workers", 0, "worker pool size for -schedule (0 = GOMAXPROCS)")
	chaosMode := flag.Bool("chaos", false, "run resilient sorts under injected faults across topologies and exit")
	chaosOut := flag.String("chaosout", "BENCH_chaos.json", "output path for -chaos")
	chaosSeeds := flag.Int("seeds", 5, "fault seeds per (topology, scenario) cell for -chaos")
	flag.Parse()

	if *schedMode {
		if err := runScheduleBench(*schedOut, *schedSets, *schedWorkers); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *chaosMode {
		if err := runChaosBench(*chaosOut, *chaosSeeds); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	for _, d := range []string{*outDir, *csvDir} {
		if d != "" {
			if err := os.MkdirAll(d, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}

	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}
	var toRun []exp.Experiment
	if *expID == "" {
		toRun = exp.All()
	} else {
		e, err := exp.ByID(*expID)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		toRun = []exp.Experiment{e}
	}
	for _, e := range toRun {
		start := time.Now()
		res := e.Run()
		res.Render(os.Stdout)
		if *outDir != "" {
			f, err := os.Create(filepath.Join(*outDir, e.ID+".txt"))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			res.Render(f)
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		if *csvDir != "" {
			if _, err := res.WriteCSVs(*csvDir); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		fmt.Printf("(%s completed in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
