// The -serve mode: open-loop load against the batching sort service.
//
// For each offered load level the driver replays a deterministic
// arrival trace (Poisson gaps from internal/workload) with Zipf request
// sizes, submits asynchronously, and measures per-request latency from
// the server's own Wait stamps. The output table and BENCH_serve.json
// report throughput, shed counts and p50/p95/p99 latency versus offered
// load — the saturation curve a capacity plan reads off.

package main

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"productsort"
	"productsort/internal/workload"
)

// serveLevel is one offered-load measurement.
type serveLevel struct {
	OfferedPerSec    float64 `json:"offered_per_sec"`
	Requests         int     `json:"requests"`
	Completed        int     `json:"completed"`
	Shed             int     `json:"shed"`
	ThroughputPerSec float64 `json:"throughput_per_sec"`
	P50Ms            float64 `json:"p50_ms"`
	P95Ms            float64 `json:"p95_ms"`
	P99Ms            float64 `json:"p99_ms"`
	MeanBatch        float64 `json:"mean_batch"`
	Elapsed          string  `json:"elapsed"`
}

// serveReport is the BENCH_serve.json schema.
type serveReport struct {
	MaxKeys  int          `json:"max_keys"`
	SizeMin  int          `json:"size_min"`
	SizeMax  int          `json:"size_max"`
	ZipfS    float64      `json:"zipf_s"`
	Duration string       `json:"duration_per_level"`
	Seed     int64        `json:"seed"`
	Levels   []serveLevel `json:"levels"`
}

// parseLoads splits a comma-separated list of offered loads (req/sec).
func parseLoads(s string) ([]float64, error) {
	var loads []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bench: bad load %q", part)
		}
		loads = append(loads, v)
	}
	if len(loads) == 0 {
		return nil, errors.New("bench: no offered loads")
	}
	return loads, nil
}

// runServeBench drives the serving benchmark and writes the artifact.
func runServeBench(outPath, loadsCSV string, dur time.Duration, sizeMax int, seed int64) error {
	loads, err := parseLoads(loadsCSV)
	if err != nil {
		return err
	}
	if sizeMax < 1 {
		return fmt.Errorf("bench: -servesizes %d < 1", sizeMax)
	}
	const zipfS = 1.2
	report := serveReport{
		SizeMin:  1,
		SizeMax:  sizeMax,
		ZipfS:    zipfS,
		Duration: dur.String(),
		Seed:     seed,
	}

	fmt.Printf("serve: open-loop load, Zipf(%.1f) sizes 1..%d, %v per level\n\n", zipfS, sizeMax, dur)
	fmt.Printf("%12s %10s %10s %8s %12s %9s %9s %9s %10s\n",
		"offered/s", "requests", "completed", "shed", "through/s", "p50 ms", "p95 ms", "p99 ms", "meanbatch")

	for li, load := range loads {
		// A fresh server per level: no warm plan cache leaking batch
		// state between levels (programs still share the process-wide
		// compile cache, which is the point of the compile/replay split).
		srv, err := productsort.NewServer(productsort.ServerConfig{MaxKeys: sizeMax})
		if err != nil {
			return err
		}
		if report.MaxKeys == 0 {
			report.MaxKeys = srv.MaxKeys()
		}
		n := int(load * dur.Seconds())
		if n < 1 {
			n = 1
		}
		levelSeed := seed + int64(li)
		gaps := workload.PoissonArrivals(n, load, levelSeed)
		sizes := workload.ZipfSizes(n, 1, sizeMax, zipfS, levelSeed+1)

		type outcome struct {
			wait  time.Duration
			batch int
			err   error
		}
		results := make([]outcome, n)
		var wg sync.WaitGroup
		start := time.Now()
		next := start
		for i := 0; i < n; i++ {
			next = next.Add(gaps[i])
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
			keys := workload.Uniform(sizes[i], levelSeed+int64(i))
			ch, err := srv.Submit(context.Background(), keys)
			if err != nil {
				results[i] = outcome{err: err}
				continue
			}
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				rep := <-ch
				results[i] = outcome{wait: rep.Wait, batch: rep.BatchSize, err: rep.Err}
			}(i)
		}
		wg.Wait()
		elapsed := time.Since(start)
		if err := srv.Close(context.Background()); err != nil {
			return err
		}

		var lat []time.Duration
		var shed, completed, batchSum int
		for _, r := range results {
			switch {
			case r.err == nil:
				lat = append(lat, r.wait)
				batchSum += r.batch
				completed++
			case errors.Is(r.err, productsort.ErrQueueFull):
				shed++
			default:
				return fmt.Errorf("bench: serve request failed: %w", r.err)
			}
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		pct := func(p float64) float64 {
			if len(lat) == 0 {
				return 0
			}
			idx := int(p * float64(len(lat)-1))
			return float64(lat[idx]) / float64(time.Millisecond)
		}
		meanBatch := 0.0
		if completed > 0 {
			meanBatch = float64(batchSum) / float64(completed)
		}
		lv := serveLevel{
			OfferedPerSec:    load,
			Requests:         n,
			Completed:        completed,
			Shed:             shed,
			ThroughputPerSec: float64(completed) / elapsed.Seconds(),
			P50Ms:            pct(0.50),
			P95Ms:            pct(0.95),
			P99Ms:            pct(0.99),
			MeanBatch:        meanBatch,
			Elapsed:          elapsed.Round(time.Millisecond).String(),
		}
		report.Levels = append(report.Levels, lv)
		fmt.Printf("%12.0f %10d %10d %8d %12.0f %9.3f %9.3f %9.3f %10.1f\n",
			lv.OfferedPerSec, lv.Requests, lv.Completed, lv.Shed,
			lv.ThroughputPerSec, lv.P50Ms, lv.P95Ms, lv.P99Ms, lv.MeanBatch)
	}

	fmt.Println()
	if err := writeJSONArtifact(outPath, report); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", outPath)
	return nil
}
