package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"
	"time"
)

func TestParseProcs(t *testing.T) {
	ncpu := runtime.NumCPU()
	for _, tc := range []struct {
		in      string
		want    []int
		wantErr bool
	}{
		{in: "1,4", want: []int{1, 4}},
		{in: "4, 1,4", want: []int{1, 4}},   // dedup + ascending
		{in: "0", want: []int{ncpu}},        // 0 = all CPUs
		{in: " 2 ,, 3 ", want: []int{2, 3}}, // whitespace and empties
		{in: "x", wantErr: true},
		{in: "-1", wantErr: true},
		{in: "", wantErr: true},
	} {
		got, err := parseProcs(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("parseProcs(%q) = %v, want error", tc.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseProcs(%q): %v", tc.in, err)
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("parseProcs(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

// TestRunContendBenchSweep drives a tiny real sweep end to end and
// checks the artifact schema: every (store, procs) cell present with
// positive throughput, gate recorded as disabled.
func TestRunContendBenchSweep(t *testing.T) {
	out := filepath.Join(t.TempDir(), "contend.json")
	if err := runContendBench(out, "1,2", 5*time.Millisecond, 0); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep contendReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if len(rep.Cells) != 4 {
		t.Fatalf("got %d cells, want 4 (2 stores x 2 proc counts)", len(rep.Cells))
	}
	for _, store := range []string{"mutex-lru", "lock-free"} {
		for _, procs := range []int{1, 2} {
			tp := throughputFor(rep.Cells, store, procs)
			if tp <= 0 {
				t.Errorf("store %s at %d procs: throughput %v, want > 0", store, procs, tp)
			}
		}
	}
	if throughputFor(rep.Cells, "no-such-store", 1) != 0 {
		t.Error("throughputFor invented a cell for an unknown store")
	}
	if rep.Gate.Enforced || !rep.Gate.Pass || rep.Gate.SkipReason == "" {
		t.Errorf("disabled gate misrecorded: %+v", rep.Gate)
	}
}

// TestRunContendBenchGateSkips: an armed gate must auto-skip (and
// pass) when the sweep cannot express contention — here, a
// single-proc-only sweep on any host.
func TestRunContendBenchGateSkips(t *testing.T) {
	out := filepath.Join(t.TempDir(), "contend.json")
	if err := runContendBench(out, "1", 5*time.Millisecond, 2); err != nil {
		t.Fatalf("armed gate on a 1-proc sweep must skip, not fail: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep contendReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Gate.Enforced || !rep.Gate.Pass {
		t.Fatalf("gate should be skipped and passing: %+v", rep.Gate)
	}
	if rep.Gate.SkipReason != "sweep has no multi-proc cell" {
		t.Fatalf("skip reason = %q", rep.Gate.SkipReason)
	}
	if rep.Gate.MinGain != 2 {
		t.Fatalf("artifact lost the requested mingain: %+v", rep.Gate)
	}
}

// TestSplitmix64Deterministic: the worker key refill is a pure stream.
func TestSplitmix64Deterministic(t *testing.T) {
	a, b := uint64(7), uint64(7)
	for i := 0; i < 100; i++ {
		if splitmix64(&a) != splitmix64(&b) {
			t.Fatal("splitmix64 diverged on identical state")
		}
	}
	c, d := uint64(1), uint64(2)
	if splitmix64(&c) == splitmix64(&d) {
		t.Fatal("distinct seeds produced identical first draw")
	}
}
