package main

import (
	"fmt"
	"os"

	"productsort"
	"productsort/internal/cli"
	"productsort/internal/workload"
)

// runTrace performs one traced sort on the network selected by the CLI
// flags (default: the 4×4×4 grid, a PG_3 instance), writes a Chrome
// trace_event JSON file, prints the per-phase round/time breakdown
// against the paper's predicted S_r(N), and cross-checks that the trace
// accounts for exactly the rounds the clock charged. With faultSeed !=
// 0 the run goes through the resilient replay, so the trace also
// carries checkpoint/scrub/retry instant events.
func runTrace(netFlags *cli.NetworkFlags, tracePath, metricsPath string, seed, faultSeed int64) error {
	nw, err := netFlags.Build()
	if err != nil {
		return err
	}
	recorder := productsort.NewTraceRecorder()
	metrics := productsort.NewMetrics()
	sorter, err := productsort.NewSorter(
		productsort.WithTracer(productsort.MultiTracer(recorder, productsort.NewMetricsCollector(metrics))))
	if err != nil {
		return err
	}
	c, err := sorter.Compile(nw)
	if err != nil {
		return err
	}
	gen, err := workload.ByName("uniform")
	if err != nil {
		return err
	}
	keys := gen(nw.Nodes(), seed)
	var res *productsort.Result
	if faultSeed != 0 {
		res, err = c.SortResilient(keys, productsort.FaultConfig{
			Seed: faultSeed, DropRate: 0.02, StallRate: 0.02, CorruptRate: 0.02,
		})
	} else {
		res, err = c.Sort(keys)
	}
	if err != nil {
		return err
	}
	if !productsort.IsSorted(res.Keys) {
		return fmt.Errorf("trace: output not sorted on %s", nw.Name())
	}

	// The trace must account for exactly what the clock charged. On a
	// fault-free run the phase events' round charges sum to the clock's
	// Rounds; under faults the phase stream additionally contains every
	// re-executed (retried/repaired) phase, whose charges are carried
	// by the recovery events instead, so there the recovery events must
	// sum to the clock's RecoveryRounds.
	if res.Faults == nil {
		if got := recorder.RoundTotal(); got != res.Rounds {
			return fmt.Errorf("trace: phase events sum to %d rounds, clock charged %d", got, res.Rounds)
		}
	} else {
		if got := recorder.RecoveryRounds(); got != res.Faults.RecoveryRounds {
			return fmt.Errorf("trace: recovery events sum to %d rounds, clock charged %d", got, res.Faults.RecoveryRounds)
		}
		if got, base := recorder.RoundTotal(), res.Rounds-res.Faults.RecoveryRounds; got < base {
			return fmt.Errorf("trace: phase events sum to %d rounds, below the %d base rounds", got, base)
		}
	}

	fmt.Printf("%s: %d nodes, engine %s\n", nw.Name(), nw.Nodes(), res.Engine)
	if predicted, err := nw.PredictedRounds(res.Engine); err == nil {
		fmt.Printf("rounds: measured %d (s2 %d + sweep %d), predicted S_r(N) = %d\n",
			res.Rounds, res.S2Rounds, res.SweepRounds, predicted)
	} else {
		fmt.Printf("rounds: measured %d (s2 %d + sweep %d)\n", res.Rounds, res.S2Rounds, res.SweepRounds)
	}
	fmt.Printf("phases: %d s2 invocations ((r-1)² = %d), %d sweeps ((r-1)(r-2) = %d)\n",
		res.S2Phases, (nw.Dims()-1)*(nw.Dims()-1), res.Sweeps, (nw.Dims()-1)*(nw.Dims()-2))
	if res.Faults != nil {
		fmt.Printf("faults: %d injected, %d detected, %d retried, %d recovery rounds\n",
			res.Faults.Injected, res.Faults.Detected, res.Faults.Retried, res.Faults.RecoveryRounds)
	}
	fmt.Println()
	if err := recorder.WriteBreakdown(os.Stdout); err != nil {
		return err
	}

	f, err := os.Create(tracePath)
	if err != nil {
		return err
	}
	if err := productsort.WriteChromeTrace(recorder, f); err != nil {
		f.Close()
		return fmt.Errorf("trace: writing %s: %w", tracePath, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("trace: syncing %s: %w", tracePath, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("trace: closing %s: %w", tracePath, err)
	}
	fmt.Printf("\nwrote %s (%d phase events; open with chrome://tracing or https://ui.perfetto.dev)\n",
		tracePath, recorder.Phases())

	if metricsPath != "" {
		if err := writeJSONArtifact(metricsPath, metrics.Snapshot()); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", metricsPath)
	}
	return nil
}
