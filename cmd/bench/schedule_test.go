package main

import (
	"testing"

	"productsort"
	"productsort/internal/workload"
)

// TestFamilyHeadToHead drives the cross-family bench cells end to end
// and checks the rows the artifact publishes: all three families at
// each size, everything certified (the helper errors otherwise), and
// the round ordering the planner tests pin — periodic < multiway <
// product at 64 keys.
func TestFamilyHeadToHead(t *testing.T) {
	gen, err := workload.ByName("uniform")
	if err != nil {
		t.Fatal(err)
	}
	fams, err := familyHeadToHead(4, gen)
	if err != nil {
		t.Fatal(err)
	}
	if len(fams) != 6 {
		t.Fatalf("got %d family rows, want 6 (3 families x 2 sizes)", len(fams))
	}
	rounds := map[string]int{}
	for _, e := range fams {
		if e.Rounds < 1 || e.Comparators < 1 || e.ColsPerSetNs < 0 {
			t.Fatalf("degenerate row: %+v", e)
		}
		if e.Nodes == 64 {
			rounds[e.Family] = e.Rounds
		}
		if e.Nodes == 16 && e.CertMode != "exhaustive" {
			t.Fatalf("%s[16] certified %s, want exhaustive", e.Family, e.CertMode)
		}
	}
	if !(rounds[productsort.FamilyPeriodic] < rounds[productsort.FamilyMultiway] &&
		rounds[productsort.FamilyMultiway] < rounds[productsort.FamilyProduct]) {
		t.Fatalf("round ordering at 64 keys: %v, want periodic < multiway < product", rounds)
	}
}

// TestPlannerSelections checks the published pick table: every swept
// request size has a pick, and the non-product gate the bench enforces
// actually holds.
func TestPlannerSelections(t *testing.T) {
	picks, err := plannerSelections()
	if err != nil {
		t.Fatal(err)
	}
	if len(picks) != 7 {
		t.Fatalf("got %d picks, want 7", len(picks))
	}
	nonProduct := 0
	for _, p := range picks {
		if p.Rounds < 1 || p.Network == "" {
			t.Fatalf("degenerate pick: %+v", p)
		}
		if p.Family != productsort.FamilyProduct {
			nonProduct++
		}
	}
	if nonProduct == 0 {
		t.Fatal("no non-product selection (the helper should have errored)")
	}
}
