package main

import (
	"fmt"
	"runtime"
	"time"

	"productsort"
	"productsort/internal/schedule"
	"productsort/internal/workload"
)

// scheduleEntry is one topology's cold-vs-warm measurement.
type scheduleEntry struct {
	Network string `json:"network"`
	Nodes   int    `json:"nodes"`
	Rounds  int    `json:"rounds"`
	// ColdNs is the wall-clock of compile + one sort with an empty cache
	// (the pre-refactor per-sort cost; best of 3).
	ColdNs int64 `json:"coldNs"`
	// WarmPerSetNs is the wall-clock per key set when Sets sets are
	// replayed through the cached program by the worker pool.
	WarmPerSetNs int64 `json:"warmPerSetNs"`
	// Speedup is ColdNs / WarmPerSetNs.
	Speedup float64 `json:"speedup"`
}

// scheduleReport is the BENCH_schedule.json document.
type scheduleReport struct {
	Generated string          `json:"generated"`
	Sets      int             `json:"sets"`
	Workers   int             `json:"workers"`
	Entries   []scheduleEntry `json:"entries"`
	// Compiles confirms the batch phase performed zero schedule
	// constructions beyond the cold ones.
	Compiles int64 `json:"compiles"`
}

// runScheduleBench contrasts cold compile+sort against warm batch
// replay on a spread of topologies and writes the report to path.
func runScheduleBench(path string, sets, workers int) error {
	if sets < 1 {
		return fmt.Errorf("schedule bench: -sets %d < 1", sets)
	}
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	nets := []*productsort.Network{}
	for _, build := range []func() (*productsort.Network, error){
		func() (*productsort.Network, error) { return productsort.Grid(8, 3) },
		func() (*productsort.Network, error) { return productsort.Hypercube(9) },
		func() (*productsort.Network, error) { return productsort.PetersenCube(2) },
		func() (*productsort.Network, error) { return productsort.MeshConnectedTrees(3, 2) },
	} {
		nw, err := build()
		if err != nil {
			return err
		}
		nets = append(nets, nw)
	}
	gen, err := workload.ByName("uniform")
	if err != nil {
		return err
	}

	report := scheduleReport{
		Generated: time.Now().UTC().Format(time.RFC3339),
		Sets:      sets,
		Workers:   workers,
	}
	for _, nw := range nets {
		// Cold: empty cache, compile + one sort. Best of 3 to shed
		// scheduler noise.
		var cold time.Duration
		for rep := 0; rep < 3; rep++ {
			schedule.ResetCache()
			keys := gen(nw.Nodes(), int64(rep))
			start := time.Now()
			c, err := productsort.Compile(nw)
			if err != nil {
				return err
			}
			if _, err := c.Sort(keys); err != nil {
				return err
			}
			if d := time.Since(start); rep == 0 || d < cold {
				cold = d
			}
		}

		// Warm: M sets through the cached program across the pool.
		c, err := productsort.Compile(nw)
		if err != nil {
			return err
		}
		before := schedule.Stats().Compiles
		batch := make([][]productsort.Key, sets)
		for i := range batch {
			batch[i] = gen(nw.Nodes(), int64(i)+100)
		}
		start := time.Now()
		if err := c.SortBatch(batch, workers); err != nil {
			return err
		}
		warm := time.Since(start)
		if got := schedule.Stats().Compiles; got != before {
			return fmt.Errorf("schedule bench: batch recompiled (%d -> %d constructions)", before, got)
		}
		for i, set := range batch {
			if !productsort.IsSorted(set) {
				return fmt.Errorf("schedule bench: %s batch set %d not sorted", nw.Name(), i)
			}
		}

		perSet := warm.Nanoseconds() / int64(sets)
		e := scheduleEntry{
			Network:      nw.Name(),
			Nodes:        nw.Nodes(),
			Rounds:       c.Rounds(),
			ColdNs:       cold.Nanoseconds(),
			WarmPerSetNs: perSet,
		}
		if perSet > 0 {
			e.Speedup = float64(e.ColdNs) / float64(perSet)
		}
		report.Entries = append(report.Entries, e)
		fmt.Printf("%-22s nodes=%-5d cold=%-12v warm/set=%-12v speedup=%.1fx\n",
			nw.Name(), nw.Nodes(), cold.Round(time.Microsecond),
			time.Duration(perSet).Round(time.Microsecond), e.Speedup)
	}
	report.Compiles = schedule.Stats().Compiles

	if err := writeJSONArtifact(path, report); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d sets, %d workers)\n", path, sets, workers)
	return nil
}
