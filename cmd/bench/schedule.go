package main

import (
	"fmt"
	"runtime"
	"time"

	"productsort"
	"productsort/internal/graph"
	"productsort/internal/product"
	"productsort/internal/schedule"
	"productsort/internal/serve"
	"productsort/internal/sort2d"
	"productsort/internal/workload"
)

// scheduleEntry is one topology's cold-vs-warm measurement.
type scheduleEntry struct {
	Network string `json:"network"`
	Family  string `json:"family"`
	Nodes   int    `json:"nodes"`
	Rounds  int    `json:"rounds"`
	// ColdNs is the wall-clock of compile + one sort with an empty cache
	// (the pre-refactor per-sort cost; best of 3).
	ColdNs int64 `json:"coldNs"`
	// WarmPerSetNs is the wall-clock per key set when Sets sets are
	// replayed through the cached program by the worker pool.
	WarmPerSetNs int64 `json:"warmPerSetNs"`
	// Speedup is ColdNs / WarmPerSetNs.
	Speedup float64 `json:"speedup"`
	// RowsPerSetNs and ColsPerSetNs are the single-worker rows-vs-
	// columns head-to-head: the same full-size batch replayed through
	// the row-at-a-time snake path (RunBatchSnake) and the columnar
	// kernel (RunBatchColumnar), best of 3, per set.
	RowsPerSetNs int64 `json:"rowsPerSetNs"`
	ColsPerSetNs int64 `json:"colsPerSetNs"`
	// ColSpeedup is RowsPerSetNs / ColsPerSetNs — the factor the
	// struct-of-arrays transform buys on this topology.
	ColSpeedup float64 `json:"colSpeedup"`
}

// familyEntry is one cell of the cross-family head-to-head: the same
// request size served by the product, multiway and periodic
// constructions, measured on the axes the serve planner and the CI
// gate care about.
type familyEntry struct {
	Family      string `json:"family"`
	Network     string `json:"network"`
	Nodes       int    `json:"nodes"`
	Rounds      int    `json:"rounds"`
	Comparators int    `json:"comparators"`
	// CertMode and CertifiedMs record the certification run (exhaustive
	// proof inside the envelope, seeded sample above it) and its wall
	// time.
	CertMode    string  `json:"certMode"`
	CertifiedMs float64 `json:"certifiedMs"`
	// ColsPerSetNs is the columnar batch kernel's per-set replay time —
	// the emitted families run through the exact same kernel as the
	// product programs.
	ColsPerSetNs int64 `json:"colsPerSetNs"`
}

// plannerPick records which family the cross-family serve planner
// selects for one request size.
type plannerPick struct {
	RequestKeys int    `json:"requestKeys"`
	Family      string `json:"family"`
	Network     string `json:"network"`
	Rounds      int    `json:"rounds"`
}

// scheduleReport is the BENCH_schedule.json document.
type scheduleReport struct {
	Generated string          `json:"generated"`
	Sets      int             `json:"sets"`
	Workers   int             `json:"workers"`
	Entries   []scheduleEntry `json:"entries"`
	// Families is the product-vs-multiway-vs-periodic head-to-head at a
	// spread of power-of-two sizes.
	Families []familyEntry `json:"families"`
	// PlannerSelections shows which family a mixed-candidate serve
	// planner picks per request size; the bench fails unless at least
	// one non-product family wins somewhere.
	PlannerSelections []plannerPick `json:"plannerSelections"`
	// Compiles confirms the batch phase performed zero schedule
	// constructions beyond the cold ones.
	Compiles int64 `json:"compiles"`
}

// runScheduleBench contrasts cold compile+sort against warm batch
// replay on a spread of topologies and writes the report to path.
func runScheduleBench(path string, sets, workers int) error {
	if sets < 1 {
		return fmt.Errorf("schedule bench: -sets %d < 1", sets)
	}
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Each topology pairs the root network (for the public-API cold/warm
	// measurement) with its factor graph + dimension (so the kernel
	// head-to-head can reach the internal compiled program directly).
	type topo struct {
		nw     *productsort.Network
		factor *graph.Graph
		r      int
	}
	nets := []topo{}
	for _, build := range []struct {
		root   func() (*productsort.Network, error)
		factor func() *graph.Graph
		r      int
	}{
		{func() (*productsort.Network, error) { return productsort.Grid(8, 2) }, func() *graph.Graph { return graph.Path(8) }, 2},
		{func() (*productsort.Network, error) { return productsort.Grid(8, 3) }, func() *graph.Graph { return graph.Path(8) }, 3},
		{func() (*productsort.Network, error) { return productsort.Hypercube(9) }, func() *graph.Graph { return graph.K2() }, 9},
		{func() (*productsort.Network, error) { return productsort.PetersenCube(2) }, func() *graph.Graph { return graph.Petersen() }, 2},
		{func() (*productsort.Network, error) { return productsort.MeshConnectedTrees(3, 2) }, func() *graph.Graph { return graph.CompleteBinaryTree(3) }, 2},
	} {
		nw, err := build.root()
		if err != nil {
			return err
		}
		nets = append(nets, topo{nw: nw, factor: build.factor(), r: build.r})
	}
	gen, err := workload.ByName("uniform")
	if err != nil {
		return err
	}

	report := scheduleReport{
		Generated: time.Now().UTC().Format(time.RFC3339),
		Sets:      sets,
		Workers:   workers,
	}
	for _, tp := range nets {
		nw := tp.nw
		// Cold: empty cache, compile + one sort. Best of 3 to shed
		// scheduler noise.
		var cold time.Duration
		for rep := 0; rep < 3; rep++ {
			schedule.ResetCache()
			keys := gen(nw.Nodes(), int64(rep))
			start := time.Now()
			c, err := productsort.Compile(nw)
			if err != nil {
				return err
			}
			if _, err := c.Sort(keys); err != nil {
				return err
			}
			if d := time.Since(start); rep == 0 || d < cold {
				cold = d
			}
		}

		// Warm: M sets through the cached program across the pool.
		c, err := productsort.Compile(nw)
		if err != nil {
			return err
		}
		before := schedule.Stats().Compiles
		batch := make([][]productsort.Key, sets)
		for i := range batch {
			batch[i] = gen(nw.Nodes(), int64(i)+100)
		}
		start := time.Now()
		if err := c.SortBatch(batch, workers); err != nil {
			return err
		}
		warm := time.Since(start)
		if got := schedule.Stats().Compiles; got != before {
			return fmt.Errorf("schedule bench: batch recompiled (%d -> %d constructions)", before, got)
		}
		for i, set := range batch {
			if !productsort.IsSorted(set) {
				return fmt.Errorf("schedule bench: %s batch set %d not sorted", nw.Name(), i)
			}
		}

		perSet := warm.Nanoseconds() / int64(sets)
		e := scheduleEntry{
			Network:      nw.Name(),
			Family:       productsort.FamilyProduct,
			Nodes:        nw.Nodes(),
			Rounds:       c.Rounds(),
			ColdNs:       cold.Nanoseconds(),
			WarmPerSetNs: perSet,
		}
		if perSet > 0 {
			e.Speedup = float64(e.ColdNs) / float64(perSet)
		}
		rowsNs, colsNs, err := rowsVsColumns(tp.factor, tp.r, sets, gen)
		if err != nil {
			return err
		}
		e.RowsPerSetNs, e.ColsPerSetNs = rowsNs, colsNs
		if e.ColsPerSetNs > 0 {
			e.ColSpeedup = float64(e.RowsPerSetNs) / float64(e.ColsPerSetNs)
		}
		report.Entries = append(report.Entries, e)
		fmt.Printf("%-22s nodes=%-5d cold=%-12v warm/set=%-12v speedup=%-8.1fx rows/set=%-10v cols/set=%-10v cols-speedup=%.1fx\n",
			nw.Name(), nw.Nodes(), cold.Round(time.Microsecond),
			time.Duration(perSet).Round(time.Microsecond), e.Speedup,
			time.Duration(e.RowsPerSetNs), time.Duration(e.ColsPerSetNs), e.ColSpeedup)
	}
	report.Compiles = schedule.Stats().Compiles

	fams, err := familyHeadToHead(sets, gen)
	if err != nil {
		return err
	}
	report.Families = fams
	picks, err := plannerSelections()
	if err != nil {
		return err
	}
	report.PlannerSelections = picks

	if err := writeJSONArtifact(path, report); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d sets, %d workers)\n", path, sets, workers)
	return nil
}

// familyHeadToHead races the three constructions at the same sizes:
// rounds and comparator counts from the compiled programs, certified
// wall time from the bitsliced prover, and per-set columnar replay time
// through the shared batch kernel.
func familyHeadToHead(sets int, gen workload.Gen) ([]familyEntry, error) {
	families := []string{productsort.FamilyProduct, productsort.FamilyMultiway, productsort.FamilyPeriodic}
	var out []familyEntry
	for _, size := range []int{16, 64} {
		for _, family := range families {
			c, err := productsort.CompileFamily(family, size)
			if err != nil {
				return nil, fmt.Errorf("family head-to-head: %s[%d]: %w", family, size, err)
			}
			crt, err := c.Certify(&productsort.CertifyOptions{Seed: 1})
			if err != nil {
				return nil, err
			}
			if !crt.Certified {
				return nil, fmt.Errorf("family head-to-head: %s[%d] failed certification: %+v",
					family, size, crt.Witness)
			}
			mode := "sampled"
			if crt.Exhaustive {
				mode = "exhaustive"
			}

			batch := make([][]productsort.Key, sets)
			for i := range batch {
				batch[i] = gen(size, int64(i)+300)
			}
			var cols time.Duration
			for rep := 0; rep < 3; rep++ {
				for i := range batch {
					copy(batch[i], gen(size, int64(i)+300))
				}
				start := time.Now()
				if err := c.SortBatch(batch, 1); err != nil {
					return nil, err
				}
				if d := time.Since(start); rep == 0 || d < cols {
					cols = d
				}
			}
			for i, set := range batch {
				if !productsort.IsSorted(set) {
					return nil, fmt.Errorf("family head-to-head: %s[%d] set %d not sorted", family, size, i)
				}
			}

			name := c.Network().Name()
			switch family {
			case productsort.FamilyMultiway:
				name = fmt.Sprintf("multiway%d[%d]", productsort.MultiwaySorterWidth, size)
			case productsort.FamilyPeriodic:
				name = fmt.Sprintf("periodic[%d]", size)
			}
			e := familyEntry{
				Family:       family,
				Network:      name,
				Nodes:        size,
				Rounds:       c.Rounds(),
				Comparators:  c.Size(),
				CertMode:     mode,
				CertifiedMs:  float64(crt.Elapsed) / float64(time.Millisecond),
				ColsPerSetNs: cols.Nanoseconds() / int64(sets),
			}
			out = append(out, e)
			fmt.Printf("family %-9s n=%-4d net=%-14s rounds=%-4d comparators=%-6d cert=%-10s %-8.1fms cols/set=%v\n",
				family, size, e.Network, e.Rounds, e.Comparators, mode, e.CertifiedMs,
				time.Duration(e.ColsPerSetNs))
		}
	}
	return out, nil
}

// plannerSelections builds the mixed-family serve planner (hypercubes
// plus both emitted families up to 64 keys) and records its pick per
// request size. At least one non-product selection is required — the
// cross-family planner existing is only worth shipping if it ever
// disagrees with the product-only one.
func plannerSelections() ([]plannerPick, error) {
	var cands []serve.Candidate
	for r := 1; r <= 6; r++ {
		cands = append(cands, serve.Candidate{Net: product.MustNew(graph.K2(), r)})
	}
	fam, err := serve.FamilyCandidates(
		[]string{productsort.FamilyMultiway, productsort.FamilyPeriodic}, 64)
	if err != nil {
		return nil, err
	}
	engine, err := sort2d.ByName("auto")
	if err != nil {
		return nil, err
	}
	pl, err := serve.NewPlannerCandidates(append(cands, fam...), engine)
	if err != nil {
		return nil, err
	}
	var picks []plannerPick
	nonProduct := 0
	for _, n := range []int{2, 4, 8, 16, 24, 32, 64} {
		plan, err := pl.For(n)
		if err != nil {
			return nil, err
		}
		if plan.Family != productsort.FamilyProduct {
			nonProduct++
		}
		picks = append(picks, plannerPick{
			RequestKeys: n, Family: plan.Family, Network: plan.Name(), Rounds: plan.Rounds,
		})
		fmt.Printf("planner n=%-4d -> %-9s %-14s rounds=%d\n", n, plan.Family, plan.Name(), plan.Rounds)
	}
	if nonProduct == 0 {
		return nil, fmt.Errorf("planner selections: no request size picked a non-product family")
	}
	return picks, nil
}

// rowsVsColumns times the same full-size batch through the row-at-a-
// time snake replay (RunBatchSnake) and the columnar kernel
// (RunBatchColumnar), single worker so the numbers compare kernels and
// not scheduling. Best of 3 runs each, per-set nanoseconds.
func rowsVsColumns(factor *graph.Graph, r, sets int, gen workload.Gen) (rowsNs, colsNs int64, err error) {
	net := product.MustNew(factor, r)
	prog, err := schedule.Compile(net, nil)
	if err != nil {
		return 0, 0, err
	}
	nodes := net.Nodes()
	pristine := make([][]productsort.Key, sets)
	for i := range pristine {
		pristine[i] = gen(nodes, int64(i)+200)
	}
	batch := make([][]productsort.Key, sets)
	for i := range batch {
		batch[i] = make([]productsort.Key, nodes)
	}
	reload := func() {
		for i := range batch {
			copy(batch[i], pristine[i])
		}
	}

	rowBuf := schedule.NewBatchBuffer()
	colBuf := schedule.NewColumnBuffer()
	// Warm both pools so the timed runs see the steady-state path.
	reload()
	if err := schedule.RunBatchSnake(prog, batch, 1, rowBuf); err != nil {
		return 0, 0, err
	}
	reload()
	if err := schedule.RunBatchColumnar(prog, batch, 1, colBuf); err != nil {
		return 0, 0, err
	}

	var rows, cols time.Duration
	for rep := 0; rep < 3; rep++ {
		reload()
		start := time.Now()
		if err := schedule.RunBatchSnake(prog, batch, 1, rowBuf); err != nil {
			return 0, 0, err
		}
		if d := time.Since(start); rep == 0 || d < rows {
			rows = d
		}

		reload()
		start = time.Now()
		if err := schedule.RunBatchColumnar(prog, batch, 1, colBuf); err != nil {
			return 0, 0, err
		}
		if d := time.Since(start); rep == 0 || d < cols {
			cols = d
		}
	}
	for i, set := range batch {
		if !productsort.IsSorted(set) {
			return 0, 0, fmt.Errorf("rows-vs-columns: set %d not sorted after columnar replay", i)
		}
	}
	return rows.Nanoseconds() / int64(sets), cols.Nanoseconds() / int64(sets), nil
}
