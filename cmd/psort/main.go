// Command psort sorts a workload on a chosen product network with the
// generalized multiway-merge algorithm and reports the parallel cost.
//
// Usage examples:
//
//	psort -network grid -n 4 -r 3
//	psort -network hypercube -r 8 -workload reverse
//	psort -network mct -levels 3 -r 2 -engine shearsort -v
//	psort -network petersen -r 2 -goroutines
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"productsort"
	"productsort/internal/cli"
	"productsort/internal/workload"
)

func main() {
	nf := cli.RegisterNetworkFlags(nil)
	var (
		wl       = flag.String("workload", "uniform", fmt.Sprintf("one of %v", workload.Names()))
		seed     = flag.Int64("seed", 1, "workload seed")
		engine   = flag.String("engine", "auto", "S2 engine: auto | shearsort | snake-oet | opt4")
		gor      = flag.Bool("goroutines", false, "execute phases with message-passing goroutines")
		spmdMode = flag.Bool("spmd", false, "run the fully concurrent SPMD engine afterwards and cross-check")
		verbose  = flag.Bool("v", false, "print keys before/after")
		trace    = flag.Bool("trace", false, "render machine state after each stage (r ≤ 3 grids)")
		maxPrint = flag.Int("maxprint", 64, "max keys to print with -v")
		block    = flag.Int("block", 0, "also run the blocked sort with this many keys per processor")
		batch    = flag.Int("batch", 0, "also sort this many independent key sets through the one compiled program")
		workers  = flag.Int("workers", 0, "worker pool size for -batch (0 = auto)")
	)
	flag.Parse()

	nw, err := nf.Build()
	if err != nil {
		fail(err)
	}
	gen, err := workload.ByName(*wl)
	if err != nil {
		fail(err)
	}
	keys := gen(nw.Nodes(), *seed)

	opts := []productsort.Option{productsort.WithEngine(*engine)}
	if *gor {
		opts = append(opts, productsort.WithGoroutines())
	}
	if *trace {
		opts = append(opts, productsort.WithObserver(func(stage string, snakeKeys []productsort.Key) {
			fmt.Printf("--- %s ---\n%s", stage, nw.Render(snakeKeys))
		}))
	}
	s, err := productsort.NewSorter(opts...)
	if err != nil {
		fail(err)
	}
	if *verbose {
		printKeys("input (snake order)", keys, *maxPrint)
	}
	res, err := s.Sort(nw, keys)
	if err != nil {
		fail(err)
	}
	if *verbose {
		printKeys("output (snake order)", res.Keys, *maxPrint)
	}

	fmt.Printf("network            %s (%d nodes, %d edges, diameter %d)\n", nw.Name(), nw.Nodes(), nw.Edges(), nw.Diameter())
	fmt.Printf("factor             N=%d, hamiltonian-labeled=%v\n", nw.FactorSize(), nw.HamiltonianFactor())
	fmt.Printf("engine             %s\n", res.Engine)
	fmt.Printf("sorted             %v\n", productsort.IsSorted(res.Keys))
	fmt.Printf("rounds             %d (S2 %d + sweeps %d)\n", res.Rounds, res.S2Rounds, res.SweepRounds)
	fmt.Printf("S2 phases          %d  (Theorem 1: (r-1)^2 = %d)\n", res.S2Phases, (nw.Dims()-1)*(nw.Dims()-1))
	fmt.Printf("sweep phases       %d  (Theorem 1: (r-1)(r-2) = %d)\n", res.Sweeps, (nw.Dims()-1)*(nw.Dims()-2))
	fmt.Printf("routed phases      %d\n", res.RoutedPhases)
	if pred, err := nw.PredictedRounds(*engine); err == nil && nw.HamiltonianFactor() {
		fmt.Printf("predicted rounds   %d (Theorem 1 with R=1)\n", pred)
	}
	if *block > 0 {
		sched, err := productsort.ExtractSchedule(nw, *engine)
		if err != nil {
			fail(err)
		}
		blockKeys := gen(nw.Nodes()*(*block), *seed+1)
		st, err := sched.SortBlocks(blockKeys, *block)
		if err != nil {
			fail(err)
		}
		fmt.Printf("block sort         %d keys (%d/processor): rounds=%d sorted=%v\n",
			len(blockKeys), *block, st.Rounds, productsort.IsSorted(blockKeys))
	}
	if *batch > 0 {
		c, err := s.Compile(nw)
		if err != nil {
			fail(err)
		}
		sets := make([][]productsort.Key, *batch)
		for i := range sets {
			sets[i] = gen(nw.Nodes(), *seed+int64(i)+2)
		}
		start := time.Now()
		if err := c.SortBatch(sets, *workers); err != nil {
			fail(err)
		}
		elapsed := time.Since(start)
		sorted := true
		for _, set := range sets {
			if !productsort.IsSorted(set) {
				sorted = false
				break
			}
		}
		fmt.Printf("batch              %d sets × %d keys via cached program: %v total, %v/set, all-sorted=%v\n",
			*batch, nw.Nodes(), elapsed.Round(time.Microsecond),
			(elapsed / time.Duration(*batch)).Round(time.Microsecond), sorted)
	}
	if *spmdMode {
		mp, err := productsort.SortMessagePassing(nw, keys)
		if err != nil {
			fail(err)
		}
		agree := true
		for i := range mp.Keys {
			if mp.Keys[i] != res.Keys[i] {
				agree = false
				break
			}
		}
		fmt.Printf("spmd engine        messages=%d relays=%d agrees-with-simulator=%v\n",
			mp.Messages, mp.Relays, agree)
	}
}

func printKeys(label string, keys []productsort.Key, max int) {
	fmt.Printf("%s:", label)
	for i, k := range keys {
		if i >= max {
			fmt.Printf(" … (%d more)", len(keys)-max)
			break
		}
		fmt.Printf(" %d", k)
	}
	fmt.Println()
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "psort:", err)
	os.Exit(1)
}
