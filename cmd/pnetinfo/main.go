// Command pnetinfo prints structural properties of product networks:
// node/edge counts, degree, diameter, factor labeling quality, the
// snake order, and Graphviz DOT renderings — the quantities Section 2
// of the paper builds on.
//
// Usage examples:
//
//	pnetinfo -network petersen -r 2
//	pnetinfo -network mct -levels 3 -r 2 -snake
//	pnetinfo -network grid -n 3 -r 2 -dot | dot -Tpng > grid.png
//	pnetinfo -network petersen -r 2 -factordot
package main

import (
	"flag"
	"fmt"
	"os"

	"productsort/internal/cli"
)

func main() {
	nf := cli.RegisterNetworkFlags(nil)
	var (
		snake     = flag.Bool("snake", false, "print the snake order (node ids)")
		maxOut    = flag.Int("max", 128, "max snake entries to print")
		dot       = flag.Bool("dot", false, "emit the product network as Graphviz DOT and exit")
		factorDot = flag.Bool("factordot", false, "emit the factor graph as Graphviz DOT and exit")
	)
	flag.Parse()

	nw, err := nf.Build()
	if err != nil {
		fmt.Fprintln(os.Stderr, "pnetinfo:", err)
		os.Exit(1)
	}
	if *dot {
		fmt.Print(nw.DOT())
		return
	}
	if *factorDot {
		fmt.Print(nw.FactorDOT())
		return
	}
	fmt.Printf("network      %s\n", nw.Name())
	fmt.Printf("nodes        %d (N=%d, r=%d)\n", nw.Nodes(), nw.FactorSize(), nw.Dims())
	fmt.Printf("radices      %v (dimension 1 first)\n", nw.Radices())
	fmt.Printf("edges        %d\n", nw.Edges())
	fmt.Printf("diameter     %d\n", nw.Diameter())
	fmt.Printf("factor       hamiltonian-labeled=%v\n", nw.HamiltonianFactor())
	if pred, err := nw.PredictedRounds("auto"); err == nil {
		fmt.Printf("sort rounds  %d (Theorem 1 with auto engine, R=1)\n", pred)
	}
	if *snake {
		fmt.Printf("snake order (node ids):")
		for pos, id := range nw.SnakeOrder() {
			if pos >= *maxOut {
				fmt.Printf(" … (%d more)", nw.Nodes()-*maxOut)
				break
			}
			fmt.Printf(" %d", id)
		}
		fmt.Println()
	}
}
