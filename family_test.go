package productsort

import (
	"context"
	"errors"
	"math/rand"
	"sort"
	"testing"
)

// TestCompileFamilyDispatch: every family compiles through the one
// CompileFamily entry point into a CompiledNetwork that sorts and
// reports its family.
func TestCompileFamilyDispatch(t *testing.T) {
	for _, family := range []string{FamilyProduct, FamilyMultiway, FamilyPeriodic} {
		c, err := CompileFamily(family, 16)
		if err != nil {
			t.Fatalf("CompileFamily(%s, 16): %v", family, err)
		}
		if c.Family() != family {
			t.Fatalf("CompileFamily(%s).Family() = %q", family, c.Family())
		}
		if c.Rounds() < 1 || c.Size() < 1 {
			t.Fatalf("%s: rounds %d size %d", family, c.Rounds(), c.Size())
		}
		rng := rand.New(rand.NewSource(7))
		keys := make([]Key, 16)
		for i := range keys {
			keys[i] = Key(rng.Intn(100))
		}
		res, err := c.Sort(keys)
		if err != nil {
			t.Fatalf("%s Sort: %v", family, err)
		}
		if !IsSorted(res.Keys) {
			t.Fatalf("%s Sort left %v", family, res.Keys)
		}
		if res.Rounds != c.Rounds() {
			t.Fatalf("%s: result rounds %d != compiled rounds %d", family, res.Rounds, c.Rounds())
		}
	}
}

// TestEmittedFamiliesBatchAndCertify: the emitted families run through
// the same columnar batch kernel and bitsliced certifier as the product
// family, unchanged.
func TestEmittedFamiliesBatchAndCertify(t *testing.T) {
	compile := map[string]func(int) (*CompiledNetwork, error){
		FamilyMultiway: CompileMultiway,
		FamilyPeriodic: CompilePeriodic,
	}
	for family, f := range compile {
		c, err := f(16)
		if err != nil {
			t.Fatalf("%s: %v", family, err)
		}
		cert, err := c.Certify(nil)
		if err != nil {
			t.Fatalf("%s Certify: %v", family, err)
		}
		if !cert.Certified || !cert.Exhaustive {
			t.Fatalf("%s: certified=%v exhaustive=%v witness=%+v",
				family, cert.Certified, cert.Exhaustive, cert.Witness)
		}
		rng := rand.New(rand.NewSource(11))
		batch := make([][]Key, 8)
		for i := range batch {
			batch[i] = make([]Key, 16)
			for j := range batch[i] {
				batch[i][j] = Key(rng.Intn(50))
			}
		}
		if err := c.SortBatch(batch, 2); err != nil {
			t.Fatalf("%s SortBatch: %v", family, err)
		}
		for i, keys := range batch {
			if !IsSorted(keys) {
				t.Fatalf("%s batch[%d] unsorted: %v", family, i, keys)
			}
		}
	}
}

// TestCompileMultiwayNSorterWidths: the sorter-width knob changes the
// construction but never the contract.
func TestCompileMultiwayNSorterWidths(t *testing.T) {
	for _, s := range []int{2, 4, 8} {
		c, err := CompileMultiwayN(8, s)
		if err != nil {
			t.Fatalf("sorter %d: %v", s, err)
		}
		cert, err := c.Certify(nil)
		if err != nil || !cert.Certified || !cert.Exhaustive {
			t.Fatalf("sorter %d: cert %+v err %v", s, cert, err)
		}
	}
}

// TestCompileFamilyRejects pins the shape validation: power-of-two
// sizes only, known family names only.
func TestCompileFamilyRejects(t *testing.T) {
	for _, family := range []string{FamilyProduct, FamilyMultiway, FamilyPeriodic} {
		for _, n := range []int{0, 1, 3, 12} {
			if _, err := CompileFamily(family, n); err == nil {
				t.Errorf("CompileFamily(%s, %d) accepted", family, n)
			}
		}
	}
	if _, err := CompileFamily("fancy", 8); err == nil {
		t.Error("unknown family accepted")
	}
	if _, err := CompileMultiwayN(8, 3); err == nil {
		t.Error("non-power-of-two sorter width accepted")
	}
}

// TestEmittedFamilyGuards: product-geometry entry points reject emitted
// families with the typed sentinel instead of misbehaving on the 1-D
// host.
func TestEmittedFamilyGuards(t *testing.T) {
	for _, family := range []string{FamilyMultiway, FamilyPeriodic} {
		c, err := CompileFamily(family, 8)
		if err != nil {
			t.Fatal(err)
		}
		keys := make([]Key, 8)
		if _, err := c.SortResilient(keys, FaultConfig{}); !errors.Is(err, ErrUnsupportedFamily) {
			t.Errorf("%s SortResilient: %v, want ErrUnsupportedFamily", family, err)
		}
		if _, err := c.SortRandomized(keys, RandomizedConfig{}); !errors.Is(err, ErrUnsupportedFamily) {
			t.Errorf("%s SortRandomized: %v, want ErrUnsupportedFamily", family, err)
		}
	}
	// The product family stays unguarded: a zero fault config must work.
	c, err := CompileFamily(FamilyProduct, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.SortResilient(make([]Key, 8), FaultConfig{}); err != nil {
		t.Fatalf("product SortResilient: %v", err)
	}
}

// TestServerFamilies drives the mixed-family server through the public
// API: with the emitted families enabled, a size the periodic network
// wins must come back sorted and tagged periodic, and the family flush
// counters must move.
func TestServerFamilies(t *testing.T) {
	srv, err := NewServer(ServerConfig{
		MaxKeys:  16,
		MaxBatch: 2,
		Families: []string{FamilyMultiway, FamilyPeriodic},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close(context.Background())

	out, err := srv.Submit(context.Background(), []Key{9, 3, 7, 1, 8, 2, 6, 5})
	if err != nil {
		t.Fatal(err)
	}
	rep := <-out
	if rep.Err != nil {
		t.Fatal(rep.Err)
	}
	if rep.Family != FamilyPeriodic || rep.Network != "periodic[8]" {
		t.Fatalf("size-8 reply family %q network %q, want periodic/periodic[8]", rep.Family, rep.Network)
	}
	if !sort.SliceIsSorted(rep.Keys, func(i, j int) bool { return rep.Keys[i] < rep.Keys[j] }) {
		t.Fatalf("unsorted reply: %v", rep.Keys)
	}

	got, err := srv.SortKeys(context.Background(), []Key{4, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !IsSorted(got) {
		t.Fatalf("size-3 reply unsorted: %v", got)
	}

	snap := srv.Metrics().Snapshot()
	if snap.Counters["serve.planner.family.periodic"] < 1 {
		t.Fatalf("serve.planner.family.periodic missing from %v", snap.Counters)
	}

	if _, err := NewServer(ServerConfig{Families: []string{"fancy"}}); err == nil {
		t.Error("unknown family accepted by NewServer")
	}
}
