package productsort

import (
	"sort"
	"testing"

	"productsort/internal/workload"
)

func TestRectGridSorts(t *testing.T) {
	cases := [][]int{
		{4, 3}, {3, 4}, {2, 8}, {8, 2},
		{2, 5, 3}, {3, 4, 4}, {4, 4, 2}, {2, 3, 3, 2},
	}
	for _, sides := range cases {
		nw, err := RectGrid(sides...)
		if err != nil {
			t.Fatalf("%v: %v", sides, err)
		}
		keys := workload.Uniform(nw.Nodes(), 77)
		res, err := Sort(nw, keys)
		if err != nil {
			t.Fatalf("%v: %v", sides, err)
		}
		want := append([]Key(nil), keys...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if res.Keys[i] != want[i] {
				t.Fatalf("%v (%s): wrong at %d", sides, nw.Name(), i)
			}
		}
	}
}

func TestRectGridAutoArranges(t *testing.T) {
	// sides 2,3,5: upper dims must be rearranged to 5 ≥ 3; dimension 1
	// stays 2.
	nw, err := RectGrid(2, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	radices := nw.Radices()
	if radices[0] != 2 || radices[1] != 5 || radices[2] != 3 {
		t.Errorf("radices %v want [2 5 3]", radices)
	}
	keys := workload.Reverse(nw.Nodes(), 0)
	res, err := Sort(nw, keys)
	if err != nil {
		t.Fatal(err)
	}
	if !IsSorted(res.Keys) {
		t.Error("unsorted")
	}
}

func TestRectGridValidation(t *testing.T) {
	if _, err := RectGrid(); err == nil {
		t.Error("empty sides accepted")
	}
	if _, err := RectGrid(1, 4); err == nil {
		t.Error("side 1 accepted")
	}
	if _, err := RectTorus(4, 2); err == nil {
		t.Error("torus side 2 accepted")
	}
}

func TestRectTorusSorts(t *testing.T) {
	nw, err := RectTorus(3, 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if nw.Nodes() != 60 {
		t.Fatalf("nodes=%d", nw.Nodes())
	}
	keys := workload.Gaussianish(60, 3)
	res, err := Sort(nw, keys)
	if err != nil {
		t.Fatal(err)
	}
	if !IsSorted(res.Keys) {
		t.Error("unsorted")
	}
}

func TestRectGridPredictedRounds(t *testing.T) {
	// Path factors are Hamiltonian-labeled, so the predictor is exact.
	for _, sides := range [][]int{{4, 3}, {2, 5, 3}, {3, 4, 4, 2}} {
		nw, err := RectGrid(sides...)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Sort(nw, workload.Permutation(nw.Nodes(), 5))
		if err != nil {
			t.Fatal(err)
		}
		pred, err := nw.PredictedRounds("auto")
		if err != nil {
			t.Fatal(err)
		}
		if res.Rounds != pred {
			t.Errorf("%s: rounds %d predicted %d", nw.Name(), res.Rounds, pred)
		}
	}
}

func TestRectGridScheduleAndSPMD(t *testing.T) {
	nw, err := RectGrid(3, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	keys := workload.Uniform(nw.Nodes(), 31)
	ref, err := Sort(nw, keys)
	if err != nil {
		t.Fatal(err)
	}
	// Schedule replay.
	s, err := ExtractSchedule(nw, "auto")
	if err != nil {
		t.Fatal(err)
	}
	replay := append([]Key(nil), keys...)
	s.Apply(replay)
	// SPMD engine.
	mp, err := SortMessagePassing(nw, keys)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.Keys {
		if replay[i] != ref.Keys[i] {
			t.Fatalf("schedule replay diverged at %d", i)
		}
		if mp.Keys[i] != ref.Keys[i] {
			t.Fatalf("SPMD diverged at %d", i)
		}
	}
	// Block sorting on the rectangular schedule.
	blocks := workload.Uniform(nw.Nodes()*8, 1)
	st, err := s.SortBlocks(blocks, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !IsSorted(blocks) || st.Rounds != s.Depth() {
		t.Error("rect block sort failed")
	}
}

func TestRectGridRender(t *testing.T) {
	nw, err := RectGrid(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	keys := workload.Sorted(8, 0)
	out := nw.Render(keys)
	// 2 rows of 4 cells each, snake order: row 0 = 0 1 2 3, row 1 = 7 6 5 4.
	if out != "0 1 2 3\n7 6 5 4\n" {
		t.Errorf("render:\n%s", out)
	}
}

func TestRectGridName(t *testing.T) {
	nw, err := RectGrid(4, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if nw.Name() != "path2*path3*path4" {
		t.Errorf("name %q", nw.Name())
	}
}
