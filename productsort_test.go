package productsort

import (
	"sort"
	"testing"

	"productsort/internal/workload"
)

func TestConstructors(t *testing.T) {
	cases := []struct {
		name  string
		build func() (*Network, error)
		nodes int
		ham   bool
	}{
		{"grid", func() (*Network, error) { return Grid(4, 3) }, 64, true},
		{"torus", func() (*Network, error) { return Torus(5, 2) }, 25, true},
		{"hypercube", func() (*Network, error) { return Hypercube(6) }, 64, true},
		{"mct", func() (*Network, error) { return MeshConnectedTrees(3, 2) }, 49, false},
		{"petersen", func() (*Network, error) { return PetersenCube(2) }, 100, true},
		{"debruijn", func() (*Network, error) { return DeBruijnProduct(2, 3, 2) }, 64, true},
		{"shuffle-exchange", func() (*Network, error) { return ShuffleExchangeProduct(2, 3) }, 64, true},
	}
	for _, c := range cases {
		nw, err := c.build()
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if nw.Nodes() != c.nodes {
			t.Errorf("%s: nodes=%d want %d", c.name, nw.Nodes(), c.nodes)
		}
		if nw.HamiltonianFactor() != c.ham {
			t.Errorf("%s: hamiltonian=%v want %v", c.name, nw.HamiltonianFactor(), c.ham)
		}
		if nw.Name() == "" || nw.Diameter() <= 0 || nw.Edges() <= 0 {
			t.Errorf("%s: degenerate properties", c.name)
		}
	}
}

func TestConstructorValidation(t *testing.T) {
	bad := []func() (*Network, error){
		func() (*Network, error) { return Grid(1, 3) },
		func() (*Network, error) { return Grid(4, 0) },
		func() (*Network, error) { return Torus(2, 2) },
		func() (*Network, error) { return MeshConnectedTrees(0, 2) },
		func() (*Network, error) { return DeBruijnProduct(1, 2, 2) },
		func() (*Network, error) { return ShuffleExchangeProduct(0, 2) },
		func() (*Network, error) { return Custom("x", 3, [][2]int{{0, 1}}, 2) }, // disconnected
	}
	for i, f := range bad {
		if _, err := f(); err == nil {
			t.Errorf("case %d: invalid constructor accepted", i)
		}
	}
}

func TestSortEveryFamily(t *testing.T) {
	nets := []*Network{}
	for _, f := range []func() (*Network, error){
		func() (*Network, error) { return Grid(3, 3) },
		func() (*Network, error) { return Torus(4, 2) },
		func() (*Network, error) { return Hypercube(5) },
		func() (*Network, error) { return MeshConnectedTrees(3, 2) },
		func() (*Network, error) { return PetersenCube(2) },
		func() (*Network, error) { return DeBruijnProduct(2, 2, 3) },
		func() (*Network, error) { return ShuffleExchangeProduct(3, 2) },
	} {
		nw, err := f()
		if err != nil {
			t.Fatal(err)
		}
		nets = append(nets, nw)
	}
	for _, nw := range nets {
		keys := workload.Uniform(nw.Nodes(), 42)
		res, err := Sort(nw, keys)
		if err != nil {
			t.Fatalf("%s: %v", nw.Name(), err)
		}
		if !IsSorted(res.Keys) {
			t.Fatalf("%s: output unsorted", nw.Name())
		}
		want := append([]Key(nil), keys...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if res.Keys[i] != want[i] {
				t.Fatalf("%s: multiset changed at %d", nw.Name(), i)
			}
		}
		r := nw.Dims()
		if res.S2Phases != (r-1)*(r-1) || res.Sweeps != (r-1)*(r-2) {
			t.Errorf("%s: phases %d/%d disagree with Theorem 1", nw.Name(), res.S2Phases, res.Sweeps)
		}
		if res.Rounds != res.S2Rounds+res.SweepRounds {
			t.Errorf("%s: round split inconsistent", nw.Name())
		}
		if nw.HamiltonianFactor() && res.RoutedPhases != 0 {
			t.Errorf("%s: unexpected routed phases", nw.Name())
		}
	}
}

func TestSortWrongKeyCount(t *testing.T) {
	nw, _ := Hypercube(3)
	if _, err := Sort(nw, make([]Key, 7)); err == nil {
		t.Error("wrong key count accepted")
	}
}

func TestPredictedRoundsMatchesMeasured(t *testing.T) {
	cases := []struct {
		nw     *Network
		engine string
	}{
		{mustNet(Grid(4, 3)), "shearsort"},
		{mustNet(Hypercube(6)), "opt4"},
		{mustNet(Torus(4, 3)), "auto"},
		{mustNet(Grid(3, 4)), "snake-oet"},
	}
	for _, c := range cases {
		s, err := NewSorter(WithEngine(c.engine))
		if err != nil {
			t.Fatal(err)
		}
		keys := workload.Permutation(c.nw.Nodes(), 7)
		res, err := s.Sort(c.nw, keys)
		if err != nil {
			t.Fatal(err)
		}
		want, err := c.nw.PredictedRounds(c.engine)
		if err != nil {
			t.Fatal(err)
		}
		if res.Rounds != want {
			t.Errorf("%s engine=%s: rounds=%d predicted %d", c.nw.Name(), c.engine, res.Rounds, want)
		}
	}
}

func mustNet(nw *Network, err error) *Network {
	if err != nil {
		panic(err)
	}
	return nw
}

func TestWithGoroutinesEquivalent(t *testing.T) {
	nw := mustNet(Grid(3, 3))
	keys := workload.Uniform(27, 5)
	seqS, _ := NewSorter()
	parS, err := NewSorter(WithGoroutines())
	if err != nil {
		t.Fatal(err)
	}
	a, err := seqS.Sort(nw, keys)
	if err != nil {
		t.Fatal(err)
	}
	b, err := parS.Sort(nw, keys)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Keys {
		if a.Keys[i] != b.Keys[i] {
			t.Fatal("goroutine executor diverged")
		}
	}
	if a.Rounds != b.Rounds {
		t.Fatal("round counts diverged")
	}
}

func TestWithObserver(t *testing.T) {
	nw := mustNet(Grid(3, 3))
	var stages []string
	s, err := NewSorter(WithObserver(func(stage string, keys []Key) {
		stages = append(stages, stage)
		if len(keys) != 27 {
			t.Errorf("observer got %d keys", len(keys))
		}
	}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Sort(nw, workload.Uniform(27, 1)); err != nil {
		t.Fatal(err)
	}
	if len(stages) == 0 {
		t.Error("observer never called")
	}
}

func TestWithEngineUnknown(t *testing.T) {
	if _, err := NewSorter(WithEngine("bogus")); err == nil {
		t.Error("unknown engine accepted")
	}
}

func TestCustomAndRelabel(t *testing.T) {
	// A 5-cycle given with shuffled labels: 0-2-4-1-3-0.
	edges := [][2]int{{0, 2}, {2, 4}, {4, 1}, {1, 3}, {3, 0}}
	nw, err := Custom("c5shuffled", 5, edges, 2)
	if err != nil {
		t.Fatal(err)
	}
	if nw.HamiltonianFactor() {
		t.Fatal("shuffled labels should not trace a Hamiltonian path")
	}
	relabeled, ok := RelabelHamiltonian(nw)
	if !ok || !relabeled.HamiltonianFactor() {
		t.Fatal("relabeling failed on a cycle")
	}
	// Both versions sort correctly; the relabeled one avoids routing.
	keys := workload.Uniform(25, 3)
	resA, err := Sort(nw, keys)
	if err != nil {
		t.Fatal(err)
	}
	resB, err := Sort(relabeled, keys)
	if err != nil {
		t.Fatal(err)
	}
	if !IsSorted(resA.Keys) || !IsSorted(resB.Keys) {
		t.Fatal("custom network failed to sort")
	}
	if resB.RoutedPhases != 0 {
		t.Error("relabeled network still routed")
	}
	if resA.RoutedPhases == 0 {
		t.Error("shuffled labels should have routed at least once")
	}
	if resB.Rounds > resA.Rounds {
		t.Errorf("relabeling did not help: %d vs %d rounds", resB.Rounds, resA.Rounds)
	}
}

func TestSnakeOrderIsPermutation(t *testing.T) {
	nw := mustNet(PetersenCube(2))
	order := nw.SnakeOrder()
	seen := make([]bool, nw.Nodes())
	for _, id := range order {
		if id < 0 || id >= nw.Nodes() || seen[id] {
			t.Fatal("snake order not a permutation")
		}
		seen[id] = true
	}
}

func TestSortAllWorkloads(t *testing.T) {
	nw := mustNet(Grid(3, 3))
	for _, name := range workload.Names() {
		g, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		keys := g(27, 13)
		res, err := Sort(nw, keys)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !IsSorted(res.Keys) {
			t.Fatalf("workload %s: unsorted output", name)
		}
	}
}

func TestIsSorted(t *testing.T) {
	if !IsSorted([]Key{1, 2, 2, 3}) || !IsSorted(nil) || IsSorted([]Key{2, 1}) {
		t.Error("IsSorted wrong")
	}
}

func TestHypercube1D(t *testing.T) {
	nw := mustNet(Hypercube(1))
	res, err := Sort(nw, []Key{5, 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Keys[0] != 3 || res.Keys[1] != 5 {
		t.Error("1-D sort failed")
	}
}

func TestPublicMerge(t *testing.T) {
	nw := mustNet(Grid(3, 3))
	s, _ := NewSorter()
	slabs := make([][]Key, 3)
	for u := range slabs {
		slab := workload.Uniform(9, int64(u))
		sort.Slice(slab, func(i, j int) bool { return slab[i] < slab[j] })
		slabs[u] = slab
	}
	res, err := s.Merge(nw, slabs)
	if err != nil {
		t.Fatal(err)
	}
	if !IsSorted(res.Keys) {
		t.Fatal("merge output unsorted")
	}
	// Lemma 3 counts for k=r=3: 3 S2 phases, 2 sweeps.
	if res.S2Phases != 3 || res.Sweeps != 2 {
		t.Errorf("phases %d/%d want 3/2", res.S2Phases, res.Sweeps)
	}
	// Validation paths.
	if _, err := s.Merge(nw, slabs[:2]); err == nil {
		t.Error("wrong slab count accepted")
	}
	bad := [][]Key{{3, 2, 1, 0, 0, 0, 0, 0, 0}, slabs[1], slabs[2]}
	if _, err := s.Merge(nw, bad); err == nil {
		t.Error("unsorted slab accepted")
	}
	short := [][]Key{slabs[0][:5], slabs[1], slabs[2]}
	if _, err := s.Merge(nw, short); err == nil {
		t.Error("short slab accepted")
	}
}

func TestPublicSnakeCutWidth(t *testing.T) {
	if got := mustNet(Grid(4, 2)).SnakeCutWidth(); got != 4 {
		t.Errorf("grid4x4 cut %d want 4", got)
	}
	if got := mustNet(Hypercube(4)).SnakeCutWidth(); got != 8 {
		t.Errorf("Q4 cut %d want 8", got)
	}
}
