package productsort

import (
	"sort"
	"testing"
)

// FuzzSortGrid drives the full algorithm with fuzz-generated keys on a
// 3×3×3 grid and cross-checks the standard library.
func FuzzSortGrid(f *testing.F) {
	f.Add(int64(1), int64(2), int64(3))
	f.Add(int64(-9), int64(0), int64(9))
	nw, err := Grid(3, 3)
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, a, b, c int64) {
		keys := make([]Key, nw.Nodes())
		// Derive 27 keys deterministically from the three seeds.
		x := a
		for i := range keys {
			x = x*6364136223846793005 + b ^ c
			keys[i] = Key(x >> 32)
		}
		res, err := Sort(nw, keys)
		if err != nil {
			t.Fatal(err)
		}
		want := append([]Key(nil), keys...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if res.Keys[i] != want[i] {
				t.Fatalf("mismatch at %d: %d vs %d", i, res.Keys[i], want[i])
			}
		}
	})
}

// FuzzScheduleBlocks fuzzes block sorting over the hypercube schedule.
func FuzzScheduleBlocks(f *testing.F) {
	f.Add(int64(7), uint8(3))
	nw, err := Hypercube(4)
	if err != nil {
		f.Fatal(err)
	}
	sched, err := ExtractSchedule(nw, "auto")
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, seed int64, bsRaw uint8) {
		bs := 1 + int(bsRaw)%8
		keys := make([]Key, sched.Inputs()*bs)
		x := seed
		for i := range keys {
			x = x*2862933555777941757 + 3037000493
			keys[i] = Key(x % 1000)
		}
		want := append([]Key(nil), keys...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if _, err := sched.SortBlocks(keys, bs); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if keys[i] != want[i] {
				t.Fatalf("block sort mismatch at %d", i)
			}
		}
	})
}
