package baseline

import "fmt"

// This file realizes Section 3.2's remark that the multiway-merge
// recursion also yields comparator networks ("if we are interested in
// building a sorting network …"). MultiwayMergeNetwork builds a sorting
// network for N^k inputs whose structure is exactly the paper's
// algorithm: recursive N-way merges whose Steps 1 and 3 are wire
// permutations (free in a network), with odd-even-merge subnetworks in
// the role of the assumed N²-sorter.

// MultiwayMergeNetwork returns a sorting network for n^k inputs built
// from the paper's multiway-merge recursion with fan-in n. Requires
// n ≥ 2 and k ≥ 2.
func MultiwayMergeNetwork(n, k int) Network {
	if n < 2 || k < 2 {
		panic("baseline: multiway network needs n ≥ 2, k ≥ 2")
	}
	total := 1
	for i := 0; i < k; i++ {
		total *= n
	}
	pos := make([]int, total)
	for i := range pos {
		pos[i] = i
	}
	comps, out := mwSort(n, pos)
	// The construction sorts "along out": out[i] holds rank i. Relabel
	// wires so the network sorts into index order.
	rank := make([]int, total)
	for i, p := range out {
		rank[p] = i
	}
	relabeled := make([]Comparator, len(comps))
	for i, c := range comps {
		relabeled[i] = Comparator{I: rank[c.I], J: rank[c.J]}
	}
	return Network{N: total, Comps: relabeled}
}

// mwSort sorts the given wire positions: returns comparators plus the
// output order (out[i] holds the i-th smallest afterwards).
func mwSort(n int, pos []int) ([]Comparator, []int) {
	if len(pos) <= n*n {
		return oemOn(pos, false), pos
	}
	m := len(pos) / n
	var comps []Comparator
	groups := make([][]int, n)
	for u := 0; u < n; u++ {
		c, out := mwSort(n, pos[u*m:(u+1)*m])
		comps = append(comps, c...)
		groups[u] = out
	}
	mc, out := mwMerge(n, groups)
	return append(comps, mc...), out
}

// mwMerge merges n sorted wire groups (each group's slice is in sorted
// order) into a single sorted order, following Steps 1–4.
func mwMerge(n int, groups [][]int) ([]Comparator, []int) {
	m := len(groups[0])
	if m == n {
		// Columns would hold one element per group; sort the n² wires
		// directly (Section 3.2's base situation).
		var flat []int
		for _, g := range groups {
			flat = append(flat, g...)
		}
		return oemOn(flat, false), flat
	}
	var comps []Comparator
	// Steps 1–2: column v of group u holds the wires at snake-array
	// positions v, 2n-v-1, 2n+v, … within the group's sorted order;
	// merge each column across the groups recursively.
	rows := m / n
	colOut := make([][]int, n)
	for v := 0; v < n; v++ {
		sub := make([][]int, n)
		for u := 0; u < n; u++ {
			col := make([]int, 0, rows)
			for j := 0; j < rows; j++ {
				idx := j * n
				if j%2 == 0 {
					idx += v
				} else {
					idx += n - 1 - v
				}
				col = append(col, groups[u][idx])
			}
			sub[u] = col
		}
		c, out := mwMerge(n, sub)
		comps = append(comps, c...)
		colOut[v] = out
	}
	// Step 3: interleave (a wire permutation — free).
	d := make([]int, 0, n*m)
	for j := 0; j < m; j++ {
		for v := 0; v < n; v++ {
			d = append(d, colOut[v][j])
		}
	}
	// Step 4: chunks of n² wires; alternate-direction sorts, two
	// element-wise transposition steps, ascending sorts.
	chunk := n * n
	chunks := len(d) / chunk
	for z := 0; z < chunks; z++ {
		comps = append(comps, oemOn(d[z*chunk:(z+1)*chunk], z%2 == 1)...)
	}
	for phase := 0; phase < 2; phase++ {
		for z := phase; z+1 < chunks; z += 2 {
			for t := 0; t < chunk; t++ {
				comps = append(comps, Comparator{I: d[z*chunk+t], J: d[(z+1)*chunk+t]})
			}
		}
	}
	for z := 0; z < chunks; z++ {
		comps = append(comps, oemOn(d[z*chunk:(z+1)*chunk], false)...)
	}
	return comps, d
}

// oemOn maps Batcher's odd-even merge sorting network onto the given
// wires, ascending along the slice order, or descending when reverse.
func oemOn(wires []int, reverse bool) []Comparator {
	base := OddEvenMergeNetwork(len(wires))
	out := make([]Comparator, len(base.Comps))
	for i, c := range base.Comps {
		a, b := wires[c.I], wires[c.J]
		if reverse {
			a, b = b, a
		}
		out[i] = Comparator{I: a, J: b}
	}
	return out
}

// MultiwayMergeNetworkSize is a convenience for reports: builds the
// network and returns (size, depth).
func MultiwayMergeNetworkSize(n, k int) (size, depth int) {
	nw := MultiwayMergeNetwork(n, k)
	return nw.Size(), nw.Depth()
}

// String renders basic statistics.
func (nw Network) String() string {
	return fmt.Sprintf("network(n=%d, comparators=%d, depth=%d)", nw.N, nw.Size(), nw.Depth())
}
