package baseline

import (
	"math/rand"
	"testing"
)

func TestMultiwayNetworkZeroOneExhaustive(t *testing.T) {
	cases := []struct{ n, k int }{
		{2, 2}, {2, 3}, {2, 4}, {3, 2}, {4, 2}, {2, 5} /* wait: 32 > 22? no: handled below */}
	for _, c := range cases {
		total := 1
		for i := 0; i < c.k; i++ {
			total *= c.n
		}
		if total > 20 {
			continue
		}
		nw := MultiwayMergeNetwork(c.n, c.k)
		if !nw.SortsAllZeroOne() {
			t.Fatalf("multiway network n=%d k=%d fails the 0-1 principle", c.n, c.k)
		}
	}
}

func TestMultiwayNetworkRandomLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for _, c := range []struct{ n, k int }{{2, 5}, {3, 3}, {4, 3}, {2, 6}, {5, 2}} {
		nw := MultiwayMergeNetwork(c.n, c.k)
		for trial := 0; trial < 20; trial++ {
			keys := make([]Key, nw.N)
			for i := range keys {
				keys[i] = Key(rng.Intn(200))
			}
			want := SequentialSortedCopy(keys)
			nw.Apply(keys)
			for i := range keys {
				if keys[i] != want[i] {
					t.Fatalf("n=%d k=%d trial %d: wrong at %d", c.n, c.k, trial, i)
				}
			}
		}
	}
}

func TestMultiwayNetworkPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("k=1 accepted")
		}
	}()
	MultiwayMergeNetwork(3, 1)
}

// TestMultiwayNetworkVsBatcher documents the size relationship the
// paper's Section 3.2 leaves open: the multiway construction is larger
// than Batcher's by a constant factor at these sizes.
func TestMultiwayNetworkVsBatcher(t *testing.T) {
	for _, c := range []struct{ n, k int }{{2, 4}, {2, 6}, {4, 3}} {
		nw := MultiwayMergeNetwork(c.n, c.k)
		oem := OddEvenMergeNetwork(nw.N)
		ratio := float64(nw.Size()) / float64(oem.Size())
		if ratio > 16 {
			t.Errorf("n=%d k=%d: multiway %d vs OEM %d comparators (ratio %.1f too large)",
				c.n, c.k, nw.Size(), oem.Size(), ratio)
		}
		t.Logf("n=%d k=%d (%d inputs): multiway size=%d depth=%d; OEM size=%d depth=%d",
			c.n, c.k, nw.N, nw.Size(), nw.Depth(), oem.Size(), oem.Depth())
	}
}

func TestMultiwayNetworkSizeHelper(t *testing.T) {
	s, d := MultiwayMergeNetworkSize(2, 3)
	nw := MultiwayMergeNetwork(2, 3)
	if s != nw.Size() || d != nw.Depth() {
		t.Error("size helper inconsistent")
	}
	if nw.String() == "" {
		t.Error("String empty")
	}
}

func BenchmarkMultiwayNetwork256(b *testing.B) {
	nw := MultiwayMergeNetwork(4, 4)
	keys := randKeys(256, 1)
	buf := make([]Key, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, keys)
		nw.Apply(buf)
	}
}

func TestPruneZeroOne(t *testing.T) {
	// A network with a duplicated comparator: the duplicate never fires.
	nw := Network{N: 3, Comps: []Comparator{{0, 1}, {0, 1}, {1, 2}, {0, 1}}}
	pruned := nw.PruneZeroOne()
	if !pruned.SortsAllZeroOne() {
		t.Fatal("pruned network no longer sorts")
	}
	if pruned.Size() >= nw.Size() {
		t.Errorf("nothing pruned: %d -> %d", nw.Size(), pruned.Size())
	}
	// Batcher's OEM is already irredundant at small sizes.
	oem := OddEvenMergeNetwork(8)
	if got := oem.PruneZeroOne().Size(); got != oem.Size() {
		t.Errorf("OEM(8) pruned from %d to %d — unexpected redundancy", oem.Size(), got)
	}
}

func TestPruneMultiwayNetwork(t *testing.T) {
	// The multiway construction carries redundancy (e.g. Step 4 re-sorts
	// mostly-sorted chunks); pruning must shrink it and keep it sorting.
	nw := MultiwayMergeNetwork(2, 4) // 16 inputs
	pruned := nw.PruneZeroOne()
	if !pruned.SortsAllZeroOne() {
		t.Fatal("pruned multiway network no longer sorts")
	}
	if pruned.Size() > nw.Size() {
		t.Fatal("pruning grew the network")
	}
	t.Logf("multiway(2,4): %d -> %d comparators after pruning (OEM: %d)",
		nw.Size(), pruned.Size(), OddEvenMergeNetwork(16).Size())
}

func TestPrunePanicsOnLarge(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Network{N: 30}.PruneZeroOne()
}
