package baseline

import (
	"productsort/internal/simnet"
)

// BitonicOnHypercube sorts the machine's keys into ascending node-id
// order using Batcher's bitonic sort mapped to the hypercube: every
// comparator joins nodes differing in exactly one bit, so each of the
// r(r+1)/2 stages is one compare-exchange round on the machine. The
// machine's factor must be K2 (N=2).
//
// This is the classic specialized algorithm the paper measures itself
// against on the hypercube (Section 5.3): its round count is the
// comparison point for experiment E6.
func BitonicOnHypercube(m *simnet.Machine) {
	net := m.Net()
	if net.N() != 2 {
		panic("baseline: bitonic-on-hypercube requires an N=2 factor")
	}
	nodes := net.Nodes()
	for k := 2; k <= nodes; k *= 2 {
		for j := k / 2; j > 0; j /= 2 {
			var pairs [][2]int
			for i := 0; i < nodes; i++ {
				l := i ^ j
				if l <= i {
					continue
				}
				if i&k == 0 {
					pairs = append(pairs, [2]int{i, l})
				} else {
					pairs = append(pairs, [2]int{l, i})
				}
			}
			m.CompareExchange(pairs)
		}
	}
}

// BitonicHypercubeRounds returns the parallel round count of
// BitonicOnHypercube on the r-dimensional hypercube: r(r+1)/2.
func BitonicHypercubeRounds(r int) int { return r * (r + 1) / 2 }

// IsSortedByID reports whether the machine's keys are nondecreasing in
// node-id order (the output order of the hypercube bitonic sort).
func IsSortedByID(m *simnet.Machine) bool {
	keys := m.Keys()
	for i := 1; i < len(keys); i++ {
		if keys[i] < keys[i-1] {
			return false
		}
	}
	return true
}

// SnakeOETOnMachine sorts any product network's keys by plain odd-even
// transposition along the global snake order: total rounds equal to the
// node count. Snake-consecutive nodes differ in exactly one dimension,
// so every comparator is machine-legal on any factor (routed when the
// factor is not Hamiltonian-labeled). This is the naive generic
// baseline the multiway merge is measured against on equal terms.
func SnakeOETOnMachine(m *simnet.Machine) {
	net := m.Net()
	total := net.Nodes()
	ids := make([]int, total)
	for pos := range ids {
		ids[pos] = net.NodeAtSnake(pos)
	}
	for t := 0; t < total; t++ {
		var pairs [][2]int
		for p := t % 2; p+1 < total; p += 2 {
			pairs = append(pairs, [2]int{ids[p], ids[p+1]})
		}
		m.CompareExchange(pairs)
	}
}
