package baseline

import (
	"math/rand"
	"testing"
	"testing/quick"

	"productsort/internal/graph"
	"productsort/internal/product"
	"productsort/internal/simnet"
)

func randKeys(n int, seed int64) []Key {
	rng := rand.New(rand.NewSource(seed))
	ks := make([]Key, n)
	for i := range ks {
		ks[i] = Key(rng.Intn(5 * n))
	}
	return ks
}

func isSorted(ks []Key) bool {
	for i := 1; i < len(ks); i++ {
		if ks[i] < ks[i-1] {
			return false
		}
	}
	return true
}

func TestOddEvenMergeNetworkZeroOne(t *testing.T) {
	for n := 1; n <= 18; n++ {
		nw := OddEvenMergeNetwork(n)
		if !nw.SortsAllZeroOne() {
			t.Fatalf("odd-even merge network n=%d fails 0-1 principle", n)
		}
	}
}

func TestBitonicNetworkZeroOne(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16} {
		nw := BitonicNetwork(n)
		if !nw.SortsAllZeroOne() {
			t.Fatalf("bitonic network n=%d fails 0-1 principle", n)
		}
	}
}

func TestOddEvenTranspositionZeroOne(t *testing.T) {
	for n := 1; n <= 14; n++ {
		nw := OddEvenTranspositionNetwork(n)
		if !nw.SortsAllZeroOne() {
			t.Fatalf("odd-even transposition n=%d fails 0-1 principle", n)
		}
	}
}

func TestBitonicNetworkRejectsNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("accepted n=6")
		}
	}()
	BitonicNetwork(6)
}

func TestNetworkDepths(t *testing.T) {
	// Batcher's odd-even merge sort for n=2^q has depth q(q+1)/2.
	cases := []struct{ n, want int }{
		{2, 1}, {4, 3}, {8, 6}, {16, 10}, {32, 15},
	}
	for _, c := range cases {
		if got := OddEvenMergeNetwork(c.n).Depth(); got != c.want {
			t.Errorf("OEM depth(%d)=%d want %d", c.n, got, c.want)
		}
		if got := BitonicNetwork(c.n).Depth(); got != c.want {
			t.Errorf("bitonic depth(%d)=%d want %d", c.n, got, c.want)
		}
	}
	if got := OddEvenTranspositionNetwork(7).Depth(); got != 7 {
		t.Errorf("OET depth(7)=%d want 7", got)
	}
}

func TestNetworkSizes(t *testing.T) {
	// Known comparator counts: OEM n=8 has 19, bitonic n=8 has 24.
	if got := OddEvenMergeNetwork(8).Size(); got != 19 {
		t.Errorf("OEM size(8)=%d want 19", got)
	}
	if got := BitonicNetwork(8).Size(); got != 24 {
		t.Errorf("bitonic size(8)=%d want 24", got)
	}
	// OET n: n rounds of alternating ⌈(n-1)/2⌉/⌊(n-1)/2⌋ comparators,
	// totals n(n-1)/2 for even n.
	if got := OddEvenTranspositionNetwork(6).Size(); got != 15 {
		t.Errorf("OET size(6)=%d want 15", got)
	}
}

func TestApplyPanicsOnWrongLength(t *testing.T) {
	nw := OddEvenMergeNetwork(4)
	defer func() {
		if recover() == nil {
			t.Fatal("wrong length accepted")
		}
	}()
	nw.Apply(make([]Key, 3))
}

func TestNetworksSortRandom(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		ks := randKeys(16, seed)
		a := append([]Key(nil), ks...)
		OddEvenMergeNetwork(16).Apply(a)
		if !isSorted(a) {
			t.Fatalf("OEM failed on seed %d", seed)
		}
		b := append([]Key(nil), ks...)
		BitonicNetwork(16).Apply(b)
		if !isSorted(b) {
			t.Fatalf("bitonic failed on seed %d", seed)
		}
		c := append([]Key(nil), ks...)
		OddEvenTranspositionNetwork(16).Apply(c)
		if !isSorted(c) {
			t.Fatalf("OET failed on seed %d", seed)
		}
	}
	// Odd lengths through the padded OEM network.
	for _, n := range []int{3, 5, 7, 11, 13} {
		ks := randKeys(n, int64(n))
		OddEvenMergeNetwork(n).Apply(ks)
		if !isSorted(ks) {
			t.Fatalf("OEM failed on odd length %d", n)
		}
	}
}

func TestColumnsortValidation(t *testing.T) {
	if _, err := Columnsort(make([]Key, 7), 4, 2); err == nil {
		t.Error("bad size accepted")
	}
	if _, err := Columnsort(make([]Key, 12), 6, 2); err != nil {
		t.Errorf("valid 6x2 rejected: %v", err)
	}
	if _, err := Columnsort(make([]Key, 12), 4, 3); err == nil {
		t.Error("r < 2(s-1)² accepted")
	}
	if _, err := Columnsort(make([]Key, 8), 2, 4); err == nil {
		t.Error("s∤r accepted")
	}
	if _, err := Columnsort(nil, 0, 0); err == nil {
		t.Error("empty shape accepted")
	}
}

func TestColumnsortZeroOneExhaustive(t *testing.T) {
	// 4x2 (8 keys) and 6x2 (12 keys): exhaust all 0-1 inputs.
	shapes := []struct{ r, s int }{{4, 2}, {6, 2}, {8, 2}}
	for _, sh := range shapes {
		n := sh.r * sh.s
		for mask := 0; mask < 1<<n; mask++ {
			keys := make([]Key, n)
			for i := range keys {
				keys[i] = Key(mask >> i & 1)
			}
			if _, err := Columnsort(keys, sh.r, sh.s); err != nil {
				t.Fatal(err)
			}
			if !isSorted(keys) {
				t.Fatalf("columnsort %dx%d failed 0-1 input %b: %v", sh.r, sh.s, mask, keys)
			}
		}
	}
}

func TestColumnsortRandomLarger(t *testing.T) {
	shapes := []struct{ r, s int }{{8, 2}, {9, 3}, {18, 3}, {32, 4}, {16, 2}}
	for _, sh := range shapes {
		if sh.r < 2*(sh.s-1)*(sh.s-1) {
			t.Fatalf("test shape %dx%d violates condition", sh.r, sh.s)
		}
		for seed := int64(0); seed < 10; seed++ {
			keys := randKeys(sh.r*sh.s, seed)
			want := SequentialSortedCopy(keys)
			st, err := Columnsort(keys, sh.r, sh.s)
			if err != nil {
				t.Fatal(err)
			}
			for i := range keys {
				if keys[i] != want[i] {
					t.Fatalf("columnsort %dx%d seed %d wrong at %d", sh.r, sh.s, seed, i)
				}
			}
			if st.ColumnSorts != 4 || st.PermutationSteps != 4 {
				t.Errorf("stats: %+v", st)
			}
		}
	}
}

func TestColumnsortShape(t *testing.T) {
	r, s, err := ColumnsortShape(27)
	if err != nil || s != 3 || r != 9 {
		t.Errorf("shape(27) = %d,%d,%v", r, s, err)
	}
	// 18 has no valid shape: 6x3 violates r ≥ 2(s-1)², 9x2 violates s|r.
	if _, _, err := ColumnsortShape(18); err == nil {
		t.Error("shape(18) should not exist")
	}
	if _, _, err := ColumnsortShape(7); err == nil {
		t.Error("prime size should have no nontrivial shape")
	}
	r, s, err = ColumnsortShape(128)
	if err != nil {
		t.Fatalf("shape(128): %v", err)
	}
	if r*s != 128 || r%s != 0 || r < 2*(s-1)*(s-1) {
		t.Errorf("shape(128) invalid: %dx%d", r, s)
	}
}

func TestBitonicOnHypercube(t *testing.T) {
	for _, r := range []int{2, 3, 4, 5, 6} {
		net := product.MustNew(graph.K2(), r)
		keys := randKeys(net.Nodes(), int64(r))
		m := simnet.MustNew(net, keys)
		BitonicOnHypercube(m)
		if !IsSortedByID(m) {
			t.Fatalf("r=%d: bitonic hypercube sort failed", r)
		}
		if got, want := m.Clock().Rounds, BitonicHypercubeRounds(r); got != want {
			t.Errorf("r=%d: rounds=%d want %d", r, got, want)
		}
		// Multiset preserved.
		got := m.Keys()
		want := SequentialSortedCopy(keys)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("r=%d: key multiset changed", r)
			}
		}
	}
}

func TestBitonicOnHypercubeZeroOneExhaustive(t *testing.T) {
	net := product.MustNew(graph.K2(), 4)
	for mask := 0; mask < 1<<16; mask++ {
		keys := make([]Key, 16)
		for i := range keys {
			keys[i] = Key(mask >> i & 1)
		}
		m := simnet.MustNew(net, keys)
		BitonicOnHypercube(m)
		if !IsSortedByID(m) {
			t.Fatalf("0-1 input %016b unsorted", mask)
		}
	}
}

func TestBitonicOnHypercubeRejectsBigFactor(t *testing.T) {
	net := product.MustNew(graph.Path(3), 2)
	m := simnet.MustNew(net, make([]Key, 9))
	defer func() {
		if recover() == nil {
			t.Fatal("accepted N=3 factor")
		}
	}()
	BitonicOnHypercube(m)
}

// Property: OEM network sorts arbitrary inputs (spot-checked against the
// standard library).
func TestQuickOEMSorts(t *testing.T) {
	nw := OddEvenMergeNetwork(12)
	f := func(raw [12]int16) bool {
		keys := make([]Key, 12)
		for i, v := range raw {
			keys[i] = Key(v)
		}
		want := SequentialSortedCopy(keys)
		nw.Apply(keys)
		for i := range keys {
			if keys[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: Columnsort equals the standard library sort on random input.
func TestQuickColumnsort(t *testing.T) {
	f := func(seed int64) bool {
		keys := randKeys(36, seed) // 18x2 shape
		want := SequentialSortedCopy(keys)
		if _, err := Columnsort(keys, 18, 2); err != nil {
			return false
		}
		for i := range keys {
			if keys[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkOEMNetwork256(b *testing.B) {
	nw := OddEvenMergeNetwork(256)
	keys := randKeys(256, 1)
	buf := make([]Key, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, keys)
		nw.Apply(buf)
	}
}

func BenchmarkColumnsort1024(b *testing.B) {
	keys := randKeys(1024, 1)
	buf := make([]Key, 1024)
	r, s, err := ColumnsortShape(1024)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, keys)
		if _, err := Columnsort(buf, r, s); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSnakeOETOnMachine(t *testing.T) {
	for _, cfg := range []struct {
		build func() *simnet.Machine
	}{
		{func() *simnet.Machine {
			net := product.MustNew(graph.Path(3), 2)
			return simnet.MustNew(net, randKeys(9, 3))
		}},
		{func() *simnet.Machine {
			net := product.MustNew(graph.K2(), 4)
			return simnet.MustNew(net, randKeys(16, 5))
		}},
		{func() *simnet.Machine {
			net := product.MustNew(graph.CompleteBinaryTree(3), 2)
			return simnet.MustNew(net, randKeys(49, 7))
		}},
	} {
		m := cfg.build()
		want := SequentialSortedCopy(m.Keys())
		SnakeOETOnMachine(m)
		if !m.IsSortedSnake() {
			t.Fatal("snake OET failed to sort")
		}
		got := m.SnakeKeys()
		for i := range want {
			if got[i] != want[i] {
				t.Fatal("multiset changed")
			}
		}
		if m.Net().Factor().HamiltonianLabeled() && m.Clock().Rounds != m.Net().Nodes() {
			t.Errorf("rounds %d want %d", m.Clock().Rounds, m.Net().Nodes())
		}
	}
}
