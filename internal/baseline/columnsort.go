package baseline

import (
	"fmt"
	"math"
	"sort"
)

// ColumnsortStats reports the work done by one Columnsort run.
type ColumnsortStats struct {
	// ColumnSorts is the number of column-sorting passes (4 in the
	// classic algorithm; each sorts all s columns in parallel).
	ColumnSorts int
	// Comparators is the total comparator count when column sorts use
	// Batcher's odd-even merge network.
	Comparators int
	// Depth is the summed parallel comparator depth of the column sorts
	// (permutation steps excluded; they are routing, not comparison).
	Depth int
	// PermutationSteps counts the data-permutation phases (4: transpose,
	// untranspose, shift, unshift).
	PermutationSteps int
}

// Columnsort sorts keys with Leighton's eight-step Columnsort on an
// r×s matrix (r rows, s columns, r·s = len(keys)). It requires s | r and
// r ≥ 2(s-1)², the classic sufficient condition. The sorted output is in
// column-major order: column 0 holds the smallest r keys top-to-bottom,
// then column 1, and so on. The paper discusses Columnsort as the main
// prior multiway-merge-style algorithm; experiment E8 compares against
// it.
func Columnsort(keys []Key, r, s int) (ColumnsortStats, error) {
	var st ColumnsortStats
	if r*s != len(keys) {
		return st, fmt.Errorf("baseline: columnsort shape %dx%d != %d keys", r, s, len(keys))
	}
	if s < 1 || r < 1 {
		return st, fmt.Errorf("baseline: columnsort needs positive shape")
	}
	if r%s != 0 {
		return st, fmt.Errorf("baseline: columnsort needs s | r (got r=%d, s=%d)", r, s)
	}
	if r < 2*(s-1)*(s-1) {
		return st, fmt.Errorf("baseline: columnsort needs r ≥ 2(s-1)² (got r=%d, s=%d)", r, s)
	}
	colNet := OddEvenMergeNetwork(r)

	// The matrix is stored column-major: m[j*r+i] is row i, column j.
	m := make([]Key, len(keys))
	copy(m, keys)

	sortColumns := func() {
		for j := 0; j < s; j++ {
			colNet.Apply(m[j*r : (j+1)*r])
		}
		st.ColumnSorts++
		st.Comparators += s * colNet.Size()
		st.Depth += colNet.Depth()
	}
	// transpose: read the matrix in column-major order, write in
	// row-major order ("transpose and reshape").
	transpose := func() {
		out := make([]Key, len(m))
		for p, v := range m { // p is the column-major rank
			i, j := p/s, p%s // row-major coordinates of rank p
			out[j*r+i] = v
		}
		m = out
		st.PermutationSteps++
	}
	untranspose := func() {
		out := make([]Key, len(m))
		for p := range m {
			i, j := p/s, p%s
			out[p] = m[j*r+i]
		}
		m = out
		st.PermutationSteps++
	}

	sortColumns() // step 1
	transpose()   // step 2
	sortColumns() // step 3
	untranspose() // step 4
	sortColumns() // step 5

	// Steps 6–8: shift forward by r/2 in column-major order into an
	// (s+1)-column matrix padded with -∞ / +∞, sort the columns, unshift.
	half := r / 2
	ext := make([]Key, (s+1)*r)
	for i := 0; i < half; i++ {
		ext[i] = math.MinInt64
	}
	copy(ext[half:], m)
	for i := half + len(m); i < len(ext); i++ {
		ext[i] = math.MaxInt64
	}
	for j := 0; j <= s; j++ {
		colNet.Apply(ext[j*r : (j+1)*r])
	}
	st.ColumnSorts++
	st.Comparators += (s + 1) * colNet.Size()
	st.Depth += colNet.Depth()
	st.PermutationSteps += 2 // shift and unshift
	copy(m, ext[half:half+len(m)])

	copy(keys, m)
	return st, nil
}

// ColumnsortShape picks a valid (r, s) shape for n keys: the largest s
// with s | r, r·s = n, and r ≥ 2(s-1)². Returns an error if only the
// degenerate s=1 shape exists (in which case Columnsort is a plain
// sort).
func ColumnsortShape(n int) (r, s int, err error) {
	best := 1
	for cand := 2; cand*cand <= n*2; cand++ {
		if n%cand != 0 {
			continue
		}
		rows := n / cand
		if rows%cand == 0 && rows >= 2*(cand-1)*(cand-1) {
			best = cand
		}
	}
	if best == 1 {
		return n, 1, fmt.Errorf("baseline: no nontrivial columnsort shape for %d keys", n)
	}
	return n / best, best, nil
}

// SequentialSortedCopy returns a sorted copy of keys using the standard
// library; the correctness oracle for every other algorithm here.
func SequentialSortedCopy(keys []Key) []Key {
	out := append([]Key(nil), keys...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
