// Package baseline implements the classical sorting algorithms the paper
// compares against or builds upon: Batcher's odd-even merge sort and
// bitonic sort (as comparator networks), odd-even transposition sort,
// and Leighton's Columnsort. These provide the comparison points for the
// experiments in EXPERIMENTS.md.
package baseline

import (
	"fmt"

	"productsort/internal/simnet"
)

// Key mirrors simnet.Key so baselines and the simulator sort the same
// values.
type Key = simnet.Key

// Comparator orders two positions of a sequence: after application,
// keys[I] <= keys[J].
type Comparator struct {
	I, J int
}

// Network is a comparator network over sequences of length N.
type Network struct {
	N     int
	Comps []Comparator
}

// Apply runs the network over keys in place. len(keys) must equal N.
func (nw Network) Apply(keys []Key) {
	if len(keys) != nw.N {
		panic(fmt.Sprintf("baseline: %d keys for %d-input network", len(keys), nw.N))
	}
	for _, c := range nw.Comps {
		if keys[c.I] > keys[c.J] {
			keys[c.I], keys[c.J] = keys[c.J], keys[c.I]
		}
	}
}

// Depth returns the parallel depth of the network: the number of rounds
// when independent comparators execute simultaneously, computed by
// greedy leveling in comparator order.
func (nw Network) Depth() int {
	level := make([]int, nw.N)
	depth := 0
	for _, c := range nw.Comps {
		l := level[c.I]
		if level[c.J] > l {
			l = level[c.J]
		}
		l++
		level[c.I], level[c.J] = l, l
		if l > depth {
			depth = l
		}
	}
	return depth
}

// Size returns the number of comparators.
func (nw Network) Size() int { return len(nw.Comps) }

// SortsAllZeroOne exhaustively verifies the zero-one principle for the
// network; feasible for N up to ~22.
func (nw Network) SortsAllZeroOne() bool {
	if nw.N > 22 {
		panic("baseline: exhaustive 0-1 check too large")
	}
	keys := make([]Key, nw.N)
	for mask := 0; mask < 1<<nw.N; mask++ {
		for i := range keys {
			keys[i] = Key(mask >> i & 1)
		}
		nw.Apply(keys)
		for i := 1; i < nw.N; i++ {
			if keys[i] < keys[i-1] {
				return false
			}
		}
	}
	return true
}

// OddEvenMergeNetwork returns Batcher's odd-even merge sorting network
// for any n ≥ 1. For non-powers of two the power-of-two network is built
// and comparators touching positions ≥ n are dropped; this is sound
// because such positions can be imagined to hold +∞ sentinels that never
// move (every comparator sends its maximum to the higher index).
func OddEvenMergeNetwork(n int) Network {
	if n < 1 {
		panic("baseline: network size must be positive")
	}
	p := 1
	for p < n {
		p *= 2
	}
	var comps []Comparator
	add := func(i, j int) {
		if j < n { // i < j always
			comps = append(comps, Comparator{i, j})
		}
	}
	// Recursive construction over index range [lo, lo+m) with m a power
	// of two.
	var merge func(lo, m, step int)
	merge = func(lo, m, step int) {
		if m <= 1 {
			return
		}
		merge(lo, m/2, step*2)
		merge(lo+step, m/2, step*2)
		for i := 1; i+1 < m; i += 2 {
			add(lo+i*step, lo+(i+1)*step)
		}
		if m == 2 {
			add(lo, lo+step)
		}
	}
	var sortRange func(lo, m int)
	sortRange = func(lo, m int) {
		if m <= 1 {
			return
		}
		sortRange(lo, m/2)
		sortRange(lo+m/2, m/2)
		merge(lo, m, 1)
	}
	sortRange(0, p)
	return Network{N: n, Comps: comps}
}

// BitonicNetwork returns Batcher's bitonic sorting network for n a power
// of two. Comparator direction is encoded by operand order: the minimum
// always lands on the first index, so descending comparators simply list
// the higher index first.
func BitonicNetwork(n int) Network {
	if n < 1 || n&(n-1) != 0 {
		panic("baseline: bitonic network requires a power-of-two size")
	}
	var comps []Comparator
	for k := 2; k <= n; k *= 2 {
		for j := k / 2; j > 0; j /= 2 {
			for i := 0; i < n; i++ {
				l := i ^ j
				if l <= i {
					continue
				}
				if i&k == 0 {
					comps = append(comps, Comparator{i, l})
				} else {
					comps = append(comps, Comparator{l, i})
				}
			}
		}
	}
	return Network{N: n, Comps: comps}
}

// OddEvenTranspositionNetwork returns the n-round brick-wall network
// that sorts on a linear array.
func OddEvenTranspositionNetwork(n int) Network {
	var comps []Comparator
	for t := 0; t < n; t++ {
		for i := t % 2; i+1 < n; i += 2 {
			comps = append(comps, Comparator{i, i + 1})
		}
	}
	return Network{N: n, Comps: comps}
}

// PruneZeroOne removes comparators that never exchange on any zero-one
// input (and therefore never exchange on any input, by the 0-1
// principle): an exact redundancy eliminator for networks with up to
// ~22 inputs. The relative order of the surviving comparators is
// preserved, so the result is still a sorting network.
func (nw Network) PruneZeroOne() Network {
	if nw.N > 22 {
		panic("baseline: exhaustive pruning too large")
	}
	used := make([]bool, len(nw.Comps))
	keys := make([]Key, nw.N)
	for mask := 0; mask < 1<<nw.N; mask++ {
		for i := range keys {
			keys[i] = Key(mask >> i & 1)
		}
		for ci, c := range nw.Comps {
			if keys[c.I] > keys[c.J] {
				keys[c.I], keys[c.J] = keys[c.J], keys[c.I]
				used[ci] = true
			}
		}
	}
	var comps []Comparator
	for ci, c := range nw.Comps {
		if used[ci] {
			comps = append(comps, c)
		}
	}
	return Network{N: nw.N, Comps: comps}
}
