package routing

import (
	"math/rand"
	"testing"

	"productsort/internal/graph"
)

func TestPlanDistances(t *testing.T) {
	g := graph.Cycle(8)
	p := NewPlan(g)
	for u := 0; u < 8; u++ {
		for v := 0; v < 8; v++ {
			if p.Dist(u, v) != g.Dist(u, v) {
				t.Fatalf("Dist(%d,%d)=%d want %d", u, v, p.Dist(u, v), g.Dist(u, v))
			}
		}
	}
}

func TestNextHopMakesProgress(t *testing.T) {
	for _, g := range []*graph.Graph{graph.Path(7), graph.Petersen(), graph.CompleteBinaryTree(3)} {
		p := NewPlan(g)
		for u := 0; u < g.N(); u++ {
			for v := 0; v < g.N(); v++ {
				if u == v {
					continue
				}
				hop := p.next[u][v]
				if !g.HasEdge(u, hop) {
					t.Fatalf("%s: next[%d][%d]=%d is not a neighbor", g.Name(), u, v, hop)
				}
				if p.Dist(hop, v) != p.Dist(u, v)-1 {
					t.Fatalf("%s: next hop from %d toward %d does not reduce distance", g.Name(), u, v)
				}
			}
		}
	}
}

func TestIdentityPermutationFree(t *testing.T) {
	p := NewPlan(graph.Path(9))
	perm := make([]int, 9)
	for i := range perm {
		perm[i] = i
	}
	if r := p.Rounds(perm); r != 0 {
		t.Errorf("identity took %d rounds", r)
	}
}

func TestRoundsValidation(t *testing.T) {
	p := NewPlan(graph.Path(4))
	defer func() {
		if recover() == nil {
			t.Fatal("non-permutation accepted")
		}
	}()
	p.Rounds([]int{0, 0, 1, 2})
}

func TestAdjacentSwapOnPath(t *testing.T) {
	p := NewPlan(graph.Path(8))
	if c := p.AdjacentSwapCost(); c != 1 {
		t.Errorf("path adjacent swap cost=%d want 1", c)
	}
}

func TestAdjacentSwapOnTree(t *testing.T) {
	// In-order labeled complete binary tree: consecutive labels can be
	// two or more hops apart, so a swap sweep needs several rounds.
	p := NewPlan(graph.CompleteBinaryTree(3))
	c := p.AdjacentSwapCost()
	if c < 2 {
		t.Errorf("tree adjacent swap cost=%d want ≥2", c)
	}
	if c > 7 { // crude upper sanity bound: N rounds
		t.Errorf("tree adjacent swap cost=%d suspiciously high", c)
	}
}

func TestReversalOnPath(t *testing.T) {
	// Reversing an n-node path takes at least n-1 rounds (end-to-end
	// packet) and our scheduler should stay within a small constant of
	// the optimal ~n rounds.
	for _, n := range []int{4, 8, 16} {
		p := NewPlan(graph.Path(n))
		r := p.ReversalRounds()
		if r < n-1 {
			t.Errorf("path%d reversal %d rounds < diameter", n, r)
		}
		if r > 3*n {
			t.Errorf("path%d reversal %d rounds too slow", n, r)
		}
	}
}

func TestReversalOnCycleNearHalfN(t *testing.T) {
	// On a cycle the reversal is routable in about N/2 rounds since
	// every packet travels at most ⌈N/2⌉ hops.
	p := NewPlan(graph.Cycle(12))
	r := p.ReversalRounds()
	if r < 5 || r > 18 {
		t.Errorf("cycle12 reversal took %d rounds, want around 6", r)
	}
}

func TestCompleteGraphOneRound(t *testing.T) {
	p := NewPlan(graph.Complete(6))
	// Any permutation on K_n routes in one round: every packet is one
	// hop away, and sends/receives are all distinct.
	perm := []int{3, 4, 5, 0, 1, 2}
	if r := p.Rounds(perm); r != 1 {
		t.Errorf("K6 permutation took %d rounds want 1", r)
	}
}

func TestInvolution(t *testing.T) {
	perm := Involution(5, [][2]int{{0, 4}, {1, 3}})
	want := []int{4, 3, 2, 1, 0}
	for i, w := range want {
		if perm[i] != w {
			t.Fatalf("perm=%v want %v", perm, want)
		}
	}
}

func TestInvolutionOverlapPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("overlap accepted")
		}
	}()
	Involution(4, [][2]int{{0, 1}, {1, 2}})
}

func TestInvolutionDegeneratePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("degenerate pair accepted")
		}
	}()
	Involution(4, [][2]int{{2, 2}})
}

// TestRandomPermutationsDeliver fuzzes the scheduler: every random
// permutation must complete within the sum-of-distances safety cap and
// within a loose bound of N * diameter rounds.
func TestRandomPermutationsDeliver(t *testing.T) {
	graphs := []*graph.Graph{
		graph.Path(9), graph.Cycle(10), graph.Star(8),
		graph.CompleteBinaryTree(4), graph.Petersen(), graph.DeBruijn(2, 3),
	}
	rng := rand.New(rand.NewSource(42))
	for _, g := range graphs {
		p := NewPlan(g)
		for trial := 0; trial < 25; trial++ {
			perm := rng.Perm(g.N())
			r := p.Rounds(perm)
			if r > g.N()*g.Diameter()+1 {
				t.Errorf("%s: permutation took %d rounds (N=%d, diam=%d)",
					g.Name(), r, g.N(), g.Diameter())
			}
		}
	}
}

// TestStarRoutingSerializesThroughHub: on a star, packets between leaves
// must cross the hub, and the hub can receive only one packet per round,
// so a full derangement of k leaves needs at least k rounds.
func TestStarRoutingSerializesThroughHub(t *testing.T) {
	g := graph.Star(6) // hub 0, leaves 1..5
	p := NewPlan(g)
	perm := []int{0, 2, 3, 4, 5, 1} // 5-cycle on the leaves
	r := p.Rounds(perm)
	if r < 5 {
		t.Errorf("star leaf cycle took %d rounds, expected ≥5 (hub is a bottleneck)", r)
	}
}

func TestExchangeRoundsAdjacentPairs(t *testing.T) {
	p := NewPlan(graph.Cycle(6))
	if r := p.ExchangeRounds([][2]int{{0, 1}, {2, 3}, {4, 5}}); r != 1 {
		t.Errorf("adjacent exchange took %d rounds want 1", r)
	}
}

func BenchmarkRoundsRandomPetersen(b *testing.B) {
	p := NewPlan(graph.Petersen())
	rng := rand.New(rand.NewSource(7))
	perms := make([][]int, 64)
	for i := range perms {
		perms[i] = rng.Perm(10)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Rounds(perms[i%len(perms)])
	}
}

func BenchmarkNewPlanDeBruijn(b *testing.B) {
	g := graph.DeBruijn(2, 4)
	for i := 0; i < b.N; i++ {
		NewPlan(g)
	}
}

// TestRandomGraphRouting fuzzes the factor router over random connected
// graphs built by the graph package's generators.
func TestRandomGraphRouting(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for seed := int64(0); seed < 10; seed++ {
		g := graph.RandomConnected(5+int(seed)%12, int(seed)%5, seed)
		p := NewPlan(g)
		for trial := 0; trial < 10; trial++ {
			perm := rng.Perm(g.N())
			r := p.Rounds(perm)
			if r > g.N()*g.Diameter()+1 {
				t.Errorf("%s: permutation took %d rounds", g.Name(), r)
			}
		}
		if c := p.AdjacentSwapCost(); c < 1 || c > g.N() {
			t.Errorf("%s: adjacent swap cost %d out of range", g.Name(), c)
		}
	}
}
