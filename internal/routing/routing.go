// Package routing simulates store-and-forward permutation routing on a
// factor graph G. It supplies the quantity R(N) of the paper: the number
// of parallel communication rounds needed to realize a permutation of
// one-packet-per-node traffic.
//
// The model is the standard single-port, full-duplex, synchronous one:
// in each round every node may send at most one packet to one neighbor
// and receive at most one packet from one neighbor. Packets follow fixed
// shortest paths chosen by BFS; contention is resolved farthest-
// remaining-distance first, which guarantees progress every round.
package routing

import (
	"fmt"
	"sort"

	"productsort/internal/graph"
)

// Plan precomputes shortest-path forwarding tables for a factor graph so
// that repeated routing simulations on the same graph are cheap.
type Plan struct {
	g    *graph.Graph
	next [][]int // next[src][dst] = first hop from src toward dst
	dist [][]int // dist[src][dst]
}

// NewPlan builds forwarding tables for g by one BFS per node.
func NewPlan(g *graph.Graph) *Plan {
	n := g.N()
	p := &Plan{g: g, next: make([][]int, n), dist: make([][]int, n)}
	for dst := 0; dst < n; dst++ {
		// BFS from dst; next hop from v toward dst is v's parent in the tree.
		distTo := g.BFS(dst)
		for src := 0; src < n; src++ {
			if p.next[src] == nil {
				p.next[src] = make([]int, n)
				p.dist[src] = make([]int, n)
			}
			p.dist[src][dst] = distTo[src]
			if src == dst {
				p.next[src][dst] = src
				continue
			}
			for _, nb := range g.Neighbors(src) {
				if distTo[nb] == distTo[src]-1 {
					p.next[src][dst] = nb
					break
				}
			}
		}
	}
	return p
}

// Graph returns the factor graph the plan was built for.
func (p *Plan) Graph() *graph.Graph { return p.g }

// Dist returns the shortest-path distance from src to dst.
func (p *Plan) Dist(src, dst int) int { return p.dist[src][dst] }

// NextHop returns the first hop from src toward dst (src itself when
// src == dst). The hop is always a neighbor of src.
func (p *Plan) NextHop(src, dst int) int { return p.next[src][dst] }

// Rounds simulates routing the permutation perm (node v's packet is
// destined for perm[v]) and returns the number of rounds used. Packets
// already at their destination cost nothing. perm must be a permutation
// of 0..N-1.
func (p *Plan) Rounds(perm []int) int {
	n := p.g.N()
	if len(perm) != n {
		panic(fmt.Sprintf("routing: permutation length %d, want %d", len(perm), n))
	}
	check := make([]bool, n)
	for _, d := range perm {
		if d < 0 || d >= n || check[d] {
			panic("routing: not a permutation")
		}
		check[d] = true
	}

	type packet struct {
		at, dst int
	}
	var live []packet
	for v, d := range perm {
		if v != d {
			live = append(live, packet{at: v, dst: d})
		}
	}
	rounds := 0
	maxRounds := 0
	for _, pk := range live {
		maxRounds += p.dist[pk.at][pk.dst]
	}
	for len(live) > 0 {
		rounds++
		if rounds > maxRounds+1 {
			panic("routing: no progress (scheduler bug)")
		}
		// Candidate moves, farthest-remaining first.
		idx := make([]int, len(live))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool {
			pa, pb := live[idx[a]], live[idx[b]]
			da, db := p.dist[pa.at][pa.dst], p.dist[pb.at][pb.dst]
			if da != db {
				return da > db
			}
			return idx[a] < idx[b]
		})
		sendBusy := make([]bool, n)
		recvBusy := make([]bool, n)
		var next []packet
		moved := make([]bool, len(live))
		for _, i := range idx {
			pk := live[i]
			hop := p.next[pk.at][pk.dst]
			if sendBusy[pk.at] || recvBusy[hop] {
				continue
			}
			sendBusy[pk.at] = true
			recvBusy[hop] = true
			moved[i] = true
			if hop != pk.dst {
				next = append(next, packet{at: hop, dst: pk.dst})
			}
		}
		for i, pk := range live {
			if !moved[i] {
				next = append(next, pk)
			}
		}
		live = next
	}
	return rounds
}

// ExchangeRounds returns the rounds needed for the disjoint node pairs to
// swap their keys: the cost of one routed compare-exchange step on G.
// Pairs of adjacent nodes cost one round. Nodes absent from pairs stay
// idle.
func (p *Plan) ExchangeRounds(pairs [][2]int) int {
	perm := Involution(p.g.N(), pairs)
	return p.Rounds(perm)
}

// Involution returns the permutation that swaps each pair and fixes every
// other node. It panics if pairs are not disjoint.
func Involution(n int, pairs [][2]int) []int {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for _, pr := range pairs {
		a, b := pr[0], pr[1]
		if a == b {
			panic("routing: degenerate pair")
		}
		if perm[a] != a || perm[b] != b {
			panic("routing: overlapping pairs")
		}
		perm[a], perm[b] = b, a
	}
	return perm
}

// AdjacentSwapCost returns the number of rounds for the worst
// compare-exchange sweep between label-consecutive nodes on G: pairs
// (0,1),(2,3),… and pairs (1,2),(3,4),…, whichever costs more. For a
// Hamiltonian-labeled graph this is 1; otherwise it measures the routed
// fallback the paper describes for non-Hamiltonian factors.
func (p *Plan) AdjacentSwapCost() int {
	n := p.g.N()
	worst := 0
	for phase := 0; phase < 2; phase++ {
		var pairs [][2]int
		for a := phase; a+1 < n; a += 2 {
			pairs = append(pairs, [2]int{a, a + 1})
		}
		if len(pairs) == 0 {
			continue
		}
		if c := p.ExchangeRounds(pairs); c > worst {
			worst = c
		}
	}
	return worst
}

// ReversalRounds returns the rounds to route the full reversal
// permutation v -> N-1-v, a classic hard permutation used to probe R(N).
func (p *Plan) ReversalRounds() int {
	n := p.g.N()
	perm := make([]int, n)
	for v := range perm {
		perm[v] = n - 1 - v
	}
	return p.Rounds(perm)
}
