// Package mergenet extracts the multiway-merge sorting algorithm's
// oblivious compare-exchange schedule as a reusable comparator network.
//
// Section 3 of the paper develops the merge "without regard to any
// specific network … it does not even matter whether the algorithm is
// performed sequentially or in parallel", and Section 3.2 sketches how
// the same recursion yields sorting networks. This package makes that
// concrete as a backend of the compiled schedule IR (package schedule):
// the cached phase program, re-expressed in snake coordinates, is a
// sorting network for N^r inputs that can be applied to any slice,
// compared against Batcher's constructions, or replayed with merge-split
// operators to sort far more keys than processors (package blocksort).
package mergenet

import (
	"encoding/json"
	"fmt"

	"productsort/internal/baseline"
	"productsort/internal/graph"
	"productsort/internal/product"
	"productsort/internal/schedule"
	"productsort/internal/simnet"
	"productsort/internal/sort2d"
)

// Schedule is the oblivious phase list of one full sort on a product
// network, expressed in snake coordinates: phase[i] is a set of
// node-disjoint (lo, hi) position pairs executed in parallel, and after
// applying every phase in order, any input is sorted ascending by
// position.
type Schedule struct {
	// Network names the product network the schedule was extracted from.
	Network string
	// Inputs is the sequence length N^r.
	Inputs int
	// Phases holds the compare-exchange rounds in execution order.
	Phases [][][2]int
}

// Extract runs the sorting algorithm once on PG_r of factor g with the
// given S_2 engine (nil = auto) and records its schedule. The keys'
// values are irrelevant — the algorithm is oblivious — so zeros are
// used.
func Extract(g *graph.Graph, r int, engine sort2d.Engine) (*Schedule, error) {
	net, err := product.New(g, r)
	if err != nil {
		return nil, err
	}
	return ExtractNet(net, engine)
}

// ExtractNet returns the schedule for an existing product network
// (heterogeneous networks included). The underlying phase program comes
// from the compiled-schedule cache, so repeated extractions on one
// topology never re-run the algorithm.
func ExtractNet(net *product.Network, engine sort2d.Engine) (*Schedule, error) {
	prog, err := schedule.Compile(net, engine)
	if err != nil {
		return nil, err
	}
	return FromProgram(prog, net), nil
}

// FromProgram re-expresses a compiled phase program in snake
// coordinates of net (which must be structurally identical to the
// network the program was compiled for — the usual case is passing the
// same network).
func FromProgram(prog *schedule.Program, net *product.Network) *Schedule {
	// Convert node ids to snake positions so the network sorts plain
	// slices into index order.
	pos := make([]int, net.Nodes())
	for id := range pos {
		pos[id] = net.SnakePos(id)
	}
	node := prog.Phases()
	phases := make([][][2]int, len(node))
	for i, ph := range node {
		out := make([][2]int, len(ph))
		for j, pr := range ph {
			out[j] = [2]int{pos[pr[0]], pos[pr[1]]}
		}
		phases[i] = out
	}
	return &Schedule{Network: net.Name(), Inputs: net.Nodes(), Phases: phases}
}

// NodePhases records the schedule in node-id space (rather than snake
// coordinates) together with the network it belongs to. This is the
// form the message-passing SPMD engine consumes: pair endpoints are
// physical processors.
func NodePhases(g *graph.Graph, r int, engine sort2d.Engine) ([][][2]int, *product.Network, error) {
	net, err := product.New(g, r)
	if err != nil {
		return nil, nil, err
	}
	phases, err := NodePhasesNet(net, engine)
	return phases, net, err
}

// NodePhasesNet returns the node-space schedule for an existing product
// network (heterogeneous networks included), served from the
// compiled-schedule cache.
func NodePhasesNet(net *product.Network, engine sort2d.Engine) ([][][2]int, error) {
	prog, err := schedule.Compile(net, engine)
	if err != nil {
		return nil, err
	}
	return prog.Phases(), nil
}

// ReplayOnMachine executes node-space phases on a machine: each phase
// becomes one compare-exchange call, with the machine charging real
// (possibly routed) costs. The phases' node ids must be valid for the
// machine's network.
func ReplayOnMachine(m *simnet.Machine, phases [][][2]int) {
	for _, ph := range phases {
		if len(ph) == 0 {
			m.IdleRound()
			continue
		}
		m.CompareExchange(ph)
	}
}

// TorusEmulation sorts the machine's keys by the Corollary's device:
// derive the sorting schedule for the torus with the same per-dimension
// sizes (factors replaced by cycles), then replay it on the actual
// machine. Every comparator pairs nodes whose labels differ by ±1 (mod
// N) in one dimension, so on an arbitrary connected factor each
// compare-exchange costs a short routed exchange — the embedding
// slowdown the paper bounds by a constant. Returns the derived torus
// schedule's network name for reporting.
func TorusEmulation(m *simnet.Machine, engine sort2d.Engine) (string, error) {
	factors := make([]*graph.Graph, m.Net().R())
	for dim := 1; dim <= m.Net().R(); dim++ {
		n := m.Net().Radix(dim)
		if n < 3 {
			// A 2-cycle degenerates to K2 = the path.
			factors[dim-1] = graph.Path(n)
			continue
		}
		factors[dim-1] = graph.Cycle(n)
	}
	torus, err := product.NewHetero(factors)
	if err != nil {
		return "", err
	}
	phases, err := NodePhasesNet(torus, engine)
	if err != nil {
		return "", err
	}
	ReplayOnMachine(m, phases)
	return torus.Name(), nil
}

// MustExtract is Extract, panicking on error.
func MustExtract(g *graph.Graph, r int, engine sort2d.Engine) *Schedule {
	s, err := Extract(g, r, engine)
	if err != nil {
		panic(err)
	}
	return s
}

// Depth returns the number of parallel phases.
func (s *Schedule) Depth() int { return len(s.Phases) }

// Size returns the total comparator count.
func (s *Schedule) Size() int {
	n := 0
	for _, ph := range s.Phases {
		n += len(ph)
	}
	return n
}

// Apply sorts keys in place by replaying the schedule. len(keys) must
// equal Inputs.
func (s *Schedule) Apply(keys []simnet.Key) {
	if len(keys) != s.Inputs {
		panic(fmt.Sprintf("mergenet: %d keys for %d-input schedule", len(keys), s.Inputs))
	}
	for _, ph := range s.Phases {
		for _, pr := range ph {
			if keys[pr[0]] > keys[pr[1]] {
				keys[pr[0]], keys[pr[1]] = keys[pr[1]], keys[pr[0]]
			}
		}
	}
}

// AsNetwork flattens the schedule into a baseline comparator network,
// enabling direct size/depth comparison with Batcher's constructions.
func (s *Schedule) AsNetwork() baseline.Network {
	var comps []baseline.Comparator
	for _, ph := range s.Phases {
		for _, pr := range ph {
			comps = append(comps, baseline.Comparator{I: pr[0], J: pr[1]})
		}
	}
	return baseline.Network{N: s.Inputs, Comps: comps}
}

// scheduleJSON is the on-disk form of a Schedule.
type scheduleJSON struct {
	Network string     `json:"network"`
	Inputs  int        `json:"inputs"`
	Phases  [][][2]int `json:"phases"`
}

// MarshalJSON encodes the schedule for external consumers (the
// cmd/schedule tool writes this format).
func (s *Schedule) MarshalJSON() ([]byte, error) {
	return json.Marshal(scheduleJSON{Network: s.Network, Inputs: s.Inputs, Phases: s.Phases})
}

// UnmarshalJSON decodes a schedule and validates it.
func (s *Schedule) UnmarshalJSON(data []byte) error {
	var raw scheduleJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	out := Schedule{Network: raw.Network, Inputs: raw.Inputs, Phases: raw.Phases}
	if err := out.Validate(); err != nil {
		return err
	}
	*s = out
	return nil
}

// Validate checks structural invariants: every phase's pairs are
// node-disjoint, positions are in range, and no pair is degenerate.
func (s *Schedule) Validate() error {
	for i, ph := range s.Phases {
		busy := make(map[int]bool, 2*len(ph))
		for _, pr := range ph {
			lo, hi := pr[0], pr[1]
			if lo < 0 || lo >= s.Inputs || hi < 0 || hi >= s.Inputs {
				return fmt.Errorf("mergenet: phase %d pair (%d,%d) out of range", i, lo, hi)
			}
			if lo == hi {
				return fmt.Errorf("mergenet: phase %d degenerate pair at %d", i, lo)
			}
			if busy[lo] || busy[hi] {
				return fmt.Errorf("mergenet: phase %d overlapping pairs at (%d,%d)", i, lo, hi)
			}
			busy[lo], busy[hi] = true, true
		}
	}
	return nil
}
