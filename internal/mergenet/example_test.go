package mergenet_test

import (
	"fmt"

	"productsort/internal/graph"
	"productsort/internal/mergenet"
	"productsort/internal/simnet"
)

// A recorded schedule is an ordinary sorting network: extract once,
// apply to any slice.
func ExampleExtract() {
	s, err := mergenet.Extract(graph.K2(), 3, nil) // 8-processor hypercube
	if err != nil {
		panic(err)
	}
	keys := []simnet.Key{7, 3, 5, 1, 6, 2, 4, 0}
	s.Apply(keys)
	fmt.Println(keys)
	fmt.Println(s.Inputs, "inputs,", s.Size(), "comparators")
	// Output:
	// [0 1 2 3 4 5 6 7]
	// 8 inputs, 52 comparators
}
