package mergenet

import (
	"encoding/json"
	"math/rand"
	"testing"

	"productsort/internal/baseline"
	"productsort/internal/graph"
	"productsort/internal/product"
	"productsort/internal/simnet"
	"productsort/internal/sort2d"
)

func TestExtractValidates(t *testing.T) {
	cases := []struct {
		g *graph.Graph
		r int
	}{
		{graph.Path(3), 2}, {graph.Path(3), 3}, {graph.Path(4), 3},
		{graph.K2(), 4}, {graph.K2(), 6}, {graph.Cycle(4), 2},
		{graph.CompleteBinaryTree(3), 2}, {graph.Petersen(), 2},
	}
	for _, c := range cases {
		s := MustExtract(c.g, c.r, nil)
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: %v", s.Network, err)
		}
		if s.Inputs <= 0 || s.Depth() <= 0 || s.Size() <= 0 {
			t.Fatalf("%s: degenerate schedule", s.Network)
		}
	}
}

// TestScheduleZeroOneExhaustive: a recorded schedule is a sorting
// network — exhaust the zero-one principle on small sizes.
func TestScheduleZeroOneExhaustive(t *testing.T) {
	cases := []struct {
		g *graph.Graph
		r int
	}{
		{graph.K2(), 2}, {graph.K2(), 3}, {graph.K2(), 4},
		{graph.Path(3), 2}, {graph.Path(4), 2}, {graph.Path(3), 3} /* 27 keys: sampled below */}
	for _, c := range cases {
		s := MustExtract(c.g, c.r, nil)
		if s.Inputs > 16 {
			continue
		}
		for mask := 0; mask < 1<<s.Inputs; mask++ {
			keys := make([]simnet.Key, s.Inputs)
			for i := range keys {
				keys[i] = simnet.Key(mask >> i & 1)
			}
			s.Apply(keys)
			for i := 1; i < len(keys); i++ {
				if keys[i] < keys[i-1] {
					t.Fatalf("%s: schedule fails 0-1 input %b", s.Network, mask)
				}
			}
		}
	}
}

func TestScheduleRandomInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, c := range []struct {
		g *graph.Graph
		r int
	}{
		{graph.Path(3), 3}, {graph.K2(), 6}, {graph.Petersen(), 2},
		{graph.CompleteBinaryTree(3), 2},
	} {
		s := MustExtract(c.g, c.r, nil)
		for trial := 0; trial < 25; trial++ {
			keys := make([]simnet.Key, s.Inputs)
			for i := range keys {
				keys[i] = simnet.Key(rng.Intn(100))
			}
			want := baseline.SequentialSortedCopy(keys)
			s.Apply(keys)
			for i := range keys {
				if keys[i] != want[i] {
					t.Fatalf("%s trial %d: wrong output at %d", s.Network, trial, i)
				}
			}
		}
	}
}

// TestDepthMatchesRounds: for Hamiltonian factors every phase is one
// round, so schedule depth equals the Theorem 1 round count.
func TestDepthMatchesRounds(t *testing.T) {
	cases := []struct {
		g      *graph.Graph
		r      int
		engine sort2d.Engine
	}{
		{graph.Path(3), 3, sort2d.Shearsort{}},
		{graph.K2(), 5, sort2d.Opt4{}},
	}
	for _, c := range cases {
		s := MustExtract(c.g, c.r, c.engine)
		want := (c.r-1)*(c.r-1)*c.engine.Rounds(c.g.N()) + (c.r-1)*(c.r-2)
		// The schedule omits idle rounds (no comparators), so depth can
		// be at most `want`, and equals it when no phase was empty.
		if s.Depth() > want {
			t.Errorf("%s: depth %d exceeds Theorem 1 rounds %d", s.Network, s.Depth(), want)
		}
		if c.g.N() > 2 && s.Depth() != want {
			t.Errorf("%s: depth %d want %d", s.Network, s.Depth(), want)
		}
	}
}

func TestAsNetworkEquivalent(t *testing.T) {
	s := MustExtract(graph.Path(3), 2, nil)
	nw := s.AsNetwork()
	if nw.Size() != s.Size() || nw.N != s.Inputs {
		t.Fatal("AsNetwork lost comparators")
	}
	if !nw.SortsAllZeroOne() {
		t.Fatal("flattened network does not sort")
	}
	// Greedy re-leveling can only shrink depth relative to the recorded
	// phase structure.
	if nw.Depth() > s.Depth() {
		t.Errorf("flattened depth %d > schedule depth %d", nw.Depth(), s.Depth())
	}
}

func TestApplyPanicsOnWrongLength(t *testing.T) {
	s := MustExtract(graph.K2(), 3, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("wrong length accepted")
		}
	}()
	s.Apply(make([]simnet.Key, 7))
}

// TestObliviousness: two extractions give the identical schedule
// (bitwise), and the schedule is independent of key values by
// construction.
func TestObliviousness(t *testing.T) {
	a := MustExtract(graph.Path(4), 3, nil)
	b := MustExtract(graph.Path(4), 3, nil)
	if a.Depth() != b.Depth() || a.Size() != b.Size() {
		t.Fatal("schedule not deterministic")
	}
	for i := range a.Phases {
		if len(a.Phases[i]) != len(b.Phases[i]) {
			t.Fatalf("phase %d differs", i)
		}
		for j := range a.Phases[i] {
			if a.Phases[i][j] != b.Phases[i][j] {
				t.Fatalf("pair %d.%d differs", i, j)
			}
		}
	}
}

// TestHypercubeScheduleVsBatcher compares sizes on the hypercube: the
// generalized schedule is bigger by a constant factor, never
// asymptotically.
func TestHypercubeScheduleVsBatcher(t *testing.T) {
	for _, r := range []int{3, 5, 7} {
		s := MustExtract(graph.K2(), r, nil)
		oem := baseline.OddEvenMergeNetwork(1 << r)
		ratio := float64(s.Size()) / float64(oem.Size())
		if ratio > 12 {
			t.Errorf("r=%d: schedule size %d vs OEM %d (ratio %.1f too large)",
				r, s.Size(), oem.Size(), ratio)
		}
	}
}

func TestTorusEmulationSorts(t *testing.T) {
	// The Corollary's device: any connected factor sorts by replaying
	// the same-size torus schedule with routed compare-exchanges.
	cases := []struct {
		g *graph.Graph
		r int
	}{
		{graph.CompleteBinaryTree(3), 2}, // non-Hamiltonian
		{graph.Star(5), 2},
		{graph.Path(4), 2}, // Hamiltonian: wraparound pairs cost extra
		{graph.Petersen(), 2},
		{graph.CompleteBinaryTree(3), 3},
	}
	rng := rand.New(rand.NewSource(4))
	for _, c := range cases {
		net := product.MustNew(c.g, c.r)
		keys := make([]simnet.Key, net.Nodes())
		for i := range keys {
			keys[i] = simnet.Key(rng.Intn(300))
		}
		m := simnet.MustNew(net, keys)
		name, err := TorusEmulation(m, nil)
		if err != nil {
			t.Fatal(err)
		}
		if name == "" {
			t.Error("no torus name returned")
		}
		if !m.IsSortedSnake() {
			t.Fatalf("%s: torus emulation failed to sort", net.Name())
		}
	}
}

func TestTorusEmulationK2(t *testing.T) {
	// N=2 factors degenerate to paths; emulation must still sort.
	net := product.MustNew(graph.K2(), 4)
	keys := make([]simnet.Key, 16)
	for i := range keys {
		keys[i] = simnet.Key(16 - i)
	}
	m := simnet.MustNew(net, keys)
	if _, err := TorusEmulation(m, nil); err != nil {
		t.Fatal(err)
	}
	if !m.IsSortedSnake() {
		t.Fatal("emulation on K2^4 failed")
	}
}

func TestReplayOnMachineIdle(t *testing.T) {
	net := product.MustNew(graph.Path(3), 1)
	m := simnet.MustNew(net, []simnet.Key{3, 1, 2})
	ReplayOnMachine(m, [][][2]int{{}, {{0, 1}}})
	clk := m.Clock()
	if clk.Rounds != 2 {
		t.Errorf("rounds=%d want 2 (idle + one phase)", clk.Rounds)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	s := MustExtract(graph.Path(3), 2, nil)
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Schedule
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Network != s.Network || back.Inputs != s.Inputs || back.Depth() != s.Depth() || back.Size() != s.Size() {
		t.Fatal("round trip lost data")
	}
	keys := make([]simnet.Key, s.Inputs)
	for i := range keys {
		keys[i] = simnet.Key(s.Inputs - i)
	}
	back.Apply(keys)
	for i := 1; i < len(keys); i++ {
		if keys[i] < keys[i-1] {
			t.Fatal("decoded schedule does not sort")
		}
	}
}

func TestJSONRejectsInvalid(t *testing.T) {
	var s Schedule
	// Overlapping pairs in one phase must be rejected by validation.
	bad := `{"network":"x","inputs":4,"phases":[[[0,1],[1,2]]]}`
	if err := json.Unmarshal([]byte(bad), &s); err == nil {
		t.Error("invalid schedule accepted")
	}
	if err := json.Unmarshal([]byte(`{`), &s); err == nil {
		t.Error("syntax error accepted")
	}
	outOfRange := `{"network":"x","inputs":2,"phases":[[[0,5]]]}`
	if err := json.Unmarshal([]byte(outOfRange), &s); err == nil {
		t.Error("out-of-range pair accepted")
	}
}

func BenchmarkExtractGrid3Cubed(b *testing.B) {
	g := graph.Path(3)
	for i := 0; i < b.N; i++ {
		MustExtract(g, 3, nil)
	}
}

func BenchmarkScheduleApply(b *testing.B) {
	s := MustExtract(graph.Path(4), 3, nil)
	rng := rand.New(rand.NewSource(1))
	keys := make([]simnet.Key, s.Inputs)
	for i := range keys {
		keys[i] = simnet.Key(rng.Int63())
	}
	buf := make([]simnet.Key, len(keys))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, keys)
		s.Apply(buf)
	}
}

func TestNodePhasesMatchesSchedule(t *testing.T) {
	phases, net, err := NodePhases(graph.Path(3), 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := MustExtract(graph.Path(3), 2, nil)
	if len(phases) != s.Depth() {
		t.Fatalf("node phases %d vs schedule depth %d", len(phases), s.Depth())
	}
	// Converting node ids to snake positions must reproduce the snake
	// schedule exactly.
	for i, ph := range phases {
		for j, pr := range ph {
			want := s.Phases[i][j]
			got := [2]int{net.SnakePos(pr[0]), net.SnakePos(pr[1])}
			if got != want {
				t.Fatalf("phase %d pair %d: %v vs %v", i, j, got, want)
			}
		}
	}
}
