// Package seqmerge implements Section 3 of the paper literally, as a
// sequence algorithm: "it does not even matter whether the algorithm is
// performed sequentially or in parallel". Multiway-merge combines N
// sorted sequences of m = N^(k-1) keys each through Steps 1–4 operating
// on plain slices; Sort applies the Section 3.3 driver.
//
// This is the reference model for the network implementation (package
// core): both must produce identical sequences, and because it runs in
// ordinary O(n log n)-ish time without simulating processors, it
// validates Lemma 1 and the merge at sizes far beyond what the machine
// simulator covers (tests go to N=16, r=3 → 4096 keys and beyond).
package seqmerge

import (
	"fmt"
	"sort"

	"productsort/internal/simnet"
)

// Key aliases the project key type.
type Key = simnet.Key

// Merge combines N sorted sequences of m = N^(k-1) keys each (k ≥ 2)
// into one sorted sequence of N^k keys, using the paper's multiway
// merge. Each element of seqs must be sorted nondecreasing and all must
// have equal power-of-N length.
func Merge(seqs [][]Key) ([]Key, error) {
	return merge(seqs, false)
}

// MergeSkipClean runs Steps 1–3 only, returning the "almost sorted"
// interleaved sequence whose dirty window Lemma 1 bounds by N².
func MergeSkipClean(seqs [][]Key) ([]Key, error) {
	return merge(seqs, true)
}

func merge(seqs [][]Key, skipClean bool) ([]Key, error) {
	n := len(seqs)
	if n < 2 {
		return nil, fmt.Errorf("seqmerge: need at least 2 sequences, got %d", n)
	}
	m := len(seqs[0])
	for i, s := range seqs {
		if len(s) != m {
			return nil, fmt.Errorf("seqmerge: sequence %d has %d keys, want %d", i, len(s), m)
		}
		if !isSorted(s) {
			return nil, fmt.Errorf("seqmerge: sequence %d is not sorted", i)
		}
	}
	if m%n != 0 && m != 1 {
		return nil, fmt.Errorf("seqmerge: length %d is not a multiple of N=%d", m, n)
	}
	if m == 1 {
		// N sequences of one key: plain sort of N keys ends the
		// recursion (the m = N^1 case below needs m ≥ N).
		out := flatten(seqs)
		sortKeys(out)
		return out, nil
	}

	// Step 1: distribute each A_u into N subsequences B_{u,v}: the keys
	// of A_u at positions v, 2N-v-1, 2N+v, 4N-v-1, … (column v of the
	// m/N × N snake array of Fig. 7).
	b := make([][][]Key, n) // b[u][v]
	for u, a := range seqs {
		b[u] = distribute(a, n)
	}

	// Step 2: merge column v (the B_{u,v} over all u) into C_v — by
	// recursion when columns still hold at least N² keys, by direct
	// sorting when they hold exactly N² (Section 3.2).
	c := make([][]Key, n)
	for v := 0; v < n; v++ {
		col := make([][]Key, n)
		for u := 0; u < n; u++ {
			col[u] = b[u][v]
		}
		if m == n { // columns hold N·(m/N)=m=N keys each → N² total? No:
			// each B_{u,v} has m/N = 1 key; the column holds N keys.
			out := flatten(col)
			sortKeys(out)
			c[v] = out
			continue
		}
		if m == n*n {
			// Columns hold N·N = N² keys: sort directly.
			out := flatten(col)
			sortKeys(out)
			c[v] = out
			continue
		}
		sub, err := merge(col, false)
		if err != nil {
			return nil, err
		}
		c[v] = sub
	}

	// Step 3: interleave — D's row j is (c[0][j], c[1][j], …, c[N-1][j]).
	d := make([]Key, 0, n*m)
	for j := 0; j < m; j++ {
		for v := 0; v < n; v++ {
			d = append(d, c[v][j])
		}
	}
	if skipClean {
		return d, nil
	}

	// Step 4: clean the dirty area. Split D into m/N chunks E_z of N²
	// consecutive keys; sort in alternating directions; two steps of
	// odd-even transposition between adjacent chunks; sort again;
	// concatenate in snake order (ascending again).
	chunk := n * n
	chunks := len(d) / chunk
	sortAlternating(d, chunk)
	for phase := 0; phase < 2; phase++ {
		for z := phase; z+1 < chunks; z += 2 {
			lo := d[z*chunk : (z+1)*chunk]
			hi := d[(z+1)*chunk : (z+2)*chunk]
			// Element-by-element compare (f_{z,t} vs f_{z+1,t}): with
			// alternating sort directions this is the bitonic cleaning
			// step; min stays in the earlier chunk.
			for t := 0; t < chunk; t++ {
				if lo[t] > hi[t] {
					lo[t], hi[t] = hi[t], lo[t]
				}
			}
		}
	}
	sortAscendingChunks(d, chunk)
	return d, nil
}

// distribute implements Step 1 for one sequence: column v of the
// m/N × N snake-order array.
func distribute(a []Key, n int) [][]Key {
	m := len(a)
	rows := m / n
	out := make([][]Key, n)
	for v := 0; v < n; v++ {
		col := make([]Key, 0, rows)
		for j := 0; j < rows; j++ {
			idx := j * n
			if j%2 == 0 {
				idx += v
			} else {
				idx += n - 1 - v
			}
			col = append(col, a[idx])
		}
		out[v] = col
	}
	return out
}

// sortAlternating sorts chunk z ascending when z is even, descending
// when odd (the F_z of Step 4).
func sortAlternating(d []Key, chunk int) {
	for z := 0; z*chunk < len(d); z++ {
		part := d[z*chunk : (z+1)*chunk]
		if z%2 == 0 {
			sortKeys(part)
		} else {
			sort.Slice(part, func(i, j int) bool { return part[i] > part[j] })
		}
	}
}

// sortAscendingChunks sorts every chunk ascending: because each chunk
// holds a contiguous range of ranks after the transpositions, ascending
// concatenation is the sorted sequence (the sequence-world's "snake
// concatenation" where alternating directions cancel against the
// alternating read order of the network view).
func sortAscendingChunks(d []Key, chunk int) {
	for z := 0; z*chunk < len(d); z++ {
		sortKeys(d[z*chunk : (z+1)*chunk])
	}
}

// MergeHetero combines nk sorted sequences (nk = len(seqs)) of equal
// length into one sorted sequence using the heterogeneous multiway
// merge: Step 1 distributes each sequence into n1 subsequences, and
// Step 4 cleans with chunks of n1·n2 keys. This is the sequence-level
// mirror of the network extension (package core): the generalized
// Lemma 1 bounds the dirty window by n1·nk, so correctness requires
// nk ≤ n2. Columns are merged by direct sorting (no recursion), which
// keeps this a one-level reference model.
func MergeHetero(seqs [][]Key, n1, n2 int) ([]Key, error) {
	nk := len(seqs)
	if nk < 2 {
		return nil, fmt.Errorf("seqmerge: need at least 2 sequences, got %d", nk)
	}
	if n1 < 2 || n2 < 2 {
		return nil, fmt.Errorf("seqmerge: need n1, n2 ≥ 2")
	}
	if nk > n2 {
		return nil, fmt.Errorf("seqmerge: heterogeneous merge requires nk ≤ n2 (got nk=%d, n2=%d)", nk, n2)
	}
	m := len(seqs[0])
	for i, s := range seqs {
		if len(s) != m {
			return nil, fmt.Errorf("seqmerge: sequence %d has %d keys, want %d", i, len(s), m)
		}
		if !isSorted(s) {
			return nil, fmt.Errorf("seqmerge: sequence %d is not sorted", i)
		}
	}
	if m%n1 != 0 {
		return nil, fmt.Errorf("seqmerge: length %d is not a multiple of n1=%d", m, n1)
	}
	// Step 1: distribute each A_u into n1 columns.
	b := make([][][]Key, nk)
	for u, a := range seqs {
		b[u] = distribute(a, n1)
	}
	// Step 2: sort each column directly (reference model).
	c := make([][]Key, n1)
	for v := 0; v < n1; v++ {
		col := make([][]Key, nk)
		for u := 0; u < nk; u++ {
			col[u] = b[u][v]
		}
		out := flatten(col)
		sortKeys(out)
		c[v] = out
	}
	// Step 3: interleave over the n1 columns.
	rows := len(c[0])
	d := make([]Key, 0, nk*m)
	for j := 0; j < rows; j++ {
		for v := 0; v < n1; v++ {
			d = append(d, c[v][j])
		}
	}
	// Step 4: clean with chunks of n1·n2 keys.
	chunk := n1 * n2
	if len(d)%chunk != 0 {
		return nil, fmt.Errorf("seqmerge: %d keys not divisible by chunk %d", len(d), chunk)
	}
	chunks := len(d) / chunk
	sortAlternating(d, chunk)
	for phase := 0; phase < 2; phase++ {
		for z := phase; z+1 < chunks; z += 2 {
			lo := d[z*chunk : (z+1)*chunk]
			hi := d[(z+1)*chunk : (z+2)*chunk]
			for t := 0; t < chunk; t++ {
				if lo[t] > hi[t] {
					lo[t], hi[t] = hi[t], lo[t]
				}
			}
		}
	}
	sortAscendingChunks(d, chunk)
	return d, nil
}

// Sort sorts n = N^r keys (r ≥ 2) by the Section 3.3 driver: sort
// N^(r-2) groups of N² directly, then merge groups of N sequences
// repeatedly until one remains.
func Sort(keys []Key, n, r int) ([]Key, error) {
	if n < 2 || r < 2 {
		return nil, fmt.Errorf("seqmerge: need N ≥ 2 and r ≥ 2")
	}
	total := 1
	for i := 0; i < r; i++ {
		total *= n
	}
	if len(keys) != total {
		return nil, fmt.Errorf("seqmerge: %d keys for N^r = %d", len(keys), total)
	}
	// Initial N²-sorts.
	work := append([]Key(nil), keys...)
	for off := 0; off < total; off += n * n {
		sortKeys(work[off : off+n*n])
	}
	seqs := make([][]Key, 0, total/(n*n))
	for off := 0; off < total; off += n * n {
		seqs = append(seqs, work[off:off+n*n])
	}
	// Merge rounds.
	for len(seqs) > 1 {
		next := make([][]Key, 0, len(seqs)/n)
		for g := 0; g < len(seqs); g += n {
			merged, err := Merge(seqs[g : g+n])
			if err != nil {
				return nil, err
			}
			next = append(next, merged)
		}
		seqs = next
	}
	return seqs[0], nil
}

func isSorted(s []Key) bool {
	for i := 1; i < len(s); i++ {
		if s[i] < s[i-1] {
			return false
		}
	}
	return true
}

func sortKeys(s []Key) { sort.Slice(s, func(i, j int) bool { return s[i] < s[j] }) }

func flatten(ss [][]Key) []Key {
	var out []Key
	for _, s := range ss {
		out = append(out, s...)
	}
	return out
}
