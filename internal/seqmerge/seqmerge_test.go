package seqmerge

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"productsort/internal/core"
	"productsort/internal/graph"
	"productsort/internal/product"
	"productsort/internal/simnet"
	"productsort/internal/workload"
)

func sortedCopy(ks []Key) []Key {
	out := append([]Key(nil), ks...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedSeqs(n, m int, seed int64) [][]Key {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]Key, n)
	for u := range out {
		s := make([]Key, m)
		for i := range s {
			s[i] = Key(rng.Intn(10 * m))
		}
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		out[u] = s
	}
	return out
}

func TestMergeValidation(t *testing.T) {
	if _, err := Merge([][]Key{{1, 2}}); err == nil {
		t.Error("single sequence accepted")
	}
	if _, err := Merge([][]Key{{1, 2}, {1}}); err == nil {
		t.Error("ragged sequences accepted")
	}
	if _, err := Merge([][]Key{{2, 1}, {1, 2}}); err == nil {
		t.Error("unsorted input accepted")
	}
	if _, err := Merge([][]Key{{1, 2, 3}, {1, 2, 3}}); err == nil {
		t.Error("length not multiple of N accepted")
	}
}

func TestMergeSmall(t *testing.T) {
	// The paper's Step 1 example: N=3, A_u = 1..9.
	got, err := Merge([][]Key{
		{1, 2, 3, 4, 5, 6, 7, 8, 9},
		{1, 2, 3, 4, 5, 6, 7, 8, 9},
		{1, 2, 3, 4, 5, 6, 7, 8, 9},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range got {
		if k != Key(i/3+1) {
			t.Fatalf("merge of triple 1..9 wrong at %d: %v", i, got)
		}
	}
}

func TestMergePaperExample(t *testing.T) {
	got, err := Merge([][]Key{
		{0, 4, 4, 5, 5, 7, 8, 8, 9},
		{1, 4, 5, 5, 5, 6, 7, 7, 8},
		{0, 0, 1, 1, 1, 2, 3, 4, 9},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []Key{0, 0, 0, 1, 1, 1, 1, 2, 3, 4, 4, 4, 4, 5, 5, 5, 5, 5, 6, 7, 7, 7, 8, 8, 8, 9, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("paper example wrong at %d: %v", i, got)
		}
	}
}

func TestMergeSizesAndDepths(t *testing.T) {
	// N sequences of N^(k-1) keys across N and k, including recursion
	// depth ≥ 2 (m ≥ N³).
	cases := []struct{ n, m int }{
		{2, 2}, {2, 4}, {2, 8}, {2, 16}, {2, 64},
		{3, 9}, {3, 27}, {3, 81},
		{4, 16}, {4, 64}, {4, 256},
		{5, 25}, {5, 125},
		{8, 64}, {8, 512},
	}
	for _, c := range cases {
		for seed := int64(0); seed < 4; seed++ {
			seqs := sortedSeqs(c.n, c.m, seed)
			want := sortedCopy(flatten(seqs))
			got, err := Merge(seqs)
			if err != nil {
				t.Fatalf("N=%d m=%d: %v", c.n, c.m, err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("N=%d m=%d seed=%d: wrong at %d", c.n, c.m, seed, i)
				}
			}
		}
	}
}

// TestMergeZeroOneExhaustive: exhaustive 0-1 inputs (as sorted rows) for
// small shapes. A sorted 0-1 row of length m is determined by its zero
// count, so all (m+1)^N combinations are enumerable.
func TestMergeZeroOneExhaustive(t *testing.T) {
	for _, c := range []struct{ n, m int }{{2, 4}, {2, 8}, {3, 9}, {4, 16}} {
		counts := make([]int, c.n)
		var rec func(u int)
		rec = func(u int) {
			if u == c.n {
				seqs := make([][]Key, c.n)
				zeros := 0
				for i, z := range counts {
					s := make([]Key, c.m)
					for j := z; j < c.m; j++ {
						s[j] = 1
					}
					seqs[i] = s
					zeros += z
				}
				got, err := Merge(seqs)
				if err != nil {
					t.Fatal(err)
				}
				for i, k := range got {
					want := Key(0)
					if i >= zeros {
						want = 1
					}
					if k != want {
						t.Fatalf("N=%d m=%d counts=%v: wrong at %d: %v", c.n, c.m, counts, i, got)
					}
				}
				return
			}
			for z := 0; z <= c.m; z++ {
				counts[u] = z
				rec(u + 1)
			}
		}
		rec(0)
	}
}

// TestLemma1LargeScale: the dirty window after Steps 1–3 stays ≤ N² at
// sizes the machine simulator never reaches.
func TestLemma1LargeScale(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, c := range []struct{ n, m int }{{8, 512}, {16, 256}, {16, 4096}, {32, 1024}} {
		for trial := 0; trial < 5; trial++ {
			seqs := make([][]Key, c.n)
			for u := range seqs {
				s := make([]Key, c.m)
				z := rng.Intn(c.m + 1)
				for j := z; j < c.m; j++ {
					s[j] = 1
				}
				seqs[u] = s
			}
			d, err := MergeSkipClean(seqs)
			if err != nil {
				t.Fatal(err)
			}
			if w := core.DirtyWindow(d); w > c.n*c.n {
				t.Fatalf("N=%d m=%d: dirty window %d > %d", c.n, c.m, w, c.n*c.n)
			}
		}
	}
}

func TestSortDriver(t *testing.T) {
	cases := []struct{ n, r int }{
		{2, 2}, {2, 5}, {2, 10}, {3, 3}, {3, 5}, {4, 4}, {5, 3}, {8, 3}, {16, 3}, {10, 3},
	}
	rng := rand.New(rand.NewSource(7))
	for _, c := range cases {
		total := 1
		for i := 0; i < c.r; i++ {
			total *= c.n
		}
		keys := make([]Key, total)
		for i := range keys {
			keys[i] = Key(rng.Intn(3 * total))
		}
		want := sortedCopy(keys)
		got, err := Sort(keys, c.n, c.r)
		if err != nil {
			t.Fatalf("N=%d r=%d: %v", c.n, c.r, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("N=%d r=%d: wrong at %d", c.n, c.r, i)
			}
		}
	}
}

func TestSortValidation(t *testing.T) {
	if _, err := Sort(make([]Key, 8), 2, 1); err == nil {
		t.Error("r=1 accepted")
	}
	if _, err := Sort(make([]Key, 7), 2, 3); err == nil {
		t.Error("wrong length accepted")
	}
}

// TestMatchesNetworkImplementation: the sequence algorithm and the
// product-network implementation produce identical sequences.
func TestMatchesNetworkImplementation(t *testing.T) {
	cases := []struct {
		g *graph.Graph
		r int
	}{
		{graph.Path(3), 3}, {graph.Path(4), 3}, {graph.K2(), 6}, {graph.Path(5), 3},
	}
	for _, c := range cases {
		net := product.MustNew(c.g, c.r)
		keys := workload.Uniform(net.Nodes(), 13)

		m := simnet.MustNew(net, make([]simnet.Key, net.Nodes()))
		m.LoadSnake(keys)
		core.New(nil).Sort(m)

		got, err := Sort(keys, c.g.N(), c.r)
		if err != nil {
			t.Fatal(err)
		}
		netKeys := m.SnakeKeys()
		for i := range got {
			if got[i] != netKeys[i] {
				t.Fatalf("%s: sequence and network disagree at %d", net.Name(), i)
			}
		}
	}
}

// Property: Merge equals sort-of-concatenation for random shapes.
func TestQuickMerge(t *testing.T) {
	f := func(seed int64, nRaw, kRaw uint8) bool {
		n := 2 + int(nRaw)%4 // 2..5
		k := 2 + int(kRaw)%2 // sequences of N^(k-1): N or N²... keep ≥ N
		m := 1
		for i := 0; i < k; i++ {
			m *= n
		}
		seqs := sortedSeqs(n, m, seed)
		want := sortedCopy(flatten(seqs))
		got, err := Merge(seqs)
		if err != nil {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkMerge8x512(b *testing.B) {
	seqs := sortedSeqs(8, 512, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Merge(seqs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSort4096(b *testing.B) {
	keys := workload.Uniform(4096, 1)
	b.SetBytes(4096 * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Sort(keys, 16, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func TestMergeHeteroValidation(t *testing.T) {
	mk := func(n, m int) [][]Key {
		return sortedSeqs(n, m, 1)
	}
	if _, err := MergeHetero(mk(1, 4), 2, 2); err == nil {
		t.Error("single sequence accepted")
	}
	if _, err := MergeHetero(mk(3, 8), 2, 2); err == nil {
		t.Error("nk > n2 accepted")
	}
	if _, err := MergeHetero(mk(2, 5), 2, 2); err == nil {
		t.Error("m not multiple of n1 accepted")
	}
	if _, err := MergeHetero(mk(2, 4), 1, 4); err == nil {
		t.Error("n1 < 2 accepted")
	}
	if _, err := MergeHetero([][]Key{{2, 1}, {1, 2}}, 2, 2); err == nil {
		t.Error("unsorted input accepted")
	}
}

func TestMergeHeteroShapes(t *testing.T) {
	// nk sequences, split into n1 columns, chunks n1×n2, requiring
	// nk ≤ n2 and (nk·m) divisible by n1·n2.
	cases := []struct{ nk, n1, n2, m int }{
		{2, 2, 2, 4}, {2, 3, 2, 6}, {3, 2, 3, 6}, {3, 4, 3, 12},
		{4, 2, 4, 8}, {4, 5, 4, 10}, {2, 2, 4, 8}, {5, 3, 5, 9},
	}
	for _, c := range cases {
		for seed := int64(0); seed < 4; seed++ {
			seqs := sortedSeqs(c.nk, c.m, seed)
			want := sortedCopy(flatten(seqs))
			got, err := MergeHetero(seqs, c.n1, c.n2)
			if err != nil {
				t.Fatalf("%+v: %v", c, err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%+v seed %d: wrong at %d: %v", c, seed, i, got)
				}
			}
		}
	}
}

// TestMergeHeteroZeroOneExhaustive: every 0-1 input combination (sorted
// rows are determined by their zero counts).
func TestMergeHeteroZeroOneExhaustive(t *testing.T) {
	for _, c := range []struct{ nk, n1, n2, m int }{
		{3, 2, 3, 6}, {2, 3, 2, 6}, {4, 2, 4, 8},
	} {
		counts := make([]int, c.nk)
		var rec func(u int)
		rec = func(u int) {
			if u == c.nk {
				seqs := make([][]Key, c.nk)
				zeros := 0
				for i, z := range counts {
					s := make([]Key, c.m)
					for j := z; j < c.m; j++ {
						s[j] = 1
					}
					seqs[i] = s
					zeros += z
				}
				got, err := MergeHetero(seqs, c.n1, c.n2)
				if err != nil {
					t.Fatal(err)
				}
				for i, k := range got {
					want := Key(0)
					if i >= zeros {
						want = 1
					}
					if k != want {
						t.Fatalf("%+v counts=%v: wrong at %d", c, counts, i)
					}
				}
				return
			}
			for z := 0; z <= c.m; z++ {
				counts[u] = z
				rec(u + 1)
			}
		}
		rec(0)
	}
}

// TestMergeHeteroViolationCanFail documents why the nk ≤ n2 condition
// exists: it is required by the window argument. (We do not assert
// failure — some inputs still sort — only that the guard rejects the
// shape up front.)
func TestMergeHeteroGuard(t *testing.T) {
	seqs := sortedSeqs(5, 10, 3) // nk=5 > n2=2
	if _, err := MergeHetero(seqs, 5, 2); err == nil {
		t.Error("nk > n2 shape must be rejected")
	}
}
