package viz

import (
	"strings"
	"testing"

	"productsort/internal/graph"
	"productsort/internal/product"
	"productsort/internal/simnet"
)

func seq(n int) []simnet.Key {
	ks := make([]simnet.Key, n)
	for i := range ks {
		ks[i] = simnet.Key(i)
	}
	return ks
}

func TestRender1D(t *testing.T) {
	net := product.MustNew(graph.Path(4), 1)
	out := RenderKeys(net, seq(4))
	if out != "0 1 2 3\n" {
		t.Errorf("1D render %q", out)
	}
}

func TestRender2D(t *testing.T) {
	net := product.MustNew(graph.Path(3), 2)
	out := RenderKeys(net, seq(9))
	want := "0 1 2\n3 4 5\n6 7 8\n"
	if out != want {
		t.Errorf("2D render:\n%s\nwant:\n%s", out, want)
	}
}

func TestRender3D(t *testing.T) {
	net := product.MustNew(graph.Path(2), 3)
	out := RenderKeys(net, seq(8))
	if !strings.Contains(out, "[0]") || !strings.Contains(out, "[1]") {
		t.Errorf("3D render missing slab headers:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 { // header + 2 rows
		t.Errorf("3D render has %d lines:\n%s", len(lines), out)
	}
	// Row y=0 holds ids 0,1 (slab 0) and 4,5 (slab 1).
	if !strings.HasPrefix(lines[1], "0 1   4 5") {
		t.Errorf("row 0 = %q", lines[1])
	}
}

func TestRenderHighDimFallsBack(t *testing.T) {
	net := product.MustNew(graph.Path(2), 4)
	out := RenderKeys(net, seq(16))
	if !strings.HasPrefix(out, "snake order:") {
		t.Errorf("4D render %q", out)
	}
}

func TestRenderMachine(t *testing.T) {
	net := product.MustNew(graph.Path(3), 2)
	m := simnet.MustNew(net, seq(9))
	if Render(m) != RenderKeys(net, seq(9)) {
		t.Error("Render(machine) differs from RenderKeys")
	}
}

func TestFactorDOT(t *testing.T) {
	out := FactorDOT(graph.Cycle(4))
	for _, want := range []string{"graph \"cycle4\"", "0 -- 1 [style=bold]", "0 -- 3;", "}"} {
		if !strings.Contains(out, want) {
			t.Errorf("factor DOT missing %q:\n%s", want, out)
		}
	}
}

func TestProductDOT(t *testing.T) {
	net := product.MustNew(graph.Path(2), 2)
	out := ProductDOT(net)
	// 2x2 grid: 4 edges, node names like "0.1" (pos2.pos1).
	if strings.Count(out, " -- ") != 4 {
		t.Errorf("product DOT edge count:\n%s", out)
	}
	for _, want := range []string{`"0.0" -- "0.1"`, `"0.0" -- "1.0"`} {
		if !strings.Contains(out, want) {
			t.Errorf("product DOT missing %q:\n%s", want, out)
		}
	}
}

func TestWideKeysAligned(t *testing.T) {
	net := product.MustNew(graph.Path(2), 2)
	out := RenderKeys(net, []simnet.Key{5, 1000, 7, 42})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines[0]) != len(lines[1]) {
		t.Errorf("misaligned rows:\n%s", out)
	}
}
