// Package viz renders machine states as ASCII grids in the layout of
// the paper's Figs. 12–15: dimension 1 runs left-to-right within a row,
// dimension 2 top-to-bottom, and dimension 3 (when present) lays slabs
// side by side. Used by the E1 trace and by psort's -trace flag.
package viz

import (
	"fmt"
	"strings"

	"productsort/internal/graph"
	"productsort/internal/product"
	"productsort/internal/simnet"
)

// Render draws the keys of machine m (up to three dimensions).
func Render(m *simnet.Machine) string { return RenderKeys(m.Net(), m.Keys()) }

// RenderKeys draws keys (indexed by node id) on the given network.
// Networks with more than three dimensions are summarized as their
// snake sequence.
func RenderKeys(net *product.Network, keys []simnet.Key) string {
	width := 1
	for _, k := range keys {
		if w := len(fmt.Sprint(k)); w > width {
			width = w
		}
	}
	cell := func(id int) string { return fmt.Sprintf("%*d", width, keys[id]) }
	var sb strings.Builder
	switch net.R() {
	case 1:
		for v := 0; v < net.Radix(1); v++ {
			if v > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString(cell(v))
		}
		sb.WriteByte('\n')
	case 2:
		for y := 0; y < net.Radix(2); y++ {
			for x := 0; x < net.Radix(1); x++ {
				if x > 0 {
					sb.WriteByte(' ')
				}
				sb.WriteString(cell(net.ID([]int{x, y})))
			}
			sb.WriteByte('\n')
		}
	case 3:
		nx, ny, nz := net.Radix(1), net.Radix(2), net.Radix(3)
		slabWidth := nx*(width+1) - 1
		for z := 0; z < nz; z++ {
			sb.WriteString(pad(fmt.Sprintf("[%d]", z), slabWidth))
			if z < nz-1 {
				sb.WriteString("   ")
			}
		}
		sb.WriteByte('\n')
		for y := 0; y < ny; y++ {
			for z := 0; z < nz; z++ {
				for x := 0; x < nx; x++ {
					if x > 0 {
						sb.WriteByte(' ')
					}
					sb.WriteString(cell(net.ID([]int{x, y, z})))
				}
				if z < nz-1 {
					sb.WriteString("   ")
				}
			}
			sb.WriteByte('\n')
		}
	default:
		sb.WriteString("snake order: ")
		for pos := 0; pos < net.Nodes(); pos++ {
			if pos > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString(cell(net.NodeAtSnake(pos)))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s[:w]
	}
	return s + strings.Repeat(" ", w-len(s))
}

// FactorDOT renders a factor graph in Graphviz DOT format. Node labels
// are the sorting order; Hamiltonian-consecutive edges are highlighted
// bold so the snake path is visible.
func FactorDOT(g *graph.Graph) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "graph %q {\n  layout=neato;\n  node [shape=circle];\n", g.Name())
	for _, e := range g.Edges() {
		attr := ""
		if e[1]-e[0] == 1 {
			attr = " [style=bold]"
		}
		fmt.Fprintf(&sb, "  %d -- %d%s;\n", e[0], e[1], attr)
	}
	sb.WriteString("}\n")
	return sb.String()
}

// ProductDOT renders a product network in DOT format with nodes named
// by their labels (position r … position 1). Intended for small
// networks (it emits every edge).
func ProductDOT(net *product.Network) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "graph %q {\n  node [shape=box];\n", net.Name())
	buf := make([]int, net.R())
	name := func(id int) string {
		net.Label(id, buf)
		parts := make([]string, len(buf))
		for i := range buf {
			parts[len(buf)-1-i] = fmt.Sprint(buf[i])
		}
		return strings.Join(parts, ".")
	}
	for id := 0; id < net.Nodes(); id++ {
		for _, nb := range net.Neighbors(id) {
			if id < nb {
				fmt.Fprintf(&sb, "  %q -- %q;\n", name(id), name(nb))
			}
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}
