package spmd

import (
	"math/rand"
	"sort"
	"testing"

	"productsort/internal/core"
	"productsort/internal/graph"
	"productsort/internal/mergenet"
	"productsort/internal/product"
	"productsort/internal/schedule"
	"productsort/internal/simnet"
)

func randomKeys(n int, seed int64) []Key {
	rng := rand.New(rand.NewSource(seed))
	ks := make([]Key, n)
	for i := range ks {
		ks[i] = Key(rng.Intn(500))
	}
	return ks
}

func TestSortMatchesSimulatorAcrossNetworks(t *testing.T) {
	cfgs := []struct {
		g *graph.Graph
		r int
	}{
		{graph.Path(3), 2},
		{graph.Path(3), 3},
		{graph.Path(4), 3},
		{graph.K2(), 5},
		{graph.Cycle(4), 3},
		{graph.Petersen(), 2},
		{graph.CompleteBinaryTree(3), 2}, // relayed exchanges
		{graph.Star(5), 2},               // relayed exchanges via the hub
	}
	for _, c := range cfgs {
		net := product.MustNew(c.g, c.r)
		keys := randomKeys(net.Nodes(), 11)

		// Reference: deterministic simulator.
		m := simnet.MustNew(net, make([]Key, net.Nodes()))
		m.LoadSnake(keys)
		core.New(nil).Sort(m)

		// Message-passing engine.
		e, err := Sort(c.g, c.r, keys, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, want := e.SnakeKeys(), m.SnakeKeys()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: engines disagree at snake pos %d: %d vs %d",
					net.Name(), i, got[i], want[i])
			}
		}
	}
}

func TestRelayCountsZeroOnHamiltonian(t *testing.T) {
	e, err := Sort(graph.Path(3), 3, randomKeys(27, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if e.Relays() != 0 {
		t.Errorf("Hamiltonian factor produced %d relays", e.Relays())
	}
	if e.Messages() == 0 {
		t.Error("no messages recorded")
	}
}

func TestRelaysPositiveOnTree(t *testing.T) {
	e, err := Sort(graph.CompleteBinaryTree(3), 2, randomKeys(49, 2), nil)
	if err != nil {
		t.Fatal(err)
	}
	if e.Relays() == 0 {
		t.Error("tree factor should require relayed exchanges")
	}
	keys := e.SnakeKeys()
	for i := 1; i < len(keys); i++ {
		if keys[i] < keys[i-1] {
			t.Fatal("relayed sort produced unsorted output")
		}
	}
}

func TestRunPhaseDirect(t *testing.T) {
	net := product.MustNew(graph.Path(4), 1)
	e, err := New(net, []Key{9, 1, 7, 3})
	if err != nil {
		t.Fatal(err)
	}
	e.RunPhase([][2]int{{0, 1}, {2, 3}})
	got := e.Keys()
	want := []Key{1, 9, 3, 7}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("keys=%v want %v", got, want)
		}
	}
}

func TestRunPhaseDescendingOrientation(t *testing.T) {
	net := product.MustNew(graph.Path(2), 1)
	e, _ := New(net, []Key{2, 8})
	e.RunPhase([][2]int{{1, 0}}) // max to node 0
	got := e.Keys()
	if got[0] != 8 || got[1] != 2 {
		t.Fatalf("keys=%v", got)
	}
}

func TestRunPhaseEmpty(t *testing.T) {
	net := product.MustNew(graph.Path(2), 1)
	e, _ := New(net, []Key{1, 2})
	e.RunPhase(nil) // must not deadlock
	if e.Messages() != 0 {
		t.Error("empty phase sent messages")
	}
}

func TestRunPhaseOverlapPanics(t *testing.T) {
	net := product.MustNew(graph.Path(3), 1)
	e, _ := New(net, []Key{1, 2, 3})
	defer func() {
		if recover() == nil {
			t.Fatal("overlap accepted")
		}
	}()
	e.RunPhase([][2]int{{0, 1}, {1, 2}})
}

func TestNewValidation(t *testing.T) {
	net := product.MustNew(graph.Path(3), 1)
	if _, err := New(net, make([]Key, 5)); err != nil {
	} else {
		t.Error("wrong key count accepted")
	}
	if _, err := Sort(graph.Path(3), 2, make([]Key, 5), nil); err == nil {
		t.Error("wrong key count accepted by Sort")
	}
}

// TestManyPhasesStress runs the full schedule phase-by-phase on a
// larger network to shake out channel lifecycle bugs under -race.
func TestManyPhasesStress(t *testing.T) {
	g := graph.Path(4)
	phases, net, err := mergenet.NodePhases(g, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	keys := randomKeys(net.Nodes(), 77)
	byNode := make([]Key, len(keys))
	for pos, k := range keys {
		byNode[net.NodeAtSnake(pos)] = k
	}
	e, err := New(net, byNode)
	if err != nil {
		t.Fatal(err)
	}
	for _, ph := range phases {
		e.RunPhase(ph)
	}
	got := e.SnakeKeys()
	wantKeys := append([]Key(nil), keys...)
	sort.Slice(wantKeys, func(i, j int) bool { return wantKeys[i] < wantKeys[j] })
	for i := range wantKeys {
		if got[i] != wantKeys[i] {
			t.Fatalf("stress sort mismatch at %d", i)
		}
	}
}

func BenchmarkSPMDSortGrid27(b *testing.B) {
	keys := randomKeys(27, 4)
	for i := 0; i < b.N; i++ {
		if _, err := Sort(graph.Path(3), 3, keys, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSynchronizedRoundsMatchSimulator(t *testing.T) {
	// On a Hamiltonian factor every phase is one synchronized round, so
	// the SPMD engine's measured total equals the simulator's charge.
	g := graph.Path(3)
	phases, net, err := mergenet.NodePhases(g, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	keys := randomKeys(net.Nodes(), 33)
	byNode := make([]Key, len(keys))
	for pos, k := range keys {
		byNode[net.NodeAtSnake(pos)] = k
	}
	e, err := New(net, byNode)
	if err != nil {
		t.Fatal(err)
	}
	rounds := e.RunScheduleSynchronized(phases)

	m := simnet.MustNew(net, make([]Key, net.Nodes()))
	m.LoadSnake(keys)
	core.New(nil).Sort(m)
	if rounds != m.Clock().Rounds {
		t.Errorf("synchronized SPMD rounds %d != simulator %d", rounds, m.Clock().Rounds)
	}
	got, want := e.SnakeKeys(), m.SnakeKeys()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("synchronized engine diverged at %d", i)
		}
	}
}

func TestSynchronizedRoutedCostsMore(t *testing.T) {
	// On a tree factor, routed phases need multiple synchronized rounds.
	g := graph.CompleteBinaryTree(3)
	phases, net, err := mergenet.NodePhases(g, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	keys := randomKeys(net.Nodes(), 34)
	byNode := make([]Key, len(keys))
	for pos, k := range keys {
		byNode[net.NodeAtSnake(pos)] = k
	}
	e, err := New(net, byNode)
	if err != nil {
		t.Fatal(err)
	}
	rounds := e.RunScheduleSynchronized(phases)
	if rounds <= len(phases) {
		t.Errorf("tree factor: %d rounds for %d phases — relaying should cost extra", rounds, len(phases))
	}
	ks := e.SnakeKeys()
	for i := 1; i < len(ks); i++ {
		if ks[i] < ks[i-1] {
			t.Fatal("synchronized routed sort failed")
		}
	}
}

func TestSynchronizedEmptyPhase(t *testing.T) {
	net := product.MustNew(graph.Path(2), 1)
	e, _ := New(net, []Key{2, 1})
	if r := e.RunPhaseSynchronized(nil); r != 0 {
		t.Errorf("empty phase measured %d rounds", r)
	}
	if r := e.RunPhaseSynchronized([][2]int{{0, 1}}); r != 1 {
		t.Errorf("adjacent exchange measured %d rounds", r)
	}
	if e.Keys()[0] != 1 {
		t.Error("synchronized exchange did not order keys")
	}
}

// TestBackendRunsCompiledProgram: the spmd Backend sorts node-indexed
// keys in place and echoes the program's precomputed clock.
func TestBackendRunsCompiledProgram(t *testing.T) {
	net := product.MustNew(graph.Star(4), 2) // relayed exchanges exercised
	prog, err := schedule.Compile(net, nil)
	if err != nil {
		t.Fatal(err)
	}
	snake := randomKeys(net.Nodes(), 3)
	byNode := make([]Key, len(snake))
	for pos, k := range snake {
		byNode[net.NodeAtSnake(pos)] = k
	}
	clk, err := Backend{}.Run(prog, byNode)
	if err != nil {
		t.Fatal(err)
	}
	if clk != prog.Clock() {
		t.Errorf("backend clock %+v != program clock %+v", clk, prog.Clock())
	}
	want := append([]Key(nil), snake...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for pos := 0; pos < net.Nodes(); pos++ {
		if got := byNode[net.NodeAtSnake(pos)]; got != want[pos] {
			t.Fatalf("snake position %d: got %d want %d", pos, got, want[pos])
		}
	}
}
