package spmd

import (
	"sort"
	"testing"

	"productsort/internal/faults"
	"productsort/internal/graph"
	"productsort/internal/product"
)

// starRim builds a star with hub 0 plus two rim edges, so the graph
// stays connected (and every hub spoke has a detour) after losing a
// spoke — a pure star cannot lose any link without disconnecting.
//
//	1 - 2
//	 \ /
//	  0
//	 / \
//	3 - 4
func starRim(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := graph.New("star-rim", 5, [][2]int{{0, 1}, {0, 2}, {0, 3}, {0, 4}, {1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// Fault-free relay baseline on a star factor: pair (1, 2) exchanges via
// the hub. Each key takes one relay hop (store at hub, forward next
// round), and the hub's single port serializes the two deliveries.
func TestStarRelayBaseline(t *testing.T) {
	net := product.MustNew(graph.Star(5), 1)
	e, err := New(net, []Key{0, 9, 3, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	rounds := e.RunPhaseSynchronized([][2]int{{1, 2}})
	if rounds != 3 {
		t.Errorf("rounds=%d want 3 (2 relayed sends + serialized hub forward)", rounds)
	}
	if e.Relays() != 2 || e.Messages() != 2 {
		t.Errorf("relays=%d messages=%d want 2, 2", e.Relays(), e.Messages())
	}
	if ks := e.Keys(); ks[1] != 3 || ks[2] != 9 {
		t.Errorf("exchange failed: %v", ks)
	}
}

// The satellite regression: a failed hub spoke on a star-like factor
// forces the relay path onto the rim. With link (0,1) dead, the pair
// (1, 3) exchange reroutes 1-2-0-3 (and back 3-0-2-1): one rerouted
// hop decision per direction, two relays per key instead of one.
func TestRelayReroutesAroundDeadLink(t *testing.T) {
	net := product.MustNew(starRim(t), 1)
	e, err := New(net, []Key{0, 8, 0, 5, 0})
	if err != nil {
		t.Fatal(err)
	}
	plan := faults.NewPlan(faults.Config{
		Seed:      7,
		DeadLinks: []faults.FactorEdge{{Dim: 1, U: 0, V: 1}},
	})
	if err := e.SetFaultPlan(plan); err != nil {
		t.Fatal(err)
	}
	rounds := e.RunPhaseSynchronized([][2]int{{1, 3}})
	if ks := e.Keys(); ks[1] != 5 || ks[3] != 8 {
		t.Errorf("rerouted exchange failed: %v", ks)
	}
	if rounds != 3 {
		t.Errorf("rounds=%d want 3 (both keys pipeline along 3-hop detours)", rounds)
	}
	if e.Relays() != 4 {
		t.Errorf("relays=%d want 4 (2 store-and-forward hops per key)", e.Relays())
	}
	if e.Messages() != 2 {
		t.Errorf("messages=%d want 2", e.Messages())
	}
	c := plan.Counters()
	if c.Rerouted != 2 {
		t.Errorf("rerouted=%d want 2 (one detour decision per direction)", c.Rerouted)
	}
	if c.DeadLinks != 1 || c.Unrecoverable != 0 {
		t.Errorf("counters=%+v want 1 dead link, 0 unrecoverable", c)
	}
}

// The async relay path (RunPhase / nextHop) takes the same detours.
func TestAsyncRelayReroutesAroundDeadLink(t *testing.T) {
	net := product.MustNew(starRim(t), 1)
	e, err := New(net, []Key{0, 8, 0, 5, 0})
	if err != nil {
		t.Fatal(err)
	}
	plan := faults.NewPlan(faults.Config{
		DeadLinks: []faults.FactorEdge{{Dim: 1, U: 0, V: 1}},
	})
	if err := e.SetFaultPlan(plan); err != nil {
		t.Fatal(err)
	}
	e.RunPhase([][2]int{{1, 3}})
	if ks := e.Keys(); ks[1] != 5 || ks[3] != 8 {
		t.Errorf("rerouted exchange failed: %v", ks)
	}
	if c := plan.Counters(); c.Rerouted != 2 {
		t.Errorf("rerouted=%d want 2", c.Rerouted)
	}
}

// A forced dead link that would disconnect the factor is refused at
// bind time (every edge of a pure star is a bridge).
func TestSetFaultPlanRefusesDisconnection(t *testing.T) {
	net := product.MustNew(graph.Star(4), 1)
	e, err := New(net, make([]Key, 4))
	if err != nil {
		t.Fatal(err)
	}
	plan := faults.NewPlan(faults.Config{
		DeadLinks: []faults.FactorEdge{{Dim: 1, U: 0, V: 1}},
	})
	if err := e.SetFaultPlan(plan); err == nil {
		t.Fatal("disconnecting dead link accepted")
	}
}

// Dropped messages are retransmitted and the phase still commits the
// exchange: keys are permuted, never lost, and the drop shows up in
// both the retry counters and the extra rounds.
func TestSynchronizedDropRetransmits(t *testing.T) {
	net := product.MustNew(graph.Cycle(6), 2)
	keys := randomKeys(net.Nodes(), 3)
	e, err := New(net, keys)
	if err != nil {
		t.Fatal(err)
	}
	plan := faults.NewPlan(faults.Config{Seed: 11, DropRate: 0.3})
	if err := e.SetFaultPlan(plan); err != nil {
		t.Fatal(err)
	}
	pairs := [][2]int{{0, 1}, {2, 3}, {4, 5}, {6, 7}, {8, 9}}
	rounds := e.RunPhaseSynchronized(pairs)
	c := plan.Counters()
	if c.Dropped == 0 || c.Retried == 0 {
		t.Fatalf("30%% drop rate over %d messages injected nothing: %+v", 2*len(pairs), c)
	}
	if c.Unrecoverable != 0 {
		t.Fatalf("retransmission failed to recover: %+v", c)
	}
	if rounds <= 1 {
		t.Errorf("rounds=%d: retransmissions must cost extra rounds", rounds)
	}
	// Every pair committed: each pair holds its own two keys, ordered.
	got := e.Keys()
	for _, pr := range pairs {
		lo, hi := keys[pr[0]], keys[pr[1]]
		if hi < lo {
			lo, hi = hi, lo
		}
		if got[pr[0]] != lo || got[pr[1]] != hi {
			t.Errorf("pair %v: got (%d,%d) want (%d,%d)", pr, got[pr[0]], got[pr[1]], lo, hi)
		}
	}
}

// Message-level injection is deterministic: the same seed over the same
// schedule yields byte-identical keys and identical counters, however
// the goroutines interleave.
func TestSynchronizedFaultsDeterministic(t *testing.T) {
	run := func() ([]Key, faults.Counters, int) {
		net := product.MustNew(graph.Cycle(4), 2)
		e, err := New(net, randomKeys(net.Nodes(), 9))
		if err != nil {
			t.Fatal(err)
		}
		plan := faults.NewPlan(faults.Config{Seed: 21, DropRate: 0.25, DupRate: 0.2, StallRate: 0.1})
		if err := e.SetFaultPlan(plan); err != nil {
			t.Fatal(err)
		}
		rounds := 0
		for range [4]struct{}{} {
			rounds += e.RunPhaseSynchronized([][2]int{{0, 1}, {2, 3}, {4, 5}, {6, 7}})
			rounds += e.RunPhaseSynchronized([][2]int{{1, 2}, {5, 6}})
		}
		return e.Keys(), plan.Counters(), rounds
	}
	k1, c1, r1 := run()
	k2, c2, r2 := run()
	if c1 != c2 {
		t.Fatalf("same seed, counters diverged: %+v vs %+v", c1, c2)
	}
	if r1 != r2 {
		t.Fatalf("same seed, rounds diverged: %d vs %d", r1, r2)
	}
	for i := range k1 {
		if k1[i] != k2[i] {
			t.Fatalf("same seed, keys diverged at %d: %v vs %v", i, k1, k2)
		}
	}
	if c1.Injected == 0 {
		t.Error("plan injected nothing at these rates")
	}
	// No key invented or lost: the multiset is preserved.
	orig := randomKeys(16, 9)
	sort.Slice(orig, func(i, j int) bool { return orig[i] < orig[j] })
	sort.Slice(k1, func(i, j int) bool { return k1[i] < k1[j] })
	for i := range orig {
		if orig[i] != k1[i] {
			t.Fatalf("key multiset changed: %v vs %v", orig, k1)
		}
	}
}
