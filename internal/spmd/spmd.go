// Package spmd executes the sorting algorithm as a true message-passing
// program: one persistent goroutine per processor, communicating
// exclusively over channels that correspond to physical edges of the
// product network. Compare-exchange partners that are not adjacent
// (non-Hamiltonian factors) exchange keys by store-and-forward relaying
// through intermediate processors, exactly as the paper's Section 4
// routing fallback describes.
//
// The deterministic simulator (package simnet) owns *time* accounting;
// this engine establishes *functional* faithfulness: the same results
// emerge when every key only ever moves across real edges, driven by
// concurrent processors. Tests run it under the race detector against
// the sequential machine.
package spmd

import (
	"fmt"
	"sync"

	"productsort/internal/faults"
	"productsort/internal/graph"
	"productsort/internal/obs"
	"productsort/internal/product"
	"productsort/internal/routing"
	"productsort/internal/schedule"
	"productsort/internal/simnet"
	"productsort/internal/sort2d"
)

// Key aliases the machine key type.
type Key = simnet.Key

// message carries one key toward the processor that must compare it.
// hops and attempt are the message's own path coordinates; fault
// decisions key on them (never on scheduler state), so a fault plan's
// realization is independent of goroutine interleaving.
type message struct {
	dst     int // destination node id
	origin  int // sender node id (the partner)
	key     Key
	hops    int // forwarding hops taken so far
	attempt int // retransmission attempt (0 = original send)
}

// Engine executes oblivious phase schedules over a product network with
// goroutine processors.
type Engine struct {
	net   *product.Network
	plans []*routing.Plan // per dimension (index dim-1), prebuilt: read-only during phases
	keys  []Key

	// Fault world (nil when fault-free): the plan decides message
	// drops, duplicates and stalls inside RunPhaseSynchronized, and
	// survive[dim-1] holds the BFS forwarding plan on the dimension's
	// surviving factor graph when links are dead (nil = dimension
	// intact, use the default plan).
	plan    *faults.Plan
	survive []*routing.Plan
	phase   int // phase counter keying fault decisions

	// Stats
	messages int // total messages injected
	relays   int // forwarding hops beyond the first send

	tracer  obs.Tracer // nil = tracing disabled
	phaseNo int        // phase ordinal for trace identity (all modes)
}

// SetTracer attaches a tracer that receives one MessageStats event per
// executed phase with the phase's message and relay deltas (and, in
// synchronized mode, its measured round count). nil detaches.
func (e *Engine) SetTracer(t obs.Tracer) { e.tracer = t }

// emitStats reports one phase's traffic to the tracer.
func (e *Engine) emitStats(sent, relays, rounds int) {
	if e.tracer == nil {
		return
	}
	e.tracer.MessageStats(obs.Messages{Phase: e.phaseNo, Sent: sent, Relays: relays, Rounds: rounds})
	e.phaseNo++
}

// New builds an engine holding the given keys (indexed by node id,
// copied). Routing plans are prebuilt per dimension so the concurrent
// phase goroutines only read shared state.
func New(net *product.Network, keys []Key) (*Engine, error) {
	if len(keys) != net.Nodes() {
		return nil, fmt.Errorf("spmd: %d keys for %d nodes", len(keys), net.Nodes())
	}
	byFactor := make(map[*graph.Graph]*routing.Plan)
	plans := make([]*routing.Plan, net.R())
	for dim := 1; dim <= net.R(); dim++ {
		g := net.FactorAt(dim)
		if byFactor[g] == nil {
			byFactor[g] = routing.NewPlan(g)
		}
		plans[dim-1] = byFactor[g]
	}
	return &Engine{
		net:   net,
		plans: plans,
		keys:  append([]Key(nil), keys...),
	}, nil
}

// SetFaultPlan attaches a deterministic fault plan to the engine (nil
// detaches). Dead links are bound per dimension: messages reroute
// around them via BFS forwarding tables computed on the surviving
// factor graph, counted as rerouted hops on the plan. Message-level
// drops, duplicates and node stalls are injected inside
// RunPhaseSynchronized. Returns an error when a forced dead link does
// not exist or would disconnect a factor.
func (e *Engine) SetFaultPlan(p *faults.Plan) error {
	if p == nil {
		e.plan, e.survive = nil, nil
		return nil
	}
	survive := make([]*routing.Plan, e.net.R())
	for dim := 1; dim <= e.net.R(); dim++ {
		if _, err := p.BindFactor(dim, e.net.FactorAt(dim)); err != nil {
			return err
		}
		survive[dim-1] = p.SurvivingPlan(dim)
	}
	e.plan = p
	e.survive = survive
	return nil
}

// Keys returns a copy of the current keys, indexed by node id.
func (e *Engine) Keys() []Key { return append([]Key(nil), e.keys...) }

// Messages returns the total number of key messages sent.
func (e *Engine) Messages() int { return e.messages }

// Relays returns the number of forwarding hops performed by
// intermediate processors (0 when every partner pair was adjacent).
func (e *Engine) Relays() int { return e.relays }

// RunPhase executes one compare-exchange phase: every pair (lo, hi)
// exchanges keys — directly if adjacent, relayed otherwise — and lo
// keeps the minimum. Pairs must be node-disjoint and differ in exactly
// one dimension.
func (e *Engine) RunPhase(pairs [][2]int) {
	if len(pairs) == 0 {
		return
	}
	sent0, relays0 := e.messages, e.relays
	n := e.net.Nodes()
	// Role lookup: role[v] = +1 if v is a lo endpoint, -1 if hi, with
	// partner[v] the other endpoint.
	role := make([]int8, n)
	partner := make([]int, n)
	for _, pr := range pairs {
		lo, hi := pr[0], pr[1]
		if role[lo] != 0 || role[hi] != 0 {
			panic("spmd: overlapping pairs")
		}
		role[lo], role[hi] = 1, -1
		partner[lo], partner[hi] = hi, lo
	}

	// Inboxes: buffered so no relay can block. At most 2·len(pairs)
	// messages are live at any time (each occupies one inbox slot).
	inbox := make([]chan message, n)
	for v := range inbox {
		inbox[v] = make(chan message, 2*len(pairs))
	}
	done := make(chan struct{})
	var deliveries sync.WaitGroup
	deliveries.Add(2 * len(pairs))

	var mu sync.Mutex // guards stats counters
	received := make([]Key, n)

	var wg sync.WaitGroup
	for v := 0; v < n; v++ {
		wg.Add(1)
		go func(self int) {
			defer wg.Done()
			// Participants inject their key toward their partner.
			if role[self] != 0 {
				dst := partner[self]
				hop := e.nextHop(self, dst)
				inbox[hop] <- message{dst: dst, origin: self, key: e.keys[self]}
				mu.Lock()
				e.messages++
				mu.Unlock()
			}
			for {
				select {
				case m := <-inbox[self]:
					if m.dst == self {
						received[self] = m.key
						deliveries.Done()
						continue
					}
					hop := e.nextHop(self, m.dst)
					mu.Lock()
					e.relays++
					mu.Unlock()
					inbox[hop] <- m
				case <-done:
					return
				}
			}
		}(v)
	}
	deliveries.Wait()
	close(done)
	wg.Wait()

	// Resolve the compare-exchange locally at each endpoint.
	for _, pr := range pairs {
		lo, hi := pr[0], pr[1]
		if received[lo] < e.keys[lo] {
			e.keys[lo] = received[lo]
		}
		if received[hi] > e.keys[hi] {
			e.keys[hi] = received[hi]
		}
	}
	e.emitStats(e.messages-sent0, e.relays-relays0, 0)
}

// nextHop returns the neighbor of cur on the way to dst, counting a
// rerouted hop on the fault plan when a dead link forced a detour.
func (e *Engine) nextHop(cur, dst int) int {
	hop, rerouted := e.hopTo(cur, dst)
	if rerouted {
		e.plan.Add(faults.Counters{Rerouted: 1})
	}
	return hop
}

// hopTo returns the neighbor of cur on the way to dst, and whether the
// hop deviates from the fault-free forwarding table because a dead link
// forced a reroute. cur and dst must differ in exactly one dimension;
// the hop follows that dimension's shortest-path forwarding table —
// computed on the surviving factor graph when links are dead — so it
// always crosses a physical (and alive) edge.
func (e *Engine) hopTo(cur, dst int) (int, bool) {
	for dim := 1; dim <= e.net.R(); dim++ {
		dc, dd := e.net.Digit(cur, dim), e.net.Digit(dst, dim)
		if dc != dd {
			def := e.plans[dim-1].NextHop(dc, dd)
			next := def
			if e.survive != nil && e.survive[dim-1] != nil {
				next = e.survive[dim-1].NextHop(dc, dd)
			}
			hop := e.net.SetDigit(cur, dim, next)
			if !e.net.Adjacent(cur, hop) {
				panic("spmd: forwarding plan produced a non-edge")
			}
			return hop, next != def
		}
	}
	panic("spmd: no differing dimension between relay endpoints")
}

// RunSchedule executes every phase in order.
func (e *Engine) RunSchedule(phases [][][2]int) {
	for _, ph := range phases {
		e.RunPhase(ph)
	}
}

// maxAttempts bounds retransmissions of one logical message before its
// pair is abandoned for the phase (the recovery layer's scrub-and-retry
// handles the fallout).
const maxAttempts = 8

// RunPhaseSynchronized executes one compare-exchange phase in
// barrier-synchronized rounds and returns the round count: per round
// every processor concurrently picks at most one queued message and
// forwards it one hop (single-port sends; deliveries are unbounded,
// matching the simulator's full-duplex accounting of exchanges as
// crossing flows). For phases whose pairs are all adjacent this measures
// exactly 1 round, the simulator's charge.
//
// With a fault plan attached (SetFaultPlan), faults are injected at the
// message level: a dropped message is retransmitted from its origin on
// a later round (counted as a retry, up to maxAttempts), duplicated
// messages travel as extra copies and are discarded at delivery,
// stalled processors skip a forwarding round, and hops route around
// dead links via the surviving factor graphs. All extra rounds this
// costs show up in the returned round count — the measured price of the
// recovery, in the paper's own units. A pair whose keys never both
// arrive is skipped (the exchange does not commit; keys are only ever
// permuted, never invented) and counted unrecoverable for the phase.
func (e *Engine) RunPhaseSynchronized(pairs [][2]int) int {
	if len(pairs) == 0 {
		return 0
	}
	phase := e.phase
	e.phase++
	sent0, relays0 := e.messages, e.relays
	n := e.net.Nodes()
	role := make([]int8, n)
	partner := make([]int, n)
	for _, pr := range pairs {
		lo, hi := pr[0], pr[1]
		if role[lo] != 0 || role[hi] != 0 {
			panic("spmd: overlapping pairs")
		}
		role[lo], role[hi] = 1, -1
		partner[lo], partner[hi] = hi, lo
	}
	// queues[v] holds in-flight messages currently stored at v.
	queues := make([][]message, n)
	live := 0
	for _, pr := range pairs {
		for _, self := range []int{pr[0], pr[1]} {
			queues[self] = append(queues[self], message{dst: partner[self], origin: self, key: e.keys[self]})
			live++
		}
	}
	received := make([]Key, n)
	got := make([]bool, n)
	maxRounds := 0
	if e.plan != nil {
		// Liveness bound under faults: past this, surviving messages are
		// abandoned and their pairs skipped at commit.
		maxRounds = 128 + 64*e.net.Diameter() + 8*maxAttempts
	}
	rounds := 0
	for live > 0 {
		if maxRounds > 0 && rounds >= maxRounds {
			break
		}
		rounds++
		moved := make([][]message, n)
		var retrans []message
		var wg sync.WaitGroup
		var mu sync.Mutex
		consumed := 0
		added := 0
		for v := 0; v < n; v++ {
			if len(queues[v]) == 0 {
				continue
			}
			if e.plan != nil && e.plan.NodeStalledRound(phase, rounds, v) {
				// Stalled processor: its queue waits a round.
				e.plan.Add(faults.Counters{Stalled: 1, Injected: 1})
				continue
			}
			wg.Add(1)
			go func(self int) {
				defer wg.Done()
				// Single-port send: forward the first queued message.
				m := queues[self][0]
				queues[self] = queues[self][1:]
				if m.dst == self {
					mu.Lock()
					if !got[self] {
						got[self], received[self] = true, m.key
					}
					consumed++
					mu.Unlock()
					return
				}
				if e.plan != nil && e.plan.MessageDropped(phase, m.attempt, m.origin, m.dst, m.hops) {
					// The message is lost in flight; its origin
					// retransmits on a later round (bounded attempts).
					delta := faults.Counters{Dropped: 1, Injected: 1}
					mu.Lock()
					consumed++
					if m.attempt < maxAttempts {
						retrans = append(retrans, message{dst: m.dst, origin: m.origin, key: e.keys[m.origin], attempt: m.attempt + 1})
						delta.Retried = 1
					}
					mu.Unlock()
					e.plan.Add(delta)
					return
				}
				hop, rerouted := e.hopTo(self, m.dst)
				if rerouted {
					e.plan.Add(faults.Counters{Rerouted: 1})
				}
				dup := e.plan != nil && e.plan.MessageDuplicated(phase, m.attempt, m.origin, m.dst, m.hops)
				if dup {
					e.plan.Add(faults.Counters{Duplicated: 1, Injected: 1})
				}
				m.hops++
				if hop == m.dst {
					// Terminal hop: deliver directly; duplicate copies
					// of an already-delivered key are discarded.
					mu.Lock()
					if !got[m.dst] {
						got[m.dst], received[m.dst] = true, m.key
					}
					consumed++
					mu.Unlock()
					return
				}
				mu.Lock()
				moved[hop] = append(moved[hop], m)
				e.relays++
				if dup {
					moved[hop] = append(moved[hop], m)
					added++
					e.relays++
				}
				mu.Unlock()
			}(v)
		}
		wg.Wait()
		for v := range moved {
			queues[v] = append(queues[v], moved[v]...)
		}
		for _, m := range retrans {
			queues[m.origin] = append(queues[m.origin], m)
			added++
		}
		live += added - consumed
	}
	e.messages += 2 * len(pairs)
	for _, pr := range pairs {
		lo, hi := pr[0], pr[1]
		if e.plan != nil && (!got[lo] || !got[hi]) {
			// One side never received its partner's key: skip the
			// exchange so keys are never invented or lost.
			e.plan.Add(faults.Counters{Unrecoverable: 1})
			continue
		}
		if received[lo] < e.keys[lo] {
			e.keys[lo] = received[lo]
		}
		if received[hi] > e.keys[hi] {
			e.keys[hi] = received[hi]
		}
	}
	e.emitStats(e.messages-sent0, e.relays-relays0, rounds)
	return rounds
}

// RunScheduleSynchronized executes every phase with synchronized rounds
// and returns the total round count.
func (e *Engine) RunScheduleSynchronized(phases [][][2]int) int {
	total := 0
	for _, ph := range phases {
		r := e.RunPhaseSynchronized(ph)
		if r == 0 {
			r = 1 // oblivious schedule: an empty phase still takes a step
		}
		total += r
	}
	return total
}

// RunProgram executes every compare-exchange phase of a compiled
// program. Markers and idle rounds carry no key motion, so a purely
// functional engine skips them; time accounting lives in the program's
// precomputed clock.
func (e *Engine) RunProgram(prog *schedule.Program) {
	for _, ph := range prog.Phases() {
		e.RunPhase(ph)
	}
}

// Backend adapts the message-passing engine to the schedule.Backend
// interface: keys (indexed by node id) are sorted in place by goroutine
// processors relaying over physical edges, and the program's
// precomputed clock is returned (the engine tracks messages, not
// rounds).
type Backend struct{}

// Run implements schedule.Backend.
func (Backend) Run(prog *schedule.Program, keys []simnet.Key) (simnet.Clock, error) {
	e, err := New(prog.Net(), keys)
	if err != nil {
		return simnet.Clock{}, err
	}
	e.RunProgram(prog)
	copy(keys, e.keys)
	return prog.Clock(), nil
}

// Sort runs the full multiway-merge sort as a message-passing program
// on PG_r of factor g: the oblivious schedule is derived once (every
// processor of a real machine could compute it locally from N and r)
// and then executed by goroutine processors. Returns the engine for
// inspection; keys end in snake order.
func Sort(g *graph.Graph, r int, keys []Key, engine sort2d.Engine) (*Engine, error) {
	net, err := product.New(g, r)
	if err != nil {
		return nil, err
	}
	return SortNet(net, keys, engine)
}

// SortNet is Sort for an existing product network (heterogeneous
// networks included).
func SortNet(net *product.Network, keys []Key, engine sort2d.Engine) (*Engine, error) {
	prog, err := schedule.Compile(net, engine)
	if err != nil {
		return nil, err
	}
	if len(keys) != net.Nodes() {
		return nil, fmt.Errorf("spmd: %d keys for %d nodes", len(keys), net.Nodes())
	}
	byNode := make([]Key, len(keys))
	for pos, k := range keys {
		byNode[net.NodeAtSnake(pos)] = k
	}
	e, err := New(net, byNode)
	if err != nil {
		return nil, err
	}
	e.RunProgram(prog)
	return e, nil
}

// SnakeKeys returns the engine's keys read in snake order.
func (e *Engine) SnakeKeys() []Key {
	out := make([]Key, len(e.keys))
	for pos := range out {
		out[pos] = e.keys[e.net.NodeAtSnake(pos)]
	}
	return out
}
