package spmd

import (
	"testing"

	"productsort/internal/graph"
	"productsort/internal/obs"
	"productsort/internal/product"
	"productsort/internal/schedule"
)

// statsTally accumulates MessageStats events.
type statsTally struct {
	events, sent, relays, rounds int
	lastPhase                    int
	ordered                      bool
}

func (c *statsTally) PhaseBegin(obs.Phase)       {}
func (c *statsTally) PhaseEnd(obs.Phase)         {}
func (c *statsTally) RecoveryEvent(obs.Recovery) {}

func (c *statsTally) MessageStats(s obs.Messages) {
	if c.events == 0 || s.Phase > c.lastPhase {
		c.ordered = true
	} else {
		c.ordered = false
	}
	c.lastPhase = s.Phase
	c.events++
	c.sent += s.Sent
	c.relays += s.Relays
	c.rounds += s.Rounds
}

// TestEngineMessageStatsSumToTotals runs a full compiled program on a
// network with relayed exchanges and checks the per-phase MessageStats
// events sum to exactly the engine's message and relay totals.
func TestEngineMessageStatsSumToTotals(t *testing.T) {
	net := product.MustNew(graph.Star(4), 2) // star: exchanges relay via the hub
	prog, err := schedule.Compile(net, nil)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(net, randomKeys(net.Nodes(), 23))
	if err != nil {
		t.Fatal(err)
	}
	tally := &statsTally{}
	e.SetTracer(tally)
	e.RunProgram(prog)
	if tally.events != len(prog.Phases()) {
		t.Errorf("stats events = %d, want one per phase = %d", tally.events, len(prog.Phases()))
	}
	if !tally.ordered {
		t.Error("phase ordinals not strictly increasing")
	}
	if tally.sent != e.Messages() {
		t.Errorf("events sum %d sent != engine total %d", tally.sent, e.Messages())
	}
	if tally.relays != e.Relays() {
		t.Errorf("events sum %d relays != engine total %d", tally.relays, e.Relays())
	}
	if e.Relays() == 0 {
		t.Error("star network produced no relays; relay accounting untested")
	}
	// Unsynchronized phases report no round measurement.
	if tally.rounds != 0 {
		t.Errorf("unsynchronized run reported %d rounds, want 0", tally.rounds)
	}
}

// TestEngineSynchronizedStatsCarryRounds: synchronized phases measure
// their own round count, and the events carry it.
func TestEngineSynchronizedStatsCarryRounds(t *testing.T) {
	net := product.MustNew(graph.Path(3), 2)
	e, err := New(net, randomKeys(net.Nodes(), 5))
	if err != nil {
		t.Fatal(err)
	}
	tally := &statsTally{}
	e.SetTracer(tally)
	rounds := e.RunPhaseSynchronized([][2]int{{0, 1}, {3, 4}})
	if tally.events != 1 {
		t.Fatalf("events = %d, want 1", tally.events)
	}
	if tally.rounds != rounds {
		t.Errorf("event rounds %d != measured %d", tally.rounds, rounds)
	}
	if rounds == 0 {
		t.Error("synchronized phase measured 0 rounds")
	}
	if tally.sent != e.Messages() {
		t.Errorf("events sum %d sent != engine total %d", tally.sent, e.Messages())
	}
}
