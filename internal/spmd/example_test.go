package spmd_test

import (
	"fmt"

	"productsort/internal/graph"
	"productsort/internal/spmd"
)

// One goroutine per processor, every key crossing a real edge: the
// fully concurrent execution of the sorting algorithm.
func ExampleSort() {
	keys := []spmd.Key{8, 6, 7, 5, 3, 0, 9, 1, 4}
	e, err := spmd.Sort(graph.Path(3), 2, keys, nil) // 3×3 grid
	if err != nil {
		panic(err)
	}
	fmt.Println(e.SnakeKeys())
	fmt.Println("relays:", e.Relays()) // Hamiltonian factor: none needed
	// Output:
	// [0 1 3 4 5 6 7 8 9]
	// relays: 0
}
