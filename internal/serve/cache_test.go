package serve

import (
	"sync"
	"testing"

	"productsort/internal/graph"
	"productsort/internal/obs"
	"productsort/internal/product"
)

// testPlans builds a planner over three distinct small topologies and
// returns its plans ascending by size.
func testPlans(t *testing.T) (*Planner, []*Plan) {
	t.Helper()
	pl, err := NewPlanner([]*product.Network{
		product.MustNew(graph.K2(), 2),    // 4 nodes
		product.MustNew(graph.Path(3), 2), // 9 nodes
		product.MustNew(graph.K2(), 4),    // 16 nodes
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return pl, pl.Plans()
}

// TestPlanCacheLRU: hits refresh recency, capacity evicts the least
// recently used entry, and a re-Get after eviction recompiles.
func TestPlanCacheLRU(t *testing.T) {
	pl, plans := testPlans(t)
	m := obs.NewMetrics()
	c := NewPlanCache(2, m)

	get := func(p *Plan) {
		t.Helper()
		prog, err := c.Get(p, pl.Engine())
		if err != nil {
			t.Fatal(err)
		}
		if prog.Net() != p.Net {
			t.Fatalf("cache returned program for %s, want %s", prog.Net().Name(), p.Name())
		}
	}

	get(plans[0]) // miss
	get(plans[0]) // hit
	get(plans[1]) // miss; order now [1, 0]
	get(plans[0]) // hit;  order now [0, 1]
	get(plans[2]) // miss; evicts 1
	if h, mi, ev := c.hits.Value(), c.misses.Value(), c.evictions.Value(); h != 2 || mi != 3 || ev != 1 {
		t.Fatalf("hits/misses/evictions = %d/%d/%d, want 2/3/1", h, mi, ev)
	}
	get(plans[1]) // miss again: it was evicted
	if mi := c.misses.Value(); mi != 4 {
		t.Fatalf("misses = %d, want 4", mi)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	// The counters surface in the registry snapshot under stable names.
	snap := m.Snapshot()
	if snap.Counters["serve.plancache.misses"] != 4 {
		t.Fatalf("snapshot misses = %d, want 4", snap.Counters["serve.plancache.misses"])
	}
}

// TestPlanCacheConcurrentGets: many goroutines hammering the same plan
// agree on one program per residency (the once-guard coalesces
// compiles), and the cache stays consistent under the race detector.
func TestPlanCacheConcurrentGets(t *testing.T) {
	pl, plans := testPlans(t)
	c := NewPlanCache(2, nil)
	var wg sync.WaitGroup
	progs := make([]any, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			prog, err := c.Get(plans[i%len(plans)], pl.Engine())
			if err != nil {
				t.Error(err)
				return
			}
			progs[i] = prog
		}(i)
	}
	wg.Wait()
	for i, p := range progs {
		if p == nil {
			t.Fatalf("goroutine %d got no program", i)
		}
	}
	if c.Len() > 2 {
		t.Fatalf("Len = %d exceeds capacity", c.Len())
	}
}
