// Buckets: per-plan dynamic batching with bounded occupancy.
//
// Occupancy is bounded by a sharded limiter (admission.go) instead of
// one hot atomic, and the bucket no longer pins its compiled program:
// each flush acquires the program from the plan store for exactly the
// replay's duration, so the store's eviction and epoch reclamation
// stay honest even for a plan with a permanently busy bucket.

package serve

import (
	"time"

	"productsort/internal/obs"
	"productsort/internal/schedule"
)

// BatchSizeBuckets is the histogram layout for flushed batch sizes.
var BatchSizeBuckets = []int64{1, 2, 4, 8, 16, 32, 64, 128, 256}

// drainPoll is how often a draining bucket loop re-folds its limiter
// while waiting for in-flight submissions and flushes to settle.
const drainPoll = 50 * time.Microsecond

// bucket batches every request the planner maps to one plan. All
// requests in a bucket pad to the same node count, so any mix of sizes
// it covers can share a flush.
type bucket struct {
	srv  *Server
	plan *Plan

	queue   chan *request
	limiter *shardedLimiter // admitted minus replied; bounded by QueueDepth
	cols    *schedule.ColumnBuffer

	occupancy *obs.Gauge
	latency   *obs.Histogram
	batchSize *obs.Histogram
	colWidth  *obs.Histogram
	flushes   *obs.Counter
	shed      *obs.Counter
	familyC   *obs.Counter // serve.planner.family.<family>, shared across same-family buckets
}

// newBucket wires a bucket's queue, limiter and per-bucket instruments
// (serve.bucket.<network>.*).
func newBucket(s *Server, plan *Plan) *bucket {
	prefix := "serve.bucket." + plan.Name()
	return &bucket{
		srv:  s,
		plan: plan,
		// limiter <= QueueDepth bounds queue occupancy too, so the
		// admission send below can never block.
		queue:     make(chan *request, s.cfg.QueueDepth),
		limiter:   newShardedLimiter(s.cfg.QueueDepth, 0),
		cols:      schedule.NewColumnBuffer(),
		occupancy: s.met.Gauge(prefix + ".occupancy"),
		latency:   s.met.Histogram(prefix+".latency_ns", obs.DurationBucketsNs),
		batchSize: s.met.Histogram(prefix+".batchsize", BatchSizeBuckets),
		colWidth:  s.met.Histogram(prefix+".colwidth", BatchSizeBuckets),
		flushes:   s.met.Counter(prefix + ".flushes"),
		shed:      s.met.Counter(prefix + ".shed"),
		familyC:   s.met.Counter("serve.planner.family." + plan.Family),
	}
}

// admit reserves one occupancy slot, then checks the closed flag, then
// enqueues — in that order. The reservation-first protocol is what the
// drain relies on: a submitter that saw closed=false holds a slot that
// every post-Close limiter fold observes, so the drain sweep cannot
// finish before this request's enqueue lands. Returns ErrQueueFull
// when the bucket is at depth, ErrClosed after Close.
func (b *bucket) admit(req *request) error {
	sh := b.limiter.acquire()
	if sh == nil {
		b.shed.Inc()
		return ErrQueueFull
	}
	if b.srv.closed.Load() {
		b.limiter.release(sh)
		return ErrClosed
	}
	req.lsh = sh
	select {
	case b.queue <- req:
		return nil
	default:
		// Unreachable while the occupancy invariant holds; fail closed
		// rather than block admission.
		b.limiter.release(sh)
		b.shed.Inc()
		return ErrQueueFull
	}
}

// loop is the bucket's batching goroutine: accumulate until MaxBatch or
// MaxLinger after the first pending request, then hand the batch to a
// flush. On drain it sweeps the sealed queue and flushes the remainder,
// repeating until the limiter folds to zero — no admitted request,
// however racy its enqueue, is left behind — then exits.
func (b *bucket) loop() {
	defer b.srv.wg.Done()
	maxBatch := b.srv.cfg.MaxBatch
	pending := make([]*request, 0, maxBatch)
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	timerLive := false
	stopTimer := func() {
		if timerLive {
			if !timer.Stop() {
				<-timer.C
			}
			timerLive = false
		}
	}
	flush := func() {
		stopTimer()
		if len(pending) == 0 {
			return
		}
		batch := pending
		pending = make([]*request, 0, maxBatch)
		b.startFlush(batch)
	}
	for {
		select {
		case req := <-b.queue:
			pending = append(pending, req)
			if len(pending) >= maxBatch {
				flush()
			} else if !timerLive {
				timer.Reset(b.srv.cfg.MaxLinger)
				timerLive = true
			}
		case <-timer.C:
			timerLive = false
			flush()
		case <-b.srv.drain:
			for {
				swept := false
				for !swept {
					select {
					case req := <-b.queue:
						pending = append(pending, req)
						if len(pending) >= maxBatch {
							flush()
						}
					default:
						swept = true
					}
				}
				flush()
				// fold()==0 means every admitted request has been
				// replied — none is latent between its reservation and
				// its enqueue, none is queued, none is mid-flush.
				if b.limiter.fold() == 0 && len(b.queue) == 0 {
					b.occupancy.Set(0)
					return
				}
				time.Sleep(drainPoll)
			}
		}
	}
}

// startFlush runs one batch on the server's bounded worker pool.
func (b *bucket) startFlush(batch []*request) {
	b.srv.wg.Add(1)
	go func() {
		defer b.srv.wg.Done()
		b.srv.sem <- struct{}{}
		defer func() { <-b.srv.sem }()
		b.runFlush(batch)
	}()
}

// runFlush binds the batch and sorts it. A context canceled or expired
// while the request was enqueued is honored here, before the sort; once
// bound, a request rides the flush to completion — a mid-flush
// cancellation neither aborts the sort nor poisons batchmates. The
// compiled program is acquired from the plan store for just this
// flush, under an epoch pin released before the replies go out.
func (b *bucket) runFlush(batch []*request) {
	live := batch[:0]
	for _, req := range batch {
		if err := req.ctx.Err(); err != nil {
			b.reply(req, Reply{Err: err, Network: b.plan.Name(), Family: b.plan.Family})
			continue
		}
		live = append(live, req)
	}
	if len(live) == 0 {
		return
	}
	if gate := b.srv.flushGate; gate != nil {
		<-gate
	}
	prog, pin, err := b.srv.store.Acquire(b.plan, b.srv.planner.Engine())
	if err != nil {
		for _, req := range live {
			b.reply(req, Reply{Err: err, Network: b.plan.Name(), Family: b.plan.Family, BatchSize: len(live)})
		}
		return
	}
	items := make([][]Key, len(live))
	for i, req := range live {
		items[i] = req.keys
	}
	// Columnar replay: the flush transposes into per-position columns
	// (width = live batch size) and walks the program once for the whole
	// batch; pooled slabs keep the warm path allocation-free per item.
	err = schedule.RunBatchColumnar(prog, items, 1, b.cols)
	rounds := prog.Rounds()
	pin.Release()
	b.flushes.Inc()
	b.familyC.Inc()
	b.batchSize.Observe(int64(len(live)))
	b.colWidth.Observe(int64(len(live)))
	for _, req := range live {
		if err != nil {
			b.reply(req, Reply{Err: err, Network: b.plan.Name(), Family: b.plan.Family, BatchSize: len(live)})
			continue
		}
		b.reply(req, Reply{
			Keys:      req.keys,
			Rounds:    rounds,
			Network:   b.plan.Name(),
			Family:    b.plan.Family,
			BatchSize: len(live),
		})
	}
	// Folding once per flush (not per reply) keeps the reply path off
	// shared lines; the drain loop writes the authoritative final zero.
	b.occupancy.Set(b.limiter.fold())
	b.srv.store.Reclaim()
}

// reply releases the request's admission slot back to the shard it was
// charged to, stamps the wait and delivers the single reply (never
// blocking: out is buffered).
func (b *bucket) reply(req *request, rep Reply) {
	rep.Wait = time.Since(req.t0)
	b.limiter.release(req.lsh)
	b.latency.Observe(int64(rep.Wait))
	req.out <- rep
}
