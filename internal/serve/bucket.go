// Buckets: per-plan dynamic batching with bounded occupancy.

package serve

import (
	"sync/atomic"
	"time"

	"productsort/internal/obs"
	"productsort/internal/schedule"
)

// BatchSizeBuckets is the histogram layout for flushed batch sizes.
var BatchSizeBuckets = []int64{1, 2, 4, 8, 16, 32, 64, 128, 256}

// bucket batches every request the planner maps to one plan. All
// requests in a bucket pad to the same node count, so any mix of sizes
// it covers can share a flush.
type bucket struct {
	srv  *Server
	plan *Plan
	prog *schedule.Program

	queue       chan *request
	outstanding atomic.Int64 // admitted minus replied; bounded by QueueDepth
	cols        *schedule.ColumnBuffer

	occupancy *obs.Gauge
	latency   *obs.Histogram
	batchSize *obs.Histogram
	colWidth  *obs.Histogram
	flushes   *obs.Counter
	shed      *obs.Counter
}

// newBucket wires a bucket's queue and per-bucket instruments
// (serve.bucket.<network>.*).
func newBucket(s *Server, plan *Plan, prog *schedule.Program) *bucket {
	prefix := "serve.bucket." + plan.Name()
	return &bucket{
		srv:  s,
		plan: plan,
		prog: prog,
		// outstanding <= QueueDepth bounds queue occupancy too, so the
		// admission send below can never block.
		queue:     make(chan *request, s.cfg.QueueDepth),
		cols:      schedule.NewColumnBuffer(),
		occupancy: s.met.Gauge(prefix + ".occupancy"),
		latency:   s.met.Histogram(prefix+".latency_ns", obs.DurationBucketsNs),
		batchSize: s.met.Histogram(prefix+".batchsize", BatchSizeBuckets),
		colWidth:  s.met.Histogram(prefix+".colwidth", BatchSizeBuckets),
		flushes:   s.met.Counter(prefix + ".flushes"),
		shed:      s.met.Counter(prefix + ".shed"),
	}
}

// admit reserves one occupancy slot and enqueues, or reports shedding.
func (b *bucket) admit(req *request) bool {
	for {
		cur := b.outstanding.Load()
		if cur >= int64(b.srv.cfg.QueueDepth) {
			b.shed.Inc()
			return false
		}
		if b.outstanding.CompareAndSwap(cur, cur+1) {
			break
		}
	}
	b.occupancy.Set(b.outstanding.Load())
	select {
	case b.queue <- req:
		return true
	default:
		// Unreachable while the occupancy invariant holds; fail closed
		// rather than block admission.
		b.outstanding.Add(-1)
		b.shed.Inc()
		return false
	}
}

// loop is the bucket's batching goroutine: accumulate until MaxBatch or
// MaxLinger after the first pending request, then hand the batch to a
// flush. On drain it empties the (sealed, finite) queue, flushes the
// remainder and exits.
func (b *bucket) loop() {
	defer b.srv.wg.Done()
	maxBatch := b.srv.cfg.MaxBatch
	pending := make([]*request, 0, maxBatch)
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	timerLive := false
	stopTimer := func() {
		if timerLive {
			if !timer.Stop() {
				<-timer.C
			}
			timerLive = false
		}
	}
	flush := func() {
		stopTimer()
		if len(pending) == 0 {
			return
		}
		batch := pending
		pending = make([]*request, 0, maxBatch)
		b.startFlush(batch)
	}
	for {
		select {
		case req := <-b.queue:
			pending = append(pending, req)
			if len(pending) >= maxBatch {
				flush()
			} else if !timerLive {
				timer.Reset(b.srv.cfg.MaxLinger)
				timerLive = true
			}
		case <-timer.C:
			timerLive = false
			flush()
		case <-b.srv.drain:
			for {
				select {
				case req := <-b.queue:
					pending = append(pending, req)
					if len(pending) >= maxBatch {
						flush()
					}
				default:
					flush()
					return
				}
			}
		}
	}
}

// startFlush runs one batch on the server's bounded worker pool.
func (b *bucket) startFlush(batch []*request) {
	b.srv.wg.Add(1)
	go func() {
		defer b.srv.wg.Done()
		b.srv.sem <- struct{}{}
		defer func() { <-b.srv.sem }()
		b.runFlush(batch)
	}()
}

// runFlush binds the batch and sorts it. A context canceled or expired
// while the request was enqueued is honored here, before the sort; once
// bound, a request rides the flush to completion — a mid-flush
// cancellation neither aborts the sort nor poisons batchmates.
func (b *bucket) runFlush(batch []*request) {
	live := batch[:0]
	for _, req := range batch {
		if err := req.ctx.Err(); err != nil {
			b.reply(req, Reply{Err: err, Network: b.plan.Name()})
			continue
		}
		live = append(live, req)
	}
	if len(live) == 0 {
		return
	}
	if gate := b.srv.flushGate; gate != nil {
		<-gate
	}
	items := make([][]Key, len(live))
	for i, req := range live {
		items[i] = req.keys
	}
	// Columnar replay: the flush transposes into per-position columns
	// (width = live batch size) and walks the program once for the whole
	// batch; pooled slabs keep the warm path allocation-free per item.
	err := schedule.RunBatchColumnar(b.prog, items, 1, b.cols)
	b.flushes.Inc()
	b.batchSize.Observe(int64(len(live)))
	b.colWidth.Observe(int64(len(live)))
	for _, req := range live {
		if err != nil {
			b.reply(req, Reply{Err: err, Network: b.plan.Name(), BatchSize: len(live)})
			continue
		}
		b.reply(req, Reply{
			Keys:      req.keys,
			Rounds:    b.prog.Rounds(),
			Network:   b.plan.Name(),
			BatchSize: len(live),
		})
	}
}

// reply releases the request's occupancy slot, stamps the wait and
// delivers the single reply (never blocking: out is buffered).
func (b *bucket) reply(req *request, rep Reply) {
	rep.Wait = time.Since(req.t0)
	b.occupancy.Set(b.outstanding.Add(-1))
	b.latency.Observe(int64(rep.Wait))
	req.out <- rep
}
