// Drain-under-chaos regression: Close racing an in-flight flush must
// neither deadlock nor leak the flush worker's semaphore slot.

package serve

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestServerCloseDuringBlockedFlush pins the drain contract at its
// worst moment: a flush has bound its batch and acquired a worker
// slot, then wedges (the flushGate stands in for a slow or retrying
// sort). A deadline-bounded Close must return ctx.Err() instead of
// deadlocking; once the flush unwedges, the drain completes, the
// bound request still gets its sorted reply, the semaphore slot is
// returned, and later submissions are refused with ErrClosed.
func TestServerCloseDuringBlockedFlush(t *testing.T) {
	s := testServer(t, Config{MaxBatch: 1, MaxLinger: time.Minute, Workers: 1})
	gate := make(chan struct{})
	s.flushGate = gate

	in := randKeys(5, 1)
	ch, err := s.Submit(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the flush holds its worker slot; it is then wedged
	// between binding the batch and sorting it.
	deadline := time.Now().Add(10 * time.Second)
	for len(s.sem) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("flush never acquired a worker slot")
		}
		time.Sleep(time.Millisecond)
	}

	// Close with a deadline while the flush is wedged: the drain cannot
	// finish, so Close must give up with ctx.Err — not deadlock.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Close(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Close during wedged flush = %v, want DeadlineExceeded", err)
	}

	// The server is sealed even though the drain is still pending.
	if _, err := s.Submit(context.Background(), randKeys(3, 2)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}

	// Unwedge the flush: the background drain must now complete, and
	// the request bound before Close still gets its sorted reply.
	gate <- struct{}{}
	rep := awaitReply(t, ch)
	if rep.Err != nil {
		t.Fatalf("bound request dropped by drain: %v", rep.Err)
	}
	checkSorted(t, rep.Keys, in)

	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel2()
	if err := s.Close(ctx2); err != nil {
		t.Fatalf("Close after unwedge: %v", err)
	}
	// All worker slots returned: no leaked semaphore capacity.
	if got := len(s.sem); got != 0 {
		t.Fatalf("%d semaphore slots leaked", got)
	}
}
