// The large-request lane: SubmitStream sorts key streams of unbounded
// length through the server's own admission, batching and plan
// machinery. The stream is chunked into runs no larger than the
// biggest serving network; each run rides the normal Submit path —
// the planner maps it to the cheapest covering certified network, it
// batches with whatever other traffic shares that bucket, and the
// columnar replay sorts it — and the extsort tier k-way merges the
// sorted runs. Where a oversized Submit would shed with ErrTooLarge,
// SubmitStream degrades gracefully: any input length is admitted, one
// run at a time, and bucket overload is absorbed by backing off and
// resubmitting the run instead of surfacing ErrQueueFull to the
// caller.

package serve

import (
	"context"
	"errors"
	"sync"
	"time"

	"productsort/internal/extsort"
	"productsort/internal/obs"
)

// StreamConfig parametrizes SubmitStream. The zero value selects
// defaults sized to the server's planner.
type StreamConfig struct {
	// RunSize is the keys per run (default min(1024, MaxKeys); must
	// not exceed MaxKeys — runs are single requests).
	RunSize int
	// FanIn bounds the merge fan-in (default 16).
	FanIn int
	// RunBatch is how many runs are in flight through the server at
	// once (default 16): the window the server's own size-bucket
	// batching coalesces into shared flushes.
	RunBatch int
	// MemoryKeys bounds resident sorted keys; runs beyond it spill
	// (default 1<<21).
	MemoryKeys int
	// SpillDir hosts the spill file (default os.TempDir()).
	SpillDir string
	// VerifyRuns re-checks every run's sortedness before the merge.
	VerifyRuns bool
}

// streamRetryFloor/Cap bound the queue-full backoff: resubmission
// starts fast (the bucket may drain in microseconds) and decays to a
// gentle poll so a saturated server sees run-at-a-time pressure, not a
// retry storm.
const (
	streamRetryFloor = 50 * time.Microsecond
	streamRetryCap   = 5 * time.Millisecond
)

// SubmitStream drains src, sorts it through the serving path, and
// writes the fully sorted stream to dst. Unlike Submit it never sheds:
// requests larger than any serving network become multiple runs, and
// ErrQueueFull inside the run lane becomes backoff-and-resubmit. It
// returns the extsort accounting (runs, merge passes, spill traffic) or
// the first hard error (context, source, sink, server closed, compile
// failure).
func (s *Server) SubmitStream(ctx context.Context, src extsort.Reader, dst extsort.Writer, cfg StreamConfig) (*extsort.Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	sorter := &streamRunSorter{
		srv:     s,
		retries: s.met.Counter("serve.stream.queue_retries"),
	}
	s.met.Counter("serve.stream.submitted").Inc()
	return extsort.Sort(ctx, src, dst, sorter, extsort.Config{
		RunSize:    cfg.RunSize,
		FanIn:      cfg.FanIn,
		RunBatch:   cfg.RunBatch,
		MemoryKeys: cfg.MemoryKeys,
		SpillDir:   cfg.SpillDir,
		VerifyRuns: cfg.VerifyRuns,
		Metrics:    s.met,
	})
}

// streamRunSorter sorts runs by submitting each as a normal request:
// run-at-a-time admission through the same planner, store, buckets and
// worker pool as every other tenant, so streaming traffic batches with
// (and is bounded like) point traffic.
type streamRunSorter struct {
	srv     *Server
	retries *obs.Counter
}

// MaxRun implements extsort.RunSorter: a run is one request, so the
// largest serving network is the ceiling.
func (rs *streamRunSorter) MaxRun() int { return rs.srv.MaxKeys() }

// SortRuns implements extsort.RunSorter: every run of the batch is
// submitted concurrently (the server's size buckets coalesce them into
// shared flushes) and the sorted replies are copied back in place.
func (rs *streamRunSorter) SortRuns(ctx context.Context, runs [][]extsort.Key) error {
	var wg sync.WaitGroup
	errs := make([]error, len(runs))
	for i, run := range runs {
		wg.Add(1)
		go func(i int, run []Key) {
			defer wg.Done()
			errs[i] = rs.sortRun(ctx, run)
		}(i, run)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// sortRun submits one run, backing off and resubmitting on queue-full
// until the context gives up — degradation to run-at-a-time admission
// instead of shedding.
func (rs *streamRunSorter) sortRun(ctx context.Context, run []Key) error {
	backoff := streamRetryFloor
	for {
		out, err := rs.srv.Submit(ctx, run)
		switch {
		case err == nil:
			select {
			case rep := <-out:
				if rep.Err != nil {
					return rep.Err
				}
				copy(run, rep.Keys)
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		case errors.Is(err, ErrQueueFull):
			rs.retries.Inc()
			t := time.NewTimer(backoff)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return ctx.Err()
			}
			if backoff *= 2; backoff > streamRetryCap {
				backoff = streamRetryCap
			}
		default:
			return err
		}
	}
}
