package serve

import (
	"context"
	"errors"
	"math/rand"
	"sort"
	"testing"
	"time"

	"productsort/internal/graph"
	"productsort/internal/product"
)

// hypercubePlanner covers 2^1 .. 2^maxR keys with hypercube candidates.
func hypercubePlanner(t testing.TB, maxR int) *Planner {
	t.Helper()
	nets := make([]*product.Network, 0, maxR)
	for r := 1; r <= maxR; r++ {
		nets = append(nets, product.MustNew(graph.K2(), r))
	}
	pl, err := NewPlanner(nets, nil)
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

func testServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Planner == nil {
		cfg.Planner = hypercubePlanner(t, 5)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Close(ctx); err != nil {
			t.Errorf("cleanup close: %v", err)
		}
	})
	return s
}

func randKeys(n int, seed int64) []Key {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]Key, n)
	for i := range keys {
		keys[i] = Key(rng.Intn(4*n+1) - n)
	}
	return keys
}

func checkSorted(t *testing.T, got, in []Key) {
	t.Helper()
	if len(got) != len(in) {
		t.Fatalf("reply has %d keys, submitted %d", len(got), len(in))
	}
	want := append([]Key(nil), in...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func awaitReply(t *testing.T, ch <-chan Reply) Reply {
	t.Helper()
	select {
	case rep := <-ch:
		return rep
	case <-time.After(10 * time.Second):
		t.Fatal("no reply within 10s")
		panic("unreachable")
	}
}

// TestServerSortsAcrossSizes: the synchronous helper sorts every
// admissible size correctly, padding and slicing transparently.
func TestServerSortsAcrossSizes(t *testing.T) {
	s := testServer(t, Config{MaxLinger: 100 * time.Microsecond})
	for n := 1; n <= 32; n++ {
		in := randKeys(n, int64(n))
		got, err := s.SortKeys(context.Background(), in)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		checkSorted(t, got, in)
	}
}

// TestServerSharedBatch: requests of different sizes that map to the
// same plan ride one flush, and every reply reports the shared batch.
func TestServerSharedBatch(t *testing.T) {
	s := testServer(t, Config{MaxBatch: 4, MaxLinger: time.Minute})
	inputs := [][]Key{randKeys(3, 1), randKeys(4, 2), randKeys(3, 3), randKeys(4, 4)}
	chans := make([]<-chan Reply, len(inputs))
	for i, in := range inputs {
		ch, err := s.Submit(context.Background(), in)
		if err != nil {
			t.Fatal(err)
		}
		chans[i] = ch
	}
	for i, ch := range chans {
		rep := awaitReply(t, ch)
		if rep.Err != nil {
			t.Fatalf("request %d: %v", i, rep.Err)
		}
		checkSorted(t, rep.Keys, inputs[i])
		if rep.BatchSize != 4 {
			t.Fatalf("request %d: BatchSize = %d, want 4", i, rep.BatchSize)
		}
		if rep.Network != "K2^2" {
			t.Fatalf("request %d: network %q, want K2^2", i, rep.Network)
		}
		if rep.Rounds <= 0 || rep.Wait <= 0 {
			t.Fatalf("request %d: Rounds=%d Wait=%v", i, rep.Rounds, rep.Wait)
		}
	}
}

// TestServerQueueFullSheds: with the worker pool held, admitted
// requests pin their occupancy slots until replied, and the bounded
// queue sheds exactly past QueueDepth with the typed error.
func TestServerQueueFullSheds(t *testing.T) {
	s := testServer(t, Config{
		MaxBatch:   1,
		MaxLinger:  time.Microsecond,
		QueueDepth: 2,
		Workers:    1,
	})
	gate := make(chan struct{})
	s.flushGate = gate

	chA, err := s.Submit(context.Background(), randKeys(4, 1))
	if err != nil {
		t.Fatal(err)
	}
	chB, err := s.Submit(context.Background(), randKeys(4, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(context.Background(), randKeys(4, 3)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit = %v, want ErrQueueFull", err)
	}
	// Release exactly one flush (whichever of A/B won the worker slot);
	// its reply frees an occupancy slot and admission resumes.
	gate <- struct{}{}
	var first Reply
	select {
	case first = <-chA:
		chA = nil
	case first = <-chB:
		chB = nil
	case <-time.After(10 * time.Second):
		t.Fatal("no reply after releasing one flush")
	}
	if first.Err != nil {
		t.Fatal(first.Err)
	}
	chD, err := s.Submit(context.Background(), randKeys(4, 4))
	if err != nil {
		t.Fatalf("post-release submit: %v", err)
	}
	gate <- struct{}{}
	gate <- struct{}{}
	remaining := chD
	if chA != nil {
		remaining = chA
	}
	if chB != nil {
		remaining = chB
	}
	if rep := awaitReply(t, remaining); rep.Err != nil {
		t.Fatal(rep.Err)
	}
	if rep := awaitReply(t, chD); rep.Err != nil {
		t.Fatal(rep.Err)
	}
	if got := s.met.Snapshot().Counters["serve.shed"]; got != 1 {
		t.Fatalf("shed counter = %d, want 1", got)
	}
}

// TestServerDeadlineWhileEnqueued: a context that expires while the
// request lingers in the bucket is honored at binding time — the
// request is dropped from the flush with its context error.
func TestServerDeadlineWhileEnqueued(t *testing.T) {
	s := testServer(t, Config{MaxBatch: 8, MaxLinger: 150 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	ch, err := s.Submit(ctx, randKeys(4, 1))
	if err != nil {
		t.Fatal(err)
	}
	rep := awaitReply(t, ch)
	if !errors.Is(rep.Err, context.DeadlineExceeded) {
		t.Fatalf("reply error = %v, want DeadlineExceeded", rep.Err)
	}
	if rep.Keys != nil {
		t.Fatal("expired request still carried keys")
	}
}

// TestServerMidFlushCancel: once a request is bound into a flush,
// cancelling it neither aborts the sort nor poisons batchmates — both
// replies arrive sorted.
func TestServerMidFlushCancel(t *testing.T) {
	s := testServer(t, Config{MaxBatch: 2, MaxLinger: time.Minute})
	gate := make(chan struct{})
	s.flushGate = gate

	ctxA, cancelA := context.WithCancel(context.Background())
	defer cancelA()
	inA, inB := randKeys(3, 1), randKeys(4, 2)
	chA, err := s.Submit(ctxA, inA)
	if err != nil {
		t.Fatal(err)
	}
	chB, err := s.Submit(context.Background(), inB)
	if err != nil {
		t.Fatal(err)
	}
	gate <- struct{}{} // returns once the flush has bound both requests
	cancelA()          // strictly mid-flush
	repA, repB := awaitReply(t, chA), awaitReply(t, chB)
	if repA.Err != nil {
		t.Fatalf("bound request dropped by cancellation: %v", repA.Err)
	}
	checkSorted(t, repA.Keys, inA)
	if repB.Err != nil {
		t.Fatal(repB.Err)
	}
	checkSorted(t, repB.Keys, inB)
	if repA.BatchSize != 2 || repB.BatchSize != 2 {
		t.Fatalf("batch sizes %d/%d, want 2/2", repA.BatchSize, repB.BatchSize)
	}
}

// TestServerEnqueuedCancelSparesBatchmates: a request cancelled before
// binding is dropped with its context error, while its batchmate sorts
// normally in a now-smaller flush.
func TestServerEnqueuedCancelSparesBatchmates(t *testing.T) {
	s := testServer(t, Config{MaxBatch: 2, MaxLinger: time.Minute})
	ctxA, cancelA := context.WithCancel(context.Background())
	chA, err := s.Submit(ctxA, randKeys(3, 1))
	if err != nil {
		t.Fatal(err)
	}
	cancelA() // cancelled while enqueued: the flush has not started
	inB := randKeys(4, 2)
	chB, err := s.Submit(context.Background(), inB) // completes the batch
	if err != nil {
		t.Fatal(err)
	}
	repA := awaitReply(t, chA)
	if !errors.Is(repA.Err, context.Canceled) {
		t.Fatalf("cancelled request error = %v, want Canceled", repA.Err)
	}
	repB := awaitReply(t, chB)
	if repB.Err != nil {
		t.Fatal(repB.Err)
	}
	checkSorted(t, repB.Keys, inB)
	if repB.BatchSize != 1 {
		t.Fatalf("batchmate BatchSize = %d, want 1", repB.BatchSize)
	}
}

// TestServerGracefulDrain: Close seals admission, every admitted
// request still gets its sorted reply (across multiple buckets), and
// the server is idempotently closed afterwards.
func TestServerGracefulDrain(t *testing.T) {
	s := testServer(t, Config{MaxBatch: 100, MaxLinger: time.Hour})
	sizes := []int{3, 4, 3, 7, 8} // two buckets: hypercube^2 and ^3
	inputs := make([][]Key, len(sizes))
	chans := make([]<-chan Reply, len(sizes))
	for i, n := range sizes {
		inputs[i] = randKeys(n, int64(i))
		ch, err := s.Submit(context.Background(), inputs[i])
		if err != nil {
			t.Fatal(err)
		}
		chans[i] = ch
	}
	if err := s.Close(context.Background()); err != nil {
		t.Fatalf("close: %v", err)
	}
	for i, ch := range chans {
		rep := awaitReply(t, ch)
		if rep.Err != nil {
			t.Fatalf("drained request %d: %v", i, rep.Err)
		}
		checkSorted(t, rep.Keys, inputs[i])
	}
	if _, err := s.Submit(context.Background(), randKeys(4, 9)); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close = %v, want ErrClosed", err)
	}
	if err := s.Close(context.Background()); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

// TestServerSubmitValidation: the fast-fail admission errors.
func TestServerSubmitValidation(t *testing.T) {
	s := testServer(t, Config{})
	if _, err := s.Submit(context.Background(), nil); !errors.Is(err, ErrEmpty) {
		t.Fatalf("empty = %v, want ErrEmpty", err)
	}
	if _, err := s.Submit(context.Background(), randKeys(33, 1)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversize = %v, want ErrTooLarge", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Submit(ctx, randKeys(4, 1)); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled = %v, want Canceled", err)
	}
}

// TestServerSubmitCopiesKeys: mutating the caller's slice after Submit
// cannot corrupt the in-flight request.
func TestServerSubmitCopiesKeys(t *testing.T) {
	s := testServer(t, Config{MaxBatch: 1, MaxLinger: time.Microsecond})
	in := []Key{5, 1, 4, 2}
	ch, err := s.Submit(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	in[0], in[1], in[2], in[3] = 9, 9, 9, 9
	rep := awaitReply(t, ch)
	if rep.Err != nil {
		t.Fatal(rep.Err)
	}
	checkSorted(t, rep.Keys, []Key{5, 1, 4, 2})
}

// TestServerMetrics: the per-bucket instruments land in the registry
// under stable names and settle at zero occupancy after the drain.
func TestServerMetrics(t *testing.T) {
	s := testServer(t, Config{MaxLinger: 100 * time.Microsecond})
	for i := 0; i < 8; i++ {
		if _, err := s.SortKeys(context.Background(), randKeys(4, int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	snap := s.Metrics().Snapshot()
	if got := snap.Counters["serve.submitted"]; got != 8 {
		t.Fatalf("serve.submitted = %d, want 8", got)
	}
	lat, ok := snap.Histograms["serve.bucket.K2^2.latency_ns"]
	if !ok || lat.Count != 8 {
		names := make([]string, 0, len(snap.Histograms))
		for name := range snap.Histograms {
			names = append(names, name)
		}
		t.Fatalf("latency histogram missing or short: %+v (have %v)", lat, names)
	}
	if fl := snap.Counters["serve.bucket.K2^2.flushes"]; fl < 1 {
		t.Fatalf("flushes = %d, want >= 1", fl)
	}
	if occ := snap.Gauges["serve.bucket.K2^2.occupancy"]; occ != 0 {
		t.Fatalf("occupancy after drain = %d, want 0", occ)
	}
	if got := snap.Counters["serve.planstore.misses"]; got != 1 {
		t.Fatalf("planstore misses = %d, want 1", got)
	}
	stats := s.StoreStats()
	if stats.Misses != 1 || stats.Hits < 1 {
		t.Fatalf("store stats = %+v, want 1 miss and >= 1 hit", stats)
	}
}
