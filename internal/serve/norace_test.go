//go:build !race

package serve

const raceEnabled = false
