// Sharded admission: per-CPU outstanding counters, folded on demand.
//
// Each size bucket bounds its admitted-but-unreplied requests at
// QueueDepth. With one atomic counter, every Submit and every reply on
// a hot bucket hammers the same cache line from every P — the same
// plateau the plan store's lock removal targets. The limiter splits
// the budget into hard slices: one cache-line-padded shard per P
// (floor(total/shards) slots each) plus a reserve shard holding the
// remainder. The fast path is a single bounded atomic add against the
// shard the current P has affinity with; only when that slice is full
// does the acquirer scan the other shards (and last the reserve) for
// headroom.
//
// The bound is exact by construction: every shard's count is kept at
// or below its own cap by the add-then-undo protocol (a racing pair
// contending for a shard's last slot both add, at most one lands at or
// under the cap, the other undoes), and the caps sum to total. No fold
// is consulted for admission — folding is on demand, for occupancy
// reporting and the drain's all-released check. The only softness is
// in the other direction: a scanner can transiently observe a shard
// one over its cap (a concurrent undo in flight) and shed while a slot
// is technically free — shedding at saturation, never over-admitting.
//
// Releases return the token to the shard that was charged (the token
// is the shard pointer), so every count stays non-negative and the
// fold is exactly the outstanding total.

package serve

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// limiterShard is one padded slice of the outstanding count.
type limiterShard struct {
	n atomic.Int64
	_ [120]byte
}

// shardedLimiter bounds a count at total across padded shards.
type shardedLimiter struct {
	shards     []limiterShard // hard cap perShard each
	reserve    limiterShard   // hard cap reserveCap
	perShard   int64          // floor(total/len(shards))
	reserveCap int64          // total - perShard*len(shards)
	next       atomic.Uint32
	handles    sync.Pool // *limiterShard: per-P shard affinity
}

// newShardedLimiter builds a limiter admitting at most total
// concurrent holders. shards of 0 self-sizes to GOMAXPROCS (power of
// two); tests pin it for determinism.
func newShardedLimiter(total, shards int) *shardedLimiter {
	if total < 1 {
		total = 1
	}
	if shards < 1 {
		shards = nextPow2(max(1, runtime.GOMAXPROCS(0)))
	} else {
		shards = nextPow2(shards)
	}
	l := &shardedLimiter{
		shards:   make([]limiterShard, shards),
		perShard: int64(total / shards),
	}
	l.reserveCap = int64(total) - l.perShard*int64(shards)
	n := uint32(shards)
	l.handles.New = func() any {
		return &l.shards[l.next.Add(1)%n]
	}
	return l
}

// acquire claims one slot. On success it returns the charged shard —
// the token release must be called with. On failure (limiter full) it
// returns nil and no state changes.
func (l *shardedLimiter) acquire() *limiterShard {
	sh := l.handles.Get().(*limiterShard)
	l.handles.Put(sh)
	if sh.n.Add(1) <= l.perShard {
		return sh
	}
	sh.n.Add(-1)
	return l.acquireSlow()
}

// acquireSlow is the saturation path: the local slice is full, so scan
// every shard for headroom, ending with the reserve. Each probe is the
// same bounded add-then-undo as the fast path, so the per-shard caps —
// and with them the total — hold under any interleaving.
func (l *shardedLimiter) acquireSlow() *limiterShard {
	for i := range l.shards {
		sh := &l.shards[i]
		if sh.n.Add(1) <= l.perShard {
			return sh
		}
		sh.n.Add(-1)
	}
	if l.reserve.n.Add(1) <= l.reserveCap {
		return &l.reserve
	}
	l.reserve.n.Add(-1)
	return nil
}

// release returns a slot to the shard acquire charged.
func (l *shardedLimiter) release(sh *limiterShard) { sh.n.Add(-1) }

// fold sums every shard: the exact outstanding count at some moment
// between the first and last shard load.
func (l *shardedLimiter) fold() int64 {
	sum := l.reserve.n.Load()
	for i := range l.shards {
		sum += l.shards[i].n.Load()
	}
	return sum
}
