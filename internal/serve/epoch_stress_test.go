// Epoch-reclamation stress: eviction under concurrent readers. Run
// under -race this is the store's memory-lifecycle gate — the chaos
// matrix's epoch-stress leg extends it via STRESS_MS.

package serve

import (
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"productsort/internal/schedule"
	"productsort/internal/sort2d"
)

// stressDuration returns the stress length: short by default so plain
// `go test` always exercises it, extended via STRESS_MS in CI.
func stressDuration() time.Duration {
	if ms := os.Getenv("STRESS_MS"); ms != "" {
		if v, err := strconv.Atoi(ms); err == nil && v > 0 {
			return time.Duration(v) * time.Millisecond
		}
	}
	return 200 * time.Millisecond
}

// TestEpochReclaimStress hammers a tiny store (every insert evicts)
// with concurrent readers while a writer loop cycles keys and reclaims
// continuously. The invariant under test: a reader holding a Pin never
// observes its program freed, no matter how many evictions and
// reclaims land mid-read. Free-hook accounting cross-checks that every
// retired program is freed exactly once after the final drain.
func TestEpochReclaimStress(t *testing.T) {
	pl, plans := testPlans(t)
	// capacity 1, single shard: maximal eviction pressure; stripes
	// self-size so reader goroutines spread across them.
	s := newPlanStore(1, 1, 0, nil)
	var frees atomic.Int64
	inner := s.compile
	s.compile = func(p *Plan, e sort2d.Engine) (*schedule.Program, error) {
		prog, err := inner(p, e)
		if prog != nil {
			prog.SetFreeHook(func() { frees.Add(1) })
		}
		return prog, err
	}

	deadline := time.Now().Add(stressDuration())
	var wg sync.WaitGroup
	var violations atomic.Int64

	// Readers: acquire whichever plan, hold the pin across a real use
	// of the program (the lowered stream — exactly what a flush
	// touches), and verify it is never freed while pinned.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; time.Now().Before(deadline); i++ {
				p := plans[(g+i)%len(plans)]
				prog, pin, err := s.Acquire(p, pl.Engine())
				if err != nil {
					violations.Add(1)
					pin.Release()
					return
				}
				if prog.Freed() || len(prog.LoweredComparators()) == 0 {
					violations.Add(1)
					pin.Release()
					return
				}
				pin.Release()
			}
		}(g)
	}
	// Writer: force evictions by cycling distinct keys through the
	// 1-slot store, reclaiming as it goes.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; time.Now().Before(deadline); i++ {
			p := plans[i%len(plans)]
			_, pin, err := s.Acquire(p, pl.Engine())
			if err == nil {
				pin.Release()
			}
			s.Reclaim()
		}
	}()
	wg.Wait()

	if v := violations.Load(); v != 0 {
		t.Fatalf("%d pinned readers observed a freed or gutted program", v)
	}
	// Drain: all pins released, so reclamation converges to empty.
	for i := 0; i < 3 && s.Stats().Pending > 0; i++ {
		s.Reclaim()
	}
	st := s.Stats()
	if st.Pending != 0 {
		t.Fatalf("reclamation did not converge: %+v", st)
	}
	if st.Freed != frees.Load() {
		t.Fatalf("ledger Freed=%d but free hook ran %d times", st.Freed, frees.Load())
	}
	if st.Retired != st.Freed {
		t.Fatalf("retired %d != freed %d after full drain", st.Retired, st.Freed)
	}
	t.Logf("stress: %d evictions, %d retired/freed, %d retries over %v",
		st.Evictions, st.Freed, st.Retries, stressDuration())
}

// TestShardedLimiterExactBound: the limiter admits exactly total
// holders, single-threaded, for both perShard>0 and the reserve-only
// (total < shards) regime — the saturation scan finds every slice's
// headroom even when all traffic lands on one shard.
func TestShardedLimiterExactBound(t *testing.T) {
	for _, tc := range []struct{ total, shards int }{
		{4, 1},  // classic single counter
		{8, 4},  // perShard = 2
		{2, 8},  // perShard = 0: every acquire borrows via fold
		{1, 16}, // degenerate: one slot, many shards
	} {
		l := newShardedLimiter(tc.total, tc.shards)
		held := make([]*limiterShard, 0, tc.total)
		for i := 0; i < tc.total; i++ {
			sh := l.acquire()
			if sh == nil {
				t.Fatalf("total=%d shards=%d: acquire %d refused below bound", tc.total, tc.shards, i)
			}
			held = append(held, sh)
		}
		if l.acquire() != nil {
			t.Fatalf("total=%d shards=%d: admitted past the bound", tc.total, tc.shards)
		}
		l.release(held[0])
		if l.acquire() == nil {
			t.Fatalf("total=%d shards=%d: release did not reopen admission", tc.total, tc.shards)
		}
		for _, sh := range held[1:] {
			l.release(sh)
		}
	}
}

// TestShardedLimiterNeverOverAdmits: under concurrent acquire/release
// churn the held count never exceeds the bound — the per-shard
// add-then-undo caps compose into an exact total, tested empirically.
func TestShardedLimiterNeverOverAdmits(t *testing.T) {
	const total = 8
	l := newShardedLimiter(total, 0)
	var held, peak atomic.Int64
	var overs atomic.Int64
	deadline := time.Now().Add(stressDuration() / 2)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				sh := l.acquire()
				if sh == nil {
					continue
				}
				h := held.Add(1)
				if h > total {
					overs.Add(1)
				}
				for {
					p := peak.Load()
					if h <= p || peak.CompareAndSwap(p, h) {
						break
					}
				}
				held.Add(-1)
				l.release(sh)
			}
		}()
	}
	wg.Wait()
	if o := overs.Load(); o != 0 {
		t.Fatalf("limiter over-admitted %d times (bound %d)", o, total)
	}
	if l.fold() != 0 {
		t.Fatalf("fold = %d after all releases, want 0", l.fold())
	}
	t.Logf("peak concurrent holders: %d/%d", peak.Load(), total)
}
