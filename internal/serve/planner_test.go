package serve

import (
	"errors"
	"testing"

	"productsort/internal/core"
	"productsort/internal/graph"
	"productsort/internal/product"
	"productsort/internal/sort2d"
)

// TestPlannerPicksCheapestCovering: among candidates that cover a
// request, the planner returns the one with the fewest predicted
// rounds, falling back to larger networks only when the size demands
// it.
func TestPlannerPicksCheapestCovering(t *testing.T) {
	grid16 := product.MustNew(graph.Path(4), 2) // 16 nodes
	cube16 := product.MustNew(graph.K2(), 4)    // 16 nodes
	cube32 := product.MustNew(graph.K2(), 5)    // 32 nodes
	pl, err := NewPlanner([]*product.Network{cube32, grid16, cube16}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := pl.MaxKeys(); got != 32 {
		t.Fatalf("MaxKeys = %d, want 32", got)
	}

	eng := sort2d.Auto{}
	cheap16 := grid16
	if core.PredictedRounds(cube16, eng) < core.PredictedRounds(grid16, eng) {
		cheap16 = cube16
	}
	for _, n := range []int{1, 7, 16} {
		plan, err := pl.For(n)
		if err != nil {
			t.Fatalf("For(%d): %v", n, err)
		}
		if plan.Net != cheap16 {
			t.Fatalf("For(%d) chose %s (%d rounds), want %s", n, plan.Name(), plan.Rounds, cheap16.Name())
		}
	}
	plan, err := pl.For(17)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Net != cube32 {
		t.Fatalf("For(17) chose %s, want %s", plan.Name(), cube32.Name())
	}
}

// TestPlannerRejects: sizes outside the candidate range yield the typed
// errors admission branches on.
func TestPlannerRejects(t *testing.T) {
	pl, err := NewPlanner([]*product.Network{product.MustNew(graph.K2(), 3)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pl.For(9); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("For(9) = %v, want ErrTooLarge", err)
	}
	if _, err := pl.For(0); !errors.Is(err, ErrEmpty) {
		t.Fatalf("For(0) = %v, want ErrEmpty", err)
	}
	if plan, err := pl.For(8); err != nil || plan.Nodes() != 8 {
		t.Fatalf("For(8) = %v, %v", plan, err)
	}
}

// TestPlannerNeedsCandidates: an empty or nil-bearing candidate set is
// a construction error, not a latent panic.
func TestPlannerNeedsCandidates(t *testing.T) {
	if _, err := NewPlanner(nil, nil); err == nil {
		t.Fatal("empty candidate set accepted")
	}
	if _, err := NewPlanner([]*product.Network{nil}, nil); err == nil {
		t.Fatal("nil candidate accepted")
	}
}
