// PlanStore: the lock-free successor to PlanCache.
//
// PlanCache serialises every lookup — hit or miss — through one mutex;
// at serving scale that lock is the ceiling, because the paper's
// compile-once/replay-many split makes lookup, not compilation, the
// hot operation. PlanStore removes the lock from the read path:
//
//   - Lookups are optimistic versioned reads. Each slot carries a
//     seqlock-style version stamp (odd while a writer is mid-swap);
//     a reader loads the version, loads the entry, and re-validates the
//     version — retrying (with a Gosched backoff) on a torn read. The
//     warm path touches one version word and one entry pointer; it
//     takes no lock, writes no shared line, and allocates nothing.
//   - Misses coalesce: concurrent misses on one signature fold into a
//     single CompileUncached through a per-shard inflight table, as
//     PlanCache's once-guarded slots did.
//   - Eviction never frees. A displaced program is unlinked under the
//     slot's seqlock, then retired into the store's epoch domain
//     (epoch.go); it is freed only after a grace period proves every
//     reader that could have seen it has released its Pin. No reader
//     ever dereferences a freed schedule.Program.
//
// The table is sharded by signature hash so unrelated topologies take
// independent writer locks; within a shard, slots approximate LRU with
// a coarse-grained last-use stamp that is only rewritten when it has
// aged past recencyGrain — keeping the hit path read-only on the
// shared line in the steady state.

package serve

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"productsort/internal/obs"
	"productsort/internal/schedule"
	"productsort/internal/sort2d"
)

// recencyGrain is how much a slot's last-use stamp must lag before a
// hit rewrites it. Coarser = fewer shared-line writes on the hot path;
// finer = closer-to-true LRU. 1ms keeps eviction ordering meaningful
// at serving rates while making steady-state hits pure reads.
const recencyGrain = int64(time.Millisecond)

// storeSpinBudget is how many torn-version retries a reader burns
// before yielding the processor — essential when reader and writer
// share one P (GOMAXPROCS=1), where spinning would deadlock the writer
// out of its own version-restore.
const storeSpinBudget = 8

// storeEntry is one resident program. Entries are immutable after
// publication except lastUse; replacement swaps the whole entry.
type storeEntry struct {
	key     string
	hash    uint64
	prog    *schedule.Program
	lastUse atomic.Int64 // coarse store-relative nanos, see recencyGrain
}

// storeSlot is one seqlock-guarded table cell. version is even when the
// slot is stable and odd while a writer is swapping the entry; entry is
// additionally an atomic pointer so racing loads are well-defined (the
// version stamp makes the *pair* of loads consistent, the atomic makes
// each load untorn).
type storeSlot struct {
	version atomic.Uint64
	entry   atomic.Pointer[storeEntry]
}

// compileSlot coalesces concurrent misses on one signature.
type compileSlot struct {
	once sync.Once
	prog *schedule.Program
	err  error
}

// storeShard is one writer domain: a fixed slot array read lock-free
// and written under mu, plus the shard's miss-coalescing table. Padded
// so neighbouring shards' writer locks never share a cache line.
type storeShard struct {
	mu       sync.Mutex
	slots    []storeSlot
	inflight map[string]*compileSlot
	_        [40]byte
}

// StoreStats is a point-in-time snapshot of a PlanStore's counters —
// the serving surface mirrors it at the root API.
type StoreStats struct {
	// Hits and Misses count lookups by outcome; Retries counts torn
	// versioned reads that re-ran validation.
	Hits, Misses, Retries int64
	// Evictions counts programs displaced from the table; Retired and
	// Freed count epoch-list entry and exit, and Pending is the current
	// reclamation backlog (Retired - Freed).
	Evictions, Retired, Freed, Pending int64
	// Resident is the current entry count.
	Resident int
}

// PlanStore is a bounded, sharded, lock-free-read cache of compiled
// phase programs keyed by schedule cache signature. See the file
// comment for the protocol. The zero value is not usable; construct
// with NewPlanStore.
type PlanStore struct {
	shards []storeShard
	mask   uint64
	domain *epochDomain
	start  time.Time

	// compile builds a program for a plan — a seam the deterministic
	// tests replace; production uses schedule.CompileUncached.
	compile func(*Plan, sort2d.Engine) (*schedule.Program, error)

	hits, misses, evictions, retries *obs.Counter
}

// NewPlanStore returns a store holding at most capacity programs
// (minimum 1), reporting into m (a private registry when nil) under
// serve.planstore.* and serve.epoch.*. Shard count follows GOMAXPROCS.
func NewPlanStore(capacity int, m *obs.Metrics) *PlanStore {
	return newPlanStore(capacity, 0, 0, m)
}

// newPlanStore is the fully parameterised constructor: shards and
// stripes of 0 self-size to the scheduler; tests pin both to 1 for
// determinism.
func newPlanStore(capacity, shards, stripes int, m *obs.Metrics) *PlanStore {
	if capacity < 1 {
		capacity = 1
	}
	if m == nil {
		m = obs.NewMetrics()
	}
	if shards < 1 {
		shards = nextPow2(min(max(1, runtime.GOMAXPROCS(0)), capacity))
	} else {
		shards = nextPow2(shards)
	}
	per := (capacity + shards - 1) / shards
	s := &PlanStore{
		shards:    make([]storeShard, shards),
		mask:      uint64(shards - 1),
		domain:    newEpochDomain(stripes, m),
		start:     time.Now(),
		hits:      m.Counter("serve.planstore.hits"),
		misses:    m.Counter("serve.planstore.misses"),
		evictions: m.Counter("serve.planstore.evictions"),
		retries:   m.Counter("serve.planstore.retries"),
	}
	s.compile = func(p *Plan, e sort2d.Engine) (*schedule.Program, error) {
		return p.compileProgram(e)
	}
	for i := range s.shards {
		s.shards[i].slots = make([]storeSlot, per)
		s.shards[i].inflight = make(map[string]*compileSlot)
	}
	return s
}

// Pin is a held read-side reference: while any Pin taken before a
// program's eviction remains unreleased, that program will not be
// freed. The zero value is inert. Release is cheap (one atomic add)
// and must be called exactly once per successful Acquire, after the
// caller's last use of the program.
type Pin struct {
	pin epochPin
}

// Release ends the grace-period protection. Safe on the zero value.
func (p Pin) Release() { p.pin.release() }

// fnv1a hashes a signature string (FNV-1a 64, allocation-free).
func fnv1a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Acquire returns the compiled program for plan plus the Pin that
// keeps it alive, compiling with engine on a miss. The hit path is
// lock-free and allocation-free; the caller must Release the Pin after
// its last use of the program.
func (s *PlanStore) Acquire(plan *Plan, engine sort2d.Engine) (*schedule.Program, Pin, error) {
	h := fnv1a(plan.sig)
	sh := &s.shards[h&s.mask]
	for {
		// The pin must be live before the first table load: eviction
		// retires strictly after unlinking, so any program a pinned
		// reader can still find was retired — if at all — after this
		// enter, and the grace period covers it.
		pin := s.domain.enter()
		if prog := s.lookup(sh, plan.sig, h); prog != nil {
			s.hits.Inc()
			return prog, Pin{pin: pin}, nil
		}
		s.misses.Inc()
		prog, err := s.compileCoalesced(sh, plan, engine, h)
		if err != nil {
			pin.release()
			return nil, Pin{}, err
		}
		// A coalesced waiter can receive a program that was inserted,
		// evicted and retired before this goroutine's pin existed — the
		// one interleaving the grace period cannot cover. Detect it and
		// go around; the next lap misses and compiles fresh.
		if prog.Retired() {
			pin.release()
			continue
		}
		return prog, Pin{pin: pin}, nil
	}
}

// lookup scans the shard's slots for key with seqlock validation.
// Returns nil on miss. Caller holds an epoch pin.
func (s *PlanStore) lookup(sh *storeShard, key string, h uint64) *schedule.Program {
	now := int64(time.Since(s.start))
	for i := range sh.slots {
		sl := &sh.slots[i]
		for spins := 0; ; spins++ {
			v1 := sl.version.Load()
			if v1&1 != 0 {
				// Writer mid-swap: torn read, retry.
				s.retries.Inc()
				if spins >= storeSpinBudget {
					runtime.Gosched()
				}
				continue
			}
			e := sl.entry.Load()
			if sl.version.Load() != v1 {
				// Entry swapped under us between the two version loads.
				s.retries.Inc()
				if spins >= storeSpinBudget {
					runtime.Gosched()
				}
				continue
			}
			if e == nil || e.hash != h || e.key != key {
				break // consistent miss on this slot; next slot
			}
			// Hit. Refresh recency only when the stamp has aged past
			// the grain, so steady-state hits never write shared lines.
			if now-e.lastUse.Load() > recencyGrain {
				e.lastUse.Store(now)
			}
			return e.prog
		}
	}
	return nil
}

// compileCoalesced folds concurrent misses on one signature into a
// single compile, inserting the result into the table on success.
func (s *PlanStore) compileCoalesced(sh *storeShard, plan *Plan, engine sort2d.Engine, h uint64) (*schedule.Program, error) {
	sh.mu.Lock()
	cs, ok := sh.inflight[plan.sig]
	if !ok {
		cs = &compileSlot{}
		sh.inflight[plan.sig] = cs
	}
	sh.mu.Unlock()
	cs.once.Do(func() {
		cs.prog, cs.err = s.compile(plan, engine)
		sh.mu.Lock()
		if cs.err == nil {
			s.insertLocked(sh, plan.sig, h, cs.prog)
		}
		delete(sh.inflight, plan.sig)
		sh.mu.Unlock()
	})
	return cs.prog, cs.err
}

// insertLocked publishes prog under key, evicting if the shard is
// full. Victim preference: a slot already holding key (racing inserts
// of one signature keep one copy), then an empty slot, then the least
// recently used. The displaced program is retired, never freed here.
// Caller holds sh.mu.
func (s *PlanStore) insertLocked(sh *storeShard, key string, h uint64, prog *schedule.Program) {
	victim := -1
	for i := range sh.slots {
		if e := sh.slots[i].entry.Load(); e != nil && e.hash == h && e.key == key {
			victim = i
			break
		}
	}
	if victim == -1 {
		for i := range sh.slots {
			if sh.slots[i].entry.Load() == nil {
				victim = i
				break
			}
		}
	}
	if victim == -1 {
		var oldest int64
		for i := range sh.slots {
			lu := sh.slots[i].entry.Load().lastUse.Load()
			if victim == -1 || lu < oldest {
				victim, oldest = i, lu
			}
		}
	}
	ne := &storeEntry{key: key, hash: h, prog: prog}
	ne.lastUse.Store(int64(time.Since(s.start)))
	sl := &sh.slots[victim]
	sl.version.Add(1) // odd: readers back off
	old := sl.entry.Swap(ne)
	sl.version.Add(1) // even: slot stable again
	if old != nil {
		s.evictions.Inc()
		// Unlinked above; retire after unlink is the protocol's fence.
		s.domain.retire(old.prog)
	}
}

// Reclaim frees every retired program whose grace period has elapsed
// and returns how many were freed. The server calls it after flushes
// and during drain; tests call it directly.
func (s *PlanStore) Reclaim() int { return s.domain.reclaim() }

// Len reports the resident entry count.
func (s *PlanStore) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for j := range sh.slots {
			if sh.slots[j].entry.Load() != nil {
				n++
			}
		}
		sh.mu.Unlock()
	}
	return n
}

// Stats snapshots the store's counters.
func (s *PlanStore) Stats() StoreStats {
	retired := s.domain.retiredC.Value()
	freed := s.domain.freedC.Value()
	return StoreStats{
		Hits:      s.hits.Value(),
		Misses:    s.misses.Value(),
		Retries:   s.retries.Value(),
		Evictions: s.evictions.Value(),
		Retired:   retired,
		Freed:     freed,
		Pending:   retired - freed,
		Resident:  s.Len(),
	}
}
