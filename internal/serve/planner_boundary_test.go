package serve

import (
	"errors"
	"testing"

	"productsort/internal/graph"
	"productsort/internal/product"
	"productsort/internal/sort2d"
)

// refFor is the planner's specification, written the slow way: among
// the candidates that cover n, the fewest predicted rounds wins, ties
// broken toward fewer nodes, then name. Every boundary case below is
// checked against it.
func refFor(pl *Planner, n int) *Plan {
	var best *Plan
	for _, p := range pl.Plans() {
		if p.Nodes() < n {
			continue
		}
		switch {
		case best == nil,
			p.Rounds < best.Rounds,
			p.Rounds == best.Rounds && p.Nodes() < best.Nodes(),
			p.Rounds == best.Rounds && p.Nodes() == best.Nodes() && p.Name() < best.Name():
			best = p
		}
	}
	return best
}

// TestPlannerBoundarySizes drives For(n) at, one below, and one above
// every candidate network size (plus the extremes) and requires the
// reference argmin's answer each time: crossing a size boundary must
// switch plans exactly at nodes+1, never at nodes or nodes-1.
func TestPlannerBoundarySizes(t *testing.T) {
	nets := []*product.Network{
		product.MustNew(graph.K2(), 4),    // 16 nodes, expensive for its size
		product.MustNew(graph.Path(4), 2), // 16 nodes, cheap: same-size rounds race
		product.MustNew(graph.Path(3), 2), // 9 nodes
		product.MustNew(graph.K2(), 5),    // 32 nodes
		product.MustNew(graph.Path(4), 3), // 64 nodes
	}
	pl, err := NewPlanner(nets, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pl.Plans() {
		for _, n := range []int{p.Nodes() - 1, p.Nodes(), p.Nodes() + 1} {
			if n < 1 || n > pl.MaxKeys() {
				continue
			}
			got, err := pl.For(n)
			if err != nil {
				t.Fatalf("For(%d): %v", n, err)
			}
			want := refFor(pl, n)
			if got != want {
				t.Errorf("For(%d) = %s (%d nodes, %d rounds), want %s (%d nodes, %d rounds)",
					n, got.Name(), got.Nodes(), got.Rounds, want.Name(), want.Nodes(), want.Rounds)
			}
			if got.Nodes() < n {
				t.Errorf("For(%d) = %s with only %d nodes: does not cover the request", n, got.Name(), got.Nodes())
			}
		}
	}
	// The hard edges: the smallest request, the exact capacity, and one
	// past it.
	if p, err := pl.For(1); err != nil || p != refFor(pl, 1) {
		t.Fatalf("For(1) = %v, %v", p, err)
	}
	if p, err := pl.For(pl.MaxKeys()); err != nil || p.Nodes() != pl.MaxKeys() {
		t.Fatalf("For(MaxKeys) = %v, %v", p, err)
	}
	if _, err := pl.For(pl.MaxKeys() + 1); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("For(MaxKeys+1) err = %v, want ErrTooLarge", err)
	}
}

// flatEngine predicts the same round count for every block size, which
// makes every same-dimension candidate tie on rounds — the engine
// exists purely to force the cross-size ties the next test pins. Sort
// is never called: the planner only consults Name and RoundsAB.
type flatEngine struct{}

func (flatEngine) Name() string          { return "flat-test" }
func (flatEngine) Rounds(int) int        { return 7 }
func (flatEngine) RoundsAB(int, int) int { return 7 }
func (flatEngine) Sort(sort2d.Machine, int, int, func(int) bool) {
	panic("flatEngine.Sort: planner tests never execute the engine")
}

// TestPlannerTieBreaksTowardFewerNodes pins the suffix-argmin's strict
// comparison: when a larger candidate matches a smaller one on
// predicted rounds, the planner must keep the smaller network (less
// sentinel padding, less scratch). Under flatEngine every 2-dimensional
// candidate costs identical rounds, so each request must land on the
// smallest covering network — a planner that preferred the later
// (larger) plan on ties would route everything to 100 nodes.
func TestPlannerTieBreaksTowardFewerNodes(t *testing.T) {
	nets := []*product.Network{
		product.MustNew(graph.Petersen(), 2), // 100 nodes
		product.MustNew(graph.K2(), 2),       // 4 nodes
		product.MustNew(graph.Path(4), 2),    // 16 nodes
		product.MustNew(graph.Path(3), 2),    // 9 nodes
	}
	pl, err := NewPlanner(nets, flatEngine{})
	if err != nil {
		t.Fatal(err)
	}
	plans := pl.Plans()
	for i := 1; i < len(plans); i++ {
		if plans[i].Rounds != plans[0].Rounds {
			t.Fatalf("flatEngine failed to force a tie: %s predicts %d rounds, %s predicts %d",
				plans[0].Name(), plans[0].Rounds, plans[i].Name(), plans[i].Rounds)
		}
	}
	for n, wantNodes := range map[int]int{
		1: 4, 3: 4, 4: 4,
		5: 9, 9: 9,
		10: 16, 16: 16,
		17: 100, 100: 100,
	} {
		p, err := pl.For(n)
		if err != nil {
			t.Fatalf("For(%d): %v", n, err)
		}
		if p.Nodes() != wantNodes {
			t.Errorf("For(%d) = %s (%d nodes), want the %d-node candidate: equal-rounds tie must break toward fewer nodes",
				n, p.Name(), p.Nodes(), wantNodes)
		}
	}
}

// TestPlannerTieBreaksByNameOnEqualSize: two candidates with identical
// node count and identical predicted rounds must resolve
// deterministically by name, so plan choice (and therefore bucket and
// cache signatures) is stable across planner rebuilds.
func TestPlannerTieBreaksByNameOnEqualSize(t *testing.T) {
	a := product.MustNew(graph.Path(3), 2)               // 9 nodes
	b := product.MustNew(graph.CompleteBinaryTree(2), 2) // 9 nodes, same rounds under Auto
	for _, order := range [][]*product.Network{{a, b}, {b, a}} {
		pl, err := NewPlanner(order, nil)
		if err != nil {
			t.Fatal(err)
		}
		p, err := pl.For(9)
		if err != nil {
			t.Fatal(err)
		}
		if want := refFor(pl, 9); p != want {
			t.Fatalf("For(9) = %s, want %s", p.Name(), want.Name())
		}
		if p.Rounds != pl.Plans()[0].Rounds || len(pl.Plans()) != 2 ||
			pl.Plans()[0].Rounds != pl.Plans()[1].Rounds {
			t.Fatalf("fixture drifted: expected a 9-node equal-rounds pair, got %d@%d vs %d@%d rounds",
				pl.Plans()[0].Nodes(), pl.Plans()[0].Rounds, pl.Plans()[1].Nodes(), pl.Plans()[1].Rounds)
		}
		if got, want := p.Name(), minName(a.Name(), b.Name()); got != want {
			t.Fatalf("For(9) = %s, want the lexically first name %s independent of candidate order", got, want)
		}
	}
}

func minName(a, b string) string {
	if a < b {
		return a
	}
	return b
}
