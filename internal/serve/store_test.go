package serve

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"productsort/internal/obs"
	"productsort/internal/schedule"
	"productsort/internal/sort2d"
)

// testStore builds a deterministic store: capacity slots in ONE shard
// with ONE epoch stripe, so eviction order and grace periods are exact.
func testStore(t *testing.T, capacity int) (*PlanStore, *obs.Metrics) {
	t.Helper()
	m := obs.NewMetrics()
	return newPlanStore(capacity, 1, 1, m), m
}

// acquire is a must-succeed Acquire.
func acquire(t *testing.T, s *PlanStore, p *Plan, e sort2d.Engine) (*schedule.Program, Pin) {
	t.Helper()
	prog, pin, err := s.Acquire(p, e)
	if err != nil {
		t.Fatal(err)
	}
	if prog == nil {
		t.Fatal("Acquire returned nil program")
	}
	return prog, pin
}

// TestPlanStoreHitMissEvict: basic residency semantics — repeat
// lookups hit, capacity evicts, counters and Len stay exact.
func TestPlanStoreHitMissEvict(t *testing.T) {
	pl, plans := testPlans(t)
	s, _ := testStore(t, 2)

	progA, pinA := acquire(t, s, plans[0], pl.Engine()) // miss
	pinA.Release()
	progA2, pinA2 := acquire(t, s, plans[0], pl.Engine()) // hit
	pinA2.Release()
	if progA != progA2 {
		t.Fatal("hit returned a different program than the miss compiled")
	}
	_, pinB := acquire(t, s, plans[1], pl.Engine()) // miss
	pinB.Release()
	_, pinC := acquire(t, s, plans[2], pl.Engine()) // miss; evicts one
	pinC.Release()

	st := s.Stats()
	if st.Hits != 1 || st.Misses != 3 || st.Evictions != 1 || st.Retired != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 3 misses / 1 eviction / 1 retired", st)
	}
	if got := s.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2", got)
	}
	// All pins released: one reclaim frees the whole retirement list.
	if freed := s.Reclaim(); freed != 1 {
		t.Fatalf("Reclaim freed %d, want 1", freed)
	}
	if st := s.Stats(); st.Freed != 1 || st.Pending != 0 {
		t.Fatalf("post-reclaim stats = %+v, want Freed=1 Pending=0", st)
	}
}

// TestPlanStoreLRUVictim: with the recency grain elapsed between
// touches, the least recently used entry is the one displaced.
func TestPlanStoreLRUVictim(t *testing.T) {
	pl, plans := testPlans(t)
	s, _ := testStore(t, 2)

	progA, pinA := acquire(t, s, plans[0], pl.Engine())
	pinA.Release()
	_, pinB := acquire(t, s, plans[1], pl.Engine())
	pinB.Release()
	// Age both stamps past the grain, then touch A so B is the victim.
	time.Sleep(2 * time.Millisecond)
	_, pinA2 := acquire(t, s, plans[0], pl.Engine())
	pinA2.Release()
	_, pinC := acquire(t, s, plans[2], pl.Engine()) // evicts B
	pinC.Release()

	progA3, pinA3 := acquire(t, s, plans[0], pl.Engine()) // still resident
	pinA3.Release()
	if progA3 != progA {
		t.Fatal("recently used entry was evicted")
	}
	if st := s.Stats(); st.Misses != 3 {
		t.Fatalf("misses = %d, want 3 (B evicted, A retained)", st.Misses)
	}
}

// TestPlanStoreTornVersionRetry: a reader that finds a slot's version
// odd (writer mid-swap) retries rather than returning a torn entry,
// and completes once the writer restores the version.
func TestPlanStoreTornVersionRetry(t *testing.T) {
	pl, plans := testPlans(t)
	s, _ := testStore(t, 2)
	_, pin := acquire(t, s, plans[0], pl.Engine())
	pin.Release()

	sl := &s.shards[0].slots[0]
	if sl.entry.Load() == nil {
		t.Fatal("expected slot 0 resident in the single-shard store")
	}
	sl.version.Add(1) // simulate a writer parked mid-swap: version odd

	got := make(chan *schedule.Program, 1)
	go func() {
		prog, p, err := s.Acquire(plans[0], pl.Engine())
		if err != nil {
			got <- nil
			return
		}
		p.Release()
		got <- prog
	}()
	select {
	case <-got:
		t.Fatal("reader returned while the slot version was torn")
	case <-time.After(20 * time.Millisecond):
	}
	before := s.Stats().Retries
	if before == 0 {
		t.Fatal("spinning reader recorded no retries")
	}
	sl.version.Add(1) // writer completes: version even again
	select {
	case prog := <-got:
		if prog == nil {
			t.Fatal("reader errored after version restore")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("reader did not complete after version restore")
	}
}

// TestPlanStoreReaderNeverSeesRetired: an entry evicted while a reader
// holds a pin is retired but not freed until the pin is released; new
// readers of the same key never receive the retired program.
func TestPlanStoreReaderNeverSeesRetired(t *testing.T) {
	pl, plans := testPlans(t)
	s, _ := testStore(t, 1) // capacity 1: every new key evicts

	progA, pinA := acquire(t, s, plans[0], pl.Engine())
	// Evict A while pinA is live.
	_, pinB := acquire(t, s, plans[1], pl.Engine())
	pinB.Release()

	if !progA.Retired() {
		t.Fatal("evicted program not retired")
	}
	if progA.Freed() {
		t.Fatal("evicted program freed while a pre-eviction pin is held")
	}
	if freed := s.Reclaim(); freed != 0 {
		t.Fatalf("Reclaim freed %d under a live pin, want 0", freed)
	}
	// A new reader of A's key must get a fresh program, never the
	// retired one.
	progA2, pinA2 := acquire(t, s, plans[0], pl.Engine())
	if progA2 == progA {
		t.Fatal("reader observed the retired program")
	}
	if progA2.Retired() {
		t.Fatal("freshly acquired program is retired")
	}

	// Releasing the pre-eviction pin opens the grace period; reclaim
	// now frees A (and only A — B was evicted by A2's insert and is
	// still protected by nothing... it has no pin, so both may free).
	pinA.Release()
	pinA2.Release()
	if s.Reclaim() == 0 {
		t.Fatal("Reclaim freed nothing after all pins released")
	}
	if !progA.Freed() {
		t.Fatal("retired program still not freed after grace period")
	}
}

// TestPlanStoreFreeExactlyOnce: eviction frees a program exactly once,
// pinned by a free-hook counter across repeated reclaims.
func TestPlanStoreFreeExactlyOnce(t *testing.T) {
	pl, plans := testPlans(t)
	s, _ := testStore(t, 1)
	var frees atomic.Int64
	inner := s.compile
	s.compile = func(p *Plan, e sort2d.Engine) (*schedule.Program, error) {
		prog, err := inner(p, e)
		if prog != nil {
			prog.SetFreeHook(func() { frees.Add(1) })
		}
		return prog, err
	}

	_, pinA := acquire(t, s, plans[0], pl.Engine())
	pinA.Release()
	_, pinB := acquire(t, s, plans[1], pl.Engine()) // evicts A
	pinB.Release()

	for i := 0; i < 3; i++ {
		s.Reclaim()
	}
	if got := frees.Load(); got != 1 {
		t.Fatalf("free hook ran %d times, want exactly 1", got)
	}
	if st := s.Stats(); st.Freed != 1 {
		t.Fatalf("Freed = %d, want 1", st.Freed)
	}
}

// TestPlanStoreCoalescesCompiles: concurrent misses on one signature
// fold into a single compile.
func TestPlanStoreCoalescesCompiles(t *testing.T) {
	pl, plans := testPlans(t)
	s, _ := testStore(t, 2)
	var compiles atomic.Int64
	inner := s.compile
	s.compile = func(p *Plan, e sort2d.Engine) (*schedule.Program, error) {
		compiles.Add(1)
		time.Sleep(2 * time.Millisecond) // widen the coalescing window
		return inner(p, e)
	}

	const readers = 16
	progs := make([]*schedule.Program, readers)
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			prog, pin, err := s.Acquire(plans[0], pl.Engine())
			if err != nil {
				t.Error(err)
				return
			}
			pin.Release()
			progs[i] = prog
		}(i)
	}
	wg.Wait()
	if got := compiles.Load(); got != 1 {
		t.Fatalf("%d compiles for one signature, want 1 (coalesced)", got)
	}
	for i := 1; i < readers; i++ {
		if progs[i] != progs[0] {
			t.Fatal("coalesced readers disagree on the program")
		}
	}
}

// TestPlanStoreWarmAcquireZeroAllocs pins the hot-path guarantee: a
// warm Acquire + Release allocates nothing.
func TestPlanStoreWarmAcquireZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting differs under -race")
	}
	pl, plans := testPlans(t)
	s, _ := testStore(t, 2)
	_, pin := acquire(t, s, plans[0], pl.Engine())
	pin.Release()

	allocs := testing.AllocsPerRun(200, func() {
		prog, pin, err := s.Acquire(plans[0], pl.Engine())
		if err != nil || prog == nil {
			t.Fatal("warm acquire failed")
		}
		pin.Release()
	})
	if allocs != 0 {
		t.Fatalf("warm Acquire allocates %.1f objects/op, want 0", allocs)
	}
}

// TestPlanStoreCompileErrorNotCached: a failed compile leaves no
// residue — the next Acquire retries the compile.
func TestPlanStoreCompileErrorNotCached(t *testing.T) {
	pl, plans := testPlans(t)
	s, _ := testStore(t, 2)
	inner := s.compile
	fail := true
	var mu sync.Mutex
	s.compile = func(p *Plan, e sort2d.Engine) (*schedule.Program, error) {
		mu.Lock()
		f := fail
		fail = false
		mu.Unlock()
		if f {
			return nil, errTestCompile
		}
		return inner(p, e)
	}
	if _, _, err := s.Acquire(plans[0], pl.Engine()); err != errTestCompile {
		t.Fatalf("first acquire error = %v, want errTestCompile", err)
	}
	if s.Len() != 0 {
		t.Fatal("failed compile left a resident entry")
	}
	_, pin := acquire(t, s, plans[0], pl.Engine())
	pin.Release()
}

var errTestCompile = errors.New("test: compile failed")
