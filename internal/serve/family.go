// Emitted-family candidate sets: the serving-side catalog of
// alternative network families the planner can mix with the paper's
// product networks.

package serve

import (
	"fmt"

	"productsort/internal/emit"
	"productsort/internal/emit/multiway"
	"productsort/internal/emit/periodic"
	"productsort/internal/schedule"
)

// FamilyCandidates returns the emitted candidates of the named families
// covering every power-of-two request size up to maxKeys — one
// multiway n-sorter network and/or one periodic network per size.
// FamilyProduct is accepted and ignored (product candidates are built
// from networks, not emitters); unknown family names error. The
// returned candidates plug straight into NewPlannerCandidates alongside
// product networks.
func FamilyCandidates(families []string, maxKeys int) ([]Candidate, error) {
	if maxKeys < 2 {
		return nil, fmt.Errorf("serve: family candidates need maxKeys >= 2, got %d", maxKeys)
	}
	var out []Candidate
	for _, fam := range families {
		switch fam {
		case emit.FamilyProduct:
			// The caller supplies product networks directly.
		case emit.FamilyMultiway:
			for n := 2; n <= maxKeys; n *= 2 {
				n := n
				out = append(out, Candidate{
					Family: emit.FamilyMultiway,
					Name:   fmt.Sprintf("%s[%d]", multiway.Engine(multiway.DefaultSorter), n),
					Nodes:  n,
					Rounds: multiway.Rounds(n, multiway.DefaultSorter),
					Sig:    multiway.Signature(n, multiway.DefaultSorter),
					Emit:   func() (*schedule.Program, error) { return multiway.Emit(n) },
				})
			}
		case emit.FamilyPeriodic:
			for n := 2; n <= maxKeys; n *= 2 {
				n := n
				out = append(out, Candidate{
					Family: emit.FamilyPeriodic,
					Name:   fmt.Sprintf("%s[%d]", periodic.EngineName, n),
					Nodes:  n,
					Rounds: periodic.Rounds(n),
					Sig:    periodic.Signature(n),
					Emit:   func() (*schedule.Program, error) { return periodic.Emit(n) },
				})
			}
		default:
			return nil, fmt.Errorf("serve: unknown network family %q", fam)
		}
	}
	return out, nil
}
