package serve

import (
	"context"
	"sort"
	"testing"

	"productsort/internal/core"
	"productsort/internal/emit"
	"productsort/internal/emit/multiway"
	"productsort/internal/emit/periodic"
	"productsort/internal/graph"
	"productsort/internal/obs"
	"productsort/internal/product"
	"productsort/internal/sort2d"
)

// mixedPlanner builds the canonical cross-family planner the tests pin:
// hypercubes up to 2^maxR nodes plus multiway and periodic candidates
// over the same size range.
func mixedPlanner(t *testing.T, maxR int) *Planner {
	t.Helper()
	cands := []Candidate{}
	for r := 1; r <= maxR; r++ {
		cands = append(cands, Candidate{Net: product.MustNew(graph.K2(), r)})
	}
	fam, err := FamilyCandidates([]string{emit.FamilyMultiway, emit.FamilyPeriodic}, 1<<maxR)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := NewPlannerCandidates(append(cands, fam...), nil)
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

// TestCrossFamilySelection pins the planner's argmin across families at
// the frontier boundaries: each family must win somewhere, and each
// must lose somewhere — the point of mixing them. The preconditions
// that make every case a genuine boundary are asserted alongside the
// selection, so a cost-model change fails with a readable message.
func TestCrossFamilySelection(t *testing.T) {
	eng := sort2d.Auto{}
	cube3 := product.MustNew(graph.K2(), 3)
	if p, m := periodic.Rounds(8), multiway.Rounds(8, multiway.DefaultSorter); p >= m || p >= core.PredictedRounds(cube3, eng) {
		t.Fatalf("precondition: periodic(8)=%d should beat multiway(8)=%d and product(8)=%d",
			p, m, core.PredictedRounds(cube3, eng))
	}
	pl := mixedPlanner(t, 4)

	cases := []struct {
		n           int
		family      string
		name        string
		whyBoundary string
	}{
		// Rounds tie 1-1 between the emitted families (product needs 2);
		// the name tie-break ("multiway4[2]" < "periodic[2]") decides.
		{2, emit.FamilyMultiway, "multiway4[2]", "emitted tie broken by name"},
		// Product ties multiway at 3 rounds and wins the name tie-break
		// ("K2^2" < "multiway4[4]"): the product family must still win
		// sizes where the emitters have no edge.
		{3, emit.FamilyProduct, "K2^2", "product ties multiway, name break"},
		{4, emit.FamilyProduct, "K2^2", "product ties multiway, name break"},
		// Periodic's log² depth beats both beyond 8 lines.
		{8, emit.FamilyPeriodic, "periodic[8]", "periodic beats both"},
		// A non-power-of-two request is covered by the next emitted size
		// up; periodic[8] at 9 rounds still beats the 8-node product
		// networks.
		{5, emit.FamilyPeriodic, "periodic[8]", "covering size is emitted"},
		{16, emit.FamilyPeriodic, "periodic[16]", "periodic beats both"},
	}
	for _, c := range cases {
		plan, err := pl.For(c.n)
		if err != nil {
			t.Fatalf("For(%d): %v", c.n, err)
		}
		if plan.Family != c.family || plan.Name() != c.name {
			t.Fatalf("For(%d) chose %s/%s (%d rounds), want %s/%s (%s)",
				c.n, plan.Family, plan.Name(), plan.Rounds, c.family, c.name, c.whyBoundary)
		}
	}
}

// TestCrossFamilyArgminIsExact re-derives every selection independently:
// for each request size, the chosen plan must match a brute-force scan
// over all covering candidates minimizing (Rounds, Nodes, Name).
func TestCrossFamilyArgminIsExact(t *testing.T) {
	pl := mixedPlanner(t, 5)
	plans := pl.Plans()
	for n := 1; n <= pl.MaxKeys(); n++ {
		var want *Plan
		for _, p := range plans {
			if p.Nodes() < n {
				continue
			}
			if want == nil ||
				p.Rounds < want.Rounds ||
				(p.Rounds == want.Rounds && p.Nodes() < want.Nodes()) ||
				(p.Rounds == want.Rounds && p.Nodes() == want.Nodes() && p.Name() < want.Name()) {
				want = p
			}
		}
		got, err := pl.For(n)
		if err != nil {
			t.Fatalf("For(%d): %v", n, err)
		}
		if got != want {
			t.Fatalf("For(%d) = %s/%s (%d rounds), brute force says %s/%s (%d rounds)",
				n, got.Family, got.Name(), got.Rounds, want.Family, want.Name(), want.Rounds)
		}
	}
}

// TestCandidateValidation: incomplete emitted candidates and
// family-tagged candidates without an emitter are construction errors.
func TestCandidateValidation(t *testing.T) {
	emitOK := func() Candidate {
		c, err := FamilyCandidates([]string{emit.FamilyPeriodic}, 2)
		if err != nil || len(c) != 1 {
			t.Fatalf("FamilyCandidates: %v %v", c, err)
		}
		return c[0]
	}
	bad := []Candidate{
		{}, // neither Net nor Emit
		func() Candidate { c := emitOK(); c.Family = ""; return c }(),
		func() Candidate { c := emitOK(); c.Family = emit.FamilyProduct; return c }(),
		func() Candidate { c := emitOK(); c.Rounds = 0; return c }(),
		func() Candidate { c := emitOK(); c.Sig = ""; return c }(),
		{Net: product.MustNew(graph.K2(), 1), Family: emit.FamilyPeriodic}, // family without emitter
	}
	for i, c := range bad {
		if _, err := NewPlannerCandidates([]Candidate{c}, nil); err == nil {
			t.Errorf("bad candidate %d accepted", i)
		}
	}
	if _, err := FamilyCandidates([]string{"fancy"}, 16); err == nil {
		t.Error("unknown family accepted")
	}
	if got, err := FamilyCandidates([]string{emit.FamilyProduct}, 16); err != nil || len(got) != 0 {
		t.Errorf("product family should be accepted and ignored, got %v %v", got, err)
	}
}

// TestServedFamilyMetadataAndCounter drives a mixed-family server end
// to end: a size the periodic family wins must be sorted by the emitted
// program, carry the family in its reply metadata, and bump the
// serve.planner.family.periodic flush counter; a size the product
// family wins must report product.
func TestServedFamilyMetadataAndCounter(t *testing.T) {
	met := obs.NewMetrics()
	srv, err := New(Config{Planner: mixedPlanner(t, 4), MaxBatch: 4, Metrics: met})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close(context.Background())

	sortVia := func(keys []Key) Reply {
		t.Helper()
		out, err := srv.Submit(context.Background(), keys)
		if err != nil {
			t.Fatal(err)
		}
		return <-out
	}

	rep := sortVia([]Key{9, 3, 7, 1, 8, 2, 6, 5}) // size 8: periodic wins
	if rep.Err != nil {
		t.Fatal(rep.Err)
	}
	if rep.Family != emit.FamilyPeriodic || rep.Network != "periodic[8]" {
		t.Fatalf("size-8 reply: family %q network %q, want periodic/periodic[8]", rep.Family, rep.Network)
	}
	if !sort.SliceIsSorted(rep.Keys, func(i, j int) bool { return rep.Keys[i] < rep.Keys[j] }) {
		t.Fatalf("emitted-family flush returned unsorted keys: %v", rep.Keys)
	}
	if len(rep.Keys) != 8 {
		t.Fatalf("reply sliced to %d keys, want 8", len(rep.Keys))
	}

	rep = sortVia([]Key{4, 2, 3}) // size 3: product (K2^2) wins the tie
	if rep.Err != nil {
		t.Fatal(rep.Err)
	}
	if rep.Family != emit.FamilyProduct {
		t.Fatalf("size-3 reply: family %q, want product", rep.Family)
	}

	if v := met.Counter("serve.planner.family.periodic").Value(); v < 1 {
		t.Fatalf("serve.planner.family.periodic = %d, want >= 1", v)
	}
	if v := met.Counter("serve.planner.family.product").Value(); v < 1 {
		t.Fatalf("serve.planner.family.product = %d, want >= 1", v)
	}
}
