//go:build race

package serve

const raceEnabled = true
