// Package serve turns compiled networks into a request-driven sorting
// service. A planner maps each requested key count to the cheapest
// covering network (candidates ranked by Theorem 1's predicted round
// count), a sharded lock-free plan store holds the compiled programs
// (versioned reads, epoch-based reclamation of evictions), and
// size-bucketed dynamic batching accumulates admitted requests per plan
// until MaxBatch or MaxLinger, then flushes them through the columnar
// batch replay (schedule.RunBatchColumnar: one program walk per flush,
// every set advancing through each comparator together) on a bounded
// worker pool. This is Schiller's
// agglomeration argument — merge many independent sorting-network
// invocations into one larger network execution — applied to the
// arrival-driven, multi-tenant setting: requests of heterogeneous sizes
// arrive continuously, are padded with sentinel keys to the plan's node
// count, and are sliced back on reply.
//
// Admission control keeps the service stable under overload: each
// bucket bounds its admitted-but-unreplied requests (QueueDepth) and
// sheds beyond it with the typed ErrQueueFull, request contexts are
// honored until the request is bound into a flush, and Close seals
// admission then drains every admitted request before returning.
package serve

import (
	"errors"
	"fmt"
	"sort"

	"productsort/internal/core"
	"productsort/internal/emit"
	"productsort/internal/product"
	"productsort/internal/schedule"
	"productsort/internal/sort2d"
)

// Plan is one candidate network with its planner ranking key.
type Plan struct {
	// Net is the candidate's host network: the product network itself
	// for FamilyProduct plans, the 1-D line host for emitted families.
	Net *product.Network
	// Rounds is the predicted parallel round count — Theorem 1's bound
	// for product plans, the emitted column depth for emitted families.
	// It is the cost a request pays regardless of how many batchmates
	// share the flush, hence the ranking key.
	Rounds int
	// Family names the construction family that produced the plan
	// ("product", "multiway", "periodic") — the serve-plan metadata
	// mixed-family servers expose per reply and per flush counter.
	Family string

	name string // display name; Net.Name() for product plans
	sig  string // schedule cache signature; the bucket and plan-store key
	idx  int    // position in the planner's sorted plans; the server's dense bucket index

	// emit builds the plan's program for emitted families; nil selects
	// schedule.CompileUncached on Net (the product path).
	emit func() (*schedule.Program, error)
}

// Nodes returns the plan's processor count: requests are padded to it.
func (p *Plan) Nodes() int { return p.Net.Nodes() }

// Name names the plan's network, e.g. "hypercube^4" or "multiway4[16]".
func (p *Plan) Name() string { return p.name }

// compileProgram builds the plan's phase program: the emitter for
// emitted families, the paper's generalized construction otherwise.
// The plan store's compile seam routes through it.
func (p *Plan) compileProgram(engine sort2d.Engine) (*schedule.Program, error) {
	if p.emit != nil {
		return p.emit()
	}
	return schedule.CompileUncached(p.Net, engine)
}

// Candidate is one network family member offered to the planner.
// Product candidates carry just Net; emitted candidates carry the
// family metadata plus an Emit constructor, because their cost and
// signature are properties of the emitter, not of an engine.
type Candidate struct {
	// Net is the product network of a FamilyProduct candidate; nil for
	// emitted families.
	Net *product.Network
	// Family names the construction family; defaults to FamilyProduct
	// when Net is set.
	Family string
	// Name is the display name (bucket metrics, Reply.Network). Ignored
	// for product candidates, which use Net.Name().
	Name string
	// Nodes is the emitted network's line count (product candidates
	// derive it from Net).
	Nodes int
	// Rounds is the emitted network's column depth (product candidates
	// are priced by core.PredictedRounds at planner build).
	Rounds int
	// Sig is the emitted program's canonical signature — the plan-store
	// key (product candidates derive it from Net and the engine).
	Sig string
	// Emit builds the emitted program; nil for product candidates.
	Emit func() (*schedule.Program, error)
}

// Planner maps a requested key count to the cheapest covering plan.
type Planner struct {
	engine sort2d.Engine
	plans  []*Plan // ascending by (Nodes, Rounds, Name)
	best   []*Plan // best[i] = cheapest plan among plans[i:]
}

// NewPlanner ranks product-network candidates for the given S_2 engine
// (nil selects sort2d.Auto). It is NewPlannerCandidates restricted to
// the paper's own family, kept for the common single-family case.
func NewPlanner(nets []*product.Network, engine sort2d.Engine) (*Planner, error) {
	cands := make([]Candidate, len(nets))
	for i, net := range nets {
		cands[i] = Candidate{Net: net}
	}
	return NewPlannerCandidates(cands, engine)
}

// NewPlannerCandidates ranks candidates drawn from any mix of network
// families for the given S_2 engine (nil selects sort2d.Auto; emitted
// candidates ignore it). Candidates may overlap in size; the planner
// picks, for every request size, the covering candidate with the
// fewest predicted rounds, breaking ties toward fewer nodes then name —
// so one server mixes families per size bucket wherever an emitted
// frontier beats the product construction.
func NewPlannerCandidates(cands []Candidate, engine sort2d.Engine) (*Planner, error) {
	if len(cands) == 0 {
		return nil, errors.New("serve: planner needs at least one candidate network")
	}
	if engine == nil {
		engine = sort2d.Auto{}
	}
	plans := make([]*Plan, len(cands))
	for i, c := range cands {
		switch {
		case c.Emit != nil:
			if c.Family == "" || c.Family == emit.FamilyProduct {
				return nil, fmt.Errorf("serve: emitted candidate %d needs a non-product family", i)
			}
			if c.Name == "" || c.Sig == "" || c.Nodes < 1 || c.Rounds < 1 {
				return nil, fmt.Errorf("serve: emitted candidate %d (%s) incomplete", i, c.Family)
			}
			plans[i] = &Plan{
				Net:    emit.Host(c.Nodes),
				Rounds: c.Rounds,
				Family: c.Family,
				name:   c.Name,
				sig:    c.Sig,
				emit:   c.Emit,
			}
		case c.Net != nil:
			if c.Family != "" && c.Family != emit.FamilyProduct {
				return nil, fmt.Errorf("serve: candidate %d: family %q without an emitter", i, c.Family)
			}
			plans[i] = &Plan{
				Net:    c.Net,
				Rounds: core.PredictedRounds(c.Net, engine),
				Family: emit.FamilyProduct,
				name:   c.Net.Name(),
				sig:    schedule.Signature(c.Net, engine.Name()),
			}
		default:
			return nil, fmt.Errorf("serve: candidate %d is nil", i)
		}
	}
	sort.Slice(plans, func(i, j int) bool {
		if plans[i].Nodes() != plans[j].Nodes() {
			return plans[i].Nodes() < plans[j].Nodes()
		}
		if plans[i].Rounds != plans[j].Rounds {
			return plans[i].Rounds < plans[j].Rounds
		}
		return plans[i].Name() < plans[j].Name()
	})
	for i := range plans {
		plans[i].idx = i
	}
	best := make([]*Plan, len(plans))
	for i := len(plans) - 1; i >= 0; i-- {
		best[i] = plans[i]
		// Strict <: on equal rounds prefer the earlier plan, which has
		// fewer nodes (less padding, less scratch).
		if i+1 < len(plans) && best[i+1].Rounds < plans[i].Rounds {
			best[i] = best[i+1]
		}
	}
	return &Planner{engine: engine, plans: plans, best: best}, nil
}

// Engine returns the S_2 engine every plan was ranked (and will be
// compiled) with.
func (pl *Planner) Engine() sort2d.Engine { return pl.engine }

// MaxKeys returns the largest admissible request size.
func (pl *Planner) MaxKeys() int { return pl.plans[len(pl.plans)-1].Nodes() }

// Plans returns the ranked candidates, ascending by size.
func (pl *Planner) Plans() []*Plan { return pl.plans }

// For returns the cheapest plan covering n keys.
func (pl *Planner) For(n int) (*Plan, error) {
	if n < 1 {
		return nil, ErrEmpty
	}
	i := sort.Search(len(pl.plans), func(i int) bool { return pl.plans[i].Nodes() >= n })
	if i == len(pl.plans) {
		return nil, fmt.Errorf("%w: %d keys exceed the largest candidate network (%d nodes)",
			ErrTooLarge, n, pl.MaxKeys())
	}
	return pl.best[i], nil
}
