// Package serve turns compiled networks into a request-driven sorting
// service. A planner maps each requested key count to the cheapest
// covering network (candidates ranked by Theorem 1's predicted round
// count), a sharded lock-free plan store holds the compiled programs
// (versioned reads, epoch-based reclamation of evictions), and
// size-bucketed dynamic batching accumulates admitted requests per plan
// until MaxBatch or MaxLinger, then flushes them through the columnar
// batch replay (schedule.RunBatchColumnar: one program walk per flush,
// every set advancing through each comparator together) on a bounded
// worker pool. This is Schiller's
// agglomeration argument — merge many independent sorting-network
// invocations into one larger network execution — applied to the
// arrival-driven, multi-tenant setting: requests of heterogeneous sizes
// arrive continuously, are padded with sentinel keys to the plan's node
// count, and are sliced back on reply.
//
// Admission control keeps the service stable under overload: each
// bucket bounds its admitted-but-unreplied requests (QueueDepth) and
// sheds beyond it with the typed ErrQueueFull, request contexts are
// honored until the request is bound into a flush, and Close seals
// admission then drains every admitted request before returning.
package serve

import (
	"errors"
	"fmt"
	"sort"

	"productsort/internal/core"
	"productsort/internal/product"
	"productsort/internal/schedule"
	"productsort/internal/sort2d"
)

// Plan is one candidate network with its planner ranking key.
type Plan struct {
	// Net is the candidate product network.
	Net *product.Network
	// Rounds is Theorem 1's predicted parallel round count for the
	// planner's engine — the cost a request pays regardless of how many
	// batchmates share the flush, hence the ranking key.
	Rounds int

	sig string // schedule cache signature; the bucket and plan-store key
	idx int    // position in the planner's sorted plans; the server's dense bucket index
}

// Nodes returns the plan's processor count: requests are padded to it.
func (p *Plan) Nodes() int { return p.Net.Nodes() }

// Name names the plan's network, e.g. "hypercube^4".
func (p *Plan) Name() string { return p.Net.Name() }

// Planner maps a requested key count to the cheapest covering plan.
type Planner struct {
	engine sort2d.Engine
	plans  []*Plan // ascending by (Nodes, Rounds, Name)
	best   []*Plan // best[i] = cheapest plan among plans[i:]
}

// NewPlanner ranks the candidate networks for the given S_2 engine (nil
// selects sort2d.Auto). Candidates may overlap in size; the planner
// picks, for every request size, the covering candidate with the fewest
// predicted rounds, breaking ties toward fewer nodes then name.
func NewPlanner(nets []*product.Network, engine sort2d.Engine) (*Planner, error) {
	if len(nets) == 0 {
		return nil, errors.New("serve: planner needs at least one candidate network")
	}
	if engine == nil {
		engine = sort2d.Auto{}
	}
	plans := make([]*Plan, len(nets))
	for i, net := range nets {
		if net == nil {
			return nil, fmt.Errorf("serve: candidate %d is nil", i)
		}
		plans[i] = &Plan{
			Net:    net,
			Rounds: core.PredictedRounds(net, engine),
			sig:    schedule.Signature(net, engine.Name()),
		}
	}
	sort.Slice(plans, func(i, j int) bool {
		if plans[i].Nodes() != plans[j].Nodes() {
			return plans[i].Nodes() < plans[j].Nodes()
		}
		if plans[i].Rounds != plans[j].Rounds {
			return plans[i].Rounds < plans[j].Rounds
		}
		return plans[i].Name() < plans[j].Name()
	})
	for i := range plans {
		plans[i].idx = i
	}
	best := make([]*Plan, len(plans))
	for i := len(plans) - 1; i >= 0; i-- {
		best[i] = plans[i]
		// Strict <: on equal rounds prefer the earlier plan, which has
		// fewer nodes (less padding, less scratch).
		if i+1 < len(plans) && best[i+1].Rounds < plans[i].Rounds {
			best[i] = best[i+1]
		}
	}
	return &Planner{engine: engine, plans: plans, best: best}, nil
}

// Engine returns the S_2 engine every plan was ranked (and will be
// compiled) with.
func (pl *Planner) Engine() sort2d.Engine { return pl.engine }

// MaxKeys returns the largest admissible request size.
func (pl *Planner) MaxKeys() int { return pl.plans[len(pl.plans)-1].Nodes() }

// Plans returns the ranked candidates, ascending by size.
func (pl *Planner) Plans() []*Plan { return pl.plans }

// For returns the cheapest plan covering n keys.
func (pl *Planner) For(n int) (*Plan, error) {
	if n < 1 {
		return nil, ErrEmpty
	}
	i := sort.Search(len(pl.plans), func(i int) bool { return pl.plans[i].Nodes() >= n })
	if i == len(pl.plans) {
		return nil, fmt.Errorf("%w: %d keys exceed the largest candidate network (%d nodes)",
			ErrTooLarge, n, pl.MaxKeys())
	}
	return pl.best[i], nil
}
