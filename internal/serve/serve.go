// The server: admission control, bucket dispatch, graceful drain.

package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"productsort/internal/obs"
	"productsort/internal/simnet"
)

// Key aliases the machine's key type.
type Key = simnet.Key

// Typed admission errors. Callers branch with errors.Is.
var (
	// ErrQueueFull is the overload-shedding signal: the request's
	// bucket is at QueueDepth admitted-but-unreplied requests.
	ErrQueueFull = errors.New("serve: queue full")
	// ErrClosed rejects submissions after Close sealed admission.
	ErrClosed = errors.New("serve: server closed")
	// ErrTooLarge rejects requests no candidate network covers.
	ErrTooLarge = errors.New("serve: request too large")
	// ErrEmpty rejects zero-key requests.
	ErrEmpty = errors.New("serve: empty request")
)

// Reply is the terminal answer to one Submit, delivered exactly once on
// the channel Submit returned.
type Reply struct {
	// Keys holds the request's keys sorted ascending; nil when Err is
	// non-nil.
	Keys []Key
	// Err is nil on success, the request context's error when the
	// request was dropped before being bound into a flush.
	Err error
	// Rounds is the parallel round charge of the compiled program that
	// carried the request (every batchmate shares it).
	Rounds int
	// Network names the covering network the planner chose.
	Network string
	// BatchSize is the number of requests that shared the flush.
	BatchSize int
	// Wait is submit-to-reply wall time: queueing, lingering and the
	// sort itself.
	Wait time.Duration
}

// Config parametrizes a Server. The zero value of every field but
// Planner selects a sensible default.
type Config struct {
	// Planner maps request sizes to covering plans. Required.
	Planner *Planner
	// MaxBatch flushes a bucket when this many requests have
	// accumulated (default 64).
	MaxBatch int
	// MaxLinger flushes a non-empty bucket this long after its first
	// pending request arrived, bounding the latency cost of batching
	// (default 2ms).
	MaxLinger time.Duration
	// QueueDepth bounds each bucket's admitted-but-unreplied requests;
	// submissions beyond it shed with ErrQueueFull (default 1024).
	QueueDepth int
	// Workers bounds concurrently running flushes across all buckets
	// (default GOMAXPROCS).
	Workers int
	// PlanCacheSize bounds resident compiled programs (default 16).
	PlanCacheSize int
	// Metrics receives serve.* instruments; nil creates a private
	// registry (reachable via Server.Metrics).
	Metrics *obs.Metrics
}

// request is one admitted submission.
type request struct {
	keys []Key // private copy, sorted in place, handed back in the reply
	ctx  context.Context
	out  chan Reply // buffered 1: the single reply send never blocks
	t0   time.Time
}

// Server is the multi-tenant batching sort service. Safe for concurrent
// use by any number of submitters.
type Server struct {
	cfg     Config
	planner *Planner
	cache   *PlanCache
	met     *obs.Metrics

	submitted *obs.Counter
	shed      *obs.Counter

	sem   chan struct{} // flush worker slots
	drain chan struct{} // closed once, after admission is sealed
	wg    sync.WaitGroup

	mu      sync.RWMutex
	closed  bool
	buckets map[string]*bucket

	// flushGate, when non-nil, makes every flush block here between
	// binding its batch and sorting it — a test hook for pinning the
	// enqueued/mid-flush boundary and for holding queue occupancy.
	flushGate chan struct{}
}

// New builds a Server from cfg. The planner is required; everything
// else defaults.
func New(cfg Config) (*Server, error) {
	if cfg.Planner == nil {
		return nil, errors.New("serve: config needs a planner")
	}
	if cfg.MaxBatch < 1 {
		cfg.MaxBatch = 64
	}
	if cfg.MaxLinger <= 0 {
		cfg.MaxLinger = 2 * time.Millisecond
	}
	if cfg.QueueDepth < 1 {
		cfg.QueueDepth = 1024
	}
	if cfg.Workers < 1 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.PlanCacheSize < 1 {
		cfg.PlanCacheSize = 16
	}
	met := cfg.Metrics
	if met == nil {
		met = obs.NewMetrics()
	}
	return &Server{
		cfg:       cfg,
		planner:   cfg.Planner,
		cache:     NewPlanCache(cfg.PlanCacheSize, met),
		met:       met,
		submitted: met.Counter("serve.submitted"),
		shed:      met.Counter("serve.shed"),
		sem:       make(chan struct{}, cfg.Workers),
		drain:     make(chan struct{}),
		buckets:   make(map[string]*bucket),
	}, nil
}

// Metrics returns the registry the server reports into.
func (s *Server) Metrics() *obs.Metrics { return s.met }

// MaxKeys returns the largest request size the planner covers.
func (s *Server) MaxKeys() int { return s.planner.MaxKeys() }

// Submit admits keys for sorting and returns the channel the single
// Reply will arrive on. The keys slice is copied — the caller's slice
// is neither retained nor mutated. Admission fails fast with a typed
// error: ErrEmpty, ErrTooLarge, ErrClosed, ErrQueueFull (overload), or
// the context's error if ctx is already done. After admission the
// context is honored until the request is bound into a flush; from then
// on the sort completes and the reply is delivered regardless, so a
// cancellation can never poison batchmates.
func (s *Server) Submit(ctx context.Context, keys []Key) (<-chan Reply, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(keys) == 0 {
		return nil, ErrEmpty
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	plan, err := s.planner.For(len(keys))
	if err != nil {
		return nil, err
	}
	b, err := s.bucketFor(plan)
	if err != nil {
		return nil, err
	}
	req := &request{
		keys: append(make([]Key, 0, len(keys)), keys...),
		ctx:  ctx,
		out:  make(chan Reply, 1),
		t0:   time.Now(),
	}
	// Admission happens under the read lock so Close (write lock)
	// cannot seal the server between our closed-check and the enqueue:
	// every admitted request is visible to the drain.
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	if !b.admit(req) {
		s.shed.Inc()
		return nil, fmt.Errorf("%w: bucket %s at depth %d", ErrQueueFull, b.plan.Name(), s.cfg.QueueDepth)
	}
	s.submitted.Inc()
	return req.out, nil
}

// SortKeys is the synchronous helper: Submit, then wait for the reply
// or the context. It returns the sorted keys in a fresh slice.
func (s *Server) SortKeys(ctx context.Context, keys []Key) ([]Key, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	out, err := s.Submit(ctx, keys)
	if err != nil {
		return nil, err
	}
	select {
	case rep := <-out:
		return rep.Keys, rep.Err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// bucketFor returns (creating and starting on first use) the bucket
// serving plan. Creation compiles the plan's program through the LRU
// plan cache outside the server lock.
func (s *Server) bucketFor(plan *Plan) (*bucket, error) {
	s.mu.RLock()
	b := s.buckets[plan.sig]
	closed := s.closed
	s.mu.RUnlock()
	if b != nil {
		return b, nil
	}
	if closed {
		return nil, ErrClosed
	}
	prog, err := s.cache.Get(plan, s.planner.Engine())
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if b := s.buckets[plan.sig]; b != nil {
		return b, nil
	}
	b = newBucket(s, plan, prog)
	s.buckets[plan.sig] = b
	s.wg.Add(1)
	go b.loop()
	return b, nil
}

// Close seals admission and drains gracefully: every admitted request
// receives its reply, then all bucket loops and flushes exit. ctx (nil
// means Background) bounds the wait; on expiry the drain continues in
// the background and Close returns ctx.Err(). Close is idempotent and
// safe to call concurrently.
func (s *Server) Close(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.drain)
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
