// The server: admission control, bucket dispatch, graceful drain.
//
// The submit path is lock-free end to end: the planner lookup is a
// binary search over immutable plans, the bucket table is a dense
// immutable slice indexed by plan (buckets and their loops are built
// eagerly at New), admission is a sharded per-CPU counter
// (admission.go), and the compiled program is acquired per flush from
// the versioned-read plan store (store.go). No Submit ever takes a
// mutex the Server owns.
//
// The drain handshake that used to lean on the server RWMutex is now
// an ordering argument: Submit reserves its admission slot *before*
// loading the closed flag, and each bucket's drain sweep exits only
// once its limiter folds to zero. A submitter that observed
// closed=false has its reservation visible to every later fold
// (sequentially consistent atomics), so the sweep cannot conclude
// while an admitted request has yet to enqueue — every admitted
// request is drained, exactly as before.

package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"productsort/internal/obs"
	"productsort/internal/simnet"
)

// Key aliases the machine's key type.
type Key = simnet.Key

// Typed admission errors. Callers branch with errors.Is.
var (
	// ErrQueueFull is the overload-shedding signal: the request's
	// bucket is at QueueDepth admitted-but-unreplied requests.
	ErrQueueFull = errors.New("serve: queue full")
	// ErrClosed rejects submissions after Close sealed admission.
	ErrClosed = errors.New("serve: server closed")
	// ErrTooLarge rejects requests no candidate network covers.
	ErrTooLarge = errors.New("serve: request too large")
	// ErrEmpty rejects zero-key requests.
	ErrEmpty = errors.New("serve: empty request")
)

// Reply is the terminal answer to one Submit, delivered exactly once on
// the channel Submit returned.
type Reply struct {
	// Keys holds the request's keys sorted ascending; nil when Err is
	// non-nil.
	Keys []Key
	// Err is nil on success, the request context's error when the
	// request was dropped before being bound into a flush, or the
	// plan's compile error when its program could not be built.
	Err error
	// Rounds is the parallel round charge of the compiled program that
	// carried the request (every batchmate shares it).
	Rounds int
	// Network names the covering network the planner chose.
	Network string
	// Family names the construction family of the chosen network
	// ("product", "multiway", "periodic") — the reply-side view of the
	// planner's cross-family pick.
	Family string
	// BatchSize is the number of requests that shared the flush.
	BatchSize int
	// Wait is submit-to-reply wall time: queueing, lingering and the
	// sort itself.
	Wait time.Duration
}

// Config parametrizes a Server. The zero value of every field but
// Planner selects a sensible default.
type Config struct {
	// Planner maps request sizes to covering plans. Required.
	Planner *Planner
	// MaxBatch flushes a bucket when this many requests have
	// accumulated (default 64).
	MaxBatch int
	// MaxLinger flushes a non-empty bucket this long after its first
	// pending request arrived, bounding the latency cost of batching
	// (default 2ms).
	MaxLinger time.Duration
	// QueueDepth bounds each bucket's admitted-but-unreplied requests;
	// submissions beyond it shed with ErrQueueFull (default 1024).
	QueueDepth int
	// Workers bounds concurrently running flushes across all buckets
	// (default GOMAXPROCS).
	Workers int
	// PlanCacheSize bounds resident compiled programs in the plan
	// store; evicted programs are reclaimed through the epoch domain
	// and recompiled on demand (default 16).
	PlanCacheSize int
	// Metrics receives serve.* instruments; nil creates a private
	// registry (reachable via Server.Metrics).
	Metrics *obs.Metrics
}

// request is one admitted submission.
type request struct {
	keys []Key // private copy, sorted in place, handed back in the reply
	ctx  context.Context
	out  chan Reply // buffered 1: the single reply send never blocks
	t0   time.Time
	lsh  *limiterShard // the admission shard charged; released on reply
}

// Server is the multi-tenant batching sort service. Safe for concurrent
// use by any number of submitters.
type Server struct {
	cfg     Config
	planner *Planner
	store   *PlanStore
	met     *obs.Metrics

	submitted *obs.Counter
	shed      *obs.Counter

	sem   chan struct{} // flush worker slots
	drain chan struct{} // closed once, after admission is sealed
	wg    sync.WaitGroup

	closed  atomic.Bool
	buckets []*bucket // dense, indexed by Plan.idx; immutable after New

	// flushGate, when non-nil, makes every flush block here between
	// binding its batch and sorting it — a test hook for pinning the
	// enqueued/mid-flush boundary and for holding queue occupancy.
	flushGate chan struct{}
}

// New builds a Server from cfg. The planner is required; everything
// else defaults. Every plan's bucket and batching loop starts here, so
// the submit path never creates state — it only indexes.
func New(cfg Config) (*Server, error) {
	if cfg.Planner == nil {
		return nil, errors.New("serve: config needs a planner")
	}
	if cfg.MaxBatch < 1 {
		cfg.MaxBatch = 64
	}
	if cfg.MaxLinger <= 0 {
		cfg.MaxLinger = 2 * time.Millisecond
	}
	if cfg.QueueDepth < 1 {
		cfg.QueueDepth = 1024
	}
	if cfg.Workers < 1 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.PlanCacheSize < 1 {
		cfg.PlanCacheSize = 16
	}
	met := cfg.Metrics
	if met == nil {
		met = obs.NewMetrics()
	}
	s := &Server{
		cfg:       cfg,
		planner:   cfg.Planner,
		store:     NewPlanStore(cfg.PlanCacheSize, met),
		met:       met,
		submitted: met.Counter("serve.submitted"),
		shed:      met.Counter("serve.shed"),
		sem:       make(chan struct{}, cfg.Workers),
		drain:     make(chan struct{}),
	}
	plans := cfg.Planner.Plans()
	s.buckets = make([]*bucket, len(plans))
	for i, plan := range plans {
		s.buckets[i] = newBucket(s, plan)
	}
	s.wg.Add(len(s.buckets))
	for _, b := range s.buckets {
		go b.loop()
	}
	return s, nil
}

// Metrics returns the registry the server reports into.
func (s *Server) Metrics() *obs.Metrics { return s.met }

// MaxKeys returns the largest request size the planner covers.
func (s *Server) MaxKeys() int { return s.planner.MaxKeys() }

// StoreStats snapshots the plan store's counters: lookup outcomes,
// versioned-read retries, evictions and the epoch-reclamation ledger.
func (s *Server) StoreStats() StoreStats { return s.store.Stats() }

// Submit admits keys for sorting and returns the channel the single
// Reply will arrive on. The keys slice is copied — the caller's slice
// is neither retained nor mutated. Admission fails fast with a typed
// error: ErrEmpty, ErrTooLarge, ErrClosed, ErrQueueFull (overload), or
// the context's error if ctx is already done. After admission the
// context is honored until the request is bound into a flush; from then
// on the sort completes and the reply is delivered regardless, so a
// cancellation can never poison batchmates.
func (s *Server) Submit(ctx context.Context, keys []Key) (<-chan Reply, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(keys) == 0 {
		return nil, ErrEmpty
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	plan, err := s.planner.For(len(keys))
	if err != nil {
		return nil, err
	}
	b := s.buckets[plan.idx]
	req := &request{
		keys: append(make([]Key, 0, len(keys)), keys...),
		ctx:  ctx,
		out:  make(chan Reply, 1),
		t0:   time.Now(),
	}
	// Reservation before closed-check is the drain handshake: an
	// admitted request's slot is visible to every limiter fold that
	// runs after Close stores the flag, so the bucket's drain sweep
	// (which exits only at fold zero) always outlasts the enqueue.
	if err := b.admit(req); err != nil {
		if errors.Is(err, ErrQueueFull) {
			s.shed.Inc()
			return nil, fmt.Errorf("%w: bucket %s at depth %d", ErrQueueFull, b.plan.Name(), s.cfg.QueueDepth)
		}
		return nil, err
	}
	s.submitted.Inc()
	return req.out, nil
}

// SortKeys is the synchronous helper: Submit, then wait for the reply
// or the context. It returns the sorted keys in a fresh slice.
func (s *Server) SortKeys(ctx context.Context, keys []Key) ([]Key, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	out, err := s.Submit(ctx, keys)
	if err != nil {
		return nil, err
	}
	select {
	case rep := <-out:
		return rep.Keys, rep.Err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Close seals admission and drains gracefully: every admitted request
// receives its reply, then all bucket loops and flushes exit and the
// epoch domain reclaims every retired program. ctx (nil means
// Background) bounds the wait; on expiry the drain continues in the
// background and Close returns ctx.Err(). Close is idempotent and
// safe to call concurrently.
func (s *Server) Close(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if s.closed.CompareAndSwap(false, true) {
		close(s.drain)
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		// Every reader pin is released once the loops and flushes are
		// gone, so one reclaim empties the whole retirement list.
		s.store.Reclaim()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
