package serve

import (
	"context"
	"errors"
	"math/rand"
	"sort"
	"testing"
	"time"

	"productsort/internal/extsort"
	"productsort/internal/graph"
	"productsort/internal/product"
)

// streamServer builds a small server whose largest network (64 nodes)
// is far below the streamed input, with a deliberately shallow queue so
// the run lane's backoff path gets exercised.
func streamServer(t *testing.T, queueDepth int) *Server {
	t.Helper()
	nets := []*product.Network{
		product.MustNew(graph.K2(), 4), // 16
		product.MustNew(graph.K2(), 6), // 64
	}
	pl, err := NewPlanner(nets, nil)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Planner:    pl,
		QueueDepth: queueDepth,
		MaxLinger:  200 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close(context.Background()) })
	return s
}

// TestSubmitStreamSortsBeyondMaxKeys: a stream two hundred times the
// largest serving network sorts correctly — the lane the point API
// rejects with ErrTooLarge.
func TestSubmitStreamSortsBeyondMaxKeys(t *testing.T) {
	s := streamServer(t, 1024)
	rng := rand.New(rand.NewSource(31))
	keys := make([]Key, 200*s.MaxKeys()+17)
	for i := range keys {
		keys[i] = Key(rng.Int63() - 1<<62)
	}
	out := extsort.NewSliceWriter()
	stats, err := s.SubmitStream(context.Background(), extsort.NewSliceReader(keys), out, StreamConfig{FanIn: 8})
	if err != nil {
		t.Fatal(err)
	}
	if stats.RunSize > s.MaxKeys() {
		t.Fatalf("run size %d exceeds MaxKeys %d", stats.RunSize, s.MaxKeys())
	}
	if stats.Keys != int64(len(keys)) {
		t.Fatalf("stats.Keys = %d, want %d", stats.Keys, len(keys))
	}
	got := out.Keys()
	want := append([]Key(nil), keys...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("mismatch at %d: got %d want %d", i, got[i], want[i])
		}
	}
}

// TestSubmitStreamBacksOffInsteadOfShedding: with a queue depth of one
// and many runs in flight, ErrQueueFull must stay inside the lane —
// absorbed by resubmission — and never surface to the stream caller.
func TestSubmitStreamBacksOffInsteadOfShedding(t *testing.T) {
	s := streamServer(t, 1)
	rng := rand.New(rand.NewSource(7))
	keys := make([]Key, 40*s.MaxKeys())
	for i := range keys {
		keys[i] = Key(rng.Int63())
	}
	out := extsort.NewSliceWriter()
	stats, err := s.SubmitStream(context.Background(), extsort.NewSliceReader(keys), out, StreamConfig{
		RunBatch: 8, // 8 concurrent runs against a depth-1 bucket: guaranteed contention
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := int64(len(out.Keys())); got != stats.Keys || got != int64(len(keys)) {
		t.Fatalf("output %d keys, stats %d, want %d", got, stats.Keys, len(keys))
	}
	if !sort.SliceIsSorted(out.Keys(), func(i, j int) bool { return out.Keys()[i] < out.Keys()[j] }) {
		t.Fatal("stream output unsorted")
	}
	if s.met.Counter("serve.stream.queue_retries").Value() == 0 {
		t.Fatal("depth-1 queue produced no retries: the backoff path was not exercised")
	}
	// Every run must have completed despite the contention: queue-full
	// was absorbed by resubmission, never surfaced as a lost run.
	if stats.Runs != int64(len(keys))/int64(stats.RunSize) {
		t.Fatalf("runs %d, want %d", stats.Runs, len(keys)/stats.RunSize)
	}
}

// TestSubmitStreamRunSizeTooLarge: a run size beyond the largest
// serving network is a config error, typed and immediate.
func TestSubmitStreamRunSizeTooLarge(t *testing.T) {
	s := streamServer(t, 16)
	_, err := s.SubmitStream(context.Background(),
		extsort.NewSliceReader([]Key{1, 2}), extsort.NewSliceWriter(),
		StreamConfig{RunSize: s.MaxKeys() + 1})
	var ce *extsort.ConfigError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *extsort.ConfigError", err)
	}
}

// TestSubmitStreamClosedServer: a sealed server fails the stream with
// the typed closed error rather than hanging the retry loop.
func TestSubmitStreamClosedServer(t *testing.T) {
	s := streamServer(t, 16)
	if err := s.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	keys := make([]Key, 100)
	_, err := s.SubmitStream(context.Background(),
		extsort.NewSliceReader(keys), extsort.NewSliceWriter(), StreamConfig{})
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}
