// Epoch-based reclamation for evicted compiled programs.
//
// The plan store's read path is lock-free: a reader may hold a
// *schedule.Program pointer obtained from a slot that a writer evicts
// concurrently. Eviction therefore never frees a program directly — it
// unlinks the entry from the lookup table, then hands the program to
// this domain, which frees it only after a grace period proves every
// reader that could have seen the pre-eviction table has exited.
//
// The protocol is the classic epoch scheme adapted to striped reader
// registration (the Go port of the blink-tree optimistic-read idiom):
//
//   - A global epoch counter advances once per retirement.
//   - Readers pin a stripe (cache-line-padded, handed out per-P through
//     a sync.Pool so unrelated goroutines rarely share one) before
//     touching the table, and unpin after their last dereference.
//   - When a stripe's pin count drops to zero, the exiting reader
//     stamps the stripe with an epoch it loaded *before* decrementing.
//     A stamp >= e proves: every reader that entered the stripe before
//     the retirement at epoch e has exited, and any later reader
//     entered after the entry was already unlinked — so nobody can
//     still hold a program retired at or before e.
//   - reclaim frees every retired program whose epoch is covered by the
//     minimum stamp across all stripes (idle stripes are stamped
//     directly under the same ordering argument).
//
// The hot path costs one uncontended atomic add per pin/unpin on a
// stripe the current P effectively owns; the version load in the store
// is the only shared-line read.

package serve

import (
	"runtime"
	"sync"
	"sync/atomic"

	"productsort/internal/obs"
	"productsort/internal/schedule"
)

// epochStripe is one padded cell of the reader registry. pins counts
// readers currently inside a read-side critical section that picked
// this stripe; clearSeen is the epoch the stripe was last observed
// empty at. The padding keeps neighbouring stripes (and whatever the
// slice allocator places next) off this stripe's cache line.
type epochStripe struct {
	pins      atomic.Int64
	clearSeen atomic.Uint64
	_         [112]byte
}

// retiredProgram is one entry of the reclamation list: the program and
// the epoch its retirement advanced the global counter to.
type retiredProgram struct {
	prog  *schedule.Program
	epoch uint64
}

// epochDomain manages the grace-period protocol for one store.
type epochDomain struct {
	global  atomic.Uint64
	stripes []epochStripe
	next    atomic.Uint32
	handles sync.Pool // *epochStripe: per-P stripe affinity, round-robin assigned

	mu      sync.Mutex // guards retired; cold path only
	retired []retiredProgram

	retiredC *obs.Counter
	freedC   *obs.Counter
	pending  *obs.Gauge
}

// newEpochDomain builds a domain with the given stripe count (0 sizes
// it to the scheduler: the next power of two covering GOMAXPROCS, at
// least 4, so concurrent readers on distinct Ps land on distinct cache
// lines). Instruments register in m under serve.epoch.*.
func newEpochDomain(stripes int, m *obs.Metrics) *epochDomain {
	if stripes < 1 {
		stripes = nextPow2(max(4, runtime.GOMAXPROCS(0)))
	}
	d := &epochDomain{
		stripes:  make([]epochStripe, stripes),
		retiredC: m.Counter("serve.epoch.retired"),
		freedC:   m.Counter("serve.epoch.freed"),
		pending:  m.Gauge("serve.epoch.pending"),
	}
	n := uint32(stripes)
	d.handles.New = func() any {
		return &d.stripes[d.next.Add(1)%n]
	}
	return d
}

// epochPin is an active read-side critical section. The zero value is
// inert; release is idempotent-safe against it.
type epochPin struct {
	d *epochDomain
	s *epochStripe
}

// enter pins a stripe and returns the critical-section token. Must be
// called before the first table load the pin is meant to protect.
func (d *epochDomain) enter() epochPin {
	s := d.handles.Get().(*epochStripe)
	d.handles.Put(s)
	s.pins.Add(1)
	return epochPin{d: d, s: s}
}

// release ends the critical section. If this reader was the last one
// in its stripe, it stamps the stripe with an epoch loaded *before*
// the decrement — the conservative order the grace-period argument in
// the package comment needs (a stamp taken after the decrement could
// cover a retirement that unlinked while a new reader was already
// inside the old table).
func (p epochPin) release() {
	if p.d == nil {
		return
	}
	e := p.d.global.Load()
	if p.s.pins.Add(-1) == 0 {
		p.s.clearSeen.Store(e)
	}
}

// retire moves an unlinked program onto the reclamation list, stamped
// with a freshly advanced epoch. The caller must have removed every
// lookup path to prog before calling (Retire is the fence).
func (d *epochDomain) retire(prog *schedule.Program) {
	prog.Retire()
	d.mu.Lock()
	e := d.global.Add(1)
	d.retired = append(d.retired, retiredProgram{prog: prog, epoch: e})
	d.retiredC.Inc()
	d.pending.Set(int64(len(d.retired)))
	d.mu.Unlock()
}

// reclaim frees every retired program whose grace period has elapsed
// and returns how many it freed. Safe to call from any goroutine, any
// number of times; each program is freed exactly once.
func (d *epochDomain) reclaim() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.retired) == 0 {
		return 0
	}
	// now is loaded before observing any stripe: a stripe seen idle
	// after this load proves its pre-retirement readers (of anything
	// retired at epoch <= now) are gone.
	now := d.global.Load()
	minCleared := now
	for i := range d.stripes {
		s := &d.stripes[i]
		cleared := s.clearSeen.Load()
		if cleared < now && s.pins.Load() == 0 {
			cleared = now
		}
		if cleared < minCleared {
			minCleared = cleared
		}
	}
	kept := d.retired[:0]
	freed := 0
	for _, it := range d.retired {
		if it.epoch <= minCleared {
			if it.prog.Free() {
				d.freedC.Inc()
				freed++
			}
		} else {
			kept = append(kept, it)
		}
	}
	for i := len(kept); i < len(d.retired); i++ {
		d.retired[i] = retiredProgram{} // drop the freed pointers
	}
	d.retired = kept
	d.pending.Set(int64(len(d.retired)))
	return freed
}

// epoch returns the current global epoch (== total retirements).
func (d *epochDomain) epoch() uint64 { return d.global.Load() }

// nextPow2 returns the smallest power of two >= n (n >= 1).
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}
