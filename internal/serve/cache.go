// The plan cache: a bounded LRU of compiled programs behind one mutex.
//
// Superseded on the serving path by PlanStore (store.go), whose read
// side is lock-free; PlanCache is kept as the mutex baseline the
// contention benchmark (cmd/bench -contend) measures the store
// against, and as the simplest correct reference implementation.

package serve

import (
	"container/list"
	"sync"

	"productsort/internal/obs"
	"productsort/internal/schedule"
	"productsort/internal/sort2d"
)

// PlanCache is a bounded LRU of compiled phase programs keyed by the
// schedule cache signature. Unlike schedule's process-wide compile
// cache it builds through schedule.CompileUncached, so evicting an
// entry genuinely releases the program — the property a long-lived
// multi-tenant server needs when tenants rotate through more topologies
// than memory should hold. Hits, misses and evictions feed the obs
// metrics registry under serve.plancache.*.
type PlanCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List               // front = most recently used
	byKey map[string]*list.Element // signature -> element holding *cacheSlot

	hits, misses, evictions *obs.Counter
}

// cacheSlot is a once-guarded cache entry: concurrent misses on one
// signature coalesce into a single compilation, and residency is
// decided before the (possibly slow) build runs so the cache lock is
// never held across a compile.
type cacheSlot struct {
	key  string
	once sync.Once
	prog *schedule.Program
	err  error
}

// NewPlanCache returns an LRU holding at most capacity programs
// (minimum 1), reporting into m (a private registry when nil).
func NewPlanCache(capacity int, m *obs.Metrics) *PlanCache {
	if capacity < 1 {
		capacity = 1
	}
	if m == nil {
		m = obs.NewMetrics()
	}
	return &PlanCache{
		cap:       capacity,
		ll:        list.New(),
		byKey:     make(map[string]*list.Element),
		hits:      m.Counter("serve.plancache.hits"),
		misses:    m.Counter("serve.plancache.misses"),
		evictions: m.Counter("serve.plancache.evictions"),
	}
}

// Len reports the resident entry count.
func (c *PlanCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Get returns the compiled program for plan, compiling with engine on a
// miss. A miss inserts the slot at the front and evicts from the back
// beyond capacity; the compile itself runs outside the cache lock, and
// a failed compile gives up its residency so a later Get can retry.
func (c *PlanCache) Get(plan *Plan, engine sort2d.Engine) (*schedule.Program, error) {
	c.mu.Lock()
	if el, ok := c.byKey[plan.sig]; ok {
		c.ll.MoveToFront(el)
		c.hits.Inc()
		slot := el.Value.(*cacheSlot)
		c.mu.Unlock()
		slot.once.Do(func() { slot.prog, slot.err = schedule.CompileUncached(plan.Net, engine) })
		return slot.prog, slot.err
	}
	c.misses.Inc()
	slot := &cacheSlot{key: plan.sig}
	c.byKey[plan.sig] = c.ll.PushFront(slot)
	for c.ll.Len() > c.cap {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.byKey, back.Value.(*cacheSlot).key)
		c.evictions.Inc()
	}
	c.mu.Unlock()
	slot.once.Do(func() { slot.prog, slot.err = schedule.CompileUncached(plan.Net, engine) })
	if slot.err != nil {
		c.mu.Lock()
		if el, ok := c.byKey[slot.key]; ok && el.Value.(*cacheSlot) == slot {
			c.ll.Remove(el)
			delete(c.byKey, slot.key)
		}
		c.mu.Unlock()
	}
	return slot.prog, slot.err
}
