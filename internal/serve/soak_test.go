package serve

import (
	"context"
	"errors"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"productsort/internal/graph"
	"productsort/internal/product"
)

// soakDuration returns the soak length: a few hundred milliseconds by
// default (so `go test -race ./internal/serve` always exercises it),
// extended via SOAK_MS for `make serve-soak`.
func soakDuration() time.Duration {
	if ms := os.Getenv("SOAK_MS"); ms != "" {
		if v, err := strconv.Atoi(ms); err == nil && v > 0 {
			return time.Duration(v) * time.Millisecond
		}
	}
	return 400 * time.Millisecond
}

// TestServerSoak hammers one server from many goroutines with mixed
// sizes, deadlines and cancellations, then drains. Run under -race it
// is the serving layer's concurrency gate: every completed sort must be
// correct, every admitted request must be answered, and the drain must
// finish.
func TestServerSoak(t *testing.T) {
	nets := []*product.Network{product.MustNew(graph.Path(4), 2)} // overlaps hypercube^4
	for r := 1; r <= 6; r++ {
		nets = append(nets, product.MustNew(graph.K2(), r))
	}
	pl, err := NewPlanner(nets, nil)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Planner:       pl,
		MaxBatch:      16,
		MaxLinger:     200 * time.Microsecond,
		QueueDepth:    256,
		Workers:       4,
		PlanCacheSize: 4,
	})
	if err != nil {
		t.Fatal(err)
	}

	var completed, shedCount, expired atomic.Int64
	deadline := time.Now().Add(soakDuration())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g) + 1))
			for i := 0; time.Now().Before(deadline); i++ {
				n := 1 + rng.Intn(64)
				in := make([]Key, n)
				for j := range in {
					in[j] = Key(rng.Intn(1024) - 512)
				}
				ctx := context.Background()
				var cancel context.CancelFunc
				if i%16 == 15 {
					// Exercise the deadline paths under load.
					ctx, cancel = context.WithTimeout(ctx, 150*time.Microsecond)
				}
				got, err := s.SortKeys(ctx, in)
				if cancel != nil {
					cancel()
				}
				switch {
				case err == nil:
					want := append([]Key(nil), in...)
					sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
					for k := range got {
						if got[k] != want[k] {
							t.Errorf("goroutine %d: unsorted reply for n=%d", g, n)
							return
						}
					}
					completed.Add(1)
				case errors.Is(err, ErrQueueFull):
					shedCount.Add(1)
				case errors.Is(err, context.DeadlineExceeded):
					expired.Add(1)
				default:
					t.Errorf("goroutine %d: unexpected error: %v", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Fatalf("drain did not complete: %v", err)
	}
	if _, err := s.Submit(context.Background(), []Key{1, 2}); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after soak close = %v, want ErrClosed", err)
	}
	if completed.Load() == 0 {
		t.Fatal("soak completed zero sorts")
	}
	t.Logf("soak: %d completed, %d shed, %d expired (over %v)",
		completed.Load(), shedCount.Load(), expired.Load(), soakDuration())
}
