// Package blocksort extends the sorting algorithm to the practical
// regime where each processor holds a block of keys rather than one
// (keys ≫ processors — the setting in which the paper's Section 1 notes
// multiway algorithms "behave nicely").
//
// It relies on the classic comparator theorem: if every processor first
// sorts its local block and every compare-exchange of a sorting network
// is replaced by a merge-split (the pair merges its two blocks; the low
// side keeps the smaller half, the high side the larger), the network
// sorts the blocked sequence. Because the multiway-merge algorithm is
// oblivious, its recorded schedule (package mergenet) is exactly such a
// network, so the parallel round count is *unchanged* while each round
// moves a block instead of a key.
package blocksort

import (
	"fmt"
	"sort"

	"productsort/internal/mergenet"
	"productsort/internal/product"
	"productsort/internal/schedule"
	"productsort/internal/simnet"
)

// Key aliases the machine key type.
type Key = simnet.Key

// Stats reports the work of one blocked sort.
type Stats struct {
	// Rounds is the number of parallel merge-split rounds (equals the
	// schedule's depth; independent of the block size).
	Rounds int
	// MergeSplits is the total number of merge-split operations.
	MergeSplits int
	// KeysMoved counts keys transferred between processors (every
	// merge-split ships one block each way).
	KeysMoved int
}

// Sort sorts keys in place using the schedule with blockSize keys per
// processor. len(keys) must equal schedule.Inputs × blockSize. On
// return, keys is globally sorted: block i (the keys of snake position
// i's processor) holds the i-th smallest blockSize keys in order.
func Sort(s *mergenet.Schedule, keys []Key, blockSize int) (Stats, error) {
	var st Stats
	if blockSize < 1 {
		return st, fmt.Errorf("blocksort: block size %d < 1", blockSize)
	}
	if len(keys) != s.Inputs*blockSize {
		return st, fmt.Errorf("blocksort: %d keys for %d processors × block %d",
			len(keys), s.Inputs, blockSize)
	}
	// Local pre-sort of every block.
	for p := 0; p < s.Inputs; p++ {
		blk := keys[p*blockSize : (p+1)*blockSize]
		sort.Slice(blk, func(i, j int) bool { return blk[i] < blk[j] })
	}
	buf := make([]Key, 2*blockSize)
	for _, phase := range s.Phases {
		st.Rounds++
		for _, pr := range phase {
			lo := keys[pr[0]*blockSize : (pr[0]+1)*blockSize]
			hi := keys[pr[1]*blockSize : (pr[1]+1)*blockSize]
			mergeSplit(lo, hi, buf)
			st.MergeSplits++
			st.KeysMoved += 2 * blockSize
		}
	}
	return st, nil
}

// SortProgram is the blocked-sort backend of the compiled schedule IR:
// it re-expresses the cached phase program in snake coordinates of net
// and replays it with merge-split operators. Same parallel rounds as
// the one-key-per-node sort, blockSize keys per exchange.
func SortProgram(prog *schedule.Program, net *product.Network, keys []Key, blockSize int) (Stats, error) {
	return Sort(mergenet.FromProgram(prog, net), keys, blockSize)
}

// mergeSplit merges two sorted blocks and splits the result: lo receives
// the smaller half, hi the larger, both sorted.
func mergeSplit(lo, hi, buf []Key) {
	b := buf[:0]
	i, j := 0, 0
	for i < len(lo) && j < len(hi) {
		if lo[i] <= hi[j] {
			b = append(b, lo[i])
			i++
		} else {
			b = append(b, hi[j])
			j++
		}
	}
	b = append(b, lo[i:]...)
	b = append(b, hi[j:]...)
	copy(lo, b[:len(lo)])
	copy(hi, b[len(lo):])
}
