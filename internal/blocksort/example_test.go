package blocksort_test

import (
	"fmt"

	"productsort/internal/blocksort"
	"productsort/internal/graph"
	"productsort/internal/mergenet"
)

// Sorting many more keys than processors: the schedule's round count is
// unchanged; each round moves one block per exchange.
func ExampleSort() {
	sched := mergenet.MustExtract(graph.Path(3), 2, nil) // 9 processors
	keys := make([]blocksort.Key, 9*4)                   // 4 keys per processor
	for i := range keys {
		keys[i] = blocksort.Key(len(keys) - i)
	}
	st, err := blocksort.Sort(sched, keys, 4)
	if err != nil {
		panic(err)
	}
	fmt.Println(keys[:6], "...", keys[30:])
	fmt.Println("rounds:", st.Rounds == sched.Depth())
	// Output:
	// [1 2 3 4 5 6] ... [31 32 33 34 35 36]
	// rounds: true
}
