package blocksort

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"productsort/internal/graph"
	"productsort/internal/mergenet"
	"productsort/internal/product"
	"productsort/internal/schedule"
)

func randomKeys(n int, seed int64) []Key {
	rng := rand.New(rand.NewSource(seed))
	ks := make([]Key, n)
	for i := range ks {
		ks[i] = Key(rng.Intn(1000))
	}
	return ks
}

func isSorted(ks []Key) bool {
	for i := 1; i < len(ks); i++ {
		if ks[i] < ks[i-1] {
			return false
		}
	}
	return true
}

func TestSortValidation(t *testing.T) {
	s := mergenet.MustExtract(graph.K2(), 3, nil)
	if _, err := Sort(s, make([]Key, 8), 0); err == nil {
		t.Error("block size 0 accepted")
	}
	if _, err := Sort(s, make([]Key, 9), 2); err == nil {
		t.Error("wrong key count accepted")
	}
}

func TestBlockSizeOneEqualsSchedule(t *testing.T) {
	s := mergenet.MustExtract(graph.Path(3), 2, nil)
	keys := randomKeys(9, 1)
	viaBlocks := append([]Key(nil), keys...)
	viaApply := append([]Key(nil), keys...)
	if _, err := Sort(s, viaBlocks, 1); err != nil {
		t.Fatal(err)
	}
	s.Apply(viaApply)
	for i := range keys {
		if viaBlocks[i] != viaApply[i] {
			t.Fatalf("divergence at %d", i)
		}
	}
}

func TestSortsAcrossNetworksAndBlockSizes(t *testing.T) {
	cfgs := []struct {
		g *graph.Graph
		r int
	}{
		{graph.Path(3), 3}, {graph.K2(), 5}, {graph.Petersen(), 2},
		{graph.CompleteBinaryTree(3), 2}, {graph.Cycle(4), 3},
	}
	for _, c := range cfgs {
		s := mergenet.MustExtract(c.g, c.r, nil)
		for _, bs := range []int{1, 2, 4, 7, 16} {
			keys := randomKeys(s.Inputs*bs, int64(bs))
			want := append([]Key(nil), keys...)
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			st, err := Sort(s, keys, bs)
			if err != nil {
				t.Fatal(err)
			}
			if !isSorted(keys) {
				t.Fatalf("%s block=%d: unsorted", s.Network, bs)
			}
			for i := range keys {
				if keys[i] != want[i] {
					t.Fatalf("%s block=%d: multiset changed", s.Network, bs)
				}
			}
			if st.Rounds != s.Depth() {
				t.Errorf("%s block=%d: rounds %d != schedule depth %d", s.Network, bs, st.Rounds, s.Depth())
			}
			if st.MergeSplits != s.Size() {
				t.Errorf("%s block=%d: merge-splits %d != schedule size %d", s.Network, bs, st.MergeSplits, s.Size())
			}
			if st.KeysMoved != 2*bs*s.Size() {
				t.Errorf("%s block=%d: keys moved %d", s.Network, bs, st.KeysMoved)
			}
		}
	}
}

// TestRoundsIndependentOfBlockSize is the headline property: scaling
// keys-per-processor leaves the parallel round count untouched.
func TestRoundsIndependentOfBlockSize(t *testing.T) {
	s := mergenet.MustExtract(graph.Path(4), 3, nil)
	var prev int
	for i, bs := range []int{1, 8, 64} {
		keys := randomKeys(s.Inputs*bs, 9)
		st, err := Sort(s, keys, bs)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && st.Rounds != prev {
			t.Fatalf("rounds changed with block size: %d vs %d", st.Rounds, prev)
		}
		prev = st.Rounds
	}
}

func TestDuplicatesAndExtremes(t *testing.T) {
	s := mergenet.MustExtract(graph.K2(), 4, nil)
	keys := make([]Key, 16*4)
	for i := range keys {
		keys[i] = Key(i % 3)
	}
	if _, err := Sort(s, keys, 4); err != nil {
		t.Fatal(err)
	}
	if !isSorted(keys) {
		t.Fatal("duplicates broke blocksort")
	}
	// All-equal input.
	for i := range keys {
		keys[i] = 7
	}
	if _, err := Sort(s, keys, 4); err != nil {
		t.Fatal(err)
	}
	if !isSorted(keys) {
		t.Fatal("constant input broke blocksort")
	}
}

func TestMergeSplitUnit(t *testing.T) {
	lo := []Key{1, 5, 9}
	hi := []Key{2, 3, 10}
	mergeSplit(lo, hi, make([]Key, 6))
	want := [][]Key{{1, 2, 3}, {5, 9, 10}}
	for i := range lo {
		if lo[i] != want[0][i] || hi[i] != want[1][i] {
			t.Fatalf("mergeSplit: lo=%v hi=%v", lo, hi)
		}
	}
}

// Property: blocksort equals the standard library sort.
func TestQuickBlocksort(t *testing.T) {
	s := mergenet.MustExtract(graph.Path(3), 2, nil)
	f := func(seed int64, bsRaw uint8) bool {
		bs := 1 + int(bsRaw)%8
		keys := randomKeys(9*bs, seed)
		want := append([]Key(nil), keys...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if _, err := Sort(s, keys, bs); err != nil {
			return false
		}
		for i := range keys {
			if keys[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkBlocksort64x16(b *testing.B) {
	s := mergenet.MustExtract(graph.K2(), 6, nil)
	keys := randomKeys(64*16, 1)
	buf := make([]Key, len(keys))
	b.SetBytes(int64(len(keys) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, keys)
		if _, err := Sort(s, buf, 16); err != nil {
			b.Fatal(err)
		}
	}
}

// TestSortProgramMatchesScheduleSort: the program-consuming entry point
// sorts identically to the schedule-consuming one.
func TestSortProgramMatchesScheduleSort(t *testing.T) {
	net := product.MustNew(graph.Path(3), 2)
	prog, err := schedule.Compile(net, nil)
	if err != nil {
		t.Fatal(err)
	}
	const bs = 5
	keys := randomKeys(net.Nodes()*bs, 7)
	want := append([]Key(nil), keys...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	st, err := SortProgram(prog, net, keys, bs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range keys {
		if keys[i] != want[i] {
			t.Fatalf("key %d: got %d want %d", i, keys[i], want[i])
		}
	}
	if st.Rounds != prog.Depth() {
		t.Errorf("rounds = %d, want program depth %d", st.Rounds, prog.Depth())
	}
}
