// Package emit hosts alternative network-family emitters: constructions
// that build comparator networks directly — not by recording the paper's
// generalized product-network algorithm — and lower them into the same
// schedule.Program IR that every backend, the serve planner, and the
// 0-1 certifier already consume.
//
// An emitted network lives in "line space": w horizontal lines, each
// carrying one key, crossed by columns of node-disjoint comparators.
// The host network is a 1-D path product (r = 1), whose snake rank is
// the identity permutation, so line index, node id, and snake position
// all coincide. That single choice is what makes the subsystem cheap:
// Validate, ExecBackend, the columnar batch kernel, and cert.Run all
// work on emitted programs unchanged, and LoweredComparators is a
// straight copy of the column stream.
//
// Two families are implemented on top of this package:
//
//   - emit/multiway — the enhanced multiway sorting network built from
//     n-sorter primitives (arXiv 1407.0961): recursively sort s blocks,
//     then merge the s sorted lists with strided n-sorters plus a
//     parity-bounded odd-even-transposition cleanup.
//   - emit/periodic — the periodic balanced merging network
//     (arXiv 1409.1749, construction of Dowd–Perl–Rudolph–Saks): a
//     fixed period of log N comparator columns replayed log N times.
package emit

import (
	"fmt"

	"productsort/internal/graph"
	"productsort/internal/product"
	"productsort/internal/schedule"
)

// Family names the emitted network families the rest of the repo keys
// on (serve plan metadata, bench artifacts, root API dispatch). The
// paper's own construction is FamilyProduct; it is defined here so
// every layer spells the default the same way.
const (
	FamilyProduct  = "product"
	FamilyMultiway = "multiway"
	FamilyPeriodic = "periodic"
)

// Host returns the 1-D path product network that carries an emitted
// program over `lines` keys. With r = 1 the snake rank is the identity,
// so node id == snake position == line index.
func Host(lines int) *product.Network {
	net, err := product.New(graph.Path(lines), 1)
	if err != nil {
		// r = 1 over a non-empty path cannot fail; NewBuilder already
		// rejected lines < 1.
		panic(err)
	}
	return net
}

// Builder accumulates comparator columns in line space. A column is one
// parallel step: its comparators must be node-disjoint, which the final
// schedule.Program.Validate pass enforces. Every column is charged one
// round (emitted comparators are wired directly; there is no routed
// fallback in line space).
type Builder struct {
	lines int
	cols  [][][2]int
}

// NewBuilder returns an empty builder over `lines` lines. lines must be
// at least 1.
func NewBuilder(lines int) *Builder {
	if lines < 1 {
		panic(fmt.Sprintf("emit: %d lines", lines))
	}
	return &Builder{lines: lines}
}

// Lines returns the builder's line count.
func (b *Builder) Lines() int { return b.lines }

// Columns returns the number of columns emitted so far — the depth (and
// round count) of the final program. The index of the next column to be
// created is exactly this value, which recursive constructions use to
// align independent sub-networks onto shared columns.
func (b *Builder) Columns() int { return len(b.cols) }

// Add places the comparator (lo, hi) — min to lo, max to hi — into
// column col, growing the column list as needed. Callers are free to
// interleave independent sub-constructions by targeting earlier
// columns; disjointness within a column is validated once at Program
// time.
func (b *Builder) Add(col, lo, hi int) {
	if lo < 0 || hi < 0 || lo >= b.lines || hi >= b.lines || lo == hi {
		panic(fmt.Sprintf("emit: comparator (%d,%d) on %d lines", lo, hi, b.lines))
	}
	for len(b.cols) <= col {
		b.cols = append(b.cols, nil)
	}
	b.cols[col] = append(b.cols[col], [2]int{lo, hi})
}

// Sorter lowers one w-wide n-sorter primitive onto the lines
// lo, lo+stride, ..., lo+(w-1)*stride, starting at column start, and
// returns the first free column after it. The lowering is Batcher's
// odd-even mergesort in its iterative column form, padded to the next
// power of two with virtual lines above the top: a comparator touching
// a virtual line would compare against +inf and is dropped as a no-op.
// Columns that end up empty after dropping are compressed away, so a
// w-sorter's column count (and round charge) is exactly its effective
// depth.
func (b *Builder) Sorter(lo, w, stride, start int) int {
	if w <= 1 {
		return start
	}
	w2 := 1
	for w2 < w {
		w2 <<= 1
	}
	col := start
	for p := 1; p < w2; p <<= 1 {
		for k := p; k >= 1; k >>= 1 {
			used := false
			for j := k % p; j+k < w2; j += 2 * k {
				for i := 0; i < k; i++ {
					a, c := i+j, i+j+k
					if c >= w {
						continue // virtual line: compare vs +inf, no-op
					}
					if (a / (2 * p)) == (c / (2 * p)) {
						b.Add(col, lo+a*stride, lo+c*stride)
						used = true
					}
				}
			}
			if used {
				col++
			}
		}
	}
	return col
}

// SorterDepth returns the column count Sorter(…, w, …) occupies, without
// emitting anything.
func SorterDepth(w int) int {
	b := NewBuilder(w)
	return b.Sorter(0, w, 1, 0)
}

// Program freezes the builder's columns into a validated
// schedule.Program under the given engine name and canonical signature.
// Each column becomes one OpCompareExchange with Cost 1 and Dim 1 (the
// host is one-dimensional); empty columns are skipped.
func (b *Builder) Program(engine, sig string) (*schedule.Program, error) {
	ops := make([]schedule.Op, 0, len(b.cols))
	for _, col := range b.cols {
		if len(col) == 0 {
			continue
		}
		ops = append(ops, schedule.Op{Kind: schedule.OpCompareExchange, Pairs: col, Cost: 1, Dim: 1})
	}
	return schedule.NewEmittedProgram(Host(b.lines), engine, sig, ops)
}

// PowerOfTwo reports whether n is a positive power of two — the size
// family both emitters support.
func PowerOfTwo(n int) bool { return n > 0 && n&(n-1) == 0 }
