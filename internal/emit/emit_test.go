package emit_test

import (
	"testing"

	"productsort/internal/cert"
	"productsort/internal/emit"
)

// TestHostSnakeIdentity pins the property the whole subsystem leans on:
// on the 1-D path host, node id and snake position coincide, so line
// coordinates are simultaneously node coordinates and snake coordinates.
func TestHostSnakeIdentity(t *testing.T) {
	for _, n := range []int{1, 2, 3, 8, 17, 64} {
		net := emit.Host(n)
		if net.Nodes() != n {
			t.Fatalf("Host(%d): %d nodes", n, net.Nodes())
		}
		for p := 0; p < n; p++ {
			if net.NodeAtSnake(p) != p {
				t.Fatalf("Host(%d): snake pos %d maps to node %d", n, p, net.NodeAtSnake(p))
			}
			if net.SnakePos(p) != p {
				t.Fatalf("Host(%d): node %d maps to snake pos %d", n, p, net.SnakePos(p))
			}
		}
	}
}

// TestSorterSortsExhaustively proves the Batcher lowering of the
// n-sorter primitive for every width the emitters use, including the
// non-power-of-two widths the virtual-padding path handles.
func TestSorterSortsExhaustively(t *testing.T) {
	for w := 2; w <= 10; w++ {
		b := emit.NewBuilder(w)
		depth := b.Sorter(0, w, 1, 0)
		if got := emit.SorterDepth(w); got != depth {
			t.Fatalf("width %d: SorterDepth %d != emitted depth %d", w, got, depth)
		}
		prog, err := b.Program("sorter-test", "emit|test|sorter")
		if err != nil {
			t.Fatalf("width %d: %v", w, err)
		}
		if prog.Rounds() != depth {
			t.Fatalf("width %d: program rounds %d != depth %d", w, prog.Rounds(), depth)
		}
		res, err := cert.Exhaustive(prog, cert.Options{})
		if err != nil {
			t.Fatalf("width %d: %v", w, err)
		}
		if !res.Certified {
			t.Fatalf("width %d sorter not certified; witness %v", w, res.Witness)
		}
	}
}

// TestSorterStrideAndOffset checks that a strided, offset sorter sorts
// its own lines and leaves every other line untouched.
func TestSorterStrideAndOffset(t *testing.T) {
	const lines, lo, w, stride = 16, 1, 4, 3 // lines 1, 4, 7, 10
	b := emit.NewBuilder(lines)
	b.Sorter(lo, w, stride, 0)
	prog, err := b.Program("sorter-test", "emit|test|strided")
	if err != nil {
		t.Fatal(err)
	}
	touched := map[int]bool{}
	for _, op := range prog.Ops() {
		for _, pr := range op.Pairs {
			touched[pr[0]] = true
			touched[pr[1]] = true
		}
	}
	for i := 0; i < w; i++ {
		if !touched[lo+i*stride] {
			t.Fatalf("line %d in the sorter window never touched", lo+i*stride)
		}
	}
	for line := range touched {
		if line < lo || line >= lo+w*stride || (line-lo)%stride != 0 {
			t.Fatalf("line %d outside the strided window was touched", line)
		}
	}
}

// TestBuilderColumnsAreRounds pins the cost model: one column = one
// round, empty columns vanish, and the lowered comparator stream is the
// column stream verbatim (identity snake on the path host).
func TestBuilderColumnsAreRounds(t *testing.T) {
	b := emit.NewBuilder(4)
	b.Add(0, 0, 1)
	b.Add(0, 2, 3)
	b.Add(2, 1, 2) // column 1 left empty on purpose
	prog, err := b.Program("cols-test", "emit|test|cols")
	if err != nil {
		t.Fatal(err)
	}
	if prog.Rounds() != 2 || prog.Depth() != 2 {
		t.Fatalf("rounds %d depth %d, want 2/2", prog.Rounds(), prog.Depth())
	}
	if prog.Size() != 3 {
		t.Fatalf("size %d, want 3 comparators", prog.Size())
	}
	low := prog.LoweredComparators()
	want := [][2]int32{{0, 1}, {2, 3}, {1, 2}}
	if len(low) != len(want) {
		t.Fatalf("lowered %d comparators, want %d", len(low), len(want))
	}
	for i, c := range low {
		if c.Lo != want[i][0] || c.Hi != want[i][1] {
			t.Fatalf("lowered[%d] = (%d,%d), want (%d,%d)", i, c.Lo, c.Hi, want[i][0], want[i][1])
		}
	}
}

// TestProgramRejectsOverlappingColumn ensures emitted programs inherit
// the IR's structural gate: two comparators sharing a line in one
// column must be rejected at Program time.
func TestProgramRejectsOverlappingColumn(t *testing.T) {
	b := emit.NewBuilder(4)
	b.Add(0, 0, 1)
	b.Add(0, 1, 2)
	if _, err := b.Program("bad", "emit|test|overlap"); err == nil {
		t.Fatal("overlapping column accepted")
	}
}

func TestAddPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Add did not panic")
		}
	}()
	emit.NewBuilder(4).Add(0, 0, 4)
}

// TestBuilderAccessorsAndPowerOfTwo covers the small query surface the
// emitters and planner candidates lean on.
func TestBuilderAccessorsAndPowerOfTwo(t *testing.T) {
	b := emit.NewBuilder(6)
	if b.Lines() != 6 || b.Columns() != 0 {
		t.Fatalf("fresh builder: lines %d columns %d", b.Lines(), b.Columns())
	}
	b.Add(2, 0, 1) // targeting column 2 grows the column list to 3
	if b.Columns() != 3 {
		t.Fatalf("Columns() = %d after Add to column 2, want 3", b.Columns())
	}
	for n, want := range map[int]bool{1: true, 2: true, 64: true, 0: false, -4: false, 6: false, 63: false} {
		if got := emit.PowerOfTwo(n); got != want {
			t.Errorf("PowerOfTwo(%d) = %v, want %v", n, got, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("NewBuilder(0) did not panic")
		}
	}()
	emit.NewBuilder(0)
}
