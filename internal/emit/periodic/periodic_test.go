package periodic_test

import (
	"math/rand"
	"sort"
	"testing"

	"productsort/internal/cert"
	"productsort/internal/emit/periodic"
	"productsort/internal/schedule"
	"productsort/internal/simnet"
)

// TestEmitCertifiedExhaustively is the family's machine proof at the CI
// envelope: the DPRS theorem re-proved by brute force per size.
func TestEmitCertifiedExhaustively(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16} {
		prog, err := periodic.Emit(n)
		if err != nil {
			t.Fatalf("Emit(%d): %v", n, err)
		}
		if err := prog.Validate(); err != nil {
			t.Fatalf("Emit(%d): %v", n, err)
		}
		res, err := cert.Exhaustive(prog, cert.Options{})
		if err != nil {
			t.Fatalf("Emit(%d): %v", n, err)
		}
		if !res.Certified {
			t.Fatalf("Emit(%d) not certified; witness %v", n, res.Witness)
		}
	}
}

// TestEmitSampledLarge: 64 lines under the seeded random 0-1 sweep plus
// random-key equivalence with the standard library through the real
// replay backend.
func TestEmitSampledLarge(t *testing.T) {
	prog, err := periodic.Emit(64)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cert.Sampled(prog, cert.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Certified {
		t.Fatalf("sampled 64-line periodic failed; witness %v", res.Witness)
	}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		keys := make([]simnet.Key, 64)
		for i := range keys {
			keys[i] = simnet.Key(rng.Intn(1000))
		}
		want := append([]simnet.Key(nil), keys...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if _, err := (schedule.ExecBackend{}).Run(prog, keys); err != nil {
			t.Fatal(err)
		}
		for i := range keys {
			if keys[i] != want[i] {
				t.Fatalf("trial %d: pos %d = %d, want %d", trial, i, keys[i], want[i])
			}
		}
	}
}

// TestPeriodicStructure pins what makes the family periodic: the
// program is exactly Passes identical copies of a Period-column block,
// every column is a full perfect matching of mirror pairs, and the
// depth is Period*Passes = log2(n)^2.
func TestPeriodicStructure(t *testing.T) {
	for _, n := range []int{4, 8, 16, 32} {
		prog, err := periodic.Emit(n)
		if err != nil {
			t.Fatal(err)
		}
		k := periodic.Period(n)
		ops := prog.Ops()
		if len(ops) != k*k {
			t.Fatalf("n=%d: %d columns, want %d", n, len(ops), k*k)
		}
		if prog.Rounds() != periodic.Rounds(n) {
			t.Fatalf("n=%d: rounds %d, Rounds() predicts %d", n, prog.Rounds(), periodic.Rounds(n))
		}
		for i, op := range ops {
			if op.Kind != schedule.OpCompareExchange || op.Cost != 1 {
				t.Fatalf("n=%d op %d: kind %v cost %d", n, i, op.Kind, op.Cost)
			}
			if len(op.Pairs) != n/2 {
				t.Fatalf("n=%d op %d: %d pairs, want full matching of %d", n, i, len(op.Pairs), n/2)
			}
		}
		// pass p, column j must equal pass 0, column j comparator for
		// comparator.
		for p := 1; p < k; p++ {
			for j := 0; j < k; j++ {
				a, b := ops[j].Pairs, ops[p*k+j].Pairs
				for x := range a {
					if a[x] != b[x] {
						t.Fatalf("n=%d: pass %d column %d differs from pass 0", n, p, j)
					}
				}
			}
		}
	}
}

// TestOnePassMergesInterleavedSorted pins the merging property the
// family is named for (the periodic-merging framing of arXiv
// 1409.1749): a single period is a merging network for two sorted
// sequences stored interleaved — even lines one sorted list, odd lines
// the other. Exhaustive over all 0-1 vectors of that shape; by the 0-1
// principle restricted to this monotone-closed input class, that proves
// the merge for arbitrary keys.
func TestOnePassMergesInterleavedSorted(t *testing.T) {
	const n = 16
	full, err := periodic.Emit(n)
	if err != nil {
		t.Fatal(err)
	}
	k := periodic.Period(n)
	onePass, err := schedule.NewProgram(full.Net(), "periodic-pass", append([]schedule.Op(nil), full.Ops()[:k]...))
	if err != nil {
		t.Fatal(err)
	}
	// A 0-1 vector with both interleaved subsequences sorted is
	// determined by the zero counts (z0, z1) of the even and odd lists.
	for z0 := 0; z0 <= n/2; z0++ {
		for z1 := 0; z1 <= n/2; z1++ {
			keys := make([]simnet.Key, n)
			for i := 0; i < n/2; i++ {
				if i >= z0 {
					keys[2*i] = 1
				}
				if i >= z1 {
					keys[2*i+1] = 1
				}
			}
			if _, err := (schedule.ExecBackend{}).Run(onePass, keys); err != nil {
				t.Fatal(err)
			}
			for i := 1; i < n; i++ {
				if keys[i] < keys[i-1] {
					t.Fatalf("interleaved (%d,%d) zeros: one pass left pos %d unsorted: %v", z0, z1, i, keys)
				}
			}
		}
	}
}

// TestPassCountTight shows the emitted pass count is not padded: for
// n = 16 some 0-1 input survives k-1 passes unsorted, so truncating the
// last period breaks certification.
func TestPassCountTight(t *testing.T) {
	const n = 16
	full, err := periodic.Emit(n)
	if err != nil {
		t.Fatal(err)
	}
	k := periodic.Period(n)
	trunc, err := schedule.NewProgram(full.Net(), "periodic-trunc",
		append([]schedule.Op(nil), full.Ops()[:(k-1)*k]...))
	if err != nil {
		t.Fatal(err)
	}
	res, err := cert.Exhaustive(trunc, cert.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Certified {
		t.Fatalf("n=%d sorted with only %d passes; pass count is padded", n, k-1)
	}
	if res.Witness == nil || !res.Witness.Minimal {
		t.Fatalf("truncated network rejected without a minimal witness: %+v", res.Witness)
	}
}

func TestEmitRejectsBadShapes(t *testing.T) {
	for _, n := range []int{0, 3, 12, 63} {
		if _, err := periodic.Emit(n); err == nil {
			t.Fatalf("%d lines accepted", n)
		}
	}
}

// TestPassesMatchesPeriod: the pass count equals the period length —
// the defining constant-periodicity property.
func TestPassesMatchesPeriod(t *testing.T) {
	for _, n := range []int{2, 8, 64} {
		if periodic.Passes(n) != periodic.Period(n) {
			t.Fatalf("n=%d: passes %d != period %d", n, periodic.Passes(n), periodic.Period(n))
		}
	}
}
