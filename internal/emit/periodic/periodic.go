// Package periodic emits a constant-periodic sorting network into the
// schedule IR: a fixed period of log N comparator columns whose replay
// for log N passes sorts any input.
//
// The period is the balanced merging block of Dowd, Perl, Rudolph and
// Saks (JACM 1989) — the construction that small-constant-periodic
// merging networks (arXiv 1409.1749) refine: column j of the period
// (1-based, blocks of size 2^(k-j+1)) compares the mirror pairs
// (base+i, base+size-1-i) inside each block. One pass merges two sorted
// halves in the periodic sense, and k = log2 N identical passes sort
// arbitrary input — the DPRS theorem THEORY.md §16 restates. The
// emitted program materializes all k passes (k² columns of N/2
// comparators each), because the schedule IR prices replay per column;
// the periodicity survives as pure structure, pinned by tests that
// check every pass is column-for-column identical.
package periodic

import (
	"fmt"

	"productsort/internal/emit"
	"productsort/internal/schedule"
)

// EngineName labels the emitted family in programs and bench artifacts.
const EngineName = "periodic"

// Signature returns the canonical signature of the emitted program.
func Signature(lines int) string { return fmt.Sprintf("emit|periodic|n=%d", lines) }

// Period returns the number of comparator columns in one periodic
// block: log2(lines), the k of the DPRS construction.
func Period(lines int) int {
	k := 0
	for n := lines; n > 1; n >>= 1 {
		k++
	}
	return k
}

// Passes returns how many period replays the emitted program performs:
// log2(lines), the DPRS sorting bound.
func Passes(lines int) int { return Period(lines) }

// Rounds returns the column depth of Emit(lines) without building a
// program: Period * Passes = log2(lines)².
func Rounds(lines int) int { k := Period(lines); return k * k }

// Emit builds the periodic balanced sorting network over lines keys.
// lines must be a power of two.
func Emit(lines int) (*schedule.Program, error) {
	if lines < 2 || !emit.PowerOfTwo(lines) {
		return nil, fmt.Errorf("periodic: %d lines: power of two >= 2 required", lines)
	}
	b := emit.NewBuilder(lines)
	k := Period(lines)
	col := 0
	for pass := 0; pass < k; pass++ {
		for j := 0; j < k; j++ {
			blk := lines >> j // 2^(k-j)
			for base := 0; base < lines; base += blk {
				for i := 0; i < blk/2; i++ {
					b.Add(col, base+i, base+blk-1-i)
				}
			}
			col++
		}
	}
	return b.Program(EngineName, Signature(lines))
}
