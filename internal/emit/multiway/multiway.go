// Package multiway emits the enhanced multiway sorting network built
// from n-sorter primitives (arXiv 1407.0961) into the schedule IR.
//
// The construction sorts a power-of-two number of lines with a
// power-of-two sorter width s: split the input into s contiguous
// blocks, sort each recursively (the recursion bottoms out in one
// Batcher-lowered s-sorter), then merge the s sorted blocks with an
// odd/even strided recursion — merge the even-indexed window positions
// and the odd-indexed window positions independently, then run 2s
// alternating odd-even-transposition cleanup layers over the window.
//
// Why the cleanup suffices (THEORY.md §16 carries the full proof): by
// the 0-1 principle consider block b holding z_b zeros. The even
// subsequence receives ⌈z_b/2⌉ of them, the odd subsequence ⌊z_b/2⌋,
// so after the sub-merges the interleaved window is sorted except for
// an alternating 0/1 band of width 2d-1, where d ≤ s is the number of
// blocks with odd z_b. Odd-even transposition sorts a width-W dirty
// band in at most W+1 alternating layers (comparators outside the band
// are no-ops), and 2d ≤ 2s, so 2s layers always finish the merge.
package multiway

import (
	"fmt"

	"productsort/internal/emit"
	"productsort/internal/schedule"
)

// DefaultSorter is the n-sorter width used by Emit: wide enough that
// small requests sort in one primitive (a 4-sorter is 3 columns),
// narrow enough that the Batcher lowering of the primitive stays flat.
const DefaultSorter = 4

// Engine names the emitted family for a given sorter width, e.g.
// "multiway4". It is the schedule.Program engine string and the label
// bench artifacts key on.
func Engine(sorter int) string { return fmt.Sprintf("multiway%d", sorter) }

// Signature returns the canonical signature of the emitted program.
func Signature(lines, sorter int) string {
	return fmt.Sprintf("emit|multiway|s=%d|n=%d", sorter, lines)
}

// Emit builds the multiway n-sorter network over lines keys with the
// default sorter width.
func Emit(lines int) (*schedule.Program, error) { return EmitN(lines, DefaultSorter) }

// EmitN builds the multiway n-sorter network over lines keys using
// sorter-wide primitives. lines and sorter must be powers of two with
// sorter >= 2 (the recursion interleaves block halves exactly, so
// every level divides evenly).
func EmitN(lines, sorter int) (*schedule.Program, error) {
	if lines < 2 || !emit.PowerOfTwo(lines) {
		return nil, fmt.Errorf("multiway: %d lines: power of two >= 2 required", lines)
	}
	if sorter < 2 || !emit.PowerOfTwo(sorter) {
		return nil, fmt.Errorf("multiway: sorter width %d: power of two >= 2 required", sorter)
	}
	b := emit.NewBuilder(lines)
	sortRec(b, 0, lines, sorter, 0)
	return b.Program(Engine(sorter), Signature(lines, sorter))
}

// Rounds returns the column depth of EmitN(lines, sorter) without
// building a program — the planner's predicted cost for this family.
func Rounds(lines, sorter int) int {
	if lines <= 1 {
		return 0
	}
	if lines <= sorter {
		return emit.SorterDepth(lines)
	}
	m := lines / sorter
	merge := emit.SorterDepth(sorter)
	for ; m > 1; m /= 2 {
		merge += 2 * sorter
	}
	return Rounds(lines/sorter, sorter) + merge
}

// sortRec emits a sorter for the contiguous lines [lo, lo+size) starting
// at column col and returns the first free column after it.
func sortRec(b *emit.Builder, lo, size, s, col int) int {
	if size <= 1 {
		return col
	}
	if size <= s {
		return b.Sorter(lo, size, 1, col)
	}
	// Sort the s contiguous blocks in parallel: they touch disjoint
	// lines, so they share columns and the stage ends at the deepest.
	m := size / s
	end := col
	for i := 0; i < s; i++ {
		if e := sortRec(b, lo+i*m, m, s, col); e > end {
			end = e
		}
	}
	return mergeRec(b, lo, s, m, 1, end)
}

// mergeRec merges s sorted blocks of m elements each, laid out
// contiguously in the window lo, lo+stride, ..., lo+(s*m-1)*stride
// (block i holds window positions [i*m, (i+1)*m)). It starts at column
// col and returns the first free column after the merge.
func mergeRec(b *emit.Builder, lo, s, m, stride, col int) int {
	if m == 1 {
		// s single elements: one s-sorter across the stride-spaced lines.
		return b.Sorter(lo, s, stride, col)
	}
	// The even window positions form s sorted blocks of m/2 elements in
	// the doubled-stride space, and likewise the odds; merge both halves
	// in parallel (disjoint lines, shared columns).
	e1 := mergeRec(b, lo, s, m/2, stride*2, col)
	e2 := mergeRec(b, lo+stride, s, m/2, stride*2, col)
	c := e1
	if e2 > c {
		c = e2
	}
	// Cleanup: 2s alternating odd-even-transposition layers across the
	// window close the width-(2d-1), d <= s alternating band the
	// interleave can leave behind.
	w := s * m
	for layer := 0; layer < 2*s; layer++ {
		for i := layer % 2; i+1 < w; i += 2 {
			b.Add(c+layer, lo+i*stride, lo+(i+1)*stride)
		}
	}
	return c + 2*s
}
