package multiway_test

import (
	"math/rand"
	"sort"
	"testing"

	"productsort/internal/cert"
	"productsort/internal/emit/multiway"
	"productsort/internal/schedule"
	"productsort/internal/simnet"
)

// TestEmitCertifiedExhaustively is the family's machine proof at the CI
// envelope: every (lines, sorter) cell is certified over all 2^n 0-1
// vectors.
func TestEmitCertifiedExhaustively(t *testing.T) {
	for _, s := range []int{2, 4, 8} {
		for _, n := range []int{2, 4, 8, 16} {
			prog, err := multiway.EmitN(n, s)
			if err != nil {
				t.Fatalf("EmitN(%d,%d): %v", n, s, err)
			}
			if err := prog.Validate(); err != nil {
				t.Fatalf("EmitN(%d,%d): %v", n, s, err)
			}
			res, err := cert.Exhaustive(prog, cert.Options{})
			if err != nil {
				t.Fatalf("EmitN(%d,%d): %v", n, s, err)
			}
			if !res.Certified {
				t.Fatalf("EmitN(%d,%d) not certified; witness %v", n, s, res.Witness)
			}
		}
	}
}

// TestEmitSampledLarge pushes past the exhaustive envelope: 64 lines
// under the seeded random sweep, plus full random-key spot checks
// against the standard library through the real replay backend.
func TestEmitSampledLarge(t *testing.T) {
	prog, err := multiway.Emit(64)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cert.Sampled(prog, cert.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Certified {
		t.Fatalf("sampled 64-line multiway failed; witness %v", res.Witness)
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		keys := make([]simnet.Key, 64)
		for i := range keys {
			keys[i] = simnet.Key(rng.Intn(1000))
		}
		want := append([]simnet.Key(nil), keys...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if _, err := (schedule.ExecBackend{}).Run(prog, keys); err != nil {
			t.Fatal(err)
		}
		for i := range keys {
			// identity snake on the path host: node i == snake pos i
			if keys[i] != want[i] {
				t.Fatalf("trial %d: pos %d = %d, want %d", trial, i, keys[i], want[i])
			}
		}
	}
}

// TestRoundsMatchesProgram pins the planner's cost predictor to the
// emitted reality.
func TestRoundsMatchesProgram(t *testing.T) {
	for _, s := range []int{2, 4, 8} {
		for _, n := range []int{2, 4, 8, 16, 32, 64} {
			prog, err := multiway.EmitN(n, s)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := prog.Rounds(), multiway.Rounds(n, s); got != want {
				t.Fatalf("EmitN(%d,%d): program rounds %d, Rounds() predicts %d", n, s, got, want)
			}
		}
	}
}

// TestSingleSorterBaseCase: at or below the sorter width the network is
// exactly one Batcher-lowered primitive — 3 columns for the default
// 4-sorter, which is what makes this family win small request sizes.
func TestSingleSorterBaseCase(t *testing.T) {
	prog, err := multiway.Emit(4)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Rounds() != 3 {
		t.Fatalf("4-line multiway: %d rounds, want 3", prog.Rounds())
	}
	if prog.Engine() != "multiway4" {
		t.Fatalf("engine %q", prog.Engine())
	}
	if prog.Signature() != multiway.Signature(4, 4) {
		t.Fatalf("signature %q", prog.Signature())
	}
}

// TestEmitRejectsBadShapes: both size and sorter width must be powers
// of two (the interleaved merge recursion divides evenly at every
// level), and the error must be typed at the API boundary, not a panic.
func TestEmitRejectsBadShapes(t *testing.T) {
	if _, err := multiway.Emit(12); err == nil {
		t.Fatal("12 lines accepted")
	}
	if _, err := multiway.EmitN(16, 3); err == nil {
		t.Fatal("3-sorter accepted")
	}
	if _, err := multiway.EmitN(16, 1); err == nil {
		t.Fatal("1-sorter accepted")
	}
	if _, err := multiway.Emit(0); err == nil {
		t.Fatal("0 lines accepted")
	}
}
