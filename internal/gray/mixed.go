package gray

import "fmt"

// Mixed-radix generalizations: dimension i carries symbols from
// {0..radix[i]-1} (radix[0] belongs to position 1, the least
// significant). The reflected construction of Definition 3 carries over
// verbatim — the direction of the digits below position i reverses when
// the sum of the label digits above i is odd — and consecutive terms
// still differ by exactly ±1 in exactly one position. These power the
// heterogeneous product networks (e.g. rectangular grids).

// PowMixed returns the product of the radices: the number of labels.
func PowMixed(radix []int) int {
	p := 1
	for _, n := range radix {
		if n < 1 {
			panic("gray: radix must be positive")
		}
		if p > int(^uint(0)>>1)/n {
			panic("gray: mixed radix product overflows int")
		}
		p *= n
	}
	return p
}

// RankMixed returns the lexicographic index of label d (d[0] least
// significant) under the given radices.
func RankMixed(d, radix []int) int {
	if len(d) != len(radix) {
		panic("gray: label/radix length mismatch")
	}
	r := 0
	for i := len(d) - 1; i >= 0; i-- {
		if d[i] < 0 || d[i] >= radix[i] {
			panic(fmt.Sprintf("gray: digit %d out of range [0,%d)", d[i], radix[i]))
		}
		r = r*radix[i] + d[i]
	}
	return r
}

// UnrankMixed writes the mixed-radix digits of rank into out.
func UnrankMixed(rank int, radix []int, out []int) []int {
	if len(out) != len(radix) {
		panic("gray: buffer/radix length mismatch")
	}
	if rank < 0 {
		panic("gray: negative rank")
	}
	for i := range out {
		out[i] = rank % radix[i]
		rank /= radix[i]
	}
	if rank != 0 {
		panic("gray: rank out of range")
	}
	return out
}

// SnakeRankMixed returns the snake position of label d under the given
// radices (Definition 2 with per-dimension symbol counts).
func SnakeRankMixed(d, radix []int) int {
	if len(d) != len(radix) {
		panic("gray: label/radix length mismatch")
	}
	rank := 0
	parity := 0
	for i := len(d) - 1; i >= 0; i-- {
		v := d[i]
		n := radix[i]
		if v < 0 || v >= n {
			panic(fmt.Sprintf("gray: digit %d out of range [0,%d)", v, n))
		}
		x := v
		if parity&1 == 1 {
			x = n - 1 - v
		}
		rank = rank*n + x
		parity += v
	}
	return rank
}

// SnakeUnrankMixed writes into out the label at the given snake
// position; the inverse of SnakeRankMixed.
func SnakeUnrankMixed(rank int, radix []int, out []int) []int {
	if len(out) != len(radix) {
		panic("gray: buffer/radix length mismatch")
	}
	total := PowMixed(radix)
	if rank < 0 || rank >= total {
		panic(fmt.Sprintf("gray: snake rank %d out of range [0,%d)", rank, total))
	}
	parity := 0
	scale := total
	for i := len(radix) - 1; i >= 0; i-- {
		n := radix[i]
		scale /= n
		x := rank / scale
		rank %= scale
		v := x
		if parity&1 == 1 {
			v = n - 1 - x
		}
		out[i] = v
		parity += v
	}
	return out
}

// SequenceMixed returns the full mixed-radix Gray sequence.
func SequenceMixed(radix []int) [][]int {
	total := PowMixed(radix)
	seq := make([][]int, total)
	for i := range seq {
		seq[i] = SnakeUnrankMixed(i, radix, make([]int, len(radix)))
	}
	return seq
}
