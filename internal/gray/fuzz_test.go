package gray

import "testing"

// Fuzz targets for the gray-code kernel: the snake order is the ground
// truth every sortedness judgement in the repo (including the 0-1
// certifier) is stated in, so its rank/unrank bijections and the
// split-position lemma get adversarial inputs, not just table tests.
// `make fuzz` runs each target briefly; the f.Add seeds double as a
// committed regression corpus.

// clampDims normalizes fuzz-generated radix/dimension parameters into
// the supported envelope, keeping n^r small enough to enumerate.
func clampDims(n, r uint8) (int, int) {
	nn := 2 + int(n)%15 // radix 2..16
	rr := 1 + int(r)%5  // dimension 1..5
	for Pow(nn, rr) > 1<<16 {
		rr--
	}
	return nn, rr
}

// FuzzRankUnrank checks the lexicographic bijection: Unrank∘Rank is the
// identity on labels, Rank∘Unrank the identity on [0, n^r), and every
// unranked digit is in range.
func FuzzRankUnrank(f *testing.F) {
	f.Add(uint8(2), uint8(3), uint32(5))
	f.Add(uint8(3), uint8(2), uint32(8))
	f.Add(uint8(10), uint8(2), uint32(99))
	f.Add(uint8(16), uint8(4), uint32(65535))
	f.Fuzz(func(t *testing.T, n, r uint8, rank uint32) {
		nn, rr := clampDims(n, r)
		total := Pow(nn, rr)
		rk := int(rank) % total
		label := Unrank(rk, nn, make([]int, rr))
		for i, d := range label {
			if d < 0 || d >= nn {
				t.Fatalf("Unrank(%d, %d) digit %d = %d out of range", rk, nn, i, d)
			}
		}
		if back := Rank(label, nn); back != rk {
			t.Fatalf("Rank(Unrank(%d)) = %d", rk, back)
		}
	})
}

// FuzzSnakeRankUnrank checks the snake-order bijection (Definition 2 /
// Definition 3) and the Gray property: consecutive snake labels are at
// Hamming distance exactly 1.
func FuzzSnakeRankUnrank(f *testing.F) {
	f.Add(uint8(2), uint8(3), uint32(0))
	f.Add(uint8(3), uint8(3), uint32(13))
	f.Add(uint8(5), uint8(2), uint32(24))
	f.Add(uint8(16), uint8(3), uint32(4095))
	f.Fuzz(func(t *testing.T, n, r uint8, rank uint32) {
		nn, rr := clampDims(n, r)
		total := Pow(nn, rr)
		rk := int(rank) % total
		label := SnakeUnrank(rk, nn, make([]int, rr))
		if back := SnakeRank(label, nn); back != rk {
			t.Fatalf("SnakeRank(SnakeUnrank(%d)) = %d (label %v)", rk, back, label)
		}
		if rk+1 < total {
			next := SnakeUnrank(rk+1, nn, make([]int, rr))
			if d := Dist(label, next); d != 1 {
				t.Fatalf("snake neighbors %v -> %v at distance %d, want 1", label, next, d)
			}
		}
	})
}

// FuzzSplitPosLemma checks the split-position lemma of Section 2 for
// any radix/dimension: SplitPos(j, u, n) is the snake position of the
// j-th label whose dimension-1 symbol is u. Because dimension 1 varies
// fastest, each block of n consecutive snake positions contains the
// symbol u exactly once — verifying the block certifies "j-th-ness"
// without scanning the whole order.
func FuzzSplitPosLemma(f *testing.F) {
	f.Add(uint8(2), uint8(2), uint8(1), uint16(0))
	f.Add(uint8(3), uint8(3), uint8(2), uint16(7))
	f.Add(uint8(4), uint8(2), uint8(0), uint16(3))
	f.Add(uint8(10), uint8(2), uint8(9), uint16(9))
	f.Fuzz(func(t *testing.T, n, r, u uint8, j uint16) {
		nn, rr := clampDims(n, r)
		if rr < 2 {
			rr = 2
			for Pow(nn, rr) > 1<<16 {
				nn--
			}
		}
		uu := int(u) % nn
		groups := Pow(nn, rr-1) // number of labels with a fixed dim-1 symbol
		jj := int(j) % groups
		pos := SplitPos(jj, uu, nn)
		if pos < jj*nn || pos >= (jj+1)*nn {
			t.Fatalf("SplitPos(%d,%d,%d) = %d outside block [%d,%d)", jj, uu, nn, pos, jj*nn, (jj+1)*nn)
		}
		buf := make([]int, rr)
		hits := 0
		for p := jj * nn; p < (jj+1)*nn; p++ {
			label := SnakeUnrank(p, nn, buf)
			if label[0] == uu {
				hits++
				if p != pos {
					t.Fatalf("block %d: symbol %d at snake pos %d, SplitPos says %d", jj, uu, p, pos)
				}
			}
		}
		if hits != 1 {
			t.Fatalf("block %d contains dim-1 symbol %d %d times, want exactly once", jj, uu, hits)
		}
	})
}

// FuzzMixedRadixRoundTrip checks the mixed-radix generalizations used
// by heterogeneous networks: both bijections round-trip and the snake
// retains the unit-step property across arbitrary per-dimension
// radices.
func FuzzMixedRadixRoundTrip(f *testing.F) {
	f.Add(uint8(2), uint8(3), uint8(4), uint32(10))
	f.Add(uint8(5), uint8(2), uint8(3), uint32(29))
	f.Add(uint8(7), uint8(7), uint8(1), uint32(48))
	f.Fuzz(func(t *testing.T, a, b, c uint8, rank uint32) {
		radix := []int{2 + int(a)%9, 1 + int(b)%10, 1 + int(c)%10}
		total := PowMixed(radix)
		rk := int(rank) % total
		label := UnrankMixed(rk, radix, make([]int, len(radix)))
		if back := RankMixed(label, radix); back != rk {
			t.Fatalf("RankMixed(UnrankMixed(%d)) = %d (radix %v)", rk, back, radix)
		}
		slabel := SnakeUnrankMixed(rk, radix, make([]int, len(radix)))
		if back := SnakeRankMixed(slabel, radix); back != rk {
			t.Fatalf("SnakeRankMixed(SnakeUnrankMixed(%d)) = %d (radix %v)", rk, back, radix)
		}
		if rk+1 < total {
			next := SnakeUnrankMixed(rk+1, radix, make([]int, len(radix)))
			if d := Dist(slabel, next); d != 1 {
				t.Fatalf("mixed snake neighbors %v -> %v at distance %d, want 1 (radix %v)",
					slabel, next, d, radix)
			}
		}
	})
}
