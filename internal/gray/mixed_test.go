package gray

import (
	"testing"
	"testing/quick"
)

var mixedRadices = [][]int{
	{2}, {5}, {2, 3}, {3, 2}, {4, 4}, {2, 3, 4}, {4, 3, 2}, {5, 2, 3}, {2, 2, 2, 2}, {3, 5, 2, 4},
}

func TestPowMixed(t *testing.T) {
	if PowMixed([]int{2, 3, 4}) != 24 {
		t.Error("PowMixed wrong")
	}
	if PowMixed(nil) != 1 {
		t.Error("empty product should be 1")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("zero radix accepted")
		}
	}()
	PowMixed([]int{2, 0})
}

func TestRankUnrankMixedRoundTrip(t *testing.T) {
	for _, radix := range mixedRadices {
		total := PowMixed(radix)
		buf := make([]int, len(radix))
		for rank := 0; rank < total; rank++ {
			UnrankMixed(rank, radix, buf)
			if got := RankMixed(buf, radix); got != rank {
				t.Fatalf("radix %v: round trip broke at %d", radix, rank)
			}
		}
	}
}

func TestSnakeMixedRoundTrip(t *testing.T) {
	for _, radix := range mixedRadices {
		total := PowMixed(radix)
		buf := make([]int, len(radix))
		for rank := 0; rank < total; rank++ {
			SnakeUnrankMixed(rank, radix, buf)
			if got := SnakeRankMixed(buf, radix); got != rank {
				t.Fatalf("radix %v: snake round trip broke at %d", radix, rank)
			}
		}
	}
}

// TestSnakeMixedUnitDistance: consecutive mixed-radix snake labels
// differ by exactly ±1 in exactly one position.
func TestSnakeMixedUnitDistance(t *testing.T) {
	for _, radix := range mixedRadices {
		seq := SequenceMixed(radix)
		for i := 1; i < len(seq); i++ {
			if d := Dist(seq[i-1], seq[i]); d != 1 {
				t.Fatalf("radix %v: Dist(Q[%d],Q[%d])=%d", radix, i-1, i, d)
			}
		}
	}
}

// TestSnakeMixedCoversAll: the sequence is a permutation of all labels.
func TestSnakeMixedCoversAll(t *testing.T) {
	for _, radix := range mixedRadices {
		seq := SequenceMixed(radix)
		seen := make(map[int]bool, len(seq))
		for _, d := range seq {
			seen[RankMixed(d, radix)] = true
		}
		if len(seen) != PowMixed(radix) {
			t.Fatalf("radix %v: covers %d labels", radix, len(seen))
		}
	}
}

// TestMixedMatchesHomogeneous: with equal radices the mixed functions
// agree with the homogeneous ones.
func TestMixedMatchesHomogeneous(t *testing.T) {
	radix := []int{4, 4, 4}
	buf := make([]int, 3)
	for rank := 0; rank < 64; rank++ {
		a := SnakeUnrankMixed(rank, radix, make([]int, 3))
		b := SnakeUnrank(rank, 4, make([]int, 3))
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("mixed/homogeneous disagree at %d: %v vs %v", rank, a, b)
			}
		}
		if SnakeRankMixed(a, radix) != SnakeRank(a, 4) {
			t.Fatalf("ranks disagree at %d", rank)
		}
		UnrankMixed(rank, radix, buf)
		if RankMixed(buf, radix) != Rank(buf, 4) {
			t.Fatalf("lex ranks disagree at %d", rank)
		}
	}
}

// TestSplitPosMixed: the split property of Section 2 holds with the
// dimension-1 radix: labels with position-1 symbol v occur at snake
// positions SplitPos(j, v, N1), and the residual labels form the snake
// sequence of the remaining radices.
func TestSplitPosMixed(t *testing.T) {
	for _, radix := range [][]int{{2, 3}, {3, 2, 4}, {4, 3, 2}, {5, 4, 2}} {
		seq := SequenceMixed(radix)
		n1 := radix[0]
		rest := radix[1:]
		sub := PowMixed(rest)
		for v := 0; v < n1; v++ {
			for j := 0; j < sub; j++ {
				pos := SplitPos(j, v, n1)
				d := seq[pos]
				if d[0] != v {
					t.Fatalf("radix %v v=%d j=%d: label %v at pos %d", radix, v, j, d, pos)
				}
				if got := SnakeRankMixed(d[1:], rest); got != j {
					t.Fatalf("radix %v v=%d j=%d: residual rank %d", radix, v, j, got)
				}
			}
		}
	}
}

// TestGroupParityMixed: chunks of N1·N2 consecutive snake positions
// share their upper digits, and the traversal direction of each chunk
// alternates with the Hamming weight parity of those upper digits —
// the property Step 4 of the heterogeneous merge relies on.
func TestGroupParityMixed(t *testing.T) {
	for _, radix := range [][]int{{2, 3, 2}, {4, 3, 2}, {3, 3, 2, 2}} {
		seq := SequenceMixed(radix)
		chunk := radix[0] * radix[1]
		for z := 0; z*chunk < len(seq); z++ {
			first := seq[z*chunk]
			upper := first[2:]
			w := 0
			for _, x := range upper {
				w += x
			}
			for t2 := 0; t2 < chunk; t2++ {
				d := seq[z*chunk+t2]
				for i := 2; i < len(d); i++ {
					if d[i] != upper[i-2] {
						t.Fatalf("radix %v chunk %d: upper digits changed inside chunk", radix, z)
					}
				}
				// Local position within the chunk under the 2-dim snake.
				local := SnakeRankMixed(d[:2], radix[:2])
				want := t2
				if w%2 == 1 {
					want = chunk - 1 - t2
				}
				if local != want {
					t.Fatalf("radix %v chunk %d t=%d: local pos %d want %d (parity %d)",
						radix, z, t2, local, want, w%2)
				}
			}
		}
	}
}

// Property: mixed snake bijection for random radices.
func TestQuickSnakeMixed(t *testing.T) {
	f := func(seedA, seedB, seedC uint8, rankRaw uint16) bool {
		radix := []int{2 + int(seedA)%4, 2 + int(seedB)%4, 2 + int(seedC)%4}
		total := PowMixed(radix)
		rank := int(rankRaw) % total
		d := SnakeUnrankMixed(rank, radix, make([]int, 3))
		return SnakeRankMixed(d, radix) == rank
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1500}); err != nil {
		t.Error(err)
	}
}
