package gray_test

import (
	"fmt"

	"productsort/internal/gray"
)

// The paper's running example: the 3-ary Gray code of order 2 is
// {00, 01, 02, 12, 11, 10, 20, 21, 22}.
func ExampleSequence() {
	for _, d := range gray.Sequence(3, 2) {
		fmt.Print(gray.String(d), " ")
	}
	fmt.Println()
	// Output:
	// 00 01 02 12 11 10 20 21 22
}

// SnakeRank converts a label to its snake position; SnakeUnrank inverts.
func ExampleSnakeRank() {
	d := []int{0, 2, 1} // position1=0, position2=2, position3=1: label "120"
	pos := gray.SnakeRank(d, 3)
	fmt.Println(pos)
	back := gray.SnakeUnrank(pos, 3, make([]int, 3))
	fmt.Println(gray.String(back))
	// Output:
	// 11
	// 120
}

// SplitPos gives the snake positions of the keys whose dimension-1
// symbol is v: the reason the paper's Step 1 moves no data.
func ExampleSplitPos() {
	for j := 0; j < 4; j++ {
		fmt.Print(gray.SplitPos(j, 1, 3), " ")
	}
	fmt.Println()
	// Output:
	// 1 4 7 10
}

// Mixed radices power heterogeneous products such as rectangular grids.
func ExampleSnakeRankMixed() {
	radix := []int{4, 2} // 4 columns, 2 rows
	for pos := 0; pos < 8; pos++ {
		d := gray.SnakeUnrankMixed(pos, radix, make([]int, 2))
		fmt.Printf("(%d,%d) ", d[0], d[1])
	}
	fmt.Println()
	// Output:
	// (0,0) (1,0) (2,0) (3,0) (3,1) (2,1) (1,1) (0,1)
}
