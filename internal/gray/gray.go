// Package gray implements N-ary Gray-code sequences and the snake order
// used by the generalized product-network sorting algorithm.
//
// Terminology follows Fernández & Efe. A node of the r-dimensional product
// graph PG_r is labeled by an r-tuple of symbols from {0, …, N-1}. The
// tuple is indexed 1…r with 1 the rightmost (least significant) symbol
// position; in Go we store it as a slice d of length r with d[0] the
// symbol at position 1 and d[r-1] the symbol at position r.
//
// The snake order (Definition 2) lists the nodes of PG_r so that
// consecutive labels have unit Hamming distance: it is exactly the N-ary
// Gray-code sequence Q_r of Definition 3. SnakeRank and SnakeUnrank
// convert between a label and its position in Q_r. Rank and Unrank
// convert between a label and its lexicographic (row-major) position,
// with dimension 1 least significant.
package gray

import "fmt"

// Pow returns n**k for non-negative k. It panics if the result would
// overflow a 64-bit int, since every caller uses it to size slices.
func Pow(n, k int) int {
	if k < 0 {
		panic("gray: negative exponent")
	}
	p := 1
	for i := 0; i < k; i++ {
		if n != 0 && p > int(^uint(0)>>1)/n {
			panic(fmt.Sprintf("gray: %d**%d overflows int", n, k))
		}
		p *= n
	}
	return p
}

// Rank returns the lexicographic (row-major) index of label d in radix n:
// d[0] is the least significant digit. All digits must lie in [0, n).
func Rank(d []int, n int) int {
	r := 0
	for i := len(d) - 1; i >= 0; i-- {
		if d[i] < 0 || d[i] >= n {
			panic(fmt.Sprintf("gray: digit %d out of range [0,%d)", d[i], n))
		}
		r = r*n + d[i]
	}
	return r
}

// Unrank writes the radix-n digits of rank into out (d[0] least
// significant) and returns out. len(out) determines the dimension r;
// rank must lie in [0, n**r).
func Unrank(rank, n int, out []int) []int {
	if rank < 0 {
		panic("gray: negative rank")
	}
	for i := range out {
		out[i] = rank % n
		rank /= n
	}
	if rank != 0 {
		panic("gray: rank out of range for dimension")
	}
	return out
}

// Weight returns the Hamming weight of label d: the sum of its symbols.
// (Section 2 of the paper; used to decide even/odd subgraph parity.)
func Weight(d []int) int {
	w := 0
	for _, x := range d {
		w += x
	}
	return w
}

// WeightExcept returns the Hamming weight of d with the symbol positions
// listed in skip omitted, emulating the "*" (all) symbol of the paper.
// skip holds zero-based indices into d.
func WeightExcept(d []int, skip ...int) int {
	w := 0
	for i, x := range d {
		omitted := false
		for _, s := range skip {
			if i == s {
				omitted = true
				break
			}
		}
		if !omitted {
			w += x
		}
	}
	return w
}

// Dist returns the Hamming distance between labels a and b as defined in
// the paper: the sum of |a_i - b_i| over symbol positions.
func Dist(a, b []int) int {
	if len(a) != len(b) {
		panic("gray: mismatched label lengths")
	}
	d := 0
	for i := range a {
		if a[i] >= b[i] {
			d += a[i] - b[i]
		} else {
			d += b[i] - a[i]
		}
	}
	return d
}

// SnakeRank returns the position of label d in the snake order of the
// r-dimensional product of an n-node factor graph (r = len(d)).
//
// Definition 2: subgraphs [u]PG_{r-1}^r are ordered by u (the leftmost
// symbol, d[r-1]); within subgraph u the order is the snake order of
// PG_{r-1}, reversed when u is odd.
func SnakeRank(d []int, n int) int {
	rank := 0
	parity := 0 // parity of the sum of more-significant *label* digits
	for i := len(d) - 1; i >= 0; i-- {
		v := d[i]
		if v < 0 || v >= n {
			panic(fmt.Sprintf("gray: digit %d out of range [0,%d)", v, n))
		}
		x := v
		if parity&1 == 1 {
			x = n - 1 - v
		}
		rank = rank*n + x
		// Unrolling Definition 2 one level shows the order of the digits
		// below position i is reversed exactly when the sum of the label
		// digits at positions above i is odd, so parity accumulates the
		// original digit v, not the reflected rank digit x.
		parity += v
	}
	return rank
}

// SnakeUnrank writes into out the label at position rank of the snake
// order of the len(out)-dimensional product of an n-node factor graph,
// and returns out. It is the inverse of SnakeRank.
func SnakeUnrank(rank, n int, out []int) []int {
	r := len(out)
	total := Pow(n, r)
	if rank < 0 || rank >= total {
		panic(fmt.Sprintf("gray: snake rank %d out of range [0,%d)", rank, total))
	}
	parity := 0
	scale := total
	for i := r - 1; i >= 0; i-- {
		scale /= n
		x := rank / scale
		rank %= scale
		v := x
		if parity&1 == 1 {
			v = n - 1 - x
		}
		out[i] = v
		parity += v
	}
	return out
}

// Sequence returns the full N-ary Gray-code sequence Q_r as a slice of
// n**r labels in snake order. Each label is a fresh slice.
func Sequence(n, r int) [][]int {
	total := Pow(n, r)
	seq := make([][]int, total)
	for i := range seq {
		seq[i] = SnakeUnrank(i, n, make([]int, r))
	}
	return seq
}

// SplitPos returns the position, within the snake order of PG_r, of the
// j-th element of the subsequence [u]Q_{r-1}^1 (all labels whose symbol
// at position 1 equals u). Per Section 2 these positions are
// u, 2N-u-1, 2N+u, 4N-u-1, 4N+u, …:
//
//	j even: j*N + u
//	j odd:  j*N + (N-1-u)
func SplitPos(j, u, n int) int {
	if u < 0 || u >= n {
		panic("gray: u out of range")
	}
	if j&1 == 0 {
		return j*n + u
	}
	return j*n + (n - 1 - u)
}

// GroupLabel returns the group label of node label d with respect to the
// given erased symbol positions (zero-based indices): the remaining
// symbols in order of increasing position. For example erasing position 0
// (dimension 1) of d yields the label of the G-subgraph containing d, as
// in the [*]Q^1 group sequence of Section 2.
func GroupLabel(d []int, erase ...int) []int {
	g := make([]int, 0, len(d))
	for i, x := range d {
		skip := false
		for _, e := range erase {
			if i == e {
				skip = true
				break
			}
		}
		if !skip {
			g = append(g, x)
		}
	}
	return g
}

// String formats a label in the paper's convention: most significant
// (position r) symbol first, e.g. the tuple stored as d=[1,2,0] prints
// as "021".
func String(d []int) string {
	b := make([]byte, 0, 2*len(d))
	for i := len(d) - 1; i >= 0; i-- {
		if d[i] > 9 {
			b = append(b, fmt.Sprintf("(%d)", d[i])...)
		} else {
			b = append(b, byte('0'+d[i]))
		}
	}
	return string(b)
}
