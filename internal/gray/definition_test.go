package gray

import "testing"

// This file validates the package against the paper's Definition 3
// taken literally: Q_1 = {0,…,N-1} and Q_r = CON{[u]Q_{r-1}}, where
// [u]Q_{r-1} prefixes Q_{r-1} with u for even u and prefixes the
// reversed sequence R(Q_{r-1}) for odd u. The recursive construction
// below is an independent implementation used only as a test oracle.

// definitionSequence builds Q_r exactly as Definition 3 states.
func definitionSequence(n, r int) [][]int {
	if r == 1 {
		seq := make([][]int, n)
		for u := 0; u < n; u++ {
			seq[u] = []int{u}
		}
		return seq
	}
	inner := definitionSequence(n, r-1)
	var out [][]int
	for u := 0; u < n; u++ {
		if u%2 == 0 {
			for _, d := range inner {
				out = append(out, append(append([]int(nil), d...), u))
			}
		} else {
			for i := len(inner) - 1; i >= 0; i-- {
				out = append(out, append(append([]int(nil), inner[i]...), u))
			}
		}
	}
	return out
}

func TestDefinition3Literal(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5} {
		for _, r := range []int{1, 2, 3, 4} {
			want := definitionSequence(n, r)
			got := Sequence(n, r)
			if len(want) != len(got) {
				t.Fatalf("n=%d r=%d: lengths differ", n, r)
			}
			for i := range want {
				for j := range want[i] {
					if want[i][j] != got[i][j] {
						t.Fatalf("n=%d r=%d: position %d: definition %v vs implementation %v",
							n, r, i, want[i], got[i])
					}
				}
			}
		}
	}
}

// definitionSequenceMixed generalizes Definition 3 to per-dimension
// radices: the prefix symbol ranges over the leftmost dimension's radix.
func definitionSequenceMixed(radix []int) [][]int {
	r := len(radix)
	if r == 1 {
		seq := make([][]int, radix[0])
		for u := 0; u < radix[0]; u++ {
			seq[u] = []int{u}
		}
		return seq
	}
	inner := definitionSequenceMixed(radix[:r-1])
	var out [][]int
	for u := 0; u < radix[r-1]; u++ {
		if u%2 == 0 {
			for _, d := range inner {
				out = append(out, append(append([]int(nil), d...), u))
			}
		} else {
			for i := len(inner) - 1; i >= 0; i-- {
				out = append(out, append(append([]int(nil), inner[i]...), u))
			}
		}
	}
	return out
}

func TestDefinition3LiteralMixed(t *testing.T) {
	for _, radix := range [][]int{{2, 3}, {3, 2}, {4, 3, 2}, {2, 5, 3}, {3, 3, 2, 2}} {
		want := definitionSequenceMixed(radix)
		got := SequenceMixed(radix)
		for i := range want {
			for j := range want[i] {
				if want[i][j] != got[i][j] {
					t.Fatalf("radix %v: position %d: definition %v vs implementation %v",
						radix, i, want[i], got[i])
				}
			}
		}
	}
}
