package gray

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// labelFromString parses a paper-style label ("021" = position3..position1)
// into the internal slice form (d[0] = position 1).
func labelFromString(s string) []int {
	d := make([]int, len(s))
	for i := 0; i < len(s); i++ {
		d[len(s)-1-i] = int(s[i] - '0')
	}
	return d
}

func TestPow(t *testing.T) {
	cases := []struct{ n, k, want int }{
		{2, 0, 1}, {2, 10, 1024}, {3, 3, 27}, {10, 4, 10000}, {1, 100, 1}, {0, 3, 0},
	}
	for _, c := range cases {
		if got := Pow(c.n, c.k); got != c.want {
			t.Errorf("Pow(%d,%d)=%d want %d", c.n, c.k, got, c.want)
		}
	}
}

func TestPowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pow(-) with negative exponent did not panic")
		}
	}()
	Pow(2, -1)
}

func TestPowOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pow overflow did not panic")
		}
	}()
	Pow(10, 40)
}

func TestRankUnrankRoundTrip(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5} {
		for _, r := range []int{1, 2, 3, 4} {
			total := Pow(n, r)
			buf := make([]int, r)
			for rank := 0; rank < total; rank++ {
				Unrank(rank, n, buf)
				if got := Rank(buf, n); got != rank {
					t.Fatalf("n=%d r=%d: Rank(Unrank(%d))=%d", n, r, rank, got)
				}
			}
		}
	}
}

func TestUnrankOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Unrank(8, 2, make([]int, 3)) // 8 == 2^3 is one past the end
}

// TestPaperQ2 checks the r=2, N=3 sequence printed in the paper:
// Q_2 = {00, 01, 02, 12, 11, 10, 20, 21, 22}.
func TestPaperQ2(t *testing.T) {
	want := []string{"00", "01", "02", "12", "11", "10", "20", "21", "22"}
	for i, w := range want {
		d := labelFromString(w)
		if got := SnakeRank(d, 3); got != i {
			t.Errorf("SnakeRank(%s)=%d want %d", w, got, i)
		}
		out := SnakeUnrank(i, 3, make([]int, 2))
		if String(out) != w {
			t.Errorf("SnakeUnrank(%d)=%s want %s", i, String(out), w)
		}
	}
}

// TestPaperQ3Prefix spot-checks the r=3, N=3 sequence: Q_3 begins with
// [0]Q_2, then [1]R(Q_2): 000..022, then 122, 121, 120, 110, ...
func TestPaperQ3Prefix(t *testing.T) {
	want := []string{
		"000", "001", "002", "012", "011", "010", "020", "021", "022",
		"122", "121", "120", "110", "111", "112", "102", "101", "100",
		"200", "201", "202", "212", "211", "210", "220", "221", "222",
	}
	for i, w := range want {
		if got := SnakeRank(labelFromString(w), 3); got != i {
			t.Errorf("SnakeRank(%s)=%d want %d", w, got, i)
		}
	}
}

func TestSnakeRoundTripExhaustive(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5, 6} {
		for _, r := range []int{1, 2, 3, 4} {
			total := Pow(n, r)
			buf := make([]int, r)
			for rank := 0; rank < total; rank++ {
				SnakeUnrank(rank, n, buf)
				if got := SnakeRank(buf, n); got != rank {
					t.Fatalf("n=%d r=%d: SnakeRank(SnakeUnrank(%d))=%d", n, r, rank, got)
				}
			}
		}
	}
}

// TestSnakeUnitDistance verifies the defining Gray-code property:
// consecutive terms of Q_r have unit Hamming distance. This holds for
// even and odd N alike.
func TestSnakeUnitDistance(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5} {
		for _, r := range []int{1, 2, 3, 4} {
			seq := Sequence(n, r)
			for i := 1; i < len(seq); i++ {
				if d := Dist(seq[i-1], seq[i]); d != 1 {
					t.Fatalf("n=%d r=%d: Dist(Q[%d],Q[%d])=%d want 1 (%v vs %v)",
						n, r, i-1, i, d, seq[i-1], seq[i])
				}
			}
		}
	}
}

// TestSnakeCoversAll verifies Q_r is a permutation of all labels.
func TestSnakeCoversAll(t *testing.T) {
	for _, n := range []int{2, 3, 4} {
		for _, r := range []int{1, 2, 3} {
			seq := Sequence(n, r)
			seen := make(map[int]bool, len(seq))
			for _, d := range seq {
				seen[Rank(d, n)] = true
			}
			if len(seen) != Pow(n, r) {
				t.Fatalf("n=%d r=%d: sequence covers %d labels, want %d", n, r, len(seen), Pow(n, r))
			}
		}
	}
}

// TestSplitPosLemma verifies the central structural fact of Section 2:
// the labels of Q_r whose position-1 symbol equals u occur at snake
// positions u, 2N-u-1, 2N+u, 4N-u-1, …, and after dropping that symbol
// they form Q_{r-1} in order.
func TestSplitPosLemma(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5} {
		for _, r := range []int{2, 3, 4} {
			seq := Sequence(n, r)
			sub := Pow(n, r-1)
			for u := 0; u < n; u++ {
				for j := 0; j < sub; j++ {
					pos := SplitPos(j, u, n)
					d := seq[pos]
					if d[0] != u {
						t.Fatalf("n=%d r=%d u=%d j=%d: label %v at pos %d has d[0]=%d",
							n, r, u, j, d, pos, d[0])
					}
					// The remaining symbols must be the j-th label of Q_{r-1}.
					rest := d[1:]
					if got := SnakeRank(rest, n); got != j {
						t.Fatalf("n=%d r=%d u=%d j=%d: rest %v has snake rank %d",
							n, r, u, j, rest, got)
					}
				}
			}
		}
	}
}

// TestSplitPosCovers verifies that for fixed u the positions SplitPos(j,u)
// are distinct and that over all u they cover 0..N^r-1.
func TestSplitPosCovers(t *testing.T) {
	n, r := 4, 3
	total := Pow(n, r)
	sub := total / n
	seen := make([]bool, total)
	for u := 0; u < n; u++ {
		for j := 0; j < sub; j++ {
			p := SplitPos(j, u, n)
			if p < 0 || p >= total {
				t.Fatalf("SplitPos(%d,%d)=%d out of range", j, u, p)
			}
			if seen[p] {
				t.Fatalf("SplitPos collision at %d", p)
			}
			seen[p] = true
		}
	}
}

func TestWeightAndDist(t *testing.T) {
	if w := Weight([]int{1, 2, 0, 4}); w != 7 {
		t.Errorf("Weight=%d want 7", w)
	}
	if w := WeightExcept([]int{1, 2, 0, 4}, 1); w != 5 {
		t.Errorf("WeightExcept=%d want 5", w)
	}
	if w := WeightExcept([]int{1, 2, 0, 4}, 0, 3); w != 2 {
		t.Errorf("WeightExcept=%d want 2", w)
	}
	if d := Dist([]int{0, 3, 1}, []int{2, 3, 0}); d != 3 {
		t.Errorf("Dist=%d want 3", d)
	}
}

func TestDistMismatchedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Dist([]int{1}, []int{1, 2})
}

func TestGroupLabel(t *testing.T) {
	d := []int{7, 8, 9} // positions 1,2,3
	got := GroupLabel(d, 0)
	if len(got) != 2 || got[0] != 8 || got[1] != 9 {
		t.Errorf("GroupLabel erase dim1 = %v", got)
	}
	got = GroupLabel(d, 0, 1)
	if len(got) != 1 || got[0] != 9 {
		t.Errorf("GroupLabel erase dims 1,2 = %v", got)
	}
}

// TestGroupSequenceOrder verifies the paper's claim that the group labels
// [*]Q^1 obtained by erasing position 1 appear in Q_{r-1} snake order,
// each group occupying N consecutive snake positions.
func TestGroupSequenceOrder(t *testing.T) {
	for _, n := range []int{2, 3, 4} {
		for _, r := range []int{2, 3, 4} {
			seq := Sequence(n, r)
			for g := 0; g < Pow(n, r-1); g++ {
				for k := 0; k < n; k++ {
					d := seq[g*n+k]
					group := GroupLabel(d, 0)
					if got := SnakeRank(group, n); got != g {
						t.Fatalf("n=%d r=%d: group of snake pos %d ranks %d want %d",
							n, r, g*n+k, got, g)
					}
				}
			}
		}
	}
}

// TestGroupDirectionByParity verifies that within group g the position-1
// symbols run ascending when the group label has even Hamming weight and
// descending when odd (the {0,1,2} vs {2,1,0} alternation in the paper).
func TestGroupDirectionByParity(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5} {
		r := 3
		seq := Sequence(n, r)
		for g := 0; g < Pow(n, r-1); g++ {
			group := GroupLabel(seq[g*n], 0)
			even := Weight(group)%2 == 0
			for k := 0; k < n; k++ {
				want := k
				if !even {
					want = n - 1 - k
				}
				if got := seq[g*n+k][0]; got != want {
					t.Fatalf("n=%d group %d (weight parity even=%v) slot %d: symbol %d want %d",
						n, g, even, k, got, want)
				}
			}
		}
	}
}

func TestStringFormat(t *testing.T) {
	if s := String([]int{2, 1, 0}); s != "012" {
		t.Errorf("String=%q want %q", s, "012")
	}
	if s := String([]int{11, 0}); s != "0(11)" {
		t.Errorf("String=%q want %q", s, "0(11)")
	}
}

// Property: SnakeRank is a bijection consistent with SnakeUnrank for
// random (n, r, rank) triples.
func TestQuickSnakeBijection(t *testing.T) {
	f := func(nRaw, rRaw uint8, rankRaw uint16) bool {
		n := 2 + int(nRaw)%7 // 2..8
		r := 1 + int(rRaw)%4 // 1..4
		total := Pow(n, r)
		rank := int(rankRaw) % total
		d := SnakeUnrank(rank, n, make([]int, r))
		return SnakeRank(d, n) == rank
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: adjacent snake ranks always differ in exactly one symbol
// position, and by exactly one in value.
func TestQuickSnakeAdjacency(t *testing.T) {
	f := func(nRaw, rRaw uint8, rankRaw uint16) bool {
		n := 2 + int(nRaw)%7
		r := 1 + int(rRaw)%4
		total := Pow(n, r)
		rank := int(rankRaw) % (total - 1 + 1)
		if rank >= total-1 {
			rank = total - 2
		}
		if rank < 0 {
			return true // n^r == 1 edge case cannot occur (n>=2, r>=1)
		}
		a := SnakeUnrank(rank, n, make([]int, r))
		b := SnakeUnrank(rank+1, n, make([]int, r))
		diffs := 0
		for i := range a {
			if a[i] != b[i] {
				diffs++
				if a[i]-b[i] != 1 && b[i]-a[i] != 1 {
					return false
				}
			}
		}
		return diffs == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestSnakeRankDigitRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SnakeRank([]int{3}, 3)
}

func TestSnakeUnrankRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SnakeUnrank(27, 3, make([]int, 3))
}

func BenchmarkSnakeRank(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	labels := make([][]int, 1024)
	for i := range labels {
		labels[i] = SnakeUnrank(rng.Intn(Pow(4, 6)), 4, make([]int, 6))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SnakeRank(labels[i%len(labels)], 4)
	}
}

func BenchmarkSnakeUnrank(b *testing.B) {
	buf := make([]int, 6)
	total := Pow(4, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SnakeUnrank(i%total, 4, buf)
	}
}
