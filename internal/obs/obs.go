// Package obs is the repo's zero-dependency observability layer: typed
// trace events, a Tracer interface the replay stack emits them through,
// a metrics registry (counters, gauges, fixed-bucket histograms) that is
// snapshotable as JSON, and a Chrome trace_event exporter.
//
// The paper's cost model is stated in parallel communication rounds
// (S_r(N) = (r-1)²·S₂(N) + (r-1)(r-2)·R(N), Theorem 1); this package
// exists so a real run can be decomposed against it — per phase, per
// dimension, per recovery window — instead of only comparing totals.
//
// Design constraints, in order:
//
//  1. Disabled must be free. Every emission site in the hot replay path
//     guards on a nil Tracer; events are flat value structs, so an
//     enabled tracer costs one interface call and zero allocations at
//     the call site. Tests pin the disabled path at 0 allocs.
//  2. No dependencies. The package imports only the standard library and
//     is imported by simnet, schedule, spmd and the root API — it must
//     sit below all of them.
//  3. Events carry schedule-IR identity: the op index, op kind,
//     dimension and S2/sweep attribution of the compiled program, so a
//     trace lines up one-to-one with the program that produced it.
package obs

// PhaseKind discriminates round-consuming phases, mirroring the
// schedule IR's op kinds (compare-exchange, routed exchange, idle).
type PhaseKind uint8

const (
	// PhaseExchange is a single-hop compare-exchange phase (cost 1).
	PhaseExchange PhaseKind = iota
	// PhaseRouted is a multi-hop routed exchange phase (cost = measured
	// routing charge).
	PhaseRouted
	// PhaseIdle is an idle round of the oblivious schedule.
	PhaseIdle
)

// String names the phase kind.
func (k PhaseKind) String() string {
	switch k {
	case PhaseExchange:
		return "exchange"
	case PhaseRouted:
		return "routed"
	case PhaseIdle:
		return "idle"
	}
	return "phase?"
}

// Phase is the payload of a phase begin/end event pair: one
// round-consuming op of a compiled schedule program. It is a flat value
// struct so emitting it allocates nothing.
type Phase struct {
	// Index is the op's position in the program's instruction stream —
	// the schedule-IR identity of the phase.
	Index int
	// Kind discriminates exchange / routed / idle.
	Kind PhaseKind
	// Dim is the 1-based product dimension the phase's pairs differ in,
	// or 0 when the phase mixes dimensions (or is idle).
	Dim int
	// S2 reports whether the phase is attributed to PG_2 sorting
	// (inside a BeginS2/EndS2 bracket) rather than a transposition sweep.
	S2 bool
	// Cost is the phase's precomputed round charge.
	Cost int
	// Pairs is the comparator count of the phase (0 for idle).
	Pairs int
}

// RecoveryKind discriminates the fault-recovery events emitted by the
// resilient replay.
type RecoveryKind uint8

const (
	// RecoveryCheckpoint marks a checkpoint snapshot before a window.
	RecoveryCheckpoint RecoveryKind = iota
	// RecoveryScrubDetect marks a checksum or sortedness scrub that
	// caught corruption.
	RecoveryScrubDetect
	// RecoveryRetry marks a full-window retry from checkpoint.
	RecoveryRetry
	// RecoveryHalve marks a window split (exponential backoff).
	RecoveryHalve
	// RecoveryRepairPass marks a whole-program repair replay.
	RecoveryRepairPass
	// RecoveryStallWait marks rounds spent waiting out stalled nodes.
	RecoveryStallWait
	// RecoveryRetransmit marks retransmissions of dropped exchanges.
	RecoveryRetransmit
	// RecoveryReplay carries the round charge of a recovery
	// re-execution: a checkpoint-window replay or the in-phase rounds
	// spent on stall waits and retransmissions. Summing the Rounds of
	// all recovery events yields the replay clock's RecoveryRounds.
	RecoveryReplay
	// RecoveryUnrecoverable marks a fault recovery gave up on.
	RecoveryUnrecoverable
)

// String names the recovery kind.
func (k RecoveryKind) String() string {
	switch k {
	case RecoveryCheckpoint:
		return "checkpoint"
	case RecoveryScrubDetect:
		return "scrub-detect"
	case RecoveryRetry:
		return "retry"
	case RecoveryHalve:
		return "halve"
	case RecoveryRepairPass:
		return "repair-pass"
	case RecoveryStallWait:
		return "stall-wait"
	case RecoveryRetransmit:
		return "retransmit"
	case RecoveryReplay:
		return "replay"
	case RecoveryUnrecoverable:
		return "unrecoverable"
	}
	return "recovery?"
}

// Recovery is the payload of a fault-recovery event from the resilient
// replay: what happened, where in the program, and what it cost.
type Recovery struct {
	// Kind discriminates the event.
	Kind RecoveryKind
	// Lo and Hi bound the checkpoint window as exchange-phase ordinals
	// [Lo, Hi); both are -1 for events outside window machinery.
	Lo, Hi int
	// Phase is the schedule op index the event attaches to, or -1.
	Phase int
	// Rounds is the recovery round charge of this event (0 when the
	// event is free, e.g. a checkpoint snapshot).
	Rounds int
	// Count is the event multiplicity (e.g. retransmissions batched per
	// phase); 0 means 1.
	Count int
}

// N returns the event multiplicity, treating 0 as 1.
func (r Recovery) N() int {
	if r.Count == 0 {
		return 1
	}
	return r.Count
}

// Messages is the payload of a message-traffic event from the SPMD
// engine: per-phase aggregate counts of the key messages a phase moved.
type Messages struct {
	// Phase is the engine's phase ordinal.
	Phase int
	// Sent is the number of key messages injected for the phase.
	Sent int
	// Relays is the number of store-and-forward hops by intermediate
	// processors.
	Relays int
	// Rounds is the synchronized round count of the phase (0 when the
	// engine ran unsynchronized).
	Rounds int
}

// Tracer receives the typed events of a replay. Implementations must be
// safe for use from a single replay goroutine; the Recorder and
// Collector in this package are additionally safe for concurrent use.
//
// The nil Tracer is the disabled state: every emission site in the
// replay stack guards with `if t != nil`, so disabled tracing costs one
// predictable branch and zero allocations.
type Tracer interface {
	// PhaseBegin fires immediately before a round-consuming op executes.
	PhaseBegin(Phase)
	// PhaseEnd fires immediately after the op's data movement finished.
	PhaseEnd(Phase)
	// RecoveryEvent fires for checkpoint/scrub/retry/repair activity.
	RecoveryEvent(Recovery)
	// MessageStats fires once per SPMD phase with its traffic aggregate.
	MessageStats(Messages)
}

// MultiTracer fans every event out to each tracer in order. Nil
// elements are skipped.
type MultiTracer []Tracer

// PhaseBegin implements Tracer.
func (m MultiTracer) PhaseBegin(p Phase) {
	for _, t := range m {
		if t != nil {
			t.PhaseBegin(p)
		}
	}
}

// PhaseEnd implements Tracer.
func (m MultiTracer) PhaseEnd(p Phase) {
	for _, t := range m {
		if t != nil {
			t.PhaseEnd(p)
		}
	}
}

// RecoveryEvent implements Tracer.
func (m MultiTracer) RecoveryEvent(r Recovery) {
	for _, t := range m {
		if t != nil {
			t.RecoveryEvent(r)
		}
	}
}

// MessageStats implements Tracer.
func (m MultiTracer) MessageStats(s Messages) {
	for _, t := range m {
		if t != nil {
			t.MessageStats(s)
		}
	}
}
