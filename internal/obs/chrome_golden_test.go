package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current output")

// fakeClock is a deterministic clock that advances a fixed step per
// reading, so every timestamp in the exported trace is a function of
// the event sequence alone.
type fakeClock struct {
	t    time.Time
	step time.Duration
}

func (c *fakeClock) now() time.Time {
	t := c.t
	c.t = c.t.Add(c.step)
	return t
}

// goldenRecorder replays a fixed event script — sweep and S2 exchange
// phases on two dimensions, an idle round, a routed phase, recovery
// events with and without window/phase attribution, and SPMD traffic
// counters — through a Recorder on the fake clock.
func goldenRecorder() *Recorder {
	clock := &fakeClock{
		t:    time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC),
		step: 250 * time.Microsecond,
	}
	r := NewRecorder()
	r.SetNow(clock.now)

	phases := []Phase{
		{Index: 0, Kind: PhaseExchange, Dim: 1, S2: false, Cost: 1, Pairs: 4},
		{Index: 1, Kind: PhaseExchange, Dim: 2, S2: false, Cost: 1, Pairs: 4},
		{Index: 2, Kind: PhaseIdle, Dim: 0, S2: false, Cost: 2, Pairs: 0},
		{Index: 3, Kind: PhaseExchange, Dim: 1, S2: true, Cost: 1, Pairs: 3},
		{Index: 4, Kind: PhaseRouted, Dim: 2, S2: true, Cost: 3, Pairs: 2},
	}
	for _, p := range phases {
		r.PhaseBegin(p)
		r.PhaseEnd(p)
	}
	// End without a matching begin: recorded as an instant event.
	r.PhaseEnd(Phase{Index: 5, Kind: PhaseExchange, Dim: 1, Cost: 1, Pairs: 1})

	r.RecoveryEvent(Recovery{Kind: RecoveryCheckpoint, Lo: 0, Hi: 4, Phase: -1})
	r.RecoveryEvent(Recovery{Kind: RecoveryScrubDetect, Lo: -1, Hi: -1, Phase: 3, Rounds: 1})
	r.RecoveryEvent(Recovery{Kind: RecoveryRetransmit, Lo: -1, Hi: -1, Phase: 4, Rounds: 2, Count: 3})

	r.MessageStats(Messages{Phase: 0, Sent: 16, Relays: 4, Rounds: 2})
	r.MessageStats(Messages{Phase: 1, Sent: 12, Relays: 0, Rounds: 1})
	return r
}

// TestChromeTraceGolden locks the Chrome trace_event export format:
// a fixed event script on a deterministic clock must serialize
// byte-for-byte to the committed golden file. encoding/json emits map
// keys (the Args objects) in sorted order, so the bytes are stable.
// Regenerate deliberately with: go test ./internal/obs/ -run Golden -update
func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRecorder().WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	got := buf.Bytes()

	path := filepath.Join("testdata", "chrome_trace.golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file: %v (run with -update to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("Chrome trace drifted from golden file %s.\n--- got ---\n%s\n--- want ---\n%s",
			path, got, want)
	}
}

// TestChromeTraceDeterministic double-checks the property the golden
// test rests on: two identical event scripts export identical bytes.
func TestChromeTraceDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := goldenRecorder().WriteChromeTrace(&a); err != nil {
		t.Fatal(err)
	}
	if err := goldenRecorder().WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two identical event scripts exported different traces")
	}
}

// TestRecorderBreakdownOnFakeClock pins the wall-time aggregation on
// the fake clock: each begin/end pair spans exactly one step, so the
// per-bucket wall sums are known constants.
func TestRecorderBreakdownOnFakeClock(t *testing.T) {
	r := goldenRecorder()
	if got := r.Phases(); got != 6 {
		t.Fatalf("recorded %d phases, want 6", got)
	}
	// Every completed pair spans one 250µs step; the unmatched end is
	// an instant (0 wall).
	var wall time.Duration
	for _, st := range r.Breakdown() {
		wall += st.Wall
	}
	if want := 5 * 250 * time.Microsecond; wall != want {
		t.Fatalf("total breakdown wall = %v, want %v", wall, want)
	}
	if got, want := r.RoundTotal(), 1+1+2+1+3+1; got != want {
		t.Fatalf("RoundTotal = %d, want %d", got, want)
	}
	if got := r.RecoveryRounds(); got != 3 {
		t.Fatalf("RecoveryRounds = %d, want 3", got)
	}
	if got := r.RecoveryCount(RecoveryRetransmit); got != 3 {
		t.Fatalf("RecoveryCount(retransmit) = %d, want 3", got)
	}
}
