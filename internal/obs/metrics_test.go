package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	m := NewMetrics()
	c := m.Counter("hits")
	c.Inc()
	c.Add(4)
	c.Add(-2) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if m.Counter("hits") != c {
		t.Fatal("counter not cached by name")
	}
	g := m.Gauge("level")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	m := NewMetrics()
	h := m.Histogram("rounds", []int64{1, 2, 4})
	for _, v := range []int64{1, 1, 2, 3, 4, 100} {
		h.Observe(v)
	}
	if got := h.Count(); got != 6 {
		t.Fatalf("count = %d, want 6", got)
	}
	if got := h.Sum(); got != 111 {
		t.Fatalf("sum = %d, want 111", got)
	}
	snap := m.Snapshot().Histograms["rounds"]
	want := []int64{2, 1, 2, 1} // <=1, <=2, <=4, +Inf
	for i, w := range want {
		if snap.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, snap.Counts[i], w, snap.Counts)
		}
	}
}

func TestHistogramRelayout(t *testing.T) {
	m := NewMetrics()
	m.Histogram("h", []int64{1, 2})
	if h2 := m.Histogram("h", []int64{1, 2}); h2 == nil {
		t.Fatal("same layout should return existing histogram")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on layout change")
		}
	}()
	m.Histogram("h", []int64{1, 3})
}

func TestHistogramBadBounds(t *testing.T) {
	m := NewMetrics()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-ascending bounds")
		}
	}()
	m.Histogram("bad", []int64{2, 1})
}

func TestSnapshotJSON(t *testing.T) {
	m := NewMetrics()
	m.Counter("a").Add(3)
	m.Gauge("b").Set(-1)
	m.Histogram("c", RoundBuckets).Observe(5)
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if back.Counters["a"] != 3 || back.Gauges["b"] != -1 {
		t.Fatalf("round-trip mismatch: %+v", back)
	}
	if back.Histograms["c"].Count != 1 {
		t.Fatalf("histogram round-trip mismatch: %+v", back.Histograms["c"])
	}
}

func TestMetricsConcurrent(t *testing.T) {
	m := NewMetrics()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				m.Counter("n").Inc()
				m.Histogram("h", RoundBuckets).Observe(int64(i % 10))
			}
		}()
	}
	wg.Wait()
	if got := m.Counter("n").Value(); got != 8000 {
		t.Fatalf("concurrent counter = %d, want 8000", got)
	}
	if got := m.Histogram("h", RoundBuckets).Count(); got != 8000 {
		t.Fatalf("concurrent histogram count = %d, want 8000", got)
	}
}

func TestCollector(t *testing.T) {
	c := NewCollector(nil)
	c.PhaseBegin(Phase{Index: 0}) // no-op
	c.PhaseEnd(Phase{Index: 0, Kind: PhaseExchange, S2: true, Cost: 1, Pairs: 8})
	c.PhaseEnd(Phase{Index: 1, Kind: PhaseRouted, Cost: 3, Pairs: 4})
	c.PhaseEnd(Phase{Index: 2, Kind: PhaseIdle, Cost: 1})
	c.RecoveryEvent(Recovery{Kind: RecoveryRetry, Rounds: 5})
	c.RecoveryEvent(Recovery{Kind: RecoveryStallWait, Count: 3})
	c.MessageStats(Messages{Sent: 10, Relays: 2, Rounds: 4})

	m := c.Metrics()
	checks := map[string]int64{
		"phases.total":        3,
		"phases.routed":       1,
		"phases.idle":         1,
		"rounds.total":        5,
		"rounds.s2":           1,
		"rounds.sweep":        4,
		"compare.ops":         12,
		"recovery.events":     4, // 1 retry + 3 stalls
		"recovery.rounds":     5,
		"recovery.retry":      1,
		"recovery.stall-wait": 3,
		"spmd.messages":       10,
		"spmd.relays":         2,
		"spmd.rounds":         4,
	}
	for name, want := range checks {
		if got := m.Counter(name).Value(); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if got := m.Histogram("phase.rounds", RoundBuckets).Count(); got != 3 {
		t.Errorf("phase.rounds count = %d, want 3", got)
	}
}

func TestCounterNames(t *testing.T) {
	m := NewMetrics()
	m.Counter("z")
	m.Counter("a")
	names := m.CounterNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "z" {
		t.Fatalf("names = %v, want [a z]", names)
	}
}
