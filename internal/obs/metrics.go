// Metrics registry: named counters, gauges and fixed-bucket histograms
// with a JSON-marshalable snapshot. Instruments are created once and
// cached by name; observation paths are lock-free (atomics over
// preallocated slots), so a hot loop can hold an instrument pointer and
// observe without touching the registry again.

package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d (d must be >= 0; negative deltas are
// ignored so a counter can never run backwards).
func (c *Counter) Add(d int64) {
	if d > 0 {
		c.v.Add(d)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable int64 level.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by d (may be negative).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts observations into a fixed, ascending bucket layout.
// An observation v lands in the first bucket with v <= bound; values
// above every bound land in the implicit +Inf bucket. The layout is
// frozen at creation so snapshots are always comparable.
type Histogram struct {
	bounds []int64        // ascending upper bounds
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	sum    atomic.Int64
	n      atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	// Binary search for the first bound >= v.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.n.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// RoundBuckets is the default bucket layout for per-phase round
// charges: single-hop phases land in the first bucket, routed phases
// spread over the rest.
var RoundBuckets = []int64{1, 2, 4, 8, 16, 32, 64, 128}

// ConvergenceBuckets is the default bucket layout for
// rounds-to-converge counts of randomized engines: powers of four from
// a handful of rounds up to the ~64k-round territory of heavily
// degraded runs.
var ConvergenceBuckets = []int64{4, 16, 64, 256, 1_024, 4_096, 16_384, 65_536}

// DurationBucketsNs is the default bucket layout for wall-clock phase
// durations, in nanoseconds (1µs .. ~1s, powers of four).
var DurationBucketsNs = []int64{
	1_000, 4_000, 16_000, 64_000, 256_000,
	1_024_000, 4_096_000, 16_384_000, 65_536_000, 262_144_000, 1_048_576_000,
}

// Metrics is a registry of named instruments. The zero value is not
// usable; call NewMetrics. All methods are safe for concurrent use.
type Metrics struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns (creating on first use) the named counter.
func (m *Metrics) Counter(name string) *Counter {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.counters[name]
	if !ok {
		c = &Counter{}
		m.counters[name] = c
	}
	return c
}

// Gauge returns (creating on first use) the named gauge.
func (m *Metrics) Gauge(name string) *Gauge {
	m.mu.Lock()
	defer m.mu.Unlock()
	g, ok := m.gauges[name]
	if !ok {
		g = &Gauge{}
		m.gauges[name] = g
	}
	return g
}

// Histogram returns (creating on first use) the named histogram with
// the given ascending bucket bounds. A second registration of the same
// name returns the existing histogram; it panics if the requested
// layout differs, since mixing layouts would corrupt the snapshot.
func (m *Metrics) Histogram(name string, bounds []int64) *Histogram {
	m.mu.Lock()
	defer m.mu.Unlock()
	if h, ok := m.histograms[name]; ok {
		if len(h.bounds) != len(bounds) {
			panic(fmt.Sprintf("obs: histogram %q re-registered with different layout", name))
		}
		for i := range bounds {
			if h.bounds[i] != bounds[i] {
				panic(fmt.Sprintf("obs: histogram %q re-registered with different layout", name))
			}
		}
		return h
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not ascending", name))
		}
	}
	h := &Histogram{
		bounds: append([]int64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	m.histograms[name] = h
	return h
}

// HistogramSnapshot is the frozen state of one histogram.
type HistogramSnapshot struct {
	// Bounds are the ascending upper bucket bounds; Counts has one more
	// entry than Bounds (the +Inf bucket).
	Bounds []int64 `json:"bounds"`
	Counts []int64 `json:"counts"`
	Sum    int64   `json:"sum"`
	Count  int64   `json:"count"`
}

// Snapshot is a point-in-time, JSON-marshalable copy of a registry.
// Map iteration order is irrelevant: encoding/json sorts keys.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies the registry's current values.
func (m *Metrics) Snapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Snapshot{}
	if len(m.counters) > 0 {
		s.Counters = make(map[string]int64, len(m.counters))
		for name, c := range m.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(m.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(m.gauges))
		for name, g := range m.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(m.histograms) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(m.histograms))
		for name, h := range m.histograms {
			hs := HistogramSnapshot{
				Bounds: append([]int64(nil), h.bounds...),
				Counts: make([]int64, len(h.counts)),
				Sum:    h.Sum(),
				Count:  h.Count(),
			}
			for i := range h.counts {
				hs.Counts[i] = h.counts[i].Load()
			}
			s.Histograms[name] = hs
		}
	}
	return s
}

// WriteJSON writes the registry snapshot as indented JSON.
func (m *Metrics) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(m.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// CounterNames returns the registered counter names, sorted.
func (m *Metrics) CounterNames() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.counters))
	for name := range m.counters {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Collector is a Tracer that folds events into a Metrics registry: the
// bridge between the event stream and long-lived aggregates. Metric
// names are stable; see the package tests for the full set.
type Collector struct {
	m *Metrics

	phases       *Counter
	routed       *Counter
	idle         *Counter
	rounds       *Counter
	s2Rounds     *Counter
	sweepRounds  *Counter
	pairs        *Counter
	phaseRounds  *Histogram
	recRounds    *Counter
	recEvents    *Counter
	msgSent      *Counter
	msgRelays    *Counter
	msgRounds    *Counter
	recoveryKind [RecoveryUnrecoverable + 1]*Counter
}

// NewCollector returns a Collector feeding m (NewMetrics() when nil).
func NewCollector(m *Metrics) *Collector {
	if m == nil {
		m = NewMetrics()
	}
	c := &Collector{
		m:           m,
		phases:      m.Counter("phases.total"),
		routed:      m.Counter("phases.routed"),
		idle:        m.Counter("phases.idle"),
		rounds:      m.Counter("rounds.total"),
		s2Rounds:    m.Counter("rounds.s2"),
		sweepRounds: m.Counter("rounds.sweep"),
		pairs:       m.Counter("compare.ops"),
		phaseRounds: m.Histogram("phase.rounds", RoundBuckets),
		recRounds:   m.Counter("recovery.rounds"),
		recEvents:   m.Counter("recovery.events"),
		msgSent:     m.Counter("spmd.messages"),
		msgRelays:   m.Counter("spmd.relays"),
		msgRounds:   m.Counter("spmd.rounds"),
	}
	for k := RecoveryCheckpoint; k <= RecoveryUnrecoverable; k++ {
		c.recoveryKind[k] = m.Counter("recovery." + k.String())
	}
	return c
}

// Metrics returns the registry the collector feeds.
func (c *Collector) Metrics() *Metrics { return c.m }

// PhaseBegin implements Tracer (all aggregation happens at PhaseEnd).
func (c *Collector) PhaseBegin(Phase) {}

// PhaseEnd implements Tracer.
func (c *Collector) PhaseEnd(p Phase) {
	c.phases.Inc()
	switch p.Kind {
	case PhaseRouted:
		c.routed.Inc()
	case PhaseIdle:
		c.idle.Inc()
	}
	c.rounds.Add(int64(p.Cost))
	if p.S2 {
		c.s2Rounds.Add(int64(p.Cost))
	} else {
		c.sweepRounds.Add(int64(p.Cost))
	}
	c.pairs.Add(int64(p.Pairs))
	c.phaseRounds.Observe(int64(p.Cost))
}

// RecoveryEvent implements Tracer.
func (c *Collector) RecoveryEvent(r Recovery) {
	c.recEvents.Add(int64(r.N()))
	c.recRounds.Add(int64(r.Rounds))
	if int(r.Kind) < len(c.recoveryKind) {
		c.recoveryKind[r.Kind].Add(int64(r.N()))
	}
}

// MessageStats implements Tracer.
func (c *Collector) MessageStats(s Messages) {
	c.msgSent.Add(int64(s.Sent))
	c.msgRelays.Add(int64(s.Relays))
	c.msgRounds.Add(int64(s.Rounds))
}
