package obs

import "testing"

func TestKindStrings(t *testing.T) {
	phaseWant := map[PhaseKind]string{
		PhaseExchange: "exchange",
		PhaseRouted:   "routed",
		PhaseIdle:     "idle",
		PhaseKind(99): "phase?",
	}
	for k, w := range phaseWant {
		if got := k.String(); got != w {
			t.Errorf("PhaseKind(%d) = %q, want %q", k, got, w)
		}
	}
	// Every declared recovery kind must have a distinct, non-fallback
	// name (the Collector derives metric names from them).
	seen := map[string]bool{}
	for k := RecoveryCheckpoint; k <= RecoveryUnrecoverable; k++ {
		s := k.String()
		if s == "recovery?" {
			t.Errorf("RecoveryKind(%d) has no name", k)
		}
		if seen[s] {
			t.Errorf("duplicate recovery kind name %q", s)
		}
		seen[s] = true
	}
	if got := RecoveryKind(99).String(); got != "recovery?" {
		t.Errorf("unknown recovery kind = %q", got)
	}
}

func TestRecoveryN(t *testing.T) {
	if (Recovery{}).N() != 1 {
		t.Fatal("zero Count must mean multiplicity 1")
	}
	if (Recovery{Count: 5}).N() != 5 {
		t.Fatal("explicit Count must be respected")
	}
}

// captureTracer records raw event counts for fan-out tests.
type captureTracer struct {
	begins, ends, recoveries, messages int
}

func (c *captureTracer) PhaseBegin(Phase)       { c.begins++ }
func (c *captureTracer) PhaseEnd(Phase)         { c.ends++ }
func (c *captureTracer) RecoveryEvent(Recovery) { c.recoveries++ }
func (c *captureTracer) MessageStats(Messages)  { c.messages++ }

func TestMultiTracerFanOut(t *testing.T) {
	a, b := &captureTracer{}, &captureTracer{}
	mt := MultiTracer{a, nil, b} // nil elements are skipped
	mt.PhaseBegin(Phase{})
	mt.PhaseEnd(Phase{})
	mt.PhaseEnd(Phase{})
	mt.RecoveryEvent(Recovery{})
	mt.MessageStats(Messages{})
	for _, c := range []*captureTracer{a, b} {
		if c.begins != 1 || c.ends != 2 || c.recoveries != 1 || c.messages != 1 {
			t.Fatalf("fan-out mismatch: %+v", c)
		}
	}
}
