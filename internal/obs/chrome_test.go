package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// feed pushes a small synthetic run through a recorder.
func feed(r *Recorder) {
	for i := 0; i < 3; i++ {
		p := Phase{Index: i, Kind: PhaseExchange, Dim: 1 + i%2, S2: i < 2, Cost: 1, Pairs: 4}
		r.PhaseBegin(p)
		r.PhaseEnd(p)
	}
	routed := Phase{Index: 3, Kind: PhaseRouted, Dim: 2, Cost: 3, Pairs: 2}
	r.PhaseBegin(routed)
	r.PhaseEnd(routed)
	r.RecoveryEvent(Recovery{Kind: RecoveryCheckpoint, Lo: 0, Hi: 4, Phase: -1})
	r.RecoveryEvent(Recovery{Kind: RecoveryReplay, Lo: 0, Hi: 4, Phase: -1, Rounds: 6})
	r.MessageStats(Messages{Phase: 0, Sent: 8, Relays: 2, Rounds: 1})
}

func TestRecorderTotals(t *testing.T) {
	r := NewRecorder()
	feed(r)
	if got := r.Phases(); got != 4 {
		t.Fatalf("phases = %d, want 4", got)
	}
	if got := r.RoundTotal(); got != 6 {
		t.Fatalf("round total = %d, want 6", got)
	}
	if got := r.RecoveryRounds(); got != 6 {
		t.Fatalf("recovery rounds = %d, want 6", got)
	}
	if got := r.RecoveryCount(RecoveryCheckpoint); got != 1 {
		t.Fatalf("checkpoint count = %d, want 1", got)
	}
	if got := r.RecoveryCount(RecoveryRetry); got != 0 {
		t.Fatalf("retry count = %d, want 0", got)
	}
}

func TestRecorderBreakdown(t *testing.T) {
	r := NewRecorder()
	feed(r)
	stats := r.Breakdown()
	total := 0
	for _, st := range stats {
		total += st.Rounds
	}
	if total != r.RoundTotal() {
		t.Fatalf("breakdown rounds %d != total %d", total, r.RoundTotal())
	}
	// Buckets: (exchange,1,s2), (exchange,2,s2), (exchange,1..2,sweep?) —
	// feed produces dims 1,2,1 with S2 true,true,false plus routed d2.
	if len(stats) != 4 {
		t.Fatalf("breakdown buckets = %d, want 4: %+v", len(stats), stats)
	}
	// Sorted by rounds descending: the routed phase (3 rounds) first.
	if stats[0].Kind != PhaseRouted || stats[0].Rounds != 3 {
		t.Fatalf("top bucket = %+v, want routed/3", stats[0])
	}
	var buf bytes.Buffer
	if err := r.WriteBreakdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"routed", "exchange", "total", "s2", "sweep"} {
		if !strings.Contains(out, want) {
			t.Fatalf("breakdown table missing %q:\n%s", want, out)
		}
	}
}

func TestChromeTraceValid(t *testing.T) {
	r := NewRecorder()
	feed(r)
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	var complete, instant, counter, meta int
	roundSum := 0
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			complete++
			roundSum += int(ev.Args["rounds"].(float64))
			if ev.Ts < 0 || ev.Dur < 0 {
				t.Fatalf("negative ts/dur: %+v", ev)
			}
		case "i":
			instant++
		case "C":
			counter++
		case "M":
			meta++
		default:
			t.Fatalf("unexpected event phase %q", ev.Ph)
		}
	}
	if complete != 4 {
		t.Fatalf("complete events = %d, want 4", complete)
	}
	if roundSum != r.RoundTotal() {
		t.Fatalf("trace round sum %d != recorder total %d", roundSum, r.RoundTotal())
	}
	if instant != 2 || counter != 1 || meta < 2 {
		t.Fatalf("instant=%d counter=%d meta=%d", instant, counter, meta)
	}
}

func TestRecorderEndWithoutBegin(t *testing.T) {
	r := NewRecorder()
	r.PhaseEnd(Phase{Index: 7, Kind: PhaseExchange, Cost: 1})
	if got := r.Phases(); got != 1 {
		t.Fatalf("phases = %d, want 1 (recorded as instant)", got)
	}
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
}
