// Recorder: an in-memory Tracer that timestamps events and exports the
// run as Chrome trace_event JSON (chrome://tracing, Perfetto, speedscope
// all open it) plus a per-phase round/time breakdown table.

package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// recorded is one completed phase with wall-clock timing.
type recorded struct {
	Phase
	start time.Time
	dur   time.Duration
}

// recRecovery is one recovery event with its receipt time.
type recRecovery struct {
	Recovery
	at time.Time
}

// recMessages is one message-stats event with its receipt time.
type recMessages struct {
	Messages
	at time.Time
}

// Recorder collects timestamped events. It is safe for concurrent use,
// but phase begin/end matching is keyed by op index, so feed it from
// one replay at a time (use one Recorder per run; they are cheap).
type Recorder struct {
	mu       sync.Mutex
	start    time.Time
	nowFn    func() time.Time  // nil means time.Now
	open     map[int]time.Time // op index -> begin time
	phases   []recorded
	recovery []recRecovery
	messages []recMessages
}

// NewRecorder returns an empty recorder; its time origin is set on the
// first event.
func NewRecorder() *Recorder {
	return &Recorder{open: make(map[int]time.Time)}
}

// SetNow replaces the recorder's clock (time.Now by default). Feeding a
// deterministic clock makes the exported trace byte-for-byte
// reproducible — the golden-file test uses this; production code never
// needs it. Call before the first event.
func (r *Recorder) SetNow(fn func() time.Time) {
	r.mu.Lock()
	r.nowFn = fn
	r.mu.Unlock()
}

// now stamps the origin lazily so traces start near zero. Callers hold
// r.mu.
func (r *Recorder) now() time.Time {
	t := time.Now()
	if r.nowFn != nil {
		t = r.nowFn()
	}
	if r.start.IsZero() {
		r.start = t
	}
	return t
}

// PhaseBegin implements Tracer.
func (r *Recorder) PhaseBegin(p Phase) {
	r.mu.Lock()
	r.open[p.Index] = r.now()
	r.mu.Unlock()
}

// PhaseEnd implements Tracer.
func (r *Recorder) PhaseEnd(p Phase) {
	r.mu.Lock()
	end := r.now()
	begin, ok := r.open[p.Index]
	if !ok {
		begin = end // end without begin: record as instant
	} else {
		delete(r.open, p.Index)
	}
	r.phases = append(r.phases, recorded{Phase: p, start: begin, dur: end.Sub(begin)})
	r.mu.Unlock()
}

// RecoveryEvent implements Tracer.
func (r *Recorder) RecoveryEvent(ev Recovery) {
	r.mu.Lock()
	r.recovery = append(r.recovery, recRecovery{Recovery: ev, at: r.now()})
	r.mu.Unlock()
}

// MessageStats implements Tracer.
func (r *Recorder) MessageStats(s Messages) {
	r.mu.Lock()
	r.messages = append(r.messages, recMessages{Messages: s, at: r.now()})
	r.mu.Unlock()
}

// Phases returns the number of completed phase events.
func (r *Recorder) Phases() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.phases)
}

// RoundTotal sums the round charges of every recorded phase — the
// quantity that must equal the replay clock's Rounds on a fault-free
// run (recovery rounds are reported separately, see RecoveryRounds).
func (r *Recorder) RoundTotal() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	total := 0
	for i := range r.phases {
		total += r.phases[i].Cost
	}
	return total
}

// RecoveryRounds sums the recovery round charges of every recovery
// event.
func (r *Recorder) RecoveryRounds() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	total := 0
	for i := range r.recovery {
		total += r.recovery[i].Rounds
	}
	return total
}

// RecoveryCount returns the total multiplicity of recovery events of
// the given kind.
func (r *Recorder) RecoveryCount(kind RecoveryKind) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for i := range r.recovery {
		if r.recovery[i].Kind == kind {
			n += r.recovery[i].N()
		}
	}
	return n
}

// PhaseStat is one row of the per-phase breakdown: all phases sharing a
// (kind, dimension, attribution) bucket.
type PhaseStat struct {
	Kind   PhaseKind     `json:"-"`
	KindS  string        `json:"kind"`
	Dim    int           `json:"dim"`
	S2     bool          `json:"s2"`
	Phases int           `json:"phases"`
	Rounds int           `json:"rounds"`
	Pairs  int           `json:"pairs"`
	Wall   time.Duration `json:"wallNs"`
}

// Breakdown aggregates the recorded phases per (kind, dim, S2) bucket,
// ordered by rounds descending — the table that gets diffed against the
// paper's predicted S_r(N) split.
func (r *Recorder) Breakdown() []PhaseStat {
	r.mu.Lock()
	defer r.mu.Unlock()
	type key struct {
		kind PhaseKind
		dim  int
		s2   bool
	}
	agg := make(map[key]*PhaseStat)
	for i := range r.phases {
		p := &r.phases[i]
		k := key{p.Kind, p.Dim, p.S2}
		st, ok := agg[k]
		if !ok {
			st = &PhaseStat{Kind: p.Kind, KindS: p.Kind.String(), Dim: p.Dim, S2: p.S2}
			agg[k] = st
		}
		st.Phases++
		st.Rounds += p.Cost
		st.Pairs += p.Pairs
		st.Wall += p.dur
	}
	out := make([]PhaseStat, 0, len(agg))
	for _, st := range agg {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rounds != out[j].Rounds {
			return out[i].Rounds > out[j].Rounds
		}
		if out[i].Dim != out[j].Dim {
			return out[i].Dim < out[j].Dim
		}
		return out[i].KindS < out[j].KindS
	})
	return out
}

// WriteBreakdown renders the per-phase breakdown as an aligned text
// table.
func (r *Recorder) WriteBreakdown(w io.Writer) error {
	stats := r.Breakdown()
	totalRounds := 0
	var totalWall time.Duration
	for _, st := range stats {
		totalRounds += st.Rounds
		totalWall += st.Wall
	}
	if _, err := fmt.Fprintf(w, "%-10s %4s %-6s %8s %8s %10s %12s\n",
		"kind", "dim", "stage", "phases", "rounds", "pairs", "wall"); err != nil {
		return err
	}
	for _, st := range stats {
		stage := "sweep"
		if st.S2 {
			stage = "s2"
		}
		if _, err := fmt.Fprintf(w, "%-10s %4d %-6s %8d %8d %10d %12v\n",
			st.KindS, st.Dim, stage, st.Phases, st.Rounds, st.Pairs,
			st.Wall.Round(time.Microsecond)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%-10s %4s %-6s %8s %8d %10s %12v\n",
		"total", "", "", "", totalRounds, "", totalWall.Round(time.Microsecond))
	return err
}

// traceEvent is one entry of the Chrome trace_event JSON array.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`            // microseconds
	Dur  float64        `json:"dur,omitempty"` // microseconds, "X" events
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
	S    string         `json:"s,omitempty"` // instant scope
}

// chromeTrace is the trace_event JSON object format (the array format
// is also valid, but the object form carries metadata).
type chromeTrace struct {
	TraceEvents     []traceEvent   `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// micros converts a wall-clock time to trace microseconds from origin.
func (r *Recorder) micros(t time.Time) float64 {
	return float64(t.Sub(r.start)) / float64(time.Microsecond)
}

// WriteChromeTrace exports the recorded events in Chrome trace_event
// JSON format: one complete ("X") event per phase on a thread per
// dimension (idle rounds on tid 0), instant ("i") events for recovery,
// and counter rows for message traffic. Open with chrome://tracing,
// https://ui.perfetto.dev, or speedscope.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	tr := chromeTrace{
		DisplayTimeUnit: "ms",
		OtherData: map[string]any{
			"generator": "productsort cmd/bench -trace",
			"phases":    len(r.phases),
		},
	}
	tr.TraceEvents = append(tr.TraceEvents,
		traceEvent{Name: "process_name", Ph: "M", Pid: 1, Args: map[string]any{"name": "productsort replay"}},
		traceEvent{Name: "thread_name", Ph: "M", Pid: 1, Tid: 0, Args: map[string]any{"name": "idle / mixed"}})
	seenDims := map[int]bool{}
	for i := range r.phases {
		p := &r.phases[i]
		if p.Dim > 0 && !seenDims[p.Dim] {
			seenDims[p.Dim] = true
			tr.TraceEvents = append(tr.TraceEvents, traceEvent{
				Name: "thread_name", Ph: "M", Pid: 1, Tid: p.Dim,
				Args: map[string]any{"name": fmt.Sprintf("dimension %d", p.Dim)},
			})
		}
		stage := "sweep"
		if p.S2 {
			stage = "s2"
		}
		tr.TraceEvents = append(tr.TraceEvents, traceEvent{
			Name: fmt.Sprintf("%s d%d", p.Kind, p.Dim),
			Cat:  stage,
			Ph:   "X",
			Ts:   r.micros(p.start),
			Dur:  float64(p.dur) / float64(time.Microsecond),
			Pid:  1,
			Tid:  p.Dim,
			Args: map[string]any{
				"op":     p.Index,
				"kind":   p.Kind.String(),
				"dim":    p.Dim,
				"stage":  stage,
				"rounds": p.Cost,
				"pairs":  p.Pairs,
			},
		})
	}
	for i := range r.recovery {
		ev := &r.recovery[i]
		args := map[string]any{
			"kind":   ev.Kind.String(),
			"rounds": ev.Rounds,
			"count":  ev.N(),
		}
		if ev.Lo >= 0 || ev.Hi >= 0 {
			args["window"] = fmt.Sprintf("[%d,%d)", ev.Lo, ev.Hi)
		}
		if ev.Phase >= 0 {
			args["op"] = ev.Phase
		}
		tr.TraceEvents = append(tr.TraceEvents, traceEvent{
			Name: "recovery: " + ev.Kind.String(),
			Cat:  "recovery",
			Ph:   "i",
			S:    "p",
			Ts:   r.micros(ev.at),
			Pid:  1,
			Tid:  0,
			Args: args,
		})
	}
	for i := range r.messages {
		ev := &r.messages[i]
		tr.TraceEvents = append(tr.TraceEvents, traceEvent{
			Name: "spmd traffic",
			Ph:   "C",
			Ts:   r.micros(ev.at),
			Pid:  1,
			Tid:  0,
			Args: map[string]any{"sent": ev.Sent, "relays": ev.Relays},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(tr)
}
