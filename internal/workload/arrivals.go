// Arrival processes and request-size distributions for serving
// experiments: open-loop load for cmd/bench -serve. Deterministic under
// a fixed seed, like the key generators.

package workload

import (
	"fmt"
	"math/rand"
	"time"
)

// PoissonArrivals returns n inter-arrival gaps of a Poisson process
// with the given mean rate (requests per second): exponentially
// distributed, deterministic under seed. gaps[i] is the wait before
// request i; a sender walks next = next + gaps[i].
func PoissonArrivals(n int, perSec float64, seed int64) []time.Duration {
	if n < 0 || perSec <= 0 {
		panic(fmt.Sprintf("workload: PoissonArrivals(%d, %g)", n, perSec))
	}
	rng := rand.New(rand.NewSource(seed))
	gaps := make([]time.Duration, n)
	for i := range gaps {
		gaps[i] = time.Duration(rng.ExpFloat64() / perSec * float64(time.Second))
	}
	return gaps
}

// BurstyArrivals returns n inter-arrival gaps of an on-off modulated
// Poisson process: the rate alternates between burstRate (for onFrac of
// each period) and baseRate (the rest), switching on a fixed wall-clock
// phase so bursts recur every period. onFrac must lie in (0, 1) and
// burstRate should exceed baseRate for the name to mean anything.
func BurstyArrivals(n int, baseRate, burstRate, onFrac float64, period time.Duration, seed int64) []time.Duration {
	if n < 0 || baseRate <= 0 || burstRate <= 0 || onFrac <= 0 || onFrac >= 1 || period <= 0 {
		panic(fmt.Sprintf("workload: BurstyArrivals(%d, %g, %g, %g, %v)", n, baseRate, burstRate, onFrac, period))
	}
	rng := rand.New(rand.NewSource(seed))
	gaps := make([]time.Duration, n)
	on := time.Duration(onFrac * float64(period))
	var t time.Duration // virtual clock, phase within period decides the rate
	for i := range gaps {
		rate := baseRate
		if t%period < on {
			rate = burstRate
		}
		gap := time.Duration(rng.ExpFloat64() / rate * float64(time.Second))
		gaps[i] = gap
		t += gap
	}
	return gaps
}

// ZipfSizes returns n request sizes in [min, max] drawn from a Zipf
// distribution with exponent s > 1: mostly small requests with a heavy
// tail of large ones, the shape multi-tenant sort traffic has.
// Deterministic under seed.
func ZipfSizes(n, min, max int, s float64, seed int64) []int {
	if n < 0 || min < 1 || max < min || s <= 1 {
		panic(fmt.Sprintf("workload: ZipfSizes(%d, %d, %d, %g)", n, min, max, s))
	}
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, s, 1, uint64(max-min))
	sizes := make([]int, n)
	for i := range sizes {
		sizes[i] = min + int(z.Uint64())
	}
	return sizes
}
