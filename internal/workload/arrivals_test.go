package workload

import (
	"testing"
	"time"
)

// TestPoissonArrivalsDeterministic: same (n, rate, seed) → identical
// gaps; a different seed diverges.
func TestPoissonArrivalsDeterministic(t *testing.T) {
	a := PoissonArrivals(256, 1000, 42)
	b := PoissonArrivals(256, 1000, 42)
	if len(a) != 256 {
		t.Fatalf("len = %d, want 256", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("gap %d differs under the same seed: %v vs %v", i, a[i], b[i])
		}
	}
	c := PoissonArrivals(256, 1000, 43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical arrivals")
	}
}

// TestPoissonArrivalsMean: the empirical mean gap approximates 1/rate.
func TestPoissonArrivalsMean(t *testing.T) {
	const rate = 5000.0
	gaps := PoissonArrivals(20000, rate, 7)
	var sum time.Duration
	for _, g := range gaps {
		if g < 0 {
			t.Fatalf("negative gap %v", g)
		}
		sum += g
	}
	mean := float64(sum) / float64(len(gaps))
	want := float64(time.Second) / rate
	if mean < 0.9*want || mean > 1.1*want {
		t.Fatalf("mean gap %v, want about %v", time.Duration(mean), time.Duration(want))
	}
}

// TestBurstyArrivalsModulates: the on-phase runs hotter than the
// off-phase, and the whole trace is seed-deterministic.
func TestBurstyArrivalsModulates(t *testing.T) {
	const (
		base   = 500.0
		burst  = 20000.0
		onFrac = 0.25
	)
	period := 50 * time.Millisecond
	a := BurstyArrivals(20000, base, burst, onFrac, period, 11)
	b := BurstyArrivals(20000, base, burst, onFrac, period, 11)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("gap %d differs under the same seed", i)
		}
	}
	// Replay the virtual clock and bin arrivals by phase.
	on := time.Duration(onFrac * float64(period))
	var tm time.Duration
	var onCount, offCount int
	for _, g := range a {
		if tm%period < on {
			onCount++
		} else {
			offCount++
		}
		tm += g
	}
	// The on-phase covers 25% of time at 40× the rate: the clear
	// majority of arrivals must land there.
	if onCount <= offCount {
		t.Fatalf("on-phase arrivals %d <= off-phase %d; no burst detected", onCount, offCount)
	}
}

// TestZipfSizes: bounds hold, the head dominates, and the draw is
// seed-deterministic.
func TestZipfSizes(t *testing.T) {
	sizes := ZipfSizes(10000, 1, 64, 1.2, 3)
	again := ZipfSizes(10000, 1, 64, 1.2, 3)
	small := 0
	for i, s := range sizes {
		if s < 1 || s > 64 {
			t.Fatalf("size %d out of [1, 64]", s)
		}
		if s != again[i] {
			t.Fatalf("size %d differs under the same seed", i)
		}
		if s <= 8 {
			small++
		}
	}
	if small < len(sizes)/2 {
		t.Fatalf("only %d/%d sizes <= 8; distribution not head-heavy", small, len(sizes))
	}
}

// TestArrivalValidation: bad parameters panic rather than silently
// generating garbage load.
func TestArrivalValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"poisson-rate":   func() { PoissonArrivals(1, 0, 1) },
		"bursty-onfrac":  func() { BurstyArrivals(1, 1, 2, 1.5, time.Second, 1) },
		"bursty-period":  func() { BurstyArrivals(1, 1, 2, 0.5, 0, 1) },
		"zipf-exponent":  func() { ZipfSizes(1, 1, 8, 1.0, 1) },
		"zipf-min":       func() { ZipfSizes(1, 0, 8, 1.5, 1) },
		"zipf-max-order": func() { ZipfSizes(1, 9, 8, 1.5, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}
