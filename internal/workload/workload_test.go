package workload

import (
	"testing"
)

func TestDeterminism(t *testing.T) {
	for _, name := range Names() {
		g, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		a := g(64, 42)
		b := g(64, 42)
		if len(a) != 64 || len(b) != 64 {
			t.Fatalf("%s: wrong length", name)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: not deterministic at %d", name, i)
			}
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	for _, name := range []string{"uniform", "permutation", "zero-one", "gaussianish"} {
		g, _ := ByName(name)
		a, b := g(128, 1), g(128, 2)
		same := true
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
		if same {
			t.Errorf("%s: seeds 1 and 2 give identical output", name)
		}
	}
}

func TestPermutationIsPermutation(t *testing.T) {
	ks := Permutation(50, 7)
	seen := make(map[Key]bool)
	for _, k := range ks {
		if k < 0 || k >= 50 || seen[k] {
			t.Fatalf("not a permutation: %v", ks)
		}
		seen[k] = true
	}
}

func TestSortedAndReverse(t *testing.T) {
	s := Sorted(5, 0)
	r := Reverse(5, 0)
	for i := 0; i < 5; i++ {
		if s[i] != Key(i) || r[i] != Key(4-i) {
			t.Fatalf("sorted/reverse wrong: %v %v", s, r)
		}
	}
}

func TestZeroOneOnlyBits(t *testing.T) {
	for _, g := range []Gen{ZeroOne, ZeroOneBalanced} {
		ks := g(100, 3)
		for _, k := range ks {
			if k != 0 && k != 1 {
				t.Fatalf("non-binary key %d", k)
			}
		}
	}
	// Balanced variant has exactly n/2 ones.
	ones := 0
	for _, k := range ZeroOneBalanced(100, 5) {
		if k == 1 {
			ones++
		}
	}
	if ones != 50 {
		t.Errorf("balanced has %d ones want 50", ones)
	}
}

func TestFewDistinct(t *testing.T) {
	distinct := make(map[Key]bool)
	for _, k := range FewDistinct(200, 9) {
		distinct[k] = true
	}
	if len(distinct) > 4 {
		t.Errorf("%d distinct values want ≤4", len(distinct))
	}
}

func TestOrganPipe(t *testing.T) {
	ks := OrganPipe(6, 0)
	want := []Key{0, 1, 2, 2, 1, 0}
	for i := range want {
		if ks[i] != want[i] {
			t.Fatalf("organ pipe %v want %v", ks, want)
		}
	}
}

func TestNearlySortedIsClose(t *testing.T) {
	ks := NearlySorted(64, 11)
	inversions := 0
	for i := 1; i < len(ks); i++ {
		if ks[i] < ks[i-1] {
			inversions++
		}
	}
	if inversions == 0 {
		t.Error("nearly-sorted is fully sorted (swaps had no effect?)")
	}
	if inversions > 16 {
		t.Errorf("nearly-sorted has %d adjacent inversions, too disordered", inversions)
	}
}

func TestZipfishSkew(t *testing.T) {
	ks := Zipfish(500, 7)
	small := 0
	for _, k := range ks {
		if k <= 2 {
			small++
		}
	}
	if small < 100 {
		t.Errorf("zipfish not head-heavy: %d/500 keys ≤ 2", small)
	}
}

func TestRunsHasSortedRuns(t *testing.T) {
	ks := Runs(200, 3)
	if len(ks) != 200 {
		t.Fatalf("length %d", len(ks))
	}
	ascSteps := 0
	for i := 1; i < len(ks); i++ {
		if ks[i] >= ks[i-1] {
			ascSteps++
		}
	}
	if ascSteps < 120 {
		t.Errorf("runs workload not run-structured: %d/199 ascending steps", ascSteps)
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestNamesSortedAndComplete(t *testing.T) {
	names := Names()
	if len(names) != 12 {
		t.Errorf("%d generators registered", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i] < names[i-1] {
			t.Error("names not sorted")
		}
	}
}
