// Package workload generates deterministic key sets for the experiments:
// the same (generator, size, seed) triple always yields the same keys,
// so every table in EXPERIMENTS.md is reproducible bit-for-bit.
package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"productsort/internal/simnet"
)

// Key aliases the machine's key type.
type Key = simnet.Key

// Gen produces n keys from a seed.
type Gen func(n int, seed int64) []Key

// Uniform returns uniformly random keys in [0, 4n).
func Uniform(n int, seed int64) []Key {
	rng := rand.New(rand.NewSource(seed))
	ks := make([]Key, n)
	for i := range ks {
		ks[i] = Key(rng.Intn(4*n + 1))
	}
	return ks
}

// Permutation returns a random permutation of 0..n-1: all keys distinct.
func Permutation(n int, seed int64) []Key {
	rng := rand.New(rand.NewSource(seed))
	ks := make([]Key, n)
	for i, p := range rng.Perm(n) {
		ks[i] = Key(p)
	}
	return ks
}

// Sorted returns 0..n-1 already in order (best case probe).
func Sorted(n int, _ int64) []Key {
	ks := make([]Key, n)
	for i := range ks {
		ks[i] = Key(i)
	}
	return ks
}

// Reverse returns n-1..0 (a classically hard input).
func Reverse(n int, _ int64) []Key {
	ks := make([]Key, n)
	for i := range ks {
		ks[i] = Key(n - 1 - i)
	}
	return ks
}

// NearlySorted returns 0..n-1 with about n/8 random adjacent swaps.
func NearlySorted(n int, seed int64) []Key {
	ks := Sorted(n, seed)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n/8; i++ {
		j := rng.Intn(n - 1)
		ks[j], ks[j+1] = ks[j+1], ks[j]
	}
	return ks
}

// FewDistinct returns keys drawn from only 4 distinct values.
func FewDistinct(n int, seed int64) []Key {
	rng := rand.New(rand.NewSource(seed))
	ks := make([]Key, n)
	for i := range ks {
		ks[i] = Key(rng.Intn(4))
	}
	return ks
}

// ZeroOne returns random 0-1 keys (for zero-one-principle experiments).
func ZeroOne(n int, seed int64) []Key {
	rng := rand.New(rand.NewSource(seed))
	ks := make([]Key, n)
	for i := range ks {
		ks[i] = Key(rng.Intn(2))
	}
	return ks
}

// ZeroOneBalanced returns a shuffled half-zeros, half-ones input: the
// hardest density for dirty-area experiments.
func ZeroOneBalanced(n int, seed int64) []Key {
	ks := make([]Key, n)
	for i := n / 2; i < n; i++ {
		ks[i] = 1
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(n, func(i, j int) { ks[i], ks[j] = ks[j], ks[i] })
	return ks
}

// OrganPipe returns 0,1,…,n/2,…,1,0: ascending then descending.
func OrganPipe(n int, _ int64) []Key {
	ks := make([]Key, n)
	for i := range ks {
		if i < n/2 {
			ks[i] = Key(i)
		} else {
			ks[i] = Key(n - 1 - i)
		}
	}
	return ks
}

// Gaussianish returns sums of three uniforms, giving a centered
// distribution with duplicates.
func Gaussianish(n int, seed int64) []Key {
	rng := rand.New(rand.NewSource(seed))
	ks := make([]Key, n)
	for i := range ks {
		ks[i] = Key(rng.Intn(n) + rng.Intn(n) + rng.Intn(n))
	}
	return ks
}

// Zipfish returns keys drawn from an approximate Zipf distribution
// (heavy head, long tail) — a common skewed-data stand-in.
func Zipfish(n int, seed int64) []Key {
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, 1.3, 1, uint64(4*n))
	ks := make([]Key, n)
	for i := range ks {
		ks[i] = Key(z.Uint64())
	}
	return ks
}

// Runs returns a concatenation of presorted runs of random lengths —
// the shape real merge inputs have.
func Runs(n int, seed int64) []Key {
	rng := rand.New(rand.NewSource(seed))
	ks := make([]Key, 0, n)
	for len(ks) < n {
		runLen := 1 + rng.Intn(n/4+1)
		if len(ks)+runLen > n {
			runLen = n - len(ks)
		}
		start := Key(rng.Intn(2 * n))
		for i := 0; i < runLen; i++ {
			ks = append(ks, start+Key(i))
		}
	}
	return ks
}

// ByName returns the named generator. Names match the -workload flags of
// the command-line tools.
func ByName(name string) (Gen, error) {
	g, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown generator %q (have %v)", name, Names())
	}
	return g, nil
}

var registry = map[string]Gen{
	"uniform":       Uniform,
	"permutation":   Permutation,
	"sorted":        Sorted,
	"reverse":       Reverse,
	"nearly-sorted": NearlySorted,
	"few-distinct":  FewDistinct,
	"zero-one":      ZeroOne,
	"zero-one-bal":  ZeroOneBalanced,
	"organ-pipe":    OrganPipe,
	"gaussianish":   Gaussianish,
	"zipfish":       Zipfish,
	"runs":          Runs,
}

// Names lists the registered generator names in sorted order.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
