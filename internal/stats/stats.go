// Package stats renders the experiment tables and figure series printed
// by cmd/bench and recorded in EXPERIMENTS.md: plain aligned text,
// deterministic, diff-friendly.
package stats

import (
	"fmt"
	"io"
	"strings"
)

// Table is a titled grid of cells with a header row.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
	Notes   []string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// Add appends a row; cells are formatted with %v. The cell count must
// match the column count.
func (t *Table) Add(cells ...any) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("stats: %d cells for %d columns", len(cells), len(t.Columns)))
	}
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// Note appends a footnote printed under the table.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Len returns the number of data rows.
func (t *Table) Len() int { return len(t.rows) }

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		return strings.Join(parts, "  ")
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
		fmt.Fprintf(w, "%s\n", strings.Repeat("=", len(t.Title)))
	}
	header := line(t.Columns)
	fmt.Fprintf(w, "%s\n%s\n", header, strings.Repeat("-", len(header)))
	for _, row := range t.rows {
		fmt.Fprintf(w, "%s\n", line(row))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Render(&sb)
	return sb.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Series is one curve of a figure: y values indexed by x labels.
type Series struct {
	Name string
	Xs   []string
	Ys   []float64
}

// Figure is a set of series over a shared x axis, rendered as a table
// plus an ASCII plot so trends are visible in a terminal.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []*Series
}

// NewFigure creates an empty figure.
func NewFigure(title, xlabel, ylabel string) *Figure {
	return &Figure{Title: title, XLabel: xlabel, YLabel: ylabel}
}

// AddSeries registers a named curve and returns it for appending points.
func (f *Figure) AddSeries(name string) *Series {
	s := &Series{Name: name}
	f.Series = append(f.Series, s)
	return s
}

// Point appends an (x, y) sample.
func (s *Series) Point(x string, y float64) {
	s.Xs = append(s.Xs, x)
	s.Ys = append(s.Ys, y)
}

// Render writes the figure as a data table followed by a bar sketch per
// series (log-free, linear scale).
func (f *Figure) Render(w io.Writer) {
	t := NewTable(f.Title, append([]string{f.XLabel}, seriesNames(f.Series)...)...)
	// Use the x axis of the longest series as the row spine.
	var spine []string
	for _, s := range f.Series {
		if len(s.Xs) > len(spine) {
			spine = s.Xs
		}
	}
	for i, x := range spine {
		cells := make([]any, 0, 1+len(f.Series))
		cells = append(cells, x)
		for _, s := range f.Series {
			if i < len(s.Ys) {
				cells = append(cells, s.Ys[i])
			} else {
				cells = append(cells, "-")
			}
		}
		t.Add(cells...)
	}
	t.Render(w)
	// ASCII sketch: one bar row per point, scaled to 48 columns.
	max := 0.0
	for _, s := range f.Series {
		for _, y := range s.Ys {
			if y > max {
				max = y
			}
		}
	}
	if max <= 0 {
		return
	}
	for _, s := range f.Series {
		fmt.Fprintf(w, "%s (%s)\n", s.Name, f.YLabel)
		for i, y := range s.Ys {
			bar := int(y / max * 48)
			fmt.Fprintf(w, "  %-8s |%s %.0f\n", s.Xs[i], strings.Repeat("#", bar), y)
		}
	}
	fmt.Fprintln(w)
}

// String renders the figure to a string.
func (f *Figure) String() string {
	var sb strings.Builder
	f.Render(&sb)
	return sb.String()
}

func seriesNames(ss []*Series) []string {
	names := make([]string, len(ss))
	for i, s := range ss {
		names[i] = s.Name
	}
	return names
}

// CSV writes the table as comma-separated values (header row first).
// Cells containing commas or quotes are quoted. Notes are omitted —
// CSV is for machines.
func (t *Table) CSV(w io.Writer) error {
	rows := append([][]string{t.Columns}, t.rows...)
	for _, row := range rows {
		for i, cell := range row {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if _, err := io.WriteString(w, csvQuote(cell)); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	return nil
}

func csvQuote(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return "\"" + strings.ReplaceAll(s, "\"", "\"\"") + "\""
}

// CSV writes the figure's data table as comma-separated values: the x
// column followed by one column per series.
func (f *Figure) CSV(w io.Writer) error {
	t := NewTable("", append([]string{f.XLabel}, seriesNames(f.Series)...)...)
	var spine []string
	for _, s := range f.Series {
		if len(s.Xs) > len(spine) {
			spine = s.Xs
		}
	}
	for i, x := range spine {
		cells := make([]any, 0, 1+len(f.Series))
		cells = append(cells, x)
		for _, s := range f.Series {
			if i < len(s.Ys) {
				cells = append(cells, s.Ys[i])
			} else {
				cells = append(cells, "")
			}
		}
		t.Add(cells...)
	}
	return t.CSV(w)
}
