package stats

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("Demo", "name", "value")
	tb.Add("alpha", 1)
	tb.Add("beta-long-name", 2.5)
	tb.Note("a note with %d parts", 2)
	out := tb.String()
	for _, want := range []string{"Demo", "name", "value", "alpha", "beta-long-name", "2.50", "note: a note with 2 parts"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if tb.Len() != 2 {
		t.Errorf("Len=%d", tb.Len())
	}
	// Columns aligned: header separator at least as wide as widest row.
	lines := strings.Split(out, "\n")
	if len(lines) < 5 {
		t.Fatalf("too few lines: %q", out)
	}
}

func TestTableAddPanicsOnArity(t *testing.T) {
	tb := NewTable("x", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("wrong arity accepted")
		}
	}()
	tb.Add("only-one")
}

func TestTableNoTitle(t *testing.T) {
	tb := NewTable("", "c1")
	tb.Add("v")
	out := tb.String()
	if strings.HasPrefix(out, "\n=") {
		t.Error("empty title still rendered underline")
	}
	if !strings.Contains(out, "c1") {
		t.Error("missing header")
	}
}

func TestFigureRender(t *testing.T) {
	f := NewFigure("Scaling", "N", "rounds")
	s1 := f.AddSeries("multiway")
	s1.Point("2", 10)
	s1.Point("4", 40)
	s1.Point("8", 160)
	s2 := f.AddSeries("baseline")
	s2.Point("2", 12)
	s2.Point("4", 50)
	out := f.String()
	for _, want := range []string{"Scaling", "multiway", "baseline", "160", "#"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure missing %q:\n%s", want, out)
		}
	}
	// The short series must render "-" for its missing row.
	if !strings.Contains(out, "-") {
		t.Error("missing placeholder for ragged series")
	}
}

func TestFigureEmptySeries(t *testing.T) {
	f := NewFigure("Empty", "x", "y")
	f.AddSeries("nothing")
	out := f.String() // must not panic or divide by zero
	if !strings.Contains(out, "Empty") {
		t.Error("missing title")
	}
}

func TestFigureZeroMax(t *testing.T) {
	f := NewFigure("Zeros", "x", "y")
	s := f.AddSeries("flat")
	s.Point("a", 0)
	out := f.String()
	if !strings.Contains(out, "Zeros") {
		t.Error("missing title")
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("T", "name", "value")
	tb.Add("plain", 1)
	tb.Add("with,comma", 2.5)
	tb.Add(`with"quote`, 3)
	var sb strings.Builder
	if err := tb.CSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"name,value\n", "plain,1\n", `"with,comma",2.50`, `"with""quote",3`} {
		if !strings.Contains(out, want) {
			t.Errorf("CSV missing %q:\n%s", want, out)
		}
	}
}

func TestFigureCSV(t *testing.T) {
	f := NewFigure("F", "x", "y")
	s1 := f.AddSeries("a")
	s1.Point("1", 10)
	s1.Point("2", 20)
	s2 := f.AddSeries("b")
	s2.Point("1", 30)
	var sb strings.Builder
	if err := f.CSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "x,a,b\n") || !strings.Contains(out, "2,20.00,\n") {
		t.Errorf("figure CSV:\n%s", out)
	}
}
