package core

import (
	"math/rand"
	"testing"

	"productsort/internal/graph"
	"productsort/internal/product"
	"productsort/internal/simnet"
)

// heteroNet builds a heterogeneous product from per-dimension factors
// (index 0 = dimension 1).
func heteroNet(t *testing.T, factors ...*graph.Graph) *product.Network {
	t.Helper()
	net, err := product.NewHetero(factors)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestHeteroSortRectGrids(t *testing.T) {
	cases := [][]*graph.Graph{
		// Rectangular 2-D grids: any radix pair works for r=2.
		{graph.Path(4), graph.Path(3)},
		{graph.Path(2), graph.Path(7)},
		{graph.Path(8), graph.Path(2)},
		// 3-D: radix(2) ≥ radix(3) required; radix(1) free.
		{graph.Path(2), graph.Path(5), graph.Path(3)},
		{graph.Path(6), graph.Path(4), graph.Path(4)},
		{graph.Path(3), graph.Path(3), graph.Path(2)},
		// 4-D.
		{graph.Path(2), graph.Path(4), graph.Path(3), graph.Path(2)},
	}
	for _, factors := range cases {
		net := heteroNet(t, factors...)
		s := New(nil)
		for seed := int64(0); seed < 3; seed++ {
			keys := randomKeys(net.Nodes(), seed)
			m := simnet.MustNew(net, keys)
			s.Sort(m)
			checkSortedPermutation(t, m, keys)
		}
	}
}

func TestHeteroSortMixedFactorTypes(t *testing.T) {
	cases := [][]*graph.Graph{
		{graph.Cycle(4), graph.Path(5), graph.K2()},
		{graph.Petersen(), graph.Cycle(4), graph.Path(3)},
		{graph.K2(), graph.CompleteBinaryTree(3), graph.Path(3)}, // routed factor at dim 2
		{graph.Star(4), graph.Complete(3), graph.K2()},
		{graph.DeBruijn(2, 2), graph.ShuffleExchange(2), graph.Path(3)},
	}
	for _, factors := range cases {
		net := heteroNet(t, factors...)
		s := New(nil)
		keys := randomKeys(net.Nodes(), 9)
		m := simnet.MustNew(net, keys)
		s.Sort(m)
		checkSortedPermutation(t, m, keys)
	}
}

// TestHeteroZeroOneExhaustive exhausts 0-1 inputs on small rectangular
// networks (the zero-one principle then covers all inputs).
func TestHeteroZeroOneExhaustive(t *testing.T) {
	cases := [][]*graph.Graph{
		{graph.Path(3), graph.Path(2), graph.Path(2)}, // 12 nodes
		{graph.Path(2), graph.Path(4)},                // 8 nodes
		{graph.Path(2), graph.Path(3), graph.Path(2)}, // 12 nodes
		{graph.Path(4), graph.Path(2), graph.Path(2)}, // 16 nodes
	}
	for _, factors := range cases {
		net := heteroNet(t, factors...)
		size := net.Nodes()
		s := New(nil)
		for mask := 0; mask < 1<<size; mask++ {
			keys := make([]simnet.Key, size)
			for i := range keys {
				keys[i] = simnet.Key(mask >> i & 1)
			}
			m := simnet.MustNew(net, keys)
			s.Sort(m)
			if !m.IsSortedSnake() {
				t.Fatalf("%s: 0-1 input %b unsorted: %v", net.Name(), mask, m.SnakeKeys())
			}
		}
	}
}

// TestHeteroPhaseCounts: the (r-1)² / (r-1)(r-2) structure is radix-
// independent.
func TestHeteroPhaseCounts(t *testing.T) {
	net := heteroNet(t, graph.Path(2), graph.Path(5), graph.Path(4), graph.Path(3))
	m := simnet.MustNew(net, randomKeys(net.Nodes(), 4))
	New(nil).Sort(m)
	clk := m.Clock()
	if clk.S2Phases != 9 || clk.SweepPhases != 6 {
		t.Errorf("hetero phases %d/%d want 9/6", clk.S2Phases, clk.SweepPhases)
	}
	if !m.IsSortedSnake() {
		t.Error("unsorted")
	}
}

// TestHeteroDirtyWindowBound: the generalized Lemma 1 bound N₁·N_k
// holds on 0-1 inputs.
func TestHeteroDirtyWindowBound(t *testing.T) {
	factors := []*graph.Graph{graph.Path(3), graph.Path(4), graph.Path(4)}
	net := heteroNet(t, factors...)
	n1, nk := 3, 4
	rng := rand.New(rand.NewSource(23))
	s := New(nil)
	for trial := 0; trial < 40; trial++ {
		keys := make([]simnet.Key, net.Nodes())
		for i := range keys {
			keys[i] = simnet.Key(rng.Intn(2))
		}
		m := simnet.MustNew(net, keys)
		s.Engine.Sort(m, 1, 2, func(int) bool { return true })
		s.MergeSkipTopClean(m, 3)
		if w := DirtyWindow(m.SnakeKeys()); w > n1*nk {
			t.Fatalf("trial %d: window %d > N1*Nk=%d", trial, w, n1*nk)
		}
	}
}

func TestValidateRadicesPanics(t *testing.T) {
	// radix(3)=4 > radix(2)=3: invalid.
	net := heteroNet(t, graph.Path(5), graph.Path(3), graph.Path(4))
	m := simnet.MustNew(net, randomKeys(net.Nodes(), 1))
	defer func() {
		if recover() == nil {
			t.Fatal("invalid radix order accepted")
		}
	}()
	New(nil).Sort(m)
}

func TestValidateRadicesAcceptsValid(t *testing.T) {
	ValidateRadices(heteroNet(t, graph.Path(2), graph.Path(5), graph.Path(5), graph.Path(2)))
	ValidateRadices(product.MustNew(graph.Path(3), 4))
}

// TestHeteroAutoEngineMix: with a K2 at dimensions 1 and 2 the auto
// engine picks the 3-round sorter for the initial sort but shearsort
// for merge base cases over bigger dims.
func TestHeteroAutoEngineMix(t *testing.T) {
	net := heteroNet(t, graph.K2(), graph.K2(), graph.K2())
	keys := randomKeys(8, 2)
	m := simnet.MustNew(net, keys)
	New(nil).Sort(m)
	checkSortedPermutation(t, m, keys)
	// All dims are K2 here, so this must cost exactly the hypercube
	// closed form for r=3: 14 rounds.
	if m.Clock().Rounds != 14 {
		t.Errorf("hetero-all-K2 rounds %d want 14", m.Clock().Rounds)
	}
}
