package core

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"productsort/internal/graph"
	"productsort/internal/product"
	"productsort/internal/simnet"
	"productsort/internal/sort2d"
)

func randomKeys(n int, seed int64) []simnet.Key {
	rng := rand.New(rand.NewSource(seed))
	ks := make([]simnet.Key, n)
	for i := range ks {
		ks[i] = simnet.Key(rng.Intn(10 * n))
	}
	return ks
}

// checkSortedPermutation verifies the machine holds exactly the multiset
// of the input keys, in nondecreasing snake order.
func checkSortedPermutation(t *testing.T, m *simnet.Machine, input []simnet.Key) {
	t.Helper()
	if !m.IsSortedSnake() {
		t.Fatalf("not snake-sorted: %v", m.SnakeKeys())
	}
	got := m.SnakeKeys()
	want := append([]simnet.Key(nil), input...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("key multiset changed at snake pos %d: got %d want %d", i, got[i], want[i])
		}
	}
}

func TestSortRandomAcrossNetworks(t *testing.T) {
	cases := []struct {
		factor *graph.Graph
		r      int
	}{
		{graph.Path(3), 2},
		{graph.Path(3), 3},
		{graph.Path(3), 4},
		{graph.Path(4), 3},
		{graph.Path(5), 3},
		{graph.Cycle(4), 3},
		{graph.Cycle(5), 2},
		{graph.K2(), 2},
		{graph.K2(), 5},
		{graph.K2(), 7},
		{graph.Petersen(), 2},
		{graph.Complete(3), 3},
		{graph.DeBruijn(2, 2), 3},
		{graph.DeBruijn(2, 3), 2},
		{graph.ShuffleExchange(2), 3},
		{graph.ShuffleExchange(3), 2},
		{graph.CompleteBinaryTree(3), 2}, // non-Hamiltonian (MCT)
		{graph.CompleteBinaryTree(3), 3},
		{graph.Star(4), 3}, // non-Hamiltonian
	}
	for _, c := range cases {
		net := product.MustNew(c.factor, c.r)
		s := New(nil)
		for seed := int64(0); seed < 3; seed++ {
			keys := randomKeys(net.Nodes(), seed)
			m := simnet.MustNew(net, keys)
			s.Sort(m)
			checkSortedPermutation(t, m, keys)
		}
	}
}

// TestSortZeroOneExhaustiveHypercube applies the zero-one principle
// exhaustively on hypercubes up to 16 nodes: every 0-1 input must sort.
func TestSortZeroOneExhaustiveHypercube(t *testing.T) {
	for _, r := range []int{2, 3, 4} {
		net := product.MustNew(graph.K2(), r)
		size := net.Nodes()
		s := New(nil)
		for mask := 0; mask < 1<<size; mask++ {
			keys := make([]simnet.Key, size)
			for i := range keys {
				keys[i] = simnet.Key(mask >> i & 1)
			}
			m := simnet.MustNew(net, keys)
			s.Sort(m)
			if !m.IsSortedSnake() {
				t.Fatalf("r=%d: 0-1 input %b unsorted: %v", r, mask, m.SnakeKeys())
			}
		}
	}
}

// TestSortZeroOneRandomLarge samples 0-1 inputs on networks too large
// for exhaustion.
func TestSortZeroOneRandomLarge(t *testing.T) {
	nets := []*product.Network{
		product.MustNew(graph.Path(3), 4),
		product.MustNew(graph.Path(4), 3),
		product.MustNew(graph.CompleteBinaryTree(3), 2),
		product.MustNew(graph.Petersen(), 2),
	}
	rng := rand.New(rand.NewSource(77))
	s := New(nil)
	for _, net := range nets {
		for trial := 0; trial < 30; trial++ {
			keys := make([]simnet.Key, net.Nodes())
			for i := range keys {
				keys[i] = simnet.Key(rng.Intn(2))
			}
			m := simnet.MustNew(net, keys)
			s.Sort(m)
			if !m.IsSortedSnake() {
				t.Fatalf("%s: random 0-1 input unsorted", net.Name())
			}
		}
	}
}

func TestSortAdversarialInputs(t *testing.T) {
	net := product.MustNew(graph.Path(3), 3)
	s := New(nil)
	n := net.Nodes()
	inputs := [][]simnet.Key{
		make([]simnet.Key, n), // all equal
		func() []simnet.Key { // reverse sorted in snake order
			ks := make([]simnet.Key, n)
			for i := range ks {
				ks[i] = simnet.Key(n - i)
			}
			return ks
		}(),
		func() []simnet.Key { // already sorted
			ks := make([]simnet.Key, n)
			for i := range ks {
				ks[i] = simnet.Key(i)
			}
			return ks
		}(),
		func() []simnet.Key { // two distinct values interleaved
			ks := make([]simnet.Key, n)
			for i := range ks {
				ks[i] = simnet.Key(i % 2)
			}
			return ks
		}(),
	}
	for i, keys := range inputs {
		m := simnet.MustNew(net, keys)
		m.LoadSnake(keys)
		s.Sort(m)
		checkSortedPermutation(t, m, keys)
		_ = i
	}
}

// TestTheorem1PhaseCounts verifies the exact phase counts of Theorem 1:
// (r-1)^2 S_2 invocations and (r-1)(r-2) transposition sweeps.
func TestTheorem1PhaseCounts(t *testing.T) {
	cases := []struct {
		factor *graph.Graph
		r      int
	}{
		{graph.Path(3), 2}, {graph.Path(3), 3}, {graph.Path(3), 4},
		{graph.K2(), 2}, {graph.K2(), 4}, {graph.K2(), 6},
		{graph.Petersen(), 2}, {graph.Cycle(4), 3},
	}
	for _, c := range cases {
		net := product.MustNew(c.factor, c.r)
		m := simnet.MustNew(net, randomKeys(net.Nodes(), 1))
		New(nil).Sort(m)
		clk := m.Clock()
		if clk.S2Phases != PredictedS2Phases(c.r) {
			t.Errorf("%s: S2Phases=%d want %d", net.Name(), clk.S2Phases, PredictedS2Phases(c.r))
		}
		if clk.SweepPhases != PredictedSweeps(c.r) {
			t.Errorf("%s: SweepPhases=%d want %d", net.Name(), clk.SweepPhases, PredictedSweeps(c.r))
		}
	}
}

// TestTheorem1RoundsHamiltonian: on Hamiltonian-labeled factors every
// sweep costs one round, so total rounds must equal
// (r-1)^2·S2rounds + (r-1)(r-2)·1 exactly.
func TestTheorem1RoundsHamiltonian(t *testing.T) {
	cases := []struct {
		factor *graph.Graph
		r      int
		engine sort2d.Engine
	}{
		{graph.Path(3), 3, sort2d.Shearsort{}},
		{graph.Path(4), 3, sort2d.Shearsort{}},
		{graph.Path(3), 4, sort2d.Shearsort{}},
		{graph.K2(), 5, sort2d.Opt4{}},
		{graph.Cycle(4), 3, sort2d.Shearsort{}},
		{graph.Path(3), 3, sort2d.SnakeOET{}},
	}
	for _, c := range cases {
		net := product.MustNew(c.factor, c.r)
		m := simnet.MustNew(net, randomKeys(net.Nodes(), 5))
		New(c.engine).Sort(m)
		clk := m.Clock()
		want := PredictedS2Phases(c.r)*c.engine.Rounds(c.factor.N()) + PredictedSweeps(c.r)
		if clk.Rounds != want {
			t.Errorf("%s engine=%s: rounds=%d want %d (clock %+v)",
				net.Name(), c.engine.Name(), clk.Rounds, want, clk)
		}
	}
}

// TestMergeLemma3Counts verifies one merge along dimension k uses
// 2(k-2)+1 S_2 phases and 2(k-2) sweeps (Lemma 3).
func TestMergeLemma3Counts(t *testing.T) {
	for _, k := range []int{2, 3, 4} {
		net := product.MustNew(graph.Path(3), k)
		m := simnet.MustNew(net, randomKeys(net.Nodes(), 2))
		loadSlabsSorted(m, k)
		New(nil).Merge(m, k)
		clk := m.Clock()
		if k == 2 {
			if clk.S2Phases != 1 || clk.SweepPhases != 0 {
				t.Errorf("k=2: %+v", clk)
			}
			continue
		}
		if clk.S2Phases != PredictedMergeS2Phases(k) {
			t.Errorf("k=%d: S2Phases=%d want %d", k, clk.S2Phases, PredictedMergeS2Phases(k))
		}
		if clk.SweepPhases != PredictedMergeSweeps(k) {
			t.Errorf("k=%d: sweeps=%d want %d", k, clk.SweepPhases, PredictedMergeSweeps(k))
		}
		if !m.IsSortedSnake() {
			t.Errorf("k=%d: merge did not sort", k)
		}
	}
}

// loadSlabsSorted arranges the machine's current keys so that each slab
// [u]PG^k_{k-1} is sorted in its local snake order — the precondition of
// Merge. Keys are not changed as a multiset. Requires k == r.
func loadSlabsSorted(m *simnet.Machine, k int) {
	net := m.Net()
	n := net.N()
	subDims := make([]int, k-1)
	for i := range subDims {
		subDims[i] = i + 1
	}
	slabSize := net.BlockSize(subDims)
	keys := m.Keys()
	for u := 0; u < n; u++ {
		slab := make([]simnet.Key, 0, slabSize)
		base := net.SetDigit(0, k, u)
		for pos := 0; pos < slabSize; pos++ {
			slab = append(slab, keys[net.NodeInBlock(base, subDims, pos)])
		}
		sort.Slice(slab, func(i, j int) bool { return slab[i] < slab[j] })
		for pos := 0; pos < slabSize; pos++ {
			keys[net.NodeInBlock(base, subDims, pos)] = slab[pos]
		}
	}
	snake := make([]simnet.Key, len(keys))
	for pos := range snake {
		snake[pos] = keys[net.NodeAtSnake(pos)]
	}
	m.LoadSnake(snake)
}

// TestMergePaperExample runs the worked example of Figs. 12–15: N=3,
// k=3, merging A_0 = (0,4,4,5,5,7,8,8,9), A_1 = (1,4,5,5,5,6,7,7,8),
// A_2 = (0,0,1,1,1,2,3,4,9).
func TestMergePaperExample(t *testing.T) {
	net := product.MustNew(graph.Path(3), 3)
	m := simnet.MustNew(net, make([]simnet.Key, 27))
	slabs := [][]simnet.Key{
		{0, 4, 4, 5, 5, 7, 8, 8, 9},
		{1, 4, 5, 5, 5, 6, 7, 7, 8},
		{0, 0, 1, 1, 1, 2, 3, 4, 9},
	}
	subDims := []int{1, 2}
	for u, slab := range slabs {
		base := net.SetDigit(0, 3, u)
		for pos, key := range slab {
			id := net.NodeInBlock(base, subDims, pos)
			loadKey(m, id, key)
		}
	}
	New(nil).Merge(m, 3)
	want := []simnet.Key{0, 0, 0, 1, 1, 1, 1, 2, 3, 4, 4, 4, 4, 5, 5, 5, 5, 5, 6, 7, 7, 7, 8, 8, 8, 9, 9}
	got := m.SnakeKeys()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("paper example: snake pos %d = %d want %d (full: %v)", i, got[i], want[i], got)
		}
	}
}

// loadKey places a single key at a node by rebuilding the key slice;
// test-only convenience.
func loadKey(m *simnet.Machine, id int, key simnet.Key) {
	keys := m.Keys()
	keys[id] = key
	snake := make([]simnet.Key, len(keys))
	for pos := range snake {
		snake[pos] = keys[m.Net().NodeAtSnake(pos)]
	}
	m.LoadSnake(snake)
}

// TestLemma1DirtyWindow measures the dirty area after Step 3 (merge with
// the top-level clean skipped) on 0-1 inputs: it must never exceed N².
func TestLemma1DirtyWindow(t *testing.T) {
	cases := []struct {
		factor *graph.Graph
		r      int
	}{
		{graph.Path(3), 3},
		{graph.Path(4), 3},
		{graph.K2(), 4},
		{graph.Path(3), 4},
	}
	rng := rand.New(rand.NewSource(99))
	for _, c := range cases {
		net := product.MustNew(c.factor, c.r)
		n := net.N()
		s := New(nil)
		for trial := 0; trial < 40; trial++ {
			keys := make([]simnet.Key, net.Nodes())
			for i := range keys {
				keys[i] = simnet.Key(rng.Intn(2))
			}
			m := simnet.MustNew(net, keys)
			// Establish the merge precondition from scratch: full sorts
			// of the r-1 dimensional slabs via the sorter itself.
			prepareSlabs(s, m, c.r)
			m.ResetClock()
			s.MergeSkipTopClean(m, c.r)
			window := DirtyWindow(m.SnakeKeys())
			if window > n*n {
				t.Fatalf("%s trial %d: dirty window %d > N²=%d", net.Name(), trial, window, n*n)
			}
		}
	}
}

// prepareSlabs sorts each dimension-r slab in its local snake order
// using the machine's own operations (so the data placement is honest).
func prepareSlabs(s *Sorter, m *simnet.Machine, r int) {
	if r == 2 {
		return
	}
	// Sort dims {1,2} blocks, then merge along 3..r-1: afterwards every
	// dimension-r slab is snake-sorted.
	s.Engine.Sort(m, 1, 2, sort2d.AscendingAll)
	for k := 3; k < r; k++ {
		s.Merge(m, k)
	}
}

func TestMergeSkipTopCleanThenCleanEqualsSort(t *testing.T) {
	net := product.MustNew(graph.Path(3), 3)
	keys := randomKeys(27, 8)
	s := New(nil)

	m1 := simnet.MustNew(net, keys)
	s.Sort(m1)

	m2 := simnet.MustNew(net, keys)
	s.Engine.Sort(m2, 1, 2, sort2d.AscendingAll)
	s.MergeSkipTopClean(m2, 3)
	s.cleanDirty(m2, []int{1, 2, 3})

	k1, k2 := m1.Keys(), m2.Keys()
	for i := range k1 {
		if k1[i] != k2[i] {
			t.Fatalf("split execution differs at node %d: %d vs %d", i, k1[i], k2[i])
		}
	}
}

func TestSort1D(t *testing.T) {
	for _, g := range []*graph.Graph{graph.Path(7), graph.Cycle(6), graph.CompleteBinaryTree(3)} {
		net := product.MustNew(g, 1)
		keys := randomKeys(net.Nodes(), 13)
		m := simnet.MustNew(net, keys)
		New(nil).Sort(m)
		checkSortedPermutation(t, m, keys)
	}
}

func TestSortWithGoroutineExecutor(t *testing.T) {
	net := product.MustNew(graph.Path(3), 3)
	keys := randomKeys(27, 21)
	seq := simnet.MustNew(net, keys)
	par := simnet.MustNew(net, keys)
	par.SetExecutor(simnet.GoroutineExec{})
	s := New(nil)
	s.Sort(seq)
	s.Sort(par)
	ks, kp := seq.Keys(), par.Keys()
	for i := range ks {
		if ks[i] != kp[i] {
			t.Fatalf("executors disagree at node %d", i)
		}
	}
	if seq.Clock() != par.Clock() {
		t.Fatalf("clocks differ: %+v vs %+v", seq.Clock(), par.Clock())
	}
}

func TestObserverCalled(t *testing.T) {
	net := product.MustNew(graph.Path(3), 3)
	m := simnet.MustNew(net, randomKeys(27, 4))
	s := New(nil)
	var stages []string
	s.Observer = func(stage string, _ sort2d.Machine) { stages = append(stages, stage) }
	s.Sort(m)
	if len(stages) != 2 { // initial sort + merge along dim 3
		t.Errorf("observer called %d times want 2: %v", len(stages), stages)
	}
}

func TestDirtyWindow(t *testing.T) {
	cases := []struct {
		keys []simnet.Key
		want int
	}{
		{[]simnet.Key{0, 0, 1, 1}, 0},
		{[]simnet.Key{1, 0}, 2},
		{[]simnet.Key{0, 1, 0, 1}, 2},
		{[]simnet.Key{1, 1, 1}, 0},
		{[]simnet.Key{0, 0, 0}, 0},
		{[]simnet.Key{1, 0, 0, 0, 1}, 4},
		{nil, 0},
	}
	for _, c := range cases {
		if got := DirtyWindow(c.keys); got != c.want {
			t.Errorf("DirtyWindow(%v)=%d want %d", c.keys, got, c.want)
		}
	}
}

func TestDirtyWindowPanicsOnNonBinary(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	DirtyWindow([]simnet.Key{0, 2})
}

func TestSortPanicsOnShortDims(t *testing.T) {
	net := product.MustNew(graph.Path(3), 2)
	m := simnet.MustNew(net, randomKeys(9, 1))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(nil).merge(m, []int{1}, false)
}

// Property-based: sorting any random permutation of distinct keys yields
// the identity in snake order.
func TestQuickSortPermutation(t *testing.T) {
	net := product.MustNew(graph.Path(3), 3)
	s := New(nil)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		perm := rng.Perm(27)
		keys := make([]simnet.Key, 27)
		for i, p := range perm {
			keys[i] = simnet.Key(p)
		}
		m := simnet.MustNew(net, keys)
		s.Sort(m)
		got := m.SnakeKeys()
		for i := range got {
			if got[i] != simnet.Key(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property-based: DirtyWindow is 0 exactly when the 0-1 sequence is
// sorted.
func TestQuickDirtyWindowZeroIffSorted(t *testing.T) {
	f := func(bits uint16, lenRaw uint8) bool {
		n := 1 + int(lenRaw)%16
		keys := make([]simnet.Key, n)
		sorted := true
		for i := range keys {
			keys[i] = simnet.Key(bits >> i & 1)
			if i > 0 && keys[i] < keys[i-1] {
				sorted = false
			}
		}
		return (DirtyWindow(keys) == 0) == sorted
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSortGrid3x3x3(b *testing.B) {
	net := product.MustNew(graph.Path(3), 3)
	keys := randomKeys(27, 1)
	s := New(nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := simnet.MustNew(net, keys)
		s.Sort(m)
	}
}

func BenchmarkSortHypercube64(b *testing.B) {
	net := product.MustNew(graph.K2(), 6)
	keys := randomKeys(64, 1)
	s := New(nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := simnet.MustNew(net, keys)
		s.Sort(m)
	}
}

// TestSortRandomTopologies fuzzes the sorter over random connected
// factor graphs — the strongest version of the paper's "any product
// network" claim we can test.
func TestSortRandomTopologies(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		n := 3 + int(seed)%6
		g := graph.RandomConnected(n, int(seed)%4, seed)
		r := 2 + int(seed)%2
		net := product.MustNew(g, r)
		keys := randomKeys(net.Nodes(), seed)
		m := simnet.MustNew(net, keys)
		New(nil).Sort(m)
		checkSortedPermutation(t, m, keys)
		clk := m.Clock()
		if clk.S2Phases != PredictedS2Phases(r) || clk.SweepPhases != PredictedSweeps(r) {
			t.Errorf("seed %d (%s): phase counts off Theorem 1", seed, net.Name())
		}
	}
}

// TestSortRandomTreeFactors: random trees exercise the routed fallback
// with irregular shapes.
func TestSortRandomTreeFactors(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		g := graph.RandomTree(4+int(seed)%8, seed)
		net := product.MustNew(g, 2)
		keys := randomKeys(net.Nodes(), seed+100)
		m := simnet.MustNew(net, keys)
		New(nil).Sort(m)
		checkSortedPermutation(t, m, keys)
	}
}
