// Package core implements the paper's primary contribution: the
// generalized multiway-merge sorting algorithm for homogeneous product
// networks (Fernández & Efe, Sections 3 and 4).
//
// The algorithm sorts the N^r keys of an r-dimensional product network
// PG_r into snake order. It first sorts every two-dimensional subgraph
// at dimensions {1,2} with an assumed S_2 engine (package sort2d), then
// repeatedly merges N sorted blocks along each further dimension:
//
//	Merge on PG_k (Section 3.1 / Section 4):
//	  Step 1 — distribute each input A_u into subsequences B_{u,v}.
//	            Free: by the Gray-code split property, B_{u,v} already
//	            sits on the subgraph [u,v]PG^{k,1}_{k-2} in snake order.
//	  Step 2 — merge columns recursively (base case: one S_2 sort).
//	  Step 3 — interleave. Free: re-reading PG_k in snake order is the
//	            interleaving.
//	  Step 4 — clean the ≤N² dirty area: sort each PG_2 subgraph at
//	            dimensions {1,2} in alternating snake direction, run two
//	            odd-even transposition sweeps between snake-consecutive
//	            PG_2 subgraphs, sort the subgraphs again.
//
// Direction conventions (derived from Definition 2): the global snake
// order of a block traverses the PG_2 subgraph with group label q in
// forward local snake order when q has even Hamming weight and in
// reverse order when odd. Sorting a subgraph "nondecreasing along the
// global order" therefore means: locally ascending for even groups,
// locally descending for odd groups. Transposition partners are the
// nodes with equal dimension-{1,2} digits in consecutive groups; their
// labels differ by one in exactly one symbol, so they are adjacent when
// the factor is Hamiltonian-labeled and otherwise one routed exchange
// apart — exactly the paper's fallback.
package core

import (
	"fmt"

	"productsort/internal/product"
	"productsort/internal/simnet"
	"productsort/internal/sort2d"
)

// Sorter runs the multiway-merge sorting algorithm with a pluggable
// S_2 engine.
type Sorter struct {
	// Engine is the PG_2 snake sorter (the paper's assumed S_2
	// algorithm). Defaults to sort2d.Auto.
	Engine sort2d.Engine
	// Observer, when non-nil, is invoked after every major stage with a
	// description; used to trace the paper's worked example.
	Observer func(stage string, m sort2d.Machine)
}

// New returns a Sorter with the given engine (nil selects sort2d.Auto).
func New(engine sort2d.Engine) *Sorter {
	if engine == nil {
		engine = sort2d.Auto{}
	}
	return &Sorter{Engine: engine}
}

// Sort sorts the machine's keys into nondecreasing snake order over the
// whole network (Section 3.3): initial S_2 sorts on the dimension-{1,2}
// subgraphs, then one multiway merge per further dimension.
//
// Heterogeneous networks are supported when the factor sizes of
// dimensions 2..r are nonincreasing (dimension 1 is unconstrained):
// the generalized Lemma 1 bounds the dirty window of a merge along
// dimension k by N₁·N_k, and Step 4's cleaning blocks hold N_ℓ·N_{ℓ+1}
// keys at recursion level ℓ, so the window fits within two blocks
// exactly when N_k ≤ N_{ℓ+1} for every level — i.e. nonincreasing
// radices above dimension 1. Sort panics otherwise; the public API
// validates constructions up front.
func (s *Sorter) Sort(m sort2d.Machine) {
	r := m.Net().R()
	switch {
	case r < 1:
		panic("core: network has no dimensions")
	case r == 1:
		s.sort1D(m)
		return
	}
	ValidateRadices(m.Net())
	s.Engine.Sort(m, 1, 2, sort2d.AscendingAll)
	s.observe("initial S2 sort of dimension-{1,2} subgraphs", m)
	for k := 3; k <= r; k++ {
		s.Merge(m, k)
		s.observe(fmt.Sprintf("after merge along dimension %d", k), m)
	}
}

// Merge merges along dimension k: it combines, within every PG_k block
// at dimensions 1..k, the N sorted slabs [u]PG^k_{k-1} into a single
// block sorted in local snake order.
//
// Precondition: for every value u, the keys of each slab with digit u at
// dimension k are nondecreasing in the slab's local snake order over
// dimensions 1..k-1.
func (s *Sorter) Merge(m sort2d.Machine, k int) {
	s.merge(m, dimRange(k), false)
}

// MergeSkipTopClean performs Merge but omits the outermost Step 4, so
// the keys are left in the "almost sorted" state after Step 3. Used to
// measure the dirty area of Lemma 1 experimentally.
func (s *Sorter) MergeSkipTopClean(m sort2d.Machine, k int) {
	s.merge(m, dimRange(k), true)
}

// merge implements the recursive multiway merge over an ordered
// dimension list: dims[0] plays the paper's "dimension 1" (the split
// dimension of Step 1), dims[len-1] is the merge dimension carrying the
// N input slabs. Steps 1 and 3 are free re-interpretations of storage;
// only Step 2's base case and Step 4 move keys.
func (s *Sorter) merge(m sort2d.Machine, dims []int, skipClean bool) {
	k := len(dims)
	if k < 2 {
		panic("core: merge needs at least two dimensions")
	}
	if k == 2 {
		// Base case: a recursive merge would make no progress on N^2
		// keys (Section 3.2), so sort PG_2 directly.
		s.Engine.Sort(m, dims[0], dims[1], sort2d.AscendingAll)
		return
	}
	// Step 2: the columns B_{*,v} of every block are merged in parallel.
	// One recursive call covers all values v at once because the
	// machine's phases already run across all blocks simultaneously.
	s.merge(m, dims[1:], false)
	// Step 4.
	if !skipClean {
		s.cleanDirty(m, dims)
	}
}

// cleanDirty is Step 4 of the merge on the given dimension list: it
// repairs the ≤N² dirty window left after interleaving.
func (s *Sorter) cleanDirty(m sort2d.Machine, dims []int) {
	net := m.Net()
	dimA, dimB := dims[0], dims[1]
	groupDims := dims[2:]
	asc := func(base int) bool { return net.BlockWeight(base, groupDims)%2 == 0 }

	s.Engine.Sort(m, dimA, dimB, asc)
	s.transposeSweep(m, dims, 0)
	s.transposeSweep(m, dims, 1)
	s.Engine.Sort(m, dimA, dimB, asc)
}

// transposeSweep runs one odd-even transposition step between
// snake-consecutive PG_2 subgraphs: pairs (g, g+1) of group indices with
// g ≡ phase (mod 2). Partner nodes share their dimension-{dimA,dimB}
// digits; the smaller key moves to group g.
func (s *Sorter) transposeSweep(m sort2d.Machine, dims []int, phase int) {
	net := m.Net()
	dimA, dimB := dims[0], dims[1]
	nA, nB := net.Radix(dimA), net.Radix(dimB)
	groupDims := dims[2:]
	groups := net.BlockSize(groupDims) // N^(k-2) for homogeneous networks
	outer := net.BlockBases(dims)      // one base per enclosing PG_k block
	var pairs [][2]int
	for _, base := range outer {
		for g := phase; g+1 < groups; g += 2 {
			lo := net.NodeInBlock(base, groupDims, g)
			hi := net.NodeInBlock(base, groupDims, g+1)
			for a := 0; a < nA; a++ {
				for b := 0; b < nB; b++ {
					x := net.SetDigit(net.SetDigit(lo, dimA, a), dimB, b)
					y := net.SetDigit(net.SetDigit(hi, dimA, a), dimB, b)
					pairs = append(pairs, [2]int{x, y})
				}
			}
		}
	}
	if len(pairs) == 0 {
		// With N=2 and a single group pair, the odd phase has no
		// partners; the oblivious schedule still spends the round.
		m.IdleRound()
	} else {
		m.CompareExchange(pairs)
	}
	m.AddSweepPhase()
}

// sort1D sorts a one-dimensional network (PG_1 = G itself) by odd-even
// transposition on the node labels: N rounds, each a compare-exchange
// sweep between label-consecutive nodes (routed if G is not
// Hamiltonian-labeled). The paper assumes r ≥ 2; this completes the API.
func (s *Sorter) sort1D(m sort2d.Machine) {
	n := m.Net().N()
	for t := 0; t < n; t++ {
		var pairs [][2]int
		for a := t % 2; a+1 < n; a += 2 {
			pairs = append(pairs, [2]int{a, a + 1})
		}
		m.CompareExchange(pairs)
	}
}

func (s *Sorter) observe(stage string, m sort2d.Machine) {
	if s.Observer != nil {
		s.Observer(stage, m)
	}
}

// ValidateRadices panics unless the network's factor sizes satisfy the
// heterogeneous sorting condition: radix(2) ≥ radix(3) ≥ … ≥ radix(r).
// Homogeneous networks always pass.
func ValidateRadices(net *product.Network) {
	for dim := 3; dim <= net.R(); dim++ {
		if net.Radix(dim) > net.Radix(dim-1) {
			panic(fmt.Sprintf(
				"core: factor sizes above dimension 1 must be nonincreasing: radix(%d)=%d > radix(%d)=%d (reorder the dimensions)",
				dim, net.Radix(dim), dim-1, net.Radix(dim-1)))
		}
	}
}

// dimRange returns [1, 2, …, k].
func dimRange(k int) []int {
	dims := make([]int, k)
	for i := range dims {
		dims[i] = i + 1
	}
	return dims
}

// PredictedRounds evaluates Theorem 1 for a network and engine without
// running the sort: the exact round count on networks whose factors are
// all Hamiltonian-labeled (sweeps then cost one round each, idle or
// not), and a close upper bound otherwise. Heterogeneous radices are
// handled by walking the same dimension recursion the sort performs.
func PredictedRounds(net *product.Network, e sort2d.Engine) int {
	if e == nil {
		e = sort2d.Auto{}
	}
	r := net.R()
	if r == 1 {
		return net.Radix(1) // odd-even transposition on G
	}
	s2 := func(a, b int) int { return e.RoundsAB(net.Radix(a), net.Radix(b)) }
	rounds := s2(1, 2)
	for k := 3; k <= r; k++ {
		rounds += s2(k-1, k) // Step 2 base case of the merge over dims 1..k
		for l := 1; l <= k-2; l++ {
			rounds += 2*s2(l, l+1) + 2 // Step 4 at recursion level l
		}
	}
	return rounds
}

// PredictedS2Phases returns the number of S_2 invocations Theorem 1
// predicts for sorting an r-dimensional network: (r-1)^2.
func PredictedS2Phases(r int) int { return (r - 1) * (r - 1) }

// PredictedSweeps returns the number of inter-subgraph transposition
// sweeps Theorem 1 predicts: (r-1)(r-2).
func PredictedSweeps(r int) int { return (r - 1) * (r - 2) }

// PredictedMergeS2Phases returns the S_2 invocations of one merge along
// dimension k (Lemma 3): 2(k-2)+1.
func PredictedMergeS2Phases(k int) int { return 2*(k-2) + 1 }

// PredictedMergeSweeps returns the transposition sweeps of one merge
// along dimension k (Lemma 3): 2(k-2).
func PredictedMergeSweeps(k int) int { return 2 * (k - 2) }

// DirtyWindow returns the length of the smallest window outside of which
// a 0-1 key sequence is sorted: the distance from the first 1 to the
// last 0, plus one; 0 if the sequence is sorted. Keys must be 0 or 1.
func DirtyWindow(keys []simnet.Key) int {
	first1 := -1
	last0 := -1
	for i, k := range keys {
		switch k {
		case 0:
			last0 = i
		case 1:
			if first1 < 0 {
				first1 = i
			}
		default:
			panic("core: DirtyWindow needs 0-1 keys")
		}
	}
	if first1 < 0 || last0 < 0 || last0 < first1 {
		return 0
	}
	return last0 - first1 + 1
}
