// Package cli holds the flag plumbing shared by the command-line tools:
// every tool selects a product network the same way.
package cli

import (
	"flag"
	"fmt"
	"strconv"
	"strings"

	"productsort"
)

// NetworkFlags collects the flags that select a product network.
type NetworkFlags struct {
	Network *string
	N       *int
	R       *int
	Levels  *int
	DBDim   *int
	Sides   *string
}

// RegisterNetworkFlags installs the network-selection flags on fs (or
// flag.CommandLine when fs is nil) and returns their holder.
func RegisterNetworkFlags(fs *flag.FlagSet) *NetworkFlags {
	if fs == nil {
		fs = flag.CommandLine
	}
	return &NetworkFlags{
		Network: fs.String("network", "grid", "grid | torus | hypercube | mct | petersen | debruijn | shuffle-exchange | wheel | circulant | kautz | rect | rect-torus"),
		N:       fs.Int("n", 4, "factor size (grid/torus side, wheel/circulant size)"),
		R:       fs.Int("r", 3, "dimensions"),
		Levels:  fs.Int("levels", 3, "tree levels (mct)"),
		DBDim:   fs.Int("dbdim", 3, "de Bruijn / shuffle-exchange / Kautz dimension"),
		Sides:   fs.String("sides", "8,4,2", "comma-separated side lengths (rect, rect-torus)"),
	}
}

// parseSides parses the -sides flag.
func (nf *NetworkFlags) parseSides() ([]int, error) {
	parts := strings.Split(*nf.Sides, ",")
	sides := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad side %q: %v", p, err)
		}
		sides = append(sides, v)
	}
	return sides, nil
}

// Build constructs the selected network.
func (nf *NetworkFlags) Build() (*productsort.Network, error) {
	switch *nf.Network {
	case "grid":
		return productsort.Grid(*nf.N, *nf.R)
	case "torus":
		return productsort.Torus(*nf.N, *nf.R)
	case "hypercube":
		return productsort.Hypercube(*nf.R)
	case "mct":
		return productsort.MeshConnectedTrees(*nf.Levels, *nf.R)
	case "petersen":
		return productsort.PetersenCube(*nf.R)
	case "debruijn":
		return productsort.DeBruijnProduct(2, *nf.DBDim, *nf.R)
	case "shuffle-exchange":
		return productsort.ShuffleExchangeProduct(*nf.DBDim, *nf.R)
	case "wheel":
		return productsort.WheelProduct(*nf.N, *nf.R)
	case "circulant":
		return productsort.CirculantProduct(*nf.N, []int{1, 2}, *nf.R)
	case "kautz":
		return productsort.KautzProduct(2, *nf.DBDim, *nf.R)
	case "rect":
		sides, err := nf.parseSides()
		if err != nil {
			return nil, err
		}
		return productsort.RectGrid(sides...)
	case "rect-torus":
		sides, err := nf.parseSides()
		if err != nil {
			return nil, err
		}
		return productsort.RectTorus(sides...)
	}
	return nil, fmt.Errorf("unknown network %q", *nf.Network)
}
