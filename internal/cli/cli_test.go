package cli

import (
	"flag"
	"testing"
)

func TestBuildAllKinds(t *testing.T) {
	kinds := []string{
		"grid", "torus", "hypercube", "mct", "petersen",
		"debruijn", "shuffle-exchange", "wheel", "circulant", "kautz",
	}
	for _, kind := range kinds {
		fs := flag.NewFlagSet("test", flag.ContinueOnError)
		nf := RegisterNetworkFlags(fs)
		if err := fs.Parse([]string{"-network", kind, "-n", "4", "-r", "2", "-dbdim", "2"}); err != nil {
			t.Fatal(err)
		}
		nw, err := nf.Build()
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if nw.Nodes() < 4 {
			t.Errorf("%s: suspiciously small network", kind)
		}
	}
}

func TestBuildRect(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	nf := RegisterNetworkFlags(fs)
	if err := fs.Parse([]string{"-network", "rect", "-sides", "8,4,2"}); err != nil {
		t.Fatal(err)
	}
	nw, err := nf.Build()
	if err != nil {
		t.Fatal(err)
	}
	if nw.Nodes() != 64 {
		t.Errorf("nodes=%d", nw.Nodes())
	}
	fs2 := flag.NewFlagSet("test", flag.ContinueOnError)
	nf2 := RegisterNetworkFlags(fs2)
	if err := fs2.Parse([]string{"-network", "rect-torus", "-sides", "3,4,3"}); err != nil {
		t.Fatal(err)
	}
	if _, err := nf2.Build(); err != nil {
		t.Fatal(err)
	}
	fs3 := flag.NewFlagSet("test", flag.ContinueOnError)
	nf3 := RegisterNetworkFlags(fs3)
	if err := fs3.Parse([]string{"-network", "rect", "-sides", "4,x"}); err != nil {
		t.Fatal(err)
	}
	if _, err := nf3.Build(); err == nil {
		t.Error("bad sides accepted")
	}
}

func TestBuildUnknown(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	nf := RegisterNetworkFlags(fs)
	if err := fs.Parse([]string{"-network", "nope"}); err != nil {
		t.Fatal(err)
	}
	if _, err := nf.Build(); err == nil {
		t.Error("unknown network accepted")
	}
}

func TestTorusValidation(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	nf := RegisterNetworkFlags(fs)
	if err := fs.Parse([]string{"-network", "torus", "-n", "2"}); err != nil {
		t.Fatal(err)
	}
	if _, err := nf.Build(); err == nil {
		t.Error("torus with n=2 accepted")
	}
}
