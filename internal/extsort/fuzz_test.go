package extsort

import (
	"context"
	"sort"
	"testing"
)

// FuzzSortStreamEquivalence: for fuzz-chosen input lengths, run sizes,
// fan-ins and memory budgets, the streaming tier through the certified
// network run sorter must agree with sort.Slice exactly. Wired into
// `make fuzz` and `make extsort-fuzz`.
func FuzzSortStreamEquivalence(f *testing.F) {
	f.Add(int64(1), uint16(100), uint8(7), uint8(3), false)
	f.Add(int64(2), uint16(4096), uint8(16), uint8(2), true)
	f.Add(int64(-9), uint16(1), uint8(1), uint8(8), false)
	f.Add(int64(77), uint16(1000), uint8(13), uint8(2), true)
	sorter := compiledSorter(f)
	maxRun := sorter.MaxRun()
	f.Fuzz(func(t *testing.T, seed int64, n uint16, runSize, fanIn uint8, spill bool) {
		cfg := Config{
			RunSize: 1 + int(runSize)%maxRun,
			FanIn:   2 + int(fanIn)%31,
		}
		if spill {
			cfg.MemoryKeys = 1 // clamped to the merge floor; forces spilling past it
			cfg.SpillDir = t.TempDir()
		}
		keys := make([]Key, int(n))
		x := uint64(seed)
		for i := range keys {
			x = x*6364136223846793005 + 1442695040888963407
			keys[i] = Key(x>>1) - 1<<62
		}
		out := NewSliceWriter()
		stats, err := Sort(context.Background(), NewSliceReader(keys), out, sorter, cfg)
		if err != nil {
			t.Fatalf("Sort(n=%d cfg=%+v): %v", n, cfg, err)
		}
		if stats.Keys != int64(len(keys)) {
			t.Fatalf("stats.Keys = %d, want %d", stats.Keys, len(keys))
		}
		got := out.Keys()
		want := append([]Key(nil), keys...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(got) != len(want) {
			t.Fatalf("%d keys out, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("mismatch at %d: got %d want %d (n=%d cfg=%+v)", i, got[i], want[i], n, cfg)
			}
		}
	})
}
