// The k-way merge: a loser tree over run cursors, the software image
// of the paper's Section 3 multiway merge. The tree's internal nodes
// hold the losers of the matches along each winner's path to the root,
// so emitting the minimum and reseating its replacement costs exactly
// ⌈log₂ k⌉ comparisons — the same per-level compare cascade the
// merging network performs in one parallel step, serialized. When the
// run count exceeds the fan-in, full passes merge groups of FanIn runs
// into intermediate spill segments (bounded memory: a pass holds FanIn
// read buffers and one write buffer, never a whole run), exactly the
// recursive composition the agglomeration law certifies (THEORY.md
// §15).

package extsort

import (
	"context"
	"time"
)

// outBlockKeys is the merged-output block size: the granularity of
// Writer.Write calls, context checks, and intermediate segment writes.
const outBlockKeys = 4096

// mergeRuns merges every run in the store into dst, in as many passes
// as the fan-in demands.
func mergeRuns(ctx context.Context, store *runStore, dst Writer, cfg Config, stats *Stats, met *metrics) error {
	t0 := time.Now()
	defer func() {
		d := time.Since(t0).Nanoseconds()
		stats.MergeNs += d
		if met != nil {
			met.mergeNs.Observe(d)
		}
	}()

	handles := store.runs
	if len(handles) == 0 {
		return nil // empty input: nothing to write
	}
	// Intermediate passes: groups of FanIn runs merge into spill
	// segments until one final merge fits the fan-in.
	for len(handles) > cfg.FanIn {
		next := make([]runHandle, 0, (len(handles)+cfg.FanIn-1)/cfg.FanIn)
		for lo := 0; lo < len(handles); lo += cfg.FanIn {
			hi := lo + cfg.FanIn
			if hi > len(handles) {
				hi = len(handles)
			}
			group := handles[lo:hi]
			if len(group) == 1 {
				next = append(next, group[0])
				continue
			}
			merged, err := mergeToSpill(ctx, store, group, stats, met)
			if err != nil {
				return err
			}
			next = append(next, merged)
		}
		handles = next
		stats.MergePasses++
	}
	// Final pass: fan the surviving runs into the sink.
	stats.MergePasses++
	observeFanIn(len(handles), stats, met)
	lt := newLoserTree(streamsFor(store, handles))
	block := make([]Key, 0, outBlockKeys)
	for {
		k, ok := lt.pop()
		if !ok {
			break
		}
		block = append(block, k)
		if len(block) == outBlockKeys {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := dst.Write(block); err != nil {
				return err
			}
			block = block[:0]
		}
	}
	if err := lt.fail(); err != nil {
		return err
	}
	if len(block) > 0 {
		if err := dst.Write(block); err != nil {
			return err
		}
	}
	return nil
}

// mergeToSpill merges one group of runs into a new spill segment,
// releasing the group's residency as it drains.
func mergeToSpill(ctx context.Context, store *runStore, group []runHandle, stats *Stats, met *metrics) (runHandle, error) {
	observeFanIn(len(group), stats, met)
	lt := newLoserTree(streamsFor(store, group))
	w, err := store.beginSegment()
	if err != nil {
		return runHandle{}, err
	}
	block := make([]Key, 0, outBlockKeys)
	for {
		k, ok := lt.pop()
		if !ok {
			break
		}
		block = append(block, k)
		if len(block) == outBlockKeys {
			if err := ctx.Err(); err != nil {
				return runHandle{}, err
			}
			if err := w.write(block); err != nil {
				return runHandle{}, err
			}
			block = block[:0]
		}
	}
	if err := lt.fail(); err != nil {
		return runHandle{}, err
	}
	if err := w.write(block); err != nil {
		return runHandle{}, err
	}
	merged, err := w.finish()
	if err != nil {
		return runHandle{}, err
	}
	for _, h := range group {
		store.release(h)
	}
	return merged, nil
}

// streamsFor opens a cursor per handle.
func streamsFor(store *runStore, handles []runHandle) []keyStream {
	streams := make([]keyStream, len(handles))
	for i, h := range handles {
		streams[i] = store.stream(h)
	}
	return streams
}

// observeFanIn records one realized merge width.
func observeFanIn(k int, stats *Stats, met *metrics) {
	if k > stats.MaxFanIn {
		stats.MaxFanIn = k
	}
	if met != nil {
		met.fanIn.Observe(int64(k))
	}
}

// loserTree is the tournament the merge runs. Leaves are streams
// (padded to a power of two with exhausted dummies); internal node j
// holds the loser of the match played there, and the overall winner
// rides in a register. Ties break toward the lower stream index, so
// the merge is deterministic for any input.
type loserTree struct {
	k       int // padded leaf count, power of two
	n       int // real stream count
	winner  int
	tree    []int // internal nodes 1..k-1; tree[j] = loser at j
	heads   []Key
	done    []bool
	streams []keyStream
}

// newLoserTree builds the tournament and plays the initial matches.
func newLoserTree(streams []keyStream) *loserTree {
	n := len(streams)
	k := 1
	for k < n {
		k <<= 1
	}
	lt := &loserTree{
		k:       k,
		n:       n,
		tree:    make([]int, k),
		heads:   make([]Key, k),
		done:    make([]bool, k),
		streams: streams,
	}
	for i := 0; i < k; i++ {
		if i < n {
			if head, ok := streams[i].next(); ok {
				lt.heads[i] = head
				continue
			}
		}
		lt.done[i] = true
	}
	// Play the full bracket bottom-up: win[j] is the winner of the
	// subtree at internal node j, tree[j] the loser of its match.
	win := make([]int, k)
	winnerOf := func(m int) int {
		if m >= k {
			return m - k
		}
		return win[m]
	}
	for j := k - 1; j >= 1; j-- {
		a, b := winnerOf(2*j), winnerOf(2*j+1)
		if lt.beats(b, a) {
			a, b = b, a
		}
		win[j] = a
		lt.tree[j] = b
	}
	if k == 1 {
		lt.winner = 0
	} else {
		lt.winner = win[1]
	}
	return lt
}

// beats reports whether stream a's head wins against stream b's:
// exhausted streams always lose, equal keys go to the lower index.
func (lt *loserTree) beats(a, b int) bool {
	switch {
	case lt.done[a]:
		return false
	case lt.done[b]:
		return true
	case lt.heads[a] != lt.heads[b]:
		return lt.heads[a] < lt.heads[b]
	default:
		return a < b
	}
}

// pop emits the minimum head and reseats the winner's replacement along
// its root path — the ⌈log₂ k⌉-compare cascade.
func (lt *loserTree) pop() (Key, bool) {
	w := lt.winner
	if lt.done[w] {
		return 0, false
	}
	out := lt.heads[w]
	if head, ok := lt.streams[w].next(); ok {
		lt.heads[w] = head
	} else {
		lt.done[w] = true
	}
	for j := (w + lt.k) / 2; j >= 1; j /= 2 {
		if lt.beats(lt.tree[j], w) {
			lt.tree[j], w = w, lt.tree[j]
		}
	}
	lt.winner = w
	return out, true
}

// fail surfaces the first stream read error, distinguishing a failed
// spill read from a cleanly exhausted merge.
func (lt *loserTree) fail() error {
	for _, s := range lt.streams {
		if err := s.fail(); err != nil {
			return err
		}
	}
	return nil
}
