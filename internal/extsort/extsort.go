// Package extsort is the streaming external sort tier: it sorts key
// streams of unbounded length through the fixed-size certified sorting
// networks the rest of the repo compiles and proves.
//
// The shape is the classic run-formation-then-merge hybrid, with both
// halves grounded in the paper's machinery. Run formation chunks the
// stream into fixed-size runs and sorts each run through a certified
// compiled program — the columnar batch replay, with sentinel padding
// for the ragged tail exactly as THEORY.md §12 proves safe — so every
// run entering the merge is the output of a machine-certified sorting
// network. The merge is a loser-tree k-way merge, software's image of
// the paper's Section 3 multiway merge: at every step the tree holds
// the pairwise losers along the winner's path, so replacing the winner
// costs ⌈log₂ k⌉ comparisons, the same per-level compare-exchange
// cascade the network performs in hardware. The agglomeration law for
// sorting networks (arXiv 1701.00635) supplies the composition
// argument lifted into THEORY.md §15: certified runs plus a correct
// k-way merge compose into a provably correct sorter for any input
// length.
//
// Memory is bounded: sorted runs beyond the configured resident-key
// budget spill to a temp file (sequential segment writes, positional
// segment reads) and intermediate merge passes stream spill-to-spill,
// so peak residency is O(MemoryKeys + FanIn·buffer) regardless of
// input length. The whole pipeline is cancellable between stages via
// context and instrumented with extsort.* counters and per-stage
// latency histograms.
package extsort

import (
	"context"
	"errors"
	"fmt"
	"time"

	"productsort/internal/obs"
	"productsort/internal/simnet"
)

// Key aliases the machine's key type.
type Key = simnet.Key

// Typed errors; branch with errors.Is.
var (
	// ErrRunUnsorted reports that a run came back from the run sorter
	// out of order (only checked when Config.VerifyRuns is set): the
	// merge refuses unsorted input rather than masking a run-sorter
	// bug with merge output that is wrong in subtler ways.
	ErrRunUnsorted = errors.New("extsort: run sorter produced an unsorted run")
	// ErrNilSorter rejects a Sort call without a run sorter.
	ErrNilSorter = errors.New("extsort: nil run sorter")
)

// ConfigError reports one invalid Config field by name.
type ConfigError struct {
	Field  string
	Reason string
}

// Error implements error.
func (e *ConfigError) Error() string {
	return fmt.Sprintf("extsort: config %s: %s", e.Field, e.Reason)
}

// RunSorter sorts fixed-size runs in place; the streaming tier is
// generic over it. The certified-network sorter (NewNetworkSorter) is
// the production implementation; the serve tier substitutes one that
// submits runs through the batching server, and tests substitute
// oracles and fault-injecting variants.
type RunSorter interface {
	// MaxRun returns the largest run length one SortRuns item may have.
	MaxRun() int
	// SortRuns sorts every run ascending, in place. Runs are
	// independent; an implementation may sort them together (batch
	// replay), concurrently, or one at a time. It must respect ctx.
	SortRuns(ctx context.Context, runs [][]Key) error
}

// Config parametrizes Sort. The zero value of every field selects a
// sensible default.
type Config struct {
	// RunSize is the key count per run (default min(1024,
	// sorter.MaxRun()); must not exceed sorter.MaxRun()).
	RunSize int
	// FanIn bounds the merge fan-in: at most this many runs merge in
	// one pass; more runs take multiple passes (default 16, min 2).
	FanIn int
	// RunBatch is how many formed runs accumulate before one SortRuns
	// call — the batch the columnar replay amortizes its program walk
	// over (default 16).
	RunBatch int
	// MemoryKeys bounds resident sorted keys: runs beyond it spill to
	// disk (default 1<<21 keys = 16 MiB; min FanIn·spillBufKeys so the
	// merge always has buffer room).
	MemoryKeys int
	// SpillDir is where the spill file lives (default os.TempDir()).
	SpillDir string
	// VerifyRuns, when set, checks every run for sortedness before it
	// enters the merge and fails with ErrRunUnsorted — the runtime
	// form of the battery's run-independence property, and the guard
	// the chaos leg leans on when the run sorter heals itself under
	// injected faults.
	VerifyRuns bool
	// Metrics optionally receives the extsort.* instruments.
	Metrics *obs.Metrics
}

// Stats reports one Sort's accounting.
type Stats struct {
	// Keys is the total number of keys sorted.
	Keys int64 `json:"keys"`
	// Runs is the number of runs formed (the merge's leaf count).
	Runs int64 `json:"runs"`
	// RunSize and FanIn echo the effective configuration.
	RunSize int `json:"runSize"`
	FanIn   int `json:"fanIn"`
	// MergePasses counts merge passes (1 when Runs <= FanIn).
	MergePasses int `json:"mergePasses"`
	// MaxFanIn is the widest fan-in any single merge used.
	MaxFanIn int `json:"maxFanIn"`
	// SpilledRuns and SpilledBytes account the disk traffic: runs (or
	// intermediate merged runs) written to the spill file and the bytes
	// they cost.
	SpilledRuns  int64 `json:"spilledRuns"`
	SpilledBytes int64 `json:"spilledBytes"`
	// RunFormNs, RunSortNs and MergeNs split wall time between reading
	// the stream into runs, sorting the runs, and merging them.
	RunFormNs int64 `json:"runFormNs"`
	RunSortNs int64 `json:"runSortNs"`
	MergeNs   int64 `json:"mergeNs"`
}

// metrics bundles the extsort.* instruments; all nil when no registry
// is configured.
type metrics struct {
	keys, runs  *obs.Counter
	spillRuns   *obs.Counter
	spillBytes  *obs.Counter
	mergePasses *obs.Counter
	fanIn       *obs.Histogram
	runSortNs   *obs.Histogram
	mergeNs     *obs.Histogram
	runFormNs   *obs.Histogram
}

// FanInBuckets is the histogram layout for realized merge fan-ins.
var FanInBuckets = []int64{2, 4, 8, 16, 32, 64, 128}

func newMetrics(m *obs.Metrics) *metrics {
	if m == nil {
		return nil
	}
	return &metrics{
		keys:        m.Counter("extsort.keys"),
		runs:        m.Counter("extsort.runs"),
		spillRuns:   m.Counter("extsort.spill.runs"),
		spillBytes:  m.Counter("extsort.spill.bytes"),
		mergePasses: m.Counter("extsort.merge.passes"),
		fanIn:       m.Histogram("extsort.merge.fanin", FanInBuckets),
		runSortNs:   m.Histogram("extsort.runsort_ns", obs.DurationBucketsNs),
		mergeNs:     m.Histogram("extsort.merge_ns", obs.DurationBucketsNs),
		runFormNs:   m.Histogram("extsort.runform_ns", obs.DurationBucketsNs),
	}
}

// defaultRunSize is the run length chosen when the sorter's ceiling
// allows it: large enough to amortize the merge, small enough that the
// planner maps it to a mid-size certified network.
const defaultRunSize = 1024

// normalize validates cfg against the sorter and fills defaults.
func (cfg Config) normalize(sorter RunSorter) (Config, error) {
	if sorter == nil {
		return cfg, ErrNilSorter
	}
	maxRun := sorter.MaxRun()
	if maxRun < 1 {
		return cfg, &ConfigError{Field: "RunSorter", Reason: fmt.Sprintf("MaxRun %d < 1", maxRun)}
	}
	if cfg.RunSize < 0 {
		return cfg, &ConfigError{Field: "RunSize", Reason: fmt.Sprintf("negative value %d", cfg.RunSize)}
	}
	if cfg.RunSize == 0 {
		cfg.RunSize = defaultRunSize
		if cfg.RunSize > maxRun {
			cfg.RunSize = maxRun
		}
	}
	if cfg.RunSize > maxRun {
		return cfg, &ConfigError{
			Field:  "RunSize",
			Reason: fmt.Sprintf("%d exceeds the run sorter's ceiling %d", cfg.RunSize, maxRun),
		}
	}
	if cfg.FanIn < 0 {
		return cfg, &ConfigError{Field: "FanIn", Reason: fmt.Sprintf("negative value %d", cfg.FanIn)}
	}
	if cfg.FanIn == 0 {
		cfg.FanIn = 16
	}
	if cfg.FanIn < 2 {
		return cfg, &ConfigError{Field: "FanIn", Reason: fmt.Sprintf("%d < 2: a merge needs two inputs", cfg.FanIn)}
	}
	if cfg.RunBatch < 0 {
		return cfg, &ConfigError{Field: "RunBatch", Reason: fmt.Sprintf("negative value %d", cfg.RunBatch)}
	}
	if cfg.RunBatch == 0 {
		cfg.RunBatch = 16
	}
	if cfg.MemoryKeys < 0 {
		return cfg, &ConfigError{Field: "MemoryKeys", Reason: fmt.Sprintf("negative value %d", cfg.MemoryKeys)}
	}
	if cfg.MemoryKeys == 0 {
		cfg.MemoryKeys = 1 << 21
	}
	// The merge needs one read buffer per spilled input plus the output
	// block; below this floor spilling would thrash.
	if floor := (cfg.FanIn + 1) * spillBufKeys; cfg.MemoryKeys < floor {
		cfg.MemoryKeys = floor
	}
	return cfg, nil
}

// Sort drains src, sorts it, and writes the fully sorted sequence to
// dst. It returns the run/merge/spill accounting, or the first error
// from the source, the sink, the run sorter, or the context. On error
// (including cancellation) every spill file and pooled buffer is
// released before returning; dst may have received a sorted prefix.
func Sort(ctx context.Context, src Reader, dst Writer, sorter RunSorter, cfg Config) (*Stats, error) {
	cfg, err := cfg.normalize(sorter)
	if err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	met := newMetrics(cfg.Metrics)
	stats := &Stats{RunSize: cfg.RunSize, FanIn: cfg.FanIn}

	store := newRunStore(cfg.SpillDir, cfg.MemoryKeys, stats, met)
	defer store.close()

	if err := formRuns(ctx, src, sorter, cfg, store, stats, met); err != nil {
		return stats, err
	}
	if met != nil {
		met.keys.Add(stats.Keys)
		met.runs.Add(stats.Runs)
	}
	if err := mergeRuns(ctx, store, dst, cfg, stats, met); err != nil {
		return stats, err
	}
	return stats, nil
}

// formRuns chunks src into RunSize runs, sorts them RunBatch at a time
// through the run sorter, optionally verifies each, and hands them to
// the store (which keeps them resident or spills them under the
// memory budget).
func formRuns(ctx context.Context, src Reader, sorter RunSorter, cfg Config, store *runStore, stats *Stats, met *metrics) error {
	batch := make([][]Key, 0, cfg.RunBatch)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		t0 := time.Now()
		if err := sorter.SortRuns(ctx, batch); err != nil {
			return err
		}
		d := time.Since(t0).Nanoseconds()
		stats.RunSortNs += d
		if met != nil {
			met.runSortNs.Observe(d)
		}
		for _, run := range batch {
			if cfg.VerifyRuns && !sortedKeys(run) {
				return fmt.Errorf("%w (run of %d keys)", ErrRunUnsorted, len(run))
			}
			if err := store.add(run); err != nil {
				return err
			}
		}
		batch = batch[:0]
		return nil
	}
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		t0 := time.Now()
		run, err := readRun(src, cfg.RunSize)
		d := time.Since(t0).Nanoseconds()
		stats.RunFormNs += d
		if met != nil && len(run) > 0 {
			met.runFormNs.Observe(d)
		}
		if len(run) > 0 {
			stats.Keys += int64(len(run))
			stats.Runs++
			batch = append(batch, run)
			if len(batch) == cfg.RunBatch {
				if ferr := flush(); ferr != nil {
					return ferr
				}
			}
		}
		if err != nil {
			if errors.Is(err, errEOF) {
				return flush()
			}
			return err
		}
	}
}

// sortedKeys reports whether keys are nondecreasing.
func sortedKeys(keys []Key) bool {
	for i := 1; i < len(keys); i++ {
		if keys[i] < keys[i-1] {
			return false
		}
	}
	return true
}
