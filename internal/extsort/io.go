// Stream endpoints: the Reader the tier drains and the Writer it fills,
// plus slice and channel adapters so callers with in-memory data or
// producer goroutines plug in without ceremony.

package extsort

import "io"

// Reader is the key-stream source, with io.Reader semantics over keys:
// Read fills a prefix of dst, returns how many keys it wrote, and
// reports the end of the stream with io.EOF (either alongside the final
// keys or on the next call).
type Reader interface {
	Read(dst []Key) (int, error)
}

// Writer is the sorted-output sink. Write consumes one block of keys in
// nondecreasing order; blocks arrive in stream order, so concatenating
// them reproduces the fully sorted sequence. The slice is reused
// between calls — implementations must copy what they keep.
type Writer interface {
	Write(keys []Key) error
}

// errEOF is the sentinel readRun reports a clean end of stream with.
var errEOF = io.EOF

// readRun fills one run of up to runSize keys from src. It returns the
// keys read (possibly empty at the end of the stream) and io.EOF once
// the source is exhausted.
func readRun(src Reader, runSize int) ([]Key, error) {
	run := make([]Key, runSize)
	fill := 0
	for fill < runSize {
		n, err := src.Read(run[fill:])
		if n < 0 || n > runSize-fill {
			return run[:fill], &ConfigError{Field: "Reader", Reason: "Read returned an out-of-range count"}
		}
		fill += n
		if err != nil {
			return run[:fill], err
		}
	}
	return run, nil
}

// SliceReader streams an in-memory slice. The slice is only read.
type SliceReader struct {
	keys []Key
}

// NewSliceReader returns a Reader over keys.
func NewSliceReader(keys []Key) *SliceReader { return &SliceReader{keys: keys} }

// Read implements Reader.
func (r *SliceReader) Read(dst []Key) (int, error) {
	if len(r.keys) == 0 {
		return 0, io.EOF
	}
	n := copy(dst, r.keys)
	r.keys = r.keys[n:]
	if len(r.keys) == 0 {
		return n, io.EOF
	}
	return n, nil
}

// SliceWriter accumulates the sorted output in memory.
type SliceWriter struct {
	keys []Key
}

// NewSliceWriter returns an empty in-memory sink.
func NewSliceWriter() *SliceWriter { return &SliceWriter{} }

// Write implements Writer.
func (w *SliceWriter) Write(keys []Key) error {
	w.keys = append(w.keys, keys...)
	return nil
}

// Keys returns everything written so far, in order.
func (w *SliceWriter) Keys() []Key { return w.keys }

// FuncReader adapts a pull function to Reader — handy for generated
// streams of known or unbounded length.
type FuncReader func(dst []Key) (int, error)

// Read implements Reader.
func (f FuncReader) Read(dst []Key) (int, error) { return f(dst) }
