// Run sorters: the certified-network implementation the production
// tier uses, and a stdlib oracle for baselines and tests.

package extsort

import (
	"context"
	"sort"

	"productsort/internal/schedule"
)

// NetworkSorter sorts runs through one compiled (and certifiable)
// phase program via the columnar batch replay: a whole batch of runs
// becomes one program walk, runs shorter than the network pad with
// sentinels (THEORY.md §12), and pooled column slabs keep the warm
// path allocation-free per run. Safe for concurrent use.
type NetworkSorter struct {
	prog    *schedule.Program
	buf     *schedule.ColumnBuffer
	workers int
}

// NewNetworkSorter binds a compiled program; workers < 1 lets the
// batch replay pick its own parallelism.
func NewNetworkSorter(prog *schedule.Program, workers int) *NetworkSorter {
	return &NetworkSorter{prog: prog, buf: schedule.NewColumnBuffer(), workers: workers}
}

// MaxRun implements RunSorter: runs pad up to the network's node count.
func (ns *NetworkSorter) MaxRun() int { return ns.prog.Nodes() }

// SortRuns implements RunSorter through schedule.RunBatchColumnar.
func (ns *NetworkSorter) SortRuns(ctx context.Context, runs [][]Key) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return schedule.RunBatchColumnar(ns.prog, runs, ns.workers, ns.buf)
}

// SliceSorter is the stdlib oracle run sorter: sort.Slice per run. Max
// bounds the run size it accepts (<= 0 means unbounded); it exists for
// baselines and for exercising the merge independently of the
// network machinery.
type SliceSorter struct {
	Max int
}

// MaxRun implements RunSorter.
func (s SliceSorter) MaxRun() int {
	if s.Max <= 0 {
		return 1 << 30
	}
	return s.Max
}

// SortRuns implements RunSorter.
func (s SliceSorter) SortRuns(ctx context.Context, runs [][]Key) error {
	for _, run := range runs {
		if err := ctx.Err(); err != nil {
			return err
		}
		sort.Slice(run, func(i, j int) bool { return run[i] < run[j] })
	}
	return nil
}
