// Run storage: sorted runs live in memory up to the resident-key
// budget; beyond it they spill to one temp file as contiguous
// fixed-width segments (8 bytes per key, little endian). A single file
// holds every spilled run — sequential appends on the write side,
// positional buffered reads on the merge side — so a ten-thousand-run
// input costs one descriptor, not ten thousand.

package extsort

import (
	"encoding/binary"
	"fmt"
	"os"
)

// spillBufKeys is the per-stream read buffer and the spill write
// granularity, in keys (4096 keys = 32 KiB).
const spillBufKeys = 4096

// keyBytes is the on-disk key width.
const keyBytes = 8

// runHandle is one sorted run: resident (mem != nil) or a spill-file
// segment [off, off+count·keyBytes).
type runHandle struct {
	mem   []Key
	off   int64
	count int
}

// runStore owns the resident budget and the spill file.
type runStore struct {
	dir      string
	budget   int // MemoryKeys
	resident int
	runs     []runHandle

	file    *os.File
	fileEnd int64
	wbuf    []byte // spill encode buffer, spillBufKeys wide

	stats *Stats
	met   *metrics
}

func newRunStore(dir string, budget int, stats *Stats, met *metrics) *runStore {
	return &runStore{dir: dir, budget: budget, stats: stats, met: met}
}

// add takes ownership of one sorted run, keeping it resident when the
// budget allows and spilling it otherwise.
func (st *runStore) add(run []Key) error {
	if st.resident+len(run) <= st.budget {
		st.resident += len(run)
		st.runs = append(st.runs, runHandle{mem: run})
		return nil
	}
	h, err := st.spill(run)
	if err != nil {
		return err
	}
	st.runs = append(st.runs, h)
	return nil
}

// ensureFile lazily creates the spill file.
func (st *runStore) ensureFile() error {
	if st.file != nil {
		return nil
	}
	dir := st.dir
	if dir == "" {
		dir = os.TempDir()
	}
	f, err := os.CreateTemp(dir, "extsort-spill-*")
	if err != nil {
		return fmt.Errorf("extsort: creating spill file: %w", err)
	}
	// Unlinking immediately keeps the cleanup contract trivial: the
	// segments stay readable through the descriptor, and the kernel
	// reclaims the space the moment the descriptor closes — even if
	// the process dies mid-sort.
	if err := os.Remove(f.Name()); err != nil {
		f.Close()
		return fmt.Errorf("extsort: unlinking spill file: %w", err)
	}
	st.file = f
	st.wbuf = make([]byte, spillBufKeys*keyBytes)
	return nil
}

// spill appends run to the spill file and returns its segment handle.
func (st *runStore) spill(run []Key) (runHandle, error) {
	w, err := st.beginSegment()
	if err != nil {
		return runHandle{}, err
	}
	if err := w.write(run); err != nil {
		return runHandle{}, err
	}
	return w.finish()
}

// segmentWriter streams one run (or one intermediate merged run) into
// the spill file through the store's encode buffer.
type segmentWriter struct {
	st    *runStore
	off   int64
	count int
	fill  int // keys buffered in st.wbuf
}

// beginSegment opens a writer at the current end of the spill file.
// Segments are written one at a time (the pipeline is sequential), so
// the single encode buffer is safe to share.
func (st *runStore) beginSegment() (*segmentWriter, error) {
	if err := st.ensureFile(); err != nil {
		return nil, err
	}
	return &segmentWriter{st: st, off: st.fileEnd}, nil
}

// write appends keys to the segment.
func (w *segmentWriter) write(keys []Key) error {
	st := w.st
	for len(keys) > 0 {
		space := spillBufKeys - w.fill
		if space == 0 {
			if err := w.flush(); err != nil {
				return err
			}
			space = spillBufKeys
		}
		if space > len(keys) {
			space = len(keys)
		}
		base := w.fill * keyBytes
		for i, k := range keys[:space] {
			binary.LittleEndian.PutUint64(st.wbuf[base+i*keyBytes:], uint64(k))
		}
		w.fill += space
		w.count += space
		keys = keys[space:]
	}
	return nil
}

// flush writes the buffered keys to the file.
func (w *segmentWriter) flush() error {
	if w.fill == 0 {
		return nil
	}
	st := w.st
	if _, err := st.file.WriteAt(st.wbuf[:w.fill*keyBytes], st.fileEnd); err != nil {
		return fmt.Errorf("extsort: spill write: %w", err)
	}
	st.fileEnd += int64(w.fill * keyBytes)
	w.fill = 0
	return nil
}

// finish flushes, accounts the spill, and returns the segment handle.
func (w *segmentWriter) finish() (runHandle, error) {
	if err := w.flush(); err != nil {
		return runHandle{}, err
	}
	st := w.st
	bytes := int64(w.count) * keyBytes
	st.stats.SpilledRuns++
	st.stats.SpilledBytes += bytes
	if st.met != nil {
		st.met.spillRuns.Inc()
		st.met.spillBytes.Add(bytes)
	}
	return runHandle{off: w.off, count: w.count}, nil
}

// release returns a consumed handle's residency to the budget.
func (st *runStore) release(h runHandle) {
	if h.mem != nil {
		st.resident -= len(h.mem)
	}
}

// close releases the spill file (and with it, by the unlink above, the
// disk space). Safe to call when nothing ever spilled, and idempotent.
func (st *runStore) close() {
	if st.file != nil {
		st.file.Close()
		st.file = nil
	}
}

// stream opens a cursor over one run.
func (st *runStore) stream(h runHandle) keyStream {
	if h.mem != nil {
		return &memStream{keys: h.mem}
	}
	return &spillStream{
		file:      st.file,
		off:       h.off,
		remaining: h.count,
		buf:       make([]Key, 0, spillBufKeys),
		raw:       make([]byte, spillBufKeys*keyBytes),
	}
}

// keyStream is a pull cursor over one sorted run.
type keyStream interface {
	// next returns the stream's head and advances; ok=false at the end
	// — or on a read error, which fail() then reports, so an exhausted
	// stream is never conflated with a failed one.
	next() (Key, bool)
	// fail returns the first read error, nil on a clean stream.
	fail() error
}

// memStream cursors a resident run.
type memStream struct {
	keys []Key
	pos  int
}

func (s *memStream) next() (Key, bool) {
	if s.pos == len(s.keys) {
		return 0, false
	}
	k := s.keys[s.pos]
	s.pos++
	return k, true
}

func (s *memStream) fail() error { return nil }

// spillStream cursors a spill segment through a positional read buffer;
// multiple spill streams share the file descriptor safely because every
// read is an offset ReadAt.
type spillStream struct {
	file      *os.File
	off       int64
	remaining int
	buf       []Key
	raw       []byte
	pos       int
	err       error
}

func (s *spillStream) fail() error { return s.err }

func (s *spillStream) next() (Key, bool) {
	if s.pos == len(s.buf) {
		if !s.refill() {
			return 0, false
		}
	}
	k := s.buf[s.pos]
	s.pos++
	return k, true
}

// refill reads the next block of the segment.
func (s *spillStream) refill() bool {
	if s.remaining == 0 || s.err != nil {
		return false
	}
	n := spillBufKeys
	if n > s.remaining {
		n = s.remaining
	}
	raw := s.raw[:n*keyBytes]
	if _, err := s.file.ReadAt(raw, s.off); err != nil {
		s.err = fmt.Errorf("extsort: spill read: %w", err)
		return false
	}
	s.buf = s.buf[:n]
	for i := range s.buf {
		s.buf[i] = Key(binary.LittleEndian.Uint64(raw[i*keyBytes:]))
	}
	s.off += int64(n * keyBytes)
	s.remaining -= n
	s.pos = 0
	return true
}
