package extsort

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"testing"

	"productsort/internal/graph"
	"productsort/internal/product"
	"productsort/internal/schedule"
	"productsort/internal/sort2d"
)

// compiledSorter builds the certified-network run sorter over a 16-node
// hypercube — small enough that every test shape exercises ragged-tail
// padding, real enough that the runs go through the same columnar
// replay production uses.
func compiledSorter(t testing.TB) *NetworkSorter {
	t.Helper()
	prog, err := schedule.Compile(product.MustNew(graph.K2(), 4), sort2d.Auto{})
	if err != nil {
		t.Fatal(err)
	}
	return NewNetworkSorter(prog, 1)
}

// oracle returns keys sorted by the standard library.
func oracle(keys []Key) []Key {
	want := append([]Key(nil), keys...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	return want
}

// runSort drives Sort over an in-memory stream and returns the output
// and stats.
func runSort(t *testing.T, keys []Key, sorter RunSorter, cfg Config) ([]Key, *Stats) {
	t.Helper()
	out := NewSliceWriter()
	stats, err := Sort(context.Background(), NewSliceReader(keys), out, sorter, cfg)
	if err != nil {
		t.Fatalf("Sort: %v", err)
	}
	return out.Keys(), stats
}

// checkEqual fails unless got matches the oracle for keys.
func checkEqual(t *testing.T, keys, got []Key, label string) {
	t.Helper()
	want := oracle(keys)
	if len(got) != len(want) {
		t.Fatalf("%s: %d keys out, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: mismatch at %d: got %d want %d", label, i, got[i], want[i])
		}
	}
}

// adversarialShapes is the oracle equivalence battery's input matrix:
// every shape the merge or the run former could plausibly mishandle.
func adversarialShapes(runSize int) map[string][]Key {
	shapes := map[string][]Key{}
	rng := rand.New(rand.NewSource(7))
	n := runSize*7 + 3 // ragged tail by construction
	asc := make([]Key, n)
	desc := make([]Key, n)
	eq := make([]Key, n)
	rnd := make([]Key, n)
	for i := 0; i < n; i++ {
		asc[i] = Key(i - n/2)
		desc[i] = Key(n/2 - i)
		eq[i] = 42
		rnd[i] = Key(rng.Int63n(1<<40) - 1<<39)
	}
	shapes["already-sorted"] = asc
	shapes["reverse"] = desc
	shapes["all-equal"] = eq
	shapes["random"] = rnd
	shapes["empty"] = nil
	shapes["one-key"] = []Key{-9}
	// Run-size boundaries: exactly k runs, one short, one over.
	for _, d := range []int{-1, 0, 1} {
		m := runSize*4 + d
		keys := make([]Key, m)
		for i := range keys {
			keys[i] = Key(rng.Int63())
		}
		shapes[fmt.Sprintf("runsize%+d", d)] = keys
	}
	// Exactly one run, and one run minus/plus one key.
	for _, m := range []int{runSize - 1, runSize, runSize + 1} {
		keys := make([]Key, m)
		for i := range keys {
			keys[i] = Key(rng.Int63()) - 1<<62
		}
		shapes[fmt.Sprintf("one-run-%d", m)] = keys
	}
	return shapes
}

// TestSortStreamOracleNetwork: the full battery through the certified
// network run sorter, at fan-in 2 (maximum merge depth) and a fan-in
// wide enough for a single merge pass.
func TestSortStreamOracleNetwork(t *testing.T) {
	sorter := compiledSorter(t)
	runSize := sorter.MaxRun() // 16
	for _, fanIn := range []int{2, 64} {
		for name, keys := range adversarialShapes(runSize) {
			t.Run(fmt.Sprintf("fanin%d/%s", fanIn, name), func(t *testing.T) {
				got, stats := runSort(t, keys, sorter, Config{RunSize: runSize, FanIn: fanIn})
				checkEqual(t, keys, got, name)
				if want := int64(len(keys)); stats.Keys != want {
					t.Fatalf("stats.Keys = %d, want %d", stats.Keys, want)
				}
				if len(keys) > 0 && stats.Runs != int64((len(keys)+runSize-1)/runSize) {
					t.Fatalf("stats.Runs = %d for %d keys at run size %d", stats.Runs, len(keys), runSize)
				}
			})
		}
	}
}

// TestSortStreamSingleKeyRuns: RunSize 1 degenerates run formation to
// per-key runs — the merge does all the sorting.
func TestSortStreamSingleKeyRuns(t *testing.T) {
	keys := []Key{5, -2, 9, 0, 0, -2, 7, 3, 3, 1}
	got, stats := runSort(t, keys, SliceSorter{}, Config{RunSize: 1, FanIn: 2})
	checkEqual(t, keys, got, "single-key runs")
	if stats.Runs != int64(len(keys)) {
		t.Fatalf("Runs = %d, want %d", stats.Runs, len(keys))
	}
	if stats.MergePasses < 3 {
		t.Fatalf("MergePasses = %d, want >= 3 for 10 runs at fan-in 2", stats.MergePasses)
	}
}

// TestSortStreamSpill: a resident budget far below the input forces
// runs and intermediate merges through the spill file, and the output
// must still match the oracle byte for byte.
func TestSortStreamSpill(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	keys := make([]Key, 80_000)
	for i := range keys {
		keys[i] = Key(rng.Int63() - 1<<62)
	}
	cfg := Config{
		RunSize:    512,
		FanIn:      4,
		MemoryKeys: 1, // clamped up to the merge floor; far below the input
		SpillDir:   t.TempDir(),
	}
	got, stats := runSort(t, keys, SliceSorter{}, cfg)
	checkEqual(t, keys, got, "spill")
	if stats.SpilledRuns == 0 || stats.SpilledBytes == 0 {
		t.Fatalf("expected spilling, got stats %+v", stats)
	}
	if stats.MergePasses < 2 {
		t.Fatalf("MergePasses = %d, want >= 2 at fan-in 4 over %d runs", stats.MergePasses, stats.Runs)
	}
}

// TestSortStreamSentinelKeys: keys at the sentinel value (MaxInt64)
// must survive the padding round-trip.
func TestSortStreamSentinelKeys(t *testing.T) {
	keys := []Key{schedule.Sentinel, 3, schedule.Sentinel, -1, 0, schedule.Sentinel - 1}
	sorter := compiledSorter(t)
	got, _ := runSort(t, keys, sorter, Config{RunSize: 4, FanIn: 2})
	checkEqual(t, keys, got, "sentinel keys")
}

// recordingSorter wraps a RunSorter and snapshots every run after
// sorting — the battery's independence hook: runs are verified sorted
// on their own, so a merge bug cannot be masked by (or blamed on) the
// run sorter.
type recordingSorter struct {
	inner RunSorter
	runs  [][]Key
}

func (r *recordingSorter) MaxRun() int { return r.inner.MaxRun() }

func (r *recordingSorter) SortRuns(ctx context.Context, runs [][]Key) error {
	if err := r.inner.SortRuns(ctx, runs); err != nil {
		return err
	}
	for _, run := range runs {
		r.runs = append(r.runs, append([]Key(nil), run...))
	}
	return nil
}

// TestEveryRunSortedIndependently: the property test behind the merge's
// precondition. Every run handed to the merge is snapshotted and
// verified sorted with the stdlib — independently of whether the final
// output checks out — over randomized sizes and run sizes.
func TestEveryRunSortedIndependently(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	base := compiledSorter(t)
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(2000)
		runSize := 1 + rng.Intn(base.MaxRun())
		keys := make([]Key, n)
		for i := range keys {
			keys[i] = Key(rng.Int63n(1024) - 512) // narrow domain: many duplicates
		}
		rec := &recordingSorter{inner: base}
		got, stats := runSort(t, keys, rec, Config{RunSize: runSize, FanIn: 2 + rng.Intn(8)})
		var total int
		for i, run := range rec.runs {
			if !sort.SliceIsSorted(run, func(a, b int) bool { return run[a] < run[b] }) {
				t.Fatalf("trial %d: run %d (%d keys) entered the merge unsorted", trial, i, len(run))
			}
			total += len(run)
		}
		if total != n {
			t.Fatalf("trial %d: runs carry %d keys, input had %d", trial, total, n)
		}
		if int64(len(rec.runs)) != stats.Runs {
			t.Fatalf("trial %d: recorded %d runs, stats say %d", trial, len(rec.runs), stats.Runs)
		}
		checkEqual(t, keys, got, fmt.Sprintf("trial %d", trial))
	}
}

// brokenSorter leaves one run unsorted on purpose.
type brokenSorter struct{ calls int }

func (b *brokenSorter) MaxRun() int { return 64 }

func (b *brokenSorter) SortRuns(ctx context.Context, runs [][]Key) error {
	for _, run := range runs {
		b.calls++
		if b.calls == 2 {
			continue // leave the second run as it arrived
		}
		sort.Slice(run, func(i, j int) bool { return run[i] < run[j] })
	}
	return nil
}

// TestVerifyRunsCatchesBrokenSorter: with VerifyRuns set, an unsorted
// run is rejected with the typed error instead of feeding the merge.
func TestVerifyRunsCatchesBrokenSorter(t *testing.T) {
	keys := make([]Key, 256)
	for i := range keys {
		keys[i] = Key(255 - i)
	}
	_, err := Sort(context.Background(), NewSliceReader(keys), NewSliceWriter(),
		&brokenSorter{}, Config{RunSize: 64, FanIn: 2, VerifyRuns: true, RunBatch: 1})
	if !errors.Is(err, ErrRunUnsorted) {
		t.Fatalf("err = %v, want ErrRunUnsorted", err)
	}
}

// TestSortConfigValidation: bad knobs fail fast with *ConfigError.
func TestSortConfigValidation(t *testing.T) {
	src := func() Reader { return NewSliceReader([]Key{1}) }
	cases := []Config{
		{RunSize: -1},
		{FanIn: -3},
		{FanIn: 1},
		{RunBatch: -1},
		{MemoryKeys: -1},
		{RunSize: 99}, // exceeds SliceSorter{Max: 8}
	}
	for i, cfg := range cases {
		_, err := Sort(context.Background(), src(), NewSliceWriter(), SliceSorter{Max: 8}, cfg)
		var ce *ConfigError
		if !errors.As(err, &ce) {
			t.Fatalf("case %d (%+v): err = %v, want *ConfigError", i, cfg, err)
		}
	}
	if _, err := Sort(context.Background(), src(), NewSliceWriter(), nil, Config{}); !errors.Is(err, ErrNilSorter) {
		t.Fatalf("nil sorter: err = %v", err)
	}
}

// TestSortEmptyStream: an immediately-EOF source produces no output
// and no error.
func TestSortEmptyStream(t *testing.T) {
	out := NewSliceWriter()
	stats, err := Sort(context.Background(), FuncReader(func([]Key) (int, error) { return 0, io.EOF }),
		out, SliceSorter{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Keys()) != 0 || stats.Keys != 0 || stats.Runs != 0 {
		t.Fatalf("empty stream produced %d keys, stats %+v", len(out.Keys()), stats)
	}
}

// TestLoserTreeMerge: the tree against a heap-free reference across
// widths 1..33, including exhausted-at-start and duplicate-heavy
// streams.
func TestLoserTreeMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for k := 1; k <= 33; k++ {
		var all []Key
		streams := make([]keyStream, k)
		for i := range streams {
			n := rng.Intn(20) // sometimes zero: exhausted before the first pop
			run := make([]Key, n)
			for j := range run {
				run[j] = Key(rng.Intn(50))
			}
			sort.Slice(run, func(a, b int) bool { return run[a] < run[b] })
			all = append(all, run...)
			streams[i] = &memStream{keys: run}
		}
		lt := newLoserTree(streams)
		var got []Key
		for {
			v, ok := lt.pop()
			if !ok {
				break
			}
			got = append(got, v)
		}
		if err := lt.fail(); err != nil {
			t.Fatal(err)
		}
		checkEqual(t, all, got, fmt.Sprintf("k=%d", k))
	}
}
