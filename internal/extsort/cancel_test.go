package extsort

import (
	"context"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"
)

// TestSortStreamCancelMidStream: cancelling mid-sort returns the
// context's error promptly, leaks no goroutine, leaves no spill file
// behind, and leaves the sorter reusable (pooled buffers intact). Run
// under -race in CI's extsort job.
func TestSortStreamCancelMidStream(t *testing.T) {
	sorter := compiledSorter(t)
	spillDir := t.TempDir()
	baseline := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	rng := rand.New(rand.NewSource(5))
	var produced int
	src := FuncReader(func(dst []Key) (int, error) {
		// Cancel mid-stream, then keep producing: the tier must stop on
		// the context, not on EOF.
		if produced > 200_000 {
			cancel()
		}
		for i := range dst {
			dst[i] = Key(rng.Int63())
		}
		produced += len(dst)
		return len(dst), nil
	})
	cfg := Config{RunSize: 16, FanIn: 4, MemoryKeys: 1, SpillDir: spillDir}
	done := make(chan error, 1)
	go func() {
		_, err := Sort(ctx, src, NewSliceWriter(), sorter, cfg)
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Sort did not honor cancellation")
	}

	// No goroutine may outlive the cancelled sort. The batch replay's
	// workers join before return, so the count settles back to (at
	// most) the baseline; poll briefly to let exiting goroutines park.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > baseline {
		t.Fatalf("goroutines leaked: %d running, baseline %d", g, baseline)
	}

	// Spill files are unlinked at creation, so the spill dir must be
	// empty the moment Sort returns — cancelled or not.
	entries, err := os.ReadDir(spillDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		t.Fatalf("spill file left behind: %s", filepath.Join(spillDir, e.Name()))
	}

	// The sorter (and its pooled column slabs) must survive a
	// cancelled run: a fresh sort through the same sorter still works.
	keys := make([]Key, 5000)
	for i := range keys {
		keys[i] = Key(rng.Int63())
	}
	got, _ := runSort(t, keys, sorter, cfg)
	checkEqual(t, keys, got, "post-cancel reuse")
}

// TestSortStreamCancelBeforeStart: an already-cancelled context fails
// before any key is read.
func TestSortStreamCancelBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	reads := 0
	src := FuncReader(func(dst []Key) (int, error) { reads++; return len(dst), nil })
	_, err := Sort(ctx, src, NewSliceWriter(), SliceSorter{}, Config{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if reads != 0 {
		t.Fatalf("source read %d times under a dead context", reads)
	}
}
