package prouting

import (
	"math/rand"
	"testing"

	"productsort/internal/graph"
	"productsort/internal/product"
)

func TestIdentityFree(t *testing.T) {
	r := New(product.MustNew(graph.Path(3), 2))
	perm := []int{0, 1, 2, 3, 4, 5, 6, 7, 8}
	st := r.Route(perm)
	if st.Rounds != 0 || st.TotalHops != 0 {
		t.Errorf("identity cost %+v", st)
	}
}

func TestValidation(t *testing.T) {
	r := New(product.MustNew(graph.Path(3), 1))
	defer func() {
		if recover() == nil {
			t.Fatal("non-permutation accepted")
		}
	}()
	r.Route([]int{0, 0, 1})
}

func TestDistMatchesNetwork(t *testing.T) {
	nets := []*product.Network{
		product.MustNew(graph.Path(4), 2),
		product.MustNew(graph.Petersen(), 2),
		product.MustNewHetero([]*graph.Graph{graph.Path(3), graph.Cycle(4)}),
	}
	for _, net := range nets {
		r := New(net)
		for a := 0; a < net.Nodes(); a += 3 {
			for b := 0; b < net.Nodes(); b += 5 {
				if r.Dist(a, b) != net.Dist(a, b) {
					t.Fatalf("%s: Dist(%d,%d) disagreement", net.Name(), a, b)
				}
			}
		}
	}
}

func TestSingleSwapCost(t *testing.T) {
	// Two adjacent nodes swapping: 1 round (full duplex).
	net := product.MustNew(graph.Path(4), 2)
	r := New(net)
	perm := make([]int, 16)
	for i := range perm {
		perm[i] = i
	}
	perm[0], perm[1] = 1, 0
	st := r.Route(perm)
	if st.Rounds != 1 || st.TotalHops != 2 {
		t.Errorf("adjacent swap: %+v", st)
	}
}

func TestRandomPermutationsDeliver(t *testing.T) {
	nets := []*product.Network{
		product.MustNew(graph.Path(4), 2),
		product.MustNew(graph.K2(), 5),
		product.MustNew(graph.Petersen(), 2),
		product.MustNew(graph.CompleteBinaryTree(3), 2),
		product.MustNewHetero([]*graph.Graph{graph.Path(4), graph.Path(3), graph.Path(2)}),
	}
	rng := rand.New(rand.NewSource(12))
	for _, net := range nets {
		r := New(net)
		for trial := 0; trial < 8; trial++ {
			st := r.Route(rng.Perm(net.Nodes()))
			if st.Rounds < net.Diameter()/2 && st.Rounds > 0 {
				// fine: random permutations need not span the diameter
				_ = st
			}
			if st.Rounds > 6*net.Nodes() {
				t.Errorf("%s: permutation took %d rounds (nodes=%d)", net.Name(), st.Rounds, net.Nodes())
			}
		}
	}
}

func TestAntipodalLowerBound(t *testing.T) {
	// The digit-complement permutation moves corner packets across the
	// full diameter on path/K2 factors.
	for _, net := range []*product.Network{
		product.MustNew(graph.Path(4), 2),
		product.MustNew(graph.Path(4), 3),
		product.MustNew(graph.K2(), 6),
	} {
		r := New(net)
		st := r.Antipodal()
		if st.Rounds < net.Diameter() {
			t.Errorf("%s: antipodal %d rounds < diameter %d", net.Name(), st.Rounds, net.Diameter())
		}
		if st.MaxQueue < 1 {
			t.Errorf("%s: max queue %d", net.Name(), st.MaxQueue)
		}
	}
}

// TestSnakeReversalIsOneDimensional documents the reflected-Gray fact:
// for EVEN radices the snake reversal pairs nodes that differ only in
// the top dimension (R(Q_r) = Q_r with the top symbol complemented), so
// it routes in very few rounds. Odd radices break the property — see
// TestSnakeReversalOddRadixSpreads.
func TestSnakeReversalIsOneDimensional(t *testing.T) {
	for _, net := range []*product.Network{
		product.MustNew(graph.Path(4), 2),
		product.MustNew(graph.K2(), 6),
		product.MustNew(graph.Path(6), 2),
	} {
		n := net.Nodes()
		for pos := 0; pos < n; pos++ {
			a, b := net.NodeAtSnake(pos), net.NodeAtSnake(n-1-pos)
			diffs := 0
			for dim := 1; dim <= net.R(); dim++ {
				if net.Digit(a, dim) != net.Digit(b, dim) {
					diffs++
				}
			}
			if diffs > 1 {
				t.Fatalf("%s: snake reversal pairs differ in %d dims at pos %d", net.Name(), diffs, pos)
			}
		}
		r := New(net)
		st := r.SnakeReversal()
		if st.Rounds > 2*net.N() {
			t.Errorf("%s: snake reversal took %d rounds, expected ≤ 2x factor size", net.Name(), st.Rounds)
		}
	}
}

// TestHypercubeDimensionOrderedTranspose: the bit-reversal permutation
// is the classic bad case for dimension-ordered routing on the
// hypercube — expect rounds well above the diameter but bounded.
// TestSnakeReversalOddRadixSpreads: with an odd radix the reversed
// sequence is NOT a single-symbol complement (slab u and slab N-1-u have
// the same parity, so the reflection recurses), and corner pairs differ
// in every dimension.
func TestSnakeReversalOddRadixSpreads(t *testing.T) {
	net := product.MustNew(graph.Path(3), 3)
	a, b := net.NodeAtSnake(0), net.NodeAtSnake(net.Nodes()-1)
	diffs := 0
	for dim := 1; dim <= 3; dim++ {
		if net.Digit(a, dim) != net.Digit(b, dim) {
			diffs++
		}
	}
	if diffs != 3 {
		t.Errorf("odd-radix endpoints differ in %d dims, want 3", diffs)
	}
	st := New(net).SnakeReversal()
	if st.Rounds <= 3 {
		t.Errorf("odd-radix snake reversal suspiciously cheap: %+v", st)
	}
}

func TestHypercubeBitReversal(t *testing.T) {
	net := product.MustNew(graph.K2(), 6)
	r := New(net)
	perm := make([]int, 64)
	for v := range perm {
		rev := 0
		for b := 0; b < 6; b++ {
			if v&(1<<b) != 0 {
				rev |= 1 << (5 - b)
			}
		}
		perm[v] = rev
	}
	st := r.Route(perm)
	if st.Rounds < 6 {
		t.Errorf("bit reversal took %d rounds, below diameter", st.Rounds)
	}
	if st.Rounds > 64 {
		t.Errorf("bit reversal took %d rounds, suspiciously congested", st.Rounds)
	}
	t.Logf("bit reversal on Q6: %+v", st)
}

func TestTotalHopsEqualSumOfDistances(t *testing.T) {
	// Dimension-ordered paths are shortest paths, so total hops must
	// equal the sum of distances.
	net := product.MustNew(graph.Path(3), 3)
	r := New(net)
	rng := rand.New(rand.NewSource(5))
	perm := rng.Perm(27)
	want := 0
	for v, d := range perm {
		want += net.Dist(v, d)
	}
	st := r.Route(perm)
	if st.TotalHops != want {
		t.Errorf("total hops %d want %d", st.TotalHops, want)
	}
}

func BenchmarkRouteRandomGrid64(b *testing.B) {
	net := product.MustNew(graph.Path(8), 2)
	r := New(net)
	rng := rand.New(rand.NewSource(1))
	perms := make([][]int, 16)
	for i := range perms {
		perms[i] = rng.Perm(64)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Route(perms[i%len(perms)])
	}
}
