package prouting_test

import (
	"fmt"

	"productsort/internal/graph"
	"productsort/internal/product"
	"productsort/internal/prouting"
)

// Routing a permutation prices explicit data movement in the same round
// unit the sorting algorithm uses.
func ExampleRouter_Route() {
	net := product.MustNew(graph.Path(4), 2) // 4×4 grid
	r := prouting.New(net)
	perm := make([]int, 16)
	for i := range perm {
		perm[i] = 15 - i // corner-to-corner reversal
	}
	st := r.Route(perm)
	fmt.Println("rounds ≥ diameter:", st.Rounds >= net.Diameter())
	fmt.Println("total hops:", st.TotalHops)
	// Output:
	// rounds ≥ diameter: true
	// total hops: 64
}
