// Package prouting simulates permutation routing on whole product
// networks (one packet per node), complementing package routing, which
// handles single factor graphs. The paper's related work ([4], [12])
// studies exactly this substrate; here it prices the data movements
// that comparison-based phases avoid (e.g. Columnsort's hard-wired
// permutations, experiment E8/E14).
//
// Packets follow dimension-ordered paths: a packet first corrects its
// dimension-1 symbol by moving inside its current dimension-1 subgraph
// (along factor shortest paths), then dimension 2, and so on. The model
// is synchronous, single-port and full-duplex — per round every node
// sends at most one packet and receives at most one — with unbounded
// FIFO-less queues resolved farthest-remaining-distance first, which
// guarantees progress every round.
package prouting

import (
	"fmt"
	"sort"

	"productsort/internal/graph"
	"productsort/internal/product"
	"productsort/internal/routing"
)

// Router routes permutations on a product network.
type Router struct {
	net   *product.Network
	plans []*routing.Plan // per dimension, shared across equal factors
}

// New builds a router (one factor routing plan per distinct factor).
func New(net *product.Network) *Router {
	byFactor := make(map[*graph.Graph]*routing.Plan)
	plans := make([]*routing.Plan, net.R())
	for dim := 1; dim <= net.R(); dim++ {
		g := net.FactorAt(dim)
		if byFactor[g] == nil {
			byFactor[g] = routing.NewPlan(g)
		}
		plans[dim-1] = byFactor[g]
	}
	return &Router{net: net, plans: plans}
}

// Net returns the router's network.
func (r *Router) Net() *product.Network { return r.net }

// Dist returns the dimension-ordered path length from src to dst (the
// sum of factor distances — also the shortest-path length in a product).
func (r *Router) Dist(src, dst int) int {
	d := 0
	for dim := 1; dim <= r.net.R(); dim++ {
		a, b := r.net.Digit(src, dim), r.net.Digit(dst, dim)
		if a != b {
			d += r.plans[dim-1].Dist(a, b)
		}
	}
	return d
}

// nextHop returns the neighbor on the dimension-ordered path toward dst.
func (r *Router) nextHop(cur, dst int) int {
	for dim := 1; dim <= r.net.R(); dim++ {
		a, b := r.net.Digit(cur, dim), r.net.Digit(dst, dim)
		if a != b {
			return r.net.SetDigit(cur, dim, r.plans[dim-1].NextHop(a, b))
		}
	}
	panic("prouting: nextHop at destination")
}

// Stats reports one routing simulation.
type Stats struct {
	// Rounds is the parallel routing time.
	Rounds int
	// MaxQueue is the largest per-node queue observed (buffering need).
	MaxQueue int
	// TotalHops is the summed hop count of all packets.
	TotalHops int
}

// Route simulates routing the permutation perm (node v's packet is
// destined for perm[v]) and returns its statistics.
func (r *Router) Route(perm []int) Stats {
	n := r.net.Nodes()
	if len(perm) != n {
		panic(fmt.Sprintf("prouting: permutation length %d, want %d", len(perm), n))
	}
	check := make([]bool, n)
	for _, d := range perm {
		if d < 0 || d >= n || check[d] {
			panic("prouting: not a permutation")
		}
		check[d] = true
	}

	type packet struct{ at, dst int }
	queues := make([][]packet, n)
	live := 0
	for v, d := range perm {
		if v != d {
			queues[v] = append(queues[v], packet{v, d})
			live++
		}
	}
	var st Stats
	cap := 4*n*r.net.Diameter() + 64
	for live > 0 {
		st.Rounds++
		if st.Rounds > cap {
			panic("prouting: no progress (scheduler bug)")
		}
		// Gather the best candidate per sending node.
		type move struct {
			node, idx, hop, remaining int
		}
		var moves []move
		for v := range queues {
			best := -1
			bestRem := -1
			for i, pk := range queues[v] {
				rem := r.Dist(pk.at, pk.dst)
				if rem > bestRem {
					bestRem, best = rem, i
				}
			}
			if best >= 0 {
				moves = append(moves, move{v, best, r.nextHop(v, queues[v][best].dst), bestRem})
			}
			if len(queues[v]) > st.MaxQueue {
				st.MaxQueue = len(queues[v])
			}
		}
		sort.Slice(moves, func(a, b int) bool {
			if moves[a].remaining != moves[b].remaining {
				return moves[a].remaining > moves[b].remaining
			}
			return moves[a].node < moves[b].node
		})
		recvBusy := make(map[int]bool, len(moves))
		type accepted struct{ from, idx, hop int }
		var acc []accepted
		for _, mv := range moves {
			if recvBusy[mv.hop] {
				continue
			}
			recvBusy[mv.hop] = true
			acc = append(acc, accepted{mv.node, mv.idx, mv.hop})
		}
		// Apply accepted moves (removals first to keep indices valid).
		for _, a := range acc {
			pk := queues[a.from][a.idx]
			queues[a.from] = append(queues[a.from][:a.idx], queues[a.from][a.idx+1:]...)
			pk.at = a.hop
			st.TotalHops++
			if pk.at == pk.dst {
				live--
			} else {
				queues[a.hop] = append(queues[a.hop], pk)
			}
		}
	}
	return st
}

// Antipodal routes the digit-complement permutation: every symbol x at
// dimension d becomes radix(d)-1-x. For path factors a corner packet
// crosses the full diameter, making this a diameter-realizing workload.
//
// (The snake-reversal permutation, by contrast, is nearly free: in a
// reflected Gray code the reversed sequence differs from the original
// only in the most significant symbol, so it is a single-dimension
// exchange — a property worth knowing when choosing routing workloads.)
func (r *Router) Antipodal() Stats {
	n := r.net.Nodes()
	perm := make([]int, n)
	for id := 0; id < n; id++ {
		dst := id
		for dim := 1; dim <= r.net.R(); dim++ {
			dst = r.net.SetDigit(dst, dim, r.net.Radix(dim)-1-r.net.Digit(dst, dim))
		}
		perm[id] = dst
	}
	return r.Route(perm)
}

// SnakeReversal routes the permutation sending the node at snake
// position p to position n-1-p. For even radices the reflected-Gray
// structure makes this a one-dimension exchange (reversing Q_r only
// complements the top symbol), so it routes in a handful of rounds; for
// odd radices the reflection recurses into lower dimensions and the
// permutation genuinely spreads. Kept as an executable demonstration of
// that parity dichotomy.
func (r *Router) SnakeReversal() Stats {
	n := r.net.Nodes()
	perm := make([]int, n)
	for pos := 0; pos < n; pos++ {
		perm[r.net.NodeAtSnake(pos)] = r.net.NodeAtSnake(n - 1 - pos)
	}
	return r.Route(perm)
}
