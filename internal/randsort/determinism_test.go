package randsort

import (
	"reflect"
	"testing"

	"productsort/internal/schedule"
	"productsort/internal/simnet"
)

// TestSplitmix64ReferenceVectors pins the stream construction to the
// published SplitMix64 algorithm (Steele, Lea & Flood): the finalizer
// on the standard single-step inputs and the generator sequence from
// state zero must reproduce the reference outputs bit for bit. Every
// realized comparator sequence, fault decision and sortedness sample
// derives from these streams, so silent drift here would change every
// recorded randomized run.
func TestSplitmix64ReferenceVectors(t *testing.T) {
	for _, tc := range []struct {
		in, want uint64
	}{
		{0, 0xE220A8397B1DCDAF},
		{1, 0x910A2DEC89025CC1},
		{0xDEADBEEF, 0x4ADFB90F68C9EB9B},
	} {
		if got := splitmix64(tc.in); got != tc.want {
			t.Errorf("splitmix64(%#x) = %#016x, want %#016x", tc.in, got, tc.want)
		}
	}
	var s stream // generator from state 0: the canonical published sequence
	for i, want := range []uint64{
		0xE220A8397B1DCDAF, 0x6E789E6AA1B965F4, 0x06C45D188009454F,
		0xF88BB8A8724C81EC, 0x1B39896A51A8749B,
	} {
		if got := s.next(); got != want {
			t.Fatalf("stream.next()[%d] = %#016x, want %#016x", i, got, want)
		}
	}
}

// TestStreamsDecorrelated: distinct tags and rounds must yield distinct
// streams for the same seed (the decorrelation the tag constants buy),
// while identical (seed, tag, round) triples must collide exactly.
func TestStreamsDecorrelated(t *testing.T) {
	a := newStream(7, tagDraw, 3)
	b := newStream(7, tagDraw, 3)
	if a.next() != b.next() || a.next() != b.next() {
		t.Fatal("identical (seed, tag, round) produced different streams")
	}
	c := newStream(7, tagSample, 3)
	d := newStream(7, tagDraw, 4)
	e := newStream(8, tagDraw, 3)
	first := func(s stream) uint64 { return s.next() }
	base := first(newStream(7, tagDraw, 3))
	for name, s := range map[string]stream{"tag": c, "round": d, "seed": e} {
		if first(s) == base {
			t.Errorf("stream differing only in %s collided with the base stream", name)
		}
	}
}

// TestDrawRoundSeedMatrix drives drawRound directly across a seed
// matrix: engines sharing a seed must realize byte-identical matchings
// round for round, and every distinct seed must diverge somewhere in
// the window.
func TestDrawRoundSeedMatrix(t *testing.T) {
	const rounds = 64
	draw := func(seed int64) [][][2]int {
		e := engineFor(t, "grid4x4", Config{Seed: seed})
		seq := make([][][2]int, rounds)
		for r := 0; r < rounds; r++ {
			rep := new(Report)
			kept := e.drawRound(r, &rep.Faults, rep)
			// Deep-copy: the test must not depend on drawRound's
			// buffer ownership.
			seq[r] = append([][2]int(nil), kept...)
		}
		return seq
	}
	seeds := []int64{0, 1, 42, -7, 1 << 40}
	perSeed := make(map[int64][][][2]int, len(seeds))
	for _, seed := range seeds {
		a, b := draw(seed), draw(seed)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: two engines diverged on realized matchings", seed)
		}
		perSeed[seed] = a
	}
	for i, s1 := range seeds {
		for _, s2 := range seeds[i+1:] {
			if reflect.DeepEqual(perSeed[s1], perSeed[s2]) {
				t.Errorf("seeds %d and %d realized identical %d-round matchings", s1, s2, rounds)
			}
		}
	}
}

// recordingBackend replays through ExecBackend while appending every
// realized op, so a full Sort's comparator sequence can be compared
// across runs.
type recordingBackend struct {
	inner schedule.ExecBackend
	ops   []schedule.Op
}

func (rb *recordingBackend) Run(prog *schedule.Program, keys []simnet.Key) (simnet.Clock, error) {
	rb.ops = append(rb.ops, prog.Ops()...)
	return rb.inner.Run(prog, keys)
}

// TestSortSeedMatrixRealizedSequences is the end-to-end determinism
// guarantee: two full randomized sorts with the same (network, config,
// seed, input) must realize byte-identical comparator sequences,
// identical reports, and identical outputs — and a different seed must
// realize a different sequence.
func TestSortSeedMatrixRealizedSequences(t *testing.T) {
	for name, net := range testNets(t) {
		t.Run(name, func(t *testing.T) {
			run := func(seed int64) ([]schedule.Op, *Report, []simnet.Key) {
				rb := &recordingBackend{}
				e := engineFor(t, name, Config{Seed: seed, Inner: rb})
				keys := shuffled(net.Nodes(), 99)
				rep, err := e.Sort(keys)
				if err != nil {
					t.Fatal(err)
				}
				return rb.ops, rep, keys
			}
			ops1, rep1, out1 := run(5)
			ops2, rep2, out2 := run(5)
			if !reflect.DeepEqual(ops1, ops2) {
				t.Fatalf("same seed realized different comparator sequences (%d vs %d ops)", len(ops1), len(ops2))
			}
			if !reflect.DeepEqual(rep1, rep2) {
				t.Fatalf("same seed produced different reports:\n%+v\n%+v", rep1, rep2)
			}
			if !reflect.DeepEqual(out1, out2) {
				t.Fatal("same seed produced different outputs")
			}
			ops3, _, _ := run(6)
			if reflect.DeepEqual(ops1, ops3) {
				t.Error("different seeds realized identical comparator sequences")
			}
		})
	}
}

// engineFor builds an engine over the named test network.
func engineFor(t *testing.T, name string, cfg Config) *Engine {
	t.Helper()
	net, ok := testNets(t)[name]
	if !ok {
		t.Fatalf("no test network %q", name)
	}
	e, err := New(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}
