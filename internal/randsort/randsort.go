// Package randsort implements the randomized pairwise sort engine for
// product networks: instead of replaying an oblivious compiled
// schedule, it repeatedly draws compare-exchange pairs from a fixed
// distribution q over the network's edges (plus the snake-consecutive
// pairs that make local order imply global order) and applies them
// until a sampled sortedness check, a seeded 0-1 verifier over the
// realized comparator sequence, and a final deterministic scrub all
// agree the keys are sorted.
//
// The engine has no global proof obligation, which is exactly what
// makes it robust: a fault plan that drops or stalls exchanges merely
// thins q by the survival probability, rescaling the expected
// round count by its reciprocal (THEORY.md §14) instead of breaking a
// schedule invariant. Compare-exchanges are monotone — an oriented
// swap strictly decreases the inversion count against the snake order
// and a corrupt-free process can never unsort — so degraded runs
// converge later, not wrong.
//
// Realized rounds are flushed through a schedule.Backend as ordinary
// sub-programs, so replay, tracing and batch machinery all apply, and
// the realized comparator sequence doubles as the input to the
// cert-sampled runtime verifier (the 0-1 principle holds per
// realization: the comparators actually applied sort every input iff
// they sort every 0-1 vector).
package randsort

import (
	"errors"
	"fmt"
	"sort"

	"productsort/internal/cert"
	"productsort/internal/faults"
	"productsort/internal/graph"
	"productsort/internal/obs"
	"productsort/internal/product"
	"productsort/internal/schedule"
	"productsort/internal/simnet"
)

// EngineName is the compiled-engine name prefix; the q variant is
// appended ("randsort-uniform" etc.).
const EngineName = "randsort"

// Defaults, resolved by New when the corresponding Config field is 0.
const (
	// DefaultMaxRoundsPerNode scales the hard round cap with the
	// network: MaxRounds = DefaultMaxRoundsPerNode * nodes.
	DefaultMaxRoundsPerNode = 256
	// DefaultCheckEvery is the termination-check cadence in rounds.
	DefaultCheckEvery = 8
	// DefaultSamplePairs is the number of random snake-adjacent pairs
	// probed by the cheap sortedness gate before the verifier runs.
	DefaultSamplePairs = 24
	// DefaultVerifyVectors is the 0-1 vector budget per verifier run.
	DefaultVerifyVectors = 2048
)

// ErrRoundCap reports that the round cap elapsed before the verifier
// and scrub accepted the keys as sorted. The returned Report still
// describes the degraded run; keys hold the partially sorted state.
var ErrRoundCap = errors.New("randsort: round cap reached before verified convergence")

// ConfigError reports an invalid Config field.
type ConfigError struct {
	Field  string
	Reason string
}

// Error implements error.
func (e *ConfigError) Error() string {
	return fmt.Sprintf("randsort: config %s: %s", e.Field, e.Reason)
}

// Config parameterizes an Engine. The zero value selects QUniform and
// the package defaults; negative tuning fields are rejected with a
// *ConfigError rather than clamped.
type Config struct {
	// Variant selects the q distribution.
	Variant Variant
	// Seed drives every random choice (pair draws, sortedness samples,
	// verifier vectors). Runs are deterministic per (network, config).
	Seed int64
	// MaxRounds is the hard cap on synchronous rounds (0 selects
	// DefaultMaxRoundsPerNode * nodes).
	MaxRounds int
	// CheckEvery is the termination-check cadence in rounds (0 selects
	// DefaultCheckEvery).
	CheckEvery int
	// DrawsPerRound is the number of q draws attempted per round (0
	// selects the node count, the natural matching density).
	DrawsPerRound int
	// SamplePairs is the sampled sortedness gate's probe count (0
	// selects DefaultSamplePairs).
	SamplePairs int
	// VerifyVectors is the 0-1 vector budget per verifier run (0
	// selects DefaultVerifyVectors).
	VerifyVectors int
	// Faults optionally injects a deterministic fault plan: stalled
	// endpoints and dropped pairs thin the drawn matching, corruption
	// flips key bits mid-run, dead factor links shrink the candidate
	// pool and re-price snake steps as routed detours.
	Faults *faults.Plan
	// Inner replays the realized sub-programs (nil selects
	// schedule.ExecBackend over Tracer).
	Inner schedule.Backend
	// Tracer observes realized phases when Inner is nil.
	Tracer obs.Tracer
	// Metrics optionally receives randsort.* instruments.
	Metrics *obs.Metrics
}

// Report describes one randomized sort run.
type Report struct {
	// Variant is the q distribution's name.
	Variant string `json:"variant"`
	// Rounds is the number of synchronous rounds drawn.
	Rounds int `json:"rounds"`
	// RoundCharge is the total cost-model charge, including routed
	// detours (>= Rounds; an all-faulted round still burns one step).
	RoundCharge int `json:"roundCharge"`
	// Draws and Applied count q draws and the compare-exchanges that
	// survived matching and fault thinning.
	Draws   int `json:"draws"`
	Applied int `json:"applied"`
	// Routed counts realized rounds that needed multi-hop routing
	// (snake steps on non-Hamiltonian factors, dead-link detours).
	Routed int `json:"routed"`
	// Checks counts termination checks; SamplePasses how many passed
	// the sampled gate; VerifyRuns/VerifyVectors the verifier work.
	Checks        int    `json:"checks"`
	SamplePasses  int    `json:"samplePasses"`
	VerifyRuns    int    `json:"verifyRuns"`
	VerifyVectors uint64 `json:"verifyVectors"`
	// VerifierAccepted is true when the final verifier run certified
	// the realized comparator sequence over its 0-1 sample.
	VerifierAccepted bool `json:"verifierAccepted"`
	// ScrubSorted is the final deterministic full-snake scrub verdict.
	ScrubSorted bool `json:"scrubSorted"`
	// Converged is true when the run terminated by acceptance rather
	// than the round cap.
	Converged bool `json:"converged"`
	// Faults snapshots the plan's counters after the run (zero when no
	// plan was configured).
	Faults faults.Counters `json:"faults"`
}

// Engine is a reusable randomized sorter bound to one network and
// config. An Engine is not safe for concurrent Sort calls (it owns a
// per-round scratch matching buffer).
type Engine struct {
	net     *product.Network
	pricing *product.Network // surviving product when links are dead
	cfg     Config
	pool    []candidate
	cum     []float64
	total   float64
	cost    *simnet.CostModel
	used    []int // node -> last round it was matched in

	mRounds, mDraws, mApplied *obs.Counter
	mChecks, mVerifyRuns      *obs.Counter
	mVerifyVectors            *obs.Counter
	hConverge                 *obs.Histogram
}

// Name returns the engine name including the q variant, e.g.
// "randsort-snake-biased".
func (e *Engine) Name() string { return EngineName + "-" + e.cfg.Variant.String() }

// Pool returns the candidate pool size (after dead-link removal).
func (e *Engine) Pool() int { return len(e.pool) }

// New validates cfg, binds the fault plan's dead links, and builds the
// candidate pool and sampler for net.
func New(net *product.Network, cfg Config) (*Engine, error) {
	if net == nil {
		return nil, &ConfigError{Field: "Net", Reason: "nil network"}
	}
	if cfg.Variant > QSnakeBiased {
		return nil, &ConfigError{Field: "Variant", Reason: fmt.Sprintf("unknown variant %d", cfg.Variant)}
	}
	for _, f := range []struct {
		name string
		v    int
	}{
		{"MaxRounds", cfg.MaxRounds},
		{"CheckEvery", cfg.CheckEvery},
		{"DrawsPerRound", cfg.DrawsPerRound},
		{"SamplePairs", cfg.SamplePairs},
		{"VerifyVectors", cfg.VerifyVectors},
	} {
		if f.v < 0 {
			return nil, &ConfigError{Field: f.name, Reason: fmt.Sprintf("negative value %d", f.v)}
		}
	}
	n := net.Nodes()
	if cfg.MaxRounds == 0 {
		cfg.MaxRounds = DefaultMaxRoundsPerNode * n
	}
	if cfg.CheckEvery == 0 {
		cfg.CheckEvery = DefaultCheckEvery
	}
	if cfg.DrawsPerRound == 0 {
		cfg.DrawsPerRound = n
	}
	if cfg.SamplePairs == 0 {
		cfg.SamplePairs = DefaultSamplePairs
	}
	if cfg.VerifyVectors == 0 {
		cfg.VerifyVectors = DefaultVerifyVectors
	}

	pricing := net
	if cfg.Faults != nil {
		dead := false
		factors := make([]*graph.Graph, net.R())
		for dim := 1; dim <= net.R(); dim++ {
			if _, err := cfg.Faults.BindFactor(dim, net.FactorAt(dim)); err != nil {
				return nil, fmt.Errorf("randsort: bind fault plan: %w", err)
			}
			factors[dim-1] = net.FactorAt(dim)
			if g := cfg.Faults.SurvivingGraph(dim); g != nil {
				factors[dim-1] = g
				dead = true
			}
		}
		if dead {
			var err error
			pricing, err = product.NewHetero(factors)
			if err != nil {
				return nil, fmt.Errorf("randsort: degraded pricing network: %w", err)
			}
		}
	}

	e := &Engine{
		net:     net,
		pricing: pricing,
		cfg:     cfg,
		pool:    buildPool(net, cfg.Faults),
		cost:    simnet.NewCostModel(),
		used:    make([]int, n),
	}
	e.cum, e.total = weights(cfg.Variant, e.pool, net.R())
	if len(e.pool) == 0 || e.total <= 0 {
		return nil, &ConfigError{Field: "Faults", Reason: "fault plan leaves an empty candidate pool"}
	}
	for i := range e.used {
		e.used[i] = -1
	}
	if m := cfg.Metrics; m != nil {
		e.mRounds = m.Counter("randsort.rounds")
		e.mDraws = m.Counter("randsort.draws")
		e.mApplied = m.Counter("randsort.applied")
		e.mChecks = m.Counter("randsort.checks")
		e.mVerifyRuns = m.Counter("randsort.verify.runs")
		e.mVerifyVectors = m.Counter("randsort.verify.vectors")
		e.hConverge = m.Histogram("randsort.converge.rounds", obs.ConvergenceBuckets)
	}
	return e, nil
}

// splitmix64 is the finalizer behind the engine's deterministic
// streams (same construction as internal/faults).
func splitmix64(z uint64) uint64 {
	z += 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// stream is a per-(seed, tag, round) deterministic random stream.
type stream uint64

// Stream tags; distinct constants decorrelate the streams.
const (
	tagDraw   uint64 = 0x9D2A77B1
	tagSample uint64 = 0x5A0C3E19
)

func newStream(seed int64, tag uint64, round int) stream {
	return stream(splitmix64(uint64(seed)^(tag*0xA24BAED4963EE407)) ^ splitmix64(uint64(round)+tag))
}

func (s *stream) next() uint64 {
	*s = stream(uint64(*s) + 0x9E3779B97F4A7C15)
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// float returns a uniform float64 in [0, 1).
func (s *stream) float() float64 {
	return float64(s.next()>>11) / (1 << 53)
}

// Sort runs the randomized process over keys (indexed by node id,
// sorted in place into snake order) and reports convergence stats.
// On ErrRoundCap the report is still meaningful: it describes how far
// the degraded run got. Any other error is a backend or verifier
// failure.
func (e *Engine) Sort(keys []simnet.Key) (*Report, error) {
	n := e.net.Nodes()
	if len(keys) != n {
		return nil, fmt.Errorf("randsort: %d keys for %d nodes", len(keys), n)
	}
	rep := &Report{Variant: e.cfg.Variant.String()}
	defer e.observe(rep)

	inner := e.cfg.Inner
	if inner == nil {
		inner = schedule.ExecBackend{Tracer: e.cfg.Tracer}
	}
	plan := e.cfg.Faults
	var delta faults.Counters

	// pending accumulates realized ops awaiting replay; realized keeps
	// the whole run's comparator sequence for the verifier.
	var pending, realized []schedule.Op
	flush := func() error {
		if len(pending) == 0 {
			return nil
		}
		sub, err := schedule.NewProgram(e.net, e.Name(), pending)
		if err != nil {
			return fmt.Errorf("randsort: realized sub-program: %w", err)
		}
		if _, err := inner.Run(sub, keys); err != nil {
			return err
		}
		pending = pending[:0]
		return nil
	}

	for i := range e.used {
		e.used[i] = -1
	}
	// Verifier backoff: certification walks the whole realized
	// sequence, so running it at every passing check would cost
	// O(rounds²/CheckEvery) on heavily degraded runs. Rejections push
	// the next attempt out geometrically (~25% of the rounds so far),
	// bounding verifier work at O(log rounds) runs while delaying
	// acceptance by at most that same fraction. The cheap sampled gate
	// keeps running at every check.
	nextVerify := 0
	for round := 0; round < e.cfg.MaxRounds; round++ {
		rep.Rounds++
		kept := e.drawRound(round, &delta, rep)
		if len(kept) > 0 {
			cost := e.cost.PhaseCost(e.pricing, kept)
			kind := schedule.OpCompareExchange
			if cost > 1 {
				kind = schedule.OpRoutedExchange
				rep.Routed++
			}
			op := schedule.Op{Kind: kind, Pairs: kept, Cost: cost}
			pending = append(pending, op)
			realized = append(realized, op)
			rep.RoundCharge += cost
			rep.Applied += len(kept)
		} else {
			// A fully thinned round still burns a synchronous step:
			// faults cost time, never correctness.
			rep.RoundCharge++
		}
		if plan != nil {
			if node, mask, ok := plan.Corruption(0, round, n); ok {
				// Corrupt the live key state, not the comparator
				// stream: flush so the flip lands between realized
				// sub-programs.
				if err := flush(); err != nil {
					return rep, err
				}
				keys[node] ^= mask
				delta.Corrupted++
				delta.Injected++
			}
		}
		if (round+1)%e.cfg.CheckEvery != 0 {
			continue
		}
		if err := flush(); err != nil {
			return rep, err
		}
		rep.Checks++
		if !e.sampleSorted(keys, round) {
			continue
		}
		rep.SamplePasses++
		if round < nextVerify {
			continue
		}
		ok, err := e.verify(realized, rep, round)
		if err != nil {
			return rep, err
		}
		if !ok {
			nextVerify = round + round/4 + e.cfg.CheckEvery
			continue
		}
		rep.VerifierAccepted = true
		if !snakeSorted(e.net, keys) {
			// The realized comparators certify but the live state
			// disagrees (a corruption landed after the last exchange
			// touching that node): keep sorting.
			rep.VerifierAccepted = false
			continue
		}
		rep.ScrubSorted = true
		rep.Converged = true
		break
	}
	if err := flush(); err != nil {
		return rep, err
	}
	if plan != nil {
		plan.Add(delta)
		rep.Faults = plan.Counters()
	}
	if !rep.Converged {
		// Report the degraded final state honestly.
		rep.ScrubSorted = snakeSorted(e.net, keys)
		return rep, ErrRoundCap
	}
	return rep, nil
}

// drawRound draws DrawsPerRound candidates, drops draws whose
// endpoints are already matched this round, applies fault thinning
// (stalled endpoints, dropped pairs), and returns the surviving
// node-disjoint matching.
func (e *Engine) drawRound(round int, delta *faults.Counters, rep *Report) [][2]int {
	st := newStream(e.cfg.Seed, tagDraw, round)
	plan := e.cfg.Faults
	var kept [][2]int
	for t := 0; t < e.cfg.DrawsPerRound; t++ {
		rep.Draws++
		r := st.float() * e.total
		idx := sort.SearchFloat64s(e.cum, r)
		if idx >= len(e.pool) {
			idx = len(e.pool) - 1
		}
		c := e.pool[idx]
		if e.used[c.lo] == round || e.used[c.hi] == round {
			continue
		}
		if plan != nil {
			if plan.NodeStalled(0, round, c.lo) || plan.NodeStalled(0, round, c.hi) {
				delta.Stalled++
				delta.Injected++
				continue
			}
			if plan.PairDropped(0, round, c.lo, c.hi) {
				delta.Dropped++
				delta.Injected++
				continue
			}
		}
		e.used[c.lo], e.used[c.hi] = round, round
		kept = append(kept, [2]int{c.lo, c.hi})
	}
	return kept
}

// sampleSorted probes SamplePairs random snake-adjacent positions; any
// inversion fails the gate. A pass is only probabilistic evidence —
// the verifier and the final scrub stand behind it.
func (e *Engine) sampleSorted(keys []simnet.Key, round int) bool {
	if len(keys) < 2 {
		return true
	}
	st := newStream(e.cfg.Seed, tagSample, round)
	for t := 0; t < e.cfg.SamplePairs; t++ {
		pos := int(st.next() % uint64(len(keys)-1))
		if keys[e.net.NodeAtSnake(pos)] > keys[e.net.NodeAtSnake(pos+1)] {
			return false
		}
	}
	return true
}

// verify runs the cert sampled fallback over the realized comparator
// sequence: by the 0-1 principle the realized ops sort every input iff
// they sort every 0-1 vector, so a seeded sample that finds no
// counterexample is probabilistic certification of this realization.
func (e *Engine) verify(realized []schedule.Op, rep *Report, round int) (bool, error) {
	if len(realized) == 0 {
		// Nothing was realized yet (every draw faulted away); there is
		// no comparator sequence to certify, and the deterministic
		// scrub that follows acceptance settles sortedness on its own.
		return true, nil
	}
	prog, err := schedule.NewProgram(e.net, e.Name(), realized)
	if err != nil {
		return false, fmt.Errorf("randsort: verifier program: %w", err)
	}
	res, err := cert.Sampled(prog, cert.Options{
		SampleVectors: e.cfg.VerifyVectors,
		Seed:          e.cfg.Seed ^ int64(round),
	})
	if err != nil {
		return false, fmt.Errorf("randsort: verifier: %w", err)
	}
	rep.VerifyRuns++
	rep.VerifyVectors += res.Vectors
	return res.Certified, nil
}

// observe feeds the run's stats into the configured metrics registry.
func (e *Engine) observe(rep *Report) {
	if e.cfg.Metrics == nil {
		return
	}
	e.mRounds.Add(int64(rep.Rounds))
	e.mDraws.Add(int64(rep.Draws))
	e.mApplied.Add(int64(rep.Applied))
	e.mChecks.Add(int64(rep.Checks))
	e.mVerifyRuns.Add(int64(rep.VerifyRuns))
	e.mVerifyVectors.Add(int64(rep.VerifyVectors))
	if rep.Converged {
		e.hConverge.Observe(int64(rep.Rounds))
	}
}

// snakeSorted reports whether keys are nondecreasing in snake order —
// the deterministic full scrub behind the probabilistic checks.
func snakeSorted(net *product.Network, keys []simnet.Key) bool {
	for pos := 1; pos < len(keys); pos++ {
		if keys[net.NodeAtSnake(pos-1)] > keys[net.NodeAtSnake(pos)] {
			return false
		}
	}
	return true
}
