// Candidate pair pools and the q distributions over them.
//
// The randomized engine draws compare-exchange pairs from a fixed
// distribution q whose support is the product network's edge set plus
// every snake-consecutive pair. The snake pairs matter for
// correctness, not just speed: a state in which every supported pair
// is locally ordered must be globally sorted, and only the
// snake-consecutive pairs guarantee that implication (on a
// Hamiltonian-labeled factor they are network edges anyway; on a
// non-Hamiltonian factor, e.g. mesh-connected trees, they become
// routed exchanges exactly as in the deterministic schedule).

package randsort

import (
	"fmt"

	"productsort/internal/faults"
	"productsort/internal/product"
)

// Variant selects the distribution q over the candidate pair pool.
type Variant uint8

const (
	// QUniform draws uniformly over the pool.
	QUniform Variant = iota
	// QDimWeighted equalizes the total draw mass per product dimension
	// (each candidate weighs 1/|pool ∩ dim|), so high-degree dimensions
	// do not starve low-degree ones.
	QDimWeighted
	// QSnakeBiased up-weights snake-consecutive pairs by snakeBias,
	// biasing the process toward odd-even-transposition moves along the
	// global order while keeping every edge in support.
	QSnakeBiased
)

// snakeBias is QSnakeBiased's weight multiplier on snake-consecutive
// pairs.
const snakeBias = 4.0

// String names the variant (also the engine-name suffix).
func (v Variant) String() string {
	switch v {
	case QUniform:
		return "uniform"
	case QDimWeighted:
		return "dim-weighted"
	case QSnakeBiased:
		return "snake-biased"
	}
	return fmt.Sprintf("variant(%d)", uint8(v))
}

// Variants lists every defined q variant.
func Variants() []Variant { return []Variant{QUniform, QDimWeighted, QSnakeBiased} }

// VariantByName resolves a variant from its String form; "" selects
// QUniform.
func VariantByName(name string) (Variant, error) {
	switch name {
	case "", "uniform":
		return QUniform, nil
	case "dim-weighted":
		return QDimWeighted, nil
	case "snake-biased":
		return QSnakeBiased, nil
	}
	return 0, &ConfigError{Field: "Q", Reason: fmt.Sprintf("unknown variant %q", name)}
}

// candidate is one supported pair: node ids oriented so lo holds the
// smaller snake position (after a compare-exchange the minimum sits at
// lo, i.e. earlier in the global order).
type candidate struct {
	lo, hi int
	dim    int  // 1-based dimension the endpoints differ in
	snake  bool // consecutive snake positions
}

// buildPool assembles the candidate pool: every product-network edge
// plus every snake-consecutive pair, deduplicated, in deterministic
// order. Edges whose factor link the plan killed are removed (their
// exchange is physically impossible); snake-consecutive pairs always
// stay — with the direct link dead they are simply priced as routed
// detours on the surviving network, the same graceful degradation the
// deterministic replay applies.
func buildPool(net *product.Network, plan *faults.Plan) []candidate {
	n := net.Nodes()
	seen := make(map[[2]int]int, 3*n) // normalized pair -> pool index
	var pool []candidate
	add := func(a, b int, snake bool) {
		key := [2]int{a, b}
		if a > b {
			key = [2]int{b, a}
		}
		if i, ok := seen[key]; ok {
			if snake {
				pool[i].snake = true
			}
			return
		}
		lo, hi := a, b
		if net.SnakePos(lo) > net.SnakePos(hi) {
			lo, hi = hi, lo
		}
		dim := differingDim(net, a, b)
		if !snake && plan != nil {
			if plan.LinkDead(dim, net.Digit(a, dim), net.Digit(b, dim)) {
				return
			}
		}
		seen[key] = len(pool)
		pool = append(pool, candidate{lo: lo, hi: hi, dim: dim, snake: snake})
	}
	for a := 0; a < n; a++ {
		for _, b := range net.Neighbors(a) {
			if b > a {
				add(a, b, false)
			}
		}
	}
	for pos := 0; pos+1 < n; pos++ {
		add(net.NodeAtSnake(pos), net.NodeAtSnake(pos+1), true)
	}
	return pool
}

// differingDim returns the 1-based dimension a and b differ in. Every
// pool candidate differs in exactly one dimension: network edges by
// the product construction, snake-consecutive pairs by the Gray-code
// property of the snake order.
func differingDim(net *product.Network, a, b int) int {
	for k := 1; k <= net.R(); k++ {
		if net.Digit(a, k) != net.Digit(b, k) {
			return k
		}
	}
	panic("randsort: identical endpoints in candidate pair")
}

// weights assigns each candidate its (unnormalized) q mass under the
// variant and returns the cumulative sums the sampler binary-searches.
func weights(v Variant, pool []candidate, dims int) (cum []float64, total float64) {
	perDim := make([]int, dims+1)
	if v == QDimWeighted {
		for _, c := range pool {
			perDim[c.dim]++
		}
	}
	cum = make([]float64, len(pool))
	for i, c := range pool {
		w := 1.0
		switch v {
		case QDimWeighted:
			w = 1.0 / float64(perDim[c.dim])
		case QSnakeBiased:
			if c.snake {
				w = snakeBias
			}
		}
		total += w
		cum[i] = total
	}
	return cum, total
}
