package randsort

import (
	"errors"
	"strings"
	"testing"

	"productsort/internal/faults"
	"productsort/internal/graph"
	"productsort/internal/obs"
	"productsort/internal/product"
	"productsort/internal/simnet"
)

// testNets covers a Hamiltonian-labeled factor (path), the hypercube
// (path-of-2 power), and a non-Hamiltonian factor (complete binary
// tree) whose snake steps need routing.
func testNets(t *testing.T) map[string]*product.Network {
	t.Helper()
	return map[string]*product.Network{
		"grid4x4":  product.MustNew(graph.Path(4), 2),
		"cube2^5":  product.MustNew(graph.Path(2), 5),
		"cbt2-sq":  product.MustNew(graph.CompleteBinaryTree(2), 2),
		"petersen": product.MustNew(graph.Petersen(), 1),
	}
}

// shuffled returns a deterministic permutation of 0..n-1 as keys.
func shuffled(n int, seed int64) []simnet.Key {
	keys := make([]simnet.Key, n)
	for i := range keys {
		keys[i] = simnet.Key(i)
	}
	st := newStream(seed, 0xF00D, 0)
	for i := n - 1; i > 0; i-- {
		j := int(st.next() % uint64(i+1))
		keys[i], keys[j] = keys[j], keys[i]
	}
	return keys
}

// reversed returns n..1 as keys (maximal inversion count).
func reversed(n int) []simnet.Key {
	keys := make([]simnet.Key, n)
	for i := range keys {
		keys[i] = simnet.Key(n - i)
	}
	return keys
}

func requireSorted(t *testing.T, net *product.Network, keys []simnet.Key) {
	t.Helper()
	if !snakeSorted(net, keys) {
		t.Fatalf("keys not sorted in snake order: %v", keys)
	}
}

func TestVariantNames(t *testing.T) {
	for _, v := range Variants() {
		got, err := VariantByName(v.String())
		if err != nil || got != v {
			t.Fatalf("VariantByName(%q) = %v, %v", v.String(), got, err)
		}
	}
	if v, err := VariantByName(""); err != nil || v != QUniform {
		t.Fatalf("empty name: got %v, %v; want QUniform", v, err)
	}
	if _, err := VariantByName("bogus"); err == nil {
		t.Fatal("unknown variant name accepted")
	} else {
		var ce *ConfigError
		if !errors.As(err, &ce) || ce.Field != "Q" {
			t.Fatalf("want *ConfigError{Field: Q}, got %v", err)
		}
	}
}

func TestNewValidatesConfig(t *testing.T) {
	net := product.MustNew(graph.Path(4), 2)
	cases := []struct {
		name  string
		net   *product.Network
		cfg   Config
		field string
	}{
		{"nil net", nil, Config{}, "Net"},
		{"bad variant", net, Config{Variant: Variant(99)}, "Variant"},
		{"negative MaxRounds", net, Config{MaxRounds: -1}, "MaxRounds"},
		{"negative CheckEvery", net, Config{CheckEvery: -2}, "CheckEvery"},
		{"negative DrawsPerRound", net, Config{DrawsPerRound: -1}, "DrawsPerRound"},
		{"negative SamplePairs", net, Config{SamplePairs: -3}, "SamplePairs"},
		{"negative VerifyVectors", net, Config{VerifyVectors: -64}, "VerifyVectors"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := New(tc.net, tc.cfg)
			var ce *ConfigError
			if !errors.As(err, &ce) {
				t.Fatalf("want *ConfigError, got %v", err)
			}
			if ce.Field != tc.field {
				t.Fatalf("want field %q, got %q (%v)", tc.field, ce.Field, err)
			}
			if msg := ce.Error(); !strings.Contains(msg, tc.field) {
				t.Fatalf("error message %q omits the field", msg)
			}
		})
	}
}

func TestPoolCoversSnakeAndEdges(t *testing.T) {
	for name, net := range testNets(t) {
		t.Run(name, func(t *testing.T) {
			pool := buildPool(net, nil)
			type key [2]int
			have := make(map[key]candidate, len(pool))
			for _, c := range pool {
				k := key{c.lo, c.hi}
				if c.hi < c.lo {
					k = key{c.hi, c.lo}
				}
				if _, dup := have[k]; dup {
					t.Fatalf("duplicate candidate %v", k)
				}
				have[k] = c
				if net.SnakePos(c.lo) >= net.SnakePos(c.hi) {
					t.Fatalf("candidate %v not snake-oriented", c)
				}
			}
			// Every snake-consecutive pair is present and flagged.
			for pos := 0; pos+1 < net.Nodes(); pos++ {
				a, b := net.NodeAtSnake(pos), net.NodeAtSnake(pos+1)
				k := key{min(a, b), max(a, b)}
				c, ok := have[k]
				if !ok || !c.snake {
					t.Fatalf("snake step %d (%d,%d) missing or unflagged", pos, a, b)
				}
			}
			// Every network edge is present.
			edges := 0
			for a := 0; a < net.Nodes(); a++ {
				for _, b := range net.Neighbors(a) {
					if b <= a {
						continue
					}
					edges++
					if _, ok := have[key{a, b}]; !ok {
						t.Fatalf("edge (%d,%d) missing from pool", a, b)
					}
				}
			}
			if len(pool) < edges {
				t.Fatalf("pool %d smaller than edge count %d", len(pool), edges)
			}
		})
	}
}

func TestDimWeightedMassEqualizes(t *testing.T) {
	net := product.MustNew(graph.Path(4), 2)
	pool := buildPool(net, nil)
	cum, _ := weights(QDimWeighted, pool, net.R())
	mass := make([]float64, net.R()+1)
	prev := 0.0
	for i, c := range pool {
		mass[c.dim] += cum[i] - prev
		prev = cum[i]
	}
	if diff := mass[1] - mass[2]; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("per-dim mass not equalized: %v", mass[1:])
	}
}

func TestSortConvergesFaultFree(t *testing.T) {
	for name, net := range testNets(t) {
		for _, v := range Variants() {
			t.Run(name+"/"+v.String(), func(t *testing.T) {
				eng, err := New(net, Config{Variant: v, Seed: 42})
				if err != nil {
					t.Fatal(err)
				}
				keys := shuffled(net.Nodes(), 7)
				rep, err := eng.Sort(keys)
				if err != nil {
					t.Fatalf("Sort: %v (report %+v)", err, rep)
				}
				if !rep.Converged || !rep.VerifierAccepted || !rep.ScrubSorted {
					t.Fatalf("not fully accepted: %+v", rep)
				}
				if rep.Faults != (faults.Counters{}) {
					t.Fatalf("fault counters nonzero without a plan: %+v", rep.Faults)
				}
				if rep.VerifyRuns < 1 || rep.VerifyVectors == 0 {
					t.Fatalf("verifier did not run: %+v", rep)
				}
				requireSorted(t, net, keys)
			})
		}
	}
}

func TestSortDeterministicPerSeed(t *testing.T) {
	net := product.MustNew(graph.Path(4), 2)
	run := func(seed int64) (*Report, []simnet.Key) {
		eng, err := New(net, Config{Variant: QSnakeBiased, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		keys := shuffled(net.Nodes(), 3)
		if _, err := eng.Sort(keys); err != nil {
			t.Fatal(err)
		}
		rep, err := eng.Sort(shuffled(net.Nodes(), 3))
		if err != nil {
			t.Fatal(err)
		}
		return rep, keys
	}
	a, _ := run(11)
	b, _ := run(11)
	if *a != *b {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
}

func TestSortAlreadySorted(t *testing.T) {
	net := product.MustNew(graph.Path(2), 4)
	eng, err := New(net, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]simnet.Key, net.Nodes())
	for pos := 0; pos < net.Nodes(); pos++ {
		keys[net.NodeAtSnake(pos)] = simnet.Key(pos)
	}
	rep, err := eng.Sort(keys)
	if err != nil {
		t.Fatal(err)
	}
	// Acceptance requires the realized comparator sequence to certify,
	// so even a sorted input runs until the sequence is a (sampled)
	// sorting network — but every sample gate passes along the way.
	if !rep.Converged || rep.SamplePasses != rep.Checks {
		t.Fatalf("sorted input should pass every gate: %+v", rep)
	}
	requireSorted(t, net, keys)
}

func TestSortRoundCap(t *testing.T) {
	net := product.MustNew(graph.Path(4), 2)
	eng, err := New(net, Config{Seed: 5, MaxRounds: 2, CheckEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Sort(reversed(net.Nodes()))
	if !errors.Is(err, ErrRoundCap) {
		t.Fatalf("want ErrRoundCap, got %v", err)
	}
	if rep == nil || rep.Converged || rep.Rounds != 2 {
		t.Fatalf("unexpected cap report: %+v", rep)
	}
}

func TestSortKeyCountMismatch(t *testing.T) {
	net := product.MustNew(graph.Path(4), 2)
	eng, err := New(net, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Sort(make([]simnet.Key, 3)); err == nil {
		t.Fatal("short key slice accepted")
	}
}

func TestSortDegradesUnderFaults(t *testing.T) {
	net := product.MustNew(graph.Path(4), 2)
	base, err := New(net, Config{Variant: QSnakeBiased, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	baseRep, err := base.Sort(shuffled(net.Nodes(), 21))
	if err != nil {
		t.Fatal(err)
	}
	plan := faults.NewPlan(faults.Config{Seed: 77, DropRate: 0.5, StallRate: 0.2})
	eng, err := New(net, Config{Variant: QSnakeBiased, Seed: 9, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	keys := shuffled(net.Nodes(), 21)
	rep, err := eng.Sort(keys)
	if err != nil {
		t.Fatalf("faulted sort aborted: %v (report %+v)", err, rep)
	}
	if !rep.Converged || !rep.ScrubSorted {
		t.Fatalf("faulted run did not converge: %+v", rep)
	}
	if rep.Faults.Dropped == 0 || rep.Faults.Stalled == 0 {
		t.Fatalf("fault thinning never fired: %+v", rep.Faults)
	}
	if rep.Rounds <= baseRep.Rounds {
		t.Fatalf("faults should cost rounds: faulted %d <= fault-free %d", rep.Rounds, baseRep.Rounds)
	}
	requireSorted(t, net, keys)
}

func TestSortSurvivesCorruption(t *testing.T) {
	net := product.MustNew(graph.Path(4), 2)
	plan := faults.NewPlan(faults.Config{Seed: 3, CorruptRate: 0.05})
	eng, err := New(net, Config{Seed: 13, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	keys := shuffled(net.Nodes(), 2)
	rep, err := eng.Sort(keys)
	if err != nil {
		t.Fatalf("corrupted sort: %v (report %+v)", err, rep)
	}
	if rep.Faults.Corrupted == 0 {
		t.Fatalf("corruption never fired: %+v", rep.Faults)
	}
	requireSorted(t, net, keys)
}

func TestSortWithDeadLinks(t *testing.T) {
	// Complete(3) keeps the factor connected when an edge dies; (0,2)
	// is never snake-consecutive (radix-3 Gray steps move by one), so
	// the kill genuinely shrinks the pool.
	net := product.MustNew(graph.Complete(3), 2)
	plan := faults.NewPlan(faults.Config{
		Seed:      8,
		DeadLinks: []faults.FactorEdge{{Dim: 1, U: 0, V: 2}},
	})
	eng, err := New(net, Config{Seed: 17, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	full := buildPool(net, nil)
	if eng.Pool() >= len(full) {
		t.Fatalf("dead link did not shrink the pool: %d >= %d", eng.Pool(), len(full))
	}
	keys := shuffled(net.Nodes(), 4)
	rep, err := eng.Sort(keys)
	if err != nil {
		t.Fatalf("dead-link sort: %v (report %+v)", err, rep)
	}
	if rep.Faults.DeadLinks == 0 {
		t.Fatalf("dead links not counted: %+v", rep.Faults)
	}
	requireSorted(t, net, keys)
}

func TestSortEmitsMetrics(t *testing.T) {
	net := product.MustNew(graph.Path(2), 4)
	m := obs.NewMetrics()
	eng, err := New(net, Config{Seed: 6, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Sort(shuffled(net.Nodes(), 1)); err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()
	for _, name := range []string{"randsort.rounds", "randsort.draws", "randsort.applied", "randsort.checks", "randsort.verify.runs", "randsort.verify.vectors"} {
		if snap.Counters[name] == 0 {
			t.Fatalf("counter %s not observed: %+v", name, snap.Counters)
		}
	}
	h, ok := snap.Histograms["randsort.converge.rounds"]
	if !ok || h.Count != 1 {
		t.Fatalf("convergence histogram missing or empty: %+v", snap.Histograms)
	}
}
