package exp

import (
	"productsort/internal/core"
	"productsort/internal/cost"
	"productsort/internal/graph"
	"productsort/internal/product"
	"productsort/internal/routing"
	"productsort/internal/sort2d"
	"productsort/internal/stats"
	"productsort/internal/workload"
)

// E4UniversalBound examines the Corollary: sorting on any
// connected-factor product network costs O(r²N). Two checks are made.
//
// First, Theorem 1's decomposition must hold as an upper bound with
// this implementation's own measured parts: total rounds ≤
// (r-1)²·S₂meas + (r-1)(r-2)·Rmeas, where S₂meas is the measured cost
// of one S_2 invocation on this factor (routed comparators included)
// and Rmeas the measured worst sweep exchange. This is exact for
// Hamiltonian factors and an upper bound otherwise.
//
// Second, the paper's leading term 18(r-1)²N is printed for reference.
// The paper reaches that constant by emulating Kunde's 2.5N-step torus
// algorithm through a dilation-3 embedding; our topology-independent
// shearsort S_2 costs Θ(N log N) instead of 2.5N, so for non-Hamiltonian
// factors the measured value can exceed 18(r-1)²N by exactly that
// substituted factor — the table's last column shows the ratio so the
// O(r²N)-in-r shape remains visible.
func E4UniversalBound() *Result {
	res := &Result{ID: "E4", Title: "Corollary: O(r²N) for every connected factor (measured decomposition + paper constant)"}
	t := stats.NewTable("E4: Theorem 1 decomposition with measured S2/R, plus the paper's 18(r-1)²N reference",
		"network", "N", "r", "ham", "S2 meas", "R meas", "thm1 bound", "measured", "within", "paper 18(r-1)^2 N", "meas/paper")
	type cfg struct {
		g *graph.Graph
		r int
	}
	cfgs := []cfg{
		{graph.Path(4), 3},
		{graph.Path(8), 2},
		{graph.Cycle(5), 3},
		{graph.K2(), 6},
		{graph.Petersen(), 2},
		{graph.CompleteBinaryTree(3), 2},
		{graph.CompleteBinaryTree(3), 3},
		{graph.CompleteBinaryTree(4), 2},
		{graph.Star(4), 3},
		{graph.Star(6), 2},
		{graph.DeBruijn(2, 3), 2},
		{graph.ShuffleExchange(3), 2},
	}
	for _, c := range cfgs {
		n := c.g.N()
		// Measure one S_2 invocation on this factor (auto engine).
		m2 := machineFor(c.g, 2, workload.Uniform(n*n, 83))
		(sort2d.Auto{}).Sort(m2, 1, 2, sort2d.AscendingAll)
		s2 := m2.Clock().Rounds
		// Measure the worst adjacent-label exchange (the sweep cost).
		rMeas := routing.NewPlan(c.g).AdjacentSwapCost()

		net := product.MustNew(c.g, c.r)
		clk := sortAndClock(c.g, c.r, workload.Uniform(net.Nodes(), 47), nil)
		bound := cost.SortTime(c.r, s2, rMeas)
		paper := cost.CorollaryBound(c.r, n)
		t.Add(net.Name(), n, c.r, c.g.HamiltonianLabeled(), s2, rMeas, bound,
			clk.Rounds, clk.Rounds <= bound, paper, float64(clk.Rounds)/float64(paper))
	}
	t.Note("thm1 bound = (r-1)²·S2meas + (r-1)(r-2)·Rmeas; exact on Hamiltonian factors, upper bound otherwise")
	t.Note("meas/paper > 1 only where the shearsort-for-Kunde substitution inflates S2 by its log factor (see DESIGN.md); the r-dependence (r-1)² is unchanged")
	res.Tables = append(res.Tables, t)

	// Shape check in r at fixed N: rounds/(r-1)² must be near-constant
	// even for the non-Hamiltonian tree factor.
	t2 := stats.NewTable("E4b: O(r²) shape at fixed N (rounds / (r-1)²)",
		"network", "r", "measured", "measured/(r-1)^2")
	for _, c := range []cfg{
		{graph.CompleteBinaryTree(2), 2}, {graph.CompleteBinaryTree(2), 3}, {graph.CompleteBinaryTree(2), 4},
		{graph.Star(4), 2}, {graph.Star(4), 3}, {graph.Star(4), 4},
	} {
		net := product.MustNew(c.g, c.r)
		clk := sortAndClock(c.g, c.r, workload.Uniform(net.Nodes(), 89), nil)
		t2.Add(net.Name(), c.r, clk.Rounds, float64(clk.Rounds)/float64((c.r-1)*(c.r-1)))
	}
	res.Tables = append(res.Tables, t2)

	// Sanity tripwire: phases always match Theorem 1 exactly.
	for _, c := range cfgs {
		net := product.MustNew(c.g, c.r)
		m := machineFor(c.g, c.r, workload.Uniform(net.Nodes(), 3))
		core.New(nil).Sort(m)
		clk := m.Clock()
		cost.Check(c.r, clk.S2Phases, clk.SweepPhases)
	}
	return res
}
