package exp

import (
	"math/rand"

	"productsort/internal/graph"
	"productsort/internal/product"
	"productsort/internal/prouting"
	"productsort/internal/stats"
)

// E14PermutationRouting measures the product-network routing substrate
// (the related-work context of the paper's [4], [12]): the cost of the
// full-permutation data movements that the multiway-merge algorithm's
// free Steps 1 and 3 avoid, and that Columnsort-style algorithms
// hard-wire. Dimension-ordered store-and-forward routing, single-port
// model — the same time unit as the sorting rounds.
func E14PermutationRouting() *Result {
	res := &Result{ID: "E14", Title: "Permutation routing on product networks: the cost of explicit data movement"}
	t := stats.NewTable("E14: routing rounds by workload (single-port, dimension-ordered)",
		"network", "nodes", "diameter", "random avg", "random max", "antipodal", "snake reversal", "max queue")
	cfgs := []struct {
		g *graph.Graph
		r int
	}{
		{graph.Path(4), 2},
		{graph.Path(8), 2},
		{graph.Path(4), 3},
		{graph.K2(), 6},
		{graph.K2(), 8},
		{graph.Petersen(), 2},
		{graph.CompleteBinaryTree(3), 2},
		{graph.Cycle(8), 2},
	}
	rng := rand.New(rand.NewSource(131))
	for _, c := range cfgs {
		net := product.MustNew(c.g, c.r)
		router := prouting.New(net)
		const trials = 8
		sum, max := 0, 0
		maxQueue := 0
		for i := 0; i < trials; i++ {
			st := router.Route(rng.Perm(net.Nodes()))
			sum += st.Rounds
			if st.Rounds > max {
				max = st.Rounds
			}
			if st.MaxQueue > maxQueue {
				maxQueue = st.MaxQueue
			}
		}
		anti := router.Antipodal()
		rev := router.SnakeReversal()
		t.Add(net.Name(), net.Nodes(), net.Diameter(), float64(sum)/trials, max,
			anti.Rounds, rev.Rounds, maxQueue)
	}
	t.Note("the snake reversal column is tiny on even radices (reflected-Gray reversal only complements the top symbol) and grows on trees/odd radices")
	t.Note("a random permutation costs on the order of the network side — each such movement that Columnsort hard-wires, the multiway merge's Steps 1/3 get for free by reinterpreting storage")
	res.Tables = append(res.Tables, t)

	// The sorting algorithm vs one permutation: sorting is a few
	// S2-phases' worth of rounds, an explicit permutation routing a few
	// diameters' worth — the ratio shows how much of sorting's budget a
	// single hard-wired permutation would consume.
	t2 := stats.NewTable("E14b: one random permutation vs one full sort (rounds)",
		"network", "route rounds", "sort rounds", "route/sort")
	for _, c := range []struct {
		g *graph.Graph
		r int
	}{
		{graph.Path(8), 2}, {graph.K2(), 6}, {graph.Petersen(), 2},
	} {
		net := product.MustNew(c.g, c.r)
		router := prouting.New(net)
		st := router.Route(rng.Perm(net.Nodes()))
		clk := sortAndClock(c.g, c.r, randPermKeys(net.Nodes(), rng), nil)
		t2.Add(net.Name(), st.Rounds, clk.Rounds, float64(st.Rounds)/float64(clk.Rounds))
	}
	res.Tables = append(res.Tables, t2)
	return res
}

func randPermKeys(n int, rng *rand.Rand) []int64 {
	keys := make([]int64, n)
	for i, p := range rng.Perm(n) {
		keys[i] = int64(p)
	}
	return keys
}
