package exp

import (
	"fmt"

	"productsort/internal/cost"
	"productsort/internal/graph"
	"productsort/internal/product"
	"productsort/internal/stats"
	"productsort/internal/workload"
)

// E5GridMCTScaling reproduces Sections 5.1–5.2: with the number of
// dimensions fixed, sorting on grids and mesh-connected trees takes
// time linear in N (up to our S_2 substitution's log factor — shearsort
// costs Θ(N log N) where the paper plugs in Schnorr–Shamir's 3N, so the
// measured column grows as N log N while the "paper" column is the
// 4(r-1)²N leading term; the r-dependence and relative shape are
// identical).
func E5GridMCTScaling() *Result {
	res := &Result{ID: "E5", Title: "Grid and MCT: rounds vs N with r fixed (paper: O(N))"}

	t := stats.NewTable("E5a: grid, r fixed, sweep N",
		"network", "N", "r", "measured rounds", "rounds/N", "paper 4(r-1)^2 N", "paper/N")
	fig := stats.NewFigure("E5: rounds vs N (grid)", "N", "rounds")
	ser2 := fig.AddSeries("grid r=2 measured")
	ser3 := fig.AddSeries("grid r=3 measured")
	serP := fig.AddSeries("grid r=3 paper lead term")
	for _, n := range []int{2, 3, 4, 6, 8, 12, 16} {
		g := graph.Path(n)
		for _, r := range []int{2, 3} {
			net := product.MustNew(g, r)
			clk := sortAndClock(g, r, workload.Uniform(net.Nodes(), 53), nil)
			paper := cost.GridSortTime(r, n)
			t.Add(net.Name(), n, r, clk.Rounds, float64(clk.Rounds)/float64(n),
				paper, float64(paper)/float64(n))
			switch r {
			case 2:
				ser2.Point(fmt.Sprint(n), float64(clk.Rounds))
			case 3:
				ser3.Point(fmt.Sprint(n), float64(clk.Rounds))
				serP.Point(fmt.Sprint(n), float64(paper))
			}
		}
	}
	t.Note("measured/N grows like log N (shearsort S2); paper/N is constant (Schnorr–Shamir S2) — see DESIGN.md substitution table")
	res.Tables = append(res.Tables, t)
	res.Figures = append(res.Figures, fig)

	t2 := stats.NewTable("E5b: mesh-connected trees (non-Hamiltonian factor), r fixed, sweep tree size",
		"network", "N", "r", "routed phases", "measured rounds", "rounds/N", "corollary 18(r-1)^2 N")
	for _, levels := range []int{2, 3, 4} {
		g := graph.CompleteBinaryTree(levels)
		n := g.N()
		for _, r := range []int{2, 3} {
			if levels == 4 && r == 3 {
				continue // 3375 nodes with routed phases: keep runtime modest
			}
			net := product.MustNew(g, r)
			clk := sortAndClock(g, r, workload.Uniform(net.Nodes(), 59), nil)
			t2.Add(net.Name(), n, r, clk.RoutedPhases, clk.Rounds,
				float64(clk.Rounds)/float64(n), cost.CorollaryBound(r, n))
		}
	}
	res.Tables = append(res.Tables, t2)
	return res
}
