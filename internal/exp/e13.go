package exp

import (
	"fmt"

	"productsort/internal/core"
	"productsort/internal/cost"
	"productsort/internal/graph"
	"productsort/internal/mergenet"
	"productsort/internal/product"
	"productsort/internal/simnet"
	"productsort/internal/stats"
	"productsort/internal/workload"
)

// E13ScheduleInvariance examines the mechanism behind the Corollary.
// The paper proves O(r²N) for every connected factor by emulating a
// torus algorithm through an embedding. In this implementation the
// point comes for free, and the experiment demonstrates why: the
// compare-exchange schedule produced by the algorithm (with the
// label-based S₂ engines) depends only on the per-dimension radices,
// never on the factor's edges — factors influence the *cost per phase*
// (routed exchanges), not the phase list. Replaying the schedule of any
// same-radix factor on another machine is therefore exactly the direct
// algorithm, and the emulation overhead the paper bounds by a constant
// factor of 6 is zero here.
func E13ScheduleInvariance() *Result {
	res := &Result{ID: "E13", Title: "Corollary mechanism: the schedule depends on radices only; factors set per-phase cost"}

	// (a) Schedules extracted from same-size factors are identical.
	t := stats.NewTable("E13a: schedule equality across factor topologies (N=7, r=2)",
		"factor", "phases", "comparators", "identical to path7 schedule")
	ref := mergenet.MustExtract(graph.Path(7), 2, nil)
	for _, g := range []*graph.Graph{graph.Path(7), graph.Cycle(7), graph.CompleteBinaryTree(3), graph.Star(7)} {
		s := mergenet.MustExtract(g, 2, nil)
		t.Add(g.Name(), s.Depth(), s.Size(), schedulesEqual(ref, s))
	}
	t.Note("identical schedules: the S₂ engines compare label-consecutive symbols, so only the radices matter")
	res.Tables = append(res.Tables, t)

	// (b) The same schedule replayed on different factors costs
	// different rounds: the factor's connectivity prices each phase.
	t2 := stats.NewTable("E13b: one schedule, many factors — replay cost (N=7, r=2, same keys)",
		"machine factor", "ham", "rounds", "routed phases", "sorted", "paper 18(r-1)^2 N")
	phases, pathNet, err := mergenet.NodePhases(graph.Path(7), 2, nil)
	if err != nil {
		panic(err)
	}
	keys := workload.Uniform(pathNet.Nodes(), 127)
	for _, g := range []*graph.Graph{graph.Path(7), graph.Cycle(7), graph.CompleteBinaryTree(3), graph.Star(7), graph.Complete(7)} {
		net := product.MustNew(g, 2)
		m := simnet.MustNew(net, make([]simnet.Key, net.Nodes()))
		m.LoadSnake(keys)
		mergenet.ReplayOnMachine(m, phases)
		clk := m.Clock()
		t2.Add(g.Name(), g.HamiltonianLabeled(), clk.Rounds, clk.RoutedPhases,
			m.IsSortedSnake(), cost.CorollaryBound(2, 7))
	}
	t2.Note("node ids coincide across same-radix networks, so the node-space schedule replays verbatim; Hamiltonian factors pay 1 round/phase, others pay measured routing")
	res.Tables = append(res.Tables, t2)

	// (c) Consequence: TorusEmulation (the Corollary's literal device)
	// coincides with the direct algorithm round-for-round.
	t3 := stats.NewTable("E13c: torus-emulation vs direct (identical by schedule invariance)",
		"network", "direct rounds", "emulated rounds", "equal")
	for _, c := range []struct {
		g *graph.Graph
		r int
	}{
		{graph.CompleteBinaryTree(3), 2},
		{graph.Star(6), 2},
		{graph.CompleteBinaryTree(3), 3},
	} {
		net := product.MustNew(c.g, c.r)
		ks := workload.Uniform(net.Nodes(), 113)

		mDirect := simnet.MustNew(net, make([]simnet.Key, net.Nodes()))
		mDirect.LoadSnake(ks)
		core.New(nil).Sort(mDirect)

		mEmul := simnet.MustNew(net, make([]simnet.Key, net.Nodes()))
		mEmul.LoadSnake(ks)
		if _, err := mergenet.TorusEmulation(mEmul, nil); err != nil {
			panic(err)
		}
		if !mDirect.IsSortedSnake() || !mEmul.IsSortedSnake() {
			panic("exp: E13c sort failed")
		}
		d, e := mDirect.Clock().Rounds, mEmul.Clock().Rounds
		t3.Add(net.Name(), d, e, d == e)
	}
	t3.Note(fmt.Sprintf("the paper's emulation pays a slowdown ≤ 6; with a topology-independent S₂ the slowdown is exactly 1 — %s",
		"the schedule never used the torus wraparound edges to begin with"))
	res.Tables = append(res.Tables, t3)
	return res
}

// schedulesEqual compares two snake-space schedules phase by phase.
func schedulesEqual(a, b *mergenet.Schedule) bool {
	if a.Inputs != b.Inputs || len(a.Phases) != len(b.Phases) {
		return false
	}
	for i := range a.Phases {
		if len(a.Phases[i]) != len(b.Phases[i]) {
			return false
		}
		for j := range a.Phases[i] {
			if a.Phases[i][j] != b.Phases[i][j] {
				return false
			}
		}
	}
	return true
}
