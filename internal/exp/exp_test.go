package exp

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestAllRegistered(t *testing.T) {
	all := All()
	if len(all) != 15 {
		t.Fatalf("%d experiments", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Errorf("incomplete experiment %+v", e)
		}
		if seen[e.ID] {
			t.Errorf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
	}
	if _, err := ByID("e3"); err != nil {
		t.Error(err)
	}
	if _, err := ByID("e99"); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestE1PaperExample(t *testing.T) {
	r := E1PaperExample()
	out := render(r)
	if !strings.Contains(out, "matches fully sorted sequence  true") &&
		!strings.Contains(out, "true") {
		t.Errorf("E1 did not confirm sortedness:\n%s", out)
	}
	// The paper's final sequence starts 0 0 0 1 1 1 1 2 3 4 ...
	if !strings.Contains(out, "0 0 0 1 1 1 1 2 3 4") {
		t.Errorf("E1 final sequence missing paper prefix:\n%s", out)
	}
}

func TestE2AllWithinBound(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	r := E2DirtyArea()
	out := render(r)
	if strings.Contains(out, "false") {
		t.Errorf("E2 found a dirty window beyond N²:\n%s", out)
	}
}

func TestE3ExactMatches(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	r := E3Theorem1()
	out := render(r)
	if strings.Contains(out, "false") {
		t.Errorf("E3 found a mismatch with Theorem 1 / Lemma 3:\n%s", out)
	}
}

func TestE4WithinBound(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	r := E4UniversalBound()
	out := render(r)
	// The "within" cell (9th column of E4's first table) must be true
	// in every row; the "ham" column may legitimately be false.
	inFirstTable := false
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "E4:") {
			inFirstTable = true
			continue
		}
		if strings.HasPrefix(line, "E4b") {
			inFirstTable = false
		}
		if !inFirstTable {
			continue
		}
		cells := splitColumns(line)
		if len(cells) == 11 && cells[0] != "network" && cells[8] != "true" {
			t.Errorf("E4 row not within Theorem-1 bound: %s", line)
		}
	}
}

// splitColumns splits an aligned table row on runs of 2+ spaces.
func splitColumns(line string) []string {
	var cells []string
	for _, part := range strings.Split(line, "  ") {
		if p := strings.TrimSpace(part); p != "" {
			cells = append(cells, p)
		}
	}
	return cells
}

func TestE5Runs(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	r := E5GridMCTScaling()
	out := render(r)
	for _, want := range []string{"path16^3", "cbt4^2", "rounds/N"} {
		if !strings.Contains(out, want) {
			t.Errorf("E5 missing %q", want)
		}
	}
}

func TestE6RatioModest(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	r := E6HypercubeVsBatcher()
	out := render(r)
	if !strings.Contains(out, "batcher") {
		t.Errorf("E6 missing baseline:\n%s", out)
	}
}

func TestE7Runs(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	r := E7PetersenDeBruijn()
	out := render(r)
	for _, want := range []string{"petersen", "debruijn", "log2"} {
		if !strings.Contains(out, want) {
			t.Errorf("E7 missing %q:\n%s", want, out)
		}
	}
}

func TestE8Runs(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	r := E8VsColumnsort()
	out := render(r)
	for _, want := range []string{"multiway-merge (hypercube)", "columnsort", "bitonic network"} {
		if !strings.Contains(out, want) {
			t.Errorf("E8 missing %q", want)
		}
	}
}

func TestE9RoundsConstant(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	r := E9BlockScaling()
	out := render(r)
	if strings.Contains(out, "false") {
		t.Errorf("E9 found an unsorted blocked run:\n%s", out)
	}
	if !strings.Contains(out, "64") {
		t.Error("E9 missing the large block size")
	}
}

func TestE10Runs(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	r := E10LabelingAblation()
	out := render(r)
	for _, want := range []string{"arbitrary (shuffled)", "dilation-3 (Karaganis)", "natural (constructor)"} {
		if !strings.Contains(out, want) {
			t.Errorf("E10 missing %q", want)
		}
	}
}

func TestE11Runs(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	r := E11Obliviousness()
	out := render(r)
	for _, want := range []string{"identical", "batcher odd-even merge", "snake-oet"} {
		if !strings.Contains(out, want) {
			t.Errorf("E11 missing %q", want)
		}
	}
}

func TestE12Runs(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	r := E12Heterogeneous()
	out := render(r)
	if strings.Contains(out, "false") {
		t.Errorf("E12 found a mismatch:\n%s", out)
	}
	for _, want := range []string{"path4*path8", "petersen", "Wx4"} {
		if !strings.Contains(out, want) {
			t.Errorf("E12 missing %q", want)
		}
	}
}

func TestE13Runs(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	r := E13ScheduleInvariance()
	out := render(r)
	// Every "identical"/"equal" cell must be true; the "ham" column of
	// E13b may legitimately read false, so check only trailing cells.
	for _, line := range strings.Split(out, "\n") {
		cells := splitColumns(line)
		if len(cells) == 4 && cells[0] != "factor" && cells[0] != "network" &&
			(cells[3] == "false") {
			t.Errorf("E13 row not equal: %s", line)
		}
	}
	for _, want := range []string{"identical to path7 schedule", "cbt3", "K7"} {
		if !strings.Contains(out, want) {
			t.Errorf("E13 missing %q", want)
		}
	}
}

func TestE14Runs(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	r := E14PermutationRouting()
	out := render(r)
	for _, want := range []string{"antipodal", "snake reversal", "route/sort"} {
		if !strings.Contains(out, want) {
			t.Errorf("E14 missing %q", want)
		}
	}
}

func TestE15Agreement(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	r := E15EngineAgreement()
	out := render(r)
	// Every "keys agree" cell (7th column) must be true.
	for _, line := range strings.Split(out, "\n") {
		cells := splitColumns(line)
		if len(cells) == 7 && cells[0] != "network" && cells[6] == "false" {
			t.Errorf("E15 row disagrees: %s", line)
		}
	}
	if !strings.Contains(out, "SPMD sync rounds") {
		t.Error("E15 missing column")
	}
}

func render(r *Result) string {
	var sb strings.Builder
	r.Render(&sb)
	return sb.String()
}

func TestWriteCSVs(t *testing.T) {
	r := E1PaperExample()
	dir := t.TempDir()
	names, err := r.WriteCSVs(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) == 0 {
		t.Fatal("no CSVs written")
	}
	data, err := os.ReadFile(filepath.Join(dir, names[0]))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "stage,") {
		t.Errorf("csv content: %.60s", data)
	}
}
