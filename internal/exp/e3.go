package exp

import (
	"productsort/internal/core"
	"productsort/internal/cost"
	"productsort/internal/graph"
	"productsort/internal/product"
	"productsort/internal/simnet"
	"productsort/internal/sort2d"
	"productsort/internal/stats"
	"productsort/internal/workload"
)

// E3Theorem1 verifies Lemma 3 and Theorem 1 exactly: the sort performs
// (r-1)² S_2 invocations and (r-1)(r-2) transposition sweeps, and on
// Hamiltonian-labeled factors its round count equals
// (r-1)²·S₂rounds + (r-1)(r-2)·1.
func E3Theorem1() *Result {
	res := &Result{ID: "E3", Title: "Lemma 3 + Theorem 1: measured phases and rounds vs closed forms"}

	t := stats.NewTable("E3a: full sort, phase counts vs Theorem 1",
		"network", "N", "r", "S2 phases", "(r-1)^2", "sweeps", "(r-1)(r-2)", "exact match")
	type cfg struct {
		g *graph.Graph
		r int
	}
	cfgs := []cfg{
		{graph.Path(3), 2}, {graph.Path(3), 3}, {graph.Path(3), 4},
		{graph.Path(4), 3}, {graph.Path(5), 3},
		{graph.Cycle(4), 3}, {graph.Cycle(5), 2},
		{graph.K2(), 3}, {graph.K2(), 5}, {graph.K2(), 7},
		{graph.Petersen(), 2},
		{graph.DeBruijn(2, 3), 2},
		{graph.CompleteBinaryTree(3), 2}, {graph.CompleteBinaryTree(3), 3},
	}
	for _, c := range cfgs {
		net := product.MustNew(c.g, c.r)
		clk := sortAndClock(c.g, c.r, workload.Uniform(net.Nodes(), 31), nil)
		wantS2 := core.PredictedS2Phases(c.r)
		wantSw := core.PredictedSweeps(c.r)
		t.Add(net.Name(), c.g.N(), c.r, clk.S2Phases, wantS2, clk.SweepPhases, wantSw,
			clk.S2Phases == wantS2 && clk.SweepPhases == wantSw)
	}
	res.Tables = append(res.Tables, t)

	t2 := stats.NewTable("E3b: full sort, rounds vs (r-1)^2*S2 + (r-1)(r-2)*R (Hamiltonian factors, R=1)",
		"network", "engine", "S2(N) rounds", "measured rounds", "Theorem 1 rounds", "exact match")
	type cfg2 struct {
		g      *graph.Graph
		r      int
		engine sort2d.Engine
	}
	cfgs2 := []cfg2{
		{graph.Path(3), 3, sort2d.Shearsort{}},
		{graph.Path(4), 3, sort2d.Shearsort{}},
		{graph.Path(3), 4, sort2d.Shearsort{}},
		{graph.Path(5), 3, sort2d.SnakeOET{}},
		{graph.Cycle(4), 3, sort2d.Shearsort{}},
		{graph.K2(), 4, sort2d.Opt4{}},
		{graph.K2(), 6, sort2d.Opt4{}},
		{graph.Petersen(), 2, sort2d.Shearsort{}},
	}
	for _, c := range cfgs2 {
		net := product.MustNew(c.g, c.r)
		clk := sortAndClock(c.g, c.r, workload.Permutation(net.Nodes(), 17), c.engine)
		s2 := c.engine.Rounds(c.g.N())
		want := cost.SortTime(c.r, s2, 1)
		t2.Add(net.Name(), c.engine.Name(), s2, clk.Rounds, want, clk.Rounds == want)
	}
	res.Tables = append(res.Tables, t2)

	t3 := stats.NewTable("E3c: single merge along dimension k, cost vs Lemma 3 M_k = 2(k-2)(S2+R)+S2",
		"network", "k", "S2 phases", "2(k-2)+1", "sweeps", "2(k-2)", "rounds", "M_k (R=1)", "exact match")
	for _, k := range []int{2, 3, 4} {
		g := graph.Path(3)
		net := product.MustNew(g, k)
		m := simnet.MustNew(net, make([]simnet.Key, net.Nodes()))
		m.LoadSnake(workload.Uniform(net.Nodes(), 23))
		s := core.New(sort2d.Shearsort{})
		prepareSlabs(s, m, k)
		// prepareSlabs only sorts {1,2} blocks and merges below k; for
		// k==2 the precondition is trivial, but we must not count the
		// setup phases.
		m.ResetClock()
		s.Merge(m, k)
		clk := m.Clock()
		s2 := (sort2d.Shearsort{}).Rounds(3)
		wantRounds := cost.MergeTime(k, s2, 1)
		t3.Add(net.Name(), k, clk.S2Phases, core.PredictedMergeS2Phases(k),
			clk.SweepPhases, core.PredictedMergeSweeps(k), clk.Rounds, wantRounds,
			clk.S2Phases == core.PredictedMergeS2Phases(k) &&
				clk.SweepPhases == core.PredictedMergeSweeps(k) &&
				clk.Rounds == wantRounds)
	}
	res.Tables = append(res.Tables, t3)
	return res
}
