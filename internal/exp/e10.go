package exp

import (
	"math/rand"

	"productsort/internal/graph"
	"productsort/internal/product"
	"productsort/internal/stats"
	"productsort/internal/workload"
)

// E10LabelingAblation quantifies the paper's Section 2 remark that
// labeling the factor along a Hamiltonian path — or, failing that, a
// dilation-3 linear-array embedding — "would provide a speed improvement
// over an arbitrary labeling, by a constant factor". Three labelings of
// the same factors are compared: a random shuffle (the "arbitrary"
// case), the constructor's natural labeling (in-order for trees), and
// the Karaganis dilation-3 order.
func E10LabelingAblation() *Result {
	res := &Result{ID: "E10", Title: "Ablation: factor labeling (arbitrary vs natural vs dilation-3 vs Hamiltonian)"}
	t := stats.NewTable("E10: measured rounds by labeling (r=2)",
		"factor", "N", "labeling", "max label dilation", "rounds", "vs arbitrary")
	factors := []*graph.Graph{
		graph.CompleteBinaryTree(3),
		graph.CompleteBinaryTree(4),
		graph.Star(8),
		graph.Caterpillar(4, []int{2, 2, 2, 2}),
	}
	for _, g := range factors {
		variants := labelingVariants(g)
		var arbitrary int
		for _, v := range variants {
			net := product.MustNew(v.g, 2)
			clk := sortAndClock(v.g, 2, workload.Uniform(net.Nodes(), 91), nil)
			if v.name == "arbitrary (shuffled)" {
				arbitrary = clk.Rounds
			}
			ratio := float64(clk.Rounds) / float64(arbitrary)
			t.Add(g.Name(), g.N(), v.name, v.g.MaxLabelDilation(), clk.Rounds, ratio)
		}
	}
	t.Note("smaller dilation bounds the per-sweep routing distance; congestion decides the rest, so natural tree in-order can beat dilation-3")
	t.Note("the Hamiltonian row appears only for factors that have a Hamiltonian path")
	res.Tables = append(res.Tables, t)
	return res
}

type labeledVariant struct {
	name string
	g    *graph.Graph
}

// labelingVariants builds the labelings under comparison; the shuffled
// variant is deterministic (fixed seed).
func labelingVariants(g *graph.Graph) []labeledVariant {
	out := []labeledVariant{}
	// Arbitrary: a random permutation of labels.
	rng := rand.New(rand.NewSource(12345))
	perm := rng.Perm(g.N())
	shuffled, err := graph.Relabel(g, perm)
	if err != nil {
		panic(err)
	}
	out = append(out, labeledVariant{"arbitrary (shuffled)", shuffled})
	out = append(out, labeledVariant{"natural (constructor)", g})
	out = append(out, labeledVariant{"dilation-3 (Karaganis)", graph.LinearRelabel(g)})
	if h, ok := graph.HamiltonianRelabel(g); ok && h.HamiltonianLabeled() {
		out = append(out, labeledVariant{"hamiltonian", h})
	}
	return out
}
