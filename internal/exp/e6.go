package exp

import (
	"fmt"

	"productsort/internal/baseline"
	"productsort/internal/cost"
	"productsort/internal/graph"
	"productsort/internal/product"
	"productsort/internal/simnet"
	"productsort/internal/stats"
	"productsort/internal/workload"
)

// E6HypercubeVsBatcher reproduces Section 5.3: on the r-dimensional
// hypercube the generalized algorithm runs in 3(r-1)² + (r-1)(r-2)
// rounds — the same O(r²) asymptotic as Batcher's algorithm, which is
// measured on the identical simulated machine for comparison.
func E6HypercubeVsBatcher() *Result {
	res := &Result{ID: "E6", Title: "Hypercube: multiway-merge vs Batcher bitonic (same machine, same rounds unit)"}
	t := stats.NewTable("E6: hypercube rounds",
		"r", "nodes", "multiway measured", "paper 3(r-1)^2+(r-1)(r-2)", "batcher measured", "batcher r(r+1)/2", "ratio multiway/batcher")
	fig := stats.NewFigure("E6: rounds vs r on the hypercube", "r", "rounds")
	serM := fig.AddSeries("multiway-merge")
	serB := fig.AddSeries("batcher bitonic")
	g := graph.K2()
	for r := 2; r <= 11; r++ {
		net := product.MustNew(g, r)
		keys := workload.Permutation(net.Nodes(), int64(r))
		clk := sortAndClock(g, r, keys, nil)
		paper := cost.HypercubeSortTime(r)
		if clk.Rounds != paper {
			panic(fmt.Sprintf("exp: hypercube rounds %d != paper %d", clk.Rounds, paper))
		}
		mb := simnet.MustNew(net, keys)
		baseline.BitonicOnHypercube(mb)
		if !baseline.IsSortedByID(mb) {
			panic("exp: batcher baseline failed")
		}
		bRounds := mb.Clock().Rounds
		t.Add(r, net.Nodes(), clk.Rounds, paper, bRounds, cost.BatcherHypercubeTime(r),
			float64(clk.Rounds)/float64(bRounds))
		serM.Point(fmt.Sprint(r), float64(clk.Rounds))
		serB.Point(fmt.Sprint(r), float64(bRounds))
	}
	t.Note("both are Θ(r²): (4r²-9r+5) vs r(r+1)/2, ratio → 8 as r grows; the constant buys topology independence, and the paper notes Batcher's algorithm is the special case N=2 of the generalized scheme")
	res.Tables = append(res.Tables, t)
	res.Figures = append(res.Figures, fig)
	return res
}
