package exp

import (
	"fmt"
	"sort"

	"productsort/internal/blocksort"
	"productsort/internal/graph"
	"productsort/internal/mergenet"
	"productsort/internal/simnet"
	"productsort/internal/stats"
	"productsort/internal/workload"
)

// E9BlockScaling exercises the keys ≫ processors regime (the setting
// Section 1 of the paper credits multiway algorithms with handling
// well): the oblivious schedule is replayed with merge-split operators,
// so the parallel round count stays fixed while each round moves a
// whole block. Total keys scale by 64× with zero additional rounds.
func E9BlockScaling() *Result {
	res := &Result{ID: "E9", Title: "Extension: block sorting (keys ≫ processors) — rounds independent of block size"}
	t := stats.NewTable("E9: merge-split block sorting on the recorded schedule",
		"network", "processors", "block", "total keys", "rounds", "merge-splits", "keys moved", "sorted")
	cfgs := []struct {
		g *graph.Graph
		r int
	}{
		{graph.Path(4), 3},
		{graph.K2(), 6},
		{graph.Petersen(), 2},
	}
	for _, c := range cfgs {
		s := mergenet.MustExtract(c.g, c.r, nil)
		for _, bs := range []int{1, 4, 16, 64} {
			keys := workload.Uniform(s.Inputs*bs, int64(bs))
			want := append([]simnet.Key(nil), keys...)
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			st, err := blocksort.Sort(s, keys, bs)
			if err != nil {
				panic(err)
			}
			ok := true
			for i := range keys {
				if keys[i] != want[i] {
					ok = false
					break
				}
			}
			t.Add(s.Network, s.Inputs, bs, s.Inputs*bs, st.Rounds, st.MergeSplits, st.KeysMoved, ok)
		}
	}
	t.Note("rounds equal the schedule depth for every block size; only per-round bandwidth grows")
	res.Tables = append(res.Tables, t)

	fig := stats.NewFigure("E9: total keys sorted vs parallel rounds (path4^3 schedule)", "block size", "value")
	serKeys := fig.AddSeries("total keys")
	serRounds := fig.AddSeries("rounds")
	s := mergenet.MustExtract(graph.Path(4), 3, nil)
	for _, bs := range []int{1, 4, 16, 64} {
		keys := workload.Uniform(s.Inputs*bs, 3)
		st, err := blocksort.Sort(s, keys, bs)
		if err != nil {
			panic(err)
		}
		serKeys.Point(fmt.Sprint(bs), float64(s.Inputs*bs))
		serRounds.Point(fmt.Sprint(bs), float64(st.Rounds))
	}
	res.Figures = append(res.Figures, fig)
	return res
}
