package exp

import (
	"fmt"

	"productsort/internal/baseline"
	"productsort/internal/core"
	"productsort/internal/graph"
	"productsort/internal/product"
	"productsort/internal/simnet"
	"productsort/internal/stats"
	"productsort/internal/workload"
)

// E8VsColumnsort compares the multiway-merge sort against the multiway
// algorithms discussed in Section 1: Leighton's Columnsort and the
// Batcher comparator networks. Work is compared in comparator operations
// and parallel depth on the same key sets.
func E8VsColumnsort() *Result {
	res := &Result{ID: "E8", Title: "Multiway-merge vs Columnsort, odd-even merge, bitonic, odd-even transposition"}
	t := stats.NewTable("E8: work and depth on n keys",
		"n", "algorithm", "comparators", "parallel depth/rounds", "notes")

	for _, n := range []int{64, 256, 1024} {
		keys := workload.Uniform(n, int64(n))
		want := sortedCopy(keys)

		// Multiway-merge on the hypercube (n = 2^r).
		r := 0
		for 1<<r < n {
			r++
		}
		g := graph.K2()
		net := product.MustNew(g, r)
		m := simnet.MustNew(net, make([]simnet.Key, n))
		m.LoadSnake(keys)
		clk := sortAndClockOn(m)
		t.Add(n, "multiway-merge (hypercube)", clk.CompareOps, clk.Rounds,
			fmt.Sprintf("S2 phases=%d sweeps=%d", clk.S2Phases, clk.SweepPhases))

		// Multiway-merge on a cube-ish grid when n = s³.
		if s := cubeRoot(n); s > 1 {
			gg := graph.Path(s)
			gnet := product.MustNew(gg, 3)
			gm := simnet.MustNew(gnet, make([]simnet.Key, n))
			gm.LoadSnake(keys)
			gclk := sortAndClockOn(gm)
			t.Add(n, fmt.Sprintf("multiway-merge (grid %d^3)", s), gclk.CompareOps, gclk.Rounds, "")
		}

		// Batcher bitonic on the hypercube machine.
		mb := simnet.MustNew(net, keys)
		baseline.BitonicOnHypercube(mb)
		bclk := mb.Clock()
		t.Add(n, "batcher bitonic (hypercube)", bclk.CompareOps, bclk.Rounds, "")

		// Naive generic baseline on the same machine: odd-even
		// transposition along the global snake.
		ms := simnet.MustNew(net, make([]simnet.Key, n))
		ms.LoadSnake(keys)
		baseline.SnakeOETOnMachine(ms)
		if !ms.IsSortedSnake() {
			panic("exp: snake OET baseline failed")
		}
		sclk := ms.Clock()
		t.Add(n, "snake odd-even transposition (hypercube)", sclk.CompareOps, sclk.Rounds, "naive generic machine baseline")

		// Comparator networks applied to the raw sequence.
		oem := baseline.OddEvenMergeNetwork(n)
		check := append([]simnet.Key(nil), keys...)
		oem.Apply(check)
		assertEqual(check, want, "odd-even merge network")
		t.Add(n, "odd-even merge network", oem.Size(), oem.Depth(), "")

		bit := baseline.BitonicNetwork(n)
		check = append([]simnet.Key(nil), keys...)
		bit.Apply(check)
		assertEqual(check, want, "bitonic network")
		t.Add(n, "bitonic network", bit.Size(), bit.Depth(), "")

		oet := baseline.OddEvenTranspositionNetwork(n)
		check = append([]simnet.Key(nil), keys...)
		oet.Apply(check)
		assertEqual(check, want, "odd-even transposition")
		t.Add(n, "odd-even transposition", oet.Size(), oet.Depth(), "linear-array algorithm")

		// Columnsort.
		if rr, ss, err := baseline.ColumnsortShape(n); err == nil {
			check = append([]simnet.Key(nil), keys...)
			st, err := baseline.Columnsort(check, rr, ss)
			if err != nil {
				panic(err)
			}
			assertEqual(check, want, "columnsort")
			t.Add(n, fmt.Sprintf("columnsort (%dx%d)", rr, ss), st.Comparators, st.Depth,
				fmt.Sprintf("%d column-sort passes + %d permutations", st.ColumnSorts, st.PermutationSteps))
		}
	}
	t.Note("multiway-merge and bitonic rows are measured on the simulated machine (depth = communication rounds); network rows are comparator statistics")
	t.Note("columnsort's column sorts use odd-even merge networks of r rows; its permutations are routing, not comparison")
	res.Tables = append(res.Tables, t)
	return res
}

// sortAndClockOn sorts an already-loaded machine and returns its clock.
func sortAndClockOn(m *simnet.Machine) simnet.Clock {
	alg := core.New(nil)
	alg.Sort(m)
	if !m.IsSortedSnake() {
		panic("exp: machine sort failed")
	}
	return m.Clock()
}

func cubeRoot(n int) int {
	for s := 2; s*s*s <= n; s++ {
		if s*s*s == n {
			return s
		}
	}
	return 0
}

func assertEqual(got, want []simnet.Key, what string) {
	if len(got) != len(want) {
		panic("exp: length mismatch in " + what)
	}
	for i := range got {
		if got[i] != want[i] {
			panic("exp: " + what + " produced wrong output")
		}
	}
}
