package exp

import (
	"productsort/internal/core"
	"productsort/internal/graph"
	"productsort/internal/mergenet"
	"productsort/internal/product"
	"productsort/internal/simnet"
	"productsort/internal/spmd"
	"productsort/internal/stats"
	"productsort/internal/workload"
)

// E15EngineAgreement is the hardware-validity experiment: the same
// schedule is executed by the deterministic simulator (which *charges*
// costs) and by the barrier-synchronized goroutine engine (which
// *measures* rounds by actually forwarding messages over edges, one
// send per processor per round). On Hamiltonian factors the two must
// agree exactly; on routed factors the SPMD engine's single-port relay
// measurement brackets the simulator's routing charge.
func E15EngineAgreement() *Result {
	res := &Result{ID: "E15", Title: "Simulator charges vs message-passing measurements (same schedule)"}
	t := stats.NewTable("E15: rounds by execution engine",
		"network", "ham", "phases", "simulator rounds", "SPMD sync rounds", "relays", "keys agree")
	cfgs := []struct {
		g *graph.Graph
		r int
	}{
		{graph.Path(3), 3},
		{graph.Path(4), 3},
		{graph.K2(), 6},
		{graph.Cycle(5), 2},
		{graph.Petersen(), 2},
		{graph.CompleteBinaryTree(3), 2},
		{graph.Star(5), 2},
	}
	for _, c := range cfgs {
		net := product.MustNew(c.g, c.r)
		keys := workload.Uniform(net.Nodes(), 137)

		m := simnet.MustNew(net, make([]simnet.Key, net.Nodes()))
		m.LoadSnake(keys)
		core.New(nil).Sort(m)

		phases, err := mergenet.NodePhasesNet(net, nil)
		if err != nil {
			panic(err)
		}
		byNode := make([]simnet.Key, len(keys))
		for pos, k := range keys {
			byNode[net.NodeAtSnake(pos)] = k
		}
		e, err := spmd.New(net, byNode)
		if err != nil {
			panic(err)
		}
		syncRounds := e.RunScheduleSynchronized(phases)

		agree := true
		ref, got := m.SnakeKeys(), e.SnakeKeys()
		for i := range ref {
			if ref[i] != got[i] {
				agree = false
				break
			}
		}
		t.Add(net.Name(), c.g.HamiltonianLabeled(), len(phases), m.Clock().Rounds,
			syncRounds, e.Relays(), agree)
	}
	t.Note("exact agreement everywhere the schedule is complete — including the routed factors, where greedy single-port relaying measures the same rounds the simulator charges")
	t.Note("the only gap is N=2 factors: the recorded phase list omits the idle sweep rounds the oblivious schedule spends (simulator 95 vs replay 91 on K2^6)")
	res.Tables = append(res.Tables, t)
	return res
}
