package exp

import (
	"fmt"
	"strings"

	"productsort/internal/core"
	"productsort/internal/graph"
	"productsort/internal/product"
	"productsort/internal/simnet"
	"productsort/internal/stats"
	"productsort/internal/viz"
)

// E1PaperExample reruns the worked example of Figs. 12–15: N=3, k=3,
// merging the three sorted 9-key sequences from the paper
// (A_0 = 0,4,4,5,5,7,8,8,9; A_1 = 1,4,5,5,5,6,7,7,8;
// A_2 = 0,0,1,1,1,2,3,4,9) and tracing the sequence through the steps.
func E1PaperExample() *Result {
	g := graph.Path(3)
	net := product.MustNew(g, 3)
	m := simnet.MustNew(net, make([]simnet.Key, 27))
	slabs := [][]simnet.Key{
		{0, 4, 4, 5, 5, 7, 8, 8, 9},
		{1, 4, 5, 5, 5, 6, 7, 7, 8},
		{0, 0, 1, 1, 1, 2, 3, 4, 9},
	}
	subDims := []int{1, 2}
	keys := m.Keys()
	for u, slab := range slabs {
		base := net.SetDigit(0, 3, u)
		for pos, key := range slab {
			keys[net.NodeInBlock(base, subDims, pos)] = key
		}
	}
	initial := append([]simnet.Key(nil), keys...)
	snake := make([]simnet.Key, len(keys))
	for pos := range snake {
		snake[pos] = keys[net.NodeAtSnake(pos)]
	}
	m.LoadSnake(snake)

	res := &Result{ID: "E1", Title: "Paper worked example (Figs. 12–15): merge of A_0, A_1, A_2 on PG_3 of a 3-node path"}
	t := stats.NewTable("E1: merge trace", "stage", "sequence / value")
	for u, slab := range slabs {
		t.Add(fmt.Sprintf("input A_%d (snake order of slab %d)", u, u), seqString(slab))
	}

	// Trace Steps 1–3 on a copy, then the full merge on the machine.
	s := core.New(nil)
	mSteps := simnet.MustNew(net, make([]simnet.Key, 27))
	mSteps.LoadSnake(snake)
	s.MergeSkipTopClean(mSteps, 3)
	t.Add("after Steps 1-3 (interleaved, Fig. 14)", seqString(mSteps.SnakeKeys()))
	t.Add("misplaced keys after Step 3", fmt.Sprintf("%d positions out of final place (Lemma 1 bounds the 0-1 dirty window by N²=9)", approxDisorder(mSteps.SnakeKeys())))

	s.Merge(m, 3)
	t.Add("after Step 4 (Fig. 15d), final", seqString(m.SnakeKeys()))

	want := sortedCopy(snake)
	match := true
	got := m.SnakeKeys()
	for i := range want {
		if got[i] != want[i] {
			match = false
		}
	}
	t.Add("matches fully sorted sequence", fmt.Sprintf("%v", match))
	clk := m.Clock()
	t.Add("cost (Lemma 3, k=3)", fmt.Sprintf("%d S2 phases (predicted %d), %d sweeps (predicted %d)",
		clk.S2Phases, core.PredictedMergeS2Phases(3), clk.SweepPhases, core.PredictedMergeSweeps(3)))
	res.Tables = append(res.Tables, t)

	// Grid renderings in the layout of the paper's figures: slabs of the
	// three-dimensional product side by side (dimension 3 = slab index).
	res.Raw = append(res.Raw,
		"initial placement (Fig. 12: slab u holds A_u in snake order):\n"+viz.RenderKeys(net, initial),
		"after Steps 1–3 (Fig. 14):\n"+viz.Render(mSteps),
		"after Step 4, merged (Fig. 15d):\n"+viz.Render(m))
	return res
}

func seqString(keys []simnet.Key) string {
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprint(k)
	}
	return strings.Join(parts, " ")
}

// approxDisorder counts positions whose key differs from the fully
// sorted sequence — a disorder measure for non-binary traces.
func approxDisorder(keys []simnet.Key) int {
	want := sortedCopy(keys)
	count := 0
	for i := range keys {
		if keys[i] != want[i] {
			count++
		}
	}
	return count
}
