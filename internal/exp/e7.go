package exp

import (
	"fmt"
	"math"

	"productsort/internal/cost"
	"productsort/internal/graph"
	"productsort/internal/product"
	"productsort/internal/stats"
	"productsort/internal/workload"
)

// E7PetersenDeBruijn reproduces Sections 5.4–5.5. The Petersen cube has
// fixed N=10, so sorting time grows as O(r²): the measured
// rounds/(r-1)² ratio is constant. For products of de Bruijn and
// shuffle-exchange graphs the paper obtains O(r² log² N) by running
// Batcher's algorithm on an embedded de Bruijn graph as the S_2 sorter;
// our topology-independent S_2 substitute (shearsort) measures
// O(r² N log N) instead, so the log²N column is reproduced analytically
// from Theorem 1 with the paper's S_2 model (see DESIGN.md).
func E7PetersenDeBruijn() *Result {
	res := &Result{ID: "E7", Title: "Petersen cube O(r²); de Bruijn / shuffle-exchange products O(r² log² N)"}

	t := stats.NewTable("E7a: Petersen cube, fixed N=10, sweep r",
		"r", "nodes", "measured rounds", "rounds/(r-1)^2", "sweeps", "(r-1)(r-2)")
	g := graph.Petersen()
	for _, r := range []int{2, 3} {
		net := product.MustNew(g, r)
		clk := sortAndClock(g, r, workload.Uniform(net.Nodes(), 61), nil)
		t.Add(r, net.Nodes(), clk.Rounds, float64(clk.Rounds)/float64((r-1)*(r-1)),
			clk.SweepPhases, (r-1)*(r-2))
	}
	t.Note("constant rounds/(r-1)² confirms the O(r²) class; the Petersen factor is Hamiltonian so no phase is routed")
	res.Tables = append(res.Tables, t)

	t2 := stats.NewTable("E7b: de Bruijn and shuffle-exchange products, r=2, sweep N (measured with generic S2)",
		"network", "N", "nodes", "measured rounds", "rounds/(N log2 N)", "hamiltonian")
	for _, g := range []*graph.Graph{
		graph.DeBruijn(2, 2), graph.DeBruijn(2, 3), graph.DeBruijn(2, 4),
		graph.ShuffleExchange(2), graph.ShuffleExchange(3), graph.ShuffleExchange(4),
	} {
		net := product.MustNew(g, 2)
		clk := sortAndClock(g, 2, workload.Uniform(net.Nodes(), 67), nil)
		n := float64(g.N())
		t2.Add(net.Name(), g.N(), net.Nodes(), clk.Rounds,
			float64(clk.Rounds)/(n*math.Log2(n)), g.HamiltonianLabeled())
	}
	t2.Note("generic shearsort S2 gives Θ(N log N) per S2 phase: the near-constant rounds/(N log N) column confirms it")
	res.Tables = append(res.Tables, t2)

	t3 := stats.NewTable("E7c: paper's de Bruijn model (Theorem 1 with S2 = Batcher-on-embedded-de-Bruijn)",
		"N", "r", "S2 model = c*log2^2(N^2)", "R model", "paper rounds (Theorem 1)", "rounds/log2^2(N)")
	for _, n := range []int{4, 8, 16, 64, 256} {
		for _, r := range []int{2, 3, 4} {
			s2 := cost.DeBruijnS2Model(n)
			rounds := cost.DeBruijnSortModel(r, n)
			lgN := math.Log2(float64(n))
			t3.Add(n, r, s2, cost.DeBruijnRModel(), rounds, float64(rounds)/(lgN*lgN))
		}
	}
	t3.Note("rounds/log²N approaches a constant per fixed r: the paper's O(log² N) class for bounded dimensions")
	res.Tables = append(res.Tables, t3)

	fig := stats.NewFigure("E7: Petersen cube rounds vs r (measured) — quadratic shape", "r", "rounds")
	ser := fig.AddSeries("petersen^r measured")
	serQ := fig.AddSeries("c·(r-1)²")
	base := 0.0
	for _, r := range []int{2, 3} {
		net := product.MustNew(g, r)
		clk := sortAndClock(g, r, workload.Uniform(net.Nodes(), 71), nil)
		if r == 2 {
			base = float64(clk.Rounds)
		}
		ser.Point(fmt.Sprint(r), float64(clk.Rounds))
		serQ.Point(fmt.Sprint(r), base*float64((r-1)*(r-1)))
	}
	res.Figures = append(res.Figures, fig)
	return res
}
