package exp

import (
	"fmt"

	"productsort/internal/core"
	"productsort/internal/graph"
	"productsort/internal/product"
	"productsort/internal/simnet"
	"productsort/internal/sort2d"
	"productsort/internal/stats"
	"productsort/internal/workload"
)

// E12Heterogeneous exercises the heterogeneous-product extension: the
// paper analyzes homogeneous products only, but the algorithm
// generalizes to mixed factor sizes when the radices above dimension 1
// are nonincreasing (the generalized Lemma 1 bounds the dirty window by
// N₁·N_k, which must fit the N_ℓ·N_{ℓ+1} cleaning blocks — see package
// core). Rectangular grids are the flagship instance.
func E12Heterogeneous() *Result {
	res := &Result{ID: "E12", Title: "Extension: heterogeneous products (rectangular grids, mixed factors)"}

	t := stats.NewTable("E12a: rectangular grids — measured rounds vs the generalized Theorem 1 predictor",
		"network", "nodes", "measured rounds", "predicted", "exact match", "S2 phases", "sweeps")
	rects := [][]int{
		{4, 4}, {8, 4}, {4, 8}, {16, 4},
		{4, 4, 4}, {2, 8, 4}, {8, 4, 2}, {3, 6, 5},
		{2, 4, 3, 2},
	}
	for _, sides := range rects {
		factors := make([]*graph.Graph, len(sides))
		for i, s := range sides {
			factors[i] = graph.Path(s)
		}
		// Arrange upper dims nonincreasing (as the public API does).
		for i := 2; i < len(factors); i++ {
			for j := i; j > 1 && factors[j].N() > factors[j-1].N(); j-- {
				factors[j], factors[j-1] = factors[j-1], factors[j]
			}
		}
		net := product.MustNewHetero(factors)
		m := simnet.MustNew(net, make([]simnet.Key, net.Nodes()))
		m.LoadSnake(workload.Uniform(net.Nodes(), 101))
		core.New(nil).Sort(m)
		if !m.IsSortedSnake() {
			panic("exp: heterogeneous sort failed")
		}
		clk := m.Clock()
		pred := core.PredictedRounds(net, sort2d.Auto{})
		t.Add(net.Name(), net.Nodes(), clk.Rounds, pred, clk.Rounds == pred,
			clk.S2Phases, clk.SweepPhases)
	}
	t.Note("the (r-1)² / (r-1)(r-2) phase structure is radix-independent; rounds follow the per-level S2(N_l, N_{l+1}) sizes")
	res.Tables = append(res.Tables, t)

	t2 := stats.NewTable("E12b: mixed factor families in one network",
		"network", "nodes", "hamiltonian dims", "routed phases", "rounds", "sorted")
	mixes := [][]*graph.Graph{
		{graph.Cycle(4), graph.Petersen(), graph.Path(4)},
		{graph.K2(), graph.CompleteBinaryTree(3), graph.Cycle(4)},
		{graph.DeBruijn(2, 2), graph.ShuffleExchange(3), graph.Path(3)},
	}
	for _, factors := range mixes {
		net := product.MustNewHetero(factors)
		m := simnet.MustNew(net, make([]simnet.Key, net.Nodes()))
		m.LoadSnake(workload.Uniform(net.Nodes(), 103))
		core.New(nil).Sort(m)
		clk := m.Clock()
		ham := 0
		for dim := 1; dim <= net.R(); dim++ {
			if net.FactorAt(dim).HamiltonianLabeled() {
				ham++
			}
		}
		t2.Add(net.Name(), net.Nodes(), fmt.Sprintf("%d/%d", ham, net.R()),
			clk.RoutedPhases, clk.Rounds, m.IsSortedSnake())
	}
	t2.Note("a tree factor at one dimension routes only that dimension's phases; the rest stay single-hop")
	res.Tables = append(res.Tables, t2)

	fig := stats.NewFigure("E12: rounds on W×4 rectangular grids vs width W (second dimension fixed)", "W", "rounds")
	ser := fig.AddSeries("grid Wx4 measured")
	for _, w := range []int{2, 4, 8, 16, 32} {
		net := product.MustNewHetero([]*graph.Graph{graph.Path(w), graph.Path(4)})
		m := simnet.MustNew(net, make([]simnet.Key, net.Nodes()))
		m.LoadSnake(workload.Uniform(net.Nodes(), 107))
		core.New(nil).Sort(m)
		if !m.IsSortedSnake() {
			panic("exp: Wx4 sort failed")
		}
		ser.Point(fmt.Sprint(w), float64(m.Clock().Rounds))
	}
	res.Figures = append(res.Figures, fig)
	return res
}
