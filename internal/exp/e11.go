package exp

import (
	"fmt"

	"productsort/internal/baseline"
	"productsort/internal/graph"
	"productsort/internal/mergenet"
	"productsort/internal/product"
	"productsort/internal/sort2d"
	"productsort/internal/stats"
	"productsort/internal/workload"
)

// E11Obliviousness demonstrates two structural properties behind the
// paper's analysis: (a) the algorithm is oblivious — its round count is
// identical for every input distribution, which is why the closed forms
// of Theorem 1 are exact rather than averages; and (b) the recorded
// schedule is itself a sorting network, compared here against Batcher's
// constructions, together with the S_2 engine ablation the schedule
// depth depends on.
func E11Obliviousness() *Result {
	res := &Result{ID: "E11", Title: "Obliviousness, schedule-as-network statistics, and the S2 engine ablation"}

	t := stats.NewTable("E11a: rounds by workload (path4^3, 64 processors) — all identical",
		"workload", "rounds", "compare ops")
	g := graph.Path(4)
	net := product.MustNew(g, 3)
	firstRounds := -1
	for _, name := range workload.Names() {
		gen, err := workload.ByName(name)
		if err != nil {
			panic(err)
		}
		clk := sortAndClock(g, 3, gen(net.Nodes(), 7), nil)
		if firstRounds < 0 {
			firstRounds = clk.Rounds
		}
		if clk.Rounds != firstRounds {
			panic("exp: algorithm is not oblivious?!")
		}
		t.Add(name, clk.Rounds, clk.CompareOps)
	}
	t.Note("identical rounds for every distribution: the schedule never inspects keys")
	res.Tables = append(res.Tables, t)

	t2 := stats.NewTable("E11b: the extracted schedule as a comparator network vs Batcher",
		"inputs", "network source", "comparators", "phases/depth")
	for _, c := range []struct {
		g *graph.Graph
		r int
	}{
		{graph.K2(), 4}, {graph.K2(), 6}, {graph.Path(4), 2}, {graph.Path(4), 3},
	} {
		s := mergenet.MustExtract(c.g, c.r, nil)
		t2.Add(s.Inputs, "multiway-merge schedule ("+s.Network+")", s.Size(), s.Depth())
		oem := baseline.OddEvenMergeNetwork(s.Inputs)
		t2.Add(s.Inputs, "batcher odd-even merge", oem.Size(), oem.Depth())
	}
	res.Tables = append(res.Tables, t2)

	// §3.2's standalone construction: pure comparator networks built
	// from the multiway-merge recursion, swept over the fan-in.
	t2b := stats.NewTable("E11b': §3.2 standalone multiway-merge networks — fan-in ablation (64 inputs)",
		"fan-in N", "construction", "comparators", "depth")
	for _, c := range []struct{ n, k int }{{2, 6}, {4, 3}, {8, 2}} {
		nw := baseline.MultiwayMergeNetwork(c.n, c.k)
		t2b.Add(c.n, fmt.Sprintf("multiway N=%d (N^%d inputs)", c.n, c.k), nw.Size(), nw.Depth())
	}
	oem64 := baseline.OddEvenMergeNetwork(64)
	t2b.Add("-", "batcher odd-even merge", oem64.Size(), oem64.Depth())
	t2b.Note("larger fan-in amortizes Step 4 over fewer recursion levels: N=4 roughly halves N=2's comparator count")
	res.Tables = append(res.Tables, t2b)

	// Exact redundancy elimination at 16 inputs: comparators that never
	// fire on any 0-1 input are provably removable.
	t2c := stats.NewTable("E11b'': redundancy in the §3.2 construction (16 inputs, exact 0-1 pruning)",
		"construction", "comparators", "after pruning", "batcher OEM")
	oem16 := baseline.OddEvenMergeNetwork(16)
	for _, c := range []struct{ n, k int }{{2, 4}, {4, 2}} {
		nw := baseline.MultiwayMergeNetwork(c.n, c.k)
		t2c.Add(fmt.Sprintf("multiway N=%d^%d", c.n, c.k), nw.Size(), nw.PruneZeroOne().Size(), oem16.Size())
	}
	t2c.Note("about half the multiway comparators never fire (Step 4 re-sorts mostly-sorted chunks); even pruned, Batcher stays smaller")
	res.Tables = append(res.Tables, t2c)

	t3 := stats.NewTable("E11c: S2 engine ablation (grid 8x8 and 4^3)",
		"network", "engine", "S2 rounds/phase", "total rounds")
	for _, c := range []struct {
		g *graph.Graph
		r int
	}{
		{graph.Path(8), 2}, {graph.Path(4), 3},
	} {
		for _, e := range []sort2d.Engine{sort2d.Shearsort{}, sort2d.SnakeOET{}} {
			net := product.MustNew(c.g, c.r)
			clk := sortAndClock(c.g, c.r, workload.Uniform(net.Nodes(), 13), e)
			t3.Add(net.Name(), e.Name(), e.Rounds(c.g.N()), clk.Rounds)
		}
	}
	t3.Note("shearsort's (2⌈log N⌉+1)N beats snake odd-even transposition's N² from N≥8; both inherit the same (r-1)² factor")
	res.Tables = append(res.Tables, t3)
	return res
}
