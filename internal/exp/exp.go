// Package exp implements the reproduction experiments E1–E8 listed in
// DESIGN.md: each regenerates one of the paper's artifacts (the worked
// example, Lemma 1, Lemma 3/Theorem 1, the Corollary, and the Section 5
// per-network results) as deterministic tables and figure series.
// cmd/bench prints them; bench_test.go wraps them in testing.B benches;
// EXPERIMENTS.md records their output next to the paper's claims.
package exp

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"productsort/internal/core"
	"productsort/internal/graph"
	"productsort/internal/product"
	"productsort/internal/simnet"
	"productsort/internal/sort2d"
	"productsort/internal/stats"
)

// Result bundles the artifacts one experiment produces.
type Result struct {
	ID      string
	Title   string
	Tables  []*stats.Table
	Figures []*stats.Figure
	// Raw holds preformatted blocks (e.g. grid renderings of machine
	// states) printed verbatim after the tables.
	Raw []string
}

// WriteCSVs writes each table and figure as a CSV file under dir, named
// <id>_tableN.csv / <id>_figN.csv, and returns the file names written.
func (r *Result) WriteCSVs(dir string) ([]string, error) {
	var names []string
	for i, t := range r.Tables {
		name := fmt.Sprintf("%s_table%d.csv", strings.ToLower(r.ID), i+1)
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return names, err
		}
		if err := t.CSV(f); err != nil {
			f.Close()
			return names, err
		}
		if err := f.Close(); err != nil {
			return names, err
		}
		names = append(names, name)
	}
	for i, fg := range r.Figures {
		name := fmt.Sprintf("%s_fig%d.csv", strings.ToLower(r.ID), i+1)
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return names, err
		}
		if err := fg.CSV(f); err != nil {
			f.Close()
			return names, err
		}
		if err := f.Close(); err != nil {
			return names, err
		}
		names = append(names, name)
	}
	return names, nil
}

// Render writes every table, figure, and raw block to w.
func (r *Result) Render(w io.Writer) {
	fmt.Fprintf(w, "### %s — %s\n\n", r.ID, r.Title)
	for _, t := range r.Tables {
		t.Render(w)
	}
	for _, f := range r.Figures {
		f.Render(w)
	}
	for _, raw := range r.Raw {
		fmt.Fprintln(w, raw)
	}
}

// Experiment is a runnable reproduction experiment.
type Experiment struct {
	ID    string
	Title string
	Run   func() *Result
}

// All returns the experiments in order E1..E8.
func All() []Experiment {
	return []Experiment{
		{"e1", "Paper worked example (Figs. 12–15)", E1PaperExample},
		{"e2", "Lemma 1: dirty area ≤ N²", E2DirtyArea},
		{"e3", "Lemma 3 + Theorem 1: exact phase and round counts", E3Theorem1},
		{"e4", "Corollary: universal 18(r-1)²N bound", E4UniversalBound},
		{"e5", "§5.1–5.2: grid and MCT scaling in N (fixed r)", E5GridMCTScaling},
		{"e6", "§5.3: hypercube vs Batcher bitonic", E6HypercubeVsBatcher},
		{"e7", "§5.4–5.5: Petersen cube and de Bruijn/SE products", E7PetersenDeBruijn},
		{"e8", "Comparison vs Columnsort and comparator networks", E8VsColumnsort},
		{"e9", "Extension: block sorting, rounds independent of keys/processor", E9BlockScaling},
		{"e10", "Ablation: factor labeling (arbitrary vs natural vs dilation-3)", E10LabelingAblation},
		{"e11", "Obliviousness, schedule-as-network, S2 engine ablation", E11Obliviousness},
		{"e12", "Extension: heterogeneous products (rectangular grids)", E12Heterogeneous},
		{"e13", "Corollary mechanism: schedule invariance across factors", E13ScheduleInvariance},
		{"e14", "Permutation routing substrate: the cost of explicit data movement", E14PermutationRouting},
		{"e15", "Simulator charges vs SPMD message-passing measurements", E15EngineAgreement},
	}
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("exp: unknown experiment %q", id)
}

// machineFor loads keys onto a fresh machine over the factor product.
func machineFor(g *graph.Graph, r int, keys []simnet.Key) *simnet.Machine {
	net := product.MustNew(g, r)
	m := simnet.MustNew(net, make([]simnet.Key, net.Nodes()))
	m.LoadSnake(keys)
	return m
}

// sortAndClock runs the multiway-merge sort and returns the clock.
func sortAndClock(g *graph.Graph, r int, keys []simnet.Key, engine sort2d.Engine) simnet.Clock {
	m := machineFor(g, r, keys)
	core.New(engine).Sort(m)
	if !m.IsSortedSnake() {
		panic(fmt.Sprintf("exp: sort failed on %s^%d", g.Name(), r))
	}
	return m.Clock()
}

// prepareSlabs establishes the Merge precondition on m: every
// dimension-r slab sorted in its local snake order, using the sorter's
// own phases (initial S_2 sorts plus merges along dimensions 3..r-1).
func prepareSlabs(s *core.Sorter, m *simnet.Machine, r int) {
	s.Engine.Sort(m, 1, 2, sort2d.AscendingAll)
	for k := 3; k < r; k++ {
		s.Merge(m, k)
	}
}

// sortedCopy returns keys sorted ascending.
func sortedCopy(keys []simnet.Key) []simnet.Key {
	out := append([]simnet.Key(nil), keys...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// seedsFor returns deterministic seeds for multi-trial experiments.
func seedsFor(trials int) []int64 {
	seeds := make([]int64, trials)
	for i := range seeds {
		seeds[i] = int64(1000 + 37*i)
	}
	return seeds
}
