package exp

import (
	"fmt"

	"productsort/internal/core"
	"productsort/internal/graph"
	"productsort/internal/stats"
	"productsort/internal/workload"
)

// E2DirtyArea measures the dirty window left after Step 3 of the merge
// (Lemma 1 bounds it by N²). Random 0-1 inputs are driven through the
// full precondition pipeline, the top-level clean is skipped, and the
// window of unsorted keys in the global snake order is measured.
func E2DirtyArea() *Result {
	res := &Result{ID: "E2", Title: "Lemma 1: dirty area after Step 3 never exceeds N²"}
	t := stats.NewTable("E2: measured dirty windows (random and balanced 0-1 inputs)",
		"factor", "N", "r", "trials", "max window", "bound N²", "within bound")
	type cfg struct {
		g *graph.Graph
		r int
	}
	cfgs := []cfg{
		{graph.Path(2), 3}, {graph.Path(2), 4}, {graph.Path(2), 5},
		{graph.Path(3), 3}, {graph.Path(3), 4},
		{graph.Path(4), 3}, {graph.Path(5), 3}, {graph.Path(6), 3}, {graph.Path(8), 3},
		{graph.Cycle(4), 3}, {graph.Petersen(), 3},
	}
	const trials = 60
	for _, c := range cfgs {
		n := c.g.N()
		nodes := 1
		for i := 0; i < c.r; i++ {
			nodes *= n
		}
		maxWindow := 0
		for i, seed := range seedsFor(trials) {
			var keys []int64
			if i%2 == 0 {
				keys = workload.ZeroOne(nodes, seed)
			} else {
				keys = workload.ZeroOneBalanced(nodes, seed)
			}
			m := machineFor(c.g, c.r, keys)
			s := core.New(nil)
			prepareSlabs(s, m, c.r)
			s.MergeSkipTopClean(m, c.r)
			if w := core.DirtyWindow(m.SnakeKeys()); w > maxWindow {
				maxWindow = w
			}
		}
		bound := n * n
		t.Add(c.g.Name(), n, c.r, trials, maxWindow, bound, maxWindow <= bound)
	}
	t.Note("window = distance from first 1 to last 0 (+1) in the global snake order")
	res.Tables = append(res.Tables, t)

	fig := stats.NewFigure("E2: worst observed dirty window vs N (r=3, path factor)", "N", "window")
	meas := fig.AddSeries("max window")
	bound := fig.AddSeries("N² bound")
	for _, n := range []int{2, 3, 4, 5, 6, 8} {
		g := graph.Path(n)
		nodes := n * n * n
		maxWindow := 0
		for _, seed := range seedsFor(40) {
			keys := workload.ZeroOneBalanced(nodes, seed)
			m := machineFor(g, 3, keys)
			s := core.New(nil)
			prepareSlabs(s, m, 3)
			s.MergeSkipTopClean(m, 3)
			if w := core.DirtyWindow(m.SnakeKeys()); w > maxWindow {
				maxWindow = w
			}
		}
		meas.Point(fmt.Sprint(n), float64(maxWindow))
		bound.Point(fmt.Sprint(n), float64(n*n))
	}
	res.Figures = append(res.Figures, fig)
	return res
}
