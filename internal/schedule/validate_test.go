package schedule

import (
	"strings"
	"testing"

	"productsort/internal/graph"
	"productsort/internal/product"
)

// validNet returns a small network and a structurally valid op list to
// corrupt from.
func validNet(t *testing.T) (*product.Network, []Op) {
	t.Helper()
	net, err := product.New(graph.Path(3), 2)
	if err != nil {
		t.Fatal(err)
	}
	ops := []Op{
		{Kind: OpBeginS2},
		{Kind: OpCompareExchange, Pairs: [][2]int{{0, 1}, {3, 4}}, Cost: 1, Dim: 1},
		{Kind: OpS2Marker},
		{Kind: OpEndS2},
		{Kind: OpRoutedExchange, Pairs: [][2]int{{2, 5}}, Cost: 3, Dim: 2},
		{Kind: OpIdle, Cost: 1},
		{Kind: OpSweepMarker},
	}
	return net, ops
}

func TestValidateAcceptsSoundPrograms(t *testing.T) {
	net, ops := validNet(t)
	prog, err := NewProgram(net, "test", ops)
	if err != nil {
		t.Fatalf("valid op list rejected: %v", err)
	}
	if got := prog.Clock().CompareOps; got != 3 {
		t.Fatalf("clock rebuilt wrong: CompareOps = %d, want 3", got)
	}
	if got := prog.Clock().Rounds; got != 5 {
		t.Fatalf("clock rebuilt wrong: Rounds = %d, want 5", got)
	}
	if got := prog.Clock().S2Rounds; got != 1 {
		t.Fatalf("clock rebuilt wrong: S2Rounds = %d, want 1", got)
	}
}

// TestValidateRejectsCorruptPrograms covers every violation class the
// defensive gate must catch before certification trusts the IR.
func TestValidateRejectsCorruptPrograms(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func([]Op) []Op
		want    string
	}{
		{"node out of range high", func(ops []Op) []Op {
			ops[1].Pairs[0][1] = 9
			return ops
		}, "out of range"},
		{"node out of range negative", func(ops []Op) []Op {
			ops[4].Pairs[0][0] = -1
			return ops
		}, "out of range"},
		{"degenerate pair", func(ops []Op) []Op {
			ops[1].Pairs[1] = [2]int{4, 4}
			return ops
		}, "degenerate"},
		{"node reused across pairs", func(ops []Op) []Op {
			ops[1].Pairs[1] = [2]int{1, 4}
			return ops
		}, "appears twice"},
		{"empty exchange", func(ops []Op) []Op {
			ops[1].Pairs = nil
			return ops
		}, "empty pair list"},
		{"non-positive cost", func(ops []Op) []Op {
			ops[1].Cost = 0
			return ops
		}, "cost 0"},
		{"unbalanced begin-s2", func(ops []Op) []Op {
			return append(ops, Op{Kind: OpBeginS2})
		}, "unclosed"},
		{"end-s2 without begin", func(ops []Op) []Op {
			return append([]Op{{Kind: OpEndS2}}, ops...)
		}, "without matching"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			net, ops := validNet(t)
			_, err := NewProgram(net, "test", tc.corrupt(ops))
			if err == nil {
				t.Fatalf("corrupt program accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestCompiledProgramsValidate asserts the invariant Compile now
// enforces: every program that comes out of the real compiler passes
// Validate (regression guard for the build-time hook).
func TestCompiledProgramsValidate(t *testing.T) {
	for _, g := range []*graph.Graph{graph.Path(4), graph.CompleteBinaryTree(3), graph.Petersen()} {
		net, err := product.New(g, 2)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := Compile(net, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := prog.Validate(); err != nil {
			t.Fatalf("%s: compiled program failed validation: %v", net.Name(), err)
		}
	}
}
