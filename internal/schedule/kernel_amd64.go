// amd64 dispatch for the columnar kernel: when the CPU and OS support
// AVX2, the comparator stream runs through the assembly kernel in
// kernel_amd64.s — four sets per vector lane group instead of one per
// scalar iteration; otherwise (and on every other GOARCH) the portable
// BCE-clean loop in kernel.go runs. Both paths compute the identical
// result (pinned by TestKernelAVX2MatchesScalar), so everything proved
// about the scalar replay — certification included — carries over.

package schedule

import "productsort/internal/simnet"

// applyComparatorsAVX2 is implemented in kernel_amd64.s.
//
//go:noescape
func applyComparatorsAVX2(slab *simnet.Key, comps *Comparator, n, width int)

// cpuid and xgetbv0 are implemented in kernel_amd64.s.
func cpuid(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)
func xgetbv0() (eax, edx uint32)

// haveAVX2 is the one-time CPU/OS capability probe: AVX2 in hardware
// and YMM state enabled by the OS (OSXSAVE + XCR0 bits 1|2).
var haveAVX2 = detectAVX2()

// detectAVX2 reports whether the AVX2 kernel may run.
func detectAVX2() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const osxsave = 1 << 27
	const avx = 1 << 28
	if ecx1&osxsave == 0 || ecx1&avx == 0 {
		return false
	}
	xcr0, _ := xgetbv0()
	if xcr0&0x6 != 0x6 { // XMM and YMM state saved by the OS
		return false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	const avx2 = 1 << 5
	return ebx7&avx2 != 0
}

// runComparators dispatches one columnar replay to the fastest kernel
// available. Widths below a vector group gain nothing from the call
// into assembly, so they stay on the scalar loop.
func runComparators(slab []simnet.Key, comps []Comparator, width int) {
	if haveAVX2 && width >= 4 && len(comps) > 0 {
		applyComparatorsAVX2(&slab[0], &comps[0], len(comps), width)
		return
	}
	applyComparators(slab, comps, width)
}
