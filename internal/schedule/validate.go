// Compile-time validation of the schedule IR: the structural invariants
// every backend (and, above all, the 0-1 certifier in internal/cert)
// relies on without re-checking per replay.

package schedule

import (
	"fmt"

	"productsort/internal/product"
	"productsort/internal/simnet"
)

// Validate checks the structural invariants of the program's exchange
// ops: every pair endpoint must be a node id in [0, Nodes()), a pair's
// endpoints must be distinct, and the pairs of one op must be
// node-disjoint (a node may appear in at most one pair per parallel
// phase — two comparators writing the same cell in one synchronous step
// would make the op's semantics order-dependent). Round-consuming ops
// must carry a positive cost, and S2 brackets must be balanced.
//
// Compile runs Validate on every freshly built program, so a cached
// *Program is always structurally sound by construction; the certifier
// re-runs it as a defensive gate before trusting the IR, and mutation
// harnesses use it to keep generated mutants inside the space of valid
// (if wrong) programs.
func (p *Program) Validate() error {
	nodes := p.net.Nodes()
	// seen[v] == stamp marks node v as used by the current op; a fresh
	// stamp per op avoids clearing the slice between phases.
	seen := make([]int, nodes)
	for i := range seen {
		seen[i] = -1
	}
	s2Depth := 0
	for i := range p.ops {
		op := &p.ops[i]
		switch op.Kind {
		case OpCompareExchange, OpRoutedExchange:
			if len(op.Pairs) == 0 {
				return fmt.Errorf("schedule: op %d (%s): empty pair list", i, op.Kind)
			}
			if op.Cost < 1 {
				return fmt.Errorf("schedule: op %d (%s): cost %d < 1", i, op.Kind, op.Cost)
			}
			for j, pr := range op.Pairs {
				lo, hi := pr[0], pr[1]
				if lo < 0 || lo >= nodes || hi < 0 || hi >= nodes {
					return fmt.Errorf("schedule: op %d pair %d (%d,%d): node out of range [0,%d)",
						i, j, lo, hi, nodes)
				}
				if lo == hi {
					return fmt.Errorf("schedule: op %d pair %d: degenerate pair (%d,%d)", i, j, lo, hi)
				}
				if seen[lo] == i {
					return fmt.Errorf("schedule: op %d pair %d: node %d appears twice in one phase", i, j, lo)
				}
				if seen[hi] == i {
					return fmt.Errorf("schedule: op %d pair %d: node %d appears twice in one phase", i, j, hi)
				}
				seen[lo], seen[hi] = i, i
			}
		case OpIdle:
			if op.Cost < 1 {
				return fmt.Errorf("schedule: op %d (idle): cost %d < 1", i, op.Cost)
			}
		case OpBeginS2:
			s2Depth++
		case OpEndS2:
			s2Depth--
			if s2Depth < 0 {
				return fmt.Errorf("schedule: op %d: end-s2 without matching begin-s2", i)
			}
		case OpS2Marker, OpSweepMarker:
			// markers carry no structure
		default:
			return fmt.Errorf("schedule: op %d: unknown kind %d", i, uint8(op.Kind))
		}
	}
	if s2Depth != 0 {
		return fmt.Errorf("schedule: %d unclosed begin-s2 bracket(s)", s2Depth)
	}
	return nil
}

// NewProgram assembles a program directly from an op list, validating
// it and recomputing the replay clock from the ops' recorded costs (no
// re-pricing: the caller's costs are trusted, only structure is
// checked). It exists for program surgery — the mutation-testing
// harness in internal/cert derives corrupted-but-valid variants of a
// compiled program through it — and for tests that need hand-built
// schedules. Programs built this way are never inserted into the
// process-wide cache.
func NewProgram(net *product.Network, engine string, ops []Op) (*Program, error) {
	p := &Program{net: net, engine: engine, sig: "adhoc", ops: ops, clock: clockOf(ops)}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// clockOf rebuilds the precomputed replay clock of an op list, walking
// the same S2/sweep attribution the Builder maintains while recording.
func clockOf(ops []Op) (clk simnet.Clock) {
	inS2 := false
	charge := func(cost int) {
		clk.Rounds += cost
		if inS2 {
			clk.S2Rounds += cost
		} else {
			clk.SweepRounds += cost
		}
	}
	for i := range ops {
		op := &ops[i]
		switch op.Kind {
		case OpCompareExchange, OpRoutedExchange:
			if op.Kind == OpRoutedExchange {
				clk.RoutedPhases++
			}
			clk.ComparePhases++
			clk.CompareOps += len(op.Pairs)
			charge(op.Cost)
		case OpIdle:
			charge(op.Cost)
		case OpBeginS2:
			inS2 = true
		case OpEndS2:
			inS2 = false
		case OpS2Marker:
			clk.S2Phases++
		case OpSweepMarker:
			clk.SweepPhases++
		}
	}
	return clk
}
