package schedule

import (
	"errors"
	"math/rand"
	"sort"
	"testing"

	"productsort/internal/faults"
	"productsort/internal/graph"
	"productsort/internal/product"
	"productsort/internal/simnet"
)

func nodeKeys(n int, seed int64) []simnet.Key {
	rng := rand.New(rand.NewSource(seed))
	ks := make([]simnet.Key, n)
	for i := range ks {
		ks[i] = simnet.Key(rng.Intn(1000))
	}
	return ks
}

func sortedCopy(ks []simnet.Key) []simnet.Key {
	cp := append([]simnet.Key(nil), ks...)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	return cp
}

// A nil or quiet plan makes the resilient backend a transparent
// delegate: same keys, the program's own clock, zero counters.
func TestResilientQuietDelegates(t *testing.T) {
	net := product.MustNew(graph.Path(3), 2)
	prog, err := Compile(net, nil)
	if err != nil {
		t.Fatal(err)
	}
	keys := nodeKeys(net.Nodes(), 1)
	want := append([]simnet.Key(nil), keys...)
	if _, err := (ExecBackend{}).Run(prog, want); err != nil {
		t.Fatal(err)
	}
	for _, plan := range []*faults.Plan{nil, faults.NewPlan(faults.Config{Seed: 9})} {
		got := nodeKeys(net.Nodes(), 1)
		clk, err := ResilientBackend{Plan: plan}.Run(prog, got)
		if err != nil {
			t.Fatal(err)
		}
		if clk != prog.Clock() {
			t.Errorf("quiet clock %+v != program clock %+v", clk, prog.Clock())
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("quiet run diverged from plain backend at node %d", i)
			}
		}
	}
}

// Under drop, stall and corruption rates at the acceptance ceiling
// (≤5%), the resilient backend heals everything: snake-sorted output,
// key multiset intact, recovery visibly charged.
func TestResilientHealsAcrossFamilies(t *testing.T) {
	cfgs := []struct {
		g *graph.Graph
		r int
	}{
		{graph.Path(4), 2},
		{graph.Cycle(5), 2},
		{graph.K2(), 4},
		{graph.CompleteBinaryTree(3), 2}, // routed exchanges in the base program
		{graph.Star(4), 2},
	}
	for _, c := range cfgs {
		net := product.MustNew(c.g, c.r)
		prog, err := Compile(net, nil)
		if err != nil {
			t.Fatal(err)
		}
		keys := nodeKeys(net.Nodes(), 7)
		want := sortedCopy(keys)
		plan := faults.NewPlan(faults.Config{Seed: 13, DropRate: 0.05, StallRate: 0.03, CorruptRate: 0.05})
		clk, err := ResilientBackend{Plan: plan}.Run(prog, keys)
		if err != nil {
			t.Fatalf("%s: %v (counters %+v)", net.Name(), err, plan.Counters())
		}
		if !snakeSorted(net, keys) {
			t.Fatalf("%s: output not snake-sorted", net.Name())
		}
		got := sortedCopy(keys)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: key multiset changed", net.Name())
			}
		}
		c := clk.Faults
		if c.Injected == 0 {
			t.Errorf("%s: nothing injected at 5%% rates", net.Name())
		}
		if c.Corrupted > 0 && c.Detected == 0 {
			t.Errorf("%s: corruption injected but never detected: %+v", net.Name(), c)
		}
		if clk.RecoveryRounds == 0 {
			t.Errorf("%s: recovery charged no rounds despite %d injections", net.Name(), c.Injected)
		}
		if clk.Rounds != prog.Rounds()+clk.RecoveryRounds {
			t.Errorf("%s: rounds %d != base %d + recovery %d", net.Name(), clk.Rounds, prog.Rounds(), clk.RecoveryRounds)
		}
	}
}

// Replays with the same fault seed are reproducible: byte-identical
// keys and identical clocks (counters included).
func TestResilientDeterministic(t *testing.T) {
	net := product.MustNew(graph.Cycle(4), 3)
	prog, err := Compile(net, nil)
	if err != nil {
		t.Fatal(err)
	}
	run := func() ([]simnet.Key, simnet.Clock) {
		keys := nodeKeys(net.Nodes(), 3)
		plan := faults.NewPlan(faults.Config{Seed: 99, DropRate: 0.05, StallRate: 0.02, CorruptRate: 0.08})
		clk, err := ResilientBackend{Plan: plan, CheckpointEvery: 8}.Run(prog, keys)
		if err != nil {
			t.Fatal(err)
		}
		return keys, clk
	}
	k1, c1 := run()
	k2, c2 := run()
	if c1 != c2 {
		t.Fatalf("same seed, clocks diverged:\n%+v\n%+v", c1, c2)
	}
	for i := range k1 {
		if k1[i] != k2[i] {
			t.Fatalf("same seed, keys diverged at node %d", i)
		}
	}
}

// A dead link degrades the program gracefully: the affected exchanges
// are re-priced as routed detours (slower, counted) and the sort still
// completes correctly.
func TestResilientDeadLinkDegrades(t *testing.T) {
	net := product.MustNew(graph.Cycle(5), 2)
	prog, err := Compile(net, nil)
	if err != nil {
		t.Fatal(err)
	}
	keys := nodeKeys(net.Nodes(), 5)
	want := sortedCopy(keys)
	plan := faults.NewPlan(faults.Config{
		Seed:      3,
		DeadLinks: []faults.FactorEdge{{Dim: 1, U: 0, V: 1}},
	})
	clk, err := ResilientBackend{Plan: plan}.Run(prog, keys)
	if err != nil {
		t.Fatal(err)
	}
	if !snakeSorted(net, keys) {
		t.Fatal("degraded run not snake-sorted")
	}
	got := sortedCopy(keys)
	for i := range want {
		if got[i] != want[i] {
			t.Fatal("degraded run changed the key multiset")
		}
	}
	if clk.Faults.DeadLinks != 1 {
		t.Errorf("dead links counted %d, want 1", clk.Faults.DeadLinks)
	}
	if clk.Faults.Rerouted == 0 {
		t.Error("no pair occurrence counted as rerouted")
	}
	if clk.Rounds <= prog.Rounds() {
		t.Errorf("degraded rounds %d not above fault-free %d", clk.Rounds, prog.Rounds())
	}
	if clk.RoutedPhases <= prog.Clock().RoutedPhases {
		t.Errorf("degraded routed phases %d not above fault-free %d", clk.RoutedPhases, prog.Clock().RoutedPhases)
	}
	// A forced dead link that would disconnect the factor is refused.
	bad := faults.NewPlan(faults.Config{DeadLinks: []faults.FactorEdge{{Dim: 1, U: 0, V: 2}}})
	if _, err := (ResilientBackend{Plan: bad}.Run(prog, nodeKeys(net.Nodes(), 5))); err == nil {
		t.Error("non-edge dead link accepted")
	}
}

// At a saturating corruption rate the per-window budget runs out on
// some single-phase window: the run reports ErrUnrecoverable (and
// counts it) rather than silently returning bad data.
func TestResilientReportsUnrecoverable(t *testing.T) {
	net := product.MustNew(graph.Path(3), 2)
	prog, err := Compile(net, nil)
	if err != nil {
		t.Fatal(err)
	}
	keys := nodeKeys(net.Nodes(), 2)
	plan := faults.NewPlan(faults.Config{Seed: 1, CorruptRate: 1})
	clk, err := ResilientBackend{Plan: plan, MaxRetries: 1}.Run(prog, keys)
	if !errors.Is(err, ErrUnrecoverable) {
		t.Fatalf("err = %v, want ErrUnrecoverable", err)
	}
	if clk.Faults.Unrecoverable == 0 {
		t.Errorf("unrecoverable not counted: %+v", clk.Faults)
	}
	if clk.Faults.Detected == 0 {
		t.Errorf("corruption never detected: %+v", clk.Faults)
	}
}
