package schedule

import (
	"testing"

	"productsort/internal/graph"
	"productsort/internal/product"
	"productsort/internal/simnet"
)

// BenchmarkScheduleWarmVsCold contrasts the two ends of the compile/
// execute split on one topology: "cold" pays schedule construction plus
// one replay (the pre-refactor per-Sort cost), "warm" replays the
// cached program. cmd/bench -schedule records the same contrast as
// wall-clock into BENCH_schedule.json.
func BenchmarkScheduleWarmVsCold(b *testing.B) {
	net := product.MustNew(graph.Path(8), 3)
	keys := randomKeys(net.Nodes(), 1)
	scratch := make([]simnet.Key, len(keys))

	b.Run("cold-compile+sort", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ResetCache()
			prog, err := Compile(net, nil)
			if err != nil {
				b.Fatal(err)
			}
			copy(scratch, keys)
			if _, err := (ExecBackend{}).Run(prog, scratch); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("warm-replay", func(b *testing.B) {
		ResetCache()
		prog, err := Compile(net, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			copy(scratch, keys)
			if _, err := (ExecBackend{}).Run(prog, scratch); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCompile measures pure schedule construction for a mid-size
// network (what the cache saves per warm sort).
func BenchmarkCompile(b *testing.B) {
	net := product.MustNew(graph.Path(8), 3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ResetCache()
		if _, err := Compile(net, nil); err != nil {
			b.Fatal(err)
		}
	}
}
