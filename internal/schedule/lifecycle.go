// Program lifecycle: retire and free hooks for bounded caches.
//
// The process-wide compile cache pins its programs for the life of the
// process, so it never needs a lifecycle. Bounded caches — the serving
// layer's epoch-managed plan store — do: evicting an entry must
// eventually release the program's lowered comparator stream and
// permutation tables, but only once every concurrent reader has moved
// past it. The store expresses that protocol through two one-way
// transitions recorded here:
//
//	live --Retire()--> retired --Free()--> freed
//
// Retire withdraws the program from service (the owner has unlinked it
// from every lookup structure; in-flight replays may still hold it).
// Free, called by the owner after a grace period proves no reader can
// still hold the program, releases the derived tables and runs the free
// hook exactly once. Replaying a freed program is a caller bug; the
// batch replay entry points reject it with ErrProgramFreed instead of
// silently sorting nothing.

package schedule

import "errors"

// ErrProgramFreed rejects replay of a program whose owner has already
// freed it (see Program.Free). Observing this error means the caller
// kept a program past its cache's grace period — a lifecycle bug, not
// a data error.
var ErrProgramFreed = errors.New("schedule: program has been freed")

// Program lifecycle states, held in Program.state.
const (
	progLive uint32 = iota
	progRetired
	progFreed
)

// Retire marks the program as withdrawn from service and reports
// whether this call performed the transition (false if it was already
// retired or freed). The caller must have unlinked the program from
// every lookup structure first: Retire is the fence between "new
// readers can find it" and "only in-flight readers hold it".
func (p *Program) Retire() bool {
	return p.state.CompareAndSwap(progLive, progRetired)
}

// Retired reports whether the program has been retired (or freed).
func (p *Program) Retired() bool { return p.state.Load() >= progRetired }

// Free releases the program's derived tables and runs the free hook,
// exactly once; it reports whether this call performed the transition.
// The caller must guarantee no reader still holds the program — the
// serving store's epoch domain waits out a grace period before calling
// it. After Free, replay entry points fail with ErrProgramFreed.
func (p *Program) Free() bool {
	for {
		s := p.state.Load()
		if s == progFreed {
			return false
		}
		if p.state.CompareAndSwap(s, progFreed) {
			if fn := p.freeHook.Load(); fn != nil {
				(*fn)()
			}
			// Release the memory a cached program actually costs: the
			// lowered comparator stream, the snake permutation, and the
			// op stream. No reader exists by contract, so plain writes.
			p.lowered = nil
			p.perm = nil
			p.ops = nil
			return true
		}
	}
}

// Freed reports whether the program has been freed.
func (p *Program) Freed() bool { return p.state.Load() == progFreed }

// SetFreeHook registers fn to run inside the (single) successful Free
// transition — a test seam for pinning free-exactly-once, and a place
// for owners to count reclamations. Pass nil to clear.
func (p *Program) SetFreeHook(fn func()) {
	if fn == nil {
		p.freeHook.Store(nil)
		return
	}
	p.freeHook.Store(&fn)
}
