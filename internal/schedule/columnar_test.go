package schedule

import (
	"runtime"
	"runtime/debug"
	"testing"

	"productsort/internal/graph"
	"productsort/internal/product"
	"productsort/internal/simnet"
)

// TestLoweredComparatorsEquivalence: replaying the lowered snake-space
// comparator stream over a snake-indexed array must equal replaying the
// program's ops over a node-indexed array — they are the same
// computation conjugated by the snake permutation.
func TestLoweredComparatorsEquivalence(t *testing.T) {
	for _, build := range []func() *product.Network{
		func() *product.Network { return product.MustNew(graph.Path(4), 2) },
		func() *product.Network { return product.MustNew(graph.K2(), 3) },
		func() *product.Network { return product.MustNew(graph.CompleteBinaryTree(2), 2) },
	} {
		net := build()
		prog, err := Compile(net, nil)
		if err != nil {
			t.Fatal(err)
		}
		perm := prog.SnakePerm()
		comps := prog.LoweredComparators()
		if len(comps) != prog.Size() {
			t.Fatalf("%s: %d lowered comparators, program size %d", net.Name(), len(comps), prog.Size())
		}
		keys := mixedBatch([]int{net.Nodes()}, 11)[0]
		// Node-space replay of a snake-order item.
		byNode := make([]simnet.Key, len(keys))
		for pos, k := range keys {
			byNode[perm[pos]] = k
		}
		if _, err := (ExecBackend{}).Run(prog, byNode); err != nil {
			t.Fatal(err)
		}
		// Snake-space replay of the lowered stream, width 1.
		snake := make([]simnet.Key, len(keys))
		copy(snake, keys)
		applyComparators(snake, comps, 1)
		for pos := range snake {
			if snake[pos] != byNode[perm[pos]] {
				t.Fatalf("%s: lowered replay diverges at snake pos %d", net.Name(), pos)
			}
		}
	}
}

// TestRunBatchColumnarMixedSizes checks the columnar replay against the
// reference sort for items spanning every admissible length,
// sequentially and tiled across workers, with and without a shared
// buffer — the columnar mirror of TestRunBatchSnakeMixedSizes.
func TestRunBatchColumnarMixedSizes(t *testing.T) {
	net := product.MustNew(graph.Path(4), 2) // 16 nodes
	prog, err := Compile(net, nil)
	if err != nil {
		t.Fatal(err)
	}
	sizes := []int{1, 5, 16, 9, 16, 2, 13, 7, 16, 3, 11, 1, 16, 8, 4, 15, 6, 16, 10, 12}
	for _, workers := range []int{1, 3, 0} {
		for _, buf := range []*ColumnBuffer{nil, NewColumnBuffer()} {
			batch := mixedBatch(sizes, int64(workers)+13)
			want := make([][]simnet.Key, len(batch))
			for i, keys := range batch {
				want[i] = sortedCopy(keys)
			}
			if err := RunBatchColumnar(prog, batch, workers, buf); err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			for i, keys := range batch {
				if len(keys) != sizes[i] {
					t.Fatalf("workers=%d: item %d resized to %d", workers, i, len(keys))
				}
				for j := range keys {
					if keys[j] != want[i][j] {
						t.Fatalf("workers=%d item %d: got %v want %v", workers, i, keys, want[i])
					}
				}
			}
		}
	}
}

// TestRunBatchColumnarMatchesSnake: both batch paths are replays of the
// same program, so on identical input batches they must produce
// identical output — not merely both sorted.
func TestRunBatchColumnarMatchesSnake(t *testing.T) {
	net := product.MustNew(graph.K2(), 4) // 16 nodes
	prog, err := Compile(net, nil)
	if err != nil {
		t.Fatal(err)
	}
	sizes := []int{16, 1, 9, 16, 3, 12, 16, 7}
	rows := mixedBatch(sizes, 29)
	cols := mixedBatch(sizes, 29)
	if err := RunBatchSnake(prog, rows, 1, nil); err != nil {
		t.Fatal(err)
	}
	if err := RunBatchColumnar(prog, cols, 1, nil); err != nil {
		t.Fatal(err)
	}
	for i := range rows {
		for j := range rows[i] {
			if rows[i][j] != cols[i][j] {
				t.Fatalf("item %d pos %d: snake %d, columnar %d", i, j, rows[i][j], cols[i][j])
			}
		}
	}
}

// TestRunBatchColumnarRejectsBadSizes: same admission contract as
// RunBatchSnake — empty and oversized items are errors, an empty batch
// is a no-op.
func TestRunBatchColumnarRejectsBadSizes(t *testing.T) {
	net := product.MustNew(graph.K2(), 3) // 8 nodes
	prog, err := Compile(net, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := RunBatchColumnar(prog, [][]simnet.Key{make([]simnet.Key, 9)}, 1, nil); err == nil {
		t.Fatal("oversized item accepted")
	}
	if err := RunBatchColumnar(prog, [][]simnet.Key{{}}, 1, nil); err == nil {
		t.Fatal("empty item accepted")
	}
	if err := RunBatchColumnar(prog, nil, 1, nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
}

// TestColumnBatchLayout pins the slab layout the kernels assume:
// column pos is slab[pos*width:(pos+1)*width], Column returns a live
// view of it, and LoadSnake puts set s's position pos at index s of
// column pos (Sentinel past the set's end).
func TestColumnBatchLayout(t *testing.T) {
	var cb ColumnBatch
	cb.Reset(3, 2)
	if cb.Width() != 2 {
		t.Fatalf("Width() = %d, want 2", cb.Width())
	}
	cb.LoadSnake([][]simnet.Key{{10, 11, 12}, {20}})
	want := [][]simnet.Key{{10, 20}, {11, Sentinel}, {12, Sentinel}}
	for pos, col := range want {
		got := cb.Column(pos)
		if len(got) != 2 || got[0] != col[0] || got[1] != col[1] {
			t.Fatalf("Column(%d) = %v, want %v", pos, got, col)
		}
	}
	cb.Column(1)[1] = 99 // live view: writes land in the slab
	out := [][]simnet.Key{make([]simnet.Key, 3), make([]simnet.Key, 2)}
	cb.StoreSnake(out)
	if out[1][1] != 99 {
		t.Fatalf("Column write not visible through StoreSnake: %v", out)
	}
}

// TestRunBatchColumnarZeroAlloc pins the warm columnar path at zero
// allocations per item, in both shapes the serving layer exercises: a
// single warm flush, and repeated flushes reusing the pooled column
// slabs (including a narrower flush that must recycle the wider slab).
func TestRunBatchColumnarZeroAlloc(t *testing.T) {
	net := product.MustNew(graph.K2(), 4) // 16 nodes
	prog, err := Compile(net, nil)
	if err != nil {
		t.Fatal(err)
	}
	buf := NewColumnBuffer()
	const items = 8
	batch := mixedBatch([]int{16, 12, 16, 9, 16, 16, 5, 16}[:items], 3)
	narrow := mixedBatch([]int{16, 7, 16}, 5)
	// Warm the pool, the snake permutation and the lowered stream.
	if err := RunBatchColumnar(prog, batch, 1, buf); err != nil {
		t.Fatal(err)
	}
	// A GC landing mid-measurement may clear the slab pool and charge a
	// refill to one unlucky iteration; park the collector so the numbers
	// measure reuse, not collection timing (the stdlib sync.Pool tests
	// do the same).
	defer debug.SetGCPercent(debug.SetGCPercent(-1))

	allocs := testing.AllocsPerRun(50, func() {
		if err := RunBatchColumnar(prog, batch, 1, buf); err != nil {
			t.Fatal(err)
		}
	})
	if perItem := allocs / items; perItem > 0.25 {
		t.Fatalf("warm single flush allocates %.2f objects/item (%.1f/call); want ~0", perItem, allocs)
	}

	if raceEnabled {
		// Race mode makes sync.Pool drop Puts at random, so strict
		// reuse cannot hold; the single-flush pin above (with its
		// refill slack) still runs.
		return
	}
	allocs = testing.AllocsPerRun(50, func() {
		for rep := 0; rep < 3; rep++ {
			if err := RunBatchColumnar(prog, batch, 1, buf); err != nil {
				t.Fatal(err)
			}
			if err := RunBatchColumnar(prog, narrow, 1, buf); err != nil {
				t.Fatal(err)
			}
		}
	})
	if perFlush := allocs / 6; perFlush > 0.25 {
		t.Fatalf("repeated flushes allocate %.2f objects/flush (%.1f/run); want ~0", perFlush, allocs)
	}
}

// TestRunBatchColumnarWorkersClamp: the default worker count never
// exceeds GOMAXPROCS and small batches stay inline (one tile), so the
// fan-out convention holds on every box.
func TestRunBatchColumnarWorkersClamp(t *testing.T) {
	net := product.MustNew(graph.K2(), 3)
	prog, err := Compile(net, nil)
	if err != nil {
		t.Fatal(err)
	}
	// A batch smaller than one tile must sort correctly with any
	// requested fan-out (the clamp sends it down the inline path).
	batch := mixedBatch([]int{8, 3}, 17)
	want := [][]simnet.Key{sortedCopy(batch[0]), sortedCopy(batch[1])}
	if err := RunBatchColumnar(prog, batch, 4*runtime.GOMAXPROCS(0), nil); err != nil {
		t.Fatal(err)
	}
	for i := range batch {
		for j := range batch[i] {
			if batch[i][j] != want[i][j] {
				t.Fatalf("item %d: got %v want %v", i, batch[i], want[i])
			}
		}
	}
}

// BenchmarkBatchRowsVsColumns is the kernel head-to-head behind the
// BENCH_schedule.json rows-vs-columns columns: the same 32-set batch on
// a 64-node network through the row-at-a-time snake replay and the
// columnar kernel.
func BenchmarkBatchRowsVsColumns(b *testing.B) {
	net := product.MustNew(graph.Path(8), 2) // 64 nodes
	prog, err := Compile(net, nil)
	if err != nil {
		b.Fatal(err)
	}
	sizes := make([]int, 32)
	for i := range sizes {
		sizes[i] = 64
	}

	b.Run("rows", func(b *testing.B) {
		buf := NewBatchBuffer()
		batch := mixedBatch(sizes, 1)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := RunBatchSnake(prog, batch, 1, buf); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("columns", func(b *testing.B) {
		buf := NewColumnBuffer()
		batch := mixedBatch(sizes, 1)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := RunBatchColumnar(prog, batch, 1, buf); err != nil {
				b.Fatal(err)
			}
		}
	})
}
