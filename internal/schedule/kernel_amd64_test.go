package schedule

import (
	"math"
	"testing"

	"productsort/internal/simnet"
)

// TestKernelAVX2MatchesScalar pins the assembly kernel bit-for-bit
// against the portable scalar loop across widths that exercise the
// vector body alone, vector+tail mixes, and tail-only runs — with
// negative keys, sentinels and duplicates in the mix, since VPCMPGTQ
// must behave exactly like the signed > of the Go loop.
func TestKernelAVX2MatchesScalar(t *testing.T) {
	if !haveAVX2 {
		t.Skip("no AVX2 on this host")
	}
	comps := []Comparator{{0, 1}, {2, 3}, {1, 2}, {0, 3}, {0, 1}, {2, 3}, {1, 2}}
	const nodes = 4
	x := uint64(99)
	for _, width := range []int{1, 2, 3, 4, 5, 7, 8, 9, 16, 33, 64} {
		ref := make([]simnet.Key, nodes*width)
		for i := range ref {
			x = x*2862933555777941757 + 3037000493
			switch x % 5 {
			case 0:
				ref[i] = Sentinel
			case 1:
				ref[i] = simnet.Key(-(x % 1000))
			case 2:
				ref[i] = math.MinInt64
			default:
				ref[i] = simnet.Key(x % 1000)
			}
		}
		got := append([]simnet.Key(nil), ref...)
		applyComparators(ref, comps, width)
		applyComparatorsAVX2(&got[0], &comps[0], len(comps), width)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("width %d: slab[%d] = %d, scalar %d", width, i, got[i], ref[i])
			}
		}
	}
}

// TestDetectAVX2Consistent: the probe must agree with itself (it is
// read once into a package variable; a flapping probe would mean the
// CPUID plumbing clobbers state).
func TestDetectAVX2Consistent(t *testing.T) {
	for i := 0; i < 3; i++ {
		if detectAVX2() != haveAVX2 {
			t.Fatal("detectAVX2 flapped")
		}
	}
}
