// Columnar batch replay: the struct-of-arrays dual of RunBatchSnake.
//
// RunBatchSnake walks the program once per key set; RunBatchColumnar
// walks it once per *batch*. The batch is transposed into a ColumnBatch
// — one contiguous column per snake position, holding that position's
// key from every set — and the program's pre-lowered comparator stream
// (Program.LoweredComparators) runs each compare-exchange as a tight
// branchless min/max loop over two columns (kernel.go). Because every
// set replays the identical oblivious schedule, interleaving them this
// way only permutes the order of data-independent comparators across
// independent sets: each set still sees its own comparators in program
// order, so the transform commutes with sentinel padding and with the
// 0-1 certification argument (THEORY.md §13).

package schedule

import (
	"fmt"
	"runtime"
	"sync"

	"productsort/internal/simnet"
)

// ColumnBatch is the struct-of-arrays image of one batch: a single slab
// of nodes × width keys in which column pos — slab[pos*width :
// (pos+1)*width] — holds snake position pos of every set. Sets shorter
// than the network occupy a prefix of the columns they reach and
// Sentinel elsewhere, exactly mirroring RunBatchSnake's padding.
type ColumnBatch struct {
	slab  []simnet.Key
	nodes int
	width int
}

// Reset shapes the batch for nodes snake positions and width sets,
// reusing the slab when it is large enough.
func (cb *ColumnBatch) Reset(nodes, width int) {
	n := nodes * width
	if cap(cb.slab) < n {
		cb.slab = make([]simnet.Key, n)
	}
	cb.slab = cb.slab[:n]
	cb.nodes = nodes
	cb.width = width
}

// Width returns the number of sets the batch holds.
func (cb *ColumnBatch) Width() int { return cb.width }

// Column returns snake position pos across all sets — read/write.
func (cb *ColumnBatch) Column(pos int) []simnet.Key {
	return cb.slab[pos*cb.width : (pos+1)*cb.width]
}

// LoadSnake transposes the snake-order sets into columns and pads every
// set's unreached positions with Sentinel. Set lengths must already be
// validated (0 < len ≤ nodes) and len(sets) must equal the width.
func (cb *ColumnBatch) LoadSnake(sets [][]simnet.Key) {
	w := cb.width
	for s, keys := range sets {
		for pos, k := range keys {
			cb.slab[pos*w+s] = k
		}
		for pos := len(keys); pos < cb.nodes; pos++ {
			cb.slab[pos*w+s] = Sentinel
		}
	}
}

// StoreSnake transposes each set's own snake prefix back out of the
// columns, dropping the sentinels that floated to the tail positions.
func (cb *ColumnBatch) StoreSnake(sets [][]simnet.Key) {
	w := cb.width
	for s, keys := range sets {
		for pos := range keys {
			keys[pos] = cb.slab[pos*w+s]
		}
	}
}

// Run replays the program's lowered comparator stream over the columns
// through the fastest kernel the host supports (AVX2 on capable amd64,
// the portable scalar loop elsewhere — see kernel.go/kernel_amd64.go).
func (cb *ColumnBatch) Run(prog *Program) {
	runComparators(cb.slab, prog.LoweredComparators(), cb.width)
}

// ColumnBuffer recycles ColumnBatch slabs across flushes, so a steady
// stream of batches through one topology allocates nothing per item
// (pinned by TestRunBatchColumnarZeroAlloc). The zero value is ready;
// one buffer may serve any number of concurrent RunBatchColumnar calls.
// Mixed shapes recycle too: a slab is reused whenever its capacity
// covers the requested nodes × width, and regrown otherwise.
type ColumnBuffer struct {
	pool sync.Pool // *ColumnBatch
}

// NewColumnBuffer returns an empty buffer.
func NewColumnBuffer() *ColumnBuffer { return &ColumnBuffer{} }

// get returns a pooled ColumnBatch shaped nodes × width.
func (bb *ColumnBuffer) get(nodes, width int) *ColumnBatch {
	cb, _ := bb.pool.Get().(*ColumnBatch)
	if cb == nil {
		cb = &ColumnBatch{}
	}
	cb.Reset(nodes, width)
	return cb
}

// put returns a ColumnBatch to the pool.
func (bb *ColumnBuffer) put(cb *ColumnBatch) { bb.pool.Put(cb) }

// minColumnarTile is the smallest per-worker set count worth the
// goroutine handoff: below it the transpose + kernel run faster inline
// than the fan-out costs.
const minColumnarTile = 8

// RunBatchColumnar sorts every key set of batch through one compiled
// program — the same contract as RunBatchSnake (snake order, in place,
// items of any length 1..nodes padded with Sentinel in scratch, never
// in the caller's slice) — but columnar: the batch is transposed into
// per-position columns and the program is walked once, each comparator
// sweeping all sets in a branchless min/max loop. workers < 1 selects
// GOMAXPROCS capped so every worker keeps at least minColumnarTile
// sets; workers > 1 split the batch into contiguous tiles, each with
// its own pooled slab (columns stay dense per tile, and tiles never
// share cache lines). buf (nil for a call-private one) recycles slabs
// across calls; the warm single-worker path allocates nothing per item.
func RunBatchColumnar(prog *Program, batch [][]simnet.Key, workers int, buf *ColumnBuffer) error {
	if prog.Freed() {
		// A freed program's lowered stream is gone; replaying it would
		// silently leave every set unsorted. Fail loudly instead — this
		// is the backstop behind the serving store's epoch grace period.
		return ErrProgramFreed
	}
	nodes := prog.net.Nodes()
	for i, keys := range batch {
		if len(keys) == 0 || len(keys) > nodes {
			return fmt.Errorf("schedule: batch[%d] has %d keys for %d nodes", i, len(keys), nodes)
		}
	}
	if len(batch) == 0 {
		return nil
	}
	if buf == nil {
		buf = NewColumnBuffer()
	}
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if mw := (len(batch) + minColumnarTile - 1) / minColumnarTile; workers > mw {
		workers = mw
	}
	if workers <= 1 {
		columnarTile(prog, batch, buf)
		return nil
	}
	// Contiguous tiles of near-equal width, one goroutine each. The
	// buffer rides in as a goroutine argument, not a closure capture: a
	// captured-and-reassigned parameter would be moved to the heap at
	// function entry, costing the serial path one allocation per call.
	var wg sync.WaitGroup
	per := (len(batch) + workers - 1) / workers
	for lo := 0; lo < len(batch); lo += per {
		hi := lo + per
		if hi > len(batch) {
			hi = len(batch)
		}
		wg.Add(1)
		go func(tile [][]simnet.Key, pool *ColumnBuffer) {
			defer wg.Done()
			columnarTile(prog, tile, pool)
		}(batch[lo:hi], buf)
	}
	wg.Wait()
	return nil
}

// columnarTile runs one contiguous slice of the batch through a pooled
// slab: transpose in, replay the comparator stream, transpose out.
func columnarTile(prog *Program, sets [][]simnet.Key, buf *ColumnBuffer) {
	cb := buf.get(prog.net.Nodes(), len(sets))
	cb.LoadSnake(sets)
	cb.Run(prog)
	cb.StoreSnake(sets)
	buf.put(cb)
}
