package schedule

import (
	"math"
	"testing"

	"productsort/internal/graph"
	"productsort/internal/product"
	"productsort/internal/simnet"
)

// FuzzColumnarEquivalence proves RunBatchColumnar ≡ the scalar
// ExecBackend replay on arbitrary batches: the fuzzer picks a network,
// a mix of item sizes (1..nodes, empty bytes rejected by admission are
// exercised too via the fixed corpus) and a key stream that includes
// sentinels and negatives, then both paths replay the same compiled
// program and must agree byte-for-byte. This is the machine-checked
// form of the THEORY.md §13 commutation argument: the column transform
// only reorders data-independent comparators across independent sets.
//
// Wired into `make fuzz`.
func FuzzColumnarEquivalence(f *testing.F) {
	f.Add(uint8(0), int64(1), []byte{16, 1, 9, 3})   // mixed sizes
	f.Add(uint8(1), int64(2), []byte{1, 1, 1})       // all size-1 items
	f.Add(uint8(0), int64(3), []byte{0xFF, 0xFF})    // all-sentinel items
	f.Add(uint8(2), int64(4), []byte{8, 0x88, 4, 2}) // sentinel mix
	f.Add(uint8(1), int64(5), []byte{12, 7, 12, 12,  // wide batch: vector body
		5, 12, 1, 12, 9, 12, 3, 12})
	f.Fuzz(func(t *testing.T, netPick uint8, seed int64, shape []byte) {
		var net *product.Network
		switch netPick % 3 {
		case 0:
			net = product.MustNew(graph.Path(4), 2) // 16 nodes, Hamiltonian
		case 1:
			net = product.MustNew(graph.K2(), 3) // 8 nodes, hypercube
		default:
			net = product.MustNew(graph.CompleteBinaryTree(2), 2) // 9 nodes, routed
		}
		prog, err := Compile(net, nil)
		if err != nil {
			t.Fatal(err)
		}
		nodes := net.Nodes()
		if len(shape) > 64 {
			shape = shape[:64]
		}
		x := uint64(seed)*2862933555777941757 + 3037000493
		batch := make([][]simnet.Key, 0, len(shape))
		for _, b := range shape {
			n := int(b&0x3F)%nodes + 1 // size in 1..nodes
			allSentinel := b&0x80 != 0 // high bit: the padding edge case
			keys := make([]simnet.Key, n)
			for j := range keys {
				x = x*2862933555777941757 + 3037000493
				switch {
				case allSentinel:
					keys[j] = Sentinel
				case x%11 == 0:
					keys[j] = Sentinel
				case x%11 == 1:
					keys[j] = simnet.Key(math.MinInt64)
				case x%11 == 2:
					keys[j] = -simnet.Key(x % 997)
				default:
					keys[j] = simnet.Key(x % 997)
				}
			}
			batch = append(batch, keys)
		}
		if len(batch) == 0 {
			return
		}

		// Oracle: scalar ExecBackend replay, one item at a time, through
		// its own transpose + sentinel padding.
		perm := prog.SnakePerm()
		want := make([][]simnet.Key, len(batch))
		scratch := make([]simnet.Key, nodes)
		for i, keys := range batch {
			for pos, k := range keys {
				scratch[perm[pos]] = k
			}
			for pos := len(keys); pos < nodes; pos++ {
				scratch[perm[pos]] = Sentinel
			}
			if _, err := (ExecBackend{}).Run(prog, scratch); err != nil {
				t.Fatal(err)
			}
			out := make([]simnet.Key, len(keys))
			for pos := range out {
				out[pos] = scratch[perm[pos]]
			}
			want[i] = out
		}

		// Columnar replay, single tile and tiled across workers.
		for _, workers := range []int{1, 2} {
			got := make([][]simnet.Key, len(batch))
			for i, keys := range batch {
				got[i] = append([]simnet.Key(nil), keys...)
			}
			if err := RunBatchColumnar(prog, got, workers, nil); err != nil {
				t.Fatal(err)
			}
			for i := range got {
				for j := range got[i] {
					if got[i][j] != want[i][j] {
						t.Fatalf("workers=%d item %d pos %d: columnar %d, scalar %d",
							workers, i, j, got[i][j], want[i][j])
					}
				}
			}
		}
	})
}
