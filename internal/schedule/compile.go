// Compilation entry points and the process-wide program cache.

package schedule

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"productsort/internal/core"
	"productsort/internal/graph"
	"productsort/internal/product"
	"productsort/internal/sort2d"
)

// Signature returns the canonical cache key of a full-sort program:
// the S_2 engine name plus one structural signature per dimension
// (factor size and labeled edge list — the labeling is part of the
// signature because it decides which compare-exchanges are single-hop).
// Structurally identical networks share a signature regardless of how
// or where their factor graphs were constructed.
func Signature(net *product.Network, engineName string) string {
	return signature(net, engineName, "sort")
}

func signature(net *product.Network, engineName, mode string) string {
	var sb strings.Builder
	sb.WriteString(mode)
	sb.WriteByte('|')
	sb.WriteString(engineName)
	// Factors repeat (homogeneous networks reuse one *graph.Graph);
	// memoize the per-graph signature by pointer within this call.
	memo := make(map[*graph.Graph]string, net.R())
	for dim := 1; dim <= net.R(); dim++ {
		g := net.FactorAt(dim)
		s, ok := memo[g]
		if !ok {
			s = graphSignature(g)
			memo[g] = s
		}
		sb.WriteByte('|')
		sb.WriteString(s)
	}
	return sb.String()
}

// graphSignature encodes a factor graph's structure-with-labeling: node
// count followed by the sorted edge list, varint-packed.
func graphSignature(g *graph.Graph) string {
	edges := g.Edges()
	norm := make([][2]int, len(edges))
	for i, e := range edges {
		a, b := e[0], e[1]
		if a > b {
			a, b = b, a
		}
		norm[i] = [2]int{a, b}
	}
	sort.Slice(norm, func(i, j int) bool {
		if norm[i][0] != norm[j][0] {
			return norm[i][0] < norm[j][0]
		}
		return norm[i][1] < norm[j][1]
	})
	buf := make([]byte, 0, 2+4*len(norm))
	buf = binary.AppendUvarint(buf, uint64(g.N()))
	for _, e := range norm {
		buf = binary.AppendUvarint(buf, uint64(e[0]))
		buf = binary.AppendUvarint(buf, uint64(e[1]))
	}
	return string(buf)
}

// cacheEntry is a once-guarded cache slot: concurrent compilations of
// the same signature wait for a single build.
type cacheEntry struct {
	once sync.Once
	prog *Program
	err  error
}

var (
	cache        sync.Map // signature -> *cacheEntry
	statHits     atomic.Int64
	statMisses   atomic.Int64
	statCompiles atomic.Int64
)

// CacheStats reports the cumulative behaviour of the program cache.
type CacheStats struct {
	// Hits counts Compile calls answered by an existing cache entry.
	Hits int64
	// Misses counts Compile calls that created a new cache entry.
	Misses int64
	// Compiles counts actual schedule constructions performed — the
	// number every warm-path guarantee is stated in terms of: repeated
	// sorts on one topology leave it unchanged.
	Compiles int64
}

// Stats returns a snapshot of the cache counters.
func Stats() CacheStats {
	return CacheStats{
		Hits:     statHits.Load(),
		Misses:   statMisses.Load(),
		Compiles: statCompiles.Load(),
	}
}

// ResetCache drops every cached program and zeroes the counters (used
// by tests and cold-start benchmarks).
func ResetCache() {
	cache.Range(func(k, _ any) bool {
		cache.Delete(k)
		return true
	})
	statHits.Store(0)
	statMisses.Store(0)
	statCompiles.Store(0)
}

// Compile returns the full-sort phase program for net with the given
// S_2 engine (nil selects sort2d.Auto), building it at most once per
// canonical network signature for the life of the process. The call is
// concurrency-safe; concurrent compilations of the same topology
// coalesce into a single build.
func Compile(net *product.Network, engine sort2d.Engine) (*Program, error) {
	if engine == nil {
		engine = sort2d.Auto{}
	}
	sig := signature(net, engine.Name(), "sort")
	return compile(sig, net, engine, func(s *core.Sorter, b *Builder) {
		s.Sort(b)
	})
}

// CompileUncached builds the full-sort program for net without
// consulting or populating the process-wide cache. It exists for
// callers that manage their own bounded caches — e.g. the serving
// layer's LRU plan cache — where evicting an entry must actually
// release the program's memory instead of leaving it pinned here.
func CompileUncached(net *product.Network, engine sort2d.Engine) (*Program, error) {
	if engine == nil {
		engine = sort2d.Auto{}
	}
	sig := signature(net, engine.Name(), "sort")
	return build(sig, net, engine, func(s *core.Sorter, b *Builder) {
		s.Sort(b)
	})
}

// CompileMerge returns the phase program of one multiway merge along
// dimension k (Lemma 3), cached like Compile.
func CompileMerge(net *product.Network, engine sort2d.Engine, k int) (*Program, error) {
	if engine == nil {
		engine = sort2d.Auto{}
	}
	sig := signature(net, engine.Name(), fmt.Sprintf("merge:%d", k))
	return compile(sig, net, engine, func(s *core.Sorter, b *Builder) {
		s.Merge(b, k)
	})
}

// compile resolves sig through the cache, running drive against a fresh
// Builder on a miss.
func compile(sig string, net *product.Network, engine sort2d.Engine, drive func(*core.Sorter, *Builder)) (*Program, error) {
	v, loaded := cache.Load(sig)
	if !loaded {
		v, loaded = cache.LoadOrStore(sig, &cacheEntry{})
	}
	if loaded {
		statHits.Add(1)
	} else {
		statMisses.Add(1)
	}
	entry := v.(*cacheEntry)
	entry.once.Do(func() {
		entry.prog, entry.err = build(sig, net, engine, drive)
	})
	return entry.prog, entry.err
}

// build performs one schedule construction, converting the algorithm's
// validation panics (e.g. the heterogeneous radix condition) to errors.
func build(sig string, net *product.Network, engine sort2d.Engine, drive func(*core.Sorter, *Builder)) (prog *Program, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("schedule: compile %s: %v", net.Name(), r)
		}
	}()
	statCompiles.Add(1)
	b := NewBuilder(net)
	drive(core.New(engine), b)
	prog = b.Program(engine.Name(), sig)
	// Freshly built programs are validated once, here, so every cached
	// program satisfies the structural invariants (in-range,
	// node-disjoint pairs; balanced S2 brackets) that backends and the
	// 0-1 certifier rely on.
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	return prog, nil
}
