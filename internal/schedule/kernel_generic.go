//go:build !amd64

package schedule

import "productsort/internal/simnet"

// runComparators on non-amd64 ports is the portable BCE-clean scalar
// loop; the columnar layout already buys the cache behaviour, and the
// compiler's conditional-move lowering keeps the loop branchless.
func runComparators(slab []simnet.Key, comps []Comparator, width int) {
	applyComparators(slab, comps, width)
}
