package schedule

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"productsort/internal/core"
	"productsort/internal/graph"
	"productsort/internal/product"
	"productsort/internal/simnet"
	"productsort/internal/sort2d"
)

// families enumerates every factor family in internal/graph at a small
// size, with a dimension count that keeps the property tests fast.
func families() []struct {
	name string
	g    *graph.Graph
	r    int
} {
	return []struct {
		name string
		g    *graph.Graph
		r    int
	}{
		{"path", graph.Path(4), 3},
		{"cycle", graph.Cycle(5), 2},
		{"k2", graph.K2(), 4},
		{"complete", graph.Complete(4), 2},
		{"star", graph.Star(4), 2},
		{"cbtree", graph.CompleteBinaryTree(2), 2},
		{"petersen", graph.Petersen(), 2},
		{"debruijn", graph.DeBruijn(2, 2), 2},
		{"shuffle-exchange", graph.ShuffleExchange(2), 2},
		{"circulant", graph.Circulant(5, 1, 2), 2},
		{"wheel", graph.Wheel(5), 2},
		{"caterpillar", graph.Caterpillar(3, []int{1, 0, 2}), 2},
		{"hypercube-graph", graph.HypercubeGraph(2), 2},
		{"kautz", graph.Kautz(2, 2), 2},
	}
}

func randomKeys(n int, seed int64) []simnet.Key {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]simnet.Key, n)
	for i := range keys {
		keys[i] = simnet.Key(rng.Intn(2 * n))
	}
	return keys
}

// directSort runs the pre-refactor direct path: the algorithm drives a
// live machine, which moves keys and accumulates its clock as phases
// arrive.
func directSort(t *testing.T, net *product.Network, keys []simnet.Key) ([]simnet.Key, simnet.Clock) {
	t.Helper()
	m, err := simnet.New(net, keys)
	if err != nil {
		t.Fatal(err)
	}
	core.New(nil).Sort(m)
	return m.Keys(), m.Clock()
}

// TestReplayEquivalence is the schedule/replay equivalence property:
// for every factor family in internal/graph, compiled-program replay
// produces byte-identical keys and an identical Clock to the direct
// path, across randomized inputs (testing/quick drives the seeds).
func TestReplayEquivalence(t *testing.T) {
	for _, f := range families() {
		f := f
		t.Run(f.name, func(t *testing.T) {
			net, err := product.New(f.g, f.r)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := Compile(net, nil)
			if err != nil {
				t.Fatal(err)
			}
			check := func(seed int64) bool {
				keys := randomKeys(net.Nodes(), seed)
				wantKeys, wantClock := directSort(t, net, keys)
				gotKeys := append([]simnet.Key(nil), keys...)
				gotClock, err := ExecBackend{}.Run(prog, gotKeys)
				if err != nil {
					t.Fatal(err)
				}
				if gotClock != wantClock {
					t.Logf("clock mismatch: got %+v want %+v", gotClock, wantClock)
					return false
				}
				for i := range wantKeys {
					if gotKeys[i] != wantKeys[i] {
						t.Logf("key mismatch at node %d: got %d want %d", i, gotKeys[i], wantKeys[i])
						return false
					}
				}
				return true
			}
			if err := quick.Check(check, &quick.Config{MaxCount: 4}); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestMachineBackendRederivesClock replays compiled programs through a
// live machine, which re-derives every round charge from scratch; the
// result must equal the program's precomputed clock — including on
// non-Hamiltonian factors where phases carry routed costs.
func TestMachineBackendRederivesClock(t *testing.T) {
	for _, f := range families() {
		net, err := product.New(f.g, f.r)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := Compile(net, nil)
		if err != nil {
			t.Fatal(err)
		}
		keys := randomKeys(net.Nodes(), 42)
		clk, err := MachineBackend{}.Run(prog, keys)
		if err != nil {
			t.Fatal(err)
		}
		if clk != prog.Clock() {
			t.Errorf("%s: machine replay clock %+v != program clock %+v", f.name, clk, prog.Clock())
		}
		if !isSorted(net, keys) {
			t.Errorf("%s: machine replay did not sort", f.name)
		}
	}
}

func isSorted(net *product.Network, byNode []simnet.Key) bool {
	var prev simnet.Key
	for pos := 0; pos < net.Nodes(); pos++ {
		k := byNode[net.NodeAtSnake(pos)]
		if pos > 0 && k < prev {
			return false
		}
		prev = k
	}
	return true
}

// TestCompileCachedOnce asserts the warm-path guarantee: after the
// first Compile for a topology, further compiles (including from a
// structurally identical but separately constructed network) perform
// zero schedule construction.
func TestCompileCachedOnce(t *testing.T) {
	ResetCache()
	defer ResetCache()
	net1 := product.MustNew(graph.Path(4), 3)
	p1, err := Compile(net1, nil)
	if err != nil {
		t.Fatal(err)
	}
	compiles := Stats().Compiles
	if compiles != 1 {
		t.Fatalf("first compile: %d constructions, want 1", compiles)
	}
	for i := 0; i < 10; i++ {
		p2, err := Compile(net1, nil)
		if err != nil {
			t.Fatal(err)
		}
		if p2 != p1 {
			t.Fatal("cached compile returned a different program")
		}
	}
	// A separately constructed, structurally identical network must hit
	// the same entry.
	net2 := product.MustNew(graph.Path(4), 3)
	p3, err := Compile(net2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p3 != p1 {
		t.Fatal("structurally identical network missed the cache")
	}
	if got := Stats().Compiles; got != 1 {
		t.Fatalf("after warm compiles: %d constructions, want 1", got)
	}
	if Stats().Hits != 11 {
		t.Errorf("hits = %d, want 11", Stats().Hits)
	}
}

// TestCompileConcurrent hammers the cache from many goroutines; the
// build must happen exactly once and every caller must see the same
// program.
func TestCompileConcurrent(t *testing.T) {
	ResetCache()
	defer ResetCache()
	net := product.MustNew(graph.Cycle(4), 3)
	const n = 16
	progs := make([]*Program, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, err := Compile(net, nil)
			if err != nil {
				t.Error(err)
				return
			}
			progs[i] = p
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if progs[i] != progs[0] {
			t.Fatal("concurrent compiles returned different programs")
		}
	}
	if got := Stats().Compiles; got != 1 {
		t.Fatalf("concurrent compiles performed %d constructions, want 1", got)
	}
}

// TestSignatureDistinguishes checks the cache key separates what must
// be separated: engine, dimension count, factor size, and labeling.
func TestSignatureDistinguishes(t *testing.T) {
	net := product.MustNew(graph.Path(4), 2)
	base := Signature(net, "auto")
	if s := Signature(net, "shearsort"); s == base {
		t.Error("engine name not in signature")
	}
	if s := Signature(product.MustNew(graph.Path(4), 3), "auto"); s == base {
		t.Error("dimension count not in signature")
	}
	if s := Signature(product.MustNew(graph.Path(5), 2), "auto"); s == base {
		t.Error("factor size not in signature")
	}
	// Relabeling a star moves its center: different labeling, different
	// schedule, different signature.
	star := graph.Star(4)
	perm := []int{1, 0, 2, 3}
	relabeled, err := graph.Relabel(star, perm)
	if err != nil {
		t.Fatal(err)
	}
	s1 := Signature(product.MustNew(star, 2), "auto")
	s2 := Signature(product.MustNew(relabeled, 2), "auto")
	if s1 == s2 {
		t.Error("labeling not in signature")
	}
	// Two separately built identical graphs agree.
	if Signature(product.MustNew(graph.Path(4), 2), "auto") != base {
		t.Error("identical networks disagree on signature")
	}
}

// TestCompileMergeMatchesDirect compiles a single multiway merge and
// checks clock equality with the direct merge path.
func TestCompileMergeMatchesDirect(t *testing.T) {
	net := product.MustNew(graph.Path(3), 3)
	prog, err := CompileMerge(net, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	m, err := simnet.New(net, make([]simnet.Key, net.Nodes()))
	if err != nil {
		t.Fatal(err)
	}
	core.New(nil).Merge(m, 3)
	if prog.Clock() != m.Clock() {
		t.Errorf("merge program clock %+v != direct %+v", prog.Clock(), m.Clock())
	}
	if prog.Clock().S2Phases != core.PredictedMergeS2Phases(3) {
		t.Errorf("merge S2 phases = %d, want %d", prog.Clock().S2Phases, core.PredictedMergeS2Phases(3))
	}
}

// TestCompileErrorOnBadRadices: the heterogeneous radix condition
// surfaces as an error, not a panic, and is not poisoned in the cache.
func TestCompileErrorOnBadRadices(t *testing.T) {
	ResetCache()
	defer ResetCache()
	net := product.MustNewHetero([]*graph.Graph{graph.Path(2), graph.Path(2), graph.Path(4)})
	if _, err := Compile(net, nil); err == nil {
		t.Fatal("want error for increasing radices above dimension 1")
	}
	// The same error comes back on retry (cached), still as an error.
	if _, err := Compile(net, nil); err == nil {
		t.Fatal("want cached error on retry")
	}
}

// TestProgramTheorem1Counts spot-checks the precomputed clock against
// Theorem 1's closed forms on a Hamiltonian-labeled network.
func TestProgramTheorem1Counts(t *testing.T) {
	net := product.MustNew(graph.Path(4), 3)
	prog, err := Compile(net, sort2d.Shearsort{})
	if err != nil {
		t.Fatal(err)
	}
	r := net.R()
	if got, want := prog.Clock().S2Phases, core.PredictedS2Phases(r); got != want {
		t.Errorf("S2 phases %d, want %d", got, want)
	}
	if got, want := prog.Clock().SweepPhases, core.PredictedSweeps(r); got != want {
		t.Errorf("sweeps %d, want %d", got, want)
	}
	if got, want := prog.Rounds(), core.PredictedRounds(net, sort2d.Shearsort{}); got != want {
		t.Errorf("rounds %d, want %d", got, want)
	}
}

// TestRunBatch sorts many key sets through one program with a worker
// pool and verifies every set.
func TestRunBatch(t *testing.T) {
	net := product.MustNew(graph.Path(4), 2)
	prog, err := Compile(net, nil)
	if err != nil {
		t.Fatal(err)
	}
	const m = 23
	batch := make([][]simnet.Key, m)
	for i := range batch {
		batch[i] = randomKeys(net.Nodes(), int64(i))
	}
	if err := RunBatch(prog, batch, 4); err != nil {
		t.Fatal(err)
	}
	for i, keys := range batch {
		if !isSorted(net, keys) {
			t.Errorf("batch %d not sorted", i)
		}
	}
	// Bad shape surfaces as an error.
	if err := RunBatch(prog, [][]simnet.Key{make([]simnet.Key, 3)}, 2); err == nil {
		t.Error("want error for wrong key count")
	}
}
