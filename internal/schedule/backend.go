// Backends: consumers that run a compiled program against keys.

package schedule

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"productsort/internal/obs"
	"productsort/internal/simnet"
)

// Backend executes a compiled program over a key slice indexed by node
// id, sorting it in place, and returns the replay's clock. Because the
// program is oblivious, the clock equals prog.Clock() for every
// conforming backend; returning it keeps the interface honest about
// what a run cost.
type Backend interface {
	Run(prog *Program, keys []simnet.Key) (simnet.Clock, error)
}

// ExecBackend is the fast replay backend: it applies each exchange op
// with a simnet.Executor and charges the precomputed costs — no
// validation, no routing-plan lookups, no allocation beyond what the
// executor needs. It is the hot path behind CompiledNetwork.Sort.
type ExecBackend struct {
	// Exec applies phases; nil means simnet.SequentialExec.
	Exec simnet.Executor
	// Tracer receives a phase begin/end event pair per round-consuming
	// op. nil disables tracing; the disabled path stays allocation-free
	// (asserted by TestExecBackendDisabledTracerZeroAlloc).
	Tracer obs.Tracer
}

// Run implements Backend.
func (e ExecBackend) Run(prog *Program, keys []simnet.Key) (simnet.Clock, error) {
	if len(keys) != prog.net.Nodes() {
		return simnet.Clock{}, fmt.Errorf("schedule: %d keys for %d nodes", len(keys), prog.net.Nodes())
	}
	exec := e.Exec
	if exec == nil {
		exec = simnet.SequentialExec{}
	}
	ops := prog.ops
	if e.Tracer == nil {
		for i := range ops {
			switch ops[i].Kind {
			case OpCompareExchange, OpRoutedExchange:
				exec.CompareExchange(keys, ops[i].Pairs)
			}
		}
		return prog.clock, nil
	}
	inS2 := false
	for i := range ops {
		op := &ops[i]
		switch op.Kind {
		case OpCompareExchange, OpRoutedExchange:
			ev := phaseEvent(op, i, inS2)
			e.Tracer.PhaseBegin(ev)
			exec.CompareExchange(keys, op.Pairs)
			e.Tracer.PhaseEnd(ev)
		case OpIdle:
			ev := phaseEvent(op, i, inS2)
			e.Tracer.PhaseBegin(ev)
			e.Tracer.PhaseEnd(ev)
		case OpBeginS2:
			inS2 = true
		case OpEndS2:
			inS2 = false
		}
	}
	return prog.clock, nil
}

// phaseEvent assembles the trace payload of one round-consuming op.
func phaseEvent(op *Op, index int, inS2 bool) obs.Phase {
	kind := obs.PhaseExchange
	switch op.Kind {
	case OpRoutedExchange:
		kind = obs.PhaseRouted
	case OpIdle:
		kind = obs.PhaseIdle
	}
	return obs.Phase{
		Index: index,
		Kind:  kind,
		Dim:   op.Dim,
		S2:    inS2,
		Cost:  op.Cost,
		Pairs: len(op.Pairs),
	}
}

// MachineBackend replays the program through a live simnet.Machine,
// letting the machine re-derive every round charge from scratch. It is
// the slow cross-check backend: tests assert its clock matches the
// program's precomputed one.
type MachineBackend struct {
	// Exec is the machine's executor; nil means the default.
	Exec simnet.Executor
}

// Run implements Backend.
func (mb MachineBackend) Run(prog *Program, keys []simnet.Key) (simnet.Clock, error) {
	m, err := simnet.New(prog.net, keys)
	if err != nil {
		return simnet.Clock{}, err
	}
	if mb.Exec != nil {
		m.SetExecutor(mb.Exec)
	}
	ReplayOnMachine(prog, m)
	copy(keys, m.Keys())
	return m.Clock(), nil
}

// ReplayOnMachine re-executes every op of the program on a live
// machine through the machine's own accounting API, so the machine's
// clock is rebuilt from first principles (and can be compared with the
// program's precomputed clock).
func ReplayOnMachine(prog *Program, m *simnet.Machine) {
	for i := range prog.ops {
		op := &prog.ops[i]
		switch op.Kind {
		case OpCompareExchange, OpRoutedExchange:
			m.CompareExchange(op.Pairs)
		case OpIdle:
			m.IdleRound()
		case OpBeginS2:
			m.BeginS2()
		case OpEndS2:
			m.EndS2()
		case OpS2Marker:
			m.AddS2Phase()
		case OpSweepMarker:
			m.AddSweepPhase()
		}
	}
}

// Sentinel is the padding key batch replay writes into scratch slots of
// items shorter than the network: the maximum Key value, so after the
// oblivious replay every sentinel sits at the top of the snake order and
// the item's own keys occupy the snake prefix (see THEORY.md §12 for why
// the 0-1 certification argument survives the padding).
const Sentinel simnet.Key = math.MaxInt64

// BatchBuffer recycles the node-indexed scratch slices batch replay
// transposes items through, so a steady stream of batches allocates
// nothing per item. The zero value is ready to use; one buffer may be
// shared by any number of concurrent RunBatchSnake calls, though a
// buffer serving a single topology recycles best (mixed sizes drop
// undersized slabs and regrow).
type BatchBuffer struct {
	pool sync.Pool // *[]simnet.Key
}

// NewBatchBuffer returns an empty buffer.
func NewBatchBuffer() *BatchBuffer { return &BatchBuffer{} }

// get returns a pooled slab of length n (allocating only when the pool
// is empty or its slab is too small).
func (bb *BatchBuffer) get(n int) *[]simnet.Key {
	if v := bb.pool.Get(); v != nil {
		s := v.(*[]simnet.Key)
		if cap(*s) >= n {
			*s = (*s)[:n]
			return s
		}
	}
	s := make([]simnet.Key, n)
	return &s
}

// put returns a slab to the pool.
func (bb *BatchBuffer) put(s *[]simnet.Key) { bb.pool.Put(s) }

// RunBatchSnake sorts every key set of batch through one compiled
// program, each given and returned in snake order, sorted in place.
// Items may be shorter than the network: their scratch image is padded
// with Sentinel keys (never the caller's slice), so one program serves
// every request size it covers — the agglomeration move the serving
// layer is built on. workers < 1 selects len(batch) capped at
// GOMAXPROCS (the repo-wide fan-out convention); buf (nil for a
// call-private one) recycles the node-indexed scratch across calls,
// which makes the warm single-worker path allocation-free per item
// (pinned by TestRunBatchSnakeZeroAlloc).
func RunBatchSnake(prog *Program, batch [][]simnet.Key, workers int, buf *BatchBuffer) error {
	nodes := prog.net.Nodes()
	for i, keys := range batch {
		if len(keys) == 0 || len(keys) > nodes {
			return fmt.Errorf("schedule: batch[%d] has %d keys for %d nodes", i, len(keys), nodes)
		}
	}
	if len(batch) == 0 {
		return nil
	}
	if buf == nil {
		buf = NewBatchBuffer()
	}
	if workers < 1 {
		workers = len(batch)
		if mx := runtime.GOMAXPROCS(0); workers > mx {
			workers = mx
		}
	}
	if workers > len(batch) {
		workers = len(batch)
	}
	if workers <= 1 {
		perm := prog.SnakePerm()
		sp := buf.get(len(perm))
		for _, keys := range batch {
			snakeItem(prog, perm, *sp, keys)
		}
		buf.put(sp)
		return nil
	}
	var wg sync.WaitGroup
	next := make(chan []simnet.Key)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			snakeReplay(prog, buf, next)
		}()
	}
	for _, keys := range batch {
		next <- keys
	}
	close(next)
	wg.Wait()
	return nil
}

// snakeReplay drains items through one pooled scratch slab held for the
// worker's whole lifetime.
func snakeReplay(prog *Program, buf *BatchBuffer, items <-chan []simnet.Key) {
	perm := prog.SnakePerm()
	sp := buf.get(len(perm))
	for keys := range items {
		snakeItem(prog, perm, *sp, keys)
	}
	buf.put(sp)
}

// snakeItem sorts one snake-order item in place through scratch:
// transpose in, pad the tail with sentinels, replay, transpose back.
// The item's length was validated by RunBatchSnake, and ExecBackend.Run
// on a correctly sized scratch cannot fail, so there is no error path.
func snakeItem(prog *Program, perm []int, scratch []simnet.Key, keys []simnet.Key) {
	for pos, k := range keys {
		scratch[perm[pos]] = k
	}
	for pos := len(keys); pos < len(scratch); pos++ {
		scratch[perm[pos]] = Sentinel
	}
	if _, err := (ExecBackend{}).Run(prog, scratch); err != nil {
		// Unreachable: scratch length always matches the program.
		panic(err)
	}
	for pos := range keys {
		keys[pos] = scratch[perm[pos]]
	}
}

// RunBatch sorts every key set of batch (each indexed by node id, in
// place) through one compiled program with a pool of workers — the
// many-sorts-one-topology throughput mode. workers < 1 selects
// len(batch) capped at GOMAXPROCS. Each worker replays sequentially;
// the parallelism is across independent key sets, which is where batch
// throughput lives.
func RunBatch(prog *Program, batch [][]simnet.Key, workers int) error {
	for i, keys := range batch {
		if len(keys) != prog.net.Nodes() {
			return fmt.Errorf("schedule: batch[%d] has %d keys for %d nodes", i, len(keys), prog.net.Nodes())
		}
	}
	if workers < 1 {
		workers = len(batch)
		if mx := runtime.GOMAXPROCS(0); workers > mx {
			workers = mx
		}
	}
	if workers > len(batch) {
		workers = len(batch)
	}
	if workers <= 1 {
		be := ExecBackend{}
		for _, keys := range batch {
			if _, err := be.Run(prog, keys); err != nil {
				return err
			}
		}
		return nil
	}
	var wg sync.WaitGroup
	next := make(chan []simnet.Key)
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			be := ExecBackend{}
			for keys := range next {
				if _, err := be.Run(prog, keys); err != nil && errs[w] == nil {
					errs[w] = err
				}
			}
		}(w)
	}
	for _, keys := range batch {
		next <- keys
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
