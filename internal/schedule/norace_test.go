//go:build !race

package schedule

const raceEnabled = false
