// AVX2 columnar compare-exchange kernel and the CPUID plumbing that
// gates it. See kernel_amd64.go for the dispatch and the layout
// contract: column pos of a width-w slab is slab[pos*w : (pos+1)*w],
// and comparators are (Lo, Hi) int32 column indices packed 8 bytes
// apart. Four sets advance through one comparator per vector step:
// VPCMPGTQ builds the lo>hi lane mask and two VPBLENDVBs route each
// lane's min to the Lo column and max to the Hi column — branchless,
// so randomly ordered keys cost no mispredictions. The scalar tail
// finishes widths that are not multiples of four.

#include "textflag.h"

// func applyComparatorsAVX2(slab *simnet.Key, comps *Comparator, n, width int)
TEXT ·applyComparatorsAVX2(SB), NOSPLIT, $0-32
	MOVQ slab+0(FP), DI
	MOVQ comps+8(FP), SI
	MOVQ n+16(FP), DX
	MOVQ width+24(FP), CX
	TESTQ DX, DX
	JLE done
	TESTQ CX, CX
	JLE done
	MOVQ CX, R13
	SUBQ $3, R13 // vector bound: lanes s..s+3 are in range while s < width-3

comploop:
	MOVLQSX 0(SI), R8 // c.Lo
	MOVLQSX 4(SI), R9 // c.Hi
	IMULQ CX, R8
	IMULQ CX, R9
	LEAQ (DI)(R8*8), R10 // &slab[Lo*width]
	LEAQ (DI)(R9*8), R11 // &slab[Hi*width]
	XORQ R12, R12        // s = 0

vloop:
	CMPQ R12, R13
	JGE tail
	VMOVDQU (R10)(R12*8), Y0 // lo[s:s+4]
	VMOVDQU (R11)(R12*8), Y1 // hi[s:s+4]
	VPCMPGTQ Y1, Y0, Y2      // mask: lo > hi (signed per lane)
	VPBLENDVB Y2, Y1, Y0, Y3 // min lanes
	VPBLENDVB Y2, Y0, Y1, Y4 // max lanes
	VMOVDQU Y3, (R10)(R12*8)
	VMOVDQU Y4, (R11)(R12*8)
	ADDQ $4, R12
	JMP vloop

tail:
	CMPQ R12, CX
	JGE next
	MOVQ (R10)(R12*8), AX
	MOVQ (R11)(R12*8), BX
	CMPQ BX, AX
	JGE noswap
	MOVQ BX, (R10)(R12*8)
	MOVQ AX, (R11)(R12*8)

noswap:
	INCQ R12
	JMP tail

next:
	ADDQ $8, SI
	DECQ DX
	JNZ comploop

done:
	VZEROUPPER
	RET

// func cpuid(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL eaxArg+0(FP), AX
	MOVL ecxArg+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
