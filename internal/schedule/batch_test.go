package schedule

import (
	"math"
	"testing"

	"productsort/internal/graph"
	"productsort/internal/product"
	"productsort/internal/simnet"
)

// mixedBatch builds a batch of snake-order items of the given sizes
// with deterministic pseudo-random keys (including values equal to the
// sentinel, which must still sort correctly — equal keys are
// indistinguishable, so padding cannot corrupt the multiset).
func mixedBatch(sizes []int, seed int64) [][]simnet.Key {
	batch := make([][]simnet.Key, len(sizes))
	x := uint64(seed)*2862933555777941757 + 3037000493
	for i, n := range sizes {
		keys := make([]simnet.Key, n)
		for j := range keys {
			x = x*2862933555777941757 + 3037000493
			switch x % 7 {
			case 0:
				keys[j] = math.MaxInt64
			default:
				keys[j] = simnet.Key(x % 1000)
			}
		}
		batch[i] = keys
	}
	return batch
}

// TestRunBatchSnakeMixedSizes checks the padded batch replay against
// the reference sort for items spanning every admissible length,
// sequentially and with a worker pool, with and without a shared
// buffer.
func TestRunBatchSnakeMixedSizes(t *testing.T) {
	net := product.MustNew(graph.Path(4), 2) // 16 nodes
	prog, err := Compile(net, nil)
	if err != nil {
		t.Fatal(err)
	}
	sizes := []int{1, 5, 16, 9, 16, 2, 13, 7, 16, 3, 11}
	for _, workers := range []int{1, 4, 0} {
		for _, buf := range []*BatchBuffer{nil, NewBatchBuffer()} {
			batch := mixedBatch(sizes, int64(workers)+7)
			want := make([][]simnet.Key, len(batch))
			for i, keys := range batch {
				want[i] = sortedCopy(keys)
			}
			if err := RunBatchSnake(prog, batch, workers, buf); err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			for i, keys := range batch {
				if len(keys) != sizes[i] {
					t.Fatalf("workers=%d: item %d resized to %d", workers, i, len(keys))
				}
				for j := range keys {
					if keys[j] != want[i][j] {
						t.Fatalf("workers=%d item %d: got %v want %v", workers, i, keys, want[i])
					}
				}
			}
		}
	}
}

// TestRunBatchSnakeRejectsBadSizes: empty and oversized items are
// admission errors, not padding candidates.
func TestRunBatchSnakeRejectsBadSizes(t *testing.T) {
	net := product.MustNew(graph.K2(), 3) // 8 nodes
	prog, err := Compile(net, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := RunBatchSnake(prog, [][]simnet.Key{make([]simnet.Key, 9)}, 1, nil); err == nil {
		t.Fatal("oversized item accepted")
	}
	if err := RunBatchSnake(prog, [][]simnet.Key{{}}, 1, nil); err == nil {
		t.Fatal("empty item accepted")
	}
	if err := RunBatchSnake(prog, nil, 1, nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
}

// TestRunBatchSnakeZeroAlloc pins the satellite's point: with a warmed
// BatchBuffer the single-worker replay path allocates nothing per item
// (the occasional sync.Pool refill after a GC is the only tolerated
// noise).
func TestRunBatchSnakeZeroAlloc(t *testing.T) {
	net := product.MustNew(graph.K2(), 4) // 16 nodes
	prog, err := Compile(net, nil)
	if err != nil {
		t.Fatal(err)
	}
	buf := NewBatchBuffer()
	const items = 8
	batch := mixedBatch([]int{16, 12, 16, 9, 16, 16, 5, 16}[:items], 3)
	// Warm the pool and the program's snake permutation.
	if err := RunBatchSnake(prog, batch, 1, buf); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if err := RunBatchSnake(prog, batch, 1, buf); err != nil {
			t.Fatal(err)
		}
	})
	if perItem := allocs / items; perItem > 0.25 {
		t.Fatalf("warm RunBatchSnake allocates %.2f objects/item (%.1f/call); want ~0", perItem, allocs)
	}
}

// BenchmarkRunBatchSnake contrasts the pooled transpose path with the
// pre-satellite behaviour (a fresh node-indexed slice per item per
// call, as CompiledNetwork.SortBatch used to build).
func BenchmarkRunBatchSnake(b *testing.B) {
	net := product.MustNew(graph.Path(8), 2) // 64 nodes
	prog, err := Compile(net, nil)
	if err != nil {
		b.Fatal(err)
	}
	const items = 32
	sizes := make([]int, items)
	for i := range sizes {
		sizes[i] = 64
	}

	b.Run("pooled", func(b *testing.B) {
		buf := NewBatchBuffer()
		batch := mixedBatch(sizes, 1)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := RunBatchSnake(prog, batch, 1, buf); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("fresh-bynode", func(b *testing.B) {
		batch := mixedBatch(sizes, 1)
		perm := prog.SnakePerm()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			byNode := make([][]simnet.Key, len(batch))
			for j, keys := range batch {
				bn := make([]simnet.Key, len(perm))
				for pos, k := range keys {
					bn[perm[pos]] = k
				}
				byNode[j] = bn
			}
			if err := RunBatch(prog, byNode, 1); err != nil {
				b.Fatal(err)
			}
			for j, keys := range batch {
				for pos := range keys {
					keys[pos] = byNode[j][perm[pos]]
				}
			}
		}
	})
}

// TestCompileUncachedBypassesCache: CompileUncached must build every
// time and never touch the process-wide cache counters' hit/miss path.
func TestCompileUncachedBypassesCache(t *testing.T) {
	ResetCache()
	net := product.MustNew(graph.Path(3), 2)
	p1, err := CompileUncached(net, nil)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := CompileUncached(net, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p1 == p2 {
		t.Fatal("CompileUncached returned a shared program")
	}
	st := Stats()
	if st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("CompileUncached touched the cache: %+v", st)
	}
	if st.Compiles != 2 {
		t.Fatalf("expected 2 compiles, got %d", st.Compiles)
	}
	// The two builds are behaviourally identical to the cached one.
	cached, err := Compile(net, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Rounds() != cached.Rounds() || p1.Size() != cached.Size() {
		t.Fatalf("uncached program differs: rounds %d vs %d, size %d vs %d",
			p1.Rounds(), cached.Rounds(), p1.Size(), cached.Size())
	}
}
