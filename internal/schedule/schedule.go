// Package schedule compiles the multiway-merge sorting algorithm into a
// typed, reusable phase program — the repo's intermediate representation
// for oblivious compare-exchange schedules.
//
// The paper's algorithm is oblivious (Section 3.2): its schedule depends
// only on the network, never on the keys. That makes the schedule a
// compile-once artifact: Compile runs the algorithm a single time
// against a recording Builder, prices every phase with the same cost
// model the live simulator uses (single-hop phases cost one round,
// routed phases the measured exchange-routing cost), and stores the
// result in a process-wide cache keyed by the network's canonical
// structural signature. Every later sort on a structurally identical
// network replays the cached program with zero schedule construction.
//
// The program is consumed by pluggable backends: the in-place executor
// backend (package schedule), the live simulator replay, the comparator
// network view (package mergenet), merge-split block sorting (package
// blocksort), and the message-passing SPMD engine (package spmd). All of
// them observe identical round accounting because the charges are part
// of the IR, precomputed per Lemma 3 / Theorem 1.
package schedule

import (
	"fmt"
	"sync"
	"sync/atomic"

	"productsort/internal/product"
	"productsort/internal/simnet"
)

// OpKind discriminates the typed ops of a compiled phase program.
type OpKind uint8

const (
	// OpCompareExchange is a parallel compare-exchange phase whose pairs
	// are all product-network edges; it costs exactly one round.
	OpCompareExchange OpKind = iota
	// OpRoutedExchange is a compare-exchange phase with at least one
	// non-adjacent pair; its cost is the measured key-exchange routing
	// charge (Section 4's permutation-routing fallback).
	OpRoutedExchange
	// OpIdle charges one round with no data movement: the oblivious
	// schedule spends the synchronous step even when no processor has a
	// partner.
	OpIdle
	// OpBeginS2 and OpEndS2 bracket the ops attributable to PG_2
	// sorting, splitting Rounds into S2Rounds and SweepRounds.
	OpBeginS2
	OpEndS2
	// OpS2Marker records one completed S_2 invocation ((r-1)² per sort,
	// Theorem 1).
	OpS2Marker
	// OpSweepMarker records one completed inter-subgraph transposition
	// sweep ((r-1)(r-2) per sort, Theorem 1).
	OpSweepMarker
)

// String names the op kind for diagnostics.
func (k OpKind) String() string {
	switch k {
	case OpCompareExchange:
		return "compare-exchange"
	case OpRoutedExchange:
		return "routed-exchange"
	case OpIdle:
		return "idle"
	case OpBeginS2:
		return "begin-s2"
	case OpEndS2:
		return "end-s2"
	case OpS2Marker:
		return "s2-marker"
	case OpSweepMarker:
		return "sweep-marker"
	}
	return fmt.Sprintf("op(%d)", uint8(k))
}

// Op is one instruction of a compiled program.
type Op struct {
	// Kind discriminates the instruction.
	Kind OpKind
	// Pairs holds the node-disjoint (lo, hi) node-id pairs of an
	// exchange op; nil for idle rounds and markers.
	Pairs [][2]int
	// Cost is the precomputed round charge (1 for single-hop exchanges
	// and idle rounds, the routing charge for routed exchanges, 0 for
	// markers).
	Cost int
	// Dim is the 1-based product dimension every pair of an exchange op
	// differs in, or 0 when the op mixes dimensions (or is not an
	// exchange). It is part of the IR so tracing can attribute round
	// charges per dimension without re-deriving digits at replay time.
	Dim int
}

// Program is a compiled, immutable phase program for one network (and
// one S_2 engine). It is safe for concurrent replay by any number of
// backends; consumers must not mutate the ops.
type Program struct {
	net    *product.Network
	engine string
	sig    string
	ops    []Op
	clock  simnet.Clock

	permOnce sync.Once
	perm     []int // snake position -> node id, built on first use

	lowOnce sync.Once
	lowered []Comparator // flat snake-space comparator stream, built on first use

	// state and freeHook implement the retire/free lifecycle bounded
	// caches use to reclaim evicted programs safely (lifecycle.go). A
	// program held only by the process-wide cache never leaves progLive.
	state    atomic.Uint32
	freeHook atomic.Pointer[func()]
}

// Comparator is one lowered compare-exchange in snake-position space:
// after it runs, column Lo holds the minimum and column Hi the maximum.
// Indices are int32 so the stream packs two comparators per cache line
// quarter; every network the repo builds fits comfortably.
type Comparator struct {
	Lo, Hi int32
}

// Net returns the product network the program was compiled for. Cached
// programs may be shared between structurally identical networks; the
// returned network is the one the first compilation saw.
func (p *Program) Net() *product.Network { return p.net }

// Engine returns the name of the S_2 engine the program embeds.
func (p *Program) Engine() string { return p.engine }

// Signature returns the canonical cache signature the program is stored
// under.
func (p *Program) Signature() string { return p.sig }

// Ops returns the program's instruction stream. The slice and the pair
// slices inside are shared — read only.
func (p *Program) Ops() []Op { return p.ops }

// Clock returns the precomputed counters of one full replay: because
// the schedule is oblivious, every execution of the program observes
// exactly these rounds and phase counts, so backends report them
// without re-deriving costs.
func (p *Program) Clock() simnet.Clock { return p.clock }

// Rounds returns the total parallel round charge of one replay.
func (p *Program) Rounds() int { return p.clock.Rounds }

// Nodes returns the network's processor count — the largest key set one
// replay of the program can sort, and therefore the run-size ceiling of
// any tier (batch replay, streaming run formation) built on top of it.
func (p *Program) Nodes() int { return p.net.Nodes() }

// SnakePerm returns the snake-to-node transpose table (perm[pos] is the
// node id holding snake position pos), built once per program and shared
// by every batch replay. Read only.
func (p *Program) SnakePerm() []int {
	p.permOnce.Do(func() {
		p.perm = make([]int, p.net.Nodes())
		for pos := range p.perm {
			p.perm[pos] = p.net.NodeAtSnake(pos)
		}
	})
	return p.perm
}

// LoweredComparators returns the program's phase ops pre-lowered into
// one flat comparator stream in snake-position space: every exchange
// op's (lo, hi) node-id pairs mapped through the inverse snake
// permutation and concatenated in execution order. Idle rounds and
// markers move no data, so they vanish; what remains is exactly the
// instruction stream the columnar kernel replays with no per-op decode
// and no interface dispatch. Built once per program and shared — read
// only. Replaying the stream over snake-indexed storage is the same
// permutation-conjugated computation as replaying the ops over
// node-indexed storage (pinned by TestLoweredComparatorsEquivalence).
func (p *Program) LoweredComparators() []Comparator {
	p.lowOnce.Do(func() {
		perm := p.SnakePerm()
		inv := make([]int32, len(perm))
		for pos, node := range perm {
			inv[node] = int32(pos)
		}
		n := 0
		for i := range p.ops {
			switch p.ops[i].Kind {
			case OpCompareExchange, OpRoutedExchange:
				n += len(p.ops[i].Pairs)
			}
		}
		comps := make([]Comparator, 0, n)
		for i := range p.ops {
			switch p.ops[i].Kind {
			case OpCompareExchange, OpRoutedExchange:
				for _, pr := range p.ops[i].Pairs {
					comps = append(comps, Comparator{Lo: inv[pr[0]], Hi: inv[pr[1]]})
				}
			}
		}
		p.lowered = comps
	})
	return p.lowered
}

// Depth returns the number of round-consuming ops (exchange phases plus
// idle rounds).
func (p *Program) Depth() int {
	d := 0
	for i := range p.ops {
		switch p.ops[i].Kind {
		case OpCompareExchange, OpRoutedExchange, OpIdle:
			d++
		}
	}
	return d
}

// Size returns the total comparator count of one replay.
func (p *Program) Size() int { return p.clock.CompareOps }

// Phases returns the non-empty compare-exchange phases in node-id
// space, in execution order — the form the recording executor used to
// produce and that package mergenet re-expresses in snake coordinates.
// The returned slices are fresh copies.
func (p *Program) Phases() [][][2]int {
	var phases [][][2]int
	for i := range p.ops {
		op := &p.ops[i]
		if op.Kind != OpCompareExchange && op.Kind != OpRoutedExchange {
			continue
		}
		cp := make([][2]int, len(op.Pairs))
		copy(cp, op.Pairs)
		phases = append(phases, cp)
	}
	return phases
}

// Builder records the algorithm's emitted phases into a Program. It
// implements sort2d.Machine, so core.Sorter drives it exactly as it
// drives a live simulator — same code path, no keys.
type Builder struct {
	net   *product.Network
	cost  *simnet.CostModel
	ops   []Op
	clock simnet.Clock
	inS2  bool
}

// NewBuilder returns an empty builder for net.
func NewBuilder(net *product.Network) *Builder {
	return &Builder{net: net, cost: simnet.NewCostModel()}
}

// Net implements sort2d.Machine.
func (b *Builder) Net() *product.Network { return b.net }

// CompareExchange implements sort2d.Machine: it validates and prices
// the phase with the simulator's cost model and records it as a typed
// op. Empty phases are ignored, mirroring the live machine.
func (b *Builder) CompareExchange(pairs [][2]int) {
	if len(pairs) == 0 {
		return
	}
	cp := make([][2]int, len(pairs))
	copy(cp, pairs)
	cost := b.cost.PhaseCost(b.net, cp)
	kind := OpCompareExchange
	if cost > 1 {
		kind = OpRoutedExchange
		b.clock.RoutedPhases++
	}
	b.ops = append(b.ops, Op{Kind: kind, Pairs: cp, Cost: cost, Dim: phaseDim(b.net, cp)})
	b.clock.ComparePhases++
	b.clock.CompareOps += len(cp)
	b.charge(cost)
}

// phaseDim returns the 1-based dimension every pair of the phase
// differs in, or 0 when pairs span different dimensions. PhaseCost has
// already validated that each pair differs in exactly one dimension.
func phaseDim(net *product.Network, pairs [][2]int) int {
	dim := 0
	for _, pr := range pairs {
		d := 0
		for k := 1; k <= net.R(); k++ {
			if net.Digit(pr[0], k) != net.Digit(pr[1], k) {
				d = k
				break
			}
		}
		if dim == 0 {
			dim = d
		} else if dim != d {
			return 0
		}
	}
	return dim
}

// IdleRound implements sort2d.Machine.
func (b *Builder) IdleRound() {
	b.ops = append(b.ops, Op{Kind: OpIdle, Cost: 1})
	b.charge(1)
}

// BeginS2 implements sort2d.Machine.
func (b *Builder) BeginS2() {
	b.inS2 = true
	b.ops = append(b.ops, Op{Kind: OpBeginS2})
}

// EndS2 implements sort2d.Machine.
func (b *Builder) EndS2() {
	b.inS2 = false
	b.ops = append(b.ops, Op{Kind: OpEndS2})
}

// AddS2Phase implements sort2d.Machine.
func (b *Builder) AddS2Phase() {
	b.clock.S2Phases++
	b.ops = append(b.ops, Op{Kind: OpS2Marker})
}

// AddSweepPhase implements sort2d.Machine.
func (b *Builder) AddSweepPhase() {
	b.clock.SweepPhases++
	b.ops = append(b.ops, Op{Kind: OpSweepMarker})
}

// charge accrues a round cost with S2/sweep attribution.
func (b *Builder) charge(cost int) {
	b.clock.Rounds += cost
	if b.inS2 {
		b.clock.S2Rounds += cost
	} else {
		b.clock.SweepRounds += cost
	}
}

// Program freezes the builder into an immutable program.
func (b *Builder) Program(engine, sig string) *Program {
	return &Program{net: b.net, engine: engine, sig: sig, ops: b.ops, clock: b.clock}
}
