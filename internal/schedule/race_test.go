//go:build race

package schedule

// raceEnabled reports that this binary was built with the race
// detector, under which sync.Pool randomly drops Puts — allocation
// pins that rely on deterministic pool reuse must widen or skip.
const raceEnabled = true
