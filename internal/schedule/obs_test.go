package schedule

import (
	"testing"

	"productsort/internal/faults"
	"productsort/internal/graph"
	"productsort/internal/obs"
	"productsort/internal/product"
)

// TestExecBackendDisabledTracerZeroAlloc pins the hot-path guarantee
// documented on ExecBackend.Tracer: with the tracer nil, a full replay
// performs zero heap allocations.
func TestExecBackendDisabledTracerZeroAlloc(t *testing.T) {
	net := product.MustNew(graph.Path(4), 3)
	prog, err := Compile(net, nil)
	if err != nil {
		t.Fatal(err)
	}
	keys := randomKeys(net.Nodes(), 11)
	be := ExecBackend{}
	// Warm up once so lazy plan/cost state (if any) is built outside the
	// measured window; the schedule is oblivious, so re-sorting sorted
	// keys replays the identical op sequence.
	if _, err := be.Run(prog, keys); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := be.Run(prog, keys); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled-tracer replay allocates %.1f per run, want 0", allocs)
	}
}

// phaseTally counts phase events by kind and verifies begin/end pairing.
type phaseTally struct {
	begins, ends  int
	exchanges     int
	routed        int
	idle          int
	pairs         int
	rounds        int
	s2Rounds      int
	sweepRounds   int
	openMismatch  bool
	lastBeginSeen obs.Phase
}

func (c *phaseTally) PhaseBegin(p obs.Phase) {
	c.begins++
	c.lastBeginSeen = p
}

func (c *phaseTally) PhaseEnd(p obs.Phase) {
	c.ends++
	if p != c.lastBeginSeen {
		c.openMismatch = true
	}
	switch p.Kind {
	case obs.PhaseExchange:
		c.exchanges++
	case obs.PhaseRouted:
		c.routed++
	case obs.PhaseIdle:
		c.idle++
	}
	c.pairs += p.Pairs
	c.rounds += p.Cost
	if p.S2 {
		c.s2Rounds += p.Cost
	} else {
		c.sweepRounds += p.Cost
	}
}

func (c *phaseTally) RecoveryEvent(obs.Recovery) {}
func (c *phaseTally) MessageStats(obs.Messages)  {}

// TestTraceEventsMatchClock replays every factor family with a tracer
// attached and checks that the event stream reconstructs the clock
// exactly: round charges, the S2/sweep split, phase kind counts, and
// compare-op totals all match the program's precomputed clock.
func TestTraceEventsMatchClock(t *testing.T) {
	for _, f := range families() {
		f := f
		t.Run(f.name, func(t *testing.T) {
			net, err := product.New(f.g, f.r)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := Compile(net, nil)
			if err != nil {
				t.Fatal(err)
			}
			keys := randomKeys(net.Nodes(), 17)
			tally := &phaseTally{}
			clk, err := ExecBackend{Tracer: tally}.Run(prog, keys)
			if err != nil {
				t.Fatal(err)
			}
			if tally.openMismatch || tally.begins != tally.ends {
				t.Fatalf("unbalanced begin/end events: %d begins, %d ends", tally.begins, tally.ends)
			}
			if tally.rounds != clk.Rounds {
				t.Errorf("event rounds %d != clock rounds %d", tally.rounds, clk.Rounds)
			}
			if tally.s2Rounds != clk.S2Rounds || tally.sweepRounds != clk.SweepRounds {
				t.Errorf("event split s2=%d/sweep=%d != clock s2=%d/sweep=%d",
					tally.s2Rounds, tally.sweepRounds, clk.S2Rounds, clk.SweepRounds)
			}
			if got := tally.exchanges + tally.routed; got != clk.ComparePhases {
				t.Errorf("exchange events %d != compare phases %d", got, clk.ComparePhases)
			}
			if tally.routed != clk.RoutedPhases {
				t.Errorf("routed events %d != routed phases %d", tally.routed, clk.RoutedPhases)
			}
			if tally.pairs != clk.CompareOps {
				t.Errorf("event pairs %d != compare ops %d", tally.pairs, clk.CompareOps)
			}
			// The recorder rebuilds the same totals from the wire format.
			rec := obs.NewRecorder()
			keys2 := randomKeys(net.Nodes(), 17)
			if _, err := (ExecBackend{Tracer: rec}).Run(prog, keys2); err != nil {
				t.Fatal(err)
			}
			if rec.RoundTotal() != clk.Rounds {
				t.Errorf("recorder total %d != clock rounds %d", rec.RoundTotal(), clk.Rounds)
			}
		})
	}
}

// recoveryTally counts recovery events by kind (with multiplicities)
// and sums their round charges.
type recoveryTally struct {
	counts [obs.RecoveryUnrecoverable + 1]int
	rounds int
}

func (c *recoveryTally) PhaseBegin(obs.Phase) {}
func (c *recoveryTally) PhaseEnd(obs.Phase)   {}
func (c *recoveryTally) MessageStats(obs.Messages) {
}

func (c *recoveryTally) RecoveryEvent(ev obs.Recovery) {
	c.counts[ev.Kind] += ev.N()
	c.rounds += ev.Rounds
}

// TestChaosEventsMatchFaultReport runs a chaos replay with recovery
// tracing attached and checks the event stream against the fault
// report: every counter the plan accumulates has a one-for-one event
// mirror, and the recovery events' round charges sum to exactly the
// clock's RecoveryRounds. This is the contract documented on
// ResilientBackend.Tracer.
func TestChaosEventsMatchFaultReport(t *testing.T) {
	const k = 8
	for _, cfg := range []struct {
		g *graph.Graph
		r int
	}{
		{graph.Path(4), 2},
		{graph.Cycle(5), 2},
		{graph.CompleteBinaryTree(3), 2}, // routed exchanges in the base program
	} {
		net := product.MustNew(cfg.g, cfg.r)
		prog, err := Compile(net, nil)
		if err != nil {
			t.Fatal(err)
		}
		keys := nodeKeys(net.Nodes(), 7)
		plan := faults.NewPlan(faults.Config{Seed: 13, DropRate: 0.05, StallRate: 0.03, CorruptRate: 0.05})
		tally := &recoveryTally{}
		clk, err := ResilientBackend{Plan: plan, CheckpointEvery: k, Tracer: tally}.Run(prog, keys)
		if err != nil {
			t.Fatalf("%s: %v", net.Name(), err)
		}
		fr := clk.Faults
		if got := tally.counts[obs.RecoveryScrubDetect]; got != fr.Detected {
			t.Errorf("%s: scrub-detect events %d != detected %d", net.Name(), got, fr.Detected)
		}
		if got := tally.counts[obs.RecoveryRetry] + tally.counts[obs.RecoveryRetransmit]; got != fr.Retried {
			t.Errorf("%s: retry+retransmit events %d != retried %d", net.Name(), got, fr.Retried)
		}
		if got := tally.counts[obs.RecoveryRepairPass]; got != fr.RepairPasses {
			t.Errorf("%s: repair-pass events %d != repair passes %d", net.Name(), got, fr.RepairPasses)
		}
		if got := tally.counts[obs.RecoveryStallWait]; got != fr.Stalled {
			t.Errorf("%s: stall-wait events %d != stalled %d", net.Name(), got, fr.Stalled)
		}
		if got := tally.counts[obs.RecoveryUnrecoverable]; got != fr.Unrecoverable {
			t.Errorf("%s: unrecoverable events %d != unrecoverable %d", net.Name(), got, fr.Unrecoverable)
		}
		if tally.rounds != clk.RecoveryRounds {
			t.Errorf("%s: recovery events carry %d rounds, clock charged %d",
				net.Name(), tally.rounds, clk.RecoveryRounds)
		}
		// Every checkpoint window snapshots once; retries and halvings
		// only add windows, so the first full sweep is a lower bound.
		minCheckpoints := (prog.Clock().ComparePhases + k - 1) / k
		if got := tally.counts[obs.RecoveryCheckpoint]; got < minCheckpoints {
			t.Errorf("%s: %d checkpoint events, want >= %d", net.Name(), got, minCheckpoints)
		}
	}
}

// TestResilientQuietEmitsNoRecoveryEvents: the fault-free delegate path
// must not consult the recovery tracer at all.
func TestResilientQuietEmitsNoRecoveryEvents(t *testing.T) {
	net := product.MustNew(graph.Path(3), 2)
	prog, err := Compile(net, nil)
	if err != nil {
		t.Fatal(err)
	}
	tally := &recoveryTally{}
	keys := nodeKeys(net.Nodes(), 4)
	if _, err := (ResilientBackend{Tracer: tally}).Run(prog, keys); err != nil {
		t.Fatal(err)
	}
	for kind, n := range tally.counts {
		if n != 0 {
			t.Errorf("quiet run emitted %d %s events", n, obs.RecoveryKind(kind))
		}
	}
}

// TestResilientTracedInnerKeepsS2Attribution: under faults the inner
// backend runs batched sub-programs, which must still carry the S2
// bracket markers so phase events attribute rounds to the right stage.
func TestResilientTracedInnerKeepsS2Attribution(t *testing.T) {
	net := product.MustNew(graph.Cycle(4), 3)
	prog, err := Compile(net, nil)
	if err != nil {
		t.Fatal(err)
	}
	tally := &phaseTally{}
	keys := nodeKeys(net.Nodes(), 6)
	plan := faults.NewPlan(faults.Config{Seed: 21, DropRate: 0.03, CorruptRate: 0.03})
	clk, err := ResilientBackend{
		Inner:  ExecBackend{Tracer: tally},
		Plan:   plan,
		Tracer: tally,
	}.Run(prog, keys)
	if err != nil {
		t.Fatal(err)
	}
	base := prog.Clock()
	if base.S2Rounds == 0 || base.SweepRounds == 0 {
		t.Fatalf("test network needs both stages (s2=%d sweep=%d)", base.S2Rounds, base.SweepRounds)
	}
	// Phase events cover at least every base round in each stage;
	// retried windows replay phases, so each stage can only gain. (Drops
	// can shrink a phase's pair list but never its round charge.)
	if tally.s2Rounds < base.S2Rounds {
		t.Errorf("s2 phase events carry %d rounds, base program has %d", tally.s2Rounds, base.S2Rounds)
	}
	if tally.sweepRounds < base.SweepRounds {
		t.Errorf("sweep phase events carry %d rounds, base program has %d", tally.sweepRounds, base.SweepRounds)
	}
	if clk.RecoveryRounds == 0 {
		t.Error("chaos run charged no recovery rounds; rates too low for this test to bite")
	}
}
