// ResilientBackend: self-healing schedule replay. It wraps any Backend
// with deterministic fault injection and the recovery machinery that
// survives it: checkpoint every K phases, checksum-scrub each window,
// retry faulted windows from the checkpoint under a fresh fault epoch,
// halve the window when retries keep failing (exponential backoff that
// isolates the corrupting phase), wait out stalls and retransmit drops
// at their measured round cost, re-price the whole program on the
// surviving network when links are dead, and finish with a sortedness
// scrub backed by bounded full-program repair passes (the schedule is
// oblivious, so re-running it is always safe).
//
// Faults are realized here, above the inner backend: pair skips are
// removed from the ops the backend sees and corruption masks are
// applied to the key array between backend segments. Every decision is
// a pure function of (plan seed, epoch, op index, coordinates), so two
// runs with the same plan — over ANY conforming inner backend — produce
// byte-identical keys and identical recovery counters.

package schedule

import (
	"errors"
	"fmt"

	"productsort/internal/faults"
	"productsort/internal/graph"
	"productsort/internal/obs"
	"productsort/internal/product"
	"productsort/internal/simnet"
)

// ErrUnrecoverable reports that recovery was exhausted: either a key
// corruption survived every window retry (the data itself is wrong —
// no amount of re-sorting can restore a flipped bit), or the repair
// pass budget ran out before the output scrubbed sorted. The returned
// clock still carries the full fault and recovery accounting.
var ErrUnrecoverable = errors.New("schedule: fault recovery exhausted")

// pairAttempts bounds stall-waits and retransmissions per pair before
// the exchange is abandoned for the phase (mirrors the SPMD engine's
// message retry bound).
const pairAttempts = 8

// ResilientBackend wraps an inner Backend with deterministic fault
// injection and self-healing replay. The zero value of each knob
// selects its default.
type ResilientBackend struct {
	// Inner executes the surviving ops; nil means ExecBackend.
	Inner Backend
	// Plan decides the faults. nil (or a quiet plan) makes Run a
	// transparent delegate to Inner — the fault-free path costs nothing.
	Plan *faults.Plan
	// CheckpointEvery is K, the number of exchange phases per
	// checkpoint window; <1 means 16. Small K detects corruption
	// sooner but copies keys more often (see THEORY.md for the
	// overhead bound).
	CheckpointEvery int
	// MaxRetries is the number of full-window retries before the
	// window is halved; <1 means 3.
	MaxRetries int
	// MaxRepairPasses bounds the full-program repair replays after the
	// final sortedness scrub; <1 means 3.
	MaxRepairPasses int
	// Tracer receives typed recovery events: checkpoint snapshots,
	// scrub detections, window retries and halvings, stall waits,
	// retransmissions, repair passes and unrecoverable give-ups. Event
	// multiplicities mirror the fault plan's counters one-for-one
	// (asserted by TestChaosEventsMatchFaultReport), and the Rounds
	// carried by all recovery events sum to the clock's RecoveryRounds.
	// nil disables recovery tracing; the fault-free delegate path never
	// consults it. Phase-level events come from the Inner backend's own
	// tracer — under recovery those carry sub-program op indices, since
	// surviving pairs are batched into fresh sub-programs.
	Tracer obs.Tracer
}

// Run implements Backend: it replays prog over keys under the fault
// plan, healing what it can, and returns the clock with Rounds
// inflated by the measured recovery cost (split out in RecoveryRounds)
// and the plan's counters attached. A nil or quiet plan delegates
// straight to the inner backend.
func (rb ResilientBackend) Run(prog *Program, keys []simnet.Key) (simnet.Clock, error) {
	inner := rb.Inner
	if inner == nil {
		inner = ExecBackend{}
	}
	if rb.Plan == nil || rb.Plan.Config().Quiet() {
		return inner.Run(prog, keys)
	}
	if len(keys) != prog.net.Nodes() {
		return simnet.Clock{}, fmt.Errorf("schedule: %d keys for %d nodes", len(keys), prog.net.Nodes())
	}
	priced, rerouted, err := degradeProgram(prog, rb.Plan)
	if err != nil {
		return simnet.Clock{}, err
	}
	if rerouted > 0 {
		rb.Plan.Add(faults.Counters{Rerouted: rerouted})
	}
	r := &resilientRun{
		prog:       priced,
		inner:      inner,
		plan:       rb.Plan,
		keys:       keys,
		sum0:       faults.ChecksumKeys(keys),
		k:          rb.CheckpointEvery,
		maxRetries: rb.MaxRetries,
		tracer:     rb.Tracer,
	}
	if r.k < 1 {
		r.k = 16
	}
	if r.maxRetries < 1 {
		r.maxRetries = 3
	}
	maxRepair := rb.MaxRepairPasses
	if maxRepair < 1 {
		maxRepair = 3
	}
	inS2 := false
	for i := range priced.ops {
		switch priced.ops[i].Kind {
		case OpBeginS2:
			inS2 = true
		case OpEndS2:
			inS2 = false
		case OpCompareExchange, OpRoutedExchange:
			r.ex = append(r.ex, i)
			r.exS2 = append(r.exS2, inS2)
		}
	}
	if err := r.runAll(true); err != nil {
		return simnet.Clock{}, err
	}
	// Final scrub: the multiset checksum cannot see a silently skipped
	// exchange, but the snake order can. Sorting is idempotent over
	// this schedule, so a repair pass is just another (fresh-epoch)
	// replay charged entirely to recovery.
	for pass := 0; !snakeSorted(priced.net, keys); pass++ {
		if pass >= maxRepair {
			r.plan.Add(faults.Counters{Unrecoverable: 1})
			r.trace(obs.Recovery{Kind: obs.RecoveryUnrecoverable, Lo: -1, Hi: -1, Phase: -1})
			return r.finalClock(), ErrUnrecoverable
		}
		r.plan.Add(faults.Counters{Detected: 1, RepairPasses: 1})
		r.trace(obs.Recovery{Kind: obs.RecoveryScrubDetect, Lo: -1, Hi: -1, Phase: -1})
		r.trace(obs.Recovery{Kind: obs.RecoveryRepairPass, Lo: -1, Hi: -1, Phase: -1})
		r.epoch++
		if err := r.runAll(false); err != nil {
			return simnet.Clock{}, err
		}
	}
	clk := r.finalClock()
	if r.corrupted {
		return clk, ErrUnrecoverable
	}
	return clk, nil
}

// resilientRun is the mutable state of one resilient replay.
type resilientRun struct {
	prog  *Program
	inner Backend
	plan  *faults.Plan
	keys  []simnet.Key
	ex    []int           // indices of exchange ops in prog.ops
	exS2  []bool          // S2 attribution per exchange op (for traces)
	sum0  faults.Checksum // multiset digest scrubbed against

	k          int // checkpoint window size (exchange phases)
	maxRetries int // full-window retries before halving

	epoch          int // bumped per retry/repair: re-rolls every decision
	recoveryRounds int
	corrupted      bool       // an accepted (unhealable) corruption happened
	pending        []Op       // scratch ops buffer between backend segments
	tracer         obs.Tracer // nil = recovery tracing disabled
}

// trace emits a recovery event when a tracer is attached.
func (r *resilientRun) trace(ev obs.Recovery) {
	if r.tracer != nil {
		r.tracer.RecoveryEvent(ev)
	}
}

// runAll replays every window in order. free marks the first execution
// of each window as already paid for by the program's base clock;
// repair passes set it false so their full cost lands on recovery.
func (r *resilientRun) runAll(free bool) error {
	for w := 0; w < len(r.ex); w += r.k {
		hi := w + r.k
		if hi > len(r.ex) {
			hi = len(r.ex)
		}
		if err := r.window(w, hi, free); err != nil {
			return err
		}
	}
	return nil
}

// window replays exchange ops ex[lo:hi] under checksum scrubbing:
// checkpoint, execute, scrub; on corruption restore and retry under a
// fresh epoch; after maxRetries halve the window (exponential backoff —
// each level pins the corruption to half as many phases); a single
// phase that never comes clean is accepted as unrecoverable and the
// scrub baseline rebased so later windows still scrub meaningfully.
func (r *resilientRun) window(lo, hi int, free bool) error {
	cost := r.windowCost(lo, hi)
	checkpoint := append([]simnet.Key(nil), r.keys...)
	r.trace(obs.Recovery{Kind: obs.RecoveryCheckpoint, Lo: lo, Hi: hi, Phase: -1})
	for attempt := 0; attempt <= r.maxRetries; attempt++ {
		if !free || attempt > 0 {
			r.recoveryRounds += cost
			r.trace(obs.Recovery{Kind: obs.RecoveryReplay, Lo: lo, Hi: hi, Phase: -1, Rounds: cost})
		}
		if err := r.execute(lo, hi); err != nil {
			return err
		}
		if faults.ChecksumKeys(r.keys) == r.sum0 {
			return nil
		}
		r.plan.Add(faults.Counters{Detected: 1, Retried: 1})
		r.trace(obs.Recovery{Kind: obs.RecoveryScrubDetect, Lo: lo, Hi: hi, Phase: -1})
		r.trace(obs.Recovery{Kind: obs.RecoveryRetry, Lo: lo, Hi: hi, Phase: -1})
		copy(r.keys, checkpoint)
		r.epoch++
	}
	if hi-lo <= 1 {
		// The corrupting phase is isolated and will not heal: run it
		// one last time and carry the corruption forward, counted.
		r.recoveryRounds += cost
		r.trace(obs.Recovery{Kind: obs.RecoveryReplay, Lo: lo, Hi: hi, Phase: -1, Rounds: cost})
		if err := r.execute(lo, hi); err != nil {
			return err
		}
		if sum := faults.ChecksumKeys(r.keys); sum != r.sum0 {
			r.plan.Add(faults.Counters{Detected: 1, Unrecoverable: 1})
			r.trace(obs.Recovery{Kind: obs.RecoveryScrubDetect, Lo: lo, Hi: hi, Phase: -1})
			r.trace(obs.Recovery{Kind: obs.RecoveryUnrecoverable, Lo: lo, Hi: hi, Phase: -1})
			r.corrupted = true
			r.sum0 = sum
		}
		return nil
	}
	mid := lo + (hi-lo)/2
	r.trace(obs.Recovery{Kind: obs.RecoveryHalve, Lo: lo, Hi: hi, Phase: -1})
	if err := r.window(lo, mid, false); err != nil {
		return err
	}
	return r.window(mid, hi, false)
}

// windowCost sums the priced round charges of exchange ops ex[lo:hi].
func (r *resilientRun) windowCost(lo, hi int) int {
	cost := 0
	for w := lo; w < hi; w++ {
		cost += r.prog.ops[r.ex[w]].Cost
	}
	return cost
}

// execute runs exchange ops ex[lo:hi] once under the current epoch:
// stalled endpoints are waited out (a recovery round per stalled
// round), dropped exchanges are retransmitted (a recovery round per
// attempt, bounded), surviving pairs are batched into sub-programs for
// the inner backend, and per-phase corruption is applied to the key
// array between segments so it propagates through later phases exactly
// as a live flipped bit would. Pairs within a phase recover in
// parallel, so a phase's recovery charge is the worst pair's, not the
// sum.
func (r *resilientRun) execute(lo, hi int) error {
	var delta faults.Counters
	pending := r.pending[:0]
	pendingS2 := false // S2 bracket state encoded in the pending stream
	flush := func() error {
		if len(pending) == 0 {
			return nil
		}
		sub := &Program{net: r.prog.net, engine: r.prog.engine, sig: r.prog.sig, ops: pending}
		_, err := r.inner.Run(sub, r.keys)
		pending = pending[:0]
		pendingS2 = false // sub-programs start outside the S2 bracket
		return err
	}
	for w := lo; w < hi; w++ {
		j := r.ex[w]
		op := &r.prog.ops[j]
		kept := make([][2]int, 0, len(op.Pairs))
		phaseExtra := 0
		phaseStalls, phaseRetrans, phaseLost := 0, 0, 0
		for _, pr := range op.Pairs {
			a, b := pr[0], pr[1]
			extra := 0
			alive := true
			// Wait out stalled endpoints, one round per stalled round.
			for round := 0; r.plan.NodeStalledRound(j, round, a) || r.plan.NodeStalledRound(j, round, b); round++ {
				delta.Stalled++
				delta.Injected++
				phaseStalls++
				extra++
				if extra >= pairAttempts {
					alive = false
					break
				}
			}
			// Transmit; dropped exchanges retransmit on later rounds.
			// The epoch rides in the hop slot so retried windows
			// re-roll their retransmissions too.
			if alive {
				dropped := r.plan.PairDropped(r.epoch, j, a, b)
				for att := 1; dropped; att++ {
					delta.Dropped++
					delta.Injected++
					if att >= pairAttempts {
						alive = false
						break
					}
					delta.Retried++
					phaseRetrans++
					extra++
					dropped = r.plan.MessageDropped(j, att, a, b, r.epoch)
				}
			}
			if !alive {
				// This exchange is lost for the phase; the final
				// sortedness scrub and repair passes pick it up.
				delta.Unrecoverable++
				phaseLost++
				continue
			}
			if extra > phaseExtra {
				phaseExtra = extra
			}
			kept = append(kept, pr)
		}
		r.recoveryRounds += phaseExtra
		if r.tracer != nil {
			if phaseStalls > 0 {
				r.trace(obs.Recovery{Kind: obs.RecoveryStallWait, Lo: lo, Hi: hi, Phase: j, Count: phaseStalls})
			}
			if phaseRetrans > 0 {
				r.trace(obs.Recovery{Kind: obs.RecoveryRetransmit, Lo: lo, Hi: hi, Phase: j, Count: phaseRetrans})
			}
			if phaseLost > 0 {
				r.trace(obs.Recovery{Kind: obs.RecoveryUnrecoverable, Lo: lo, Hi: hi, Phase: j, Count: phaseLost})
			}
			if phaseExtra > 0 {
				// Pairs recover in parallel: the phase's round charge is
				// the worst pair's wait, carried by one replay event.
				r.trace(obs.Recovery{Kind: obs.RecoveryReplay, Lo: lo, Hi: hi, Phase: j, Rounds: phaseExtra})
			}
		}
		if len(kept) > 0 {
			// Re-emit S2 bracket markers so a tracing inner backend
			// attributes replayed phases to the right stage.
			if s2 := r.exS2[w]; s2 != pendingS2 {
				marker := OpEndS2
				if s2 {
					marker = OpBeginS2
				}
				pending = append(pending, Op{Kind: marker})
				pendingS2 = s2
			}
			pending = append(pending, Op{Kind: op.Kind, Pairs: kept, Cost: op.Cost, Dim: op.Dim})
		}
		if node, mask, ok := r.plan.Corruption(r.epoch, j, len(r.keys)); ok {
			if err := flush(); err != nil {
				return err
			}
			r.keys[node] ^= simnet.Key(mask)
			delta.Corrupted++
			delta.Injected++
		}
	}
	err := flush()
	r.pending = pending[:0]
	if delta != (faults.Counters{}) {
		r.plan.Add(delta)
	}
	return err
}

// finalClock assembles the replay's clock: the priced base program
// (degraded when links are dead) plus everything recovery cost, with
// the plan's counters attached.
func (r *resilientRun) finalClock() simnet.Clock {
	clk := r.prog.clock
	clk.Rounds += r.recoveryRounds
	clk.RecoveryRounds = r.recoveryRounds
	clk.Faults = r.plan.Counters()
	return clk
}

// degradeProgram binds the plan's dead links against prog's factors
// and, when any link is dead, re-prices every phase on the surviving
// product network: an exchange whose link died becomes a routed
// exchange at its measured detour cost — the graceful degradation to a
// slower program. Returns the priced program (prog itself when no link
// is dead) and the number of pair occurrences forced onto detours.
func degradeProgram(prog *Program, plan *faults.Plan) (*Program, int, error) {
	net := prog.net
	deadTotal := 0
	factors := make([]*graph.Graph, net.R())
	for dim := 1; dim <= net.R(); dim++ {
		dead, err := plan.BindFactor(dim, net.FactorAt(dim))
		if err != nil {
			return nil, 0, err
		}
		deadTotal += len(dead)
		factors[dim-1] = net.FactorAt(dim)
		if sg := plan.SurvivingGraph(dim); sg != nil {
			factors[dim-1] = sg
		}
	}
	if deadTotal == 0 {
		return prog, 0, nil
	}
	surv, err := product.NewHetero(factors)
	if err != nil {
		return nil, 0, fmt.Errorf("schedule: surviving network: %w", err)
	}
	cm := simnet.NewCostModel()
	ops := make([]Op, len(prog.ops))
	var clk simnet.Clock
	inS2 := false
	rerouted := 0
	charge := func(c int) {
		clk.Rounds += c
		if inS2 {
			clk.S2Rounds += c
		} else {
			clk.SweepRounds += c
		}
	}
	for i := range prog.ops {
		op := prog.ops[i]
		switch op.Kind {
		case OpCompareExchange, OpRoutedExchange:
			cost := cm.PhaseCost(surv, op.Pairs)
			kind := OpCompareExchange
			if cost > 1 {
				kind = OpRoutedExchange
				clk.RoutedPhases++
			}
			for _, pr := range op.Pairs {
				if net.Adjacent(pr[0], pr[1]) && !surv.Adjacent(pr[0], pr[1]) {
					rerouted++
				}
			}
			ops[i] = Op{Kind: kind, Pairs: op.Pairs, Cost: cost, Dim: op.Dim}
			clk.ComparePhases++
			clk.CompareOps += len(op.Pairs)
			charge(cost)
		case OpIdle:
			ops[i] = op
			charge(1)
		case OpBeginS2:
			inS2 = true
			ops[i] = op
		case OpEndS2:
			inS2 = false
			ops[i] = op
		case OpS2Marker:
			clk.S2Phases++
			ops[i] = op
		case OpSweepMarker:
			clk.SweepPhases++
			ops[i] = op
		}
	}
	// Execution still targets the original network (the inner backend
	// exchanges over surviving routes); only the pricing degrades.
	return &Program{net: net, engine: prog.engine, sig: prog.sig + "+degraded", ops: ops, clock: clk}, rerouted, nil
}

// snakeSorted reports whether keys (indexed by node id) are
// nondecreasing when read in snake order.
func snakeSorted(net *product.Network, keys []simnet.Key) bool {
	prev := keys[net.NodeAtSnake(0)]
	for pos := 1; pos < len(keys); pos++ {
		k := keys[net.NodeAtSnake(pos)]
		if k < prev {
			return false
		}
		prev = k
	}
	return true
}
