package schedule

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"productsort/internal/graph"
	"productsort/internal/product"
	"productsort/internal/simnet"
	"productsort/internal/sort2d"
)

func compileLifecycle(t *testing.T) *Program {
	t.Helper()
	prog, err := CompileUncached(product.MustNew(graph.K2(), 2), sort2d.Auto{})
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// TestProgramLifecycleTransitions: live -> retired -> freed is one-way
// and each transition reports success exactly once.
func TestProgramLifecycleTransitions(t *testing.T) {
	p := compileLifecycle(t)
	if p.Retired() || p.Freed() {
		t.Fatal("fresh program not live")
	}
	if !p.Retire() {
		t.Fatal("first Retire failed")
	}
	if p.Retire() {
		t.Fatal("second Retire succeeded")
	}
	if !p.Retired() || p.Freed() {
		t.Fatal("retired program misreports state")
	}
	if !p.Free() {
		t.Fatal("first Free failed")
	}
	if p.Free() {
		t.Fatal("second Free succeeded")
	}
	if !p.Retired() || !p.Freed() {
		t.Fatal("freed program misreports state")
	}
}

// TestProgramFreeSkipsRetire: Free straight from live works (owner
// collapse of the two steps) and still runs exactly once.
func TestProgramFreeSkipsRetire(t *testing.T) {
	p := compileLifecycle(t)
	if !p.Free() {
		t.Fatal("Free from live failed")
	}
	if p.Retire() {
		t.Fatal("Retire after Free succeeded")
	}
}

// TestProgramFreeHookExactlyOnce: the hook runs inside the single
// successful Free, even under concurrent Free attempts.
func TestProgramFreeHookExactlyOnce(t *testing.T) {
	p := compileLifecycle(t)
	var runs atomic.Int64
	p.SetFreeHook(func() { runs.Add(1) })
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Free()
		}()
	}
	wg.Wait()
	if got := runs.Load(); got != 1 {
		t.Fatalf("free hook ran %d times, want 1", got)
	}
}

// TestProgramFreeReleasesTables: Free drops the derived tables — the
// memory a resident program actually costs.
func TestProgramFreeReleasesTables(t *testing.T) {
	p := compileLifecycle(t)
	if len(p.LoweredComparators()) == 0 || len(p.SnakePerm()) == 0 || len(p.Ops()) == 0 {
		t.Fatal("compiled program missing derived tables")
	}
	p.Free()
	if p.lowered != nil || p.perm != nil || p.ops != nil {
		t.Fatal("Free left derived tables resident")
	}
}

// TestRunBatchColumnarRejectsFreed: replaying a freed program fails
// loudly with ErrProgramFreed instead of silently not sorting.
func TestRunBatchColumnarRejectsFreed(t *testing.T) {
	p := compileLifecycle(t)
	batch := [][]simnet.Key{{3, 1, 2}}
	if err := RunBatchColumnar(p, batch, 1, nil); err != nil {
		t.Fatalf("live replay: %v", err)
	}
	p.Free()
	if err := RunBatchColumnar(p, batch, 1, nil); !errors.Is(err, ErrProgramFreed) {
		t.Fatalf("freed replay error = %v, want ErrProgramFreed", err)
	}
}

// TestRunBatchColumnarAllowsRetired: a retired (but not freed) program
// still replays — in-flight readers ride out the grace period.
func TestRunBatchColumnarAllowsRetired(t *testing.T) {
	p := compileLifecycle(t)
	p.Retire()
	batch := [][]simnet.Key{{4, 2, 3, 1}}
	if err := RunBatchColumnar(p, batch, 1, nil); err != nil {
		t.Fatalf("retired replay: %v", err)
	}
	for i := 1; i < len(batch[0]); i++ {
		if batch[0][i-1] > batch[0][i] {
			t.Fatal("retired replay produced unsorted output")
		}
	}
}
