// The columnar compare-exchange kernel. This file is the subject of the
// `make bce` gate: it is compiled with -d=ssa/check_bce and the build
// fails if the compiler reports an IsInBounds check anywhere in it —
// the inner loop below must stay free of per-element bounds checks.
// (The per-comparator slicing above the loop is allowed to carry an
// IsSliceInBounds check: it runs once per comparator, amortized over
// the whole column width, not once per element.) Keep this file free of
// anything but the kernel so the gate stays a precise statement about
// the hot loop.

package schedule

import "productsort/internal/simnet"

// applyComparators replays a lowered comparator stream over a column
// slab laid out as width-consecutive keys per snake position (column
// pos is slab[pos*width : (pos+1)*width]). Each comparator becomes one
// tight min/max pass over its two columns — every instance in the
// batch advances through the same comparator together, which is the
// struct-of-arrays dual of the certification engine's 64-instances-
// per-word replay. The loop body is branchless (min/max lower to
// conditional moves on amd64/arm64), so randomly ordered keys cost no
// branch mispredictions, unlike the row kernel's ~50%-taken swap.
func applyComparators(slab []simnet.Key, comps []Comparator, width int) {
	if width <= 0 {
		return
	}
	for _, c := range comps {
		lo := slab[int(c.Lo)*width : int(c.Lo)*width+width]
		hi := slab[int(c.Hi)*width : int(c.Hi)*width+width]
		hi = hi[:len(lo)]
		for s := range lo {
			a, b := lo[s], hi[s]
			lo[s] = min(a, b)
			hi[s] = max(a, b)
		}
	}
}
