// Round-charge accounting at the fault-rate boundaries. Interior
// rates are covered statistically by the chaos tests; these pin the
// exact deterministic ledgers at rate 0 (nothing charged) and rate 1.0
// (every exchange exhausts its retry budget), where the per-pair
// attempt loops, the phase-parallel charge rule, and the repair-pass
// budget all hit their extremes at once.

package schedule

import (
	"errors"
	"testing"

	"productsort/internal/faults"
	"productsort/internal/graph"
	"productsort/internal/product"
	"productsort/internal/simnet"
)

// exchangeStats returns the program's total pair count and the summed
// round cost of its exchange ops — the P and C of the boundary
// ledgers.
func exchangeStats(prog *Program) (pairs, cost int) {
	for i := range prog.ops {
		switch prog.ops[i].Kind {
		case OpCompareExchange, OpRoutedExchange:
			pairs += len(prog.ops[i].Pairs)
			cost += prog.ops[i].Cost
		}
	}
	return pairs, cost
}

// At rate 0 on every axis the plan is quiet and the backend must
// delegate: base clock, zero recovery, zero counters.
func TestResilientBoundaryRateZero(t *testing.T) {
	net := product.MustNew(graph.Path(4), 2)
	prog, err := Compile(net, nil)
	if err != nil {
		t.Fatal(err)
	}
	keys := nodeKeys(net.Nodes(), 3)
	rb := ResilientBackend{Plan: faults.NewPlan(faults.Config{Seed: 5})}
	clk, err := rb.Run(prog, keys)
	if err != nil {
		t.Fatal(err)
	}
	if clk.Rounds != prog.Rounds() || clk.RecoveryRounds != 0 {
		t.Fatalf("rate-0 run charged recovery: rounds %d (base %d), recovery %d",
			clk.Rounds, prog.Rounds(), clk.RecoveryRounds)
	}
	if clk.Faults != (faults.Counters{}) {
		t.Fatalf("rate-0 run counted faults: %+v", clk.Faults)
	}
}

// At DropRate 1.0 every pair burns its full attempt budget on every
// execution and is then abandoned, so the ledger is exact: per
// execution each pair counts pairAttempts drops, pairAttempts-1
// retransmissions, and one unrecoverable loss; the initial run plus
// MaxRepairPasses repair replays gives 4 executions; lost pairs charge
// no phase rounds (nothing was waited out — the exchange simply never
// happened), so recovery cost is exactly the three repair replays of
// the full program; and the run ends unrecoverable because no exchange
// ever commits.
func TestResilientBoundaryDropRateOne(t *testing.T) {
	net := product.MustNew(graph.Path(3), 2)
	prog, err := Compile(net, nil)
	if err != nil {
		t.Fatal(err)
	}
	pairs, cost := exchangeStats(prog)
	keys := nodeKeys(net.Nodes(), 1)
	if snakeSorted(net, keys) {
		t.Fatal("test wants an unsorted input")
	}
	before := append([]simnet.Key(nil), keys...)
	rb := ResilientBackend{Plan: faults.NewPlan(faults.Config{Seed: 2, DropRate: 1})}
	clk, err := rb.Run(prog, keys)
	if !errors.Is(err, ErrUnrecoverable) {
		t.Fatalf("total drop must exhaust recovery, got %v", err)
	}
	executions := 1 + 3 // initial run + default MaxRepairPasses replays
	want := faults.Counters{
		Injected:      executions * pairs * pairAttempts,
		Dropped:       executions * pairs * pairAttempts,
		Retried:       executions * pairs * (pairAttempts - 1),
		Detected:      3, // one sortedness detection per repair pass
		RepairPasses:  3,
		Unrecoverable: executions*pairs + 1, // every pair, every run, plus the final give-up
	}
	if clk.Faults != want {
		t.Fatalf("drop-1.0 ledger:\n got %+v\nwant %+v", clk.Faults, want)
	}
	if wantRec := 3 * cost; clk.RecoveryRounds != wantRec {
		t.Fatalf("recovery rounds %d, want %d (3 repair replays x program cost %d)",
			clk.RecoveryRounds, wantRec, cost)
	}
	if clk.Rounds != prog.Rounds()+clk.RecoveryRounds {
		t.Fatalf("rounds %d != base %d + recovery %d", clk.Rounds, prog.Rounds(), clk.RecoveryRounds)
	}
	// No exchange ever committed: the keys must be untouched.
	for i := range keys {
		if keys[i] != before[i] {
			t.Fatal("dropped exchanges still moved keys")
		}
	}
}

// At StallRate 1.0 the ledger shifts from the drop loop to the stall
// loop — pairAttempts stalled rounds per pair per execution, no
// retransmissions — with the same abandonment, repair and give-up
// structure.
func TestResilientBoundaryStallRateOne(t *testing.T) {
	net := product.MustNew(graph.Path(3), 2)
	prog, err := Compile(net, nil)
	if err != nil {
		t.Fatal(err)
	}
	pairs, cost := exchangeStats(prog)
	keys := nodeKeys(net.Nodes(), 1)
	rb := ResilientBackend{Plan: faults.NewPlan(faults.Config{Seed: 4, StallRate: 1})}
	clk, err := rb.Run(prog, keys)
	if !errors.Is(err, ErrUnrecoverable) {
		t.Fatalf("total stall must exhaust recovery, got %v", err)
	}
	executions := 1 + 3
	want := faults.Counters{
		Injected:      executions * pairs * pairAttempts,
		Stalled:       executions * pairs * pairAttempts,
		Detected:      3,
		RepairPasses:  3,
		Unrecoverable: executions*pairs + 1,
	}
	if clk.Faults != want {
		t.Fatalf("stall-1.0 ledger:\n got %+v\nwant %+v", clk.Faults, want)
	}
	if wantRec := 3 * cost; clk.RecoveryRounds != wantRec {
		t.Fatalf("recovery rounds %d, want %d", clk.RecoveryRounds, wantRec)
	}
}

// A sorted input at DropRate 1.0 is the boundary's boundary: every
// exchange is still lost (and counted), but the sortedness scrub finds
// nothing to repair, so the run succeeds with zero repair passes and
// zero recovery rounds.
func TestResilientBoundaryDropRateOneSortedInput(t *testing.T) {
	net := product.MustNew(graph.Path(3), 2)
	prog, err := Compile(net, nil)
	if err != nil {
		t.Fatal(err)
	}
	pairs, _ := exchangeStats(prog)
	keys := make([]simnet.Key, net.Nodes())
	for pos := range keys {
		keys[net.NodeAtSnake(pos)] = simnet.Key(pos)
	}
	rb := ResilientBackend{Plan: faults.NewPlan(faults.Config{Seed: 6, DropRate: 1})}
	clk, err := rb.Run(prog, keys)
	if err != nil {
		t.Fatalf("sorted input should need no repair: %v", err)
	}
	want := faults.Counters{
		Injected:      pairs * pairAttempts,
		Dropped:       pairs * pairAttempts,
		Retried:       pairs * (pairAttempts - 1),
		Unrecoverable: pairs,
	}
	if clk.Faults != want {
		t.Fatalf("sorted-input ledger:\n got %+v\nwant %+v", clk.Faults, want)
	}
	if clk.RecoveryRounds != 0 {
		t.Fatalf("sorted input charged %d recovery rounds", clk.RecoveryRounds)
	}
}
