// Entry point for emitter-built programs: network families that are not
// constructed by the paper's generalized algorithm (internal/emit) but
// still target the same IR, the same backends, and the same certifier.

package schedule

import "productsort/internal/product"

// NewEmittedProgram assembles a program from an emitter's op list under
// the caller's canonical signature. It is NewProgram with an explicit
// signature: structure is validated, the replay clock is rebuilt from
// the ops' recorded costs, and nothing touches the process-wide cache
// (emitted families manage their own caching, e.g. the serve plan
// store). The engine string names the emitting family ("multiway4",
// "periodic", ...) so tracing and bench artifacts can attribute rounds
// without a side channel.
//
// Emitters host their comparator columns on a 1-D path network
// (product.New(graph.Path(n), 1)), whose snake rank is the identity —
// node id and snake position coincide, so a program emitted in line
// coordinates replays bit-identically through every node-indexed and
// snake-indexed consumer (ExecBackend, RunBatchColumnar, cert.Run).
func NewEmittedProgram(net *product.Network, engine, sig string, ops []Op) (*Program, error) {
	p := &Program{net: net, engine: engine, sig: sig, ops: ops, clock: clockOf(ops)}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}
