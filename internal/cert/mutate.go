// Mutation testing for the certifier itself: derive corrupted-but-valid
// variants of a compiled program so tests can assert the certifier
// rejects every non-equivalent mutant. A verifier that has never been
// shown a broken program proves nothing; this harness is what keeps the
// 0-1 engine honest.

package cert

import (
	"fmt"
	"math/rand"

	"productsort/internal/schedule"
)

// Mutant is one structurally valid corruption of a base program.
type Mutant struct {
	// Name identifies the mutation site, e.g. "swap-lohi@op12.3".
	Name string
	// Operator is the mutation operator that produced it.
	Operator string
	// Prog is the mutated program; it always passes Program.Validate.
	Prog *schedule.Program
}

// Operators names the mutation operators Mutants applies.
var Operators = []string{"drop-op", "swap-lohi", "perturb-endpoint", "reorder-phases", "drop-pair"}

// Mutants generates up to perOp deterministic mutants per operator from
// prog, using a seeded PRNG to pick mutation sites. Every returned
// mutant is a valid program (in-range, node-disjoint pairs); whether it
// still sorts is exactly the question the certifier under test must
// answer. Duplicate sites are not retried, so fewer than perOp mutants
// per operator may be returned on tiny programs.
func Mutants(prog *schedule.Program, perOp int, seed int64) []Mutant {
	rng := rand.New(rand.NewSource(seed))
	ops := prog.Ops()
	var exIdx []int // indices of exchange ops
	for i := range ops {
		switch ops[i].Kind {
		case schedule.OpCompareExchange, schedule.OpRoutedExchange:
			exIdx = append(exIdx, i)
		}
	}
	if len(exIdx) == 0 {
		return nil
	}
	net := prog.Net()
	var out []Mutant
	add := func(operator, site string, mutate func([]schedule.Op) []schedule.Op) {
		mutated := mutate(cloneOps(ops))
		mp, err := schedule.NewProgram(net, prog.Engine(), mutated)
		if err != nil {
			// The operator produced an invalid program — a harness bug,
			// not a legitimate mutant.
			panic(fmt.Sprintf("cert: mutant %s@%s invalid: %v", operator, site, err))
		}
		out = append(out, Mutant{Name: operator + "@" + site, Operator: operator, Prog: mp})
	}

	for m := 0; m < perOp; m++ {
		// drop-op: delete one whole exchange phase.
		i := exIdx[rng.Intn(len(exIdx))]
		add("drop-op", fmt.Sprintf("op%d", i), func(o []schedule.Op) []schedule.Op {
			return append(o[:i], o[i+1:]...)
		})

		// swap-lohi: reverse one comparator's direction (max lands on
		// the lower snake side).
		i = exIdx[rng.Intn(len(exIdx))]
		j := rng.Intn(len(ops[i].Pairs))
		add("swap-lohi", fmt.Sprintf("op%d.%d", i, j), func(o []schedule.Op) []schedule.Op {
			o[i].Pairs[j][0], o[i].Pairs[j][1] = o[i].Pairs[j][1], o[i].Pairs[j][0]
			return o
		})

		// perturb-endpoint: retarget one comparator endpoint to a node
		// the phase does not otherwise touch, keeping the op
		// node-disjoint (and hence valid).
		i = exIdx[rng.Intn(len(exIdx))]
		j = rng.Intn(len(ops[i].Pairs))
		side := rng.Intn(2)
		if node, ok := unusedNode(ops[i].Pairs, net.Nodes(), rng); ok {
			add("perturb-endpoint", fmt.Sprintf("op%d.%d.%d", i, j, side), func(o []schedule.Op) []schedule.Op {
				o[i].Pairs[j][side] = node
				return o
			})
		}

		// reorder-phases: swap the positions of two exchange phases.
		if len(exIdx) >= 2 {
			a := exIdx[rng.Intn(len(exIdx))]
			b := exIdx[rng.Intn(len(exIdx))]
			for b == a {
				b = exIdx[rng.Intn(len(exIdx))]
			}
			add("reorder-phases", fmt.Sprintf("op%d,op%d", a, b), func(o []schedule.Op) []schedule.Op {
				o[a], o[b] = o[b], o[a]
				return o
			})
		}

		// drop-pair: remove one comparator from a multi-pair phase.
		var multi []int
		for _, i := range exIdx {
			if len(ops[i].Pairs) >= 2 {
				multi = append(multi, i)
			}
		}
		if len(multi) > 0 {
			i = multi[rng.Intn(len(multi))]
			j = rng.Intn(len(ops[i].Pairs))
			add("drop-pair", fmt.Sprintf("op%d.%d", i, j), func(o []schedule.Op) []schedule.Op {
				o[i].Pairs = append(o[i].Pairs[:j], o[i].Pairs[j+1:]...)
				return o
			})
		}
	}
	return dedupeMutants(out)
}

// cloneOps deep-copies an op list (ops and their pair slices) so a
// mutation never aliases the base program.
func cloneOps(ops []schedule.Op) []schedule.Op {
	out := make([]schedule.Op, len(ops))
	copy(out, ops)
	for i := range out {
		if out[i].Pairs != nil {
			pairs := make([][2]int, len(out[i].Pairs))
			copy(pairs, out[i].Pairs)
			out[i].Pairs = pairs
		}
	}
	return out
}

// unusedNode picks a node id the phase does not touch.
func unusedNode(pairs [][2]int, nodes int, rng *rand.Rand) (int, bool) {
	used := make(map[int]bool, 2*len(pairs))
	for _, pr := range pairs {
		used[pr[0]] = true
		used[pr[1]] = true
	}
	if len(used) >= nodes {
		return 0, false
	}
	for {
		v := rng.Intn(nodes)
		if !used[v] {
			return v, true
		}
	}
}

// dedupeMutants removes repeats of the same mutation site (the PRNG may
// land on the same spot twice).
func dedupeMutants(ms []Mutant) []Mutant {
	seen := make(map[string]bool, len(ms))
	out := ms[:0]
	for _, m := range ms {
		if seen[m.Name] {
			continue
		}
		seen[m.Name] = true
		out = append(out, m)
	}
	return out
}
