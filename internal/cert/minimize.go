// Counterexample minimization: shrink a failing 0-1 vector to a
// minimal witness (fewest ones, then lexicographically least in snake
// order) and localize the first op that breaks sorted structure.

package cert

// sortsVector replays the program over one 0-1 vector (scalar replay,
// one byte per node) and reports whether the output is sorted along
// the snake; when it is not, failPos is the first snake position p with
// output[p] = 1 and output[p+1] = 0.
func (lay *layout) sortsVector(vec []byte) (sorted bool, failPos int) {
	state := make([]byte, lay.n)
	for p, node := range lay.snake {
		state[node] = vec[p]
	}
	for _, op := range lay.exOps {
		for _, pr := range op.pairs {
			a, b := state[pr[0]], state[pr[1]]
			state[pr[0]] = a & b
			state[pr[1]] = a | b
		}
	}
	for p := 0; p+1 < lay.n; p++ {
		if state[lay.snake[p]] > state[lay.snake[p+1]] {
			return false, p
		}
	}
	return true, -1
}

// fails is the minimizer's predicate.
func (lay *layout) fails(vec []byte) bool {
	sorted, _ := lay.sortsVector(vec)
	return !sorted
}

// minimize shrinks a failing vector in place to a 1-minimal witness:
// first greedily clear ones (any single remaining 1 is then
// load-bearing), then slide the surviving ones toward higher snake
// positions for the lexicographically least failing vector of that
// weight reachable by single-bit moves. Both passes preserve failure,
// so the result is always a genuine counterexample.
func (lay *layout) minimize(vec []byte) []byte {
	if !lay.fails(vec) {
		return vec // not a counterexample; nothing to shrink
	}
	for pass := 0; pass < lay.n; pass++ {
		changed := false
		// Drop pass: clear every 1 that is not needed for failure.
		for p := 0; p < lay.n; p++ {
			if vec[p] == 0 {
				continue
			}
			vec[p] = 0
			if lay.fails(vec) {
				changed = true
			} else {
				vec[p] = 1
			}
		}
		// Lex pass: a 1 moved to a later position makes the vector
		// lexicographically smaller; take the latest landing spot that
		// still fails.
		for p := 0; p < lay.n; p++ {
			if vec[p] == 0 {
				continue
			}
			for q := lay.n - 1; q > p; q-- {
				if vec[q] == 1 {
					continue
				}
				vec[p], vec[q] = 0, 1
				if lay.fails(vec) {
					changed = true
					break
				}
				vec[p], vec[q] = 1, 0
			}
		}
		if !changed {
			break
		}
	}
	return vec
}

// buildWitness minimizes vec and assembles the full witness report.
func buildWitness(lay *layout, vec []byte) *Witness {
	vec = lay.minimize(vec)
	_, failPos := lay.sortsVector(vec)
	ones := 0
	for _, v := range vec {
		ones += int(v)
	}
	// 1-minimality holds by the drop pass's fixpoint; re-verify
	// defensively so the flag never lies.
	minimal := true
	for p := 0; p < lay.n && minimal; p++ {
		if vec[p] == 0 {
			continue
		}
		vec[p] = 0
		if lay.fails(vec) { // still fails with this 1 cleared: not minimal
			minimal = false
		}
		vec[p] = 1
	}
	return &Witness{
		Vector:  vec,
		Ones:    ones,
		FailPos: failPos,
		BreakOp: lay.breakOp(vec),
		Minimal: minimal,
	}
}

// breakOp replays vec and returns the first op index (round-consuming
// exchange ops only) at which the sorted-prefix metric — the length of
// the longest output prefix, in snake order, already holding its final
// sorted value — strictly decreases, or -1 when the metric never
// decreases (the replay then merely stalls short of a full prefix).
func (lay *layout) breakOp(vec []byte) int {
	n := lay.n
	ones := 0
	for _, v := range vec {
		ones += int(v)
	}
	// target[p] is the sorted output: n-ones zeros then ones ones.
	target := make([]byte, n)
	for p := n - ones; p < n; p++ {
		target[p] = 1
	}
	state := make([]byte, n)
	for p, node := range lay.snake {
		state[node] = vec[p]
	}
	prefix := func() int {
		for p := 0; p < n; p++ {
			if state[lay.snake[p]] != target[p] {
				return p
			}
		}
		return n
	}
	prev := prefix()
	for _, op := range lay.exOps {
		for _, pr := range op.pairs {
			a, b := state[pr[0]], state[pr[1]]
			state[pr[0]] = a & b
			state[pr[1]] = a | b
		}
		cur := prefix()
		if cur < prev {
			return op.index
		}
		prev = cur
	}
	return -1
}
