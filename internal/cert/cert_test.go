package cert

import (
	"fmt"
	"testing"

	"productsort/internal/graph"
	"productsort/internal/product"
	"productsort/internal/schedule"
	"productsort/internal/sort2d"
)

// compileNet compiles the product of g^r with the named engine.
func compileNet(t *testing.T, g *graph.Graph, r int, engine string) *schedule.Program {
	t.Helper()
	net, err := product.New(g, r)
	if err != nil {
		t.Fatal(err)
	}
	var e sort2d.Engine
	if engine != "" {
		e, err = sort2d.ByName(engine)
		if err != nil {
			t.Fatal(err)
		}
	}
	prog, err := schedule.Compile(net, e)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func compileHypercube(t *testing.T, r int) *schedule.Program {
	t.Helper()
	return compileNet(t, graph.K2(), r, "")
}

// TestExhaustiveCertifiesBuiltinFamilies is the headline guarantee:
// every built-in factor family / S_2 engine combination inside the
// exhaustive envelope is machine-proved to sort, over all 2^n 0-1
// vectors.
func TestExhaustiveCertifiesBuiltinFamilies(t *testing.T) {
	engines := []string{"auto", "shearsort", "snake-oet"}
	cases := []struct {
		name string
		g    *graph.Graph
		r    int
		opt4 bool // N=2 factor: opt4 applies too
	}{
		{"hypercube^2", graph.K2(), 2, true},
		{"hypercube^3", graph.K2(), 3, true},
		{"hypercube^4", graph.K2(), 4, true},
		{"grid3^2", graph.Path(3), 2, false},
		{"grid4^2", graph.Path(4), 2, false},
		{"torus3^2", graph.Cycle(3), 2, false},
		{"torus4^2", graph.Cycle(4), 2, false},
		{"mct2^2", graph.CompleteBinaryTree(2), 2, false},
		{"debruijn(2,2)^2", graph.DeBruijn(2, 2), 2, false},
		{"shuffle(2)^2", graph.ShuffleExchange(2), 2, false},
	}
	for _, tc := range cases {
		engs := engines
		if tc.opt4 {
			engs = append(engs, "opt4")
		}
		for _, eng := range engs {
			t.Run(fmt.Sprintf("%s/%s", tc.name, eng), func(t *testing.T) {
				prog := compileNet(t, tc.g, tc.r, eng)
				res, err := Run(prog, Options{})
				if err != nil {
					t.Fatal(err)
				}
				if !res.Certified || !res.Exhaustive {
					t.Fatalf("not certified: %+v witness=%v", res, res.Witness)
				}
				n := prog.Net().Nodes()
				if res.Keys != n || res.Vectors != uint64(1)<<n {
					t.Fatalf("coverage accounting wrong: keys=%d vectors=%d", res.Keys, res.Vectors)
				}
				wantWords := (res.Vectors + 63) / 64
				if res.Words != wantWords {
					t.Fatalf("words=%d, want %d", res.Words, wantWords)
				}
				if res.WordOps != res.Words*uint64(res.Comparators) {
					t.Fatalf("wordOps=%d, want words*comparators=%d", res.WordOps, res.Words*uint64(res.Comparators))
				}
				if res.Comparators != prog.Clock().CompareOps {
					t.Fatalf("comparators=%d, clock says %d", res.Comparators, prog.Clock().CompareOps)
				}
			})
		}
	}
}

// TestExhaustiveMatchesOracle cross-checks the bitsliced engine against
// the naive oracle on every vector of a small program — the two
// implementations share no evaluation code.
func TestExhaustiveMatchesOracle(t *testing.T) {
	for _, r := range []int{2, 3} {
		prog := compileHypercube(t, r)
		res, err := Run(prog, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Certified != oracleSortsAll(t, prog) {
			t.Fatalf("r=%d: certifier says %v, oracle disagrees", r, res.Certified)
		}
	}
}

// TestCertifierCatchesBrokenProgram corrupts a known-good program and
// requires a minimized, genuine witness.
func TestCertifierCatchesBrokenProgram(t *testing.T) {
	prog := compileHypercube(t, 3)
	ops := cloneOps(prog.Ops())
	// Reverse the direction of every comparator of the last exchange
	// phase: max now lands on the low snake side.
	for i := len(ops) - 1; i >= 0; i-- {
		if ops[i].Kind == schedule.OpCompareExchange || ops[i].Kind == schedule.OpRoutedExchange {
			for j := range ops[i].Pairs {
				ops[i].Pairs[j][0], ops[i].Pairs[j][1] = ops[i].Pairs[j][1], ops[i].Pairs[j][0]
			}
			break
		}
	}
	broken, err := schedule.NewProgram(prog.Net(), prog.Engine(), ops)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(broken, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Certified {
		t.Fatal("broken program certified")
	}
	w := res.Witness
	if w == nil {
		t.Fatal("no witness for rejected program")
	}
	if oracleSorts(broken, w.Vector) {
		t.Fatalf("witness %v is not a counterexample", w)
	}
	if !w.Minimal {
		t.Fatalf("witness not 1-minimal: %v", w)
	}
	if w.Ones < 1 || w.Ones >= len(w.Vector) {
		t.Fatalf("witness weight %d implausible (all-0/all-1 vectors always sort)", w.Ones)
	}
	if w.FailPos < 0 || w.FailPos >= len(w.Vector)-1 {
		t.Fatalf("failPos %d out of range", w.FailPos)
	}
	if w.BreakOp < -1 || w.BreakOp >= len(broken.Ops()) {
		t.Fatalf("breakOp %d out of range", w.BreakOp)
	}
	// The original program must still certify (the corruption, not the
	// engine, is what failed).
	if good, err := Run(prog, Options{}); err != nil || !good.Certified {
		t.Fatalf("pristine program no longer certifies: %v %v", good, err)
	}
}

// TestSampledMode exercises the sampling path: on a correct program it
// finds no counterexample and reports comparator coverage; on a broken
// one it still produces a witness.
func TestSampledMode(t *testing.T) {
	prog := compileNet(t, graph.Path(3), 3, "auto") // 27 keys: above nothing, forced sampled
	res, err := Run(prog, Options{ForceSampled: true, SampleVectors: 1 << 12, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Certified || res.Exhaustive {
		t.Fatalf("sampled run on correct program: %+v (witness %v)", res, res.Witness)
	}
	if res.Vectors < 1<<12 || res.Words != res.Vectors/64 {
		t.Fatalf("sampled accounting wrong: %+v", res)
	}

	// Corrupt: drop a mid-program phase, then sample. 2^12 uniform
	// vectors on 27 keys all but surely hit a failure for a grossly
	// broken schedule; the seeded run is deterministic either way.
	ops := cloneOps(prog.Ops())
	cut := -1
	seen := 0
	for i := range ops {
		if ops[i].Kind == schedule.OpCompareExchange || ops[i].Kind == schedule.OpRoutedExchange {
			seen++
			if seen == prog.Clock().ComparePhases/2 {
				cut = i
				break
			}
		}
	}
	dropped := append(ops[:cut:cut], ops[cut+1:]...)
	broken, err := schedule.NewProgram(prog.Net(), prog.Engine(), dropped)
	if err != nil {
		t.Fatal(err)
	}
	if !oracleBrokenBySample(broken) {
		t.Skip("dropped phase happened to be redundant for sampled vectors")
	}
	res, err = Run(broken, Options{ForceSampled: true, SampleVectors: 1 << 12, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if res.Certified {
		t.Fatal("sampling certified a program missing a whole phase")
	}
	if res.Witness == nil || oracleSorts(broken, res.Witness.Vector) {
		t.Fatalf("sampled witness bogus: %v", res.Witness)
	}
	if !res.Witness.Minimal {
		t.Fatalf("sampled witness not minimized: %v", res.Witness)
	}
}

// oracleBrokenBySample replays a handful of deterministic 0-1 vectors
// (single-one and half-half patterns) to confirm the corrupted program
// is visibly broken before the sampling assertion relies on it.
func oracleBrokenBySample(prog *schedule.Program) bool {
	n := prog.Net().Nodes()
	vec := make([]byte, n)
	for p := 0; p < n; p++ {
		for q := range vec {
			vec[q] = 0
		}
		vec[p] = 1
		if !oracleSorts(prog, vec) {
			return true
		}
	}
	for p := 0; p < n; p++ {
		vec[p] = byte((p ^ (p >> 1)) & 1)
	}
	return !oracleSorts(prog, vec)
}

// TestDeadComparatorLint appends a comparator that can never exchange
// (it re-compares an adjacent snake pair after the full sort) and
// expects the lint to flag exactly it.
func TestDeadComparatorLint(t *testing.T) {
	prog := compileHypercube(t, 3)
	net := prog.Net()
	ops := cloneOps(prog.Ops())
	lo, hi := net.NodeAtSnake(0), net.NodeAtSnake(1)
	ops = append(ops, schedule.Op{
		Kind:  schedule.OpCompareExchange,
		Pairs: [][2]int{{lo, hi}},
		Cost:  1,
	})
	padded, err := schedule.NewProgram(net, prog.Engine(), ops)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(padded, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Certified {
		t.Fatalf("padded program must still sort: witness %v", res.Witness)
	}
	found := false
	for _, d := range res.Dead {
		if d.Op == len(ops)-1 && d.Lo == lo && d.Hi == hi {
			found = true
		}
	}
	if !found {
		t.Fatalf("appended no-op comparator not reported dead; dead=%v", res.Dead)
	}
}

// TestExhaustiveEnvelope asserts the explicit Exhaustive entry point
// refuses networks beyond the envelope instead of silently sampling.
func TestExhaustiveEnvelope(t *testing.T) {
	prog := compileNet(t, graph.Path(3), 3, "auto") // 27 keys
	if _, err := Exhaustive(prog, Options{MaxExhaustiveKeys: 16}); err == nil {
		t.Fatal("27-key network accepted into a 16-key exhaustive envelope")
	}
	res, err := Run(prog, Options{MaxExhaustiveKeys: 16, SampleVectors: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exhaustive {
		t.Fatal("Run did not fall back to sampled mode above the envelope")
	}
}

// TestWorkerCountsAgree pins determinism across worker counts: the
// verdict and witness must not depend on parallelism.
func TestWorkerCountsAgree(t *testing.T) {
	prog := compileHypercube(t, 4)
	ops := cloneOps(prog.Ops())
	// Corrupt the final exchange phase: reverse its comparators, so
	// the damage cannot be repaired downstream.
	for i := len(ops) - 1; i >= 0; i-- {
		if ops[i].Kind == schedule.OpCompareExchange || ops[i].Kind == schedule.OpRoutedExchange {
			for j := range ops[i].Pairs {
				ops[i].Pairs[j][0], ops[i].Pairs[j][1] = ops[i].Pairs[j][1], ops[i].Pairs[j][0]
			}
			break
		}
	}
	broken, err := schedule.NewProgram(prog.Net(), prog.Engine(), ops)
	if err != nil {
		t.Fatal(err)
	}
	var base *Witness
	for _, workers := range []int{1, 2, 8} {
		res, err := Run(broken, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if res.Certified {
			t.Fatalf("workers=%d certified a broken program", workers)
		}
		if base == nil {
			base = res.Witness
			continue
		}
		if fmt.Sprint(res.Witness) != fmt.Sprint(base) {
			t.Fatalf("witness differs across worker counts: %v vs %v", res.Witness, base)
		}
	}
}
