package cert

import (
	"testing"

	"productsort/internal/graph"
)

// TestMutationHarness is the certifier's own verification: generate
// structural corruptions of known-good programs, classify each with the
// independent oracle (exhaustive naive replay — ground truth by the 0-1
// principle), and require the certifier to
//
//   - reject 100% of non-equivalent mutants, each with a minimized,
//     oracle-confirmed witness, and
//   - certify 100% of equivalent mutants (no false alarms).
//
// The acceptance bar: at least 40 non-equivalent mutants, drawn from at
// least 4 distinct mutation operators.
func TestMutationHarness(t *testing.T) {
	bases := []struct {
		name string
		g    *graph.Graph
		r    int
	}{
		{"hypercube^3", graph.K2(), 3},
		{"grid3^2", graph.Path(3), 2},
		{"torus3^2", graph.Cycle(3), 2},
	}
	const perOp = 16
	nonEquiv := 0
	nonEquivByOp := map[string]int{}
	total := 0
	for _, b := range bases {
		prog := compileNet(t, b.g, b.r, "auto")
		for _, m := range Mutants(prog, perOp, 1) {
			total++
			equivalent := oracleSortsAll(t, m.Prog)
			res, err := Run(m.Prog, Options{})
			if err != nil {
				t.Fatalf("%s/%s: %v", b.name, m.Name, err)
			}
			if equivalent {
				if !res.Certified {
					t.Errorf("%s/%s: equivalent mutant rejected (witness %v)", b.name, m.Name, res.Witness)
				}
				continue
			}
			nonEquiv++
			nonEquivByOp[m.Operator]++
			if res.Certified {
				t.Errorf("%s/%s: non-equivalent mutant certified", b.name, m.Name)
				continue
			}
			w := res.Witness
			if w == nil {
				t.Errorf("%s/%s: rejected without witness", b.name, m.Name)
				continue
			}
			if oracleSorts(m.Prog, w.Vector) {
				t.Errorf("%s/%s: witness %v is not a counterexample", b.name, m.Name, w)
			}
			if !w.Minimal {
				t.Errorf("%s/%s: witness %v not 1-minimal", b.name, m.Name, w)
			}
			// Oracle-check 1-minimality too: clearing any single 1 must
			// yield a vector the mutant sorts.
			for p := range w.Vector {
				if w.Vector[p] == 0 {
					continue
				}
				w.Vector[p] = 0
				if !oracleSorts(m.Prog, w.Vector) {
					t.Errorf("%s/%s: witness %v not minimal per oracle (bit %d removable check failed)",
						b.name, m.Name, w, p)
				}
				w.Vector[p] = 1
			}
		}
	}
	if nonEquiv < 40 {
		t.Errorf("only %d non-equivalent mutants (of %d total); want >= 40 — raise perOp", nonEquiv, total)
	}
	opsWithKills := 0
	for _, n := range nonEquivByOp {
		if n > 0 {
			opsWithKills++
		}
	}
	if opsWithKills < 4 {
		t.Errorf("non-equivalent mutants from only %d operators (%v); want >= 4", opsWithKills, nonEquivByOp)
	}
	t.Logf("mutants: %d total, %d non-equivalent, all caught; per operator: %v", total, nonEquiv, nonEquivByOp)
}

// TestMutantsAreValidAndDeterministic pins the generator contract:
// mutants pass Validate (NewProgram enforces it) and the same seed
// reproduces the same mutant set.
func TestMutantsAreValidAndDeterministic(t *testing.T) {
	prog := compileHypercube(t, 3)
	a := Mutants(prog, 6, 7)
	b := Mutants(prog, 6, 7)
	if len(a) == 0 {
		t.Fatal("no mutants generated")
	}
	if len(a) != len(b) {
		t.Fatalf("mutant counts differ across runs: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name {
			t.Fatalf("mutant %d differs across runs: %s vs %s", i, a[i].Name, b[i].Name)
		}
		if err := a[i].Prog.Validate(); err != nil {
			t.Fatalf("mutant %s invalid: %v", a[i].Name, err)
		}
	}
	// The base program must be untouched by mutation (deep clone).
	if err := prog.Validate(); err != nil {
		t.Fatalf("base program corrupted by mutation: %v", err)
	}
	if res, err := Run(prog, Options{}); err != nil || !res.Certified {
		t.Fatalf("base program no longer certifies after mutant generation: %v %v", res, err)
	}
}
