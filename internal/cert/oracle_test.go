package cert

import (
	"testing"

	"productsort/internal/schedule"
	"productsort/internal/simnet"
)

// The oracle is an independent, naive evaluator of the schedule IR used
// to judge the certifier: plain integer compare-exchange, one vector at
// a time, no bit tricks. Any disagreement between the bitsliced engine
// and this oracle is a certifier bug.

// oracleReplay runs prog over one 0-1 vector (snake order) and returns
// the output in snake order.
func oracleReplay(prog *schedule.Program, vec []byte) []int {
	net := prog.Net()
	n := net.Nodes()
	keys := make([]int, n)
	for p := 0; p < n; p++ {
		keys[net.NodeAtSnake(p)] = int(vec[p])
	}
	for _, op := range prog.Ops() {
		if op.Kind != schedule.OpCompareExchange && op.Kind != schedule.OpRoutedExchange {
			continue
		}
		for _, pr := range op.Pairs {
			if keys[pr[0]] > keys[pr[1]] {
				keys[pr[0]], keys[pr[1]] = keys[pr[1]], keys[pr[0]]
			}
		}
	}
	out := make([]int, n)
	for p := 0; p < n; p++ {
		out[p] = keys[net.NodeAtSnake(p)]
	}
	return out
}

// oracleSorts reports whether prog sorts the one 0-1 vector.
func oracleSorts(prog *schedule.Program, vec []byte) bool {
	out := oracleReplay(prog, vec)
	for p := 1; p < len(out); p++ {
		if out[p] < out[p-1] {
			return false
		}
	}
	return true
}

// oracleSortsAll exhaustively checks all 2^n 0-1 vectors — by the 0-1
// principle, the ground truth for "this program sorts".
func oracleSortsAll(t *testing.T, prog *schedule.Program) bool {
	t.Helper()
	n := prog.Net().Nodes()
	if n > 20 {
		t.Fatalf("oracle is for small networks; %d keys is too many", n)
	}
	vec := make([]byte, n)
	for v := 0; v < 1<<n; v++ {
		for p := 0; p < n; p++ {
			vec[p] = byte((v >> p) & 1)
		}
		if !oracleSorts(prog, vec) {
			return false
		}
	}
	return true
}

// TestOracleMatchesExecBackend ties the oracle's (and hence the
// certifier's) reading of the IR to the real replay backend: both must
// produce identical outputs for identical 0-1 inputs.
func TestOracleMatchesExecBackend(t *testing.T) {
	prog := compileHypercube(t, 3)
	net := prog.Net()
	n := net.Nodes()
	vec := make([]byte, n)
	for v := 0; v < 1<<n; v++ {
		for p := 0; p < n; p++ {
			vec[p] = byte((v >> p) & 1)
		}
		keys := make([]simnet.Key, n)
		for p := 0; p < n; p++ {
			keys[net.NodeAtSnake(p)] = simnet.Key(vec[p])
		}
		if _, err := (schedule.ExecBackend{}).Run(prog, keys); err != nil {
			t.Fatal(err)
		}
		want := oracleReplay(prog, vec)
		for p := 0; p < n; p++ {
			if int(keys[net.NodeAtSnake(p)]) != want[p] {
				t.Fatalf("vector %0*b: backend and oracle disagree at snake pos %d", n, v, p)
			}
		}
	}
}
