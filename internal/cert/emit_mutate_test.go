package cert

import (
	"testing"

	"productsort/internal/emit/multiway"
	"productsort/internal/emit/periodic"
	"productsort/internal/schedule"
	"productsort/internal/simnet"
)

// TestEmittedMutationHarness extends the certifier's mutation battery to
// the emitted network families: the 0-1 engine must be exactly as sharp
// against corrupted multiway and periodic programs as it is against the
// paper's product networks — every non-equivalent mutant rejected with a
// minimized, oracle-confirmed witness, every equivalent mutant certified.
// (Equivalent mutants are common here: periodic columns repeat across
// passes, so reordering or dropping late ops often leaves a program that
// still sorts.)
func TestEmittedMutationHarness(t *testing.T) {
	bases := []struct {
		name string
		prog func() (*schedule.Program, error)
	}{
		{"multiway4[8]", func() (*schedule.Program, error) { return multiway.Emit(8) }},
		{"multiway2[8]", func() (*schedule.Program, error) { return multiway.EmitN(8, 2) }},
		{"periodic[8]", func() (*schedule.Program, error) { return periodic.Emit(8) }},
		{"periodic[16]", func() (*schedule.Program, error) { return periodic.Emit(16) }},
	}
	const perOp = 28
	nonEquiv := 0
	nonEquivByOp := map[string]int{}
	total := 0
	for _, b := range bases {
		prog, err := b.prog()
		if err != nil {
			t.Fatalf("%s: %v", b.name, err)
		}
		for _, m := range Mutants(prog, perOp, 1) {
			total++
			equivalent := oracleSortsAll(t, m.Prog)
			res, err := Run(m.Prog, Options{})
			if err != nil {
				t.Fatalf("%s/%s: %v", b.name, m.Name, err)
			}
			if equivalent {
				if !res.Certified {
					t.Errorf("%s/%s: equivalent mutant rejected (witness %v)", b.name, m.Name, res.Witness)
				}
				continue
			}
			nonEquiv++
			nonEquivByOp[m.Operator]++
			if res.Certified {
				t.Errorf("%s/%s: non-equivalent mutant certified", b.name, m.Name)
				continue
			}
			w := res.Witness
			if w == nil {
				t.Errorf("%s/%s: rejected without witness", b.name, m.Name)
				continue
			}
			if oracleSorts(m.Prog, w.Vector) {
				t.Errorf("%s/%s: witness %v is not a counterexample", b.name, m.Name, w)
			}
			if !w.Minimal {
				t.Errorf("%s/%s: witness %v not 1-minimal", b.name, m.Name, w)
			}
			for p := range w.Vector {
				if w.Vector[p] == 0 {
					continue
				}
				w.Vector[p] = 0
				if !oracleSorts(m.Prog, w.Vector) {
					t.Errorf("%s/%s: witness %v not minimal per oracle (bit %d removable check failed)",
						b.name, m.Name, w, p)
				}
				w.Vector[p] = 1
			}
		}
	}
	if nonEquiv < 40 {
		t.Errorf("only %d non-equivalent mutants (of %d total); want >= 40 — raise perOp", nonEquiv, total)
	}
	opsWithKills := 0
	for _, n := range nonEquivByOp {
		if n > 0 {
			opsWithKills++
		}
	}
	if opsWithKills < 4 {
		t.Errorf("non-equivalent mutants from only %d operators (%v); want >= 4", opsWithKills, nonEquivByOp)
	}
	t.Logf("emitted mutants: %d total, %d non-equivalent, all caught; per operator: %v", total, nonEquiv, nonEquivByOp)
}

// TestEmittedOracleMatchesExecBackend ties the oracle's reading of
// emitted programs to the real replay backend, the same cross-check the
// product families get: identical outputs for identical 0-1 inputs. On
// the path host the snake permutation is the identity, which this test
// transitively re-verifies.
func TestEmittedOracleMatchesExecBackend(t *testing.T) {
	progs := map[string]*schedule.Program{}
	if p, err := multiway.Emit(8); err == nil {
		progs["multiway4[8]"] = p
	} else {
		t.Fatal(err)
	}
	if p, err := periodic.Emit(8); err == nil {
		progs["periodic[8]"] = p
	} else {
		t.Fatal(err)
	}
	for name, prog := range progs {
		net := prog.Net()
		n := net.Nodes()
		vec := make([]byte, n)
		for v := 0; v < 1<<n; v++ {
			for p := 0; p < n; p++ {
				vec[p] = byte((v >> p) & 1)
			}
			keys := make([]simnet.Key, n)
			for p := 0; p < n; p++ {
				keys[net.NodeAtSnake(p)] = simnet.Key(vec[p])
			}
			if _, err := (schedule.ExecBackend{}).Run(prog, keys); err != nil {
				t.Fatal(err)
			}
			want := oracleReplay(prog, vec)
			for p := 0; p < n; p++ {
				if int(keys[net.NodeAtSnake(p)]) != want[p] {
					t.Fatalf("%s: vector %0*b: backend and oracle disagree at snake pos %d", name, n, v, p)
				}
			}
		}
	}
}
