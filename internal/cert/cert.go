// Package cert is the 0-1 certification engine for compiled schedule
// programs: a machine-checked sorting proof per topology.
//
// Every internal/schedule.Program is a data-oblivious comparator
// network — its exchange ops apply (min, max) to fixed node pairs
// regardless of the keys. Knuth's 0-1 principle therefore applies: the
// program sorts all inputs if and only if it sorts all 2^n vectors of
// zeros and ones (THEORY.md §11 states the argument for this IR). On
// 0-1 values a compare-exchange degenerates to pure boolean algebra,
//
//	min(a, b) = a AND b,   max(a, b) = a OR b,
//
// so the certifier packs 64 input vectors into one machine word per
// node and replays the program once per word: each exchange pair costs
// two word operations and certifies 64 inputs at a time. Word blocks
// are spread over parallel workers, and the exhaustive sweep over all
// 2^n vectors is feasible for every built-in factor family with
// n = N^r ≤ ~24 keys in well under a minute.
//
// When a program fails, the engine reports the smallest failing vector
// index and Minimize shrinks it to a minimal witness: fewest ones
// first, then lexicographically least (in snake order), together with
// the first op index at which the sorted-prefix metric breaks — the
// shortest human-checkable refutation the engine can produce.
//
// Above the exhaustive envelope, Sampled mode replays seeded uniform
// random 0-1 vectors instead. A sampled pass cannot prove correctness,
// but it keeps the same witness machinery and adds a coverage lint:
// comparators never observed exchanging across the whole sample are
// reported as dead (on an exhaustive certified pass, a dead comparator
// is provably removable).
package cert

import (
	"fmt"
	"runtime"
	"time"

	"productsort/internal/schedule"
)

// DefaultMaxExhaustiveKeys bounds the exhaustive sweep: 2^24 vectors
// (262144 word blocks) is the largest envelope that stays interactive.
const DefaultMaxExhaustiveKeys = 24

// maxExhaustiveHard is the absolute cap on exhaustive certification;
// beyond it the vector space no longer fits a sane run regardless of
// what the caller asks for.
const maxExhaustiveHard = 30

// DefaultSampleVectors is the sampled-mode default: 2^16 random 0-1
// vectors.
const DefaultSampleVectors = 1 << 16

// Options configures a certification run. The zero value asks for an
// exhaustive proof when the network has at most DefaultMaxExhaustiveKeys
// keys and a DefaultSampleVectors random sweep above that.
type Options struct {
	// Workers is the parallel worker count; <1 selects GOMAXPROCS.
	Workers int
	// MaxExhaustiveKeys is the largest key count certified exhaustively
	// (<1 selects DefaultMaxExhaustiveKeys, capped at 30). Networks with
	// more keys fall back to sampled mode.
	MaxExhaustiveKeys int
	// SampleVectors is the sampled-mode vector count, rounded up to a
	// multiple of 64 (<1 selects DefaultSampleVectors).
	SampleVectors int
	// Seed drives sampled-mode vector generation; runs are reproducible
	// per (program, seed, SampleVectors).
	Seed int64
	// ForceSampled runs sampled mode even inside the exhaustive
	// envelope (used to exercise the sampling path on small networks).
	ForceSampled bool
}

// workers resolves the worker count.
func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// maxExhaustive resolves the exhaustive envelope.
func (o Options) maxExhaustive() int {
	m := o.MaxExhaustiveKeys
	if m < 1 {
		m = DefaultMaxExhaustiveKeys
	}
	return min(m, maxExhaustiveHard)
}

// sampleVectors resolves the sampled-mode vector count.
func (o Options) sampleVectors() int {
	if o.SampleVectors > 0 {
		return o.SampleVectors
	}
	return DefaultSampleVectors
}

// DeadComparator identifies one comparator that was never observed
// exchanging (its lo key was never 1 while its hi key was 0) across the
// certified input set. On an exhaustive certified run this is a proof
// the comparator is removable; on a sampled run it is a lint.
type DeadComparator struct {
	// Op is the op index in the program's instruction stream.
	Op int `json:"op"`
	// Pair is the pair's index within the op.
	Pair int `json:"pair"`
	// Lo and Hi are the pair's node ids.
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// Witness is a concrete 0-1 input the program fails to sort, shrunk by
// Minimize.
type Witness struct {
	// Vector holds the failing input: Vector[p] is the 0/1 key loaded
	// at snake position p.
	Vector []byte `json:"vector"`
	// Ones is the Hamming weight of Vector.
	Ones int `json:"ones"`
	// FailPos is the first snake position p of the replayed output with
	// output[p] = 1 and output[p+1] = 0 — where sortedness visibly
	// breaks.
	FailPos int `json:"failPos"`
	// BreakOp is the first op index at which the sorted-prefix metric
	// (the length of the longest output prefix already holding its
	// final sorted value) strictly decreases during the witness replay,
	// or -1 when the metric never decreases (the program then simply
	// stalls short of a full sorted prefix). It localizes the earliest
	// op that destroys sorted structure on this input.
	BreakOp int `json:"breakOp"`
	// Minimal reports 1-minimality: clearing any single 1 of Vector
	// yields an input the program sorts correctly.
	Minimal bool `json:"minimal"`
}

// String renders the witness vector most-significant-last, matching
// snake order left to right.
func (w *Witness) String() string {
	b := make([]byte, len(w.Vector))
	for i, v := range w.Vector {
		b[i] = '0' + v
	}
	return fmt.Sprintf("%s (ones=%d failPos=%d breakOp=%d)", b, w.Ones, w.FailPos, w.BreakOp)
}

// Result reports one certification run.
type Result struct {
	// Certified is true when every replayed 0-1 vector came out sorted.
	// Only an Exhaustive run turns this into a proof over all inputs.
	Certified bool `json:"certified"`
	// Exhaustive reports whether all 2^Keys vectors were covered.
	Exhaustive bool `json:"exhaustive"`
	// Keys is the network's key (node) count n.
	Keys int `json:"keys"`
	// Vectors is the number of distinct 0-1 inputs certified.
	Vectors uint64 `json:"vectors"`
	// Words is the number of 64-vector word blocks replayed.
	Words uint64 `json:"words"`
	// WordOps is the number of comparator word operations executed —
	// the work the bitsliced engine actually did.
	WordOps uint64 `json:"wordOps"`
	// Ops is the number of round-consuming exchange ops in the program.
	Ops int `json:"ops"`
	// Comparators is the program's total pair count.
	Comparators int `json:"comparators"`
	// Dead lists comparators never observed exchanging; nil when the
	// run aborted on a failure (coverage would be incomplete).
	Dead []DeadComparator `json:"dead,omitempty"`
	// Elapsed is the wall time of the run.
	Elapsed time.Duration `json:"elapsedNs"`
	// Witness is the minimized failing input; nil when Certified.
	Witness *Witness `json:"witness,omitempty"`
}

// Run certifies prog: exhaustively over all 2^n 0-1 vectors when n is
// within the exhaustive envelope, by seeded random sampling otherwise.
// It validates the program's structural invariants first — certification
// is only meaningful over a well-formed IR.
func Run(prog *schedule.Program, opt Options) (*Result, error) {
	if err := prog.Validate(); err != nil {
		return nil, fmt.Errorf("cert: invalid program: %w", err)
	}
	n := prog.Net().Nodes()
	if !opt.ForceSampled && n <= opt.maxExhaustive() {
		return exhaustive(prog, opt)
	}
	return sampled(prog, opt)
}

// Exhaustive certifies prog over all 2^n vectors, failing if n exceeds
// the (resolved) exhaustive envelope.
func Exhaustive(prog *schedule.Program, opt Options) (*Result, error) {
	if err := prog.Validate(); err != nil {
		return nil, fmt.Errorf("cert: invalid program: %w", err)
	}
	if n := prog.Net().Nodes(); n > opt.maxExhaustive() {
		return nil, fmt.Errorf("cert: %d keys exceed the exhaustive envelope of %d", n, opt.maxExhaustive())
	}
	return exhaustive(prog, opt)
}

// Sampled certifies prog over a seeded random 0-1 sample of the input
// space. It never proves correctness; it hunts counterexamples and
// reports comparator coverage.
func Sampled(prog *schedule.Program, opt Options) (*Result, error) {
	if err := prog.Validate(); err != nil {
		return nil, fmt.Errorf("cert: invalid program: %w", err)
	}
	return sampled(prog, opt)
}
