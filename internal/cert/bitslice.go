// The bitsliced 0-1 evaluator: 64 input vectors per word, one AND/OR
// pair per comparator, parallel worker blocks over the vector space.

package cert

import (
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"productsort/internal/schedule"
)

// lowPat[p] is the periodic bit pattern of digit p over one 64-vector
// block: bit j is set iff bit p of j is set. Vector index bits below 6
// cycle inside a 64-aligned block, so initialization needs no per-lane
// work.
var lowPat = [6]uint64{
	0xAAAAAAAAAAAAAAAA,
	0xCCCCCCCCCCCCCCCC,
	0xF0F0F0F0F0F0F0F0,
	0xFF00FF00FF00FF00,
	0xFFFF0000FFFF0000,
	0xFFFFFFFF00000000,
}

// exOp is one flattened exchange op: its index in the program stream
// and its pairs.
type exOp struct {
	index int
	pairs [][2]int
}

// layout caches the program geometry every evaluation needs: the snake
// order (sortedness is judged along it), its inverse, and the flattened
// exchange ops.
type layout struct {
	n           int
	snake       []int // snake[p] = node id at snake position p
	pos         []int // pos[node] = snake position
	exOps       []exOp
	comparators int
}

func newLayout(prog *schedule.Program) *layout {
	net := prog.Net()
	n := net.Nodes()
	lay := &layout{n: n, snake: make([]int, n), pos: make([]int, n)}
	for p := 0; p < n; p++ {
		node := net.NodeAtSnake(p)
		lay.snake[p] = node
		lay.pos[node] = p
	}
	ops := prog.Ops()
	for i := range ops {
		switch ops[i].Kind {
		case schedule.OpCompareExchange, schedule.OpRoutedExchange:
			lay.exOps = append(lay.exOps, exOp{index: i, pairs: ops[i].Pairs})
			lay.comparators += len(ops[i].Pairs)
		}
	}
	return lay
}

// replayWord runs every comparator over one 64-vector word block:
// min = AND, max = OR. cov[k] is set when flattened comparator k was
// observed exchanging (lo carried a 1 while hi carried a 0) in any
// lane.
func (lay *layout) replayWord(words []uint64, cov []bool) {
	k := 0
	for _, op := range lay.exOps {
		for _, pr := range op.pairs {
			wa, wb := words[pr[0]], words[pr[1]]
			if wa&^wb != 0 {
				cov[k] = true
			}
			words[pr[0]] = wa & wb
			words[pr[1]] = wa | wb
			k++
		}
	}
}

// violations returns the lanes whose output is not sorted along the
// snake: bit j is set when some adjacent snake pair holds (1, 0) in
// lane j.
func (lay *layout) violations(words []uint64) uint64 {
	var bad uint64
	prev := words[lay.snake[0]]
	for p := 1; p < lay.n; p++ {
		cur := words[lay.snake[p]]
		bad |= prev &^ cur
		prev = cur
	}
	return bad
}

// deadComparators converts merged coverage into the lint report.
func (lay *layout) deadComparators(cov []bool) []DeadComparator {
	var dead []DeadComparator
	k := 0
	for _, op := range lay.exOps {
		for j, pr := range op.pairs {
			if !cov[k] {
				dead = append(dead, DeadComparator{Op: op.index, Pair: j, Lo: pr[0], Hi: pr[1]})
			}
			k++
		}
	}
	return dead
}

// exhaustive replays all 2^n vectors. Workers own strided block ranges
// and race toward the smallest failing vector index; a worker abandons
// blocks that can no longer improve the current minimum, so the
// reported witness is the global minimum regardless of scheduling.
func exhaustive(prog *schedule.Program, opt Options) (*Result, error) {
	start := time.Now()
	lay := newLayout(prog)
	n := lay.n
	totalVecs := uint64(1) << n
	blocks := (totalVecs + 63) / 64
	if blocks == 0 {
		blocks = 1
	}
	workers := min(opt.workers(), int(blocks))

	var earliest atomic.Uint64
	earliest.Store(math.MaxUint64)
	var wordsDone atomic.Uint64
	covs := make([][]bool, workers)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			words := make([]uint64, n)
			cov := make([]bool, lay.comparators)
			covs[w] = cov
			var done uint64
			for blk := uint64(w); blk < blocks; blk += uint64(workers) {
				base := blk << 6
				if base >= earliest.Load() {
					break
				}
				for node := 0; node < n; node++ {
					p := lay.pos[node]
					if p < 6 {
						words[node] = lowPat[p]
					} else if (base>>p)&1 == 1 {
						words[node] = ^uint64(0)
					} else {
						words[node] = 0
					}
				}
				lay.replayWord(words, cov)
				done++
				if bad := lay.violations(words); bad != 0 {
					vec := base + uint64(bits.TrailingZeros64(bad))
					for {
						cur := earliest.Load()
						if vec >= cur || earliest.CompareAndSwap(cur, vec) {
							break
						}
					}
				}
			}
			wordsDone.Add(done)
		}(w)
	}
	wg.Wait()

	res := &Result{
		Exhaustive:  true,
		Keys:        n,
		Vectors:     totalVecs,
		Words:       wordsDone.Load(),
		WordOps:     wordsDone.Load() * uint64(lay.comparators),
		Ops:         len(lay.exOps),
		Comparators: lay.comparators,
		Elapsed:     time.Since(start),
	}
	if fail := earliest.Load(); fail != math.MaxUint64 {
		vec := make([]byte, n)
		for p := 0; p < n; p++ {
			vec[p] = byte((fail >> p) & 1)
		}
		res.Witness = buildWitness(lay, vec)
		res.Elapsed = time.Since(start)
		return res, nil
	}
	res.Certified = true
	res.Dead = lay.deadComparators(mergeCov(covs, lay.comparators))
	res.Elapsed = time.Since(start)
	return res, nil
}

// sampled replays a seeded uniform random 0-1 sample. Block contents
// are a pure function of (seed, block index), so the run — including
// any witness — is reproducible and independent of worker scheduling:
// workers race toward the lowest failing block index.
func sampled(prog *schedule.Program, opt Options) (*Result, error) {
	start := time.Now()
	lay := newLayout(prog)
	n := lay.n
	vectors := uint64(opt.sampleVectors())
	blocks := (vectors + 63) / 64
	vectors = blocks * 64
	workers := min(opt.workers(), int(blocks))

	var bestBlock atomic.Uint64
	bestBlock.Store(math.MaxUint64)
	var mu sync.Mutex
	var bestVec []byte
	var bestBlockLocked uint64 = math.MaxUint64
	var wordsDone atomic.Uint64
	covs := make([][]bool, workers)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			words := make([]uint64, n)
			initial := make([]uint64, n)
			cov := make([]bool, lay.comparators)
			covs[w] = cov
			var done uint64
			for blk := uint64(w); blk < blocks; blk += uint64(workers) {
				if blk >= bestBlock.Load() {
					break
				}
				rng := splitmix64(uint64(opt.Seed) ^ (blk+1)*0x9E3779B97F4A7C15)
				for node := 0; node < n; node++ {
					x := rng.next()
					words[node] = x
					initial[node] = x
				}
				lay.replayWord(words, cov)
				done++
				if bad := lay.violations(words); bad != 0 {
					lane := bits.TrailingZeros64(bad)
					for {
						cur := bestBlock.Load()
						if blk >= cur {
							break
						}
						if bestBlock.CompareAndSwap(cur, blk) {
							vec := make([]byte, n)
							for p := 0; p < n; p++ {
								vec[p] = byte((initial[lay.snake[p]] >> lane) & 1)
							}
							mu.Lock()
							if blk < bestBlockLocked {
								bestBlockLocked, bestVec = blk, vec
							}
							mu.Unlock()
							break
						}
					}
				}
			}
			wordsDone.Add(done)
		}(w)
	}
	wg.Wait()

	res := &Result{
		Exhaustive:  false,
		Keys:        n,
		Vectors:     wordsDone.Load() * 64,
		Words:       wordsDone.Load(),
		WordOps:     wordsDone.Load() * uint64(lay.comparators),
		Ops:         len(lay.exOps),
		Comparators: lay.comparators,
		Elapsed:     time.Since(start),
	}
	if bestVec != nil {
		res.Witness = buildWitness(lay, bestVec)
		res.Elapsed = time.Since(start)
		return res, nil
	}
	res.Certified = true
	res.Dead = lay.deadComparators(mergeCov(covs, lay.comparators))
	res.Elapsed = time.Since(start)
	return res, nil
}

// mergeCov ORs the per-worker coverage bitmaps. Workers that never ran
// leave a nil slice.
func mergeCov(covs [][]bool, comparators int) []bool {
	merged := make([]bool, comparators)
	for _, cov := range covs {
		for k, hit := range cov {
			if hit {
				merged[k] = true
			}
		}
	}
	return merged
}

// splitmix64 is the SplitMix64 generator: tiny, seedable, and plenty
// uniform for 0-1 sampling.
type splitmix64 uint64

func (s *splitmix64) next() uint64 {
	*s += 0x9E3779B97F4A7C15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
