// Package integration holds cross-module tests: every engine and
// representation (deterministic machine, goroutine executor, SPMD
// message passing, extracted schedule, merge-split blocks) must agree
// on the same inputs, and measured costs must match the analytic model.
package integration

import (
	"math/rand"
	"sort"
	"testing"

	"productsort/internal/baseline"
	"productsort/internal/blocksort"
	"productsort/internal/core"
	"productsort/internal/cost"
	"productsort/internal/graph"
	"productsort/internal/mergenet"
	"productsort/internal/product"
	"productsort/internal/simnet"
	"productsort/internal/sort2d"
	"productsort/internal/spmd"
	"productsort/internal/workload"
)

// configs is the cross-section of factor families exercised end to end.
func configs() []struct {
	g *graph.Graph
	r int
} {
	return []struct {
		g *graph.Graph
		r int
	}{
		{graph.Path(3), 3},
		{graph.Path(4), 2},
		{graph.Cycle(5), 2},
		{graph.K2(), 5},
		{graph.Petersen(), 2},
		{graph.DeBruijn(2, 3), 2},
		{graph.ShuffleExchange(3), 2},
		{graph.CompleteBinaryTree(3), 2},
		{graph.Star(4), 2},
		{graph.Wheel(6), 2},
		{graph.Circulant(8, 1, 3), 2},
		{graph.Kautz(2, 1), 2},
		{graph.Caterpillar(3, []int{1, 1, 1}), 2},
		{graph.HypercubeGraph(2), 2},
	}
}

// TestFiveWaysAgree sorts the same keys five ways and demands identical
// output: simulator, goroutine executor, SPMD engine, schedule replay,
// block sort with block size 1.
func TestFiveWaysAgree(t *testing.T) {
	for _, c := range configs() {
		net := product.MustNew(c.g, c.r)
		keys := workload.Uniform(net.Nodes(), 99)

		m1 := simnet.MustNew(net, make([]simnet.Key, net.Nodes()))
		m1.LoadSnake(keys)
		core.New(nil).Sort(m1)
		ref := m1.SnakeKeys()

		m2 := simnet.MustNew(net, make([]simnet.Key, net.Nodes()))
		m2.LoadSnake(keys)
		m2.SetExecutor(simnet.GoroutineExec{})
		core.New(nil).Sort(m2)

		e, err := spmd.Sort(c.g, c.r, keys, nil)
		if err != nil {
			t.Fatal(err)
		}

		sched := mergenet.MustExtract(c.g, c.r, nil)
		replay := append([]simnet.Key(nil), keys...)
		sched.Apply(replay)

		blocks := append([]simnet.Key(nil), keys...)
		if _, err := blocksort.Sort(sched, blocks, 1); err != nil {
			t.Fatal(err)
		}

		for i := range ref {
			if m2.SnakeKeys()[i] != ref[i] {
				t.Fatalf("%s: goroutine executor diverged at %d", net.Name(), i)
			}
			if e.SnakeKeys()[i] != ref[i] {
				t.Fatalf("%s: SPMD diverged at %d", net.Name(), i)
			}
			if replay[i] != ref[i] {
				t.Fatalf("%s: schedule replay diverged at %d", net.Name(), i)
			}
			if blocks[i] != ref[i] {
				t.Fatalf("%s: blocksort diverged at %d", net.Name(), i)
			}
		}
	}
}

// TestMeasuredCostMatchesModel cross-checks machine accounting against
// the cost package on Hamiltonian factors for every engine.
func TestMeasuredCostMatchesModel(t *testing.T) {
	engines := []sort2d.Engine{sort2d.Shearsort{}, sort2d.SnakeOET{}}
	for _, c := range configs() {
		if !c.g.HamiltonianLabeled() {
			continue
		}
		for _, e := range engines {
			net := product.MustNew(c.g, c.r)
			m := simnet.MustNew(net, make([]simnet.Key, net.Nodes()))
			m.LoadSnake(workload.Permutation(net.Nodes(), 5))
			core.New(e).Sort(m)
			clk := m.Clock()
			want := cost.SortTime(c.r, e.Rounds(c.g.N()), 1)
			if clk.Rounds != want {
				t.Errorf("%s/%s: rounds %d want %d", net.Name(), e.Name(), clk.Rounds, want)
			}
			cost.Check(c.r, clk.S2Phases, clk.SweepPhases)
			if !m.IsSortedSnake() {
				t.Errorf("%s/%s: unsorted", net.Name(), e.Name())
			}
		}
	}
}

// TestEveryWorkloadEveryFamily is the broad correctness sweep: all ten
// workload generators across all fourteen factor families.
func TestEveryWorkloadEveryFamily(t *testing.T) {
	s := core.New(nil)
	for _, c := range configs() {
		net := product.MustNew(c.g, c.r)
		for _, name := range workload.Names() {
			gen, err := workload.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			keys := gen(net.Nodes(), 31)
			m := simnet.MustNew(net, make([]simnet.Key, net.Nodes()))
			m.LoadSnake(keys)
			s.Sort(m)
			if !m.IsSortedSnake() {
				t.Fatalf("%s workload %s: unsorted", net.Name(), name)
			}
			got := m.SnakeKeys()
			want := baseline.SequentialSortedCopy(keys)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s workload %s: multiset changed", net.Name(), name)
				}
			}
		}
	}
}

// TestScheduleDepthBoundedByTheorem1: schedule depth never exceeds the
// Theorem 1 phase-time product (it is lower when phases are empty).
func TestScheduleDepthBoundedByTheorem1(t *testing.T) {
	for _, c := range configs() {
		s := mergenet.MustExtract(c.g, c.r, sort2d.Shearsort{})
		bound := cost.SortTime(c.r, (sort2d.Shearsort{}).Rounds(c.g.N()), 1)
		if s.Depth() > bound {
			t.Errorf("%s: schedule depth %d > Theorem 1 bound %d", s.Network, s.Depth(), bound)
		}
	}
}

// TestBigBlockEndToEnd: 100k+ keys through a 64-processor schedule.
func TestBigBlockEndToEnd(t *testing.T) {
	sched := mergenet.MustExtract(graph.K2(), 6, nil)
	const block = 2048 // 131072 keys total
	rng := rand.New(rand.NewSource(17))
	keys := make([]simnet.Key, sched.Inputs*block)
	for i := range keys {
		keys[i] = simnet.Key(rng.Int63n(1 << 40))
	}
	want := append([]simnet.Key(nil), keys...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	st, err := blocksort.Sort(sched, keys, block)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("big block sort mismatch at %d", i)
		}
	}
	if st.Rounds != sched.Depth() {
		t.Errorf("rounds %d != depth %d", st.Rounds, sched.Depth())
	}
}

// TestDeepDimensionStress sorts on r=6 (729 nodes) and r=8 hypercube
// (256 nodes) to exercise deep merge recursions.
func TestDeepDimensionStress(t *testing.T) {
	for _, c := range []struct {
		g *graph.Graph
		r int
	}{
		{graph.Path(3), 6},
		{graph.K2(), 8},
	} {
		net := product.MustNew(c.g, c.r)
		keys := workload.Permutation(net.Nodes(), 12)
		m := simnet.MustNew(net, make([]simnet.Key, net.Nodes()))
		m.LoadSnake(keys)
		core.New(nil).Sort(m)
		if !m.IsSortedSnake() {
			t.Fatalf("%s: unsorted", net.Name())
		}
		clk := m.Clock()
		cost.Check(c.r, clk.S2Phases, clk.SweepPhases)
	}
}

// TestLargeScaleStress pushes the simulator to sizes the experiments
// keep modest: a 16³ grid (4096 processors) and a 12-dimensional
// hypercube (4096 processors). Skipped with -short.
func TestLargeScaleStress(t *testing.T) {
	if testing.Short() {
		t.Skip("large-scale stress")
	}
	for _, c := range []struct {
		g *graph.Graph
		r int
	}{
		{graph.Path(16), 3},
		{graph.K2(), 12},
	} {
		net := product.MustNew(c.g, c.r)
		keys := workload.Uniform(net.Nodes(), 4)
		m := simnet.MustNew(net, make([]simnet.Key, net.Nodes()))
		m.LoadSnake(keys)
		core.New(nil).Sort(m)
		if !m.IsSortedSnake() {
			t.Fatalf("%s: unsorted", net.Name())
		}
		clk := m.Clock()
		cost.Check(c.r, clk.S2Phases, clk.SweepPhases)
		t.Logf("%s: %d processors sorted in %d rounds", net.Name(), net.Nodes(), clk.Rounds)
	}
}

// TestHeteroEndToEnd: heterogeneous networks through every execution
// path at once.
func TestHeteroEndToEnd(t *testing.T) {
	net := product.MustNewHetero([]*graph.Graph{graph.Path(3), graph.Cycle(4), graph.K2()})
	keys := workload.Uniform(net.Nodes(), 8)

	m := simnet.MustNew(net, make([]simnet.Key, net.Nodes()))
	m.LoadSnake(keys)
	core.New(nil).Sort(m)
	ref := m.SnakeKeys()

	e, err := spmd.SortNet(net, keys, nil)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := mergenet.ExtractNet(net, nil)
	if err != nil {
		t.Fatal(err)
	}
	replay := append([]simnet.Key(nil), keys...)
	sched.Apply(replay)
	blocks := append([]simnet.Key(nil), keys...)
	if _, err := blocksort.Sort(sched, blocks, 1); err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		if e.SnakeKeys()[i] != ref[i] || replay[i] != ref[i] || blocks[i] != ref[i] {
			t.Fatalf("hetero paths diverge at %d", i)
		}
	}
}
