package integration

import (
	"math/rand"
	"testing"

	"productsort/internal/faults"
	"productsort/internal/graph"
	"productsort/internal/product"
	"productsort/internal/schedule"
	"productsort/internal/simnet"
	"productsort/internal/spmd"
)

// TestResilientBackendsAgreeUnderFaults is the recovery-layer
// determinism contract: the resilient wrapper realizes the fault plan
// above its inner backend, so the SAME fault seed must yield
// byte-identical recovered keys and identical recovery counters whether
// the surviving exchanges run on the in-place executor or on the SPMD
// message-passing engine.
func TestResilientBackendsAgreeUnderFaults(t *testing.T) {
	cfgs := []struct {
		g *graph.Graph
		r int
	}{
		{graph.Path(4), 2},
		{graph.Cycle(5), 2},
		{graph.CompleteBinaryTree(3), 2}, // relayed exchanges inside spmd
		{graph.Star(4), 2},
	}
	for _, c := range cfgs {
		net := product.MustNew(c.g, c.r)
		prog, err := schedule.Compile(net, nil)
		if err != nil {
			t.Fatal(err)
		}
		cfg := faults.Config{Seed: 42, DropRate: 0.04, StallRate: 0.02, CorruptRate: 0.04}
		run := func(inner schedule.Backend) ([]simnet.Key, simnet.Clock) {
			rng := rand.New(rand.NewSource(17))
			keys := make([]simnet.Key, net.Nodes())
			for i := range keys {
				keys[i] = simnet.Key(rng.Intn(1000))
			}
			rb := schedule.ResilientBackend{Inner: inner, Plan: faults.NewPlan(cfg)}
			clk, err := rb.Run(prog, keys)
			if err != nil {
				t.Fatalf("%s: %v (counters %+v)", net.Name(), err, clk.Faults)
			}
			return keys, clk
		}
		kExec, cExec := run(schedule.ExecBackend{})
		kSPMD, cSPMD := run(spmd.Backend{})
		if cExec != cSPMD {
			t.Fatalf("%s: clocks diverged across backends:\nexec %+v\nspmd %+v", net.Name(), cExec, cSPMD)
		}
		if cExec.Faults.Injected == 0 {
			t.Errorf("%s: plan injected nothing", net.Name())
		}
		for i := range kExec {
			if kExec[i] != kSPMD[i] {
				t.Fatalf("%s: recovered keys diverged at node %d: %d vs %d",
					net.Name(), i, kExec[i], kSPMD[i])
			}
		}
	}
}
