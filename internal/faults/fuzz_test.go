package faults

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// FuzzScrubDetectsCorruption fuzzes fault plans over key arrays and
// pins the scrub contract: after plan-driven corruption, either the
// checksum scrub detects the damage, or the key multiset is unchanged —
// in which case the "corruption" is observationally harmless (the
// machine holds exactly the multiset it started with). There is no
// third outcome: silent, multiset-altering corruption must always trip
// the scrub.
func FuzzScrubDetectsCorruption(f *testing.F) {
	f.Add(int64(1), 0.05, uint8(32), uint8(12), uint8(3))
	f.Add(int64(99), 1.0, uint8(4), uint8(30), uint8(0))
	f.Add(int64(-7), 0.5, uint8(200), uint8(1), uint8(9))
	f.Fuzz(func(t *testing.T, seed int64, rate float64, n, phases, epochs uint8) {
		if math.IsNaN(rate) || math.IsInf(rate, 0) {
			t.Skip()
		}
		if rate < 0 {
			rate = -rate
		}
		if rate > 1 {
			rate = math.Mod(rate, 1)
		}
		nodes := int(n)%128 + 2
		nPhases := int(phases)%48 + 1
		nEpochs := int(epochs)%8 + 1

		rng := rand.New(rand.NewSource(seed))
		keys := make([]Key, nodes)
		for i := range keys {
			keys[i] = rng.Int63() - rng.Int63()
		}
		orig := append([]Key(nil), keys...)
		sum0 := ChecksumKeys(keys)

		plan := NewPlan(Config{Seed: seed, CorruptRate: rate})
		injected := 0
		for epoch := 0; epoch < nEpochs; epoch++ {
			for phase := 0; phase < nPhases; phase++ {
				if node, mask, ok := plan.Corruption(epoch, phase, nodes); ok {
					if mask == 0 {
						t.Fatal("corruption fired with a zero mask")
					}
					keys[node] ^= mask
					injected++
				}
			}
		}

		if injected == 0 {
			if ChecksumKeys(keys) != sum0 {
				t.Fatal("checksum changed with no injected corruption")
			}
			return
		}
		if ChecksumKeys(keys) != sum0 {
			return // detected: the scrub caught the corruption
		}
		// Undetected: assert the damage is observationally harmless.
		a := append([]Key(nil), keys...)
		b := append([]Key(nil), orig...)
		sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
		sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("scrub missed multiset-altering corruption: %d injected flips, first diff at sorted index %d", injected, i)
			}
		}
	})
}

// FuzzFaultPlanDeterminism fuzzes plan decisions across every fault
// class and asserts a same-config plan reproduces them exactly.
func FuzzFaultPlanDeterminism(f *testing.F) {
	f.Add(int64(3), 0.1, 0.2, 0.3, uint8(20))
	f.Fuzz(func(t *testing.T, seed int64, drop, stall, dup float64, phases uint8) {
		for _, r := range []*float64{&drop, &stall, &dup} {
			if math.IsNaN(*r) || math.IsInf(*r, 0) {
				t.Skip()
			}
			if *r < 0 {
				*r = -*r
			}
			if *r > 1 {
				*r = math.Mod(*r, 1)
			}
		}
		cfg := Config{Seed: seed, DropRate: drop, StallRate: stall, DupRate: dup}
		a, b := NewPlan(cfg), NewPlan(cfg)
		for phase := 0; phase < int(phases)%64+1; phase++ {
			if a.PairDropped(1, phase, 0, 5) != b.PairDropped(1, phase, 0, 5) ||
				a.NodeStalled(1, phase, 2) != b.NodeStalled(1, phase, 2) ||
				a.NodeStalledRound(phase, 3, 2) != b.NodeStalledRound(phase, 3, 2) ||
				a.MessageDropped(phase, 0, 1, 4, 2) != b.MessageDropped(phase, 0, 1, 4, 2) ||
				a.MessageDuplicated(phase, 0, 1, 4, 2) != b.MessageDuplicated(phase, 0, 1, 4, 2) {
				t.Fatal("same-config plans disagree")
			}
		}
	})
}
