// Scrubbing: cheap invariants a recovery layer can verify after a
// replay window to decide whether injected corruption slipped through.
//
// Compare-exchange networks only ever permute keys, so the key multiset
// is invariant across any prefix of a (possibly fault-skipped) replay.
// The scrub checksum tracks three multiset invariants: the wrapping sum
// and XOR of all keys, and the wrapping sum of a 64-bit hash of each
// key. Sum and Xor alone detect any single bit flip but cancel under
// paired flips at the same bit position (one key gains 2^b, another
// loses it); the hashed sum closes that hole — canceling it requires a
// colliding hash-delta pair, a 2⁻⁶⁴ event no plan-driven fault mix
// produces. A corruption that preserves the multiset itself (e.g. a
// flip later undone) is observationally harmless: the machine holds
// the same multiset it started with. The fuzz target
// FuzzScrubDetectsCorruption pins exactly this contract: detected or
// harmless, never silent.

package faults

// Checksum is an order-independent digest of a key multiset: invariant
// under compare-exchange, changed by (practically) any corruption.
type Checksum struct {
	// Sum is the wrapping int64 sum of all keys.
	Sum Key
	// Xor is the bitwise XOR of all keys.
	Xor Key
	// Hash is the wrapping sum of splitmix64 over each key: the
	// component that survives structured flip patterns Sum and Xor
	// cancel on.
	Hash uint64
}

// ChecksumKeys digests the key slice. O(n), allocation-free.
func ChecksumKeys(keys []Key) Checksum {
	var c Checksum
	for _, k := range keys {
		c.Sum += k
		c.Xor ^= k
		c.Hash += splitmix64(uint64(k))
	}
	return c
}
