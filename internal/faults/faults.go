// Package faults is the deterministic fault-injection subsystem: a
// seeded Plan decides — purely as a function of (seed, epoch, phase,
// coordinates) — which links are dead, which messages are dropped or
// duplicated, which nodes stall, and which keys suffer bit flips. No
// mutable RNG state is consumed by decisions, so the same plan yields
// the same fault realization regardless of evaluation order or
// goroutine scheduling: the simulator executor (simnet.FaultExec), the
// schedule-level resilient replay (schedule.ResilientBackend), and the
// message-passing engine (spmd) all observe one coherent fault world
// per seed.
//
// The paper's cost model assumes a perfectly synchronous, failure-free
// machine; this package is where that assumption is deliberately
// broken, so the recovery layers can be charged honestly in the same
// round units (extra recovery rounds accrue on the clock, see
// schedule.ResilientBackend).
package faults

import (
	"fmt"
	"sync"

	"productsort/internal/graph"
	"productsort/internal/routing"
)

// Key mirrors simnet.Key (int64) without importing simnet, because
// simnet wraps fault plans into its executors.
type Key = int64

// FactorEdge names one factor-graph edge of a product network:
// dimension dim (1-based), factor endpoints U and V.
type FactorEdge struct {
	Dim, U, V int
}

// Config parameterizes a fault plan. All rates are probabilities in
// [0, 1]; the zero Config injects nothing (Quiet reports true).
type Config struct {
	// Seed drives every decision. Two plans with equal configs are
	// indistinguishable.
	Seed int64
	// DropRate is, per compare-exchange pair per phase (schedule level)
	// or per message hop (spmd message level), the probability the
	// exchange's key transfer is lost.
	DropRate float64
	// StallRate is, per (phase, node), the probability the node misses
	// the phase (its pair does not commit; in the message engine it
	// skips one forwarding round).
	StallRate float64
	// CorruptRate is, per phase, the probability that one key — at a
	// seed-chosen node — suffers a single bit flip.
	CorruptRate float64
	// DupRate is, per message hop (spmd message level only), the
	// probability a relayed message is duplicated in flight.
	DupRate float64
	// LinkFailRate is, per factor edge per dimension, the probability
	// the link is permanently dead for the whole computation. Edges
	// whose removal would disconnect the factor are spared, so routing
	// around the surviving graph always remains possible.
	LinkFailRate float64
	// MaxDeadLinks caps the rate-chosen dead links per dimension;
	// 0 means no cap. Forced DeadLinks do not count against the cap.
	MaxDeadLinks int
	// DeadLinks lists factor edges that are unconditionally dead
	// (deterministic chaos scenarios and tests).
	DeadLinks []FactorEdge
}

// Quiet reports whether the config injects no faults at all, letting
// callers keep the fault-free hot path untouched.
func (c Config) Quiet() bool {
	return c.DropRate == 0 && c.StallRate == 0 && c.CorruptRate == 0 &&
		c.DupRate == 0 && c.LinkFailRate == 0 && len(c.DeadLinks) == 0
}

// Counters aggregates fault-injection and recovery events. Injection
// counters are maintained by whichever layer realizes the fault;
// recovery counters by the resilient replay. The struct is comparable,
// so tests can assert deterministic recovery with ==.
type Counters struct {
	// Injected totals every injected fault event (drops, stalls,
	// corruptions, duplicates, dead links).
	Injected int
	// Dropped counts lost key transfers (pair exchanges at schedule
	// level, message copies at spmd level).
	Dropped int
	// Stalled counts phase participations lost to stalled nodes.
	Stalled int
	// Corrupted counts injected key bit flips.
	Corrupted int
	// Duplicated counts in-flight message duplications.
	Duplicated int
	// DeadLinks counts permanently failed factor edges.
	DeadLinks int
	// Detected counts scrub detections (checksum or sortedness).
	Detected int
	// Retried counts checkpoint-window retries and message
	// retransmissions.
	Retried int
	// RepairPasses counts full-program scrub-and-repair replays.
	RepairPasses int
	// Rerouted counts exchanges or message hops that had to route
	// around a dead link.
	Rerouted int
	// Unrecoverable counts faults that exhausted their retry budget.
	Unrecoverable int
}

// add accumulates d into c.
func (c *Counters) add(d Counters) {
	c.Injected += d.Injected
	c.Dropped += d.Dropped
	c.Stalled += d.Stalled
	c.Corrupted += d.Corrupted
	c.Duplicated += d.Duplicated
	c.DeadLinks += d.DeadLinks
	c.Detected += d.Detected
	c.Retried += d.Retried
	c.RepairPasses += d.RepairPasses
	c.Rerouted += d.Rerouted
	c.Unrecoverable += d.Unrecoverable
}

// Plan is a bound fault plan: pure decision functions over the config
// seed plus counters and per-dimension dead-link state. Decision
// methods are safe for concurrent use; Add and BindFactor serialize on
// an internal mutex.
type Plan struct {
	cfg Config

	mu       sync.Mutex
	counters Counters
	dims     map[int]*dimState
}

// dimState is the dead-link state of one dimension.
type dimState struct {
	g       *graph.Graph
	dead    map[[2]int]bool
	survive *graph.Graph  // nil when no links died
	plan    *routing.Plan // forwarding on the surviving graph
}

// NewPlan binds a config into a plan with zeroed counters.
func NewPlan(cfg Config) *Plan {
	return &Plan{cfg: cfg, dims: make(map[int]*dimState)}
}

// Config returns the plan's configuration.
func (p *Plan) Config() Config { return p.cfg }

// Add merges a counter delta into the plan (concurrency-safe).
func (p *Plan) Add(d Counters) {
	p.mu.Lock()
	p.counters.add(d)
	p.mu.Unlock()
}

// Counters returns a snapshot of the accumulated counters.
func (p *Plan) Counters() Counters {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.counters
}

// Domain-separation tags keep independent fault classes from sharing
// hash streams.
const (
	tagPairDrop uint64 = 1 + iota
	tagStall
	tagStallRound
	tagCorrupt
	tagCorruptWhere
	tagMsgDrop
	tagMsgDup
	tagLink
)

// splitmix64 is the finalizer of the SplitMix64 generator: a strong
// 64-bit mixing function.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// mix folds the seed and the given coordinates into one hash value.
func (p *Plan) mix(parts ...uint64) uint64 {
	x := splitmix64(uint64(p.cfg.Seed) ^ 0x6a09e667f3bcc908)
	for _, part := range parts {
		x = splitmix64(x ^ part)
	}
	return x
}

// roll maps a hash to uniform [0, 1).
func (p *Plan) roll(parts ...uint64) float64 {
	return float64(p.mix(parts...)>>11) / (1 << 53)
}

// PairDropped reports whether the compare-exchange of (lo, hi) at the
// given (epoch, phase) loses its key transfer.
func (p *Plan) PairDropped(epoch, phase, lo, hi int) bool {
	if p.cfg.DropRate <= 0 {
		return false
	}
	return p.roll(tagPairDrop, uint64(epoch), uint64(phase), uint64(lo), uint64(hi)) < p.cfg.DropRate
}

// NodeStalled reports whether node misses the given (epoch, phase).
func (p *Plan) NodeStalled(epoch, phase, node int) bool {
	if p.cfg.StallRate <= 0 {
		return false
	}
	return p.roll(tagStall, uint64(epoch), uint64(phase), uint64(node)) < p.cfg.StallRate
}

// NodeStalledRound reports whether node skips one forwarding round of
// the message engine (keyed by round so a stalled node recovers on a
// later round rather than deadlocking).
func (p *Plan) NodeStalledRound(phase, round, node int) bool {
	if p.cfg.StallRate <= 0 {
		return false
	}
	return p.roll(tagStallRound, uint64(phase), uint64(round), uint64(node)) < p.cfg.StallRate
}

// Corruption decides whether the given (epoch, phase) corrupts a key:
// when it fires it returns the afflicted node (uniform over nodes) and
// a single-bit XOR mask.
func (p *Plan) Corruption(epoch, phase, nodes int) (node int, mask Key, ok bool) {
	if p.cfg.CorruptRate <= 0 || nodes <= 0 {
		return 0, 0, false
	}
	if p.roll(tagCorrupt, uint64(epoch), uint64(phase)) >= p.cfg.CorruptRate {
		return 0, 0, false
	}
	h := p.mix(tagCorruptWhere, uint64(epoch), uint64(phase))
	node = int(h % uint64(nodes))
	bit := (h >> 33) % 63
	return node, Key(1) << bit, true
}

// MessageDropped reports whether a message from origin to dst is lost
// on its hop-th hop of the given attempt (spmd message level). Keying
// by the message's own path coordinates — never by which round the
// scheduler happened to deliver it in — keeps the realization
// deterministic under arbitrary goroutine interleavings.
func (p *Plan) MessageDropped(phase, attempt, origin, dst, hop int) bool {
	if p.cfg.DropRate <= 0 {
		return false
	}
	return p.roll(tagMsgDrop, uint64(phase), uint64(attempt), uint64(origin), uint64(dst), uint64(hop)) < p.cfg.DropRate
}

// MessageDuplicated reports whether a message from origin to dst is
// duplicated on its hop-th hop of the given attempt.
func (p *Plan) MessageDuplicated(phase, attempt, origin, dst, hop int) bool {
	if p.cfg.DupRate <= 0 {
		return false
	}
	return p.roll(tagMsgDup, uint64(phase), uint64(attempt), uint64(origin), uint64(dst), uint64(hop)) < p.cfg.DupRate
}

// BindFactor registers dimension dim's factor graph and decides its
// dead links: forced DeadLinks for the dimension plus rate-chosen
// edges, in deterministic edge order. Edges whose removal would
// disconnect the current surviving graph are spared (forced ones are an
// error — the caller explicitly demanded the impossible), so the
// surviving factor always stays connected and reroutable. Returns the
// dead edges. Binding the same dimension twice returns the first
// decision.
func (p *Plan) BindFactor(dim int, g *graph.Graph) ([][2]int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if st, ok := p.dims[dim]; ok {
		return deadList(st.dead), nil
	}
	st := &dimState{g: g, dead: make(map[[2]int]bool)}
	alive := make(map[[2]int]bool, len(g.Edges()))
	for _, e := range g.Edges() {
		alive[normEdge(e[0], e[1])] = true
	}
	kill := func(u, v int, forced bool) error {
		e := normEdge(u, v)
		if !alive[e] {
			if forced {
				return fmt.Errorf("faults: dead link dim %d (%d,%d) is not an edge of %s", dim, u, v, g.Name())
			}
			return nil
		}
		delete(alive, e)
		if !connectedUnder(g, alive) {
			alive[e] = true // spare: removal would disconnect the factor
			if forced {
				return fmt.Errorf("faults: dead link dim %d (%d,%d) would disconnect %s", dim, u, v, g.Name())
			}
			return nil
		}
		st.dead[e] = true
		return nil
	}
	for _, fe := range p.cfg.DeadLinks {
		if fe.Dim != dim {
			continue
		}
		if err := kill(fe.U, fe.V, true); err != nil {
			return nil, err
		}
	}
	if p.cfg.LinkFailRate > 0 {
		for _, e := range g.Edges() {
			if p.cfg.MaxDeadLinks > 0 && len(st.dead) >= p.cfg.MaxDeadLinks {
				break
			}
			if p.roll(tagLink, uint64(dim), uint64(e[0]), uint64(e[1])) < p.cfg.LinkFailRate {
				if err := kill(e[0], e[1], false); err != nil {
					return nil, err
				}
			}
		}
	}
	if len(st.dead) > 0 {
		edges := make([][2]int, 0, len(alive))
		for _, e := range g.Edges() {
			if alive[normEdge(e[0], e[1])] {
				edges = append(edges, e)
			}
		}
		sg, err := graph.New(fmt.Sprintf("%s-degraded", g.Name()), g.N(), edges)
		if err != nil {
			return nil, fmt.Errorf("faults: surviving graph of dim %d: %w", dim, err)
		}
		st.survive = sg
		st.plan = routing.NewPlan(sg)
		p.counters.add(Counters{Injected: len(st.dead), DeadLinks: len(st.dead)})
	}
	p.dims[dim] = st
	return deadList(st.dead), nil
}

// LinkDead reports whether the dimension-dim factor edge (u, v) is
// dead. Dimensions must have been bound first.
func (p *Plan) LinkDead(dim, u, v int) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.dims[dim]
	return st != nil && st.dead[normEdge(u, v)]
}

// SurvivingGraph returns dimension dim's factor graph with dead links
// removed, or nil when the dimension is intact (or unbound).
func (p *Plan) SurvivingGraph(dim int) *graph.Graph {
	p.mu.Lock()
	defer p.mu.Unlock()
	if st := p.dims[dim]; st != nil {
		return st.survive
	}
	return nil
}

// SurvivingPlan returns the BFS forwarding plan on dimension dim's
// surviving factor graph, or nil when the dimension is intact. The
// plan's NextHop tables route strictly over surviving edges.
func (p *Plan) SurvivingPlan(dim int) *routing.Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	if st := p.dims[dim]; st != nil {
		return st.plan
	}
	return nil
}

// normEdge orders an undirected edge canonically.
func normEdge(u, v int) [2]int {
	if u > v {
		u, v = v, u
	}
	return [2]int{u, v}
}

// deadList flattens a dead-edge set into sorted-insertion order (the
// map is small; order normalized by re-sorting the canonical pairs).
func deadList(dead map[[2]int]bool) [][2]int {
	out := make([][2]int, 0, len(dead))
	for e := range dead {
		out = append(out, e)
	}
	// Deterministic order for callers that log or assert on the list.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && less(out[j], out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func less(a, b [2]int) bool {
	if a[0] != b[0] {
		return a[0] < b[0]
	}
	return a[1] < b[1]
}

// connectedUnder reports whether g restricted to the alive edge set is
// connected (BFS from node 0).
func connectedUnder(g *graph.Graph, alive map[[2]int]bool) bool {
	n := g.N()
	if n == 0 {
		return true
	}
	seen := make([]bool, n)
	queue := make([]int, 0, n)
	seen[0] = true
	queue = append(queue, 0)
	count := 1
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.Neighbors(v) {
			if !seen[w] && alive[normEdge(v, w)] {
				seen[w] = true
				count++
				queue = append(queue, w)
			}
		}
	}
	return count == n
}
