package faults

import (
	"math/rand"
	"testing"

	"productsort/internal/graph"
)

func TestQuiet(t *testing.T) {
	if !(Config{}).Quiet() {
		t.Error("zero config must be quiet")
	}
	if (Config{DropRate: 0.1}).Quiet() {
		t.Error("drop rate must not be quiet")
	}
	if (Config{DeadLinks: []FactorEdge{{1, 0, 1}}}).Quiet() {
		t.Error("forced dead links must not be quiet")
	}
}

// Decisions are pure functions of the seed and coordinates: two plans
// with the same config agree everywhere, and a different seed disagrees
// somewhere.
func TestDecisionsDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, DropRate: 0.3, StallRate: 0.2, CorruptRate: 0.25, DupRate: 0.15}
	a, b := NewPlan(cfg), NewPlan(cfg)
	cfg.Seed = 43
	c := NewPlan(cfg)
	differs := false
	for phase := 0; phase < 200; phase++ {
		if a.PairDropped(0, phase, 1, 2) != b.PairDropped(0, phase, 1, 2) {
			t.Fatal("same seed disagrees on PairDropped")
		}
		if a.NodeStalled(0, phase, 3) != b.NodeStalled(0, phase, 3) {
			t.Fatal("same seed disagrees on NodeStalled")
		}
		an, am, aok := a.Corruption(0, phase, 64)
		bn, bm, bok := b.Corruption(0, phase, 64)
		if an != bn || am != bm || aok != bok {
			t.Fatal("same seed disagrees on Corruption")
		}
		if a.PairDropped(0, phase, 1, 2) != c.PairDropped(0, phase, 1, 2) {
			differs = true
		}
	}
	if !differs {
		t.Error("different seeds never disagreed in 200 phases at 30% rate")
	}
}

// Epoch is the retry dimension: bumping it re-rolls every decision, so
// a retried window faces fresh faults rather than the same ones.
func TestEpochRerolls(t *testing.T) {
	p := NewPlan(Config{Seed: 7, CorruptRate: 0.5})
	differs := false
	for phase := 0; phase < 64; phase++ {
		_, _, ok0 := p.Corruption(0, phase, 16)
		_, _, ok1 := p.Corruption(1, phase, 16)
		if ok0 != ok1 {
			differs = true
		}
	}
	if !differs {
		t.Error("epoch bump never changed a 50% corruption decision over 64 phases")
	}
}

func TestRatesApproximatelyRespected(t *testing.T) {
	p := NewPlan(Config{Seed: 5, DropRate: 0.25})
	hits := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		if p.PairDropped(0, i, 0, 1) {
			hits++
		}
	}
	got := float64(hits) / trials
	if got < 0.22 || got > 0.28 {
		t.Errorf("drop rate 0.25 realized as %.3f", got)
	}
}

func TestBindFactorForcedDeadLink(t *testing.T) {
	g := graph.Cycle(6)
	p := NewPlan(Config{Seed: 1, DeadLinks: []FactorEdge{{Dim: 1, U: 2, V: 3}}})
	dead, err := p.BindFactor(1, g)
	if err != nil {
		t.Fatal(err)
	}
	if len(dead) != 1 || dead[0] != [2]int{2, 3} {
		t.Fatalf("dead = %v, want [[2 3]]", dead)
	}
	if !p.LinkDead(1, 3, 2) {
		t.Error("LinkDead must normalize edge order")
	}
	sp := p.SurvivingPlan(1)
	if sp == nil {
		t.Fatal("no surviving plan")
	}
	// The ring minus one edge is a path: 2 and 3 are now 5 hops apart.
	if d := sp.Dist(2, 3); d != 5 {
		t.Errorf("surviving distance 2-3 = %d, want 5", d)
	}
	if c := p.Counters(); c.DeadLinks != 1 || c.Injected != 1 {
		t.Errorf("counters = %+v, want 1 dead link", c)
	}
}

func TestBindFactorRefusesDisconnection(t *testing.T) {
	// Every star edge is a bridge: forcing one dead must error.
	p := NewPlan(Config{DeadLinks: []FactorEdge{{Dim: 1, U: 0, V: 2}}})
	if _, err := p.BindFactor(1, graph.Star(5)); err == nil {
		t.Fatal("disconnecting forced dead link accepted")
	}
	// A non-edge is an error too.
	p = NewPlan(Config{DeadLinks: []FactorEdge{{Dim: 1, U: 1, V: 2}}})
	if _, err := p.BindFactor(1, graph.Star(5)); err == nil {
		t.Fatal("non-edge forced dead link accepted")
	}
}

func TestBindFactorSparesBridges(t *testing.T) {
	// At a 100% fail rate on a star, every edge is a bridge, so the
	// plan must spare all of them to keep the factor connected.
	p := NewPlan(Config{Seed: 3, LinkFailRate: 1})
	dead, err := p.BindFactor(1, graph.Star(6))
	if err != nil {
		t.Fatal(err)
	}
	if len(dead) != 0 {
		t.Errorf("star lost %d bridges", len(dead))
	}
	if p.SurvivingPlan(1) != nil {
		t.Error("intact dimension must have nil surviving plan")
	}
	// On a cycle the same rate kills edges but must stop before
	// disconnecting: a 6-cycle can lose exactly one edge.
	p = NewPlan(Config{Seed: 3, LinkFailRate: 1})
	dead, err = p.BindFactor(1, graph.Cycle(6))
	if err != nil {
		t.Fatal(err)
	}
	if len(dead) != 1 {
		t.Errorf("cycle lost %d edges, want exactly 1 (rest are then bridges)", len(dead))
	}
}

func TestBindFactorMaxDeadLinksCap(t *testing.T) {
	p := NewPlan(Config{Seed: 9, LinkFailRate: 1, MaxDeadLinks: 2})
	dead, err := p.BindFactor(1, graph.Complete(6))
	if err != nil {
		t.Fatal(err)
	}
	if len(dead) != 2 {
		t.Errorf("cap 2 produced %d dead links", len(dead))
	}
}

func TestBindFactorIdempotent(t *testing.T) {
	p := NewPlan(Config{Seed: 11, LinkFailRate: 0.5})
	g := graph.Complete(5)
	d1, err := p.BindFactor(1, g)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := p.BindFactor(1, g)
	if err != nil {
		t.Fatal(err)
	}
	if len(d1) != len(d2) {
		t.Fatalf("rebinding changed the dead set: %v vs %v", d1, d2)
	}
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("rebinding changed the dead set: %v vs %v", d1, d2)
		}
	}
	if c := p.Counters(); c.DeadLinks != len(d1) {
		t.Errorf("rebinding double-counted dead links: %+v", c)
	}
}

func TestChecksumInvariantUnderPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	keys := make([]Key, 257)
	for i := range keys {
		keys[i] = rng.Int63() - rng.Int63()
	}
	want := ChecksumKeys(keys)
	rng.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
	if got := ChecksumKeys(keys); got != want {
		t.Errorf("checksum changed under permutation: %+v vs %+v", got, want)
	}
	keys[100] ^= 1 << 17
	if got := ChecksumKeys(keys); got == want {
		t.Error("checksum missed a single bit flip")
	}
}

func TestCountersAdd(t *testing.T) {
	p := NewPlan(Config{})
	p.Add(Counters{Dropped: 2, Injected: 2})
	p.Add(Counters{Corrupted: 1, Injected: 1, Retried: 3})
	got := p.Counters()
	want := Counters{Injected: 3, Dropped: 2, Corrupted: 1, Retried: 3}
	if got != want {
		t.Errorf("counters = %+v, want %+v", got, want)
	}
}
