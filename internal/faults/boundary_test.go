// Boundary-rate coverage: every per-decision method must be an
// all-or-nothing function at rates 0 and 1.0. The interior rates are
// exercised statistically elsewhere; these pin the extremes, where an
// off-by-one in the `roll < rate` comparison would silently bias every
// chaos experiment.

package faults

import "testing"

// boundaryCoords sweeps a small grid of decision coordinates so a
// boundary failure cannot hide behind one lucky hash.
const boundaryCoords = 8

func TestDecisionsAtRateZero(t *testing.T) {
	// Non-quiet plan (CorruptRate on a different axis than each probe)
	// so the zero-rate paths run for real instead of short-circuiting
	// behind Quiet().
	p := NewPlan(Config{Seed: 99, DupRate: 0.5})
	for a := 0; a < boundaryCoords; a++ {
		for b := 0; b < boundaryCoords; b++ {
			if p.PairDropped(a, b, a, b+1) {
				t.Fatalf("PairDropped fired at rate 0 (%d,%d)", a, b)
			}
			if p.NodeStalled(a, b, a) {
				t.Fatalf("NodeStalled fired at rate 0 (%d,%d)", a, b)
			}
			if p.NodeStalledRound(a, b, b) {
				t.Fatalf("NodeStalledRound fired at rate 0 (%d,%d)", a, b)
			}
			if p.MessageDropped(a, b, a, b, 0) {
				t.Fatalf("MessageDropped fired at rate 0 (%d,%d)", a, b)
			}
			if _, _, ok := p.Corruption(a, b, 16); ok {
				t.Fatalf("Corruption fired at rate 0 (%d,%d)", a, b)
			}
		}
	}
	// DupRate 0 on a plan that is otherwise noisy.
	q := NewPlan(Config{Seed: 99, DropRate: 1})
	for a := 0; a < boundaryCoords; a++ {
		if q.MessageDuplicated(a, 1, 0, 1, a) {
			t.Fatalf("MessageDuplicated fired at rate 0 (%d)", a)
		}
	}
}

func TestDecisionsAtRateOne(t *testing.T) {
	p := NewPlan(Config{Seed: 7, DropRate: 1, StallRate: 1, CorruptRate: 1, DupRate: 1})
	for a := 0; a < boundaryCoords; a++ {
		for b := 0; b < boundaryCoords; b++ {
			if !p.PairDropped(a, b, a, b+1) {
				t.Fatalf("PairDropped skipped at rate 1 (%d,%d)", a, b)
			}
			if !p.NodeStalled(a, b, a) {
				t.Fatalf("NodeStalled skipped at rate 1 (%d,%d)", a, b)
			}
			if !p.NodeStalledRound(a, b, b) {
				t.Fatalf("NodeStalledRound skipped at rate 1 (%d,%d)", a, b)
			}
			if !p.MessageDropped(a, b, a, b, 0) {
				t.Fatalf("MessageDropped skipped at rate 1 (%d,%d)", a, b)
			}
			if !p.MessageDuplicated(a, b, a, b, 0) {
				t.Fatalf("MessageDuplicated skipped at rate 1 (%d,%d)", a, b)
			}
			node, mask, ok := p.Corruption(a, b, 16)
			if !ok {
				t.Fatalf("Corruption skipped at rate 1 (%d,%d)", a, b)
			}
			if node < 0 || node >= 16 {
				t.Fatalf("corruption node %d outside [0,16)", node)
			}
			if mask == 0 || mask < 0 {
				t.Fatalf("corruption mask %#x not a positive single-bit flip", mask)
			}
			if mask&(mask-1) != 0 {
				t.Fatalf("corruption mask %#x has more than one bit", mask)
			}
		}
	}
}

// Corruption must refuse to fire against an empty node set even at
// rate 1 — the guard, not the modulus, handles nodes == 0.
func TestCorruptionNoNodes(t *testing.T) {
	p := NewPlan(Config{Seed: 1, CorruptRate: 1})
	if _, _, ok := p.Corruption(0, 0, 0); ok {
		t.Fatal("Corruption fired with zero nodes")
	}
}
