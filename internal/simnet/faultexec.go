// FaultExec: the fault-wrapping phase executor. It sits between the
// machine (or the schedule replay) and a real executor, realizing a
// faults.Plan at the pair level: stalled nodes sit a phase out, dropped
// pairs lose their exchange, and per-phase corruption flips one bit of
// one key. Because every decision is a pure function of (plan seed,
// epoch, phase, coordinates), two executors over the same plan inject
// identical faults — the property the recovery layer's determinism
// guarantees rest on.

package simnet

import "productsort/internal/faults"

// FaultExec wraps an Executor with deterministic pair-level fault
// injection. It must be used by a single replay at a time (it keeps a
// phase counter); create one per run. The zero Inner means
// SequentialExec.
type FaultExec struct {
	// Inner applies the surviving pairs; nil means SequentialExec.
	Inner Executor
	// Plan decides the faults; nil disables injection entirely.
	Plan *faults.Plan
	// Epoch namespaces the decisions (the recovery layer bumps it per
	// retry so a re-run faces fresh faults).
	Epoch int

	phase int
	kept  [][2]int
}

// Phase returns the number of phases executed so far.
func (e *FaultExec) Phase() int { return e.phase }

// ResetPhase rewinds the phase counter (for replay restarts).
func (e *FaultExec) ResetPhase(phase int) { e.phase = phase }

// CompareExchange implements Executor: it drops the pairs the plan
// kills, runs the survivors through the inner executor, then applies
// the phase's corruption (if any) to the key array. Injection counters
// accrue on the plan.
func (e *FaultExec) CompareExchange(keys []Key, pairs [][2]int) {
	inner := e.Inner
	if inner == nil {
		inner = SequentialExec{}
	}
	if e.Plan == nil {
		inner.CompareExchange(keys, pairs)
		return
	}
	phase := e.phase
	e.phase++
	kept := e.kept[:0]
	var delta faults.Counters
	for _, pr := range pairs {
		lo, hi := pr[0], pr[1]
		if e.Plan.NodeStalled(e.Epoch, phase, lo) || e.Plan.NodeStalled(e.Epoch, phase, hi) {
			delta.Stalled++
			delta.Injected++
			continue
		}
		if e.Plan.PairDropped(e.Epoch, phase, lo, hi) {
			delta.Dropped++
			delta.Injected++
			continue
		}
		kept = append(kept, pr)
	}
	e.kept = kept
	inner.CompareExchange(keys, kept)
	if node, mask, ok := e.Plan.Corruption(e.Epoch, phase, len(keys)); ok {
		keys[node] ^= mask
		delta.Corrupted++
		delta.Injected++
	}
	if delta != (faults.Counters{}) {
		e.Plan.Add(delta)
	}
}
