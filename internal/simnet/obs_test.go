package simnet

import (
	"testing"

	"productsort/internal/graph"
	"productsort/internal/obs"
	"productsort/internal/product"
)

// machineTally records phase events from a live machine.
type machineTally struct {
	begins, ends int
	rounds       int
	s2Rounds     int
	idle         int
	routed       int
	pairs        int
	dims         []int
}

func (c *machineTally) PhaseBegin(obs.Phase) { c.begins++ }

func (c *machineTally) PhaseEnd(p obs.Phase) {
	c.ends++
	c.rounds += p.Cost
	if p.S2 {
		c.s2Rounds += p.Cost
	}
	switch p.Kind {
	case obs.PhaseIdle:
		c.idle++
	case obs.PhaseRouted:
		c.routed++
	}
	c.pairs += p.Pairs
	c.dims = append(c.dims, p.Dim)
}

func (c *machineTally) RecoveryEvent(obs.Recovery) {}
func (c *machineTally) MessageStats(obs.Messages)  {}

// TestMachineTracerMirrorsClock drives a machine by hand and checks the
// event stream reproduces every charge the clock takes, including S2
// attribution and per-phase dimension identity.
func TestMachineTracerMirrorsClock(t *testing.T) {
	net := product.MustNew(graph.Path(3), 2)
	m := MustNew(net, seqKeys(9))
	tally := &machineTally{}
	m.SetTracer(tally)

	m.BeginS2()
	m.CompareExchange([][2]int{{0, 1}})         // dim 1 edge
	m.CompareExchange([][2]int{{0, 3}, {1, 4}}) // dim 2 edges
	m.EndS2()
	m.IdleRound()
	m.CompareExchange([][2]int{{0, 2}}) // non-edge in dim 1: routed

	clk := m.Clock()
	if tally.begins != tally.ends || tally.ends != 4 {
		t.Fatalf("events: %d begins, %d ends, want 4 each", tally.begins, tally.ends)
	}
	if tally.rounds != clk.Rounds {
		t.Errorf("event rounds %d != clock rounds %d", tally.rounds, clk.Rounds)
	}
	if tally.s2Rounds != clk.S2Rounds {
		t.Errorf("event s2 rounds %d != clock s2 rounds %d", tally.s2Rounds, clk.S2Rounds)
	}
	if tally.idle != 1 {
		t.Errorf("idle events = %d, want 1", tally.idle)
	}
	if tally.routed != clk.RoutedPhases {
		t.Errorf("routed events %d != routed phases %d", tally.routed, clk.RoutedPhases)
	}
	if tally.pairs != clk.CompareOps {
		t.Errorf("event pairs %d != compare ops %d", tally.pairs, clk.CompareOps)
	}
	want := []int{1, 2, 0, 1} // exchange dims; idle phases carry dim 0
	for i, d := range want {
		if tally.dims[i] != d {
			t.Errorf("phase %d dim = %d, want %d", i, tally.dims[i], d)
		}
	}
}

// TestMachineNoTracerNoEvents: the default machine stays silent and its
// phase counter does not advance.
func TestMachineNoTracerNoEvents(t *testing.T) {
	net := product.MustNew(graph.Path(3), 1)
	m := MustNew(net, seqKeys(3))
	m.CompareExchange([][2]int{{0, 1}})
	m.IdleRound()
	tally := &machineTally{}
	m.SetTracer(tally)
	m.CompareExchange([][2]int{{1, 2}})
	if tally.ends != 1 {
		t.Fatalf("events after attach = %d, want 1", tally.ends)
	}
	// Phase indices restart from wherever the counter is; attaching late
	// must still produce strictly increasing indices (no reuse of 0 for
	// pre-attach phases is required, only monotonicity from here on).
	m.CompareExchange([][2]int{{0, 1}})
	if tally.dims[len(tally.dims)-1] != 1 {
		t.Fatalf("late phases still traced with dims: %v", tally.dims)
	}
}
