// Checked compare-exchange: a validating variant of the machine's
// phase entry point that returns a typed error instead of panicking
// (or, worse, silently mis-charging rounds on garbage input). The hot
// path — Machine.CompareExchange and the compiled-program replay —
// stays unchecked: schedules emitted by the algorithm are validated
// once at compile time, so per-replay validation would be pure waste.

package simnet

import (
	"fmt"

	"productsort/internal/product"
)

// PairFault classifies an invalid compare-exchange pair.
type PairFault uint8

const (
	// PairOutOfRange: an endpoint is not a node id of the network.
	PairOutOfRange PairFault = iota
	// PairDegenerate: the two endpoints are the same node.
	PairDegenerate
	// PairOverlap: an endpoint already appears in an earlier pair of
	// the same phase.
	PairOverlap
	// PairMultiDim: the endpoints differ in more than one dimension, so
	// they share no G-subgraph and cannot be exchanged in one phase.
	PairMultiDim
)

// String names the fault class.
func (f PairFault) String() string {
	switch f {
	case PairOutOfRange:
		return "endpoint out of range"
	case PairDegenerate:
		return "degenerate pair"
	case PairOverlap:
		return "overlapping pairs"
	case PairMultiDim:
		return "endpoints differ in more than one dimension"
	}
	return fmt.Sprintf("pair fault(%d)", uint8(f))
}

// PairError reports the first invalid pair of a compare-exchange phase.
type PairError struct {
	// Index is the offending pair's position in the phase.
	Index int
	// Pair is the offending (lo, hi) pair.
	Pair [2]int
	// Fault classifies the violation.
	Fault PairFault
}

// Error implements error.
func (e *PairError) Error() string {
	return fmt.Sprintf("simnet: pair %d (%d,%d): %s", e.Index, e.Pair[0], e.Pair[1], e.Fault)
}

// ValidatePairs checks one compare-exchange phase against net: ids in
// range, no degenerate or overlapping pairs, and every pair confined to
// a single dimension. It returns a *PairError describing the first
// violation, or nil.
func ValidatePairs(net *product.Network, pairs [][2]int) error {
	busy := make(map[int]bool, 2*len(pairs))
	for i, pr := range pairs {
		a, b := pr[0], pr[1]
		if a < 0 || a >= net.Nodes() || b < 0 || b >= net.Nodes() {
			return &PairError{Index: i, Pair: pr, Fault: PairOutOfRange}
		}
		if a == b {
			return &PairError{Index: i, Pair: pr, Fault: PairDegenerate}
		}
		if busy[a] || busy[b] {
			return &PairError{Index: i, Pair: pr, Fault: PairOverlap}
		}
		busy[a], busy[b] = true, true
		diff := 0
		for d := 1; d <= net.R(); d++ {
			if net.Digit(a, d) != net.Digit(b, d) {
				diff++
			}
		}
		if diff != 1 {
			return &PairError{Index: i, Pair: pr, Fault: PairMultiDim}
		}
	}
	return nil
}

// CompareExchangeChecked is CompareExchange behind ValidatePairs: on
// invalid input it returns the typed error and charges nothing, leaving
// the machine's keys and clock untouched. Use it at API boundaries
// where pairs come from callers rather than from the algorithm.
func (m *Machine) CompareExchangeChecked(pairs [][2]int) error {
	if err := ValidatePairs(m.net, pairs); err != nil {
		return err
	}
	m.CompareExchange(pairs)
	return nil
}
