// Package simnet simulates the synchronous parallel machine the paper's
// algorithm runs on: an r-dimensional product network with one key per
// processor, executing lock-step phases of compare-exchange operations.
//
// Time is counted in parallel communication rounds, the unit of all the
// paper's complexity claims. A compare-exchange phase between pairs of
// adjacent nodes costs one round. When the factor graph is not
// Hamiltonian-labeled, compare-exchange partners inside a G-subgraph may
// be several hops apart; the machine then charges the measured cost of a
// permutation routing that exchanges the keys (Section 4 of the paper:
// "permutation routing within G may be used to perform the
// compare-exchange step"). Because disjoint subgraphs operate in
// parallel, the charge for a phase is the maximum cost over subgraphs.
package simnet

import (
	"encoding/binary"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"productsort/internal/faults"
	"productsort/internal/graph"
	"productsort/internal/obs"
	"productsort/internal/product"
	"productsort/internal/routing"
)

// Key is the value type sorted by the machine.
type Key = int64

// Clock accumulates the time and phase counts of a computation.
type Clock struct {
	// Rounds is the total number of parallel communication rounds.
	Rounds int
	// ComparePhases counts compare-exchange phases issued.
	ComparePhases int
	// RoutedPhases counts phases that required multi-hop routing.
	RoutedPhases int
	// S2Phases counts PG_2 sorting phases (maintained by the 2D sorter).
	S2Phases int
	// SweepPhases counts inter-subgraph odd-even transposition sweeps
	// (maintained by the merge algorithm; Theorem 1 predicts
	// (r-1)(r-2) of them for a full sort).
	SweepPhases int
	// S2Rounds and SweepRounds split Rounds by origin.
	S2Rounds, SweepRounds int
	// CompareOps is the total number of comparator operations (pairs)
	// executed, the "work" of the computation.
	CompareOps int
	// RecoveryRounds counts the extra rounds charged to fault recovery
	// (checkpoint-window retries and repair passes); included in
	// Rounds. Zero on fault-free runs.
	RecoveryRounds int
	// Faults aggregates fault-injection and recovery counters when a
	// fault plan was active; the zero value on fault-free runs keeps
	// Clock comparable with ==.
	Faults faults.Counters
}

// Machine is a product network with one key per node.
type Machine struct {
	net   *product.Network
	keys  []Key
	cost  *CostModel
	clock Clock
	exec  Executor

	inS2   bool       // attribute current rounds to S2Rounds
	tracer obs.Tracer // nil = tracing disabled (the default)
	phase  int        // phase ordinal for trace identity
}

// costKey identifies a cached routed-exchange cost: the factor graph it
// runs on plus the normalized pairing signature.
type costKey struct {
	g   *graph.Graph
	sig string
}

// CostModel validates compare-exchange phases and prices them in
// parallel communication rounds. It owns the per-factor routing plans
// and a memo of routed-exchange costs, so it can be shared between a
// live Machine and the schedule compiler (package schedule), which must
// charge phases identically. A CostModel is not safe for concurrent use.
type CostModel struct {
	plans     map[*graph.Graph]*routing.Plan
	costCache map[costKey]int
}

// NewCostModel returns an empty cost model.
func NewCostModel() *CostModel {
	return &CostModel{
		plans:     make(map[*graph.Graph]*routing.Plan),
		costCache: make(map[costKey]int),
	}
}

// PlanFor returns (building lazily) the routing plan for a factor graph.
func (c *CostModel) PlanFor(g *graph.Graph) *routing.Plan {
	if p, ok := c.plans[g]; ok {
		return p
	}
	p := routing.NewPlan(g)
	c.plans[g] = p
	return p
}

// PhaseCost validates the pairs of one compare-exchange phase on net and
// returns the round charge: one round when every pair is an edge of the
// product network, otherwise the maximum measured key-exchange routing
// cost over the G-subgraphs involved (disjoint subgraphs run in
// parallel). Pairs must be node-disjoint and each pair must differ in
// exactly one dimension; violations panic, since they indicate an
// algorithm bug rather than bad input.
func (c *CostModel) PhaseCost(net *product.Network, pairs [][2]int) int {
	busy := make(map[int]bool, 2*len(pairs))
	allAdjacent := true
	// Factor-level exchange sets keyed by (dimension, subgraph base id).
	type subKey struct{ dim, base int }
	subPairs := make(map[subKey][][2]int)
	for _, pr := range pairs {
		a, b := pr[0], pr[1]
		if a == b {
			panic("simnet: degenerate compare-exchange pair")
		}
		if busy[a] || busy[b] {
			panic("simnet: overlapping compare-exchange pairs")
		}
		busy[a], busy[b] = true, true
		dim := differingDim(net, a, b)
		da, db := net.Digit(a, dim), net.Digit(b, dim)
		if !net.FactorAt(dim).HasEdge(da, db) {
			allAdjacent = false
		}
		k := subKey{dim, net.SetDigit(a, dim, 0)}
		subPairs[k] = append(subPairs[k], [2]int{da, db})
	}
	if allAdjacent {
		return 1
	}
	worst := 1
	for k, fp := range subPairs {
		cost := c.exchangeCost(net.FactorAt(k.dim), fp)
		if cost > worst {
			worst = cost
		}
	}
	return worst
}

// exchangeCost measures (and caches) the routing cost of a factor-level
// pairwise key exchange on the given factor graph. The cache key encodes
// each endpoint with a varint so factors with ≥256 nodes cannot alias
// (a plain byte cast would truncate ids and corrupt the cache).
func (c *CostModel) exchangeCost(g *graph.Graph, fp [][2]int) int {
	norm := make([][2]int, len(fp))
	for i, pr := range fp {
		a, b := pr[0], pr[1]
		if a > b {
			a, b = b, a
		}
		norm[i] = [2]int{a, b}
	}
	sort.Slice(norm, func(i, j int) bool {
		if norm[i][0] != norm[j][0] {
			return norm[i][0] < norm[j][0]
		}
		return norm[i][1] < norm[j][1]
	})
	sig := make([]byte, 0, 4*len(norm))
	for _, pr := range norm {
		sig = binary.AppendVarint(sig, int64(pr[0]))
		sig = binary.AppendVarint(sig, int64(pr[1]))
	}
	key := costKey{g: g, sig: string(sig)}
	if cost, ok := c.costCache[key]; ok {
		return cost
	}
	cost := c.PlanFor(g).ExchangeRounds(norm)
	c.costCache[key] = cost
	return cost
}

// differingDim returns the unique dimension where a and b differ, or
// panics if they differ in zero or more than one dimension.
func differingDim(net *product.Network, a, b int) int {
	dim := 0
	for d := 1; d <= net.R(); d++ {
		if net.Digit(a, d) != net.Digit(b, d) {
			if dim != 0 {
				panic(fmt.Sprintf("simnet: nodes %d and %d differ in more than one dimension", a, b))
			}
			dim = d
		}
	}
	if dim == 0 {
		panic(fmt.Sprintf("simnet: nodes %d and %d identical", a, b))
	}
	return dim
}

// Executor applies a compare-exchange phase to the key array. Pairs are
// (lo, hi) node ids: after the call keys[lo] <= keys[hi] holds for every
// pair. Implementations must treat pairs as disjoint.
type Executor interface {
	CompareExchange(keys []Key, pairs [][2]int)
}

// SequentialExec applies phases with a simple loop. It is the default.
type SequentialExec struct{}

// CompareExchange implements Executor.
func (SequentialExec) CompareExchange(keys []Key, pairs [][2]int) {
	for _, pr := range pairs {
		if keys[pr[0]] > keys[pr[1]] {
			keys[pr[0]], keys[pr[1]] = keys[pr[1]], keys[pr[0]]
		}
	}
}

// GoroutineExec executes each phase with one goroutine per endpoint,
// exchanging keys over channels exactly as two communicating processors
// would. It exists to demonstrate and test that phases are data-parallel;
// results are identical to SequentialExec. Goroutine fan-out is capped
// by a semaphore (admitting whole pairs, so partners are always
// co-resident and cannot deadlock) — large phases no longer spawn two
// goroutines per pair all at once.
type GoroutineExec struct {
	// MaxPairs bounds the pairs in flight; values < 1 mean
	// 2·runtime.GOMAXPROCS(0).
	MaxPairs int
}

// CompareExchange implements Executor with message-passing goroutines.
func (e GoroutineExec) CompareExchange(keys []Key, pairs [][2]int) {
	maxPairs := e.MaxPairs
	if maxPairs < 1 {
		maxPairs = 2 * runtime.GOMAXPROCS(0)
	}
	sem := make(chan struct{}, maxPairs)
	var wg sync.WaitGroup
	for _, pr := range pairs {
		sem <- struct{}{} // admit the pair: both endpoints run together
		lo, hi := pr[0], pr[1]
		a2b := make(chan Key, 1)
		b2a := make(chan Key, 1)
		left := new(atomic.Int32)
		left.Store(2)
		release := func() {
			if left.Add(-1) == 0 {
				<-sem
			}
		}
		wg.Add(2)
		go func() {
			defer wg.Done()
			defer release()
			mine := keys[lo]
			a2b <- mine
			theirs := <-b2a
			if theirs < mine {
				keys[lo] = theirs
			}
		}()
		go func() {
			defer wg.Done()
			defer release()
			mine := keys[hi]
			b2a <- mine
			theirs := <-a2b
			if theirs > mine {
				keys[hi] = theirs
			}
		}()
	}
	wg.Wait()
}

// ParallelExec applies each phase by splitting its pairs across a fixed
// worker pool — the wall-clock-oriented executor for large simulations.
// Pairs within a phase are node-disjoint, so workers never contend.
type ParallelExec struct {
	// Workers is the pool size; values < 1 mean runtime.GOMAXPROCS(0),
	// i.e. one worker per schedulable CPU.
	Workers int
}

// CompareExchange implements Executor.
func (e ParallelExec) CompareExchange(keys []Key, pairs [][2]int) {
	w := e.Workers
	if w < 1 {
		w = runtime.GOMAXPROCS(0)
	}
	if len(pairs) < 2*w {
		SequentialExec{}.CompareExchange(keys, pairs)
		return
	}
	var wg sync.WaitGroup
	chunk := (len(pairs) + w - 1) / w
	for start := 0; start < len(pairs); start += chunk {
		end := start + chunk
		if end > len(pairs) {
			end = len(pairs)
		}
		wg.Add(1)
		go func(part [][2]int) {
			defer wg.Done()
			SequentialExec{}.CompareExchange(keys, part)
		}(pairs[start:end])
	}
	wg.Wait()
}

// RecorderExec wraps another executor and records every phase's pairs.
// Because the sorting algorithm is oblivious (its schedule depends only
// on the network, never on the keys), a recorded schedule is a reusable
// comparator network: see package mergenet.
type RecorderExec struct {
	Inner  Executor
	Phases [][][2]int
}

// CompareExchange implements Executor: record, then delegate.
func (r *RecorderExec) CompareExchange(keys []Key, pairs [][2]int) {
	cp := make([][2]int, len(pairs))
	copy(cp, pairs)
	r.Phases = append(r.Phases, cp)
	if r.Inner != nil {
		r.Inner.CompareExchange(keys, pairs)
	}
}

// New creates a machine over net loaded with the given keys (one per
// node, copied).
func New(net *product.Network, keys []Key) (*Machine, error) {
	if len(keys) != net.Nodes() {
		return nil, fmt.Errorf("simnet: %d keys for %d nodes", len(keys), net.Nodes())
	}
	m := &Machine{
		net:  net,
		keys: append([]Key(nil), keys...),
		cost: NewCostModel(),
		exec: SequentialExec{},
	}
	return m, nil
}

// MustNew is New, panicking on error.
func MustNew(net *product.Network, keys []Key) *Machine {
	m, err := New(net, keys)
	if err != nil {
		panic(err)
	}
	return m
}

// SetExecutor replaces the phase executor (e.g. with GoroutineExec).
func (m *Machine) SetExecutor(e Executor) { m.exec = e }

// SetTracer attaches a tracer receiving one phase begin/end event pair
// per round-consuming phase (compare-exchange and idle rounds), with
// the machine's running phase ordinal as the event index. nil detaches;
// the detached path adds only a nil check per phase.
func (m *Machine) SetTracer(t obs.Tracer) { m.tracer = t }

// Net returns the underlying product network.
func (m *Machine) Net() *product.Network { return m.net }

// Plan returns the routing plan of the dimension-1 factor (the only
// factor for homogeneous networks).
func (m *Machine) Plan() *routing.Plan { return m.cost.PlanFor(m.net.Factor()) }

// Keys returns a copy of the current key array, indexed by node id.
func (m *Machine) Keys() []Key { return append([]Key(nil), m.keys...) }

// Key returns the key at node id.
func (m *Machine) Key(id int) Key { return m.keys[id] }

// Clock returns a copy of the accumulated counters.
func (m *Machine) Clock() Clock { return m.clock }

// ResetClock zeroes the counters, keeping the keys.
func (m *Machine) ResetClock() { m.clock = Clock{} }

// AddS2Phase records a completed PG_2 sort phase (called by the 2D
// sorter once per logical S_2 invocation).
func (m *Machine) AddS2Phase() { m.clock.S2Phases++ }

// AddSweepPhase records a completed inter-subgraph transposition sweep.
func (m *Machine) AddSweepPhase() { m.clock.SweepPhases++ }

// BeginS2 and EndS2 bracket the rounds attributable to PG_2 sorting so
// the clock can split Rounds into S2Rounds and SweepRounds.
func (m *Machine) BeginS2() { m.inS2 = true }

// EndS2 ends an S2 attribution bracket.
func (m *Machine) EndS2() { m.inS2 = false }

// IdleRound charges one round with no data movement. The algorithm's
// schedule is oblivious (it does not depend on the keys), so a phase in
// which no processor happens to have a partner still consumes a
// synchronous step; this keeps measured rounds equal to the paper's
// closed forms.
func (m *Machine) IdleRound() {
	m.clock.Rounds++
	if m.inS2 {
		m.clock.S2Rounds++
	} else {
		m.clock.SweepRounds++
	}
	if m.tracer != nil {
		ev := obs.Phase{Index: m.phase, Kind: obs.PhaseIdle, S2: m.inS2, Cost: 1}
		m.phase++
		m.tracer.PhaseBegin(ev)
		m.tracer.PhaseEnd(ev)
	}
}

// CompareExchange performs one parallel compare-exchange phase. Each
// pair is (lo, hi): after the phase keys[lo] <= keys[hi]. Pairs must be
// node-disjoint and each pair must differ in exactly one dimension
// (their endpoints then share a G-subgraph); violations panic, since
// they indicate an algorithm bug rather than bad input.
//
// Cost: one round if every pair is an edge of the product network,
// otherwise the maximum measured key-exchange routing cost over the
// G-subgraphs involved (disjoint subgraphs run in parallel).
func (m *Machine) CompareExchange(pairs [][2]int) {
	if len(pairs) == 0 {
		return
	}
	cost := m.cost.PhaseCost(m.net, pairs)
	var ev obs.Phase
	if m.tracer != nil {
		kind := obs.PhaseExchange
		if cost > 1 {
			kind = obs.PhaseRouted
		}
		ev = obs.Phase{
			Index: m.phase,
			Kind:  kind,
			Dim:   m.phaseDim(pairs),
			S2:    m.inS2,
			Cost:  cost,
			Pairs: len(pairs),
		}
		m.phase++
		m.tracer.PhaseBegin(ev)
	}
	m.exec.CompareExchange(m.keys, pairs)
	if m.tracer != nil {
		m.tracer.PhaseEnd(ev)
	}
	m.clock.ComparePhases++
	m.clock.CompareOps += len(pairs)
	m.clock.Rounds += cost
	if m.inS2 {
		m.clock.S2Rounds += cost
	} else {
		m.clock.SweepRounds += cost
	}
	if cost > 1 {
		m.clock.RoutedPhases++
	}
}

// phaseDim returns the 1-based dimension every pair of the phase
// differs in, or 0 when pairs span different dimensions.
func (m *Machine) phaseDim(pairs [][2]int) int {
	dim := 0
	for _, pr := range pairs {
		d := differingDim(m.net, pr[0], pr[1])
		if dim == 0 {
			dim = d
		} else if dim != d {
			return 0
		}
	}
	return dim
}

// SnakeKeys returns the keys read off in snake order of the whole
// network: position i of the result is the key at snake position i.
func (m *Machine) SnakeKeys() []Key {
	out := make([]Key, len(m.keys))
	for pos := range out {
		out[pos] = m.keys[m.net.NodeAtSnake(pos)]
	}
	return out
}

// IsSortedSnake reports whether the keys are in nondecreasing order when
// read in snake order of the whole network.
func (m *Machine) IsSortedSnake() bool {
	prev := int64(0)
	for pos := 0; pos < len(m.keys); pos++ {
		k := m.keys[m.net.NodeAtSnake(pos)]
		if pos > 0 && k < prev {
			return false
		}
		prev = k
	}
	return true
}

// BlockSnakeKeys returns the keys of one block (identified by base and
// spanned by dims) in the block's local snake order.
func (m *Machine) BlockSnakeKeys(base int, dims []int) []Key {
	size := m.net.BlockSize(dims)
	out := make([]Key, size)
	for pos := 0; pos < size; pos++ {
		out[pos] = m.keys[m.net.NodeInBlock(base, dims, pos)]
	}
	return out
}

// IsBlockSortedSnake reports whether a block's keys are nondecreasing in
// the block's local snake order.
func (m *Machine) IsBlockSortedSnake(base int, dims []int) bool {
	size := m.net.BlockSize(dims)
	var prev Key
	for pos := 0; pos < size; pos++ {
		k := m.keys[m.net.NodeInBlock(base, dims, pos)]
		if pos > 0 && k < prev {
			return false
		}
		prev = k
	}
	return true
}

// LoadSnake stores keys so that snake position i holds keys[i]. It is
// free (initial data placement), used to set up merge preconditions in
// tests.
func (m *Machine) LoadSnake(keys []Key) {
	if len(keys) != len(m.keys) {
		panic("simnet: wrong key count")
	}
	for pos, k := range keys {
		m.keys[m.net.NodeAtSnake(pos)] = k
	}
}
