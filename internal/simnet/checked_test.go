package simnet

import (
	"errors"
	"testing"

	"productsort/internal/faults"
	"productsort/internal/graph"
	"productsort/internal/product"
)

func TestCompareExchangeCheckedValid(t *testing.T) {
	net := product.MustNew(graph.Path(3), 2)
	m := MustNew(net, []Key{5, 4, 3, 2, 1, 0, 9, 8, 7})
	if err := m.CompareExchangeChecked([][2]int{{0, 1}, {3, 4}}); err != nil {
		t.Fatal(err)
	}
	if m.Clock().Rounds != 1 || m.Clock().ComparePhases != 1 {
		t.Errorf("checked phase mis-charged: %+v", m.Clock())
	}
	if m.Key(0) != 4 || m.Key(1) != 5 {
		t.Error("checked phase did not exchange")
	}
}

func TestCompareExchangeCheckedRejects(t *testing.T) {
	net := product.MustNew(graph.Path(3), 2)
	cases := []struct {
		name  string
		pairs [][2]int
		fault PairFault
	}{
		{"out of range high", [][2]int{{0, 9}}, PairOutOfRange},
		{"out of range negative", [][2]int{{-1, 0}}, PairOutOfRange},
		{"degenerate", [][2]int{{4, 4}}, PairDegenerate},
		{"overlap", [][2]int{{0, 1}, {1, 2}}, PairOverlap},
		{"multi-dimension", [][2]int{{0, 4}}, PairMultiDim},
	}
	for _, c := range cases {
		m := MustNew(net, make([]Key, net.Nodes()))
		err := m.CompareExchangeChecked(c.pairs)
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		var pe *PairError
		if !errors.As(err, &pe) {
			t.Errorf("%s: error %v is not a *PairError", c.name, err)
			continue
		}
		if pe.Fault != c.fault {
			t.Errorf("%s: fault %v, want %v", c.name, pe.Fault, c.fault)
		}
		if clk := m.Clock(); clk != (Clock{}) {
			t.Errorf("%s: invalid phase charged the clock: %+v", c.name, clk)
		}
	}
}

func TestPairErrorMessage(t *testing.T) {
	err := &PairError{Index: 3, Pair: [2]int{7, 7}, Fault: PairDegenerate}
	if got := err.Error(); got == "" || got != "simnet: pair 3 (7,7): degenerate pair" {
		t.Errorf("unexpected message %q", got)
	}
}

// FaultExec with a nil plan is a transparent wrapper.
func TestFaultExecNilPlanTransparent(t *testing.T) {
	keys := []Key{3, 1, 2, 0}
	fe := &FaultExec{}
	fe.CompareExchange(keys, [][2]int{{0, 1}, {2, 3}})
	if keys[0] != 1 || keys[1] != 3 || keys[2] != 0 || keys[3] != 2 {
		t.Errorf("keys = %v", keys)
	}
	if fe.Phase() != 0 {
		t.Error("nil-plan executor must not count phases")
	}
}

// A 100% drop rate suppresses every exchange and counts it.
func TestFaultExecDropsAll(t *testing.T) {
	plan := faults.NewPlan(faults.Config{Seed: 1, DropRate: 1})
	keys := []Key{3, 1, 2, 0}
	fe := &FaultExec{Plan: plan}
	fe.CompareExchange(keys, [][2]int{{0, 1}, {2, 3}})
	if keys[0] != 3 || keys[2] != 2 {
		t.Errorf("dropped phase still exchanged: %v", keys)
	}
	c := plan.Counters()
	if c.Dropped != 2 || c.Injected != 2 {
		t.Errorf("counters = %+v, want 2 drops", c)
	}
}

// Corruption flips exactly one bit at a plan-chosen node, and the same
// seed reproduces it bit for bit.
func TestFaultExecCorruptionDeterministic(t *testing.T) {
	run := func() ([]Key, faults.Counters) {
		plan := faults.NewPlan(faults.Config{Seed: 5, CorruptRate: 1})
		keys := []Key{10, 20, 30, 40}
		fe := &FaultExec{Plan: plan}
		fe.CompareExchange(keys, [][2]int{{0, 1}})
		return keys, plan.Counters()
	}
	k1, c1 := run()
	k2, c2 := run()
	for i := range k1 {
		if k1[i] != k2[i] {
			t.Fatalf("same seed diverged: %v vs %v", k1, k2)
		}
	}
	if c1 != c2 {
		t.Fatalf("same seed counters diverged: %+v vs %+v", c1, c2)
	}
	if c1.Corrupted != 1 {
		t.Errorf("corruption rate 1 injected %d flips", c1.Corrupted)
	}
	if faults.ChecksumKeys(k1) == faults.ChecksumKeys([]Key{10, 20, 30, 40}) {
		t.Error("scrub checksum missed the injected flip")
	}
}

// The machine runs transparently under a fault executor: a full live
// sort with a quiet plan matches the fault-free machine.
func TestMachineWithQuietFaultExec(t *testing.T) {
	net := product.MustNew(graph.Path(3), 2)
	m := MustNew(net, []Key{5, 4, 3, 2, 1, 0, 9, 8, 7})
	m.SetExecutor(&FaultExec{Plan: faults.NewPlan(faults.Config{})})
	m.CompareExchange([][2]int{{0, 1}})
	if m.Key(0) != 4 {
		t.Error("quiet fault executor perturbed the exchange")
	}
}
