package simnet

import (
	"math/rand"
	"testing"

	"productsort/internal/graph"
	"productsort/internal/product"
)

func seqKeys(n int) []Key {
	ks := make([]Key, n)
	for i := range ks {
		ks[i] = Key(i)
	}
	return ks
}

func TestNewValidation(t *testing.T) {
	net := product.MustNew(graph.Path(3), 2)
	if _, err := New(net, make([]Key, 5)); err == nil {
		t.Error("wrong key count accepted")
	}
	m, err := New(net, seqKeys(9))
	if err != nil {
		t.Fatal(err)
	}
	if m.Key(4) != 4 {
		t.Error("keys not loaded")
	}
}

func TestKeysIsACopy(t *testing.T) {
	net := product.MustNew(graph.Path(3), 1)
	in := seqKeys(3)
	m := MustNew(net, in)
	in[0] = 99
	if m.Key(0) != 0 {
		t.Error("machine aliases caller's slice")
	}
	out := m.Keys()
	out[1] = 99
	if m.Key(1) != 1 {
		t.Error("Keys() aliases internal state")
	}
}

func TestCompareExchangeAdjacentCostsOneRound(t *testing.T) {
	net := product.MustNew(graph.Path(4), 2)
	m := MustNew(net, []Key{5, 1, 2, 0, 9, 8, 7, 6, 3, 4, 11, 10, 15, 14, 13, 12})
	// Pairs along dimension 1 between digits 0 and 1 for every row.
	var pairs [][2]int
	for row := 0; row < 4; row++ {
		pairs = append(pairs, [2]int{row * 4, row*4 + 1})
	}
	m.CompareExchange(pairs)
	c := m.Clock()
	if c.Rounds != 1 || c.ComparePhases != 1 || c.RoutedPhases != 0 {
		t.Errorf("clock=%+v want 1 round, 1 phase, 0 routed", c)
	}
	if m.Key(0) != 1 || m.Key(1) != 5 {
		t.Errorf("pair (0,1) not ordered: %d %d", m.Key(0), m.Key(1))
	}
	if m.Key(4) != 8 || m.Key(5) != 9 {
		t.Errorf("pair (4,5) reordered wrongly: %d %d", m.Key(4), m.Key(5))
	}
}

func TestCompareExchangeDirection(t *testing.T) {
	net := product.MustNew(graph.Path(2), 1)
	m := MustNew(net, []Key{3, 7})
	// (hi, lo) ordering: put the max at node 0.
	m.CompareExchange([][2]int{{1, 0}})
	if m.Key(0) != 7 || m.Key(1) != 3 {
		t.Errorf("descending pair failed: %d %d", m.Key(0), m.Key(1))
	}
}

func TestCompareExchangeRoutedCost(t *testing.T) {
	// Star factor: labels 1 and 2 are both leaves, two hops apart, so a
	// compare-exchange between them needs routing through the hub.
	net := product.MustNew(graph.Star(4), 1)
	m := MustNew(net, []Key{0, 9, 3, 5})
	m.CompareExchange([][2]int{{1, 2}})
	c := m.Clock()
	if c.RoutedPhases != 1 {
		t.Errorf("expected a routed phase, clock=%+v", c)
	}
	if c.Rounds < 2 {
		t.Errorf("routed phase cost %d rounds, want ≥2", c.Rounds)
	}
	if m.Key(1) != 3 || m.Key(2) != 9 {
		t.Error("routed compare-exchange did not order keys")
	}
}

func TestCompareExchangePanicsOnOverlap(t *testing.T) {
	net := product.MustNew(graph.Path(3), 1)
	m := MustNew(net, seqKeys(3))
	defer func() {
		if recover() == nil {
			t.Fatal("overlapping pairs accepted")
		}
	}()
	m.CompareExchange([][2]int{{0, 1}, {1, 2}})
}

func TestCompareExchangePanicsOnMultiDim(t *testing.T) {
	net := product.MustNew(graph.Path(3), 2)
	m := MustNew(net, seqKeys(9))
	defer func() {
		if recover() == nil {
			t.Fatal("diagonal pair accepted")
		}
	}()
	m.CompareExchange([][2]int{{0, 4}}) // differs in both dimensions
}

func TestCompareExchangePanicsOnSelfPair(t *testing.T) {
	net := product.MustNew(graph.Path(3), 1)
	m := MustNew(net, seqKeys(3))
	defer func() {
		if recover() == nil {
			t.Fatal("self pair accepted")
		}
	}()
	m.CompareExchange([][2]int{{1, 1}})
}

func TestEmptyPhaseIsFree(t *testing.T) {
	net := product.MustNew(graph.Path(3), 1)
	m := MustNew(net, seqKeys(3))
	m.CompareExchange(nil)
	if c := m.Clock(); c.Rounds != 0 || c.ComparePhases != 0 {
		t.Errorf("empty phase charged: %+v", c)
	}
}

func TestGoroutineExecMatchesSequential(t *testing.T) {
	net := product.MustNew(graph.Cycle(4), 2)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		keys := make([]Key, net.Nodes())
		for i := range keys {
			keys[i] = Key(rng.Intn(100))
		}
		seq := MustNew(net, keys)
		par := MustNew(net, keys)
		par.SetExecutor(GoroutineExec{})
		// A few random disjoint dimension-1 pairs.
		var pairs [][2]int
		for row := 0; row < 4; row++ {
			a := row * 4
			b := a + 1
			if rng.Intn(2) == 0 {
				a, b = b, a
			}
			pairs = append(pairs, [2]int{a, b})
		}
		seq.CompareExchange(pairs)
		par.CompareExchange(pairs)
		sk, pk := seq.Keys(), par.Keys()
		for i := range sk {
			if sk[i] != pk[i] {
				t.Fatalf("trial %d: executors disagree at node %d: %d vs %d", trial, i, sk[i], pk[i])
			}
		}
		if seq.Clock() != par.Clock() {
			t.Fatalf("clocks disagree: %+v vs %+v", seq.Clock(), par.Clock())
		}
	}
}

func TestParallelExecMatchesSequential(t *testing.T) {
	net := product.MustNew(graph.Path(8), 2)
	rng := rand.New(rand.NewSource(6))
	for _, workers := range []int{0, 1, 3, 8} {
		keys := make([]Key, net.Nodes())
		for i := range keys {
			keys[i] = Key(rng.Intn(1000))
		}
		seq := MustNew(net, keys)
		par := MustNew(net, keys)
		par.SetExecutor(ParallelExec{Workers: workers})
		var pairs [][2]int
		for row := 0; row < 8; row++ {
			for x := 0; x+1 < 8; x += 2 {
				pairs = append(pairs, [2]int{row*8 + x, row*8 + x + 1})
			}
		}
		seq.CompareExchange(pairs)
		par.CompareExchange(pairs)
		sk, pk := seq.Keys(), par.Keys()
		for i := range sk {
			if sk[i] != pk[i] {
				t.Fatalf("workers=%d: divergence at node %d", workers, i)
			}
		}
	}
}

func TestParallelExecSmallPhaseFallsBack(t *testing.T) {
	net := product.MustNew(graph.Path(4), 1)
	m := MustNew(net, []Key{4, 3, 2, 1})
	m.SetExecutor(ParallelExec{Workers: 8})
	m.CompareExchange([][2]int{{0, 1}})
	if m.Key(0) != 3 || m.Key(1) != 4 {
		t.Error("small phase mishandled")
	}
}

func TestSnakeKeysAndLoadSnake(t *testing.T) {
	net := product.MustNew(graph.Path(3), 2)
	m := MustNew(net, make([]Key, 9))
	want := []Key{10, 20, 30, 40, 50, 60, 70, 80, 90}
	m.LoadSnake(want)
	got := m.SnakeKeys()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("snake round trip failed at %d: %d", i, got[i])
		}
	}
	if !m.IsSortedSnake() {
		t.Error("sorted snake load reported unsorted")
	}
	m.LoadSnake([]Key{1, 2, 3, 4, 5, 4, 7, 8, 9})
	if m.IsSortedSnake() {
		t.Error("unsorted snake reported sorted")
	}
}

func TestBlockSnakeKeys(t *testing.T) {
	net := product.MustNew(graph.Path(3), 3)
	keys := make([]Key, 27)
	for i := range keys {
		keys[i] = Key(i)
	}
	m := MustNew(net, keys)
	dims := []int{1, 2}
	base := net.ID([]int{0, 0, 2})
	got := m.BlockSnakeKeys(base, dims)
	if len(got) != 9 {
		t.Fatalf("block size %d", len(got))
	}
	// First key of the block should be the base node's key.
	if got[0] != m.Key(base) {
		t.Errorf("block snake pos 0 = %d want key at base %d", got[0], m.Key(base))
	}
	// Monotone block check helper agrees with a manual scan.
	if m.IsBlockSortedSnake(base, dims) != isNonDecreasing(got) {
		t.Error("IsBlockSortedSnake disagrees with manual check")
	}
}

func isNonDecreasing(ks []Key) bool {
	for i := 1; i < len(ks); i++ {
		if ks[i] < ks[i-1] {
			return false
		}
	}
	return true
}

func TestClockAttribution(t *testing.T) {
	net := product.MustNew(graph.Path(4), 1)
	m := MustNew(net, seqKeys(4))
	m.BeginS2()
	m.CompareExchange([][2]int{{0, 1}})
	m.EndS2()
	m.CompareExchange([][2]int{{2, 3}})
	c := m.Clock()
	if c.S2Rounds != 1 || c.SweepRounds != 1 || c.Rounds != 2 {
		t.Errorf("attribution wrong: %+v", c)
	}
	m.AddS2Phase()
	m.AddSweepPhase()
	c = m.Clock()
	if c.S2Phases != 1 || c.SweepPhases != 1 {
		t.Errorf("phase counters wrong: %+v", c)
	}
	m.ResetClock()
	if m.Clock() != (Clock{}) {
		t.Error("ResetClock did not zero")
	}
}

func TestRoutedCostCached(t *testing.T) {
	net := product.MustNew(graph.CompleteBinaryTree(3), 2)
	keys := make([]Key, net.Nodes())
	for i := range keys {
		keys[i] = Key(net.Nodes() - i)
	}
	m := MustNew(net, keys)
	// Same pairing pattern twice must charge the same cost both times.
	var pairs [][2]int
	for row := 0; row < 7; row++ {
		pairs = append(pairs, [2]int{row * 7, row*7 + 2}) // labels 0 and 2: two hops in cbt3
	}
	m.CompareExchange(pairs)
	first := m.Clock().Rounds
	m.CompareExchange(pairs)
	second := m.Clock().Rounds - first
	if first != second {
		t.Errorf("cost not deterministic: %d then %d", first, second)
	}
	if first < 2 {
		t.Errorf("tree exchange cost %d, want ≥2", first)
	}
}

func BenchmarkCompareExchangePhase(b *testing.B) {
	net := product.MustNew(graph.Path(8), 3)
	keys := make([]Key, net.Nodes())
	rng := rand.New(rand.NewSource(1))
	for i := range keys {
		keys[i] = Key(rng.Int63())
	}
	m := MustNew(net, keys)
	var pairs [][2]int
	for b0 := 0; b0 < net.Nodes(); b0 += 8 {
		for x := 0; x+1 < 8; x += 2 {
			pairs = append(pairs, [2]int{b0 + x, b0 + x + 1})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.CompareExchange(pairs)
	}
}

func BenchmarkGoroutineExecPhase(b *testing.B) {
	net := product.MustNew(graph.Path(8), 2)
	keys := make([]Key, net.Nodes())
	for i := range keys {
		keys[i] = Key(i * 7 % 64)
	}
	m := MustNew(net, keys)
	m.SetExecutor(GoroutineExec{})
	var pairs [][2]int
	for row := 0; row < 8; row++ {
		for x := 0; x+1 < 8; x += 2 {
			pairs = append(pairs, [2]int{row*8 + x, row*8 + x + 1})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.CompareExchange(pairs)
	}
}

func TestRecorderExec(t *testing.T) {
	net := product.MustNew(graph.Path(4), 1)
	m := MustNew(net, seqKeys(4))
	rec := &RecorderExec{Inner: SequentialExec{}}
	m.SetExecutor(rec)
	m.CompareExchange([][2]int{{0, 1}})
	m.CompareExchange([][2]int{{2, 3}, {0, 1}})
	if len(rec.Phases) != 2 || len(rec.Phases[1]) != 2 {
		t.Fatalf("recorded %d phases", len(rec.Phases))
	}
	// Recording with no inner executor must not move keys.
	m2 := MustNew(net, []Key{9, 1, 2, 3})
	rec2 := &RecorderExec{}
	m2.SetExecutor(rec2)
	m2.CompareExchange([][2]int{{0, 1}})
	if m2.Key(0) != 9 {
		t.Error("nil inner executor moved keys")
	}
}

func TestIdleRoundAttribution(t *testing.T) {
	net := product.MustNew(graph.Path(3), 1)
	m := MustNew(net, seqKeys(3))
	m.BeginS2()
	m.IdleRound()
	m.EndS2()
	m.IdleRound()
	c := m.Clock()
	if c.Rounds != 2 || c.S2Rounds != 1 || c.SweepRounds != 1 {
		t.Errorf("idle attribution wrong: %+v", c)
	}
}

func TestNetAndPlanAccessors(t *testing.T) {
	net := product.MustNew(graph.Path(3), 2)
	m := MustNew(net, seqKeys(9))
	if m.Net() != net {
		t.Error("Net() wrong")
	}
	if m.Plan() == nil || m.Plan() != m.Plan() {
		t.Error("Plan() not cached")
	}
}

func TestHeteroPhaseCostPerDimension(t *testing.T) {
	// Dimension 1 = path (adjacent pairs cost 1); dimension 2 = star
	// (leaf-to-leaf exchange costs more). The machine must price each
	// dimension with its own factor.
	net := product.MustNewHetero([]*graph.Graph{graph.Path(4), graph.Star(4)})
	keys := make([]Key, net.Nodes())
	for i := range keys {
		keys[i] = Key(net.Nodes() - i)
	}
	m := MustNew(net, keys)
	// Dim-1 adjacent pair: 1 round.
	m.CompareExchange([][2]int{{0, 1}})
	if m.Clock().Rounds != 1 {
		t.Fatalf("path-dim pair cost %d", m.Clock().Rounds)
	}
	// Dim-2 pair between star labels 1 and 2 (two hops through hub).
	a := net.ID([]int{0, 1})
	b := net.ID([]int{0, 2})
	m.CompareExchange([][2]int{{a, b}})
	c := m.Clock()
	if c.Rounds < 3 || c.RoutedPhases != 1 {
		t.Errorf("star-dim pair not routed: %+v", c)
	}
}

// TestExchangeCostCacheLargeFactor is a regression test for the routed-
// exchange cost cache: keys used to encode factor node ids with byte()
// casts, so on factors with ≥256 nodes the pair (2,260) aliased the pair
// (2,4) and the cache returned the wrong (far too small) routing charge.
func TestExchangeCostCacheLargeFactor(t *testing.T) {
	net := product.MustNew(graph.Path(300), 1)
	m := MustNew(net, make([]Key, net.Nodes()))
	// Populate the cache with a short routed exchange: nodes 2 and 4 on
	// the path are two hops apart.
	m.CompareExchange([][2]int{{2, 4}})
	short := m.Clock().Rounds
	if short < 2 {
		t.Fatalf("exchange (2,4) charged %d rounds, want >= 2", short)
	}
	m.ResetClock()
	// The pair (2,260) is 258 hops apart. Under byte truncation its cache
	// signature collided with (2,4) and it charged the short cost.
	m.CompareExchange([][2]int{{2, 260}})
	far := m.Clock().Rounds
	if far <= short {
		t.Fatalf("exchange (2,260) charged %d rounds, want > %d (cache key collision)", far, short)
	}
	if want := net.Dist(2, 260); far < want {
		t.Errorf("exchange (2,260) charged %d rounds, want >= distance %d", far, want)
	}
}

// TestParallelExecDefaultWorkers checks ParallelExec with the default
// pool size sorts identically to SequentialExec on a large phase.
func TestParallelExecDefaultWorkers(t *testing.T) {
	net := product.MustNew(graph.Path(64), 2)
	keys := make([]Key, net.Nodes())
	rng := rand.New(rand.NewSource(7))
	for i := range keys {
		keys[i] = Key(rng.Intn(1000))
	}
	mSeq := MustNew(net, keys)
	mPar := MustNew(net, keys)
	mPar.SetExecutor(ParallelExec{})
	var pairs [][2]int
	for a := 0; a+1 < 64; a += 2 {
		for b := 0; b < 64; b++ {
			x := net.SetDigit(net.SetDigit(0, 1, a), 2, b)
			y := net.SetDigit(net.SetDigit(0, 1, a+1), 2, b)
			pairs = append(pairs, [2]int{x, y})
		}
	}
	mSeq.CompareExchange(pairs)
	mPar.CompareExchange(pairs)
	seq, par := mSeq.Keys(), mPar.Keys()
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("ParallelExec diverged from SequentialExec at node %d", i)
		}
	}
}

// TestGoroutineExecBoundedFanOut checks the capped executor still agrees
// with the sequential one when the phase has far more pairs than the
// semaphore admits at once.
func TestGoroutineExecBoundedFanOut(t *testing.T) {
	net := product.MustNew(graph.Path(128), 1)
	keys := make([]Key, net.Nodes())
	rng := rand.New(rand.NewSource(11))
	for i := range keys {
		keys[i] = Key(rng.Intn(1000))
	}
	mSeq := MustNew(net, keys)
	mGor := MustNew(net, keys)
	mGor.SetExecutor(GoroutineExec{MaxPairs: 3})
	var pairs [][2]int
	for a := 0; a+1 < 128; a += 2 {
		pairs = append(pairs, [2]int{a, a + 1})
	}
	mSeq.CompareExchange(pairs)
	mGor.CompareExchange(pairs)
	seq, gor := mSeq.Keys(), mGor.Keys()
	for i := range seq {
		if seq[i] != gor[i] {
			t.Fatalf("GoroutineExec diverged from SequentialExec at node %d", i)
		}
	}
}
