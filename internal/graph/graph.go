// Package graph provides the factor graphs from which product networks
// are built, together with the labeling conventions the sorting algorithm
// relies on.
//
// A factor graph G has nodes 0..N-1 and the node labels define the
// ascending order of sorted data (Section 2 of the paper). Constructors
// label nodes along a Hamiltonian path whenever the graph has one, so
// that compare-exchange between label-consecutive nodes is a single-hop
// operation; when no Hamiltonian path exists (e.g. complete binary
// trees), the graph is marked non-Hamiltonian and the sorting algorithm
// falls back to permutation routing within G, exactly as the paper
// prescribes.
package graph

import (
	"fmt"
	"sort"
)

// Graph is an undirected, connected, simple factor graph whose node
// labels 0..N-1 define the sorted order of data.
type Graph struct {
	name        string
	adj         [][]int
	hamiltonian bool // labels 0,1,…,N-1 trace a Hamiltonian path
}

// New builds a graph from an edge list and validates it: edges must be
// simple (no loops, no duplicates), endpoints in range, and the graph
// connected. The hamiltonian flag is recomputed from the edges rather
// than trusted.
func New(name string, n int, edges [][2]int) (*Graph, error) {
	if n <= 0 {
		return nil, fmt.Errorf("graph %s: need at least one node, got %d", name, n)
	}
	adj := make([][]int, n)
	seen := make(map[[2]int]bool, len(edges))
	for _, e := range edges {
		u, v := e[0], e[1]
		if u < 0 || u >= n || v < 0 || v >= n {
			return nil, fmt.Errorf("graph %s: edge (%d,%d) out of range [0,%d)", name, u, v, n)
		}
		if u == v {
			return nil, fmt.Errorf("graph %s: self-loop at %d", name, u)
		}
		if u > v {
			u, v = v, u
		}
		if seen[[2]int{u, v}] {
			return nil, fmt.Errorf("graph %s: duplicate edge (%d,%d)", name, u, v)
		}
		seen[[2]int{u, v}] = true
		adj[u] = append(adj[u], v)
		adj[v] = append(adj[v], u)
	}
	for _, a := range adj {
		sort.Ints(a)
	}
	g := &Graph{name: name, adj: adj}
	if !g.IsConnected() {
		return nil, fmt.Errorf("graph %s: not connected", name)
	}
	g.hamiltonian = g.labelsTracePath()
	return g, nil
}

// MustNew is New for statically-correct constructions; it panics on error.
func MustNew(name string, n int, edges [][2]int) *Graph {
	g, err := New(name, n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// labelsTracePath reports whether consecutive labels i, i+1 are adjacent
// for every i, i.e. the identity labeling follows a Hamiltonian path.
func (g *Graph) labelsTracePath() bool {
	for i := 0; i+1 < g.N(); i++ {
		if !g.HasEdge(i, i+1) {
			return false
		}
	}
	return true
}

// Name returns the graph's descriptive name.
func (g *Graph) Name() string { return g.name }

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.adj) }

// Neighbors returns the sorted adjacency list of v. The caller must not
// modify the returned slice.
func (g *Graph) Neighbors(v int) []int { return g.adj[v] }

// Degree returns the number of neighbors of v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// MaxDegree returns the maximum node degree.
func (g *Graph) MaxDegree() int {
	m := 0
	for _, a := range g.adj {
		if len(a) > m {
			m = len(a)
		}
	}
	return m
}

// HasEdge reports whether u and v are adjacent.
func (g *Graph) HasEdge(u, v int) bool {
	a := g.adj[u]
	i := sort.SearchInts(a, v)
	return i < len(a) && a[i] == v
}

// Edges returns every edge once, as (u,v) with u < v, in sorted order.
func (g *Graph) Edges() [][2]int {
	var es [][2]int
	for u, a := range g.adj {
		for _, v := range a {
			if u < v {
				es = append(es, [2]int{u, v})
			}
		}
	}
	return es
}

// HamiltonianLabeled reports whether node labels 0..N-1 trace a
// Hamiltonian path, so that label-consecutive nodes are adjacent.
func (g *Graph) HamiltonianLabeled() bool { return g.hamiltonian }

// IsConnected reports whether the graph is connected.
func (g *Graph) IsConnected() bool {
	if g.N() == 0 {
		return false
	}
	dist := g.BFS(0)
	for _, d := range dist {
		if d < 0 {
			return false
		}
	}
	return true
}

// BFS returns the distance from src to every node (-1 if unreachable).
func (g *Graph) BFS(src int) []int {
	dist := make([]int, g.N())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// Dist returns the hop distance between u and v.
func (g *Graph) Dist(u, v int) int { return g.BFS(u)[v] }

// Diameter returns the maximum pairwise distance.
func (g *Graph) Diameter() int {
	d := 0
	for v := 0; v < g.N(); v++ {
		for _, x := range g.BFS(v) {
			if x > d {
				d = x
			}
		}
	}
	return d
}

// ShortestPath returns one shortest path from u to v inclusive of both
// endpoints.
func (g *Graph) ShortestPath(u, v int) []int {
	prev := make([]int, g.N())
	for i := range prev {
		prev[i] = -1
	}
	prev[u] = u
	queue := []int{u}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		if x == v {
			break
		}
		for _, y := range g.adj[x] {
			if prev[y] < 0 {
				prev[y] = x
				queue = append(queue, y)
			}
		}
	}
	if prev[v] < 0 {
		return nil
	}
	var rev []int
	for x := v; ; x = prev[x] {
		rev = append(rev, x)
		if x == u {
			break
		}
	}
	path := make([]int, len(rev))
	for i, x := range rev {
		path[len(rev)-1-i] = x
	}
	return path
}

// MaxLabelDilation returns the maximum hop distance between nodes with
// consecutive labels: 1 for Hamiltonian-labeled graphs, larger otherwise.
// It bounds the slowdown of compare-exchange between snake neighbors.
func (g *Graph) MaxLabelDilation() int {
	m := 0
	for i := 0; i+1 < g.N(); i++ {
		if d := g.Dist(i, i+1); d > m {
			m = d
		}
	}
	return m
}

// Relabel returns a copy of g whose node i is old node perm[i]; perm must
// be a permutation of 0..N-1. Used to move a found Hamiltonian path onto
// the identity labeling.
func Relabel(g *Graph, perm []int) (*Graph, error) {
	n := g.N()
	if len(perm) != n {
		return nil, fmt.Errorf("graph %s: relabel permutation has length %d, want %d", g.name, len(perm), n)
	}
	inv := make([]int, n)
	for i := range inv {
		inv[i] = -1
	}
	for newID, oldID := range perm {
		if oldID < 0 || oldID >= n || inv[oldID] != -1 {
			return nil, fmt.Errorf("graph %s: invalid relabel permutation", g.name)
		}
		inv[oldID] = newID
	}
	var edges [][2]int
	for _, e := range g.Edges() {
		edges = append(edges, [2]int{inv[e[0]], inv[e[1]]})
	}
	return New(g.name, n, edges)
}

// FindHamiltonianPath searches for a Hamiltonian path by backtracking and
// returns it as a node sequence, or nil if none exists. Intended for the
// small factor graphs used here (N ≤ ~24); cost is exponential in N.
func (g *Graph) FindHamiltonianPath() []int {
	n := g.N()
	if n == 1 {
		return []int{0}
	}
	used := make([]bool, n)
	path := make([]int, 0, n)
	// Try start nodes in increasing degree order: low-degree nodes (path
	// endpoints) prune the search fastest.
	starts := make([]int, n)
	for i := range starts {
		starts[i] = i
	}
	sort.Slice(starts, func(a, b int) bool { return g.Degree(starts[a]) < g.Degree(starts[b]) })
	var dfs func(v int) bool
	dfs = func(v int) bool {
		used[v] = true
		path = append(path, v)
		if len(path) == n {
			return true
		}
		for _, w := range g.adj[v] {
			if !used[w] && dfs(w) {
				return true
			}
		}
		used[v] = false
		path = path[:len(path)-1]
		return false
	}
	for _, s := range starts {
		if dfs(s) {
			return path
		}
	}
	return nil
}

// HamiltonianRelabel relabels g along a Hamiltonian path if one exists;
// otherwise it returns g unchanged. The second result reports whether a
// relabeling happened (or was already in place).
func HamiltonianRelabel(g *Graph) (*Graph, bool) {
	if g.HamiltonianLabeled() {
		return g, true
	}
	path := g.FindHamiltonianPath()
	if path == nil {
		return g, false
	}
	rg, err := Relabel(g, path)
	if err != nil {
		// The permutation comes from our own search; failure is a bug.
		panic(err)
	}
	return rg, true
}
