package graph

import (
	"fmt"
	"math/rand"
)

// Random factor generators, used for fuzzing the sorting algorithm over
// arbitrary connected topologies and exposed for users who want
// irregular factors.

// RandomTree returns a uniform random recursive tree on n nodes: node v
// attaches to a uniformly random earlier node. Deterministic in seed.
// The result is relabeled along a dilation-≤3 linear order so sorting
// sweeps stay cheap.
func RandomTree(n int, seed int64) *Graph {
	if n < 1 {
		panic("graph: random tree needs n ≥ 1")
	}
	rng := rand.New(rand.NewSource(seed))
	var edges [][2]int
	for v := 1; v < n; v++ {
		edges = append(edges, [2]int{v, rng.Intn(v)})
	}
	g := MustNew(fmt.Sprintf("randtree%d_%d", n, seed), n, edges)
	if rg, ok := HamiltonianRelabel(g); ok && n <= 20 {
		return rg
	}
	return LinearRelabel(g)
}

// RandomConnected returns a random connected graph: a random tree plus
// `extra` additional random edges (duplicates skipped). Deterministic in
// seed. Relabeled along a Hamiltonian path when small enough to search
// and one exists, else along a dilation-≤3 linear order.
func RandomConnected(n, extra int, seed int64) *Graph {
	if n < 1 {
		panic("graph: random graph needs n ≥ 1")
	}
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[[2]int]bool)
	var edges [][2]int
	add := func(a, b int) {
		if a == b {
			return
		}
		if a > b {
			a, b = b, a
		}
		if !seen[[2]int{a, b}] {
			seen[[2]int{a, b}] = true
			edges = append(edges, [2]int{a, b})
		}
	}
	for v := 1; v < n; v++ {
		add(v, rng.Intn(v))
	}
	for i := 0; i < extra; i++ {
		add(rng.Intn(n), rng.Intn(n))
	}
	g := MustNew(fmt.Sprintf("randgraph%d_%d", n, seed), n, edges)
	if n <= 18 {
		if rg, ok := HamiltonianRelabel(g); ok {
			return rg
		}
	}
	return LinearRelabel(g)
}
