package graph

import "fmt"

// Path returns the n-node linear array 0–1–…–(n-1). Grids are products
// of paths.
func Path(n int) *Graph {
	edges := make([][2]int, 0, n-1)
	for i := 0; i+1 < n; i++ {
		edges = append(edges, [2]int{i, i + 1})
	}
	return MustNew(fmt.Sprintf("path%d", n), n, edges)
}

// Cycle returns the n-node ring (n ≥ 3). Tori are products of cycles.
func Cycle(n int) *Graph {
	if n < 3 {
		panic("graph: cycle needs at least 3 nodes")
	}
	edges := make([][2]int, 0, n)
	for i := 0; i+1 < n; i++ {
		edges = append(edges, [2]int{i, i + 1})
	}
	edges = append(edges, [2]int{0, n - 1})
	return MustNew(fmt.Sprintf("cycle%d", n), n, edges)
}

// K2 returns the two-node complete graph; its r-dimensional product is
// the hypercube.
func K2() *Graph { return MustNew("K2", 2, [][2]int{{0, 1}}) }

// Complete returns the complete graph on n nodes.
func Complete(n int) *Graph {
	var edges [][2]int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, [2]int{i, j})
		}
	}
	return MustNew(fmt.Sprintf("K%d", n), n, edges)
}

// Star returns the n-node star: node 0 is the hub. Non-Hamiltonian for
// n ≥ 4, so it exercises the routing fallback.
func Star(n int) *Graph {
	if n < 2 {
		panic("graph: star needs at least 2 nodes")
	}
	edges := make([][2]int, 0, n-1)
	for i := 1; i < n; i++ {
		edges = append(edges, [2]int{0, i})
	}
	return MustNew(fmt.Sprintf("star%d", n), n, edges)
}

// CompleteBinaryTree returns the complete binary tree with the given
// number of levels (levels ≥ 1, so 2^levels − 1 nodes). Mesh-connected
// trees (MCT) are products of these. The tree is labeled in in-order so
// that labels still reflect the left-to-right sorted order of the leaves
// and internal nodes; the graph is not Hamiltonian for levels ≥ 3 and the
// sorting algorithm uses routed compare-exchange on it.
func CompleteBinaryTree(levels int) *Graph {
	if levels < 1 {
		panic("graph: tree needs at least one level")
	}
	n := (1 << levels) - 1
	// Build with heap indices 1..n, then relabel heap index -> in-order.
	inorder := make([]int, 0, n)
	var walk func(h int)
	walk = func(h int) {
		if h > n {
			return
		}
		walk(2 * h)
		inorder = append(inorder, h-1) // zero-based heap id
		walk(2*h + 1)
	}
	walk(1)
	pos := make([]int, n) // heap id -> in-order label
	for label, heapID := range inorder {
		pos[heapID] = label
	}
	var edges [][2]int
	for h := 2; h <= n; h++ {
		edges = append(edges, [2]int{pos[h-1], pos[h/2-1]})
	}
	return MustNew(fmt.Sprintf("cbt%d", levels), n, edges)
}

// Petersen returns the 10-node Petersen graph (outer 5-cycle, inner
// pentagram, five spokes), relabeled along one of its Hamiltonian paths
// so label-consecutive nodes are adjacent. Products of Petersen graphs
// are the "Petersen cubes" of Section 5.4.
func Petersen() *Graph {
	var edges [][2]int
	for i := 0; i < 5; i++ {
		edges = append(edges, [2]int{i, (i + 1) % 5})     // outer cycle
		edges = append(edges, [2]int{i + 5, (i+2)%5 + 5}) // inner pentagram
		edges = append(edges, [2]int{i, i + 5})           // spokes
	}
	g := MustNew("petersen", 10, edges)
	g, ok := HamiltonianRelabel(g)
	if !ok {
		panic("graph: Petersen graph must have a Hamiltonian path")
	}
	return g
}

// DeBruijn returns the undirected base-b, dimension-d de Bruijn graph:
// nodes are the b^d base-b strings, and x is adjacent to every left or
// right shift of x (self-loops dropped, parallel edges merged). The
// result is relabeled along a Hamiltonian path when one exists.
func DeBruijn(b, d int) *Graph {
	if b < 2 || d < 1 {
		panic("graph: de Bruijn needs base ≥ 2 and dimension ≥ 1")
	}
	n := 1
	for i := 0; i < d; i++ {
		n *= b
	}
	seen := make(map[[2]int]bool)
	var edges [][2]int
	add := func(u, v int) {
		if u == v {
			return
		}
		if u > v {
			u, v = v, u
		}
		if !seen[[2]int{u, v}] {
			seen[[2]int{u, v}] = true
			edges = append(edges, [2]int{u, v})
		}
	}
	for x := 0; x < n; x++ {
		for a := 0; a < b; a++ {
			add(x, (x*b+a)%n) // left shift, append symbol a
		}
	}
	g := MustNew(fmt.Sprintf("debruijn%d_%d", b, d), n, edges)
	g, _ = HamiltonianRelabel(g)
	return g
}

// ShuffleExchange returns the undirected dimension-d shuffle-exchange
// graph on 2^d nodes: exchange edges flip the lowest bit, shuffle edges
// rotate the bit string left (self-loops dropped). Relabeled along a
// Hamiltonian path when one exists.
func ShuffleExchange(d int) *Graph {
	if d < 1 {
		panic("graph: shuffle-exchange needs dimension ≥ 1")
	}
	n := 1 << d
	seen := make(map[[2]int]bool)
	var edges [][2]int
	add := func(u, v int) {
		if u == v {
			return
		}
		if u > v {
			u, v = v, u
		}
		if !seen[[2]int{u, v}] {
			seen[[2]int{u, v}] = true
			edges = append(edges, [2]int{u, v})
		}
	}
	for x := 0; x < n; x++ {
		add(x, x^1) // exchange
		rot := ((x << 1) | (x >> (d - 1))) & (n - 1)
		add(x, rot) // shuffle
	}
	g := MustNew(fmt.Sprintf("shuffleexchange%d", d), n, edges)
	g, _ = HamiltonianRelabel(g)
	return g
}
