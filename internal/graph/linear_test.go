package graph

import (
	"math/rand"
	"testing"
)

func checkOrder(t *testing.T, g *Graph, order []int, maxDilation int) {
	t.Helper()
	if len(order) != g.N() {
		t.Fatalf("%s: order has %d entries for %d nodes", g.Name(), len(order), g.N())
	}
	seen := make([]bool, g.N())
	for _, v := range order {
		if v < 0 || v >= g.N() || seen[v] {
			t.Fatalf("%s: order %v is not a permutation", g.Name(), order)
		}
		seen[v] = true
	}
	for i := 1; i < len(order); i++ {
		if d := g.Dist(order[i-1], order[i]); d > maxDilation {
			t.Fatalf("%s: consecutive order vertices %d,%d at distance %d > %d",
				g.Name(), order[i-1], order[i], d, maxDilation)
		}
	}
}

func TestThreeDilationOrderTrees(t *testing.T) {
	for levels := 1; levels <= 6; levels++ {
		g := CompleteBinaryTree(levels)
		checkOrder(t, g, ThreeDilationOrder(g), 3)
	}
}

func TestThreeDilationOrderStars(t *testing.T) {
	for _, n := range []int{2, 3, 5, 9, 17} {
		g := Star(n)
		checkOrder(t, g, ThreeDilationOrder(g), 3)
	}
}

func TestThreeDilationOrderHamiltonianIsIdentity(t *testing.T) {
	g := Path(6)
	order := ThreeDilationOrder(g)
	for i, v := range order {
		if v != i {
			t.Fatalf("Hamiltonian-labeled graph reordered: %v", order)
		}
	}
}

func TestThreeDilationOrderSingleton(t *testing.T) {
	g := MustNew("one", 1, nil)
	order := ThreeDilationOrder(g)
	if len(order) != 1 || order[0] != 0 {
		t.Fatalf("order %v", order)
	}
}

// TestThreeDilationOrderRandomTrees fuzzes the Karaganis construction
// over random trees, the worst case for the spanning-tree argument.
func TestThreeDilationOrderRandomTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(40)
		var edges [][2]int
		for v := 1; v < n; v++ {
			edges = append(edges, [2]int{v, rng.Intn(v)}) // random recursive tree
		}
		g := MustNew("randtree", n, edges)
		checkOrder(t, g, ThreeDilationOrder(g), 3)
	}
}

// TestThreeDilationOrderRandomGraphs: arbitrary connected graphs (the
// order only uses a spanning tree, so dilation ≤ 3 still holds).
func TestThreeDilationOrderRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(25)
		var edges [][2]int
		for v := 1; v < n; v++ {
			edges = append(edges, [2]int{v, rng.Intn(v)})
		}
		// Extra random edges.
		for k := 0; k < n/2; k++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				g, err := New("tmp", n, append(edges, [2]int{a, b}))
				if err == nil && g != nil {
					edges = append(edges, [2]int{a, b})
				}
			}
		}
		g := MustNew("randgraph", n, edges)
		checkOrder(t, g, ThreeDilationOrder(g), 3)
	}
}

func TestLinearRelabel(t *testing.T) {
	g := CompleteBinaryTree(4)
	rg := LinearRelabel(g)
	if rg.N() != g.N() {
		t.Fatal("node count changed")
	}
	if d := rg.MaxLabelDilation(); d > 3 {
		t.Fatalf("relabel dilation %d > 3", d)
	}
	// In-order labeling of a 4-level tree has worse dilation than 3?
	// (It happens to be ≤ 2h; just check LinearRelabel is no worse.)
	if rg.MaxLabelDilation() > g.MaxLabelDilation() {
		t.Fatalf("LinearRelabel made dilation worse: %d vs %d",
			rg.MaxLabelDilation(), g.MaxLabelDilation())
	}
}

func TestLinearRelabelStarDilation(t *testing.T) {
	g := Star(9)
	rg := LinearRelabel(g)
	if d := rg.MaxLabelDilation(); d > 2 {
		t.Fatalf("star relabel dilation %d (hub structure allows 2)", d)
	}
}

func BenchmarkThreeDilationOrderTree6(b *testing.B) {
	g := CompleteBinaryTree(6)
	for i := 0; i < b.N; i++ {
		ThreeDilationOrder(g)
	}
}
