package graph

import "testing"

// Table-driven checks of the dilation-3 linear-array embedding
// (Section 2 of the paper, via Karaganis' tree-cube construction) on
// the non-Hamiltonian factors the repo ships: stars, complete binary
// trees, and the Petersen graph. Each case asserts the three load-
// bearing properties edge by edge: the order is a permutation,
// consecutive vertices sit within distance 3 in the original graph,
// and the relabeled graph's label dilation is at most 3.
func TestThreeDilationEmbedding(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
	}{
		{"star-6", Star(6)},
		{"star-8", Star(8)},
		{"cbt-3", CompleteBinaryTree(3)},
		{"cbt-4", CompleteBinaryTree(4)},
		{"petersen", Petersen()},
		{"random-tree-17", RandomTree(17, 3)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := tc.g
			order := ThreeDilationOrder(g)
			if len(order) != g.N() {
				t.Fatalf("order has %d entries, graph has %d vertices", len(order), g.N())
			}
			seen := make([]bool, g.N())
			for i, v := range order {
				if v < 0 || v >= g.N() {
					t.Fatalf("order[%d] = %d out of range", i, v)
				}
				if seen[v] {
					t.Fatalf("order[%d] = %d repeats a vertex", i, v)
				}
				seen[v] = true
			}
			for i := 0; i+1 < len(order); i++ {
				if d := g.Dist(order[i], order[i+1]); d > 3 {
					t.Errorf("consecutive vertices %d -> %d at distance %d > 3",
						order[i], order[i+1], d)
				}
			}
			rg := LinearRelabel(g)
			if got := rg.MaxLabelDilation(); got > 3 {
				t.Errorf("LinearRelabel: max label dilation %d > 3", got)
			}
			if rg.N() != g.N() {
				t.Errorf("LinearRelabel changed vertex count: %d != %d", rg.N(), g.N())
			}
		})
	}
}

// TestThreeDilationHamiltonianIdentity pins the fast path: a factor
// whose identity labeling already traces a Hamiltonian path must come
// back unchanged (dilation one), not rerouted through the tree-cube
// construction.
func TestThreeDilationHamiltonianIdentity(t *testing.T) {
	for _, g := range []*Graph{Path(5), Cycle(6), Complete(4)} {
		order := ThreeDilationOrder(g)
		for i, v := range order {
			if v != i {
				t.Fatalf("%s: Hamiltonian-labeled graph reordered: order[%d] = %d", g.Name(), i, v)
			}
		}
		if got := LinearRelabel(g).MaxLabelDilation(); got != 1 {
			t.Fatalf("%s: dilation %d, want 1 on Hamiltonian labeling", g.Name(), got)
		}
	}
}
