package graph

import (
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New("bad", 0, nil); err == nil {
		t.Error("zero nodes accepted")
	}
	if _, err := New("bad", 3, [][2]int{{0, 3}}); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if _, err := New("bad", 3, [][2]int{{1, 1}}); err == nil {
		t.Error("self-loop accepted")
	}
	if _, err := New("bad", 3, [][2]int{{0, 1}, {1, 0}, {1, 2}}); err == nil {
		t.Error("duplicate edge accepted")
	}
	if _, err := New("bad", 4, [][2]int{{0, 1}, {2, 3}}); err == nil {
		t.Error("disconnected graph accepted")
	}
	if _, err := New("ok", 1, nil); err != nil {
		t.Errorf("single node rejected: %v", err)
	}
}

func TestPath(t *testing.T) {
	g := Path(5)
	if g.N() != 5 {
		t.Fatalf("N=%d", g.N())
	}
	if !g.HamiltonianLabeled() {
		t.Error("path not Hamiltonian-labeled")
	}
	if g.Diameter() != 4 {
		t.Errorf("diameter=%d want 4", g.Diameter())
	}
	if g.MaxDegree() != 2 {
		t.Errorf("max degree=%d want 2", g.MaxDegree())
	}
	if g.HasEdge(0, 2) {
		t.Error("unexpected chord")
	}
	if len(g.Edges()) != 4 {
		t.Errorf("edges=%d want 4", len(g.Edges()))
	}
}

func TestCycle(t *testing.T) {
	g := Cycle(6)
	if !g.HamiltonianLabeled() {
		t.Error("cycle not Hamiltonian-labeled")
	}
	if g.Diameter() != 3 {
		t.Errorf("diameter=%d want 3", g.Diameter())
	}
	for v := 0; v < 6; v++ {
		if g.Degree(v) != 2 {
			t.Errorf("degree(%d)=%d want 2", v, g.Degree(v))
		}
	}
	if !g.HasEdge(0, 5) {
		t.Error("wrap-around edge missing")
	}
}

func TestK2AndComplete(t *testing.T) {
	if g := K2(); !g.HamiltonianLabeled() || g.N() != 2 {
		t.Error("K2 malformed")
	}
	g := Complete(5)
	if g.Diameter() != 1 {
		t.Errorf("K5 diameter=%d", g.Diameter())
	}
	if len(g.Edges()) != 10 {
		t.Errorf("K5 edges=%d want 10", len(g.Edges()))
	}
	if !g.HamiltonianLabeled() {
		t.Error("K5 should be Hamiltonian-labeled")
	}
}

func TestStar(t *testing.T) {
	g := Star(6)
	if g.HamiltonianLabeled() {
		t.Error("star6 cannot be Hamiltonian-labeled")
	}
	if g.Degree(0) != 5 {
		t.Errorf("hub degree=%d", g.Degree(0))
	}
	if g.Diameter() != 2 {
		t.Errorf("diameter=%d want 2", g.Diameter())
	}
	if d := g.MaxLabelDilation(); d != 2 {
		t.Errorf("label dilation=%d want 2", d)
	}
}

func TestCompleteBinaryTree(t *testing.T) {
	for levels := 1; levels <= 4; levels++ {
		g := CompleteBinaryTree(levels)
		wantN := (1 << levels) - 1
		if g.N() != wantN {
			t.Fatalf("levels=%d: N=%d want %d", levels, g.N(), wantN)
		}
		if len(g.Edges()) != wantN-1 {
			t.Fatalf("levels=%d: edges=%d want %d (tree)", levels, len(g.Edges()), wantN-1)
		}
		if !g.IsConnected() {
			t.Fatalf("levels=%d: disconnected", levels)
		}
	}
	// 7-node complete binary tree has no Hamiltonian path.
	g := CompleteBinaryTree(3)
	if g.HamiltonianLabeled() {
		t.Error("cbt3 claims Hamiltonian labeling")
	}
	if p := g.FindHamiltonianPath(); p != nil {
		t.Errorf("cbt3 should have no Hamiltonian path, got %v", p)
	}
	// In-order labeling keeps label dilation small (≤ 2·levels but tiny here).
	if d := g.MaxLabelDilation(); d > 4 {
		t.Errorf("cbt3 label dilation=%d unexpectedly large", d)
	}
	// 3-node "tree" is a path and should be Hamiltonian-labeled.
	if g := CompleteBinaryTree(2); !g.HamiltonianLabeled() {
		t.Error("cbt2 (3-node path) should be Hamiltonian-labeled")
	}
}

func TestPetersen(t *testing.T) {
	g := Petersen()
	if g.N() != 10 {
		t.Fatalf("N=%d", g.N())
	}
	if len(g.Edges()) != 15 {
		t.Fatalf("edges=%d want 15", len(g.Edges()))
	}
	for v := 0; v < 10; v++ {
		if g.Degree(v) != 3 {
			t.Fatalf("degree(%d)=%d want 3 (Petersen is cubic)", v, g.Degree(v))
		}
	}
	if g.Diameter() != 2 {
		t.Errorf("diameter=%d want 2", g.Diameter())
	}
	if !g.HamiltonianLabeled() {
		t.Error("Petersen constructor should relabel along a Hamiltonian path")
	}
	// Petersen has girth 5: no triangles, no 4-cycles. Spot-check triangles.
	for _, e := range g.Edges() {
		for _, w := range g.Neighbors(e[0]) {
			if w != e[1] && g.HasEdge(w, e[1]) {
				t.Fatalf("triangle %d-%d-%d in Petersen graph", e[0], e[1], w)
			}
		}
	}
}

func TestDeBruijn(t *testing.T) {
	g := DeBruijn(2, 3)
	if g.N() != 8 {
		t.Fatalf("N=%d want 8", g.N())
	}
	if g.MaxDegree() > 4 {
		t.Errorf("max degree=%d want ≤4", g.MaxDegree())
	}
	if !g.IsConnected() {
		t.Error("disconnected")
	}
	// Binary de Bruijn graphs are Hamiltonian (de Bruijn sequences exist).
	if !g.HamiltonianLabeled() {
		t.Error("B(2,3) should be Hamiltonian-labeled")
	}
	g4 := DeBruijn(2, 4)
	if g4.N() != 16 || !g4.HamiltonianLabeled() {
		t.Errorf("B(2,4): N=%d ham=%v", g4.N(), g4.HamiltonianLabeled())
	}
	g3 := DeBruijn(3, 2)
	if g3.N() != 9 || !g3.IsConnected() {
		t.Errorf("B(3,2): N=%d connected=%v", g3.N(), g3.IsConnected())
	}
}

func TestShuffleExchange(t *testing.T) {
	for d := 1; d <= 4; d++ {
		g := ShuffleExchange(d)
		if g.N() != 1<<d {
			t.Fatalf("d=%d: N=%d", d, g.N())
		}
		if !g.IsConnected() {
			t.Fatalf("d=%d: disconnected", d)
		}
		if g.MaxDegree() > 3 {
			t.Fatalf("d=%d: max degree=%d want ≤3", d, g.MaxDegree())
		}
	}
	if g := ShuffleExchange(2); !g.HamiltonianLabeled() {
		t.Error("SE(2) should be Hamiltonian-labeled")
	}
}

func TestBFSAndShortestPath(t *testing.T) {
	g := Cycle(8)
	dist := g.BFS(0)
	want := []int{0, 1, 2, 3, 4, 3, 2, 1}
	for i, w := range want {
		if dist[i] != w {
			t.Errorf("dist[%d]=%d want %d", i, dist[i], w)
		}
	}
	p := g.ShortestPath(0, 3)
	if len(p) != 4 || p[0] != 0 || p[3] != 3 {
		t.Errorf("path 0->3 = %v", p)
	}
	for i := 0; i+1 < len(p); i++ {
		if !g.HasEdge(p[i], p[i+1]) {
			t.Errorf("path step %d-%d not an edge", p[i], p[i+1])
		}
	}
	if p := g.ShortestPath(5, 5); len(p) != 1 || p[0] != 5 {
		t.Errorf("trivial path = %v", p)
	}
}

func TestRelabel(t *testing.T) {
	g := Path(4)
	rg, err := Relabel(g, []int{3, 2, 1, 0}) // reverse
	if err != nil {
		t.Fatal(err)
	}
	if !rg.HamiltonianLabeled() {
		t.Error("reversed path lost Hamiltonian labeling")
	}
	if _, err := Relabel(g, []int{0, 0, 1, 2}); err == nil {
		t.Error("non-permutation accepted")
	}
	if _, err := Relabel(g, []int{0, 1}); err == nil {
		t.Error("short permutation accepted")
	}
}

func TestFindHamiltonianPath(t *testing.T) {
	cases := []struct {
		g    *Graph
		want bool
	}{
		{Path(6), true},
		{Cycle(5), true},
		{Complete(4), true},
		{Star(5), false},
		{CompleteBinaryTree(3), false},
	}
	for _, c := range cases {
		p := c.g.FindHamiltonianPath()
		if (p != nil) != c.want {
			t.Errorf("%s: found=%v want %v", c.g.Name(), p != nil, c.want)
			continue
		}
		if p == nil {
			continue
		}
		seen := make(map[int]bool)
		for i, v := range p {
			seen[v] = true
			if i > 0 && !c.g.HasEdge(p[i-1], v) {
				t.Errorf("%s: path step %d-%d not an edge", c.g.Name(), p[i-1], v)
			}
		}
		if len(seen) != c.g.N() {
			t.Errorf("%s: path covers %d nodes", c.g.Name(), len(seen))
		}
	}
}

func TestHamiltonianRelabelIdempotent(t *testing.T) {
	g := Path(5)
	rg, ok := HamiltonianRelabel(g)
	if !ok || rg != g {
		t.Error("already-labeled graph should be returned unchanged")
	}
	tree := CompleteBinaryTree(3)
	rg, ok = HamiltonianRelabel(tree)
	if ok || rg != tree {
		t.Error("tree should be returned unchanged with ok=false")
	}
}

func TestDiameterKnownValues(t *testing.T) {
	cases := []struct {
		g    *Graph
		want int
	}{
		{Path(7), 6},
		{Cycle(7), 3},
		{Complete(6), 1},
		{Star(8), 2},
		{CompleteBinaryTree(3), 4},
		{Petersen(), 2},
	}
	for _, c := range cases {
		if got := c.g.Diameter(); got != c.want {
			t.Errorf("%s diameter=%d want %d", c.g.Name(), got, c.want)
		}
	}
}

// Property: in any Path(n), Dist(u,v) == |u-v|.
func TestQuickPathDistance(t *testing.T) {
	g := Path(17)
	f := func(a, b uint8) bool {
		u, v := int(a)%17, int(b)%17
		want := u - v
		if want < 0 {
			want = -want
		}
		return g.Dist(u, v) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: BFS distances obey the triangle inequality over an edge.
func TestQuickBFSEdgeConsistency(t *testing.T) {
	gs := []*Graph{Petersen(), DeBruijn(2, 3), CompleteBinaryTree(4), Cycle(9)}
	for _, g := range gs {
		for src := 0; src < g.N(); src++ {
			dist := g.BFS(src)
			for _, e := range g.Edges() {
				d := dist[e[0]] - dist[e[1]]
				if d > 1 || d < -1 {
					t.Fatalf("%s: BFS from %d differs by %d across edge %v", g.Name(), src, d, e)
				}
			}
		}
	}
}

func BenchmarkDiameterPetersen(b *testing.B) {
	g := Petersen()
	for i := 0; i < b.N; i++ {
		if g.Diameter() != 2 {
			b.Fatal("wrong diameter")
		}
	}
}

func BenchmarkFindHamPathDeBruijn16(b *testing.B) {
	g := DeBruijn(2, 4)
	for i := 0; i < b.N; i++ {
		if g.FindHamiltonianPath() == nil {
			b.Fatal("no path found")
		}
	}
}
