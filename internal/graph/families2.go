package graph

import "fmt"

// Additional factor families. The generalized sorting algorithm runs on
// the product of any connected graph; these widen the test surface and
// give users ready-made factors beyond the paper's running examples.

// Circulant returns the circulant graph C_n(offsets): node i is adjacent
// to i±d (mod n) for every d in offsets. With offset 1 it degenerates to
// a cycle; offsets {1, k} give dense ring-like factors.
func Circulant(n int, offsets ...int) *Graph {
	if n < 3 {
		panic("graph: circulant needs at least 3 nodes")
	}
	seen := make(map[[2]int]bool)
	var edges [][2]int
	for _, d := range offsets {
		if d <= 0 || d >= n {
			panic(fmt.Sprintf("graph: circulant offset %d out of range (0,%d)", d, n))
		}
		for i := 0; i < n; i++ {
			a, b := i, (i+d)%n
			if a == b {
				continue
			}
			if a > b {
				a, b = b, a
			}
			if !seen[[2]int{a, b}] {
				seen[[2]int{a, b}] = true
				edges = append(edges, [2]int{a, b})
			}
		}
	}
	return MustNew(fmt.Sprintf("circulant%d", n), n, edges)
}

// Wheel returns the wheel W_n: an (n-1)-cycle plus a hub adjacent to
// every rim node (n ≥ 4). Relabeled along a Hamiltonian path.
func Wheel(n int) *Graph {
	if n < 4 {
		panic("graph: wheel needs at least 4 nodes")
	}
	rim := n - 1
	var edges [][2]int
	for i := 1; i <= rim; i++ {
		edges = append(edges, [2]int{0, i}) // spokes from hub 0
		next := i%rim + 1
		edges = append(edges, [2]int{i, next})
	}
	g := MustNew(fmt.Sprintf("wheel%d", n), n, edges)
	g, ok := HamiltonianRelabel(g)
	if !ok {
		panic("graph: wheel graphs are Hamiltonian")
	}
	return g
}

// Caterpillar returns a caterpillar tree: a spine of the given length
// with legs[i] leaves hanging off spine node i. Caterpillars are the
// trees whose square is Hamiltonian, a natural middle ground between
// paths and complete binary trees.
func Caterpillar(spine int, legs []int) *Graph {
	if spine < 1 {
		panic("graph: caterpillar needs a spine")
	}
	if len(legs) != spine {
		panic("graph: need one leg count per spine node")
	}
	n := spine
	for _, l := range legs {
		if l < 0 {
			panic("graph: negative leg count")
		}
		n += l
	}
	var edges [][2]int
	for i := 0; i+1 < spine; i++ {
		edges = append(edges, [2]int{i, i + 1})
	}
	next := spine
	for i, l := range legs {
		for k := 0; k < l; k++ {
			edges = append(edges, [2]int{i, next})
			next++
		}
	}
	g := MustNew(fmt.Sprintf("caterpillar%d", n), n, edges)
	// A caterpillar may or may not have a Hamiltonian path; relabel
	// along one when it exists, else along the dilation-3 linear order.
	if rg, ok := HamiltonianRelabel(g); ok {
		return rg
	}
	return LinearRelabel(g)
}

// HypercubeGraph returns the d-dimensional hypercube as a factor graph
// (2^d nodes, differ-in-one-bit adjacency), labeled along the binary
// reflected Gray code so labels trace a Hamiltonian path. Products of
// hypercubes are hypercubes again; this factor mainly exercises
// labeling machinery and gives a dense Hamiltonian factor.
func HypercubeGraph(d int) *Graph {
	if d < 1 {
		panic("graph: hypercube needs dimension ≥ 1")
	}
	n := 1 << d
	var edges [][2]int
	for x := 0; x < n; x++ {
		for b := 0; b < d; b++ {
			y := x ^ (1 << b)
			if x < y {
				edges = append(edges, [2]int{x, y})
			}
		}
	}
	g := MustNew(fmt.Sprintf("Q%d", d), n, edges)
	// Gray-code relabeling: node i of the result is gray(i).
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i ^ (i >> 1)
	}
	rg, err := Relabel(g, perm)
	if err != nil {
		panic(err)
	}
	return rg
}

// Kautz returns the undirected base-b, dimension-d Kautz graph: nodes
// are strings of d+1 symbols over an alphabet of b+1 symbols with no
// two consecutive symbols equal; x is adjacent to its shifts. Kautz
// graphs are de Bruijn relatives with (b+1)·b^d nodes and better
// degree/diameter trade-offs.
func Kautz(b, d int) *Graph {
	if b < 2 || d < 1 {
		panic("graph: Kautz needs base ≥ 2 and dimension ≥ 1")
	}
	// Enumerate valid strings.
	var nodes [][]int
	var build func(prefix []int)
	build = func(prefix []int) {
		if len(prefix) == d+1 {
			nodes = append(nodes, append([]int(nil), prefix...))
			return
		}
		for s := 0; s <= b; s++ {
			if len(prefix) > 0 && prefix[len(prefix)-1] == s {
				continue
			}
			build(append(prefix, s))
		}
	}
	build(nil)
	index := make(map[string]int, len(nodes))
	keyOf := func(s []int) string {
		out := make([]byte, len(s))
		for i, x := range s {
			out[i] = byte('a' + x)
		}
		return string(out)
	}
	for i, s := range nodes {
		index[keyOf(s)] = i
	}
	seen := make(map[[2]int]bool)
	var edges [][2]int
	for i, s := range nodes {
		// Left shift: drop first symbol, append any valid symbol.
		for a := 0; a <= b; a++ {
			if a == s[len(s)-1] {
				continue
			}
			shifted := append(append([]int(nil), s[1:]...), a)
			j := index[keyOf(shifted)]
			if i == j {
				continue
			}
			x, y := i, j
			if x > y {
				x, y = y, x
			}
			if !seen[[2]int{x, y}] {
				seen[[2]int{x, y}] = true
				edges = append(edges, [2]int{x, y})
			}
		}
	}
	g := MustNew(fmt.Sprintf("kautz%d_%d", b, d), len(nodes), edges)
	if rg, ok := HamiltonianRelabel(g); ok {
		return rg
	}
	return LinearRelabel(g)
}
