package graph

// This file implements the linear-array embedding the paper relies on
// for non-Hamiltonian factors (Section 2): "it is always possible to
// embed a linear array in G with dilation three". The classical
// construction (Karaganis / Sekanina: the cube of a connected graph is
// Hamiltonian-connected) orders the vertices of a spanning tree so that
// consecutive vertices are at tree distance ≤ 3.

// ThreeDilationOrder returns an ordering of g's vertices in which
// consecutive vertices are at distance at most three in g. If the
// identity labeling already traces a Hamiltonian path it is returned
// unchanged (dilation one).
func ThreeDilationOrder(g *Graph) []int {
	n := g.N()
	order := make([]int, n)
	if g.HamiltonianLabeled() {
		for i := range order {
			order[i] = i
		}
		return order
	}
	if n == 1 {
		return []int{0}
	}
	// BFS spanning tree rooted at 0.
	parent := make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	parent[0] = 0
	children := make([][]int, n)
	queue := []int{0}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Neighbors(u) {
			if parent[v] < 0 {
				parent[v] = u
				children[u] = append(children[u], v)
				queue = append(queue, v)
			}
		}
	}
	// inSide[v] marks the current subtree membership during recursion:
	// the recursion always works on the vertex set reachable through
	// `children` below the given roots, so explicit component sets are
	// carried as slices of vertices.
	root := 0
	first := children[root][0]
	return hamPath3(children, root, first)
}

// hamPath3 returns a Hamiltonian path of the cube of the tree described
// by `children`, from u to v, where (u, v) is a tree edge with v a child
// of u. Consecutive path vertices are at tree distance ≤ 3
// (Karaganis 1968).
func hamPath3(children [][]int, u, v int) []int {
	// Tu: the tree without v's subtree, rooted at u.
	// Tv: v's subtree, rooted at v.
	var pu []int
	var otherChildren []int
	for _, c := range children[u] {
		if c != v {
			otherChildren = append(otherChildren, c)
		}
	}
	if len(otherChildren) == 0 {
		pu = []int{u}
	} else {
		// Pick the edge (u, x) with x the first other child; path u → x
		// through all of Tu.
		x := otherChildren[0]
		// Tu as a tree rooted at u: children[u] minus v. Temporarily
		// narrow u's child list.
		saved := children[u]
		children[u] = otherChildren
		pu = hamPath3(children, u, x)
		children[u] = saved
	}
	var pv []int
	if len(children[v]) == 0 {
		pv = []int{v}
	} else {
		y := children[v][0]
		pv = hamPath3(children, v, y)
		reverseInts(pv) // path y → v becomes v at the end
	}
	return append(pu, pv...)
}

func reverseInts(s []int) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

// LinearRelabel relabels g along a dilation-≤3 linear order: node i of
// the result is the i-th vertex of ThreeDilationOrder(g). Sorting
// sweeps on the result pay at most a small constant routing cost per
// compare-exchange, as the paper's Section 2 labeling remark promises.
func LinearRelabel(g *Graph) *Graph {
	order := ThreeDilationOrder(g)
	rg, err := Relabel(g, order)
	if err != nil {
		// order comes from our own construction; failure is a bug.
		panic(err)
	}
	return rg
}
