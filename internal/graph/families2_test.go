package graph

import "testing"

func TestCirculant(t *testing.T) {
	g := Circulant(8, 1, 3)
	if g.N() != 8 {
		t.Fatalf("N=%d", g.N())
	}
	if !g.HamiltonianLabeled() {
		t.Error("circulant with offset 1 should be Hamiltonian-labeled")
	}
	for v := 0; v < 8; v++ {
		if g.Degree(v) != 4 {
			t.Errorf("degree(%d)=%d want 4", v, g.Degree(v))
		}
	}
	// Offset 1 only degenerates to a cycle.
	c := Circulant(6, 1)
	if len(c.Edges()) != 6 {
		t.Errorf("C_6(1) edges=%d want 6", len(c.Edges()))
	}
	// n even with half-offset edges deduplicated: C_8(1,4) has 8+4 edges.
	h := Circulant(8, 1, 4)
	if len(h.Edges()) != 12 {
		t.Errorf("C_8(1,4) edges=%d want 12", len(h.Edges()))
	}
}

func TestCirculantDisconnectedPanics(t *testing.T) {
	// C_6(3) alone is a perfect matching: the constructor must reject it.
	defer func() {
		if recover() == nil {
			t.Fatal("disconnected circulant accepted")
		}
	}()
	Circulant(6, 3)
}

func TestCirculantPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Circulant(5, 0)
}

func TestWheel(t *testing.T) {
	g := Wheel(7)
	if g.N() != 7 || len(g.Edges()) != 12 {
		t.Fatalf("wheel7: N=%d edges=%d", g.N(), len(g.Edges()))
	}
	if !g.HamiltonianLabeled() {
		t.Error("wheel should be relabeled along a Hamiltonian path")
	}
	if g.Diameter() != 2 {
		t.Errorf("wheel diameter=%d want 2", g.Diameter())
	}
	// Exactly one node of degree n-1 (the hub).
	hubs := 0
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) == 6 {
			hubs++
		}
	}
	if hubs != 1 {
		t.Errorf("%d hubs", hubs)
	}
}

func TestCaterpillar(t *testing.T) {
	g := Caterpillar(4, []int{2, 0, 1, 2})
	if g.N() != 9 {
		t.Fatalf("N=%d want 9", g.N())
	}
	if len(g.Edges()) != 8 {
		t.Fatalf("edges=%d want 8 (tree)", len(g.Edges()))
	}
	// Caterpillars embed a linear array with dilation ≤ 3 at worst; the
	// constructor guarantees labels obey that.
	if d := g.MaxLabelDilation(); d > 3 {
		t.Errorf("caterpillar label dilation %d > 3", d)
	}
	// A bare spine is a path.
	p := Caterpillar(5, []int{0, 0, 0, 0, 0})
	if !p.HamiltonianLabeled() {
		t.Error("bare spine should be Hamiltonian-labeled")
	}
}

func TestCaterpillarPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Caterpillar(2, []int{1})
}

func TestHypercubeGraph(t *testing.T) {
	for d := 1; d <= 4; d++ {
		g := HypercubeGraph(d)
		if g.N() != 1<<d {
			t.Fatalf("Q%d: N=%d", d, g.N())
		}
		if !g.HamiltonianLabeled() {
			t.Errorf("Q%d: Gray-code labels should trace a Hamiltonian path", d)
		}
		for v := 0; v < g.N(); v++ {
			if g.Degree(v) != d {
				t.Fatalf("Q%d: degree(%d)=%d", d, v, g.Degree(v))
			}
		}
		if g.Diameter() != d {
			t.Errorf("Q%d: diameter=%d", d, g.Diameter())
		}
	}
}

func TestKautz(t *testing.T) {
	g := Kautz(2, 1)
	// K(2,1): (b+1)·b^d = 3·2 = 6 nodes; it is the complete bipartite-ish
	// triangle-pair graph K_{3,3} minus... just check size, degree ≤ 2b,
	// connectivity and labeling quality.
	if g.N() != 6 {
		t.Fatalf("K(2,1): N=%d want 6", g.N())
	}
	if !g.IsConnected() {
		t.Fatal("K(2,1) disconnected")
	}
	if d := g.MaxLabelDilation(); d > 3 {
		t.Errorf("K(2,1) label dilation %d > 3", d)
	}
	g2 := Kautz(2, 2)
	if g2.N() != 12 {
		t.Fatalf("K(2,2): N=%d want 12", g2.N())
	}
	if !g2.IsConnected() {
		t.Fatal("K(2,2) disconnected")
	}
	if g2.MaxDegree() > 4 {
		t.Errorf("K(2,2) max degree %d want ≤ 2b=4", g2.MaxDegree())
	}
}

func TestNewFamiliesSortable(t *testing.T) {
	// Smoke: products of every new family support snake adjacency
	// machinery (exercised deeper in the core tests).
	for _, g := range []*Graph{Circulant(8, 1, 3), Wheel(6), Caterpillar(3, []int{1, 1, 1}), HypercubeGraph(3), Kautz(2, 2)} {
		if !g.IsConnected() {
			t.Errorf("%s disconnected", g.Name())
		}
		if g.MaxLabelDilation() > 3 {
			t.Errorf("%s label dilation %d", g.Name(), g.MaxLabelDilation())
		}
	}
}
