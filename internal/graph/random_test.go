package graph

import "testing"

func TestRandomTreeProperties(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		n := 2 + int(seed*3)%30
		g := RandomTree(n, seed)
		if g.N() != n {
			t.Fatalf("seed %d: N=%d want %d", seed, g.N(), n)
		}
		if len(g.Edges()) != n-1 {
			t.Fatalf("seed %d: %d edges in a tree of %d nodes", seed, len(g.Edges()), n)
		}
		if !g.IsConnected() {
			t.Fatalf("seed %d: disconnected", seed)
		}
		if d := g.MaxLabelDilation(); d > 3 {
			t.Fatalf("seed %d: label dilation %d > 3", seed, d)
		}
	}
}

func TestRandomTreeDeterministic(t *testing.T) {
	a, b := RandomTree(17, 5), RandomTree(17, 5)
	ea, eb := a.Edges(), b.Edges()
	if len(ea) != len(eb) {
		t.Fatal("nondeterministic edge count")
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatal("nondeterministic edges")
		}
	}
}

func TestRandomConnectedProperties(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		n := 3 + int(seed*2)%20
		g := RandomConnected(n, n/2, seed)
		if !g.IsConnected() || g.N() != n {
			t.Fatalf("seed %d: bad graph", seed)
		}
		if len(g.Edges()) < n-1 {
			t.Fatalf("seed %d: fewer edges than a spanning tree", seed)
		}
		if d := g.MaxLabelDilation(); d > 3 {
			t.Fatalf("seed %d: label dilation %d > 3", seed, d)
		}
	}
}

func TestRandomSingleton(t *testing.T) {
	if RandomTree(1, 0).N() != 1 {
		t.Error("singleton tree")
	}
	if RandomConnected(1, 0, 0).N() != 1 {
		t.Error("singleton graph")
	}
}
